// Property tests over randomly generated task programs: the paper's
// correctness claims, checked on hundreds of instances.
//  - Def. 6 at run time: a schedule executes under capacity C iff
//    C >= MIN_MEM (the MAP mechanism is exactly as strong as the bound).
//  - Theorem 1: no deadlock, no data inconsistency — the simulator asserts
//    version consistency internally and the threaded executor's results are
//    compared against a sequential interpretation.
//  - Theorem 2: a DTS schedule fits in max-permanent + max-slice-demand.
#include <gtest/gtest.h>

#include <cstring>
#include <tuple>

#include "rapid/graph/dcg.hpp"
#include "rapid/rt/sim_executor.hpp"
#include "rapid/rt/threaded_executor.hpp"
#include "rapid/sched/liveness.hpp"
#include "rapid/sched/mapping.hpp"
#include "rapid/sched/ordering.hpp"
#include "rapid/support/rng.hpp"

namespace rapid {
namespace {

using graph::DataId;
using graph::TaskGraph;
using graph::TaskId;

/// A random well-formed task program: objects are int64 counters (8 bytes
/// each so the threaded executor's alignment matches Def. 5 accounting);
/// every task writes one owned object and reads a few arbitrary objects;
/// some read-modify-write runs commute.
struct RandomProgram {
  TaskGraph graph;
  int num_procs;

  RandomProgram(std::uint64_t seed, int procs) : num_procs(procs) {
    Rng rng(seed);
    const int num_objects = static_cast<int>(6 + rng.next_below(24));
    const int num_tasks = static_cast<int>(12 + rng.next_below(48));
    for (int d = 0; d < num_objects; ++d) {
      graph.add_data("d" + std::to_string(d), 8,
                     static_cast<graph::ProcId>(d % procs));
    }
    for (int t = 0; t < num_tasks; ++t) {
      const auto target =
          static_cast<DataId>(rng.next_below(num_objects));
      std::vector<DataId> reads;
      const int fan = static_cast<int>(rng.next_below(4));
      for (int r = 0; r < fan; ++r) {
        reads.push_back(static_cast<DataId>(rng.next_below(num_objects)));
      }
      if (rng.next_bool(0.5)) reads.push_back(target);  // declared RMW
      const std::int32_t group = rng.next_bool(0.3) ? target : -1;
      graph.add_task("T" + std::to_string(t), std::move(reads), {target},
                     1.0 + static_cast<double>(rng.next_below(20)), group);
    }
    graph.finalize();
  }

  /// Sequential reference semantics: additive, so commuting runs are
  /// genuinely order-independent.
  std::vector<std::int64_t> interpret() const {
    std::vector<std::int64_t> value(
        static_cast<std::size_t>(graph.num_data()), 0);
    for (TaskId t = 0; t < graph.num_tasks(); ++t) {
      apply(t, value);
    }
    return value;
  }

  void apply(TaskId t, std::vector<std::int64_t>& value) const {
    const graph::Task& task = graph.task(t);
    std::int64_t acc = t + 1;
    for (DataId d : task.reads) {
      if (d != task.writes.front()) acc += value[d];
    }
    value[task.writes.front()] += acc;
  }

  rt::TaskBody make_body() const {
    return [this](TaskId t, rt::ObjectResolver& resolver) {
      const graph::Task& task = graph.task(t);
      std::int64_t acc = t + 1;
      for (DataId d : task.reads) {
        if (d == task.writes.front()) continue;
        const auto in = resolver.read(d);
        std::int64_t v = 0;
        std::memcpy(&v, in.data(), sizeof(v));
        acc += v;
      }
      auto out = resolver.write(task.writes.front());
      std::int64_t v = 0;
      std::memcpy(&v, out.data(), sizeof(v));
      v += acc;
      std::memcpy(out.data(), &v, sizeof(v));
    };
  }

  static rt::ObjectInit make_init() {
    return [](DataId, std::span<std::byte> buf) {
      std::memset(buf.data(), 0, buf.size());
    };
  }
};

enum class Order { kRcp, kMpo, kDts };

sched::Schedule make_schedule(const RandomProgram& prog, Order order) {
  const auto procs = sched::owner_compute_tasks(prog.graph, prog.num_procs);
  const auto params = machine::MachineParams::cray_t3d(prog.num_procs);
  switch (order) {
    case Order::kRcp:
      return sched::schedule_rcp(prog.graph, procs, prog.num_procs, params);
    case Order::kMpo:
      return sched::schedule_mpo(prog.graph, procs, prog.num_procs, params);
    case Order::kDts:
      return sched::schedule_dts(prog.graph, procs, prog.num_procs, params);
  }
  RAPID_FAIL("unreachable");
}

class RandomProgramTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {
 protected:
  std::uint64_t seed() const { return std::get<0>(GetParam()); }
  int procs() const { return std::get<1>(GetParam()); }
  Order order() const { return static_cast<Order>(std::get<2>(GetParam())); }
};

TEST_P(RandomProgramTest, ScheduleIsValid) {
  RandomProgram prog(seed(), procs());
  const auto schedule = make_schedule(prog, order());
  EXPECT_NO_THROW(schedule.validate(prog.graph));
}

TEST_P(RandomProgramTest, ExecutableExactlyDownToMinMem) {
  RandomProgram prog(seed(), procs());
  const auto schedule = make_schedule(prog, order());
  const rt::RunPlan plan = rt::build_run_plan(prog.graph, schedule);
  const auto min_mem =
      sched::analyze_liveness(prog.graph, schedule).min_mem();
  rt::RunConfig config;
  config.params = machine::MachineParams::cray_t3d(procs());
  config.capacity_per_proc = min_mem;
  const rt::RunReport at = rt::simulate(plan, config);
  EXPECT_TRUE(at.executable) << at.failure;
  EXPECT_EQ(at.tasks_executed, prog.graph.num_tasks());
  config.capacity_per_proc = min_mem - 1;
  EXPECT_FALSE(rt::simulate(plan, config).executable);
}

TEST_P(RandomProgramTest, ThreadedMatchesSequentialAtMinMem) {
  RandomProgram prog(seed(), procs());
  const auto schedule = make_schedule(prog, order());
  const rt::RunPlan plan = rt::build_run_plan(prog.graph, schedule);
  rt::RunConfig config;
  config.capacity_per_proc =
      sched::analyze_liveness(prog.graph, schedule).min_mem();
  rt::ThreadedExecutor exec(plan, config, RandomProgram::make_init(),
                            prog.make_body());
  const rt::RunReport report = exec.run();
  ASSERT_TRUE(report.executable) << report.failure;
  const auto expected = prog.interpret();
  for (DataId d = 0; d < prog.graph.num_data(); ++d) {
    const auto bytes = exec.read_object(d);
    std::int64_t v = 0;
    std::memcpy(&v, bytes.data(), sizeof(v));
    EXPECT_EQ(v, expected[d]) << prog.graph.data(d).name << " seed "
                              << seed();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomProgramTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6, 7, 8),
                       ::testing::Values(1, 2, 4),
                       ::testing::Values(0, 1, 2)));

/// Theorem 2, checked as stated: a DTS schedule fits within
/// max-permanent-bytes + max-slice-volatile-demand per processor.
class Theorem2Test : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(Theorem2Test, DtsFitsPermPlusSliceDemand) {
  const auto [seed, procs] = GetParam();
  RandomProgram prog(seed, procs);
  const auto assignment = sched::owner_compute_tasks(prog.graph, procs);
  const auto schedule = make_schedule(prog, Order::kDts);
  const auto liveness = sched::analyze_liveness(prog.graph, schedule);
  const auto slices = graph::compute_slices(prog.graph);
  const auto demand =
      sched::slice_volatile_demand(prog.graph, slices, assignment, procs);
  std::int64_t h = 0;
  for (std::int64_t d : demand) h = std::max(h, d);
  std::int64_t max_perm = 0;
  for (const auto& p : liveness.procs) {
    max_perm = std::max(max_perm, p.permanent_bytes);
  }
  EXPECT_LE(liveness.min_mem(), max_perm + h);
  // And the run time achieves it.
  const rt::RunPlan plan = rt::build_run_plan(prog.graph, schedule);
  rt::RunConfig config;
  config.params = machine::MachineParams::cray_t3d(procs);
  config.capacity_per_proc = max_perm + h;
  EXPECT_TRUE(rt::simulate(plan, config).executable);
}

INSTANTIATE_TEST_SUITE_P(Sweep, Theorem2Test,
                         ::testing::Combine(::testing::Range(1, 13),
                                            ::testing::Values(2, 3, 4)));

/// Corollary 1 on random *pipeline* programs (acyclic DCG by construction,
/// unit-size objects): DTS executes with max-perm + 1 object's bytes.
TEST(Corollary1, PipelineProgramsFitPermPlusOneObject) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    TaskGraph g;
    const int stages = static_cast<int>(5 + rng.next_below(10));
    const int procs = 2 + static_cast<int>(rng.next_below(3));
    std::vector<DataId> objs;
    for (int s = 0; s < stages; ++s) {
      objs.push_back(g.add_data("s" + std::to_string(s), 8,
                                static_cast<graph::ProcId>(s % procs)));
    }
    g.add_task("W", {}, {objs[0]}, 1.0);
    for (int s = 0; s + 1 < stages; ++s) {
      // A few readers of stage s, the last one produces stage s+1.
      const int readers = static_cast<int>(rng.next_below(3));
      for (int r = 0; r < readers; ++r) {
        g.add_task("R" + std::to_string(s) + "_" + std::to_string(r),
                   {objs[s]}, {objs[s]}, 1.0, /*commute=*/objs[s]);
      }
      g.add_task("P" + std::to_string(s), {objs[s]}, {objs[s + 1]}, 1.0);
    }
    g.finalize();
    // Readers of stage s RMW it on its owner; producers write the next.
    const auto dcg = graph::build_dcg(g);
    if (!graph::dcg_is_acyclic(dcg)) continue;  // rare; Corollary needs DAG
    const auto assignment = sched::owner_compute_tasks(g, procs);
    const auto schedule = sched::schedule_dts(
        g, assignment, procs, machine::MachineParams::cray_t3d(procs));
    const auto liveness = sched::analyze_liveness(g, schedule);
    std::int64_t max_perm = 0;
    for (const auto& p : liveness.procs) {
      max_perm = std::max(max_perm, p.permanent_bytes);
    }
    EXPECT_LE(liveness.min_mem(), max_perm + 8) << "seed " << seed;
  }
}

}  // namespace
}  // namespace rapid
