#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>

#include "counter_app.hpp"
#include "rapid/rt/threaded_executor.hpp"
#include "rapid/sched/liveness.hpp"
#include "rapid/support/check.hpp"

namespace rapid::rt {
namespace {

using testing::CounterApp;

/// Asserts the executor's final heaps match the sequential interpretation.
void check_results(const CounterApp& app, const ThreadedExecutor& exec) {
  for (graph::DataId d = 0; d < app.graph.num_data(); ++d) {
    const auto bytes = exec.read_object(d);
    std::int64_t v = 0;
    std::memcpy(&v, bytes.data(), sizeof(v));
    EXPECT_EQ(v, app.expected[d]) << app.graph.data(d).name;
  }
}

TEST(ThreadedExecutor, ComputesCorrectResultsWithAmpleMemory) {
  CounterApp app(2);
  ThreadedExecutor exec(app.plan, app.config(1 << 16), app.make_init(),
                        app.make_body());
  const RunReport r = exec.run();
  ASSERT_TRUE(r.executable) << r.failure;
  EXPECT_EQ(r.tasks_executed, 20);
  check_results(app, exec);
}

TEST(ThreadedExecutor, ComputesCorrectResultsAtMinMem) {
  CounterApp app(2);
  const auto liveness = sched::analyze_liveness(app.graph, app.schedule);
  ThreadedExecutor exec(app.plan, app.config(liveness.min_mem()),
                        app.make_init(), app.make_body());
  const RunReport r = exec.run();
  ASSERT_TRUE(r.executable) << r.failure;
  check_results(app, exec);
  EXPECT_GT(r.avg_maps(), 1.0);  // recycling actually happened
  for (std::int64_t peak : r.peak_bytes_per_proc) {
    EXPECT_LE(peak, liveness.min_mem());
  }
}

TEST(ThreadedExecutor, ReportsNonExecutableBelowMinMem) {
  CounterApp app(2);
  const auto liveness = sched::analyze_liveness(app.graph, app.schedule);
  ThreadedExecutor exec(app.plan, app.config(liveness.min_mem() - 8),
                        app.make_init(), app.make_body());
  const RunReport r = exec.run();
  EXPECT_FALSE(r.executable);
  EXPECT_FALSE(r.failure.empty());
}

TEST(ThreadedExecutor, BaselineModeMatches) {
  CounterApp app(2);
  const auto liveness = sched::analyze_liveness(app.graph, app.schedule);
  ThreadedExecutor exec(app.plan, app.config(liveness.tot_mem(), false),
                        app.make_init(), app.make_body());
  const RunReport r = exec.run();
  ASSERT_TRUE(r.executable) << r.failure;
  EXPECT_EQ(r.maps_per_proc[0], 0);
  check_results(app, exec);
}

TEST(ThreadedExecutor, MpoOrderAlsoCorrect) {
  CounterApp app(2, /*mpo=*/true);
  const auto liveness = sched::analyze_liveness(app.graph, app.schedule);
  ThreadedExecutor exec(app.plan, app.config(liveness.min_mem()),
                        app.make_init(), app.make_body());
  const RunReport r = exec.run();
  ASSERT_TRUE(r.executable) << r.failure;
  check_results(app, exec);
}

TEST(ThreadedExecutor, RepeatedTightRunsStayCorrect) {
  // Hammer the protocol: many runs at the exact memory floor; thread
  // interleavings differ, results must not.
  CounterApp app(2);
  const auto liveness = sched::analyze_liveness(app.graph, app.schedule);
  for (int round = 0; round < 25; ++round) {
    ThreadedExecutor exec(app.plan, app.config(liveness.min_mem()),
                          app.make_init(), app.make_body());
    const RunReport r = exec.run();
    ASSERT_TRUE(r.executable) << r.failure;
    check_results(app, exec);
  }
}

TEST(ThreadedExecutor, WatchdogCatchesStalledProtocol) {
  // Fault injection: one task body blocks far beyond the watchdog window,
  // so global progress stops and the watchdog must abort the run with
  // ProtocolDeadlockError instead of hanging forever.
  CounterApp app(2);
  ThreadedOptions options;
  options.watchdog_seconds = 0.2;
  std::atomic<bool> stalled{false};
  ThreadedExecutor exec(
      app.plan, app.config(1 << 16), app.make_init(),
      [&](graph::TaskId t, ObjectResolver& resolver) {
        if (!stalled.exchange(true)) {
          std::this_thread::sleep_for(std::chrono::seconds(2));
        }
        app.make_body()(t, resolver);
      },
      options);
  EXPECT_THROW(exec.run(), ProtocolDeadlockError);
}

TEST(ThreadedExecutor, MultiSlotMailboxesAlsoCorrect) {
  CounterApp app(2);
  const auto liveness = sched::analyze_liveness(app.graph, app.schedule);
  auto config = app.config(liveness.min_mem());
  config.mailbox_slots = 4;
  ThreadedExecutor exec(app.plan, config, app.make_init(), app.make_body());
  const RunReport r = exec.run();
  ASSERT_TRUE(r.executable) << r.failure;
  check_results(app, exec);
}

TEST(ThreadedExecutor, ReadObjectBeforeRunThrows) {
  CounterApp app(2);
  ThreadedExecutor exec(app.plan, app.config(1 << 16), app.make_init(),
                        app.make_body());
  EXPECT_THROW(exec.read_object(0), Error);
}

TEST(ThreadedExecutor, ReadObjectAfterNonExecutableRunThrows) {
  CounterApp app(2);
  const auto liveness = sched::analyze_liveness(app.graph, app.schedule);
  ThreadedExecutor exec(app.plan, app.config(liveness.min_mem() - 8),
                        app.make_init(), app.make_body());
  const RunReport r = exec.run();
  ASSERT_FALSE(r.executable);
  EXPECT_THROW(exec.read_object(0), Error);
}

TEST(ThreadedExecutor, OversubscribedProcsStayCorrect) {
  // More worker threads than objects-per-proc niceties or hardware cores:
  // the spin-then-park backoff must keep the protocol live and correct
  // when every thread fights for the same core.
  CounterApp app(8);
  const auto liveness = sched::analyze_liveness(app.graph, app.schedule);
  ThreadedExecutor exec(app.plan, app.config(liveness.min_mem()),
                        app.make_init(), app.make_body());
  const RunReport r = exec.run();
  ASSERT_TRUE(r.executable) << r.failure;
  check_results(app, exec);
}

TEST(ThreadedExecutor, TaskBodyErrorSurfacesAsDeadlockError) {
  CounterApp app(2);
  ThreadedExecutor exec(
      app.plan, app.config(1 << 16), app.make_init(),
      [](graph::TaskId, ObjectResolver&) { throw std::runtime_error("bug"); });
  EXPECT_THROW(exec.run(), ProtocolDeadlockError);
}

TEST(ThreadedExecutor, WritingNonOwnedObjectThrows) {
  CounterApp app(2);
  std::atomic<bool> violated{false};
  ThreadedExecutor exec(
      app.plan, app.config(1 << 16), app.make_init(),
      [&](graph::TaskId t, ObjectResolver& resolver) {
        // Try to write an object the task's processor does not own.
        const auto& task = app.graph.task(t);
        if (!task.reads.empty() && task.reads.front() != task.writes.front()) {
          try {
            resolver.write(task.reads.front());
          } catch (const Error&) {
            violated = true;
            throw;
          }
        }
        app.make_body()(t, resolver);
      });
  EXPECT_THROW(exec.run(), ProtocolDeadlockError);
  EXPECT_TRUE(violated.load());
}

}  // namespace
}  // namespace rapid::rt
