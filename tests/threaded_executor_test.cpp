#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <cstring>
#include <numeric>

#include "rapid/rt/threaded_executor.hpp"
#include "rapid/sched/liveness.hpp"
#include "rapid/sched/mapping.hpp"
#include "rapid/sched/ordering.hpp"
#include "rapid/support/check.hpp"

namespace rapid::rt {
namespace {

using graph::TaskGraph;

/// A numeric micro-app over the Figure-2 DAG: every object is one int64
/// counter (8 bytes); T[j] sets d_j := j+1; T[i,j] adds d_i into d_j;
/// update tasks T[j] with reads double d_j. The expected final values are
/// computed by a sequential interpreter, so a threaded run checks protocol
/// correctness end to end (content transfer, versions, sync flags).
struct CounterApp {
  TaskGraph graph = graph::make_paper_figure2_graph();
  sched::Schedule schedule;
  RunPlan plan;
  std::vector<std::int64_t> expected;

  explicit CounterApp(int procs, bool mpo = false) {
    // Resize objects to 8 bytes (the figure uses unit sizes).
    // TaskGraph sizes are fixed at add_data time, so rebuild a scaled graph.
    graph = rebuild_with_size(8, procs);
    const auto assignment = sched::owner_compute_tasks(graph, procs);
    const auto params = machine::MachineParams::cray_t3d(procs);
    schedule = mpo ? sched::schedule_mpo(graph, assignment, procs, params)
                   : sched::schedule_rcp(graph, assignment, procs, params);
    plan = build_run_plan(graph, schedule);
    expected = interpret();
  }

  static TaskGraph rebuild_with_size(std::int64_t bytes, int procs) {
    const TaskGraph proto = graph::make_paper_figure2_graph();
    TaskGraph g;
    for (graph::DataId d = 0; d < proto.num_data(); ++d) {
      g.add_data(proto.data(d).name, bytes,
                 static_cast<graph::ProcId>(d % procs));
    }
    for (graph::TaskId t = 0; t < proto.num_tasks(); ++t) {
      const graph::Task& task = proto.task(t);
      g.add_task(task.name, task.reads, task.writes, task.flops,
                 task.commute_group);
    }
    g.finalize();
    return g;
  }

  /// Sequential reference semantics in program order.
  std::vector<std::int64_t> interpret() const {
    std::vector<std::int64_t> value(11, 0);
    for (graph::TaskId t = 0; t < graph.num_tasks(); ++t) {
      apply(t, value);
    }
    return value;
  }

  void apply(graph::TaskId t, std::vector<std::int64_t>& value) const {
    const graph::Task& task = graph.task(t);
    const graph::DataId target = task.writes.front();
    if (task.reads.empty()) {
      value[target] = target + 1;  // producer
    } else if (task.reads.front() == target) {
      value[target] *= 2;  // updater T[j]
    } else {
      value[target] += value[task.reads.front()];  // T[i,j]
    }
  }

  ObjectInit make_init() const {
    return [](graph::DataId, std::span<std::byte> buf) {
      std::memset(buf.data(), 0, buf.size());
    };
  }

  TaskBody make_body() const {
    return [this](graph::TaskId t, ObjectResolver& resolver) {
      const graph::Task& task = graph.task(t);
      const graph::DataId target = task.writes.front();
      auto out = resolver.write(target);
      auto* tv = reinterpret_cast<std::int64_t*>(out.data());
      if (task.reads.empty()) {
        *tv = target + 1;
      } else if (task.reads.front() == target) {
        *tv *= 2;
      } else {
        const auto in = resolver.read(task.reads.front());
        *tv += *reinterpret_cast<const std::int64_t*>(in.data());
      }
    };
  }

  RunConfig config(std::int64_t capacity, bool active = true) const {
    RunConfig c;
    c.capacity_per_proc = capacity;
    c.active_memory = active;
    c.params = machine::MachineParams::cray_t3d(plan.num_procs);
    return c;
  }

  void check_results(const ThreadedExecutor& exec) const {
    for (graph::DataId d = 0; d < graph.num_data(); ++d) {
      const auto bytes = exec.read_object(d);
      std::int64_t v = 0;
      std::memcpy(&v, bytes.data(), sizeof(v));
      EXPECT_EQ(v, expected[d]) << graph.data(d).name;
    }
  }
};

TEST(ThreadedExecutor, ComputesCorrectResultsWithAmpleMemory) {
  CounterApp app(2);
  ThreadedExecutor exec(app.plan, app.config(1 << 16), app.make_init(),
                        app.make_body());
  const RunReport r = exec.run();
  ASSERT_TRUE(r.executable) << r.failure;
  EXPECT_EQ(r.tasks_executed, 20);
  app.check_results(exec);
}

TEST(ThreadedExecutor, ComputesCorrectResultsAtMinMem) {
  CounterApp app(2);
  const auto liveness = sched::analyze_liveness(app.graph, app.schedule);
  ThreadedExecutor exec(app.plan, app.config(liveness.min_mem()),
                        app.make_init(), app.make_body());
  const RunReport r = exec.run();
  ASSERT_TRUE(r.executable) << r.failure;
  app.check_results(exec);
  EXPECT_GT(r.avg_maps(), 1.0);  // recycling actually happened
  for (std::int64_t peak : r.peak_bytes_per_proc) {
    EXPECT_LE(peak, liveness.min_mem());
  }
}

TEST(ThreadedExecutor, ReportsNonExecutableBelowMinMem) {
  CounterApp app(2);
  const auto liveness = sched::analyze_liveness(app.graph, app.schedule);
  ThreadedExecutor exec(app.plan, app.config(liveness.min_mem() - 8),
                        app.make_init(), app.make_body());
  const RunReport r = exec.run();
  EXPECT_FALSE(r.executable);
  EXPECT_FALSE(r.failure.empty());
}

TEST(ThreadedExecutor, BaselineModeMatches) {
  CounterApp app(2);
  const auto liveness = sched::analyze_liveness(app.graph, app.schedule);
  ThreadedExecutor exec(app.plan, app.config(liveness.tot_mem(), false),
                        app.make_init(), app.make_body());
  const RunReport r = exec.run();
  ASSERT_TRUE(r.executable) << r.failure;
  EXPECT_EQ(r.maps_per_proc[0], 0);
  app.check_results(exec);
}

TEST(ThreadedExecutor, MpoOrderAlsoCorrect) {
  CounterApp app(2, /*mpo=*/true);
  const auto liveness = sched::analyze_liveness(app.graph, app.schedule);
  ThreadedExecutor exec(app.plan, app.config(liveness.min_mem()),
                        app.make_init(), app.make_body());
  const RunReport r = exec.run();
  ASSERT_TRUE(r.executable) << r.failure;
  app.check_results(exec);
}

TEST(ThreadedExecutor, RepeatedTightRunsStayCorrect) {
  // Hammer the protocol: many runs at the exact memory floor; thread
  // interleavings differ, results must not.
  CounterApp app(2);
  const auto liveness = sched::analyze_liveness(app.graph, app.schedule);
  for (int round = 0; round < 25; ++round) {
    ThreadedExecutor exec(app.plan, app.config(liveness.min_mem()),
                          app.make_init(), app.make_body());
    const RunReport r = exec.run();
    ASSERT_TRUE(r.executable) << r.failure;
    app.check_results(exec);
  }
}

TEST(ThreadedExecutor, WatchdogCatchesStalledProtocol) {
  // Fault injection: one task body blocks far beyond the watchdog window,
  // so global progress stops and the watchdog must abort the run with
  // ProtocolDeadlockError instead of hanging forever.
  CounterApp app(2);
  ThreadedOptions options;
  options.watchdog_seconds = 0.2;
  std::atomic<bool> stalled{false};
  ThreadedExecutor exec(
      app.plan, app.config(1 << 16), app.make_init(),
      [&](graph::TaskId t, ObjectResolver& resolver) {
        if (!stalled.exchange(true)) {
          std::this_thread::sleep_for(std::chrono::seconds(2));
        }
        app.make_body()(t, resolver);
      },
      options);
  EXPECT_THROW(exec.run(), ProtocolDeadlockError);
}

TEST(ThreadedExecutor, MultiSlotMailboxesAlsoCorrect) {
  CounterApp app(2);
  const auto liveness = sched::analyze_liveness(app.graph, app.schedule);
  auto config = app.config(liveness.min_mem());
  config.mailbox_slots = 4;
  ThreadedExecutor exec(app.plan, config, app.make_init(), app.make_body());
  const RunReport r = exec.run();
  ASSERT_TRUE(r.executable) << r.failure;
  app.check_results(exec);
}

TEST(ThreadedExecutor, TaskBodyErrorSurfacesAsDeadlockError) {
  CounterApp app(2);
  ThreadedExecutor exec(
      app.plan, app.config(1 << 16), app.make_init(),
      [](graph::TaskId, ObjectResolver&) { throw std::runtime_error("bug"); });
  EXPECT_THROW(exec.run(), ProtocolDeadlockError);
}

TEST(ThreadedExecutor, WritingNonOwnedObjectThrows) {
  CounterApp app(2);
  std::atomic<bool> violated{false};
  ThreadedExecutor exec(
      app.plan, app.config(1 << 16), app.make_init(),
      [&](graph::TaskId t, ObjectResolver& resolver) {
        // Try to write an object the task's processor does not own.
        const auto& task = app.graph.task(t);
        if (!task.reads.empty() && task.reads.front() != task.writes.front()) {
          try {
            resolver.write(task.reads.front());
          } catch (const Error&) {
            violated = true;
            throw;
          }
        }
        app.make_body()(t, resolver);
      });
  EXPECT_THROW(exec.run(), ProtocolDeadlockError);
  EXPECT_TRUE(violated.load());
}

}  // namespace
}  // namespace rapid::rt
