#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>

#include "counter_app.hpp"
#include "rapid/rt/threaded_executor.hpp"
#include "rapid/sched/liveness.hpp"
#include "rapid/support/check.hpp"

namespace rapid::rt {
namespace {

using testing::CounterApp;

/// Asserts the executor's final heaps match the sequential interpretation.
void check_results(const CounterApp& app, const ThreadedExecutor& exec) {
  for (graph::DataId d = 0; d < app.graph.num_data(); ++d) {
    const auto bytes = exec.read_object(d);
    std::int64_t v = 0;
    std::memcpy(&v, bytes.data(), sizeof(v));
    EXPECT_EQ(v, app.expected[d]) << app.graph.data(d).name;
  }
}

TEST(ThreadedExecutor, ComputesCorrectResultsWithAmpleMemory) {
  CounterApp app(2);
  ThreadedExecutor exec(app.plan, app.config(1 << 16), app.make_init(),
                        app.make_body());
  const RunReport r = exec.run();
  ASSERT_TRUE(r.executable) << r.failure;
  EXPECT_EQ(r.tasks_executed, 20);
  check_results(app, exec);
}

TEST(ThreadedExecutor, ComputesCorrectResultsAtMinMem) {
  CounterApp app(2);
  const auto liveness = sched::analyze_liveness(app.graph, app.schedule);
  ThreadedExecutor exec(app.plan, app.config(liveness.min_mem()),
                        app.make_init(), app.make_body());
  const RunReport r = exec.run();
  ASSERT_TRUE(r.executable) << r.failure;
  check_results(app, exec);
  EXPECT_GT(r.avg_maps(), 1.0);  // recycling actually happened
  for (std::int64_t peak : r.peak_bytes_per_proc) {
    EXPECT_LE(peak, liveness.min_mem());
  }
}

TEST(ThreadedExecutor, ReportsNonExecutableBelowMinMem) {
  CounterApp app(2);
  const auto liveness = sched::analyze_liveness(app.graph, app.schedule);
  ThreadedExecutor exec(app.plan, app.config(liveness.min_mem() - 8),
                        app.make_init(), app.make_body());
  const RunReport r = exec.run();
  EXPECT_FALSE(r.executable);
  EXPECT_FALSE(r.failure.empty());
}

TEST(ThreadedExecutor, BaselineModeMatches) {
  CounterApp app(2);
  const auto liveness = sched::analyze_liveness(app.graph, app.schedule);
  ThreadedExecutor exec(app.plan, app.config(liveness.tot_mem(), false),
                        app.make_init(), app.make_body());
  const RunReport r = exec.run();
  ASSERT_TRUE(r.executable) << r.failure;
  EXPECT_EQ(r.maps_per_proc[0], 0);
  check_results(app, exec);
}

TEST(ThreadedExecutor, MpoOrderAlsoCorrect) {
  CounterApp app(2, /*mpo=*/true);
  const auto liveness = sched::analyze_liveness(app.graph, app.schedule);
  ThreadedExecutor exec(app.plan, app.config(liveness.min_mem()),
                        app.make_init(), app.make_body());
  const RunReport r = exec.run();
  ASSERT_TRUE(r.executable) << r.failure;
  check_results(app, exec);
}

TEST(ThreadedExecutor, RepeatedTightRunsStayCorrect) {
  // Hammer the protocol: many runs at the exact memory floor; thread
  // interleavings differ, results must not.
  CounterApp app(2);
  const auto liveness = sched::analyze_liveness(app.graph, app.schedule);
  for (int round = 0; round < 25; ++round) {
    ThreadedExecutor exec(app.plan, app.config(liveness.min_mem()),
                          app.make_init(), app.make_body());
    const RunReport r = exec.run();
    ASSERT_TRUE(r.executable) << r.failure;
    check_results(app, exec);
  }
}

TEST(ThreadedExecutor, WatchdogCatchesStalledProtocol) {
  // Fault injection: one task body blocks far beyond the watchdog window,
  // so global progress stops and the watchdog must abort the run with
  // ProtocolDeadlockError instead of hanging forever.
  CounterApp app(2);
  ThreadedOptions options;
  options.watchdog_seconds = 0.2;
  std::atomic<bool> stalled{false};
  ThreadedExecutor exec(
      app.plan, app.config(1 << 16), app.make_init(),
      [&](graph::TaskId t, ObjectResolver& resolver) {
        if (!stalled.exchange(true)) {
          std::this_thread::sleep_for(std::chrono::seconds(2));
        }
        app.make_body()(t, resolver);
      },
      options);
  EXPECT_THROW(exec.run(), ProtocolDeadlockError);
}

TEST(ThreadedExecutor, MultiSlotMailboxesAlsoCorrect) {
  CounterApp app(2);
  const auto liveness = sched::analyze_liveness(app.graph, app.schedule);
  auto config = app.config(liveness.min_mem());
  config.mailbox_slots = 4;
  ThreadedExecutor exec(app.plan, config, app.make_init(), app.make_body());
  const RunReport r = exec.run();
  ASSERT_TRUE(r.executable) << r.failure;
  check_results(app, exec);
}

TEST(ThreadedExecutor, ReadObjectBeforeRunThrows) {
  CounterApp app(2);
  ThreadedExecutor exec(app.plan, app.config(1 << 16), app.make_init(),
                        app.make_body());
  EXPECT_THROW(exec.read_object(0), Error);
}

TEST(ThreadedExecutor, ReadObjectAfterNonExecutableRunThrows) {
  CounterApp app(2);
  const auto liveness = sched::analyze_liveness(app.graph, app.schedule);
  ThreadedExecutor exec(app.plan, app.config(liveness.min_mem() - 8),
                        app.make_init(), app.make_body());
  const RunReport r = exec.run();
  ASSERT_FALSE(r.executable);
  EXPECT_THROW(exec.read_object(0), Error);
}

TEST(ThreadedExecutor, OversubscribedProcsStayCorrect) {
  // More worker threads than objects-per-proc niceties or hardware cores:
  // the spin-then-park backoff must keep the protocol live and correct
  // when every thread fights for the same core.
  CounterApp app(8);
  const auto liveness = sched::analyze_liveness(app.graph, app.schedule);
  ThreadedExecutor exec(app.plan, app.config(liveness.min_mem()),
                        app.make_init(), app.make_body());
  const RunReport r = exec.run();
  ASSERT_TRUE(r.executable) << r.failure;
  check_results(app, exec);
}

TEST(ThreadedExecutor, TaskBodyErrorSurfacesAsExecutionFailed) {
  CounterApp app(2);
  ThreadedExecutor exec(
      app.plan, app.config(1 << 16), app.make_init(),
      [](graph::TaskId, ObjectResolver&) { throw std::runtime_error("bug"); });
  try {
    exec.run();
    FAIL() << "expected ExecutionFailedError";
  } catch (const ExecutionFailedError& e) {
    EXPECT_NE(std::string(e.what()).find("bug"), std::string::npos);
    ASSERT_FALSE(e.errors().empty());
  }
}

TEST(ThreadedExecutor, AllConcurrentFailuresAreRecorded) {
  // Two independent producer tasks, one per processor, rendezvous on a
  // barrier and then both throw, so two failures race into the executor:
  // the report and the exception must carry both, not just whichever
  // thread won.
  graph::TaskGraph g;
  const auto d0 = g.add_data("d0", 8, 0);
  const auto d1 = g.add_data("d1", 8, 1);
  const auto t0 = g.add_task("A0", {}, {d0}, 1.0);
  const auto t1 = g.add_task("A1", {}, {d1}, 1.0);
  g.finalize();
  sched::Schedule s;
  s.num_procs = 2;
  s.order = {{t0}, {t1}};
  s.rebuild_index(g.num_tasks());
  const RunPlan plan = build_run_plan(g, s);
  RunConfig config;
  config.capacity_per_proc = 1 << 10;
  config.active_memory = true;
  config.params = machine::MachineParams::cray_t3d(2);
  std::atomic<int> entered{0};
  ThreadedExecutor exec(
      plan, config, {},
      [&](graph::TaskId t, ObjectResolver&) {
        entered.fetch_add(1);
        // Wait (bounded) until the other processor's task has also
        // started, so neither failure can cancel the other pre-emptively.
        const auto deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(2);
        while (entered.load() < 2 &&
               std::chrono::steady_clock::now() < deadline) {
          std::this_thread::yield();
        }
        throw std::runtime_error("task " + g.task(t).name + " failed");
      });
  try {
    exec.run();
    FAIL() << "expected ExecutionFailedError";
  } catch (const ExecutionFailedError& e) {
    EXPECT_GE(e.errors().size(), 2u) << e.what();
    for (const std::string& err : e.errors()) {
      EXPECT_NE(err.find("failed"), std::string::npos);
    }
  }
}

TEST(ThreadedExecutor, WritingNonOwnedObjectThrows) {
  CounterApp app(2);
  std::atomic<bool> violated{false};
  ThreadedExecutor exec(
      app.plan, app.config(1 << 16), app.make_init(),
      [&](graph::TaskId t, ObjectResolver& resolver) {
        // Try to write an object the task's processor does not own.
        const auto& task = app.graph.task(t);
        if (!task.reads.empty() && task.reads.front() != task.writes.front()) {
          try {
            resolver.write(task.reads.front());
          } catch (const Error&) {
            violated = true;
            throw;
          }
        }
        app.make_body()(t, resolver);
      });
  EXPECT_THROW(exec.run(), ExecutionFailedError);
  EXPECT_TRUE(violated.load());
}

}  // namespace
}  // namespace rapid::rt
