#include <gtest/gtest.h>

#include <algorithm>

#include "rapid/sparse/coo.hpp"
#include "rapid/sparse/etree.hpp"
#include "rapid/sparse/generators.hpp"
#include "rapid/sparse/symbolic.hpp"
#include "rapid/support/rng.hpp"

namespace rapid::sparse {
namespace {

/// Brute-force symbolic Cholesky by scalar elimination on a dense boolean
/// matrix: fill(i,j) if a(i,j) or exists k < min(i,j) with fill(i,k) and
/// fill(j,k).
std::vector<bool> brute_force_fill(const CscPattern& a) {
  const Index n = a.n_cols;
  std::vector<bool> m(static_cast<std::size_t>(n) * n, false);
  for (Index j = 0; j < n; ++j) {
    m[j * n + j] = true;
    for (Index k = a.col_ptr[j]; k < a.col_ptr[j + 1]; ++k) {
      m[j * n + a.row_idx[k]] = true;
      m[a.row_idx[k] * n + j] = true;  // symmetrize
    }
  }
  for (Index k = 0; k < n; ++k) {
    for (Index i = k + 1; i < n; ++i) {
      if (!m[k * n + i]) continue;
      for (Index j = k + 1; j <= i; ++j) {
        if (m[k * n + j]) m[j * n + i] = true;
      }
    }
  }
  return m;
}

CscPattern random_symmetric_pattern(Index n, double density, Rng& rng) {
  CooBuilder coo(n, n);
  for (Index j = 0; j < n; ++j) {
    coo.add(j, j, 1.0);
    for (Index i = j + 1; i < n; ++i) {
      if (rng.next_bool(density)) {
        coo.add(i, j, 1.0);
        coo.add(j, i, 1.0);
      }
    }
  }
  return coo.to_csc().pattern;
}

TEST(Etree, ChainGraph) {
  // Tridiagonal: parent[i] = i+1.
  CooBuilder coo(5, 5);
  for (Index i = 0; i < 5; ++i) coo.add(i, i, 1);
  for (Index i = 0; i + 1 < 5; ++i) {
    coo.add(i + 1, i, 1);
    coo.add(i, i + 1, 1);
  }
  const auto parent = elimination_tree(coo.to_csc().pattern);
  for (Index i = 0; i + 1 < 5; ++i) EXPECT_EQ(parent[i], i + 1);
  EXPECT_EQ(parent[4], -1);
}

TEST(Etree, ForestForBlockDiagonal) {
  CooBuilder coo(4, 4);
  coo.add(1, 0, 1);
  coo.add(0, 1, 1);
  coo.add(3, 2, 1);
  coo.add(2, 3, 1);
  for (Index i = 0; i < 4; ++i) coo.add(i, i, 1);
  const auto parent = elimination_tree(coo.to_csc().pattern);
  EXPECT_EQ(parent[0], 1);
  EXPECT_EQ(parent[1], -1);
  EXPECT_EQ(parent[2], 3);
  EXPECT_EQ(parent[3], -1);
}

TEST(Etree, PostorderChildrenBeforeParents) {
  Rng rng(21);
  const CscPattern a = random_symmetric_pattern(40, 0.1, rng);
  const auto parent = elimination_tree(a);
  const auto order = postorder(parent);
  ASSERT_EQ(order.size(), 40u);
  std::vector<Index> pos(40);
  for (Index i = 0; i < 40; ++i) pos[order[i]] = i;
  for (Index v = 0; v < 40; ++v) {
    if (parent[v] != -1) {
      EXPECT_LT(pos[v], pos[parent[v]]);
    }
  }
}

TEST(Etree, TreeDepths) {
  const std::vector<Index> parent = {1, 2, -1, 2};
  const auto depth = tree_depths(parent);
  EXPECT_EQ(depth[2], 0);
  EXPECT_EQ(depth[1], 1);
  EXPECT_EQ(depth[0], 2);
  EXPECT_EQ(depth[3], 1);
}

TEST(SymbolicCholesky, MatchesBruteForceOnRandomPatterns) {
  Rng rng(33);
  for (int trial = 0; trial < 10; ++trial) {
    const Index n = static_cast<Index>(10 + rng.next_below(30));
    const CscPattern a = random_symmetric_pattern(n, 0.08, rng);
    const SymbolicFactor f = symbolic_cholesky(a);
    const auto brute = brute_force_fill(a);
    for (Index j = 0; j < n; ++j) {
      for (Index i = j; i < n; ++i) {
        EXPECT_EQ(f.l_pattern.contains(i, j), brute[j * n + i])
            << "mismatch at (" << i << "," << j << ") trial " << trial;
      }
    }
  }
}

TEST(SymbolicCholesky, FillContainsInputLowerTriangle) {
  const CscMatrix a = grid_laplacian_2d(8, 8);
  const SymbolicFactor f = symbolic_cholesky(a.pattern);
  for (Index j = 0; j < a.n_cols(); ++j) {
    for (Index k = a.pattern.col_ptr[j]; k < a.pattern.col_ptr[j + 1]; ++k) {
      if (a.pattern.row_idx[k] >= j) {
        EXPECT_TRUE(f.l_pattern.contains(a.pattern.row_idx[k], j));
      }
    }
  }
  EXPECT_GE(f.fill_nnz(), a.pattern.lower_triangle().nnz());
}

TEST(SymbolicCholesky, NoFillForTridiagonal) {
  CooBuilder coo(20, 20);
  for (Index i = 0; i < 20; ++i) coo.add(i, i, 1);
  for (Index i = 0; i + 1 < 20; ++i) {
    coo.add(i + 1, i, 1);
    coo.add(i, i + 1, 1);
  }
  const SymbolicFactor f = symbolic_cholesky(coo.to_csc().pattern);
  EXPECT_EQ(f.fill_nnz(), 39);  // diagonal + subdiagonal, no fill
}

TEST(SymbolicCholesky, ColumnCounts) {
  const CscMatrix a = grid_laplacian_2d(6, 6);
  const SymbolicFactor f = symbolic_cholesky(a.pattern);
  const auto counts = column_counts(f);
  Index total = 0;
  for (Index c : counts) total += c;
  EXPECT_EQ(total, f.fill_nnz());
  EXPECT_EQ(counts.back(), 1);  // last column: diagonal only
}

TEST(AtaPattern, MatchesDirectComputation) {
  Rng rng(55);
  CooBuilder coo(12, 10);
  for (int e = 0; e < 40; ++e) {
    coo.add(static_cast<Index>(rng.next_below(12)),
            static_cast<Index>(rng.next_below(10)), 1.0);
  }
  const CscMatrix a = coo.to_csc();
  const CscPattern ata = ata_pattern(a.pattern);
  EXPECT_EQ(ata.n_rows, 10);
  EXPECT_EQ(ata.n_cols, 10);
  for (Index i = 0; i < 10; ++i) {
    for (Index j = 0; j < 10; ++j) {
      bool share_row = false;
      for (Index r = 0; r < 12 && !share_row; ++r) {
        share_row = a.pattern.contains(r, i) && a.pattern.contains(r, j);
      }
      EXPECT_EQ(ata.contains(i, j), share_row)
          << "(" << i << "," << j << ")";
    }
  }
}

TEST(SymbolicLu, GeorgeNgContainsSymmetrizedBound) {
  // For a structurally symmetric matrix the George–Ng bound (AᵀA-based)
  // must contain the symmetrized bound's fill.
  const CscMatrix a = grid_laplacian_2d(7, 5);
  const SymbolicFactor sym = symbolic_lu_static(a.pattern);
  const SymbolicFactor gn = symbolic_lu_george_ng(a.pattern);
  for (Index j = 0; j < a.n_cols(); ++j) {
    for (Index k = sym.l_pattern.col_ptr[j];
         k < sym.l_pattern.col_ptr[j + 1]; ++k) {
      EXPECT_TRUE(gn.l_pattern.contains(sym.l_pattern.row_idx[k], j));
    }
  }
  EXPECT_GE(gn.fill_nnz(), sym.fill_nnz());
}

TEST(SymbolicLu, RowMergeBoundCoversActualLuFillUnderPivoting) {
  // Numeric check of the static-pivoting guarantee: factorize with partial
  // pivoting (dense, brute force) and verify every nonzero of L and U is
  // inside the row-merge bound. Strong winds force nontrivial pivoting.
  Rng rng(77);
  const CscMatrix a = convection_diffusion_2d(5, 5, 0.15, rng);
  const Index n = a.n_cols();
  const CscPattern bound = symbolic_lu_bound_pivoting(a.pattern);
  std::vector<double> dense = a.to_dense();
  std::vector<Index> rowperm(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) rowperm[i] = i;
  for (Index k = 0; k < n; ++k) {
    Index piv = k;
    for (Index i = k + 1; i < n; ++i) {
      if (std::abs(dense[k * n + i]) > std::abs(dense[k * n + piv])) piv = i;
    }
    if (piv != k) {
      for (Index c = 0; c < n; ++c) std::swap(dense[c * n + k], dense[c * n + piv]);
      std::swap(rowperm[k], rowperm[piv]);
    }
    const double d = dense[k * n + k];
    ASSERT_NE(d, 0.0);
    for (Index i = k + 1; i < n; ++i) dense[k * n + i] /= d;
    for (Index c = k + 1; c < n; ++c) {
      const double u = dense[c * n + k];
      if (u == 0.0) continue;
      for (Index i = k + 1; i < n; ++i) {
        dense[c * n + i] -= dense[k * n + i] * u;
      }
    }
  }
  // Every nonzero of the final packed L\U must be inside the bound (the
  // theorem's statement; intermediate positions move under later swaps).
  for (Index c = 0; c < n; ++c) {
    for (Index i = 0; i < n; ++i) {
      if (dense[c * n + i] != 0.0) {
        EXPECT_TRUE(bound.contains(i, c))
            << "factor entry (" << i << "," << c << ") escapes the bound";
      }
    }
  }
  (void)rowperm;
}

TEST(SymbolicLu, RowMergeBoundIsValidAndContainsInput) {
  Rng rng(91);
  const CscMatrix a = convection_diffusion_2d(6, 7, 0.2, rng);
  const CscPattern bound = symbolic_lu_bound_pivoting(a.pattern);
  EXPECT_NO_THROW(bound.validate());
  for (Index j = 0; j < a.n_cols(); ++j) {
    EXPECT_TRUE(bound.contains(j, j));
    for (Index k = a.pattern.col_ptr[j]; k < a.pattern.col_ptr[j + 1]; ++k) {
      EXPECT_TRUE(bound.contains(a.pattern.row_idx[k], j));
    }
  }
}

TEST(SymbolicLu, RowMergeBoundOnTriangularInputAddsNothing) {
  // A lower-triangular pattern has no pivot competition beyond the
  // diagonal? No: every subdiagonal entry makes its row a candidate. Use a
  // diagonal matrix instead: bound must be exactly the diagonal.
  CooBuilder coo(6, 6);
  for (Index i = 0; i < 6; ++i) coo.add(i, i, 1.0);
  const CscPattern bound = symbolic_lu_bound_pivoting(coo.to_csc().pattern);
  EXPECT_EQ(bound.nnz(), 6);
}

TEST(SymbolicLu, RowMergeCoverageSweep) {
  // Parameterized-style sweep: several random unsymmetric matrices, real
  // pivoted elimination, containment must hold every time.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    const CscMatrix a = convection_diffusion_2d(4, 5, 0.25, rng);
    const Index n = a.n_cols();
    const CscPattern bound = symbolic_lu_bound_pivoting(a.pattern);
    std::vector<double> dense = a.to_dense();
    for (Index k = 0; k < n; ++k) {
      Index piv = k;
      for (Index i = k + 1; i < n; ++i) {
        if (std::abs(dense[k * n + i]) > std::abs(dense[k * n + piv]))
          piv = i;
      }
      if (piv != k) {
        for (Index c = 0; c < n; ++c) {
          std::swap(dense[c * n + k], dense[c * n + piv]);
        }
      }
      ASSERT_NE(dense[k * n + k], 0.0);
      for (Index i = k + 1; i < n; ++i) dense[k * n + i] /= dense[k * n + k];
      for (Index c = k + 1; c < n; ++c) {
        const double u = dense[c * n + k];
        if (u == 0.0) continue;
        for (Index i = k + 1; i < n; ++i) {
          dense[c * n + i] -= dense[k * n + i] * u;
        }
      }
    }
    for (Index c = 0; c < n; ++c) {
      for (Index i = 0; i < n; ++i) {
        if (dense[c * n + i] != 0.0) {
          ASSERT_TRUE(bound.contains(i, c))
              << "seed " << seed << ": (" << i << "," << c << ")";
        }
      }
    }
  }
}

}  // namespace
}  // namespace rapid::sparse
