// Shared test fixture: integer micro-apps for the threaded executor whose
// task bodies are exact (64-bit adds/doublings, no floating-point rounding),
// so any thread interleaving must reproduce the sequential interpretation
// bit-for-bit. Used by the executor unit tests (Figure-2 graph) and the
// data-plane stress test (generated grid graphs at any size).
#pragma once

#include <cstring>
#include <span>
#include <vector>

#include "rapid/graph/task_graph.hpp"
#include "rapid/rt/threaded_executor.hpp"
#include "rapid/sched/mapping.hpp"
#include "rapid/sched/ordering.hpp"

namespace rapid::rt::testing {

/// A numeric micro-app over the Figure-2 DAG: every object is one int64
/// counter (8 bytes); T[j] sets d_j := j+1; T[i,j] adds d_i into d_j;
/// update tasks T[j] with reads double d_j. The expected final values are
/// computed by a sequential interpreter, so a threaded run checks protocol
/// correctness end to end (content transfer, versions, sync flags).
struct CounterApp {
  graph::TaskGraph graph = graph::make_paper_figure2_graph();
  sched::Schedule schedule;
  RunPlan plan;
  std::vector<std::int64_t> expected;

  explicit CounterApp(int procs, bool mpo = false) {
    // Resize objects to 8 bytes (the figure uses unit sizes).
    // TaskGraph sizes are fixed at add_data time, so rebuild a scaled graph.
    graph = rebuild_with_size(8, procs);
    const auto assignment = sched::owner_compute_tasks(graph, procs);
    const auto params = machine::MachineParams::cray_t3d(procs);
    schedule = mpo ? sched::schedule_mpo(graph, assignment, procs, params)
                   : sched::schedule_rcp(graph, assignment, procs, params);
    plan = build_run_plan(graph, schedule);
    expected = interpret();
  }

  static graph::TaskGraph rebuild_with_size(std::int64_t bytes, int procs) {
    const graph::TaskGraph proto = graph::make_paper_figure2_graph();
    graph::TaskGraph g;
    for (graph::DataId d = 0; d < proto.num_data(); ++d) {
      g.add_data(proto.data(d).name, bytes,
                 static_cast<graph::ProcId>(d % procs));
    }
    for (graph::TaskId t = 0; t < proto.num_tasks(); ++t) {
      const graph::Task& task = proto.task(t);
      g.add_task(task.name, task.reads, task.writes, task.flops,
                 task.commute_group);
    }
    g.finalize();
    return g;
  }

  /// Sequential reference semantics in program order.
  std::vector<std::int64_t> interpret() const {
    std::vector<std::int64_t> value(11, 0);
    for (graph::TaskId t = 0; t < graph.num_tasks(); ++t) {
      apply(t, value);
    }
    return value;
  }

  void apply(graph::TaskId t, std::vector<std::int64_t>& value) const {
    const graph::Task& task = graph.task(t);
    const graph::DataId target = task.writes.front();
    if (task.reads.empty()) {
      value[target] = target + 1;  // producer
    } else if (task.reads.front() == target) {
      value[target] *= 2;  // updater T[j]
    } else {
      value[target] += value[task.reads.front()];  // T[i,j]
    }
  }

  ObjectInit make_init() const {
    return [](graph::DataId, std::span<std::byte> buf) {
      std::memset(buf.data(), 0, buf.size());
    };
  }

  TaskBody make_body() const {
    return [this](graph::TaskId t, ObjectResolver& resolver) {
      const graph::Task& task = graph.task(t);
      const graph::DataId target = task.writes.front();
      auto out = resolver.write(target);
      auto* tv = reinterpret_cast<std::int64_t*>(out.data());
      if (task.reads.empty()) {
        *tv = target + 1;
      } else if (task.reads.front() == target) {
        *tv *= 2;
      } else {
        const auto in = resolver.read(task.reads.front());
        *tv += *reinterpret_cast<const std::int64_t*>(in.data());
      }
    };
  }

  RunConfig config(std::int64_t capacity, bool active = true) const {
    RunConfig c;
    c.capacity_per_proc = capacity;
    c.active_memory = active;
    c.params = machine::MachineParams::cray_t3d(plan.num_procs);
    return c;
  }
};

}  // namespace rapid::rt::testing
