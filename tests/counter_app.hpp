// Shared test fixture: integer micro-apps for the threaded executor whose
// task bodies are exact (64-bit adds/doublings, no floating-point rounding),
// so any thread interleaving must reproduce the sequential interpretation
// bit-for-bit. Used by the executor unit tests (Figure-2 graph) and the
// data-plane stress test (generated grid graphs at any size).
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "rapid/graph/task_graph.hpp"
#include "rapid/rt/threaded_executor.hpp"
#include "rapid/sched/mapping.hpp"
#include "rapid/sched/ordering.hpp"
#include "rapid/support/rng.hpp"

namespace rapid::rt::testing {

/// A numeric micro-app over the Figure-2 DAG: every object is one int64
/// counter (8 bytes); T[j] sets d_j := j+1; T[i,j] adds d_i into d_j;
/// update tasks T[j] with reads double d_j. The expected final values are
/// computed by a sequential interpreter, so a threaded run checks protocol
/// correctness end to end (content transfer, versions, sync flags).
struct CounterApp {
  graph::TaskGraph graph = graph::make_paper_figure2_graph();
  sched::Schedule schedule;
  RunPlan plan;
  std::vector<std::int64_t> expected;

  explicit CounterApp(int procs, bool mpo = false) {
    // Resize objects to 8 bytes (the figure uses unit sizes).
    // TaskGraph sizes are fixed at add_data time, so rebuild a scaled graph.
    graph = rebuild_with_size(8, procs);
    const auto assignment = sched::owner_compute_tasks(graph, procs);
    const auto params = machine::MachineParams::cray_t3d(procs);
    schedule = mpo ? sched::schedule_mpo(graph, assignment, procs, params)
                   : sched::schedule_rcp(graph, assignment, procs, params);
    plan = build_run_plan(graph, schedule);
    expected = interpret();
  }

  static graph::TaskGraph rebuild_with_size(std::int64_t bytes, int procs) {
    const graph::TaskGraph proto = graph::make_paper_figure2_graph();
    graph::TaskGraph g;
    for (graph::DataId d = 0; d < proto.num_data(); ++d) {
      g.add_data(proto.data(d).name, bytes,
                 static_cast<graph::ProcId>(d % procs));
    }
    for (graph::TaskId t = 0; t < proto.num_tasks(); ++t) {
      const graph::Task& task = proto.task(t);
      g.add_task(task.name, task.reads, task.writes, task.flops,
                 task.commute_group);
    }
    g.finalize();
    return g;
  }

  /// Sequential reference semantics in program order.
  std::vector<std::int64_t> interpret() const {
    std::vector<std::int64_t> value(11, 0);
    for (graph::TaskId t = 0; t < graph.num_tasks(); ++t) {
      apply(t, value);
    }
    return value;
  }

  void apply(graph::TaskId t, std::vector<std::int64_t>& value) const {
    const graph::Task& task = graph.task(t);
    const graph::DataId target = task.writes.front();
    if (task.reads.empty()) {
      value[target] = target + 1;  // producer
    } else if (task.reads.front() == target) {
      value[target] *= 2;  // updater T[j]
    } else {
      value[target] += value[task.reads.front()];  // T[i,j]
    }
  }

  ObjectInit make_init() const {
    return [](graph::DataId, std::span<std::byte> buf) {
      std::memset(buf.data(), 0, buf.size());
    };
  }

  TaskBody make_body() const {
    return [this](graph::TaskId t, ObjectResolver& resolver) {
      const graph::Task& task = graph.task(t);
      const graph::DataId target = task.writes.front();
      auto out = resolver.write(target);
      auto* tv = reinterpret_cast<std::int64_t*>(out.data());
      if (task.reads.empty()) {
        *tv = target + 1;
      } else if (task.reads.front() == target) {
        *tv *= 2;
      } else {
        const auto in = resolver.read(task.reads.front());
        *tv += *reinterpret_cast<const std::int64_t*>(in.data());
      }
    };
  }

  RunConfig config(std::int64_t capacity, bool active = true) const {
    RunConfig c;
    c.capacity_per_proc = capacity;
    c.active_memory = active;
    c.params = machine::MachineParams::cray_t3d(plan.num_procs);
    return c;
  }
};

/// Integer wavefront over a rows x cols grid of int64 counters. Row 0 is
/// produced from constants; row i sums two neighbours of row i-1; every
/// object then gets a doubling update task (same-object read-modify-write,
/// its own epoch). Owners are cyclic, so almost every edge crosses
/// processors and the data plane carries real traffic. Shared by the
/// data-plane stress test and the recovery tests.
struct GridApp {
  graph::TaskGraph graph;
  sched::Schedule schedule;
  RunPlan plan;
  std::vector<std::int64_t> expected;
  std::vector<graph::DataId> objects;
  int rows, cols;

  GridApp(int rows_, int cols_, int procs) : rows(rows_), cols(cols_) {
    objects.reserve(static_cast<std::size_t>(rows) * cols);
    for (int i = 0; i < rows; ++i) {
      for (int j = 0; j < cols; ++j) {
        objects.push_back(graph.add_data(
            "g(" + std::to_string(i) + "," + std::to_string(j) + ")", 8,
            static_cast<graph::ProcId>((i * cols + j) % procs)));
      }
    }
    for (int i = 0; i < rows; ++i) {
      for (int j = 0; j < cols; ++j) {
        const graph::DataId d = at(i, j);
        if (i == 0) {
          graph.add_task("P" + std::to_string(j), {}, {d}, 1.0);
        } else {
          graph.add_task("S(" + std::to_string(i) + "," + std::to_string(j) +
                             ")",
                         {at(i - 1, j), at(i - 1, (j + 1) % cols)}, {d}, 1.0);
        }
        graph.add_task("D(" + std::to_string(i) + "," + std::to_string(j) +
                           ")",
                       {d}, {d}, 1.0);
      }
    }
    graph.finalize();
    const auto assignment = sched::owner_compute_tasks(graph, procs);
    const auto params = machine::MachineParams::cray_t3d(procs);
    schedule = sched::schedule_mpo(graph, assignment, procs, params);
    plan = build_run_plan(graph, schedule);
    expected = interpret();
  }

  graph::DataId at(int i, int j) const {
    return objects[static_cast<std::size_t>(i) * cols + j];
  }

  std::vector<std::int64_t> interpret() const {
    std::vector<std::int64_t> value(objects.size(), 0);
    for (graph::TaskId t = 0; t < graph.num_tasks(); ++t) {
      apply(t, value);
    }
    return value;
  }

  void apply(graph::TaskId t, std::vector<std::int64_t>& value) const {
    const graph::Task& task = graph.task(t);
    const graph::DataId target = task.writes.front();
    if (task.reads.empty()) {
      value[target] = target + 7;  // producer
    } else if (task.reads.size() == 1) {
      value[target] *= 2;  // doubling update
    } else {
      value[target] = value[task.reads[0]] + value[task.reads[1]];
    }
  }

  ObjectInit make_init() const {
    return [](graph::DataId, std::span<std::byte> buf) {
      std::memset(buf.data(), 0, buf.size());
    };
  }

  /// Task bodies mirror apply(), with a per-task pseudorandom delay of
  /// 0–120 µs so interleavings vary wildly across runs while the result
  /// stays deterministic.
  TaskBody make_body() const {
    return [this](graph::TaskId t, ObjectResolver& resolver) {
      Rng rng(0x9E3779B9u ^ static_cast<std::uint64_t>(t));
      const auto delay = std::chrono::microseconds(rng.next_int(0, 120));
      std::this_thread::sleep_for(delay);
      const graph::Task& task = graph.task(t);
      const graph::DataId target = task.writes.front();
      auto* tv = reinterpret_cast<std::int64_t*>(resolver.write(target).data());
      if (task.reads.empty()) {
        *tv = target + 7;
      } else if (task.reads.size() == 1) {
        *tv *= 2;
      } else {
        const auto a = resolver.read(task.reads[0]);
        const auto b = resolver.read(task.reads[1]);
        *tv = *reinterpret_cast<const std::int64_t*>(a.data()) +
              *reinterpret_cast<const std::int64_t*>(b.data());
      }
    };
  }

  void check_results(const ThreadedExecutor& exec) const {
    for (graph::DataId d = 0; d < graph.num_data(); ++d) {
      const auto bytes = exec.read_object(d);
      std::int64_t v = 0;
      std::memcpy(&v, bytes.data(), sizeof(v));
      ASSERT_EQ(v, expected[d]) << graph.data(d).name;
    }
  }
};

inline int oversubscribed_procs(int factor) {
  const int hw =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  // Cap the thread count: TSan serializes heavily, and past ~16 threads the
  // test measures the sanitizer, not the protocol.
  return std::clamp(factor * hw, 4, 16);
}

}  // namespace rapid::rt::testing
