// Stress test for the lock-free RMA data plane: runs the threaded executor
// heavily oversubscribed (num_procs at 2–4x hardware_concurrency, so every
// blocked state actually parks and every wakeup path is exercised) over a
// generated integer grid DAG with randomized task-body durations. Integer
// arithmetic makes the expected result exact: any missed release/acquire
// pairing, torn payload, or lost wakeup shows up as a wrong counter value,
// a TSan report (this test is in the TSan CI lane), or a watchdog trip
// (surfacing as ProtocolDeadlockError, which the test treats as failure).
// The discrete-event SimExecutor runs the same plan as a protocol oracle:
// both executors must agree on the task and content-message totals.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "rapid/rt/sim_executor.hpp"
#include "rapid/rt/threaded_executor.hpp"
#include "rapid/sched/liveness.hpp"
#include "rapid/sched/mapping.hpp"
#include "rapid/sched/ordering.hpp"
#include "rapid/support/rng.hpp"

namespace rapid::rt {
namespace {

/// Integer wavefront over a rows x cols grid of int64 counters. Row 0 is
/// produced from constants; row i sums two neighbours of row i-1; every
/// object then gets a doubling update task (same-object read-modify-write,
/// its own epoch). Owners are cyclic, so almost every edge crosses
/// processors and the data plane carries real traffic.
struct GridApp {
  graph::TaskGraph graph;
  sched::Schedule schedule;
  RunPlan plan;
  std::vector<std::int64_t> expected;
  std::vector<graph::DataId> objects;
  int rows, cols;

  GridApp(int rows_, int cols_, int procs) : rows(rows_), cols(cols_) {
    objects.reserve(static_cast<std::size_t>(rows) * cols);
    for (int i = 0; i < rows; ++i) {
      for (int j = 0; j < cols; ++j) {
        objects.push_back(graph.add_data(
            "g(" + std::to_string(i) + "," + std::to_string(j) + ")", 8,
            static_cast<graph::ProcId>((i * cols + j) % procs)));
      }
    }
    for (int i = 0; i < rows; ++i) {
      for (int j = 0; j < cols; ++j) {
        const graph::DataId d = at(i, j);
        if (i == 0) {
          graph.add_task("P" + std::to_string(j), {}, {d}, 1.0);
        } else {
          graph.add_task("S(" + std::to_string(i) + "," + std::to_string(j) +
                             ")",
                         {at(i - 1, j), at(i - 1, (j + 1) % cols)}, {d}, 1.0);
        }
        graph.add_task("D(" + std::to_string(i) + "," + std::to_string(j) +
                           ")",
                       {d}, {d}, 1.0);
      }
    }
    graph.finalize();
    const auto assignment = sched::owner_compute_tasks(graph, procs);
    const auto params = machine::MachineParams::cray_t3d(procs);
    schedule = sched::schedule_mpo(graph, assignment, procs, params);
    plan = build_run_plan(graph, schedule);
    expected = interpret();
  }

  graph::DataId at(int i, int j) const {
    return objects[static_cast<std::size_t>(i) * cols + j];
  }

  std::vector<std::int64_t> interpret() const {
    std::vector<std::int64_t> value(objects.size(), 0);
    for (graph::TaskId t = 0; t < graph.num_tasks(); ++t) {
      apply(t, value);
    }
    return value;
  }

  void apply(graph::TaskId t, std::vector<std::int64_t>& value) const {
    const graph::Task& task = graph.task(t);
    const graph::DataId target = task.writes.front();
    if (task.reads.empty()) {
      value[target] = target + 7;  // producer
    } else if (task.reads.size() == 1) {
      value[target] *= 2;  // doubling update
    } else {
      value[target] = value[task.reads[0]] + value[task.reads[1]];
    }
  }

  ObjectInit make_init() const {
    return [](graph::DataId, std::span<std::byte> buf) {
      std::memset(buf.data(), 0, buf.size());
    };
  }

  /// Task bodies mirror apply(), with a per-task pseudorandom delay of
  /// 0–120 µs so interleavings vary wildly across runs while the result
  /// stays deterministic.
  TaskBody make_body() const {
    return [this](graph::TaskId t, ObjectResolver& resolver) {
      Rng rng(0x9E3779B9u ^ static_cast<std::uint64_t>(t));
      const auto delay = std::chrono::microseconds(rng.next_int(0, 120));
      std::this_thread::sleep_for(delay);
      const graph::Task& task = graph.task(t);
      const graph::DataId target = task.writes.front();
      auto* tv = reinterpret_cast<std::int64_t*>(resolver.write(target).data());
      if (task.reads.empty()) {
        *tv = target + 7;
      } else if (task.reads.size() == 1) {
        *tv *= 2;
      } else {
        const auto a = resolver.read(task.reads[0]);
        const auto b = resolver.read(task.reads[1]);
        *tv = *reinterpret_cast<const std::int64_t*>(a.data()) +
              *reinterpret_cast<const std::int64_t*>(b.data());
      }
    };
  }

  void check_results(const ThreadedExecutor& exec) const {
    for (graph::DataId d = 0; d < graph.num_data(); ++d) {
      const auto bytes = exec.read_object(d);
      std::int64_t v = 0;
      std::memcpy(&v, bytes.data(), sizeof(v));
      ASSERT_EQ(v, expected[d]) << graph.data(d).name;
    }
  }
};

int oversubscribed_procs(int factor) {
  const int hw =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  // Cap the thread count: TSan serializes heavily, and past ~16 threads the
  // test measures the sanitizer, not the protocol.
  return std::clamp(factor * hw, 4, 16);
}

void run_stress(int procs, bool tight_memory) {
  GridApp app(/*rows=*/6, /*cols=*/procs, procs);
  RunConfig config;
  config.params = machine::MachineParams::cray_t3d(procs);
  config.active_memory = true;
  const auto liveness = sched::analyze_liveness(app.graph, app.schedule);
  config.capacity_per_proc =
      tight_memory ? liveness.min_mem() : liveness.tot_mem();

  // The SimExecutor as protocol oracle on the identical plan.
  const RunReport sim = simulate(app.plan, config);
  ASSERT_TRUE(sim.executable) << sim.failure;

  ThreadedExecutor exec(app.plan, config, app.make_init(), app.make_body());
  // run() throwing ProtocolDeadlockError here would mean a watchdog trip —
  // a liveness bug in the lock-free plane; the test fails on the throw.
  const RunReport r = exec.run();
  ASSERT_TRUE(r.executable) << r.failure;
  app.check_results(exec);
  EXPECT_EQ(r.tasks_executed, sim.tasks_executed);
  EXPECT_EQ(r.content_messages, sim.content_messages);
  EXPECT_EQ(r.flag_messages, sim.flag_messages);
}

TEST(DataPlaneStress, Oversubscribed2xAmpleMemory) {
  run_stress(oversubscribed_procs(2), /*tight_memory=*/false);
}

TEST(DataPlaneStress, Oversubscribed2xMinMemory) {
  run_stress(oversubscribed_procs(2), /*tight_memory=*/true);
}

TEST(DataPlaneStress, Oversubscribed4xMinMemory) {
  run_stress(oversubscribed_procs(4), /*tight_memory=*/true);
}

TEST(DataPlaneStress, RepeatedTightRunsVaryInterleavings) {
  const int procs = oversubscribed_procs(2);
  GridApp app(/*rows=*/4, /*cols=*/procs, procs);
  RunConfig config;
  config.params = machine::MachineParams::cray_t3d(procs);
  config.active_memory = true;
  config.capacity_per_proc =
      sched::analyze_liveness(app.graph, app.schedule).min_mem();
  for (int round = 0; round < 5; ++round) {
    ThreadedExecutor exec(app.plan, config, app.make_init(), app.make_body());
    const RunReport r = exec.run();
    ASSERT_TRUE(r.executable) << r.failure;
    app.check_results(exec);
  }
}

}  // namespace
}  // namespace rapid::rt
