// Stress test for the lock-free RMA data plane: runs the threaded executor
// heavily oversubscribed (num_procs at 2–4x hardware_concurrency, so every
// blocked state actually parks and every wakeup path is exercised) over a
// generated integer grid DAG with randomized task-body durations. Integer
// arithmetic makes the expected result exact: any missed release/acquire
// pairing, torn payload, or lost wakeup shows up as a wrong counter value,
// a TSan report (this test is in the TSan CI lane), or a watchdog trip
// (surfacing as ProtocolDeadlockError, which the test treats as failure).
// The discrete-event SimExecutor runs the same plan as a protocol oracle:
// both executors must agree on the task and content-message totals.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <thread>
#include <vector>

#include "counter_app.hpp"
#include "rapid/rt/faults.hpp"
#include "rapid/rt/sim_executor.hpp"
#include "rapid/rt/stall.hpp"
#include "rapid/rt/threaded_executor.hpp"
#include "rapid/sched/liveness.hpp"
#include "rapid/sched/mapping.hpp"
#include "rapid/sched/ordering.hpp"
#include "rapid/support/rng.hpp"
#include "rapid/support/stopwatch.hpp"

namespace rapid::rt {
namespace {

using testing::GridApp;
using testing::oversubscribed_procs;

void run_stress(int procs, bool tight_memory) {
  GridApp app(/*rows=*/6, /*cols=*/procs, procs);
  RunConfig config;
  config.params = machine::MachineParams::cray_t3d(procs);
  config.active_memory = true;
  const auto liveness = sched::analyze_liveness(app.graph, app.schedule);
  config.capacity_per_proc =
      tight_memory ? liveness.min_mem() : liveness.tot_mem();

  // The SimExecutor as protocol oracle on the identical plan.
  const RunReport sim = simulate(app.plan, config);
  ASSERT_TRUE(sim.executable) << sim.failure;

  ThreadedExecutor exec(app.plan, config, app.make_init(), app.make_body());
  // run() throwing ProtocolDeadlockError here would mean a watchdog trip —
  // a liveness bug in the lock-free plane; the test fails on the throw.
  const RunReport r = exec.run();
  ASSERT_TRUE(r.executable) << r.failure;
  app.check_results(exec);
  EXPECT_EQ(r.tasks_executed, sim.tasks_executed);
  EXPECT_EQ(r.content_messages, sim.content_messages);
  EXPECT_EQ(r.flag_messages, sim.flag_messages);
}

TEST(DataPlaneStress, Oversubscribed2xAmpleMemory) {
  run_stress(oversubscribed_procs(2), /*tight_memory=*/false);
}

TEST(DataPlaneStress, Oversubscribed2xMinMemory) {
  run_stress(oversubscribed_procs(2), /*tight_memory=*/true);
}

TEST(DataPlaneStress, Oversubscribed4xMinMemory) {
  run_stress(oversubscribed_procs(4), /*tight_memory=*/true);
}

TEST(DataPlaneStress, RepeatedTightRunsVaryInterleavings) {
  const int procs = oversubscribed_procs(2);
  GridApp app(/*rows=*/4, /*cols=*/procs, procs);
  RunConfig config;
  config.params = machine::MachineParams::cray_t3d(procs);
  config.active_memory = true;
  config.capacity_per_proc =
      sched::analyze_liveness(app.graph, app.schedule).min_mem();
  for (int round = 0; round < 5; ++round) {
    ThreadedExecutor exec(app.plan, config, app.make_init(), app.make_body());
    const RunReport r = exec.run();
    ASSERT_TRUE(r.executable) << r.failure;
    app.check_results(exec);
  }
}

// ---- fault-injection sweep -------------------------------------------------
//
// Each fault class perturbs message timings that a correct protocol must be
// insensitive to: delayed address packages (reordered delivery), delayed
// content-put publication (memcpy done, release store withheld), slowed task
// bodies, and forced park-timeout wakeups. 32 seeds per class on the
// counter-app DAG at MIN_MEM; every run must produce the exact sequential
// numerics and the same protocol message counts as the discrete-event
// simulator — and must never trip the stall monitor or watchdog (a throw of
// ProtocolDeadlockError here is a false positive and fails the sweep).

void run_fault_sweep(const std::string& preset) {
  constexpr int kProcs = 4;
  constexpr std::uint64_t kSeeds = 32;
  testing::CounterApp app(kProcs);
  const auto liveness = sched::analyze_liveness(app.graph, app.schedule);
  RunConfig config = app.config(liveness.min_mem());

  const RunReport sim = simulate(app.plan, config);
  ASSERT_TRUE(sim.executable) << sim.failure;

  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    ThreadedOptions options;
    options.faults = FaultPlan::preset(preset, seed);
    ASSERT_TRUE(options.faults.enabled());
    RunReport r;
    try {
      ThreadedExecutor exec(app.plan, config, app.make_init(),
                            app.make_body(), options);
      r = exec.run();
      ASSERT_TRUE(r.executable) << preset << " seed " << seed << ": "
                                << r.failure;
      for (graph::DataId d = 0; d < app.graph.num_data(); ++d) {
        const auto bytes = exec.read_object(d);
        std::int64_t v = 0;
        std::memcpy(&v, bytes.data(), sizeof(v));
        ASSERT_EQ(v, app.expected[d])
            << preset << " seed " << seed << ": " << app.graph.data(d).name;
      }
    } catch (const ProtocolDeadlockError& e) {
      FAIL() << preset << " seed " << seed
             << ": stall monitor false positive:\n"
             << e.what();
    }
    EXPECT_EQ(r.failure_kind, FailureKind::kNone);
    EXPECT_EQ(r.tasks_executed, sim.tasks_executed)
        << preset << " seed " << seed;
    EXPECT_EQ(r.content_messages, sim.content_messages)
        << preset << " seed " << seed;
    EXPECT_EQ(r.flag_messages, sim.flag_messages)
        << preset << " seed " << seed;
  }
}

TEST(FaultSweep, AddressPackageDelays) { run_fault_sweep("addr"); }
TEST(FaultSweep, ContentPutPublicationDelays) { run_fault_sweep("put"); }
TEST(FaultSweep, TaskBodySlowdowns) { run_fault_sweep("slow"); }
TEST(FaultSweep, ForcedParkTimeouts) { run_fault_sweep("park"); }

TEST(FaultSweep, DelaysAlsoHoldOnTheGridGraph) {
  // One heavier spot-check per class family on the oversubscribed grid DAG,
  // where blocked states really park.
  const int procs = oversubscribed_procs(2);
  GridApp app(/*rows=*/4, /*cols=*/procs, procs);
  RunConfig config;
  config.params = machine::MachineParams::cray_t3d(procs);
  config.active_memory = true;
  config.capacity_per_proc =
      sched::analyze_liveness(app.graph, app.schedule).min_mem();
  for (const char* preset : {"addr", "park"}) {
    ThreadedOptions options;
    options.faults = FaultPlan::preset(preset, /*seed=*/7);
    ThreadedExecutor exec(app.plan, config, app.make_init(), app.make_body(),
                          options);
    const RunReport r = exec.run();
    ASSERT_TRUE(r.executable) << preset << ": " << r.failure;
    app.check_results(exec);
  }
}

// ---- induced failures ------------------------------------------------------

TEST(FaultInjection, DroppedAddressPackageIsDiagnosedAsDeadlock) {
  // Drop the first address package processor 0 sends. The owner it was
  // destined for never learns p0's buffer addresses, its content sends to
  // p0 suspend forever, and p0 blocks waiting for that content: a genuine
  // wait-for cycle the stall monitor must prove and report long before the
  // watchdog deadline.
  constexpr int kProcs = 4;
  testing::CounterApp app(kProcs);
  const auto liveness = sched::analyze_liveness(app.graph, app.schedule);
  RunConfig config = app.config(liveness.min_mem());
  ThreadedOptions options;
  options.watchdog_seconds = 25.0;  // must NOT be what fires
  options.faults.drop_addr_src = 0;
  options.faults.drop_addr_nth = 1;
  ThreadedExecutor exec(app.plan, config, app.make_init(), app.make_body(),
                        options);
  Stopwatch elapsed;
  try {
    exec.run();
    FAIL() << "expected ProtocolDeadlockError";
  } catch (const ProtocolDeadlockError& e) {
    // Diagnosed by the stall monitor in seconds, not by the 25 s watchdog.
    EXPECT_LT(elapsed.seconds(), 10.0);
    ASSERT_NE(e.report(), nullptr) << e.what();
    const StallReport& report = *e.report();
    EXPECT_TRUE(report.genuine_deadlock);
    ASSERT_FALSE(report.cycle.empty()) << e.what();
    // p0 is part of the cycle: it waits for content whose sends are
    // suspended behind the dropped package.
    EXPECT_NE(std::find(report.cycle.begin(), report.cycle.end(), 0),
              report.cycle.end());
    ASSERT_EQ(report.procs.size(), static_cast<std::size_t>(kProcs));
    // The report names the blocked object on at least one content edge.
    bool has_content_edge = false;
    for (const WaitEdge& edge : report.edges) {
      if (edge.kind == WaitEdge::Kind::kContent) {
        has_content_edge = true;
        EXPECT_NE(edge.object, graph::kInvalidData);
      }
    }
    EXPECT_TRUE(has_content_edge) << e.what();
    // The suspended sends behind the dropped package appear as
    // address-package edges.
    bool has_addr_edge = false;
    for (const WaitEdge& edge : report.edges) {
      has_addr_edge |= edge.kind == WaitEdge::Kind::kAddrPackage;
    }
    EXPECT_TRUE(has_addr_edge) << e.what();
    // The rendered summary names states and the cycle for humans.
    const std::string text = report.summary();
    EXPECT_NE(text.find("wait-for cycle"), std::string::npos);
    // CI artifact: dump the structured report when a directory is given.
    if (const char* dir = std::getenv("RAPID_STALL_REPORT_DIR")) {
      std::ofstream out(std::string(dir) + "/stall_report.json");
      out << report.to_json().dump();
    }
  }
}

TEST(FaultInjection, InjectedTaskThrowCancelsCooperatively) {
  constexpr int kProcs = 4;
  testing::CounterApp app(kProcs);
  const auto liveness = sched::analyze_liveness(app.graph, app.schedule);
  RunConfig config = app.config(liveness.min_mem());
  ThreadedOptions options;
  options.faults.throw_in_task = app.graph.num_tasks() / 2;
  ThreadedExecutor exec(app.plan, config, app.make_init(), app.make_body(),
                        options);
  try {
    exec.run();
    FAIL() << "expected ExecutionFailedError";
  } catch (const ExecutionFailedError& e) {
    EXPECT_NE(std::string(e.what()).find("injected fault"),
              std::string::npos);
    ASSERT_FALSE(e.errors().empty());
  }
}

TEST(FaultInjection, DisabledPlanIsIdentityAndDrawsAreDeterministic) {
  FaultPlan off;
  EXPECT_FALSE(off.enabled());
  EXPECT_EQ(off.addr_delay_us(0, 1, 1), 0);
  EXPECT_EQ(off.put_delay_us(0, 1, 1), 0);
  EXPECT_EQ(off.task_delay_us(0), 0);

  const FaultPlan a = FaultPlan::preset("addr", 42);
  const FaultPlan b = FaultPlan::preset("addr", 42);
  const FaultPlan c = FaultPlan::preset("addr", 43);
  bool any_nonzero = false, any_differs = false;
  for (std::int64_t i = 1; i <= 64; ++i) {
    EXPECT_EQ(a.addr_delay_us(0, 1, i), b.addr_delay_us(0, 1, i));
    any_nonzero |= a.addr_delay_us(0, 1, i) > 0;
    any_differs |= a.addr_delay_us(0, 1, i) != c.addr_delay_us(0, 1, i);
  }
  EXPECT_TRUE(any_nonzero);
  EXPECT_TRUE(any_differs);
  EXPECT_THROW(FaultPlan::preset("bogus", 1), Error);
}

}  // namespace
}  // namespace rapid::rt
