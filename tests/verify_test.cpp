// Plan auditor tests: clean bills of health for valid pipelines, and —
// the point of an auditor — exact rule-id diagnostics when a schedule,
// plan, or graph is deliberately corrupted. Each negative test mutates one
// thing a real bug could break (a dropped dependence edge, a capacity below
// a MAP's need, a shifted volatile lifetime, a lost message, a bent
// version) and asserts the auditor names the rule and the location.
#include <gtest/gtest.h>

#include <algorithm>

#include "rapid/num/workloads.hpp"
#include "rapid/num/cholesky_app.hpp"
#include "rapid/rt/sim_executor.hpp"
#include "rapid/rt/threaded_executor.hpp"
#include "rapid/sched/liveness.hpp"
#include "rapid/sched/mapping.hpp"
#include "rapid/sched/ordering.hpp"
#include "rapid/verify/auditor.hpp"
#include "rapid/verify/testing.hpp"

namespace rapid::verify {
namespace {

struct Fixture {
  graph::TaskGraph graph = graph::make_paper_figure2_graph();
  sched::Schedule schedule;
  rt::RunPlan plan;
  sched::LivenessTable liveness;

  Fixture() {
    const auto assignment = sched::owner_compute_tasks(graph, 2);
    schedule = sched::schedule_mpo(graph, assignment, 2,
                                   machine::MachineParams::cray_t3d(2));
    plan = rt::build_run_plan(graph, schedule);
    liveness = sched::analyze_liveness(graph, schedule);
  }
};

// ---- positive paths ------------------------------------------------------

TEST(Auditor, CleanOnPaperExample) {
  Fixture f;
  EXPECT_PLAN_CLEAN(f.graph, f.schedule, f.plan);
  EXPECT_PLAN_CLEAN_AT(f.graph, f.schedule, f.plan, f.liveness.min_mem());
}

TEST(Auditor, CleanOnCholeskyPipeline) {
  auto workload = num::bcsstk24_like(0.25);
  auto app = num::CholeskyApp::build(std::move(workload.matrix), 6, 4);
  const auto& g = app.graph();
  const auto assignment = sched::owner_compute_tasks(g, 4);
  for (const char* name : {"rcp", "mpo", "dts"}) {
    const std::string ordering = name;
    const auto params = machine::MachineParams::cray_t3d(4);
    const sched::Schedule s =
        ordering == "rcp"   ? sched::schedule_rcp(g, assignment, 4, params)
        : ordering == "mpo" ? sched::schedule_mpo(g, assignment, 4, params)
                            : sched::schedule_dts(g, assignment, 4, params);
    const rt::RunPlan plan = rt::build_run_plan(g, s);
    // MIN_MEM + 1/8 slack: the executability threshold the rest of the
    // suite uses (first-fit can fragment just above the Def. 6 bound).
    const auto min_mem = sched::analyze_liveness(g, s).min_mem();
    EXPECT_PLAN_CLEAN_AT(g, s, plan, min_mem + min_mem / 8);
  }
}

TEST(Auditor, ReportRendersRuleAndLocation) {
  Fixture f;
  AuditOptions options;
  options.capacity_per_proc = f.liveness.min_mem() - 1;
  const AuditReport report =
      audit_plan(f.graph, f.schedule, f.plan, options);
  ASSERT_FALSE(report.clean());
  const std::string text = report.to_string();
  EXPECT_NE(text.find("CAP-MAP"), std::string::npos);
  EXPECT_NE(text.find("hint:"), std::string::npos);
  EXPECT_NE(text.find("Def. 6"), std::string::npos);
}

// ---- corruption 1: a dropped dependence edge -----------------------------

TEST(Auditor, DroppedEdgeBreaksDependenceCompleteness) {
  // Drop each kept edge in turn; whenever no other path covers the pair,
  // the auditor must flag a DEP-* violation naming the edge's object.
  // At least one kept edge per kind must be load-bearing on this graph.
  int dep_findings = 0;
  bool blamed_dropped_object = false;
  bool saw_true_drop = false, saw_sync_drop = false;
  const Fixture reference;
  const auto num_edges =
      static_cast<std::int32_t>(reference.graph.edges().size());
  for (std::int32_t ei = 0; ei < num_edges; ++ei) {
    if (reference.graph.edges()[ei].redundant) continue;
    Fixture f;  // fresh copy of graph + schedule + plan
    const graph::Edge edge = f.graph.edges()[ei];
    f.graph.drop_edge_for_test(ei);
    const AuditReport report = audit_plan(f.graph, f.schedule, f.plan, {});
    bool found = false;
    for (const Finding& finding : report.findings) {
      if (finding.rule != "DEP-RAW" && finding.rule != "DEP-WAR" &&
          finding.rule != "DEP-WAW") {
        continue;
      }
      found = true;
      EXPECT_GE(finding.object, 0) << finding.rule << " names no object";
      // A drop can also sever a *different* object's covering path, so the
      // blamed object need not equal edge.object every time — but it must
      // for at least one drop (checked after the loop).
      if (finding.object == edge.object) blamed_dropped_object = true;
    }
    if (found) {
      ++dep_findings;
      (edge.kind == graph::DepKind::kTrue ? saw_true_drop : saw_sync_drop) =
          true;
    }
  }
  EXPECT_GT(dep_findings, 0);
  EXPECT_TRUE(blamed_dropped_object);
  EXPECT_TRUE(saw_true_drop);  // a lost RAW/WAW path is detected
  EXPECT_TRUE(saw_sync_drop);  // a lost anti/output sync edge is detected
}

// ---- corruption 2: capacity below a MAP's need ---------------------------

TEST(Auditor, ShrunkCapacityIsDiagnosedAtTheExactPosition) {
  Fixture f;
  AuditOptions options;
  options.capacity_per_proc = f.liveness.min_mem() - 1;
  const AuditReport report =
      audit_plan(f.graph, f.schedule, f.plan, options);
  EXPECT_FALSE(report.clean());
  const Finding* finding = report.find("CAP-MAP");
  ASSERT_NE(finding, nullptr);
  EXPECT_GE(finding->position, 0);
  ASSERT_GE(finding->proc, 0);
  ASSERT_LT(finding->proc, 2);
  ASSERT_GE(finding->task, 0);
  // The blamed task really sits at the blamed position of the blamed proc.
  EXPECT_EQ(f.schedule.order[finding->proc][finding->position], finding->task);
  // And the simulator agrees: the same capacity is non-executable.
  rt::RunConfig config;
  config.params = machine::MachineParams::cray_t3d(2);
  config.capacity_per_proc = options.capacity_per_proc;
  EXPECT_FALSE(rt::simulate(f.plan, config).executable);
}

TEST(Auditor, PermanentOverflowIsCapPerm) {
  Fixture f;
  AuditOptions options;
  options.capacity_per_proc = 1;  // not even the permanents fit
  const AuditReport report =
      audit_plan(f.graph, f.schedule, f.plan, options);
  EXPECT_TRUE(report.has("CAP-PERM"));
}

TEST(Auditor, BaselineModeChecksTotalFootprint) {
  Fixture f;
  AuditOptions options;
  options.active_memory = false;
  options.capacity_per_proc = f.liveness.tot_mem() - 1;
  const AuditReport report =
      audit_plan(f.graph, f.schedule, f.plan, options);
  EXPECT_TRUE(report.has("CAP-TOT"));
  options.capacity_per_proc = f.liveness.tot_mem();
  EXPECT_TRUE(audit_plan(f.graph, f.schedule, f.plan, options).clean());
}

// ---- corruption 3: shifted volatile lifetimes ----------------------------

TEST(Auditor, ShrunkLifetimeIsUseAfterFree) {
  Fixture f;
  // Find a volatile and cut its window short of the real last access.
  graph::ProcId proc = graph::kInvalidProc;
  std::size_t slot = 0;
  for (graph::ProcId p = 0; p < f.plan.num_procs; ++p) {
    for (std::size_t i = 0; i < f.plan.procs[p].volatiles.size(); ++i) {
      if (f.plan.procs[p].volatiles[i].last_pos >
          f.plan.procs[p].volatiles[i].first_pos) {
        proc = p;
        slot = i;
      }
    }
  }
  ASSERT_NE(proc, graph::kInvalidProc) << "fixture has no shrinkable window";
  auto& lifetime = f.plan.procs[proc].volatiles[slot];
  const std::int32_t true_last = lifetime.last_pos;
  lifetime.last_pos = lifetime.first_pos;
  const AuditReport report = audit_plan(f.graph, f.schedule, f.plan, {});
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(report.has("LIVE-WINDOW"));  // disagrees with dead-point table
  const Finding* finding = report.find("LIVE-AFTER");
  ASSERT_NE(finding, nullptr);
  EXPECT_EQ(finding->object, lifetime.object);
  EXPECT_EQ(finding->proc, proc);
  // The blamed position is a real access past the truncated window (the
  // scan reports the earliest one; true_last is certainly an access).
  EXPECT_GT(finding->position, lifetime.first_pos);
  EXPECT_LE(finding->position, true_last);
}

TEST(Auditor, DelayedLifetimeIsUseBeforeAlloc) {
  Fixture f;
  graph::ProcId proc = graph::kInvalidProc;
  std::size_t slot = 0;
  for (graph::ProcId p = 0; p < f.plan.num_procs; ++p) {
    for (std::size_t i = 0; i < f.plan.procs[p].volatiles.size(); ++i) {
      if (f.plan.procs[p].volatiles[i].last_pos >
          f.plan.procs[p].volatiles[i].first_pos) {
        proc = p;
        slot = i;
      }
    }
  }
  ASSERT_NE(proc, graph::kInvalidProc);
  auto& lifetime = f.plan.procs[proc].volatiles[slot];
  const std::int32_t true_first = lifetime.first_pos;
  lifetime.first_pos = lifetime.last_pos;
  const AuditReport report = audit_plan(f.graph, f.schedule, f.plan, {});
  const Finding* finding = report.find("LIVE-BEFORE");
  ASSERT_NE(finding, nullptr);
  EXPECT_EQ(finding->object, lifetime.object);
  EXPECT_EQ(finding->position, true_first);
}

// ---- message and version corruptions -------------------------------------

TEST(Auditor, LostContentSendIsMsgRecv) {
  Fixture f;
  // Erase one planned send; its reader now waits forever.
  graph::DataId victim = graph::kInvalidData;
  std::size_t version = 0;
  for (graph::DataId d = 0; d < f.graph.num_data() && victim < 0; ++d) {
    auto& by_version = f.plan.objects[d].sends_by_version;
    for (std::size_t v = 0; v < by_version.size(); ++v) {
      if (!by_version[v].empty()) {
        victim = d;
        version = v;
        by_version[v].pop_back();
        break;
      }
    }
  }
  ASSERT_NE(victim, graph::kInvalidData);
  (void)version;
  const AuditReport report = audit_plan(f.graph, f.schedule, f.plan, {});
  // The reader still needs the version, so MSG-RECV fires for any version
  // (a lost version-0 send may additionally raise MSG-INIT).
  const Finding* finding = report.find("MSG-RECV");
  ASSERT_NE(finding, nullptr) << report.to_string();
  EXPECT_EQ(finding->object, victim);
}

TEST(Auditor, SpuriousSendIsMsgSend) {
  Fixture f;
  // An owner "sending" a version to itself is always bogus — deterministic
  // corruption regardless of which readers exist.
  graph::DataId victim = graph::kInvalidData;
  for (graph::DataId d = 0; d < f.graph.num_data(); ++d) {
    if (!f.plan.objects[d].sends_by_version.empty()) {
      victim = d;
      f.plan.objects[d].sends_by_version.back().push_back(
          f.graph.data(d).owner);
      break;
    }
  }
  ASSERT_NE(victim, graph::kInvalidData);
  const AuditReport report = audit_plan(f.graph, f.schedule, f.plan, {});
  const Finding* finding = report.find("MSG-SEND");
  ASSERT_NE(finding, nullptr) << report.to_string();
  EXPECT_EQ(finding->object, victim);
  EXPECT_EQ(finding->proc, f.graph.data(victim).owner);
}

TEST(Auditor, BentVersionIsVerRange) {
  Fixture f;
  rt::RemoteRead* victim = nullptr;
  for (auto& task : f.plan.tasks) {
    if (!task.remote_reads.empty()) {
      victim = &task.remote_reads.front();
      break;
    }
  }
  ASSERT_NE(victim, nullptr);
  victim->version =
      f.plan.objects[victim->object].num_versions() + 7;
  const AuditReport report = audit_plan(f.graph, f.schedule, f.plan, {});
  const Finding* finding = report.find("VER-RANGE");
  ASSERT_NE(finding, nullptr);
  EXPECT_EQ(finding->object, victim->object);
}

TEST(Auditor, ShuffledEpochsAreVerEpoch) {
  Fixture f;
  graph::DataId victim = graph::kInvalidData;
  for (graph::DataId d = 0; d < f.graph.num_data(); ++d) {
    if (f.plan.objects[d].epochs.size() >= 2) {
      std::swap(f.plan.objects[d].epochs.front(),
                f.plan.objects[d].epochs.back());
      victim = d;
      break;
    }
  }
  ASSERT_NE(victim, graph::kInvalidData);
  const AuditReport report = audit_plan(f.graph, f.schedule, f.plan, {});
  const Finding* finding = report.find("VER-EPOCH");
  ASSERT_NE(finding, nullptr);
  EXPECT_EQ(finding->object, victim);
}

// ---- schedule corruptions ------------------------------------------------

TEST(Auditor, SwappedOrderIsSchedOrder) {
  Fixture f;
  // Reverse one processor's order: some local dependence must now point
  // backwards (the paper graph has chains on every processor).
  auto& order = f.plan.schedule.order[0];
  ASSERT_GE(order.size(), 2u);
  std::reverse(order.begin(), order.end());
  f.plan.schedule.rebuild_index(f.graph.num_tasks());
  const AuditReport report =
      audit_plan(f.graph, f.plan.schedule, f.plan, {});
  EXPECT_TRUE(report.has("SCHED-ORDER")) << report.to_string();
}

TEST(Auditor, DuplicatedTaskIsSchedPlace) {
  Fixture f;
  f.plan.schedule.order[0].push_back(f.plan.schedule.order[1].front());
  const AuditReport report =
      audit_plan(f.graph, f.plan.schedule, f.plan, {});
  EXPECT_TRUE(report.has("SCHED-PLACE"));
}

// ---- mailbox crossing ----------------------------------------------------

TEST(Auditor, CrossedAddressPackageWaitsAreWarned) {
  // Two processors, each owning an object the other reads, both first MAPs
  // at position 0: the address packages cross and nothing orders them.
  graph::TaskGraph g;
  const auto a = g.add_data("a", 64, 0);
  const auto b = g.add_data("b", 64, 1);
  g.add_task("Wa", {}, {a}, 1.0);
  g.add_task("Wb", {}, {b}, 1.0);
  g.add_task("Rb", {b}, {a}, 1.0);  // on proc 0, reads remote b
  g.add_task("Ra", {a}, {b}, 1.0);  // on proc 1, reads remote a
  g.finalize();
  const auto assignment = sched::owner_compute_tasks(g, 2);
  const auto schedule = sched::schedule_rcp(
      g, assignment, 2, machine::MachineParams::cray_t3d(2));
  const rt::RunPlan plan = rt::build_run_plan(g, schedule);
  AuditOptions options;
  options.capacity_per_proc =
      sched::analyze_liveness(g, schedule).min_mem();
  const AuditReport report = audit_plan(g, schedule, plan, options);
  EXPECT_TRUE(report.clean()) << report.to_string();  // warning, not error
  const Finding* finding = report.find("MBX-CROSS");
  ASSERT_NE(finding, nullptr) << report.to_string();
  EXPECT_EQ(finding->severity, Severity::kWarning);
  // With buffered mailboxes the wait disappears, and so must the warning.
  options.mailbox_slots = 2;
  EXPECT_FALSE(audit_plan(g, schedule, plan, options).has("MBX-CROSS"));
}

TEST(Auditor, UnrecoverableCrossedWaitIsFlaggedRecCross) {
  // The same crossed-MAP construction: each side's blocked MAP allocates
  // the buffer for a remote read *from the crossing peer* (Rb on p0 reads
  // b owned by p1, and vice versa). A mailbox-slot wait has no re-request,
  // so the recovery layer cannot heal a stall there — the auditor must
  // point at the read the crossing gates.
  graph::TaskGraph g;
  const auto a = g.add_data("a", 64, 0);
  const auto b = g.add_data("b", 64, 1);
  g.add_task("Wa", {}, {a}, 1.0);
  g.add_task("Wb", {}, {b}, 1.0);
  g.add_task("Rb", {b}, {a}, 1.0);  // on proc 0, reads remote b
  g.add_task("Ra", {a}, {b}, 1.0);  // on proc 1, reads remote a
  g.finalize();
  const auto assignment = sched::owner_compute_tasks(g, 2);
  const auto schedule = sched::schedule_rcp(
      g, assignment, 2, machine::MachineParams::cray_t3d(2));
  const rt::RunPlan plan = rt::build_run_plan(g, schedule);
  AuditOptions options;
  options.capacity_per_proc =
      sched::analyze_liveness(g, schedule).min_mem();
  const AuditReport report = audit_plan(g, schedule, plan, options);
  EXPECT_TRUE(report.clean()) << report.to_string();  // warning, not error
  const Finding* finding = report.find("REC-CROSS");
  ASSERT_NE(finding, nullptr) << report.to_string();
  EXPECT_EQ(finding->severity, Severity::kWarning);
  // The finding names the gated remote read (task and object).
  EXPECT_NE(finding->task, graph::kInvalidTask);
  EXPECT_NE(finding->object, graph::kInvalidData);
  EXPECT_NE(finding->message.find("re-request"), std::string::npos);
  // Buffered mailboxes remove the wait, the crossing, and the warning.
  options.mailbox_slots = 2;
  EXPECT_FALSE(audit_plan(g, schedule, plan, options).has("REC-CROSS"));
}

// ---- executor integration (RunConfig::audit) -----------------------------

TEST(Auditor, SimulatorAuditOptionPassesCleanPlans) {
  Fixture f;
  rt::RunConfig config;
  config.params = machine::MachineParams::cray_t3d(2);
  config.capacity_per_proc = f.liveness.min_mem();
  config.audit = true;
  const rt::RunReport report = rt::simulate(f.plan, config);
  EXPECT_TRUE(report.executable);
  EXPECT_GT(report.tasks_executed, 0);
}

TEST(Auditor, SimulatorAuditKeepsNonExecutableSemantics) {
  Fixture f;
  rt::RunConfig config;
  config.params = machine::MachineParams::cray_t3d(2);
  config.capacity_per_proc = f.liveness.min_mem() - 1;
  config.audit = true;
  // Capacity findings must stay on the executable=false channel, and the
  // auditor's diagnosis replaces the runtime's.
  const rt::RunReport report = rt::simulate(f.plan, config);
  EXPECT_FALSE(report.executable);
  EXPECT_NE(report.failure.find("CAP-MAP"), std::string::npos)
      << report.failure;
}

TEST(Auditor, SimulatorAuditThrowsOnProtocolCorruption) {
  Fixture f;
  f.plan.procs[0].volatiles.clear();
  f.plan.procs[1].volatiles.clear();
  rt::RunConfig config;
  config.params = machine::MachineParams::cray_t3d(2);
  config.capacity_per_proc = f.liveness.min_mem();
  config.audit = true;
  EXPECT_THROW(rt::simulate(f.plan, config), AuditError);
}

TEST(Auditor, ThreadedExecutorAuditOptionWorks) {
  // Unit-size int64 objects as in the quickstart, audited before running.
  graph::TaskGraph g;
  const graph::TaskGraph proto = graph::make_paper_figure2_graph();
  for (graph::DataId d = 0; d < proto.num_data(); ++d) {
    g.add_data(proto.data(d).name, 8, proto.data(d).owner);
  }
  for (graph::TaskId t = 0; t < proto.num_tasks(); ++t) {
    const auto& task = proto.task(t);
    g.add_task(task.name, task.reads, task.writes, task.flops,
               task.commute_group);
  }
  g.finalize();
  const auto assignment = sched::owner_compute_tasks(g, 2);
  const auto schedule = sched::schedule_mpo(
      g, assignment, 2, machine::MachineParams::cray_t3d(2));
  const rt::RunPlan plan = rt::build_run_plan(g, schedule);
  rt::RunConfig config;
  config.params = machine::MachineParams::cray_t3d(2);
  config.capacity_per_proc = sched::analyze_liveness(g, schedule).min_mem();
  config.audit = true;
  rt::ThreadedExecutor exec(
      plan, config,
      [](graph::DataId, std::span<std::byte> buf) {
        std::fill(buf.begin(), buf.end(), std::byte{0});
      },
      [](graph::TaskId, rt::ObjectResolver&) {});
  EXPECT_TRUE(exec.run().executable);
}

}  // namespace
}  // namespace rapid::verify
