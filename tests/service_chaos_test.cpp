// Chaos soak for the runtime service: every seed floods one service with
// nine co-resident runs — all six probabilistic fault classes at once, a
// clean factorization, a deadline-pressured run, and (outside TSan) a
// fork-mode run whose worker process is SIGKILLed mid-protocol. The
// acceptance bar from the issue: every completed run is exact, every
// rejected / shed / expired run carries a structured report, and nothing
// hangs (the per-run watchdog and the ctest timeout bound the suite).
//
// 32 seeds by default; RAPID_CHAOS_SEEDS overrides (CI's TSan lane runs
// fewer, the nightly soak more).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "rapid/rt/faults.hpp"
#include "rapid/svc/service.hpp"

#if defined(__SANITIZE_THREAD__)
#define RAPID_UNDER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define RAPID_UNDER_TSAN 1
#endif
#endif
#ifndef RAPID_UNDER_TSAN
#define RAPID_UNDER_TSAN 0
#endif

namespace rapid::svc {
namespace {

constexpr const char* kPresets[] = {"addr", "put",     "slow",
                                    "park", "corrupt", "dup"};

std::uint64_t seed_count() {
  if (const char* env = std::getenv("RAPID_CHAOS_SEEDS")) {
    const long n = std::atol(env);
    if (n > 0) return static_cast<std::uint64_t>(n);
  }
  return 32;
}

/// One terminal record, checked against the soak's acceptance bar.
void check_record(const RunRecord& r, std::uint64_t seed) {
  ASSERT_TRUE(is_terminal(r.state))
      << "seed " << seed << " run " << r.run_id << " (" << r.spec
      << ") ended non-terminal";
  switch (r.state) {
    case RunState::kCompleted:
      EXPECT_TRUE(r.numerics_ok)
          << "seed " << seed << " " << r.spec << " completed with residual "
          << r.residual;
      EXPECT_TRUE(r.has_outcome);
      break;
    case RunState::kRejected:
      EXPECT_EQ(r.admission.verdict, AdmissionVerdict::kRejected);
      EXPECT_FALSE(r.reason.empty()) << "seed " << seed;
      break;
    case RunState::kShed:
      EXPECT_EQ(r.admission.verdict, AdmissionVerdict::kShed);
      EXPECT_FALSE(r.reason.empty()) << "seed " << seed;
      break;
    case RunState::kExpired:
      // Queued expiry carries a reason; mid-run expiry carries the
      // cancelled attempt's partial report. Either way it is structured.
      EXPECT_TRUE(!r.reason.empty() ||
                  (r.has_outcome &&
                   r.outcome.failure_kind == rt::FailureKind::kCancelled))
          << "seed " << seed << " expired run " << r.run_id
          << " has neither reason nor cancelled outcome";
      break;
    case RunState::kFailed:
      // Allowed by the bar only with a structured outcome attached.
      EXPECT_TRUE(r.has_outcome) << "seed " << seed << " " << r.spec;
      EXPECT_FALSE(r.outcome.failure.empty())
          << "seed " << seed << " " << r.spec;
      break;
    default:
      FAIL() << "unreachable state " << to_string(r.state);
  }
}

TEST(ServiceChaosSoak, NineCoResidentRunsPerSeedSurviveFaultsAndKills) {
  const std::uint64_t seeds = seed_count();
  std::int64_t completed = 0;
  std::int64_t expired = 0;
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    ServiceOptions opts;
    opts.workers = 4;
    opts.queue_limit = 16;
    RuntimeService service(opts);
    std::vector<std::int64_t> ids;

    // Six runs, one per probabilistic fault class, all in flight together.
    for (const char* preset : kPresets) {
      RunRequest req;
      req.spec = "grid:rows=6,cols=6,procs=4";
      req.config.capacity_per_proc = 1 << 20;
      req.options.faults = rt::FaultPlan::preset(preset, seed);
      req.options.retry = RetryPolicy::standard();
      req.recovery.max_run_attempts = 3;
      req.deadline_us = 20'000'000;
      ids.push_back(service.submit(std::move(req)));
    }

    // A clean factorization sharing the budget with the chaos.
    {
      RunRequest req;
      req.spec = "cholesky:grid=8,block=4,procs=4";
      req.config.capacity_per_proc = 1 << 20;
      ids.push_back(service.submit(std::move(req)));
    }

    // Deadline pressure: tight enough to expire on some seeds, loose
    // enough to complete on others. Both outcomes must be structured.
    {
      RunRequest req;
      req.spec = "grid:rows=8,cols=8,procs=4,delay=4000";
      req.config.capacity_per_proc = 1 << 20;
      req.deadline_us =
          10'000 + static_cast<std::int64_t>(seed % 8) * 20'000;
      ids.push_back(service.submit(std::move(req)));
    }

#if !RAPID_UNDER_TSAN
    // Fork-mode run whose rank dies by SIGKILL mid-protocol: the failure
    // is contained to this run (fail-stop report + clean restart) while
    // the eight in-process runs above keep going. TSan cannot survive the
    // fork-heavy shm model, so its lane runs one more in-proc fault run.
    {
      RunRequest req;
      req.spec = "grid:rows=6,cols=6,procs=4";
      req.config.capacity_per_proc = 1 << 20;
      req.options.transport = rt::TransportKind::kShm;
      req.options.lease_timeout_seconds = 3.0;
      req.options.faults = rt::FaultPlan::kill_proc_at(
          static_cast<graph::ProcId>(seed % 4),
          static_cast<std::int32_t>(seed % 4),
          1 + static_cast<std::int64_t>(seed / 4) % 2);
      req.options.faults.induced_fault_runs = 1;  // restarts run clean
      req.recovery.max_run_attempts = 2;
      req.deadline_us = 30'000'000;
      ids.push_back(service.submit(std::move(req)));
    }
#else
    {
      RunRequest req;
      req.spec = "grid:rows=6,cols=6,procs=4";
      req.config.capacity_per_proc = 1 << 20;
      req.options.faults =
          rt::FaultPlan::preset(kPresets[seed % 6], seed ^ 0xC0FFEE);
      req.options.retry = RetryPolicy::standard();
      req.recovery.max_run_attempts = 3;
      req.deadline_us = 20'000'000;
      ids.push_back(service.submit(std::move(req)));
    }
#endif

    ASSERT_GE(ids.size(), 9u);
    for (const std::int64_t id : ids) {
      const RunRecord& r = service.wait(id);
      check_record(r, seed);
      if (r.state == RunState::kCompleted) ++completed;
      if (r.state == RunState::kExpired) ++expired;
    }
    const ServiceReport report = service.report();
    EXPECT_EQ(report.submitted, static_cast<std::int64_t>(ids.size()));
    EXPECT_LE(report.peak_reserved_bytes, report.budget_bytes)
        << "seed " << seed << ": admission invariant broken";
  }
  // The soak must exercise both main paths, not vacuously pass: the fault
  // runs overwhelmingly complete, and across all seeds some deadline-
  // pressured run must actually have expired.
  EXPECT_GE(completed, static_cast<std::int64_t>(seeds * 7));
  if (seeds >= 8) {
    EXPECT_GT(expired, 0) << "deadline pressure never fired";
  }
}

}  // namespace
}  // namespace rapid::svc
