// The cross-process shm backend, end to end: fork-mode correctness on the
// seed workloads (exact integer results, correct factor residuals with >= 4
// worker processes), exec-mode via the rapid_shm_worker binary, and the
// fail-stop machinery — a seeded process kill in every protocol phase must
// end in a clean restarted run or a correct-rank ProcFailureReport, never a
// hang; a wedged-but-alive worker must lapse its lease and be killed.
//
// Excluded under ThreadSanitizer: TSan's runtime does not support the
// fork()-heavy multiprocess model (children deadlock in the TSan allocator).
// The CI shm lane runs this file under Release and ASan instead.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <dirent.h>
#include <signal.h>
#include <unistd.h>
#include <sys/wait.h>

#include "counter_app.hpp"
#include "rapid/num/shm_workloads.hpp"
#include "rapid/rt/faults.hpp"
#include "rapid/rt/proc_failure.hpp"
#include "rapid/rt/recovery.hpp"
#include "rapid/rt/shm_transport.hpp"
#include "rapid/rt/sim_executor.hpp"
#include "rapid/rt/threaded_executor.hpp"
#include "rapid/sched/liveness.hpp"
#include "rapid/support/stopwatch.hpp"
#include "rapid/support/str.hpp"

#if defined(__SANITIZE_THREAD__)
#define RAPID_UNDER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define RAPID_UNDER_TSAN 1
#endif
#endif
#ifndef RAPID_UNDER_TSAN
#define RAPID_UNDER_TSAN 0
#endif

#define RAPID_SKIP_UNDER_TSAN()                                         \
  do {                                                                  \
    if (RAPID_UNDER_TSAN) {                                             \
      GTEST_SKIP() << "fork-based shm tests are incompatible with TSan"; \
    }                                                                   \
  } while (0)

namespace rapid::rt {
namespace {

using testing::CounterApp;
using testing::GridApp;

ThreadedOptions shm_options() {
  ThreadedOptions options;
  options.transport = TransportKind::kShm;
  return options;
}

/// CI artifact: dump a ProcFailureReport as JSON when the shm lane exports
/// RAPID_PROC_FAILURE_DIR.
void dump_proc_failure(const std::string& name,
                       const ProcFailureReport& report) {
  if (const char* dir = std::getenv("RAPID_PROC_FAILURE_DIR")) {
    std::ofstream out(std::string(dir) + "/" + name + ".json");
    out << report.to_json().dump();
  }
}

// ---- fork-mode correctness -------------------------------------------------

TEST(ShmTransportRun, Figure2ExactIntegersAcrossProcesses) {
  RAPID_SKIP_UNDER_TSAN();
  CounterApp app(4);
  const auto liveness = sched::analyze_liveness(app.graph, app.schedule);
  const RunConfig config = app.config(liveness.min_mem());
  const RunReport sim = simulate(app.plan, config);
  ASSERT_TRUE(sim.executable) << sim.failure;

  ThreadedExecutor exec(app.plan, config, app.make_init(), app.make_body(),
                        shm_options());
  const RunReport r = exec.run();
  ASSERT_TRUE(r.executable) << r.failure;
  EXPECT_EQ(r.transport, "shm");
  EXPECT_EQ(r.failure_kind, FailureKind::kNone);
  // Counter identity holds across the process boundary: the protocol is
  // the same, only the window bytes live in a segment.
  EXPECT_EQ(r.tasks_executed, sim.tasks_executed);
  EXPECT_EQ(r.content_messages, sim.content_messages);
  EXPECT_EQ(r.content_bytes, sim.content_bytes);
  EXPECT_EQ(r.flag_messages, sim.flag_messages);
  // The coordinator's mapping of the segment holds the final owner heaps.
  for (graph::DataId d = 0; d < app.graph.num_data(); ++d) {
    const auto bytes = exec.read_object(d);
    std::int64_t v = 0;
    std::memcpy(&v, bytes.data(), sizeof(v));
    EXPECT_EQ(v, app.expected[d]) << app.graph.data(d).name;
  }
}

TEST(ShmTransportRun, GridAppMinMemoryFourProcesses) {
  RAPID_SKIP_UNDER_TSAN();
  GridApp app(/*rows=*/5, /*cols=*/4, /*procs=*/4);
  RunConfig config;
  config.params = machine::MachineParams::cray_t3d(4);
  config.active_memory = true;
  config.capacity_per_proc =
      sched::analyze_liveness(app.graph, app.schedule).min_mem();
  ThreadedExecutor exec(app.plan, config, app.make_init(), app.make_body(),
                        shm_options());
  const RunReport r = exec.run();
  ASSERT_TRUE(r.executable) << r.failure;
  app.check_results(exec);
}

void run_workload_on_shm(const std::string& spec) {
  auto wl = num::build_shm_workload(spec);
  ASSERT_GE(wl->plan.num_procs, 4);
  RunConfig config;
  config.params = machine::MachineParams::cray_t3d(wl->plan.num_procs);
  config.active_memory = true;
  config.capacity_per_proc = wl->tot_mem;
  ThreadedExecutor exec(wl->plan, config, wl->make_init(), wl->make_body(),
                        shm_options());
  const RunReport r = exec.run();
  ASSERT_TRUE(r.executable) << r.failure;
  EXPECT_EQ(r.transport, "shm");
  EXPECT_LT(wl->residual(exec), 1e-10) << spec;
}

TEST(ShmTransportRun, CholeskyResidualFourProcesses) {
  RAPID_SKIP_UNDER_TSAN();
  run_workload_on_shm("cholesky:grid=10,block=4,procs=4");
}

TEST(ShmTransportRun, LuResidualFourProcesses) {
  RAPID_SKIP_UNDER_TSAN();
  run_workload_on_shm("lu:grid=10,block=4,procs=4");
}

// ---- exec mode (rapid_shm_worker) ------------------------------------------

std::string worker_binary_path() {
  if (const char* env = std::getenv("RAPID_SHM_WORKER_BIN")) return env;
  // Default build layout: tests/<binary> and src/rapid/rt/rapid_shm_worker
  // under the same build root.
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return {};
  buf[n] = '\0';
  std::string dir(buf);
  const std::size_t slash = dir.rfind('/');
  if (slash == std::string::npos) return {};
  dir.resize(slash);
  const std::string candidate = dir + "/../src/rapid/rt/rapid_shm_worker";
  return ::access(candidate.c_str(), X_OK) == 0 ? candidate : std::string();
}

TEST(ShmTransportRun, SpawnedWorkersRebuildThePlanFromSpec) {
  RAPID_SKIP_UNDER_TSAN();
  const std::string bin = worker_binary_path();
  if (bin.empty()) {
    GTEST_SKIP() << "rapid_shm_worker binary not found (set "
                    "RAPID_SHM_WORKER_BIN)";
  }
  const std::string spec = "cholesky:grid=10,block=4,procs=4";
  auto wl = num::build_shm_workload(spec);
  RunConfig config;
  config.params = machine::MachineParams::cray_t3d(wl->plan.num_procs);
  config.active_memory = true;
  config.capacity_per_proc = wl->tot_mem;
  ThreadedOptions options = shm_options();
  options.shm_launch = ThreadedOptions::ShmLaunch::kSpawn;
  options.shm_worker_path = bin;
  options.workload_spec = spec;
  ThreadedExecutor exec(wl->plan, config, wl->make_init(), wl->make_body(),
                        options);
  const RunReport r = exec.run();
  ASSERT_TRUE(r.executable) << r.failure;
  EXPECT_LT(wl->residual(exec), 1e-10);
}

// ---- kill sweep ------------------------------------------------------------
//
// The acceptance sweep: a seeded SIGKILL in each of the four protocol
// phases (REC / EXE / SND / MAP) x 16 seeds. Under run_with_recovery the
// run must either complete clean on the first attempt (the site never
// fired on that seed's rank) or fail-stop with a ProcFailureReport naming
// exactly the killed rank and then restart clean. A hang fails the suite
// via the ctest timeout; the executor's own watchdog fires long before.

void kill_sweep(std::int32_t phase, const char* phase_name) {
  constexpr int kProcs = 4;
  constexpr std::uint64_t kSeeds = 16;
  CounterApp app(kProcs);
  const auto liveness = sched::analyze_liveness(app.graph, app.schedule);
  const RunConfig config = app.config(liveness.min_mem());
  int fired = 0;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const auto rank = static_cast<graph::ProcId>(seed % kProcs);
    const std::int64_t nth = 1 + static_cast<std::int64_t>(seed / kProcs) % 2;
    ThreadedOptions options = shm_options();
    options.faults = FaultPlan::kill_proc_at(rank, phase, nth);
    options.faults.induced_fault_runs = 1;  // restarts run clean
    options.lease_timeout_seconds = 3.0;
    RunRecoveryOptions ropts;
    ropts.max_run_attempts = 2;
    RecoveryRun rec = run_with_recovery(app.plan, config, app.make_init(),
                                        app.make_body(), options, ropts);
    ASSERT_TRUE(rec.report.executable)
        << phase_name << " seed " << seed << ": " << rec.report.failure;
    for (graph::DataId d = 0; d < app.graph.num_data(); ++d) {
      const auto bytes = rec.executor->read_object(d);
      std::int64_t v = 0;
      std::memcpy(&v, bytes.data(), sizeof(v));
      ASSERT_EQ(v, app.expected[d])
          << phase_name << " seed " << seed << ": " << app.graph.data(d).name;
    }
    if (rec.attempts > 1) {
      // The kill fired: the failed attempt must carry a structured report
      // naming exactly the rank the plan killed.
      ASSERT_EQ(rec.attempt_proc_failures.size(), 1u)
          << phase_name << " seed " << seed;
      const ProcFailureReport& pf = *rec.attempt_proc_failures.front();
      EXPECT_EQ(pf.dead_rank, rank) << phase_name << " seed " << seed;
      EXPECT_EQ(pf.signal, SIGKILL) << phase_name << " seed " << seed;
      EXPECT_FALSE(pf.summary().empty());
      dump_proc_failure(cat("kill_", phase_name, "_seed", seed), pf);
      ++fired;
    }
  }
  // The sweep must actually exercise the fail-stop path, not vacuously
  // pass because no site ever fired.
  EXPECT_GT(fired, 0) << phase_name
                      << ": no seed ever reached its kill site";
}

TEST(ShmKillSweep, RecPhase) {
  RAPID_SKIP_UNDER_TSAN();
  kill_sweep(FaultPlan::kKillRec, "rec");
}
TEST(ShmKillSweep, ExePhase) {
  RAPID_SKIP_UNDER_TSAN();
  kill_sweep(FaultPlan::kKillExe, "exe");
}
TEST(ShmKillSweep, SndPhase) {
  RAPID_SKIP_UNDER_TSAN();
  kill_sweep(FaultPlan::kKillSnd, "snd");
}
TEST(ShmKillSweep, MapPhase) {
  RAPID_SKIP_UNDER_TSAN();
  kill_sweep(FaultPlan::kKillMap, "map");
}

// A direct run (no recovery wrapper) must throw ProcFailureError with the
// structured report attached, and last_report() must carry it too.
TEST(ShmKillSweep, DirectRunThrowsProcFailureError) {
  RAPID_SKIP_UNDER_TSAN();
  constexpr int kProcs = 4;
  CounterApp app(kProcs);
  const auto liveness = sched::analyze_liveness(app.graph, app.schedule);
  const RunConfig config = app.config(liveness.min_mem());
  ThreadedOptions options = shm_options();
  options.faults =
      FaultPlan::kill_proc_at(/*proc=*/1, FaultPlan::kKillExe, /*nth=*/1);
  ThreadedExecutor exec(app.plan, config, app.make_init(), app.make_body(),
                        options);
  try {
    exec.run();
    FAIL() << "a killed rank must fail the run";
  } catch (const ProcFailureError& e) {
    ASSERT_NE(e.report(), nullptr);
    EXPECT_EQ(e.report()->dead_rank, 1);
    EXPECT_EQ(e.report()->signal, SIGKILL);
    EXPECT_EQ(e.report()->detected_by, "waitpid");
    const std::string json = e.report()->to_json().dump();
    EXPECT_NE(json.find("\"dead_rank\""), std::string::npos);
    dump_proc_failure("direct_kill_exe_rank1", *e.report());
  }
  EXPECT_EQ(exec.last_report().failure_kind, FailureKind::kProcFailure);
  ASSERT_NE(exec.last_report().proc_failure, nullptr);
  EXPECT_EQ(exec.last_report().proc_failure->dead_rank, 1);
}

// The kill fault class must be inert on the in-process backend: a thread
// cannot die independently of the run, so the same plan completes clean.
TEST(ShmKillSweep, KillPlanIsInertInProcess) {
  CounterApp app(4);
  const auto liveness = sched::analyze_liveness(app.graph, app.schedule);
  ThreadedOptions options;  // inproc
  options.faults =
      FaultPlan::kill_proc_at(/*proc=*/1, FaultPlan::kKillExe, /*nth=*/1);
  ThreadedExecutor exec(app.plan, app.config(liveness.min_mem()),
                        app.make_init(), app.make_body(), options);
  const RunReport r = exec.run();
  EXPECT_TRUE(r.executable) << r.failure;
  EXPECT_EQ(r.failure_kind, FailureKind::kNone);
}

// ---- control-segment state -------------------------------------------------

// Beats and wait records land in the segment's per-rank control slots and
// read back through light() — this is what the coordinator's stall and
// orphan diagnosis is built from.
TEST(ShmTransportState, BeatsAndWaitRecordsReadBack) {
  ShmTransport::Dims dims;
  dims.num_procs = 2;
  dims.num_data = 4;
  dims.num_tasks = 4;
  dims.heap_bytes = 64;
  ShmRunSpec spec;
  spec.capacity_per_proc = 64;
  auto session = ShmSession::create(dims, spec);
  ShmTransport& st = session->transport();
  st.beat(1, /*state=*/3, /*pos=*/17);
  st.beat_wait(1, /*object=*/2, /*version=*/4, /*flag=*/graph::kInvalidTask,
               /*map_dest=*/graph::kInvalidProc, /*retry_attempts=*/2,
               /*exhausted=*/false);
  const LightState l = st.light(1);
  EXPECT_EQ(l.state, 3);
  EXPECT_EQ(l.pos, 17);
  EXPECT_EQ(l.waiting_object, 2);
  EXPECT_EQ(l.waiting_version, 4);
  EXPECT_EQ(l.waiting_flag, graph::kInvalidTask);
  EXPECT_EQ(l.retry_attempts, 2);
  EXPECT_FALSE(l.retries_exhausted);
  EXPECT_GT(l.lease_ns, 0);
}

// ---- lease lapse -----------------------------------------------------------

// Transport level: a worker that beats once and then goes silent in a
// leasable state ages its lease; workers that finished (done flag) do not
// count. Exercises the heartbeat records without the executor on top.
TEST(ShmLease, SilentWorkerAgesItsLease) {
  RAPID_SKIP_UNDER_TSAN();
  ShmTransport::Dims dims;
  dims.num_procs = 2;
  dims.num_data = 2;
  dims.num_tasks = 2;
  dims.heap_bytes = 64;
  ShmRunSpec spec;
  spec.capacity_per_proc = 64;
  spec.lease_timeout_seconds = 0.2;
  auto session = ShmSession::create(dims, spec);
  ShmTransport& st = session->transport();
  session->spawn_fork([&st](graph::ProcId q) -> int {
    st.beat(q, /*state=*/1, /*pos=*/0);
    if (q == 0) {
      for (;;) ::pause();  // wedged: alive, never beats again
    }
    return kShmWorkerClean;
  });
  Stopwatch sw;
  while (st.lease_age_seconds(0) < 0.5 && sw.seconds() < 10.0) {
    ::usleep(10'000);
  }
  EXPECT_GE(st.lease_age_seconds(0), 0.5);
  session->kill_all(SIGKILL);
  EXPECT_TRUE(session->wait_all(5.0));
}

// Executor level: every worker SIGSTOPped mid-run. Blocked ranks stop
// beating in a leasable state, the coordinator declares the first lapsed
// rank dead (detected_by == "lease"), SIGKILLs the stopped process, and
// fail-stops with a report instead of hanging.
TEST(ShmLease, StoppedWorkersLapseAndFailStop) {
  RAPID_SKIP_UNDER_TSAN();
  constexpr int kProcs = 4;
  GridApp app(/*rows=*/10, /*cols=*/kProcs, kProcs);
  RunConfig config;
  config.params = machine::MachineParams::cray_t3d(kProcs);
  config.active_memory = true;
  config.capacity_per_proc =
      sched::analyze_liveness(app.graph, app.schedule).tot_mem();
  // Slow the bodies down so the run is mid-flight when the stopper hits.
  const TaskBody base = app.make_body();
  const TaskBody slow = [base](graph::TaskId t, ObjectResolver& r) {
    ::usleep(30'000);
    base(t, r);
  };

  // A watcher *process* (forked before the executor forks workers, so the
  // single-threaded-coordinator rule holds): after 300 ms it SIGSTOPs every
  // sibling worker — every other child of the test process.
  const pid_t self = ::getpid();
  const pid_t watcher = ::fork();
  ASSERT_GE(watcher, 0);
  if (watcher == 0) {
    ::usleep(300'000);
    DIR* proc = ::opendir("/proc");
    if (proc != nullptr) {
      while (dirent* ent = ::readdir(proc)) {
        const long pid = std::strtol(ent->d_name, nullptr, 10);
        if (pid <= 0 || pid == static_cast<long>(::getpid())) continue;
        char path[64];
        std::snprintf(path, sizeof(path), "/proc/%ld/stat", pid);
        std::FILE* f = std::fopen(path, "r");
        if (f == nullptr) continue;
        long ppid = -1;
        // /proc/<pid>/stat: pid (comm) state ppid ...
        if (std::fscanf(f, "%*d %*s %*c %ld", &ppid) == 1 &&
            ppid == static_cast<long>(self)) {
          ::kill(static_cast<pid_t>(pid), SIGSTOP);
        }
        std::fclose(f);
      }
      ::closedir(proc);
    }
    ::_exit(0);
  }

  ThreadedOptions options = shm_options();
  options.lease_timeout_seconds = 0.5;
  ThreadedExecutor exec(app.plan, config, app.make_init(), slow, options);
  try {
    exec.run();
    // Legal only if the whole run finished before the stopper fired.
  } catch (const ProcFailureError& e) {
    ASSERT_NE(e.report(), nullptr);
    EXPECT_EQ(e.report()->detected_by, "lease");
    EXPECT_GE(e.report()->lease_age_seconds, 0.5);
    EXPECT_GE(e.report()->dead_rank, 0);
    EXPECT_LT(e.report()->dead_rank, kProcs);
    dump_proc_failure("lease_sigstop", *e.report());
  }
  int status = 0;
  ::waitpid(watcher, &status, 0);
}

}  // namespace
}  // namespace rapid::rt
