#include <gtest/gtest.h>

#include <algorithm>

#include "rapid/graph/dcg.hpp"

namespace rapid::graph {
namespace {

TEST(Dcg, ReaderAssociationRule) {
  // T reads d0 and writes d1: associated with d0 only.
  TaskGraph g;
  const DataId d0 = g.add_data("d0", 1);
  const DataId d1 = g.add_data("d1", 1);
  g.add_task("W", {}, {d0}, 1.0);
  const TaskId t = g.add_task("T", {d0}, {d1}, 1.0);
  g.finalize();
  const Dcg dcg = build_dcg(g);
  ASSERT_EQ(dcg.task_assoc[t].size(), 1u);
  EXPECT_EQ(dcg.task_assoc[t][0], d0);
}

TEST(Dcg, SoleModifierAssociationRule) {
  // T only modifies d (RMW, uses nothing else): associated with d.
  TaskGraph g;
  const DataId d = g.add_data("d", 1);
  const TaskId t = g.add_task("T", {d}, {d}, 1.0);
  g.finalize();
  const Dcg dcg = build_dcg(g);
  ASSERT_EQ(dcg.task_assoc[t].size(), 1u);
  EXPECT_EQ(dcg.task_assoc[t][0], d);
}

TEST(Dcg, MultiAssociationStronglyConnects) {
  // T reads d0, d1 (writes d2): d0 and d1 become mutually connected and
  // land in one slice.
  TaskGraph g;
  const DataId d0 = g.add_data("d0", 1);
  const DataId d1 = g.add_data("d1", 1);
  const DataId d2 = g.add_data("d2", 1);
  g.add_task("W0", {}, {d0}, 1.0);
  g.add_task("W1", {}, {d1}, 1.0);
  g.add_task("T", {d0, d1}, {d2}, 1.0);
  g.finalize();
  const Dcg dcg = build_dcg(g);
  EXPECT_TRUE(std::count(dcg.succ[d0].begin(), dcg.succ[d0].end(), d1) == 1);
  EXPECT_TRUE(std::count(dcg.succ[d1].begin(), dcg.succ[d1].end(), d0) == 1);
  EXPECT_FALSE(dcg_is_acyclic(dcg));
  const SliceDecomposition slices = decompose_slices(g, dcg);
  // d0, d1 share a slice.
  std::int32_t s0 = -1, s1 = -1;
  for (std::size_t s = 0; s < slices.num_slices(); ++s) {
    for (DataId d : slices.slices[s].objects) {
      if (d == d0) s0 = static_cast<std::int32_t>(s);
      if (d == d1) s1 = static_cast<std::int32_t>(s);
    }
  }
  EXPECT_EQ(s0, s1);
  EXPECT_NE(s0, -1);
}

TEST(Dcg, TemporalEdgeFollowsDependence) {
  // R0 reads a (writes b); R1 reads b (writes c). Dependence R0 -> R1 gives
  // DCG edge a -> b.
  TaskGraph g;
  const DataId a = g.add_data("a", 1);
  const DataId b = g.add_data("b", 1);
  const DataId c = g.add_data("c", 1);
  g.add_task("Wa", {}, {a}, 1.0);
  g.add_task("R0", {a}, {b}, 1.0);
  g.add_task("R1", {b}, {c}, 1.0);
  g.finalize();
  const Dcg dcg = build_dcg(g);
  EXPECT_EQ(std::count(dcg.succ[a].begin(), dcg.succ[a].end(), b), 1);
  EXPECT_TRUE(dcg_is_acyclic(dcg));
}

TEST(Dcg, PaperFigure2SlicesAreTopologicallyOrdered) {
  const TaskGraph g = make_paper_figure2_graph();
  const Dcg dcg = build_dcg(g);
  const SliceDecomposition slices = decompose_slices(g, dcg);
  // Every task appears exactly once.
  std::vector<int> seen(static_cast<std::size_t>(g.num_tasks()), 0);
  for (const Slice& s : slices.slices) {
    for (TaskId t : s.tasks) ++seen[t];
  }
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    EXPECT_EQ(seen[t], 1) << g.task(t).name;
    EXPECT_GE(slices.slice_of_task[t], 0);
  }
  // Dependences never point to an earlier slice.
  for (const Edge& e : g.edges()) {
    if (e.redundant) continue;
    EXPECT_LE(slices.slice_of_task[e.src], slices.slice_of_task[e.dst])
        << g.task(e.src).name << " -> " << g.task(e.dst).name;
  }
}

TEST(Dcg, SlicesRespectSccTopologicalOrder) {
  // A cycle between two data nodes merges their slices.
  // T1 reads a writes b; T2 reads b writes a (classic interleaving).
  TaskGraph g;
  const DataId a = g.add_data("a", 1);
  const DataId b = g.add_data("b", 1);
  g.add_task("Wa", {}, {a}, 1.0);
  g.add_task("Wb", {}, {b}, 1.0);
  g.add_task("T1", {a}, {b}, 1.0);
  g.add_task("T2", {b}, {a}, 1.0);
  g.finalize();
  const Dcg dcg = build_dcg(g);
  EXPECT_FALSE(dcg_is_acyclic(dcg));
  const SliceDecomposition slices = decompose_slices(g, dcg);
  // a and b are one SCC, so T1 and T2 share a slice.
  std::int32_t s1 = -1, s2 = -1;
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    if (g.task(t).name == "T1") s1 = slices.slice_of_task[t];
    if (g.task(t).name == "T2") s2 = slices.slice_of_task[t];
  }
  EXPECT_EQ(s1, s2);
}

TEST(Dcg, TasklessSlicesAreDropped) {
  // d1 is written through a read of d0, never read itself: its node has no
  // associated task and its slice disappears.
  TaskGraph g;
  const DataId d0 = g.add_data("d0", 1);
  g.add_data("d1", 1);
  g.add_task("W", {}, {d0}, 1.0);
  const TaskId t = g.add_task("T", {d0}, {1}, 1.0);
  g.finalize();
  const SliceDecomposition slices = compute_slices(g);
  for (const Slice& s : slices.slices) {
    EXPECT_FALSE(s.tasks.empty());
  }
  EXPECT_GE(slices.slice_of_task[t], 0);
}

TEST(Dcg, ChainGraphProducesChainSlices) {
  // Pipeline: W0 -> R01 -> R12 -> R23; slices follow the data chain.
  TaskGraph g;
  std::vector<DataId> d;
  for (int i = 0; i < 4; ++i) d.push_back(g.add_data("d" + std::to_string(i), 1));
  g.add_task("W", {}, {d[0]}, 1.0);
  for (int i = 0; i + 1 < 4; ++i) {
    g.add_task("R" + std::to_string(i), {d[i]}, {d[i + 1]}, 1.0);
  }
  g.finalize();
  const Dcg dcg = build_dcg(g);
  EXPECT_TRUE(dcg_is_acyclic(dcg));
  const SliceDecomposition slices = decompose_slices(g, dcg);
  EXPECT_EQ(slices.num_slices(), 3u);  // d3 never read -> no slice
  // Slice order must follow the chain.
  for (std::size_t s = 0; s + 1 < slices.num_slices(); ++s) {
    EXPECT_LT(slices.slices[s].objects[0], slices.slices[s + 1].objects[0]);
  }
}

}  // namespace
}  // namespace rapid::graph
