#include <gtest/gtest.h>

#include "rapid/num/lu_app.hpp"
#include "rapid/num/reference.hpp"
#include "rapid/rt/sim_executor.hpp"
#include "rapid/sched/liveness.hpp"
#include "rapid/sched/mapping.hpp"
#include "rapid/sched/ordering.hpp"
#include "rapid/sparse/generators.hpp"
#include "rapid/sparse/ordering.hpp"
#include "rapid/support/rng.hpp"

namespace rapid::num {
namespace {

sparse::CscMatrix nd_convection(sparse::Index sx, sparse::Index sy,
                                std::uint64_t seed) {
  Rng rng(seed);
  sparse::CscMatrix a =
      sparse::convection_diffusion_2d(sx, sy, /*drop_prob=*/0.1, rng);
  return a.permuted_symmetric(sparse::nested_dissection_2d(sx, sy));
}

struct Runner {
  LuApp app;
  sched::Schedule schedule;
  rt::RunPlan plan;
  std::int64_t min_mem = 0;

  Runner(sparse::CscMatrix a, Index block, int procs, bool use_dts = false) {
    app = LuApp::build(std::move(a), block, procs);
    const auto assignment = sched::owner_compute_tasks(app.graph(), procs);
    const auto params = machine::MachineParams::cray_t3d(procs);
    schedule =
        use_dts ? sched::schedule_dts(app.graph(), assignment, procs, params)
                : sched::schedule_rcp(app.graph(), assignment, procs, params);
    plan = rt::build_run_plan(app.graph(), schedule);
    min_mem = sched::analyze_liveness(app.graph(), schedule).min_mem();
  }

  rt::RunReport run_threaded(std::int64_t capacity, bool active = true) {
    rt::RunConfig config;
    config.capacity_per_proc = capacity;
    config.active_memory = active;
    rt::ThreadedExecutor exec(plan, config, app.make_init(), app.make_body());
    const rt::RunReport report = exec.run();
    if (report.executable) {
      const auto extracted = app.extract(exec);
      EXPECT_LT(lu_residual(app.matrix(), extracted.lu, extracted.piv), 1e-10);
    }
    return report;
  }
};

TEST(LuApp, GraphStructureIsConsistent) {
  const auto app = LuApp::build(nd_convection(6, 6, 3), 4, 3);
  const auto& g = app.graph();
  EXPECT_EQ(g.num_data(), app.layout().num_blocks);
  EXPECT_NO_THROW(g.topological_order());
  // Updates into a block form a chain ending at its Factor task: each
  // block's writer list is ordered Update(k1), Update(k2), ..., Factor.
  for (Index b = 0; b < app.layout().num_blocks; ++b) {
    const auto writers = g.writers(app.block_object(b));
    ASSERT_FALSE(writers.empty());
    EXPECT_EQ(app.info(writers.back()).kind, LuApp::TaskInfo::Kind::kFactor);
    for (std::size_t i = 0; i + 1 < writers.size(); ++i) {
      EXPECT_EQ(app.info(writers[i]).kind, LuApp::TaskInfo::Kind::kUpdate);
    }
  }
}

TEST(LuApp, RowSpansCoverCoupledPanels) {
  const auto app = LuApp::build(nd_convection(6, 6, 3), 4, 2);
  const auto& g = app.graph();
  for (graph::TaskId t = 0; t < g.num_tasks(); ++t) {
    if (app.info(t).kind != LuApp::TaskInfo::Kind::kUpdate) continue;
    EXPECT_LE(app.row_lo(app.info(t).j),
              app.layout().block_begin(app.info(t).k));
  }
}

TEST(LuApp, PivotingActuallyHappens) {
  // The convection matrix's winds force at least one off-diagonal pivot;
  // otherwise this workload would not exercise the pivoting machinery.
  Runner r(nd_convection(8, 8, 7), 4, 2);
  const auto report = r.run_threaded(1 << 24);
  ASSERT_TRUE(report.executable) << report.failure;
  rt::RunConfig config;
  config.capacity_per_proc = 1 << 24;
  rt::ThreadedExecutor exec(r.plan, config, r.app.make_init(),
                            r.app.make_body());
  ASSERT_TRUE(exec.run().executable);
  const auto extracted = r.app.extract(exec);
  bool swapped = false;
  for (Index j = 0; j < static_cast<Index>(extracted.piv.size()); ++j) {
    swapped |= extracted.piv[j] != j;
  }
  EXPECT_TRUE(swapped);
}

TEST(LuApp, ThreadedRunMatchesReferenceAmpleMemory) {
  Runner r(nd_convection(8, 7, 11), 4, 2);
  const auto report = r.run_threaded(1 << 24);
  ASSERT_TRUE(report.executable) << report.failure;
}

TEST(LuApp, ThreadedRunMatchesReferenceAtMinMem) {
  Runner r(nd_convection(8, 7, 11), 4, 2);
  const auto report = r.run_threaded(r.min_mem);
  ASSERT_TRUE(report.executable) << report.failure;
  EXPECT_GE(report.avg_maps(), 1.0);
}

TEST(LuApp, FourProcessors) {
  Runner r(nd_convection(9, 8, 13), 4, 4);
  const auto report = r.run_threaded(r.min_mem);
  ASSERT_TRUE(report.executable) << report.failure;
}

TEST(LuApp, DtsScheduleAlsoNumericallyCorrect) {
  Runner r(nd_convection(8, 7, 17), 4, 2, /*use_dts=*/true);
  const auto report = r.run_threaded(r.min_mem);
  ASSERT_TRUE(report.executable) << report.failure;
}

TEST(LuApp, SolveRecoversUnitSolution) {
  Runner r(nd_convection(7, 7, 19), 4, 2);
  rt::RunConfig config;
  config.capacity_per_proc = 1 << 24;
  rt::ThreadedExecutor exec(r.plan, config, r.app.make_init(),
                            r.app.make_body());
  ASSERT_TRUE(exec.run().executable);
  const auto extracted = r.app.extract(exec);
  const Index n = r.app.matrix().n_cols();
  const auto x = lu_solve(extracted.lu, extracted.piv, n,
                          sparse::rhs_for_unit_solution(r.app.matrix()));
  std::vector<double> ones(static_cast<std::size_t>(n), 1.0);
  EXPECT_LT(max_rel_error(x, ones), 1e-8);
}

TEST(LuApp, SimulatorAgreesOnExecutability) {
  Runner r(nd_convection(8, 7, 23), 4, 2);
  rt::RunConfig c;
  c.capacity_per_proc = r.min_mem;
  c.params = machine::MachineParams::cray_t3d(2);
  EXPECT_TRUE(rt::simulate(r.plan, c).executable);
  c.capacity_per_proc = r.min_mem - 8;
  EXPECT_FALSE(rt::simulate(r.plan, c).executable);
}

TEST(LuApp, BandedMatrixWorksToo) {
  Rng rng(29);
  Runner r(sparse::random_banded(48, 6, 0.8, rng), 6, 3);
  const auto report = r.run_threaded(r.min_mem);
  ASSERT_TRUE(report.executable) << report.failure;
}

}  // namespace
}  // namespace rapid::num
