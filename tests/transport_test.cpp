// The transport seam, in-process backend. Two claims: (1) the Transport
// interface's primitive semantics — publication ordering, mailbox bounds,
// NACK channel, control plane — behave per docs/TRANSPORT.md; (2) routing
// the threaded executor's data plane through the seam changed nothing: on
// seed workloads the counters (messages, bytes, put batches) match the
// SimExecutor oracle / stay deterministic exactly as they did before the
// transport existed.
#include <gtest/gtest.h>

#include <vector>

#include "counter_app.hpp"
#include "rapid/rt/sim_executor.hpp"
#include "rapid/rt/threaded_executor.hpp"
#include "rapid/rt/transport.hpp"
#include "rapid/sched/liveness.hpp"
#include "rapid/support/check.hpp"

namespace rapid::rt {
namespace {

using testing::CounterApp;
using testing::GridApp;

TEST(TransportKindStrings, RoundTripAndRejects) {
  EXPECT_STREQ(to_string(TransportKind::kInProc), "inproc");
  EXPECT_STREQ(to_string(TransportKind::kShm), "shm");
  EXPECT_EQ(transport_from_string("inproc"), TransportKind::kInProc);
  EXPECT_EQ(transport_from_string("shm"), TransportKind::kShm);
  EXPECT_THROW(transport_from_string("rdma"), Error);
}

TEST(InProcTransport, PublishOrderingAndFlagVisibility) {
  auto tp = make_inproc_transport(/*num_procs=*/2, /*num_data=*/3,
                                  /*num_tasks=*/2,
                                  /*heap_bytes_per_proc=*/256);
  ASSERT_EQ(tp->num_procs(), 2);
  EXPECT_EQ(tp->kind(), TransportKind::kInProc);
  EXPECT_FALSE(tp->cross_process());
  WindowView w1 = tp->window(1);
  ASSERT_NE(w1.heap, nullptr);
  // Fresh window: nothing received, no flags.
  EXPECT_EQ(w1.received_version[0].load(), -1);
  EXPECT_EQ(w1.put_seq[0].load(), 0u);
  EXPECT_EQ(w1.flags[0].load(), 0);

  const std::byte payload[8] = {std::byte{0xAB}};
  tp->put(w1, /*dst_off=*/16, payload, sizeof(payload));
  tp->publish(w1, /*d=*/1, /*version=*/3, /*with_crc=*/true,
              /*crc=*/0xDEADBEEF, /*seq=*/7);
  EXPECT_EQ(w1.heap[16], std::byte{0xAB});
  EXPECT_EQ(w1.received_version[1].load(), 3);
  EXPECT_EQ(w1.received_crc[1].load(), 0xDEADBEEFu);
  EXPECT_EQ(w1.put_seq[1].load(), 7u);
  // Version publication is a max-merge: a late lower version never
  // regresses the visible one.
  tp->publish(w1, 1, 2, /*with_crc=*/true, 0x1, 8);
  EXPECT_EQ(w1.received_version[1].load(), 3);

  tp->raise_flag(w1, /*task=*/1);
  EXPECT_EQ(w1.flags[1].load(), 1);
}

TEST(InProcTransport, MailboxBoundCopiesAndDrainOrder) {
  auto tp = make_inproc_transport(2, 4, 4, 64);
  AddrPackage pkg;
  pkg.reader = 0;
  pkg.entries = {{0, 8}, {1, 16}};
  pkg.seq = 1;
  pkg.crc = pkg.checksum();
  // slot_bound caps the per-(src → dest) lane; copies=2 models a duplicated
  // package (both must land for the replay-suppression path to see one).
  ASSERT_TRUE(tp->try_send_addr_package(0, 1, pkg, /*slot_bound=*/2,
                                        /*copies=*/2));
  EXPECT_TRUE(tp->addr_packages_pending(1));
  EXPECT_EQ(tp->mailbox_occupancy(1), 2);
  AddrPackage third = pkg;
  third.seq = 2;
  third.crc = third.checksum();
  EXPECT_FALSE(tp->try_send_addr_package(0, 1, third, /*slot_bound=*/2,
                                         /*copies=*/1))
      << "a full lane must reject, not overwrite";
  std::vector<AddrPackage> got;
  tp->drain_addr_packages(1, &got);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].seq, 1u);
  EXPECT_EQ(got[1].seq, 1u);
  EXPECT_FALSE(tp->addr_packages_pending(1));
  EXPECT_EQ(tp->mailbox_occupancy(1), 0);
}

TEST(InProcTransport, NackChannel) {
  auto tp = make_inproc_transport(2, 4, 4, 64);
  EXPECT_FALSE(tp->nacks_pending(0));
  NackRequest n;
  n.requester = 1;
  n.object = 2;
  n.version = 5;
  n.reader_offset = 24;
  n.observed_seq = 9;
  tp->push_nack(/*dest=*/0, n);
  ASSERT_TRUE(tp->nacks_pending(0));
  std::vector<NackRequest> got;
  tp->drain_nacks(0, &got);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].requester, 1);
  EXPECT_EQ(got[0].object, 2);
  EXPECT_EQ(got[0].version, 5);
  EXPECT_EQ(got[0].observed_seq, 9u);
  EXPECT_FALSE(tp->nacks_pending(0));
}

TEST(InProcTransport, ControlPlaneQuiescenceAbortFailures) {
  auto tp = make_inproc_transport(3, 2, 2, 64);
  EXPECT_EQ(tp->quiescent_count(), 0);
  EXPECT_EQ(tp->note_quiescent(0), 1);
  EXPECT_EQ(tp->note_quiescent(1), 2);
  EXPECT_EQ(tp->quiescent_count(), 2);

  EXPECT_FALSE(tp->aborted());
  EXPECT_FALSE(tp->any_failure());
  tp->report_failure(1, FailureKind::kIntegrity, "first");
  tp->report_failure(2, FailureKind::kTaskError, "second");
  tp->request_abort();
  EXPECT_TRUE(tp->aborted());
  EXPECT_TRUE(tp->any_failure());
  EXPECT_EQ(tp->first_failure_kind(), FailureKind::kIntegrity);
  const std::vector<std::string> texts = tp->failure_texts();
  ASSERT_EQ(texts.size(), 2u);
  EXPECT_EQ(texts[0], "first");
  EXPECT_EQ(texts[1], "second");
}

TEST(InProcTransport, BeatsFeedLightState) {
  auto tp = make_inproc_transport(2, 2, 2, 64);
  tp->beat(1, /*state=*/3, /*pos=*/17);
  // In-process, beat_wait is deliberately a no-op: the monitor diagnoses
  // stalls from full cooperative snapshots, and light() carries only the
  // state/pos the pre-transport LightStatus did. The wait fields are
  // meaningful on the shm backend (shm_transport_test covers them).
  tp->beat_wait(1, /*object=*/1, /*version=*/4, /*flag=*/graph::kInvalidTask,
                /*map_dest=*/graph::kInvalidProc, /*retry_attempts=*/2,
                /*exhausted=*/false);
  const LightState l = tp->light(1);
  EXPECT_EQ(l.state, 3);
  EXPECT_EQ(l.pos, 17);
}

// ---- counter identity ------------------------------------------------------
//
// The refactor's no-regression claim: the in-proc backend is the
// pre-transport data plane. The SimExecutor runs the identical plan as the
// protocol oracle; messages/bytes/flags/tasks must match exactly, and the
// purely plan-determined counters (put batches, address traffic) must be
// identical across repeated threaded runs regardless of interleaving.

void check_counter_identity(const RunPlan& plan, const RunConfig& config,
                            const ObjectInit& init, const TaskBody& body) {
  const RunReport sim = simulate(plan, config);
  ASSERT_TRUE(sim.executable) << sim.failure;
  RunReport first;
  for (int rep = 0; rep < 2; ++rep) {
    ThreadedExecutor exec(plan, config, init, body);
    const RunReport r = exec.run();
    ASSERT_TRUE(r.executable) << r.failure;
    EXPECT_EQ(r.transport, "inproc");
    EXPECT_EQ(r.tasks_executed, sim.tasks_executed);
    EXPECT_EQ(r.content_messages, sim.content_messages);
    EXPECT_EQ(r.content_bytes, sim.content_bytes);
    EXPECT_EQ(r.flag_messages, sim.flag_messages);
    if (rep == 0) {
      first = r;
    } else {
      EXPECT_EQ(r.put_batches, first.put_batches);
      EXPECT_EQ(r.addr_packages, first.addr_packages);
      EXPECT_EQ(r.addr_entries, first.addr_entries);
    }
  }
}

TEST(InProcIdentity, Figure2CounterApp) {
  CounterApp app(4);
  const auto liveness = sched::analyze_liveness(app.graph, app.schedule);
  check_counter_identity(app.plan, app.config(liveness.min_mem()),
                         app.make_init(), app.make_body());
}

TEST(InProcIdentity, GridAppMinMemory) {
  GridApp app(/*rows=*/5, /*cols=*/4, /*procs=*/4);
  RunConfig config;
  config.params = machine::MachineParams::cray_t3d(4);
  config.active_memory = true;
  config.capacity_per_proc =
      sched::analyze_liveness(app.graph, app.schedule).min_mem();
  check_counter_identity(app.plan, config, app.make_init(), app.make_body());
}

}  // namespace
}  // namespace rapid::rt
