#include <gtest/gtest.h>

#include <algorithm>

#include "rapid/sparse/blocks.hpp"
#include "rapid/sparse/coo.hpp"
#include "rapid/sparse/csc.hpp"
#include "rapid/sparse/generators.hpp"
#include "rapid/sparse/ordering.hpp"
#include "rapid/sparse/symbolic.hpp"
#include "rapid/support/check.hpp"
#include "rapid/support/rng.hpp"

namespace rapid::sparse {
namespace {

CscMatrix small_example() {
  // 4x4:
  //  [2 0 1 0]
  //  [0 3 0 0]
  //  [1 0 4 2]
  //  [0 0 2 5]
  CooBuilder coo(4, 4);
  coo.add(0, 0, 2);
  coo.add(2, 0, 1);
  coo.add(1, 1, 3);
  coo.add(0, 2, 1);
  coo.add(2, 2, 4);
  coo.add(3, 2, 2);
  coo.add(2, 3, 2);
  coo.add(3, 3, 5);
  return coo.to_csc();
}

TEST(Coo, CompressesSortedAndValid) {
  const CscMatrix a = small_example();
  EXPECT_NO_THROW(a.validate());
  EXPECT_EQ(a.nnz(), 8);
  EXPECT_DOUBLE_EQ(a.at(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(a.at(0, 1), 0.0);
}

TEST(Coo, DuplicatesAccumulate) {
  CooBuilder coo(2, 2);
  coo.add(0, 0, 1.5);
  coo.add(0, 0, 2.5);
  coo.add(1, 1, 1.0);
  const CscMatrix a = coo.to_csc();
  EXPECT_EQ(a.nnz(), 2);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 4.0);
}

TEST(Coo, OutOfRangeThrows) {
  CooBuilder coo(2, 2);
  EXPECT_THROW(coo.add(2, 0, 1.0), Error);
}

TEST(Csc, TransposeRoundTrip) {
  const CscMatrix a = small_example();
  const CscPattern tt = a.pattern.transposed().transposed();
  EXPECT_EQ(tt, a.pattern);
}

TEST(Csc, MultiplyMatchesDense) {
  const CscMatrix a = small_example();
  const std::vector<double> x = {1, 2, 3, 4};
  const auto y = a.multiply(x);
  // Row 2: 1*1 + 4*3 + 2*4 = 21.
  EXPECT_DOUBLE_EQ(y[2], 21.0);
  const auto yt = a.multiply_transpose(x);
  // Col 0 dot x: 2*1 + 1*3 = 5.
  EXPECT_DOUBLE_EQ(yt[0], 5.0);
}

TEST(Csc, UnionWith) {
  const CscMatrix a = small_example();
  const CscPattern u = a.pattern.union_with(a.pattern.transposed());
  EXPECT_NO_THROW(u.validate());
  // Symmetric matrix pattern: union equals original here (it is symmetric).
  EXPECT_EQ(u.nnz(), a.pattern.nnz());
}

TEST(Csc, LowerTriangleAndDiagonal) {
  const CscMatrix a = small_example();
  const CscPattern lower = a.pattern.lower_triangle();
  for (Index j = 0; j < lower.n_cols; ++j) {
    for (Index k = lower.col_ptr[j]; k < lower.col_ptr[j + 1]; ++k) {
      EXPECT_GE(lower.row_idx[k], j);
    }
  }
  CscPattern no_diag = make_empty_pattern(3, 3);
  const CscPattern with_diag = no_diag.with_full_diagonal();
  EXPECT_EQ(with_diag.nnz(), 3);
  for (Index j = 0; j < 3; ++j) EXPECT_TRUE(with_diag.contains(j, j));
}

TEST(Csc, PermutedSymmetricPreservesValues) {
  const CscMatrix a = small_example();
  const std::vector<Index> perm = {2, 0, 3, 1};  // perm[new] = old
  const CscMatrix b = a.permuted_symmetric(perm);
  EXPECT_NO_THROW(b.validate());
  for (Index nj = 0; nj < 4; ++nj) {
    for (Index ni = 0; ni < 4; ++ni) {
      EXPECT_DOUBLE_EQ(b.at(ni, nj), a.at(perm[ni], perm[nj]));
    }
  }
}

TEST(Generators, GridLaplacian2dIsSymmetricDiagonallyDominant) {
  const CscMatrix a = grid_laplacian_2d(5, 4);
  EXPECT_EQ(a.n_cols(), 20);
  EXPECT_NO_THROW(a.validate());
  EXPECT_EQ(a.pattern, a.pattern.transposed());  // structurally symmetric
  for (Index j = 0; j < a.n_cols(); ++j) {
    double offdiag = 0.0;
    for (Index k = a.pattern.col_ptr[j]; k < a.pattern.col_ptr[j + 1]; ++k) {
      if (a.pattern.row_idx[k] != j) offdiag += std::abs(a.values[k]);
    }
    EXPECT_GT(a.at(j, j), offdiag);  // strict dominance => SPD
  }
}

TEST(Generators, GridLaplacian3dShape) {
  const CscMatrix a = grid_laplacian_3d(3, 4, 5);
  EXPECT_EQ(a.n_cols(), 60);
  EXPECT_NO_THROW(a.validate());
  // Interior point has 6 neighbors + diagonal.
  Index max_per_col = 0;
  for (Index j = 0; j < a.n_cols(); ++j) {
    max_per_col = std::max(max_per_col,
                           a.pattern.col_ptr[j + 1] - a.pattern.col_ptr[j]);
  }
  EXPECT_EQ(max_per_col, 7);
}

TEST(Generators, ConvectionDiffusionIsUnsymmetric) {
  Rng rng(5);
  const CscMatrix a = convection_diffusion_2d(12, 12, 0.1, rng);
  EXPECT_NO_THROW(a.validate());
  EXPECT_NE(a.pattern, a.pattern.transposed());  // structural asymmetry
}

TEST(Generators, RandomBandedRespectsBandwidth) {
  Rng rng(3);
  const CscMatrix a = random_banded(50, 4, 0.6, rng);
  EXPECT_NO_THROW(a.validate());
  EXPECT_LE(bandwidth(a.pattern), 4);
  for (Index j = 0; j < a.n_cols(); ++j) {
    EXPECT_NE(a.at(j, j), 0.0);
  }
}

TEST(Generators, RhsForUnitSolution) {
  const CscMatrix a = small_example();
  const auto b = rhs_for_unit_solution(a);
  // Row 0: 2 + 1 = 3.
  EXPECT_DOUBLE_EQ(b[0], 3.0);
}

TEST(Ordering, RcmIsAPermutationAndReducesBandwidth) {
  const CscMatrix a = grid_laplacian_2d(10, 10);
  // Scramble with a random symmetric permutation first.
  Rng rng(17);
  std::vector<Index> scramble(100);
  for (Index i = 0; i < 100; ++i) scramble[i] = i;
  for (Index i = 99; i > 0; --i) {
    std::swap(scramble[i], scramble[rng.next_below(i + 1)]);
  }
  const CscMatrix scrambled = a.permuted_symmetric(scramble);
  const auto perm = reverse_cuthill_mckee(scrambled.pattern);
  EXPECT_NO_THROW(invert_permutation(perm));
  const CscMatrix ordered = scrambled.permuted_symmetric(perm);
  EXPECT_LT(bandwidth(ordered.pattern), bandwidth(scrambled.pattern));
  EXPECT_LE(bandwidth(ordered.pattern), 15);
}

TEST(Ordering, RcmHandlesDisconnectedGraphs) {
  // Two disjoint 2-cliques + an isolated vertex.
  CooBuilder coo(5, 5);
  coo.add(0, 1, 1);
  coo.add(1, 0, 1);
  coo.add(2, 3, 1);
  coo.add(3, 2, 1);
  for (Index i = 0; i < 5; ++i) coo.add(i, i, 1);
  const auto perm = reverse_cuthill_mckee(coo.to_csc().pattern);
  EXPECT_EQ(perm.size(), 5u);
  EXPECT_NO_THROW(invert_permutation(perm));
}

TEST(Ordering, InvertPermutationRejectsDuplicates) {
  EXPECT_THROW(invert_permutation({0, 0, 1}), Error);
}

TEST(Ordering, NestedDissection2dIsAPermutation) {
  const auto perm = nested_dissection_2d(7, 9);
  EXPECT_EQ(perm.size(), 63u);
  EXPECT_NO_THROW(invert_permutation(perm));
}

TEST(Ordering, NestedDissection3dIsAPermutation) {
  const auto perm = nested_dissection_3d(4, 5, 3);
  EXPECT_EQ(perm.size(), 60u);
  EXPECT_NO_THROW(invert_permutation(perm));
}

TEST(Ordering, MinimumDegreeIsAPermutation) {
  const CscMatrix a = grid_laplacian_2d(9, 7);
  const auto perm = minimum_degree(a.pattern);
  EXPECT_EQ(perm.size(), 63u);
  EXPECT_NO_THROW(invert_permutation(perm));
}

TEST(Ordering, MinimumDegreeEliminatesLeavesFirst) {
  // A star graph: every leaf (degree 1) must be ordered before the hub.
  CooBuilder coo(6, 6);
  for (Index leaf = 1; leaf < 6; ++leaf) {
    coo.add(0, leaf, 1.0);
    coo.add(leaf, 0, 1.0);
  }
  for (Index i = 0; i < 6; ++i) coo.add(i, i, 1.0);
  const auto perm = minimum_degree(coo.to_csc().pattern);
  // The hub (degree 5) cannot be eliminated until at most one leaf is
  // left — once 4 leaves are gone, hub and last leaf tie at degree 1.
  EXPECT_TRUE(perm[4] == 0 || perm[5] == 0);
  for (int i = 0; i < 4; ++i) EXPECT_NE(perm[i], 0);
}

TEST(Ordering, MinimumDegreeReducesFillVsNatural) {
  // On a grid Laplacian, minimum degree must beat the natural (banded)
  // ordering's Cholesky fill.
  const CscMatrix a = grid_laplacian_2d(14, 14);
  const auto md = minimum_degree(a.pattern);
  const CscMatrix reordered = a.permuted_symmetric(md);
  const auto fill_natural = symbolic_cholesky(a.pattern).fill_nnz();
  const auto fill_md = symbolic_cholesky(reordered.pattern).fill_nnz();
  EXPECT_LT(fill_md, fill_natural);
}

TEST(Ordering, MinimumDegreeHandlesDisconnectedGraphs) {
  CooBuilder coo(5, 5);
  coo.add(0, 1, 1);
  coo.add(1, 0, 1);
  for (Index i = 0; i < 5; ++i) coo.add(i, i, 1);
  const auto perm = minimum_degree(coo.to_csc().pattern);
  EXPECT_EQ(perm.size(), 5u);
  EXPECT_NO_THROW(invert_permutation(perm));
}

TEST(Ordering, NestedDissectionSeparatorLast) {
  // For a 1-D chain (nx × 1), the middle separator cell is numbered last.
  const auto perm = nested_dissection_2d(9, 1, /*leaf_size=*/2);
  EXPECT_EQ(perm.back(), 4);  // middle of 0..8
}

TEST(Blocks, LayoutBasics) {
  const BlockLayout layout(10, 4);
  EXPECT_EQ(layout.num_blocks, 3);
  EXPECT_EQ(layout.block_of(9), 2);
  EXPECT_EQ(layout.block_width(2), 2);
  EXPECT_EQ(layout.block_begin(1), 4);
  EXPECT_EQ(layout.block_end(1), 8);
}

TEST(Blocks, ProjectToBlocks) {
  const CscMatrix a = small_example();
  const BlockLayout layout(4, 2);
  const CscPattern blocks = project_to_blocks(a.pattern, layout, layout);
  EXPECT_NO_THROW(blocks.validate());
  EXPECT_TRUE(blocks.contains(0, 0));
  EXPECT_TRUE(blocks.contains(1, 0));  // entry (2,0)
  EXPECT_TRUE(blocks.contains(0, 1));  // entry (0,2)
  EXPECT_TRUE(blocks.contains(1, 1));
}

TEST(Blocks, NnzCounts) {
  const CscMatrix a = small_example();
  const BlockLayout layout(4, 2);
  const auto counts = block_nnz_counts(a.pattern, layout, layout);
  EXPECT_EQ(counts[0][0], 2);  // entries (0,0) and (1,1)
  EXPECT_EQ(counts[1][0], 1);  // entry (2,0)
  Index total = 0;
  for (const auto& row : counts) {
    for (Index c : row) total += c;
  }
  EXPECT_EQ(total, a.nnz());
}

}  // namespace
}  // namespace rapid::sparse
