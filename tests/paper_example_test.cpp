// End-to-end checks on the paper's own worked example (Figure 2's 20-task
// DAG, Figure 3's MAP placement, Figure 5's DCG slices, and the Section 3.2
// memory definitions). Where the paper gives concrete numbers that depend
// only on the model (not on its unpublished schedule details) we assert
// them exactly; elsewhere we assert the qualitative relationships the text
// states.
#include <gtest/gtest.h>

#include <algorithm>

#include "rapid/graph/dcg.hpp"
#include "rapid/rt/sim_executor.hpp"
#include "rapid/sched/liveness.hpp"
#include "rapid/sched/mapping.hpp"
#include "rapid/sched/ordering.hpp"

namespace rapid {
namespace {

using graph::TaskGraph;

struct PaperExample {
  TaskGraph graph = graph::make_paper_figure2_graph();
  std::vector<graph::ProcId> procs;
  machine::MachineParams params = machine::MachineParams::cray_t3d(2);

  PaperExample() { procs = sched::owner_compute_tasks(graph, 2); }

  sched::Schedule make(const char* which) const {
    if (std::string(which) == "rcp") {
      return sched::schedule_rcp(graph, procs, 2, params);
    }
    if (std::string(which) == "mpo") {
      return sched::schedule_mpo(graph, procs, 2, params);
    }
    return sched::schedule_dts(graph, procs, 2, params);
  }
};

TEST(PaperExample, PermanentSetsMatchSection2) {
  // PERM(P0) = {d1,d3,d5,d7,d9,d11}, PERM(P1) = {d2,d4,d6,d8,d10}.
  PaperExample ex;
  std::vector<std::string> perm0, perm1;
  for (graph::DataId d = 0; d < ex.graph.num_data(); ++d) {
    (ex.graph.data(d).owner == 0 ? perm0 : perm1)
        .push_back(ex.graph.data(d).name);
  }
  EXPECT_EQ(perm0, (std::vector<std::string>{"d1", "d3", "d5", "d7", "d9",
                                             "d11"}));
  EXPECT_EQ(perm1, (std::vector<std::string>{"d2", "d4", "d6", "d8", "d10"}));
}

TEST(PaperExample, VolatileSetsMatchSection2) {
  // VOLA(P0) = {d8}, VOLA(P1) = {d1, d3, d5, d7}.
  PaperExample ex;
  const auto schedule = ex.make("rcp");
  const auto liveness = sched::analyze_liveness(ex.graph, schedule);
  auto names = [&](int p) {
    std::vector<std::string> out;
    for (const auto& v : liveness.procs[p].volatiles) {
      out.push_back(ex.graph.data(v.object).name);
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(names(0), (std::vector<std::string>{"d8"}));
  EXPECT_EQ(names(1), (std::vector<std::string>{"d1", "d3", "d5", "d7"}));
}

TEST(PaperExample, OwnerComputePlacesTasksAsInFigure2) {
  PaperExample ex;
  // Every T[.., j] runs on owner(d_j): odd j on P0, even j on P1.
  for (graph::TaskId t = 0; t < ex.graph.num_tasks(); ++t) {
    const graph::DataId target = ex.graph.task(t).writes.front();
    EXPECT_EQ(ex.procs[t], ex.graph.data(target).owner);
  }
}

TEST(PaperExample, MemoryRequirementOrderingAcrossHeuristics) {
  // Section 3.2 / 4: MIN_MEM(RCP) >= MIN_MEM(MPO) >= MIN_MEM(DTS) on this
  // example (the paper reports 9, 8 and 7 for its specific schedules).
  PaperExample ex;
  const auto mem = [&](const char* which) {
    return sched::analyze_liveness(ex.graph, ex.make(which)).min_mem();
  };
  const auto rcp = mem("rcp"), mpo = mem("mpo"), dts = mem("dts");
  EXPECT_GE(rcp, mpo);
  EXPECT_GE(mpo, dts);
  // All schedules need at least P0's six permanent objects and at most all
  // eleven objects.
  EXPECT_GE(dts, 6);
  EXPECT_LE(rcp, 11);
}

TEST(PaperExample, DtsSlicesAreSingletonComponents) {
  // Figure 5: the example's DCG is a DAG, so every slice is one data node
  // (Corollary 1's hypothesis).
  PaperExample ex;
  const auto dcg = graph::build_dcg(ex.graph);
  EXPECT_TRUE(graph::dcg_is_acyclic(dcg));
  const auto slices = graph::decompose_slices(ex.graph, dcg);
  for (const auto& s : slices.slices) {
    EXPECT_EQ(s.objects.size(), 1u);
  }
}

TEST(PaperExample, Corollary1BoundHolds) {
  // Unit objects + acyclic DCG: DTS executes in S1/p + 1 per processor.
  // Our objects are unit size, so the per-processor bound is
  // max_p(PERM bytes) + 1.
  PaperExample ex;
  const auto dts = ex.make("dts");
  const auto liveness = sched::analyze_liveness(ex.graph, dts);
  std::int64_t max_perm = 0;
  for (const auto& p : liveness.procs) {
    max_perm = std::max(max_perm, p.permanent_bytes);
  }
  EXPECT_LE(liveness.min_mem(), max_perm + 1);
}

TEST(PaperExample, MapsAppearUnderTightMemoryAndFreeVolatiles) {
  // Figure 3(a): with capacity 8 per processor, P1 needs a mid-schedule MAP
  // that frees dead volatiles before allocating the rest.
  PaperExample ex;
  const auto dts = ex.make("dts");
  const rt::RunPlan plan = rt::build_run_plan(ex.graph, dts);
  const auto liveness = sched::analyze_liveness(ex.graph, dts);
  rt::RunConfig config;
  config.params = ex.params;
  config.capacity_per_proc = liveness.min_mem();
  const rt::RunReport tight = rt::simulate(plan, config);
  ASSERT_TRUE(tight.executable) << tight.failure;
  EXPECT_GT(*std::max_element(tight.maps_per_proc.begin(),
                              tight.maps_per_proc.end()),
            1);
  config.capacity_per_proc = liveness.tot_mem();
  const rt::RunReport loose = rt::simulate(plan, config);
  EXPECT_EQ(*std::max_element(loose.maps_per_proc.begin(),
                              loose.maps_per_proc.end()),
            1);
}

TEST(PaperExample, NonExecutableBelowDef6Threshold) {
  // Def. 6: capacity below MIN_MEM makes the schedule non-executable.
  PaperExample ex;
  for (const char* which : {"rcp", "mpo", "dts"}) {
    const auto schedule = ex.make(which);
    const rt::RunPlan plan = rt::build_run_plan(ex.graph, schedule);
    const auto min_mem =
        sched::analyze_liveness(ex.graph, schedule).min_mem();
    rt::RunConfig config;
    config.params = ex.params;
    config.capacity_per_proc = min_mem - 1;
    EXPECT_FALSE(rt::simulate(plan, config).executable) << which;
    config.capacity_per_proc = min_mem;
    EXPECT_TRUE(rt::simulate(plan, config).executable) << which;
  }
}

TEST(PaperExample, RcpIsFastestMpoNextDtsSlowestPredicted) {
  // Section 4's qualitative ordering of schedule lengths: RCP <= MPO <= DTS
  // ("the schedule length increases from RCP, through MPO to DTS").
  PaperExample ex;
  const double rcp = ex.make("rcp").predicted_makespan;
  const double mpo = ex.make("mpo").predicted_makespan;
  const double dts = ex.make("dts").predicted_makespan;
  EXPECT_LE(rcp, mpo + 1e-9);
  EXPECT_LE(mpo, dts + 1e-9);
}

}  // namespace
}  // namespace rapid
