#include <gtest/gtest.h>

#include "rapid/num/cholesky_app.hpp"
#include "rapid/num/reference.hpp"
#include "rapid/rt/sim_executor.hpp"
#include "rapid/sched/liveness.hpp"
#include "rapid/sched/mapping.hpp"
#include "rapid/sched/ordering.hpp"
#include "rapid/sparse/generators.hpp"
#include "rapid/sparse/ordering.hpp"

namespace rapid::num {
namespace {

sparse::CscMatrix nd_grid(sparse::Index s) {
  sparse::CscMatrix a = sparse::grid_laplacian_2d(s, s);
  return a.permuted_symmetric(sparse::nested_dissection_2d(s, s));
}

struct Runner {
  CholeskyApp app;
  sched::Schedule schedule;
  rt::RunPlan plan;
  std::int64_t min_mem = 0;

  Runner(sparse::CscMatrix a, Index block, int procs, bool use_dts = false) {
    app = CholeskyApp::build(std::move(a), block, procs);
    const auto assignment =
        sched::owner_compute_tasks(app.graph(), procs);
    const auto params = machine::MachineParams::cray_t3d(procs);
    schedule =
        use_dts
            ? sched::schedule_dts(app.graph(), assignment, procs, params)
            : sched::schedule_rcp(app.graph(), assignment, procs, params);
    plan = rt::build_run_plan(app.graph(), schedule);
    min_mem = sched::analyze_liveness(app.graph(), schedule).min_mem();
  }

  rt::RunReport run_threaded(std::int64_t capacity, bool active = true) {
    rt::RunConfig config;
    config.capacity_per_proc = capacity;
    config.active_memory = active;
    rt::ThreadedExecutor exec(plan, config, app.make_init(), app.make_body());
    const rt::RunReport report = exec.run();
    if (report.executable) {
      const auto l = app.extract_l_dense(exec);
      EXPECT_LT(cholesky_residual(app.matrix(), l), 1e-10);
    }
    return report;
  }
};

TEST(CholeskyApp, GraphStructureIsConsistent) {
  const auto app = CholeskyApp::build(nd_grid(8), 4, 4);
  const auto& g = app.graph();
  EXPECT_GT(g.num_tasks(), 0);
  EXPECT_GT(g.num_data(), 0);
  EXPECT_NO_THROW(g.topological_order());
  // Every data object is a present factor block with positive size.
  for (graph::DataId d = 0; d < g.num_data(); ++d) {
    EXPECT_GT(g.data(d).size_bytes, 0);
    EXPECT_GE(g.data(d).owner, 0);
    EXPECT_LT(g.data(d).owner, 4);
  }
  // Task kinds line up with names.
  for (graph::TaskId t = 0; t < g.num_tasks(); ++t) {
    const auto& info = app.info(t);
    const auto& name = g.task(t).name;
    switch (info.kind) {
      case CholeskyApp::TaskInfo::Kind::kPotrf:
        EXPECT_EQ(name.rfind("POTRF", 0), 0u);
        break;
      case CholeskyApp::TaskInfo::Kind::kTrsm:
        EXPECT_EQ(name.rfind("TRSM", 0), 0u);
        break;
      case CholeskyApp::TaskInfo::Kind::kUpdate:
        EXPECT_EQ(name.rfind("UPD", 0), 0u);
        break;
    }
  }
}

TEST(CholeskyApp, UpdatesToSameBlockCommute) {
  const auto app = CholeskyApp::build(nd_grid(8), 2, 2);
  const auto& g = app.graph();
  // Find two updates with the same target; they must not be ordered.
  for (graph::TaskId a = 0; a < g.num_tasks(); ++a) {
    if (app.info(a).kind != CholeskyApp::TaskInfo::Kind::kUpdate) continue;
    for (graph::TaskId b = a + 1; b < g.num_tasks(); ++b) {
      if (app.info(b).kind != CholeskyApp::TaskInfo::Kind::kUpdate) continue;
      if (app.info(a).i != app.info(b).i || app.info(a).j != app.info(b).j) {
        continue;
      }
      for (const graph::Edge& e : g.edges()) {
        EXPECT_FALSE((e.src == a && e.dst == b) || (e.src == b && e.dst == a))
            << "commuting updates ordered: " << g.task(a).name << " / "
            << g.task(b).name;
      }
      return;  // one pair suffices
    }
  }
  GTEST_SKIP() << "no commuting update pair in this instance";
}

TEST(CholeskyApp, ThreadedRunMatchesReferenceAmpleMemory) {
  Runner r(nd_grid(10), 5, 2);
  const auto report = r.run_threaded(1 << 22);
  ASSERT_TRUE(report.executable) << report.failure;
}

TEST(CholeskyApp, ThreadedRunMatchesReferenceAtMinMem) {
  Runner r(nd_grid(10), 5, 2);
  const auto report = r.run_threaded(r.min_mem);
  ASSERT_TRUE(report.executable) << report.failure;
  EXPECT_GE(report.avg_maps(), 1.0);
}

TEST(CholeskyApp, FourProcessors) {
  Runner r(nd_grid(12), 4, 4);
  const auto report = r.run_threaded(r.min_mem);
  ASSERT_TRUE(report.executable) << report.failure;
}

TEST(CholeskyApp, DtsScheduleAlsoNumericallyCorrect) {
  Runner r(nd_grid(10), 5, 2, /*use_dts=*/true);
  const auto report = r.run_threaded(r.min_mem);
  ASSERT_TRUE(report.executable) << report.failure;
}

TEST(CholeskyApp, BaselineModeNumericallyCorrect) {
  Runner r(nd_grid(10), 5, 2);
  const auto liveness = sched::analyze_liveness(r.app.graph(), r.schedule);
  const auto report =
      r.run_threaded(liveness.tot_mem(), /*active=*/false);
  ASSERT_TRUE(report.executable) << report.failure;
  EXPECT_EQ(report.maps_per_proc[0], 0);
}

TEST(CholeskyApp, SimulatorAgreesOnExecutability) {
  Runner r(nd_grid(10), 5, 2);
  rt::RunConfig c;
  c.capacity_per_proc = r.min_mem;
  c.params = machine::MachineParams::cray_t3d(2);
  EXPECT_TRUE(rt::simulate(r.plan, c).executable);
  c.capacity_per_proc = r.min_mem - 8;
  EXPECT_FALSE(rt::simulate(r.plan, c).executable);
}

TEST(CholeskyApp, BlockObjectLookup) {
  const auto app = CholeskyApp::build(nd_grid(6), 3, 2);
  EXPECT_NE(app.block_object(0, 0), graph::kInvalidData);
  const Index nb = app.layout().num_blocks;
  // Upper-triangular blocks are never objects.
  EXPECT_EQ(app.block_object(0, nb - 1), graph::kInvalidData);
}

TEST(CholeskyApp, LargerSingleProcessorMatchesReference) {
  // p = 1 degenerates to sequential execution through the whole stack.
  Runner r(nd_grid(9), 3, 1);
  const auto report = r.run_threaded(1 << 22);
  ASSERT_TRUE(report.executable) << report.failure;
  EXPECT_EQ(report.content_messages, 0);
}

}  // namespace
}  // namespace rapid::num
