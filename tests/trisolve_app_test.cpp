#include <gtest/gtest.h>

#include "rapid/num/trisolve_app.hpp"
#include "rapid/rt/sim_executor.hpp"
#include "rapid/sched/liveness.hpp"
#include "rapid/sched/mapping.hpp"
#include "rapid/sched/ordering.hpp"
#include "rapid/sparse/generators.hpp"
#include "rapid/sparse/ordering.hpp"

namespace rapid::num {
namespace {

sparse::CscMatrix nd_grid(sparse::Index s) {
  sparse::CscMatrix a = sparse::grid_laplacian_2d(s, s);
  return a.permuted_symmetric(sparse::nested_dissection_2d(s, s));
}

struct Runner {
  TriSolveApp app;
  sched::Schedule schedule;
  rt::RunPlan plan;
  std::int64_t min_mem = 0;

  Runner(sparse::CscMatrix a, Index block, int procs, bool use_dts = false) {
    app = TriSolveApp::build(std::move(a), block, procs);
    const auto assignment = sched::owner_compute_tasks(app.graph(), procs);
    const auto params = machine::MachineParams::cray_t3d(procs);
    schedule =
        use_dts ? sched::schedule_dts(app.graph(), assignment, procs, params)
                : sched::schedule_mpo(app.graph(), assignment, procs, params);
    plan = rt::build_run_plan(app.graph(), schedule);
    min_mem = sched::analyze_liveness(app.graph(), schedule).min_mem();
  }

  double run_threaded(std::int64_t capacity) {
    rt::RunConfig config;
    config.capacity_per_proc = capacity;
    rt::ThreadedExecutor exec(plan, config, app.make_init(), app.make_body());
    const rt::RunReport report = exec.run();
    if (!report.executable) return -1.0;
    return TriSolveApp::solution_error(app.extract_solution(exec));
  }
};

TEST(TriSolveApp, GraphShape) {
  const auto app = TriSolveApp::build(nd_grid(8), 4, 2);
  const auto& g = app.graph();
  EXPECT_NO_THROW(g.topological_order());
  // One forward + one backward solve per block row, plus symmetric update
  // counts in each sweep.
  const Index nb = app.layout().num_blocks;
  int fsol = 0, bsol = 0, fupd = 0, bupd = 0;
  for (graph::TaskId t = 0; t < g.num_tasks(); ++t) {
    switch (app.info(t).kind) {
      case TriSolveApp::TaskInfo::Kind::kForwardSolve: ++fsol; break;
      case TriSolveApp::TaskInfo::Kind::kBackwardSolve: ++bsol; break;
      case TriSolveApp::TaskInfo::Kind::kForwardUpdate: ++fupd; break;
      case TriSolveApp::TaskInfo::Kind::kBackwardUpdate: ++bupd; break;
    }
  }
  EXPECT_EQ(fsol, nb);
  EXPECT_EQ(bsol, nb);
  EXPECT_EQ(fupd, bupd);
  EXPECT_GT(fupd, 0);
}

TEST(TriSolveApp, UpdatesIntoSameSegmentCommute) {
  const auto app = TriSolveApp::build(nd_grid(8), 2, 2);
  const auto& g = app.graph();
  // Two forward updates into the same segment must be unordered.
  for (graph::TaskId a = 0; a < g.num_tasks(); ++a) {
    if (app.info(a).kind != TriSolveApp::TaskInfo::Kind::kForwardUpdate) {
      continue;
    }
    for (graph::TaskId b = a + 1; b < g.num_tasks(); ++b) {
      if (app.info(b).kind != TriSolveApp::TaskInfo::Kind::kForwardUpdate ||
          app.info(a).i != app.info(b).i) {
        continue;
      }
      for (const graph::Edge& e : g.edges()) {
        EXPECT_FALSE((e.src == a && e.dst == b) || (e.src == b && e.dst == a));
      }
      return;
    }
  }
  GTEST_SKIP() << "no commuting pair in this instance";
}

TEST(TriSolveApp, SolvesAtAmpleMemory) {
  Runner r(nd_grid(10), 5, 2);
  EXPECT_LT(r.run_threaded(1 << 22), 1e-9);
  EXPECT_GE(r.run_threaded(1 << 22), 0.0);
}

// Mixed object sizes (vector segments vs L blocks) fragment the arena, so
// unlike the uniform-size workloads the exact MIN_MEM frontier is only
// guaranteed one-sided: below MIN_MEM is always non-executable; at MIN_MEM
// a small fragmentation margin may be needed — the paper's §6 observation.
std::int64_t with_fragmentation_slack(std::int64_t min_mem) {
  return min_mem + min_mem / 8;
}

TEST(TriSolveApp, SolvesNearMinMem) {
  Runner r(nd_grid(10), 5, 2);
  const double err = r.run_threaded(with_fragmentation_slack(r.min_mem));
  EXPECT_GE(err, 0.0) << "non-executable near MIN_MEM";
  EXPECT_LT(err, 1e-9);
}

TEST(TriSolveApp, FourProcessorsDts) {
  Runner r(nd_grid(12), 4, 4, /*use_dts=*/true);
  const double err = r.run_threaded(with_fragmentation_slack(r.min_mem));
  EXPECT_GE(err, 0.0);
  EXPECT_LT(err, 1e-9);
}

TEST(TriSolveApp, SimulatorExecutabilityFrontier) {
  Runner r(nd_grid(10), 5, 2);
  rt::RunConfig c;
  c.capacity_per_proc = with_fragmentation_slack(r.min_mem);
  c.params = machine::MachineParams::cray_t3d(2);
  EXPECT_TRUE(rt::simulate(r.plan, c).executable);
  // Below MIN_MEM is non-executable regardless of allocator behaviour.
  c.capacity_per_proc = r.min_mem - 8;
  EXPECT_FALSE(rt::simulate(r.plan, c).executable);
}

TEST(TriSolveApp, FragmentationMarginIsSmallAndBounded) {
  // Scan upward from MIN_MEM for the true executability threshold; the
  // fragmentation margin must stay under 12.5 % for this workload (it is
  // ~2 % in practice — see the allocator ablation bench).
  Runner r(nd_grid(10), 5, 2);
  rt::RunConfig c;
  c.params = machine::MachineParams::cray_t3d(2);
  std::int64_t threshold = r.min_mem;
  while (true) {
    c.capacity_per_proc = threshold;
    if (rt::simulate(r.plan, c).executable) break;
    threshold += 8;
    ASSERT_LE(threshold, with_fragmentation_slack(r.min_mem));
  }
  EXPECT_GE(threshold, r.min_mem);
}

TEST(TriSolveApp, LBlocksAreReadOnlyVolatiles) {
  // No task writes an L block: every L object has zero writers, and remote
  // readers receive version 0 (initial content) only.
  const auto app = TriSolveApp::build(nd_grid(8), 4, 3);
  const auto& g = app.graph();
  int l_objects = 0;
  for (graph::DataId d = 0; d < g.num_data(); ++d) {
    if (g.data(d).name[0] == 'L') {
      ++l_objects;
      EXPECT_TRUE(g.writers(d).empty());
    }
  }
  EXPECT_GT(l_objects, 0);
}

}  // namespace
}  // namespace rapid::num
