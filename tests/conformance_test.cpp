// Tests for the execution-conformance checker (verify/conformance.hpp):
// clean traced runs on both executors check clean end to end (HB-RACE,
// CONF-STATE, CONF-MSG, CONF-CAP all silent, counters reconciled); fault
// presets under recovery stay clean because sequence-gated resends are part
// of the protocol, not violations; ring overflow degrades absence-based
// errors to warnings; and seeded protocol violations (the testing.hpp trace
// mutators) each produce their exact rule id at the exact site.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "counter_app.hpp"
#include "rapid/obs/trace.hpp"
#include "rapid/rt/faults.hpp"
#include "rapid/rt/sim_executor.hpp"
#include "rapid/rt/threaded_executor.hpp"
#include "rapid/sched/liveness.hpp"
#include "rapid/verify/conformance.hpp"
#include "rapid/verify/hb.hpp"
#include "rapid/verify/testing.hpp"

namespace rapid::verify {
namespace {

using rt::testing::CounterApp;
using rt::testing::GridApp;

/// One traced threaded run of the Figure-2 counter app, everything the
/// checker needs bundled: the app must outlive the plan (the plan holds a
/// pointer to its graph).
struct TracedRun {
  CounterApp app;
  std::int64_t capacity;
  obs::Trace trace;
  rt::RunReport report;

  explicit TracedRun(int procs, rt::ThreadedOptions options = {},
                     std::int32_t events_per_proc = 1 << 16)
      : app(procs),
        capacity(min_capacity()),
        trace(procs, ring(events_per_proc)) {
    options.trace = &trace;
    rt::ThreadedExecutor exec(app.plan, app.config(capacity),
                              app.make_init(), app.make_body(), options);
    report = exec.run();
  }

  std::int64_t min_capacity() const {
    return sched::analyze_liveness(app.graph, app.schedule).min_mem();
  }

  static obs::TraceConfig ring(std::int32_t events) {
    obs::TraceConfig c;
    c.events_per_proc = events;
    return c;
  }

  ConformanceOptions options() const {
    ConformanceOptions o;
    o.capacity_per_proc = capacity;
    o.alignment = 8;  // rt::ProcMemory alignment in the threaded executor
    o.report = &report;
    return o;
  }
};

// ---- clean runs check clean ------------------------------------------------

TEST(Conformance, ThreadedCleanRunChecksClean) {
  TracedRun run(4);
  ASSERT_TRUE(run.report.executable) << run.report.failure;
  const AuditReport r =
      check_conformance(run.app.plan, run.trace, run.options());
  EXPECT_TRUE(r.clean()) << r.to_string();
  EXPECT_EQ(r.warnings(), 0) << r.to_string();
}

TEST(Conformance, SimulatorCleanRunChecksClean) {
  CounterApp app(4);
  const std::int64_t capacity =
      sched::analyze_liveness(app.graph, app.schedule).min_mem();
  obs::Trace trace(4);
  const rt::RunReport report =
      rt::simulate(app.plan, app.config(capacity), &trace);
  ASSERT_TRUE(report.executable) << report.failure;

  ConformanceOptions options;
  options.capacity_per_proc = capacity;
  options.alignment = 1;  // the simulator's ProcMemory is unaligned
  options.report = &report;
  const AuditReport r = check_conformance(app.plan, trace, options);
  EXPECT_TRUE(r.clean()) << r.to_string();
  EXPECT_EQ(r.warnings(), 0) << r.to_string();
}

/// A denser app with real cross-processor traffic on every row.
TEST(Conformance, ThreadedGridRunChecksClean) {
  const int procs = 4;
  GridApp app(6, 6, procs);
  const std::int64_t capacity =
      sched::analyze_liveness(app.graph, app.schedule).min_mem();
  obs::Trace trace(procs);
  rt::ThreadedOptions options;
  options.trace = &trace;
  rt::RunConfig config;
  config.capacity_per_proc = capacity;
  config.active_memory = true;
  config.params = machine::MachineParams::cray_t3d(procs);
  rt::ThreadedExecutor exec(app.plan, config, app.make_init(),
                            app.make_body(), options);
  const rt::RunReport report = exec.run();
  ASSERT_TRUE(report.executable) << report.failure;

  ConformanceOptions copts;
  copts.capacity_per_proc = capacity;
  copts.alignment = 8;
  copts.report = &report;
  const AuditReport r = check_conformance(app.plan, trace, copts);
  EXPECT_TRUE(r.clean()) << r.to_string();
}

/// Recovery runs must also check clean: resends are sequence-gated
/// retransmits of planned sends (kResend pairs with an earlier publish of
/// the same put), NACK counts reconcile, and the state machine still walks
/// its scheduled positions.
TEST(Conformance, RecoveryPresetsCheckClean) {
  const char* presets[] = {"addr", "put", "slow", "park", "corrupt", "dup"};
  for (const char* preset : presets) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      rt::ThreadedOptions options;
      options.retry = RetryPolicy::standard();
      options.faults = rt::FaultPlan::preset(preset, seed);
      TracedRun run(4, options);
      ASSERT_TRUE(run.report.executable)
          << preset << " seed " << seed << ": " << run.report.failure;
      const AuditReport r =
          check_conformance(run.app.plan, run.trace, run.options());
      EXPECT_TRUE(r.clean())
          << preset << " seed " << seed << ":\n" << r.to_string();
    }
  }
}

// ---- graceful degradation on ring overflow ---------------------------------

/// With a ring far too small for the run, the prefix of history is gone.
/// Every absence-of-event conclusion is then unsound, so the checker must
/// degrade: zero errors, and an explicit CONF-TRUNCATED note.
TEST(Conformance, TinyRingDegradesToWarnings) {
  TracedRun run(4, {}, /*events_per_proc=*/64);
  ASSERT_TRUE(run.report.executable) << run.report.failure;
  ASSERT_GT(run.trace.total_dropped(), 0)
      << "ring too large for the test to mean anything";
  const AuditReport r =
      check_conformance(run.app.plan, run.trace, run.options());
  EXPECT_EQ(r.errors(), 0) << r.to_string();
  EXPECT_TRUE(r.has("CONF-TRUNCATED")) << r.to_string();
}

// ---- negative paths: seeded violations name their exact rule ---------------

TEST(Conformance, SuppressedPublicationIsAnHbRace) {
  TracedRun run(4);
  ASSERT_TRUE(run.report.executable) << run.report.failure;
  TraceView view = TraceView::from(run.trace);
  const auto site = testing::suppress_publication(view);
  ASSERT_TRUE(site.found()) << "no kPutPublish in the trace to suppress";

  ConformanceOptions options = run.options();
  options.report = nullptr;  // counters no longer reconcile by construction
  const AuditReport r = check_conformance(run.app.plan, view, options);
  EXPECT_FALSE(r.clean()) << "suppressed publication went unnoticed";
  const Finding* race = r.find("HB-RACE");
  ASSERT_NE(race, nullptr) << r.to_string();
  EXPECT_EQ(race->object, site.object) << r.to_string();
  EXPECT_TRUE(r.has("CONF-MSG")) << r.to_string();  // planned send missing
}

TEST(Conformance, FreeBeforeLastConsumeIsAnHbRace) {
  TracedRun run(4);
  ASSERT_TRUE(run.report.executable) << run.report.failure;
  TraceView view = TraceView::from(run.trace);
  const auto site = testing::reorder_free_before_last_consume(view);
  ASSERT_TRUE(site.found())
      << "no consume-then-free pair in the trace to reorder";

  ConformanceOptions options = run.options();
  options.report = nullptr;
  const AuditReport r = check_conformance(run.app.plan, view, options);
  const Finding* race = r.find("HB-RACE");
  ASSERT_NE(race, nullptr) << r.to_string();
  EXPECT_EQ(race->object, site.object) << r.to_string();
  EXPECT_EQ(race->proc, site.proc) << r.to_string();
}

TEST(Conformance, ForgedPutIsOutsideThePlanSendSet) {
  TracedRun run(4);
  ASSERT_TRUE(run.report.executable) << run.report.failure;
  TraceView view = TraceView::from(run.trace);
  const auto site = testing::forge_extra_put(view);
  ASSERT_TRUE(site.found()) << "no kPutPublish in the trace to forge";

  ConformanceOptions options = run.options();
  options.report = nullptr;
  const AuditReport r = check_conformance(run.app.plan, view, options);
  const Finding* msg = r.find("CONF-MSG");
  ASSERT_NE(msg, nullptr) << r.to_string();
  EXPECT_EQ(msg->object, site.object) << r.to_string();
  EXPECT_EQ(msg->proc, site.proc) << r.to_string();
  // The forged put also lands after the reader's MAP recycled the region,
  // so an HB-RACE finding alongside is correct — only CONF-MSG is required.
}

// ---- vector-clock engine sanity --------------------------------------------

/// Hand-built two-ring view: a publish on ring 0, a consume on ring 1 with
/// a cross edge between them. The clocks must order them one way only.
TEST(HbGraph, OrdersAcrossRingsAndRejectsCycles) {
  TraceView view;
  view.rings.resize(2);
  view.dropped.assign(2, 0);
  obs::TraceEvent pub{};
  pub.kind = obs::EventKind::kPutPublish;
  obs::TraceEvent con{};
  con.kind = obs::EventKind::kConsume;
  view.rings[0] = {pub, pub};
  view.rings[1] = {con, con};

  {
    HbGraph hb(view, {{EventRef{0, 0}, EventRef{1, 1}}});
    ASSERT_TRUE(hb.consistent());
    EXPECT_TRUE(hb.happens_before(EventRef{0, 0}, EventRef{1, 1}));
    EXPECT_FALSE(hb.happens_before(EventRef{1, 1}, EventRef{0, 0}));
    // Program order within a ring is always an edge.
    EXPECT_TRUE(hb.happens_before(EventRef{0, 0}, EventRef{0, 1}));
    // No cross edge touches ring 1's first event: concurrent with ring 0.
    EXPECT_FALSE(hb.happens_before(EventRef{0, 0}, EventRef{1, 0}));
    EXPECT_FALSE(hb.happens_before(EventRef{1, 0}, EventRef{0, 0}));
  }
  {
    // 0.1 -> 1.0 plus 1.1 -> 0.0 crosses program order both ways: a cycle.
    HbGraph hb(view, {{EventRef{0, 1}, EventRef{1, 0}},
                      {EventRef{1, 1}, EventRef{0, 0}}});
    EXPECT_FALSE(hb.consistent());
  }
}

}  // namespace
}  // namespace rapid::verify
