// RuntimeService behaviors, one at a time: exact mixed-run completion under
// the budget invariant, plan-cache reuse, structured rejection (budget
// shortfall / Def. 6 infeasibility / bad spec), bounded-queue shedding by
// earliest deadline, queued and mid-run deadline expiry, priority backfill,
// and per-run fault containment between co-resident runs. The chaos soak
// (service_chaos_test.cpp) crosses all of these at once; this file pins each
// contract in isolation so a regression names itself.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "rapid/rt/faults.hpp"
#include "rapid/svc/service.hpp"

namespace rapid::svc {
namespace {

void sleep_ms(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

RunRequest grid_request(const std::string& spec) {
  RunRequest req;
  req.spec = spec;
  req.config.capacity_per_proc = 1 << 20;
  return req;
}

TEST(Service, MixedRunsCompleteExactlyWithinBudget) {
  RuntimeService service;
  std::vector<std::int64_t> ids;
  ids.push_back(service.submit(grid_request("grid:rows=8,cols=8,procs=4")));
  ids.push_back(
      service.submit(grid_request("cholesky:grid=8,block=4,procs=4")));
  ids.push_back(service.submit(grid_request("lu:grid=8,block=4,procs=4")));
  for (const std::int64_t id : ids) {
    const RunRecord& r = service.wait(id);
    ASSERT_EQ(r.state, RunState::kCompleted) << r.spec << ": " << r.reason;
    EXPECT_TRUE(r.numerics_ok) << r.spec << " residual " << r.residual;
    ASSERT_TRUE(r.has_outcome);
    EXPECT_TRUE(r.outcome.report.executable);
  }
  // The grid app's result is integer: anything but a bit-exact zero is a
  // protocol bug, not roundoff.
  EXPECT_EQ(service.wait(ids[0]).residual, 0.0);

  const ServiceReport report = service.report();
  EXPECT_EQ(report.submitted, 3);
  EXPECT_EQ(report.completed, 3);
  EXPECT_EQ(report.failed + report.rejected + report.shed + report.expired,
            0);
  // The admission invariant: reservations never exceeded the budget, and
  // something was actually reserved.
  EXPECT_GT(report.peak_reserved_bytes, 0);
  EXPECT_LE(report.peak_reserved_bytes, report.budget_bytes);
}

TEST(Service, PlanCacheReusesRepeatedSpecs) {
  RuntimeService service;
  std::vector<std::int64_t> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(service.submit(grid_request("grid:rows=8,cols=8,procs=4")));
  }
  for (const std::int64_t id : ids) {
    EXPECT_EQ(service.wait(id).state, RunState::kCompleted);
  }
  const ServiceReport report = service.report();
  EXPECT_EQ(report.cache_misses, 1);
  EXPECT_EQ(report.cache_hits, 3);
}

TEST(Service, RejectsOverBudgetWithExactShortfall) {
  ServiceOptions opts;
  opts.budget_bytes = 256;  // well under any real run's demand
  RuntimeService service(opts);
  const std::int64_t id =
      service.submit(grid_request("grid:rows=8,cols=8,procs=4"));
  const RunRecord& r = service.wait(id);
  ASSERT_EQ(r.state, RunState::kRejected);
  EXPECT_EQ(r.admission.verdict, AdmissionVerdict::kRejected);
  EXPECT_GT(r.admission.need_bytes, opts.budget_bytes);
  EXPECT_EQ(r.admission.shortfall_bytes,
            r.admission.need_bytes - opts.budget_bytes);
  EXPECT_FALSE(r.reason.empty());
  EXPECT_EQ(service.report().rejected, 1);
}

TEST(Service, RejectsCapacityInfeasiblePlanStructured) {
  RuntimeService service;
  RunRequest req = grid_request("grid:rows=8,cols=8,procs=4");
  req.config.capacity_per_proc = 16;  // below any task's working set
  const std::int64_t id = service.submit(std::move(req));
  const RunRecord& r = service.wait(id);
  ASSERT_EQ(r.state, RunState::kRejected);
  EXPECT_EQ(r.admission.verdict, AdmissionVerdict::kRejected);
  // The Def. 6 replay failure names the processor that cannot fit.
  EXPECT_NE(r.reason.find("processor"), std::string::npos) << r.reason;
}

TEST(Service, RejectsUnbuildableSpecStructured) {
  RuntimeService service;
  const std::int64_t id = service.submit(grid_request("nosuch:thing=1"));
  const RunRecord& r = service.wait(id);
  ASSERT_EQ(r.state, RunState::kRejected);
  EXPECT_EQ(r.admission.verdict, AdmissionVerdict::kRejected);
  EXPECT_FALSE(r.reason.empty());
  EXPECT_EQ(service.report().completed, 0);
}

TEST(Service, BoundedQueueShedsEarliestDeadline) {
  ServiceOptions opts;
  opts.workers = 1;
  opts.queue_limit = 2;
  RuntimeService service(opts);

  // Occupy the single worker long enough for the queue games below.
  const std::int64_t a =
      service.submit(grid_request("grid:rows=8,cols=8,procs=4,delay=8000"));
  sleep_ms(30);  // let the worker dequeue A before filling the queue

  RunRequest b = grid_request("grid:rows=8,cols=8,procs=4");
  b.deadline_us = 100'000'000;
  RunRequest c = grid_request("grid:rows=6,cols=10,procs=4");
  c.deadline_us = 90'000'000;
  RunRequest d = grid_request("grid:rows=8,cols=8,procs=4");
  d.deadline_us = 1'000'000;  // earliest deadline in the house
  RunRequest e = grid_request("grid:rows=8,cols=8,procs=4");
  e.deadline_us = 200'000'000;
  const std::int64_t ib = service.submit(std::move(b));
  const std::int64_t ic = service.submit(std::move(c));
  // Queue is now full (limit 2). The newcomer has the earliest deadline of
  // anyone waiting, so the newcomer itself is shed.
  const std::int64_t id = service.submit(std::move(d));
  // This newcomer's deadline is the latest, so the shed victim is the
  // earliest-deadline queued run (C at 90s).
  const std::int64_t ie = service.submit(std::move(e));

  EXPECT_EQ(service.wait(id).state, RunState::kShed);
  EXPECT_EQ(service.wait(id).admission.verdict, AdmissionVerdict::kShed);
  EXPECT_FALSE(service.wait(id).reason.empty());
  EXPECT_EQ(service.wait(ic).state, RunState::kShed);
  EXPECT_EQ(service.wait(a).state, RunState::kCompleted);
  EXPECT_EQ(service.wait(ib).state, RunState::kCompleted);
  EXPECT_EQ(service.wait(ie).state, RunState::kCompleted);

  const ServiceReport report = service.report();
  EXPECT_EQ(report.shed, 2);
  EXPECT_LE(report.peak_queue_depth, opts.queue_limit);
}

TEST(Service, QueuedRunExpiresUndispatched) {
  ServiceOptions opts;
  opts.workers = 1;
  RuntimeService service(opts);
  const std::int64_t a =
      service.submit(grid_request("grid:rows=8,cols=8,procs=4,delay=8000"));
  sleep_ms(20);  // ensure A holds the worker before B arrives
  RunRequest b = grid_request("grid:rows=8,cols=8,procs=4");
  b.deadline_us = 30'000;  // lapses long before A finishes
  const std::int64_t ib = service.submit(std::move(b));

  const RunRecord& rb = service.wait(ib);
  ASSERT_EQ(rb.state, RunState::kExpired);
  EXPECT_FALSE(rb.has_outcome);  // never dispatched, so no partial report
  EXPECT_NE(rb.reason.find("lapsed while queued"), std::string::npos)
      << rb.reason;
  EXPECT_EQ(service.wait(a).state, RunState::kCompleted);
  EXPECT_EQ(service.report().expired, 1);
}

TEST(Service, MidRunDeadlineCancelsCooperatively) {
  RuntimeService service;
  RunRequest req = grid_request("grid:rows=8,cols=8,procs=4,delay=20000");
  req.deadline_us = 60'000;  // far less than the run's ~10ms/task pace
  const std::int64_t id = service.submit(std::move(req));
  const RunRecord& r = service.wait(id);
  ASSERT_EQ(r.state, RunState::kExpired);
  // Cancelled in flight: the partial report survives the reclaimed arena.
  ASSERT_TRUE(r.has_outcome);
  EXPECT_TRUE(r.outcome.failed);
  EXPECT_EQ(r.outcome.failure_kind, rt::FailureKind::kCancelled);
  EXPECT_EQ(r.outcome.report.run_id, r.run_id);
  // 8x8 grid + doubling tasks: the 60ms budget cannot cover them all at
  // ~10ms a task, so the report is genuinely partial.
  EXPECT_LT(r.outcome.report.tasks_executed, 8 * 8);
}

TEST(Service, PriorityBackfillsAheadOfFifo) {
  ServiceOptions opts;
  opts.workers = 1;
  RuntimeService service(opts);
  const std::int64_t a =
      service.submit(grid_request("grid:rows=8,cols=8,procs=4,delay=8000"));
  sleep_ms(25);
  RunRequest low = grid_request("grid:rows=8,cols=8,procs=4");
  low.priority = 0;
  RunRequest high = grid_request("grid:rows=6,cols=10,procs=4");
  high.priority = 5;
  const std::int64_t il = service.submit(std::move(low));
  const std::int64_t ih = service.submit(std::move(high));

  EXPECT_EQ(service.wait(a).state, RunState::kCompleted);
  const RunRecord& rl = service.wait(il);
  const RunRecord& rh = service.wait(ih);
  ASSERT_EQ(rl.state, RunState::kCompleted);
  ASSERT_EQ(rh.state, RunState::kCompleted);
  // High priority was submitted later but dispatched first, so it waited
  // strictly less than the FIFO-earlier low-priority run.
  EXPECT_LT(rh.wait_us, rl.wait_us);
}

TEST(Service, FaultInOneRunNeverPausesCoResidents) {
  RuntimeService service;  // two workers: both runs in flight together
  RunRequest faulty = grid_request("grid:rows=8,cols=8,procs=4,delay=1000");
  faulty.options.faults.throw_in_task = 5;
  faulty.options.faults.induced_fault_runs = 1;  // restart runs clean
  faulty.recovery.max_run_attempts = 2;
  RunRequest clean = grid_request("cholesky:grid=8,block=4,procs=4");
  const std::int64_t fi = service.submit(std::move(faulty));
  const std::int64_t ci = service.submit(std::move(clean));

  const RunRecord& rf = service.wait(fi);
  const RunRecord& rc = service.wait(ci);
  ASSERT_EQ(rf.state, RunState::kCompleted) << rf.reason;
  ASSERT_EQ(rc.state, RunState::kCompleted) << rc.reason;
  // The injected fault cost the faulty run a restart; the co-resident run
  // finished on its first attempt with clean numerics.
  EXPECT_EQ(rf.outcome.attempts, 2);
  EXPECT_EQ(rc.outcome.attempts, 1);
  EXPECT_TRUE(rf.numerics_ok);
  EXPECT_TRUE(rc.numerics_ok);
  const ServiceReport report = service.report();
  EXPECT_EQ(report.completed, 2);
  EXPECT_EQ(report.failed, 0);
}

}  // namespace
}  // namespace rapid::svc
