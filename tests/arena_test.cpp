#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "rapid/mem/arena.hpp"
#include "rapid/support/rng.hpp"

namespace rapid::mem {
namespace {

TEST(Arena, AllocateAndFreeRoundTrip) {
  Arena arena(1024);
  const Offset a = arena.allocate(100);
  ASSERT_NE(a, kNullOffset);
  EXPECT_EQ(arena.in_use(), 104);  // rounded to alignment 8
  arena.deallocate(a);
  EXPECT_EQ(arena.in_use(), 0);
  arena.check_invariants();
}

TEST(Arena, ZeroSizeGetsDistinctAddresses) {
  Arena arena(64);
  const Offset a = arena.allocate(0);
  const Offset b = arena.allocate(0);
  ASSERT_NE(a, kNullOffset);
  ASSERT_NE(b, kNullOffset);
  EXPECT_NE(a, b);
}

TEST(Arena, ExhaustionReturnsNullAndCounts) {
  Arena arena(64);
  EXPECT_NE(arena.allocate(64), kNullOffset);
  EXPECT_EQ(arena.allocate(1), kNullOffset);
  EXPECT_EQ(arena.stats().failed_allocs, 1);
}

TEST(Arena, CanAllocateIsNonMutating) {
  Arena arena(64);
  EXPECT_TRUE(arena.can_allocate(64));
  EXPECT_FALSE(arena.can_allocate(65));
  EXPECT_EQ(arena.in_use(), 0);
  EXPECT_EQ(arena.stats().failed_allocs, 0);
}

TEST(Arena, CoalescingAllowsFullReuse) {
  Arena arena(96);
  const Offset a = arena.allocate(32);
  const Offset b = arena.allocate(32);
  const Offset c = arena.allocate(32);
  ASSERT_NE(c, kNullOffset);
  // Free in an order that requires both-side coalescing.
  arena.deallocate(a);
  arena.deallocate(c);
  arena.deallocate(b);
  arena.check_invariants();
  EXPECT_EQ(arena.num_free_blocks(), 1u);
  EXPECT_NE(arena.allocate(96), kNullOffset);
}

TEST(Arena, FragmentationBlocksLargeAllocation) {
  Arena arena(128);
  const Offset a = arena.allocate(32);
  const Offset b = arena.allocate(32);
  const Offset c = arena.allocate(32);
  const Offset d = arena.allocate(32);
  (void)a;
  (void)c;
  arena.deallocate(b);
  arena.deallocate(d);
  // 64 bytes free but split in two 32-byte holes.
  EXPECT_FALSE(arena.can_allocate(64));
  EXPECT_TRUE(arena.can_allocate(32));
  EXPECT_GT(arena.stats().fragmentation(), 0.0);
}

TEST(Arena, DoubleFreeThrows) {
  Arena arena(64);
  const Offset a = arena.allocate(8);
  arena.deallocate(a);
  EXPECT_THROW(arena.deallocate(a), Error);
}

TEST(Arena, ForeignOffsetThrows) {
  Arena arena(64);
  arena.allocate(8);
  EXPECT_THROW(arena.deallocate(4), Error);
  EXPECT_THROW(arena.allocation_size(4), Error);
}

TEST(Arena, PeakTracksHighWater) {
  Arena arena(256);
  const Offset a = arena.allocate(128);
  const Offset b = arena.allocate(64);
  arena.deallocate(a);
  arena.deallocate(b);
  EXPECT_EQ(arena.stats().peak_in_use, 192);
  EXPECT_EQ(arena.in_use(), 0);
}

TEST(Arena, FirstFitReusesEarliestHole) {
  Arena arena(256);
  const Offset a = arena.allocate(64);
  const Offset b = arena.allocate(64);
  (void)b;
  arena.deallocate(a);
  // First fit must place a small allocation into the first hole (offset 0).
  EXPECT_EQ(arena.allocate(32), 0);
}

/// Property test: a long random allocate/free trace preserves all
/// invariants, conserves bytes, and coalescing keeps the free list small.
TEST(Arena, RandomTraceInvariants) {
  Rng rng(2024);
  Arena arena(1 << 16);
  std::vector<Offset> live;
  for (int step = 0; step < 5000; ++step) {
    if (live.empty() || rng.next_bool(0.55)) {
      const auto size = static_cast<std::int64_t>(rng.next_below(500));
      const Offset off = arena.allocate(size);
      if (off != kNullOffset) {
        live.push_back(off);
      }
    } else {
      const auto idx =
          static_cast<std::size_t>(rng.next_below(live.size()));
      arena.deallocate(live[idx]);
      live[idx] = live.back();
      live.pop_back();
    }
    if (step % 97 == 0) arena.check_invariants();
  }
  arena.check_invariants();
  for (Offset off : live) arena.deallocate(off);
  arena.check_invariants();
  EXPECT_EQ(arena.in_use(), 0);
  EXPECT_EQ(arena.num_free_blocks(), 1u);
}

SlabConfig one_class(std::int64_t size, std::int32_t max_cached = 64) {
  SlabConfig slab;
  slab.class_sizes = {size};
  slab.max_cached_per_class = max_cached;
  return slab;
}

TEST(ArenaSlab, ClassFreeIsCachedAndReusedInPlace) {
  Arena arena(1024, 8, AllocPolicy::kFirstFit, one_class(64));
  const Offset a = arena.allocate(64);
  ASSERT_NE(a, kNullOffset);
  arena.deallocate(a);
  // The block parks on the slab cache instead of coalescing back.
  EXPECT_EQ(arena.slab_cached_blocks(), 1);
  EXPECT_EQ(arena.in_use(), 0);
  const Offset b = arena.allocate(64);
  EXPECT_EQ(b, a);  // LIFO reuse of the cached block
  EXPECT_EQ(arena.stats().slab_hits, 1);
  EXPECT_EQ(arena.slab_cached_blocks(), 0);
  arena.check_invariants();
}

TEST(ArenaSlab, NonClassSizesBypassTheCache) {
  Arena arena(1024, 8, AllocPolicy::kFirstFit, one_class(64));
  const Offset a = arena.allocate(32);
  arena.deallocate(a);
  EXPECT_EQ(arena.slab_cached_blocks(), 0);
  EXPECT_EQ(arena.stats().slab_hits, 0);
  arena.check_invariants();
}

TEST(ArenaSlab, CacheBoundSpillsToTheMap) {
  Arena arena(1024, 8, AllocPolicy::kFirstFit, one_class(64, /*max=*/2));
  std::vector<Offset> blocks;
  for (int i = 0; i < 4; ++i) blocks.push_back(arena.allocate(64));
  for (Offset b : blocks) arena.deallocate(b);
  EXPECT_EQ(arena.slab_cached_blocks(), 2);  // bound, extras coalesce
  arena.check_invariants();
}

TEST(ArenaSlab, AllocateFlushesCachesWhenTheMapCannotFit) {
  // Capacity exactly 4 class blocks: after freeing all four into the cache
  // the coalescing map alone cannot serve a 256-byte request — the arena
  // must spill the caches, coalesce, and retry.
  Arena arena(256, 8, AllocPolicy::kFirstFit, one_class(64));
  std::vector<Offset> blocks;
  for (int i = 0; i < 4; ++i) blocks.push_back(arena.allocate(64));
  for (Offset b : blocks) arena.deallocate(b);
  EXPECT_EQ(arena.slab_cached_blocks(), 4);
  EXPECT_NE(arena.allocate(256), kNullOffset);
  EXPECT_GE(arena.stats().slab_flushes, 1);
  EXPECT_EQ(arena.stats().failed_allocs, 0);
  arena.check_invariants();
}

TEST(ArenaSlab, CanAllocateSeesThroughTheCaches) {
  Arena arena(256, 8, AllocPolicy::kFirstFit, one_class(64));
  std::vector<Offset> blocks;
  for (int i = 0; i < 4; ++i) blocks.push_back(arena.allocate(64));
  for (Offset b : blocks) arena.deallocate(b);
  // All free bytes are parked on slab caches; a 256-byte request is still
  // satisfiable and can_allocate must say so without changing accounting.
  EXPECT_TRUE(arena.can_allocate(256));
  EXPECT_EQ(arena.in_use(), 0);
  EXPECT_EQ(arena.stats().failed_allocs, 0);
  arena.check_invariants();
}

/// The satellite invariant behind CONF-CAP with slabs on: in_use / peak /
/// alloc counters are byte-identical to a plain arena over any trace the
/// two can both satisfy (placement may differ; accounting may not).
TEST(ArenaSlab, AccountingMatchesPlainArenaOnRandomTrace) {
  Rng rng(11);
  SlabConfig slab;
  slab.class_sizes = {64, 128, 256};
  Arena plain(1 << 20);
  Arena slabbed(1 << 20, 8, AllocPolicy::kFirstFit, slab);
  std::vector<Offset> live_plain, live_slab;
  const std::int64_t sizes[] = {64, 128, 256, 48, 200};
  for (int step = 0; step < 4000; ++step) {
    if (live_plain.empty() || rng.next_bool(0.55)) {
      const std::int64_t size =
          sizes[rng.next_below(sizeof(sizes) / sizeof(sizes[0]))];
      const Offset p = plain.allocate(size);
      const Offset s = slabbed.allocate(size);
      ASSERT_EQ(p == kNullOffset, s == kNullOffset);
      if (p != kNullOffset) {
        live_plain.push_back(p);
        live_slab.push_back(s);
      }
    } else {
      const auto idx =
          static_cast<std::size_t>(rng.next_below(live_plain.size()));
      plain.deallocate(live_plain[idx]);
      slabbed.deallocate(live_slab[idx]);
      live_plain[idx] = live_plain.back();
      live_plain.pop_back();
      live_slab[idx] = live_slab.back();
      live_slab.pop_back();
    }
    ASSERT_EQ(plain.in_use(), slabbed.in_use());
    ASSERT_EQ(plain.stats().peak_in_use, slabbed.stats().peak_in_use);
    if (step % 131 == 0) slabbed.check_invariants();
  }
  EXPECT_GT(slabbed.stats().slab_hits, 0);
  slabbed.check_invariants();
}

/// Live allocations never overlap.
TEST(Arena, AllocationsAreDisjoint) {
  Rng rng(7);
  Arena arena(1 << 14);
  std::map<Offset, std::int64_t> live;
  for (int step = 0; step < 800; ++step) {
    const auto size = static_cast<std::int64_t>(1 + rng.next_below(200));
    const Offset off = arena.allocate(size);
    if (off == kNullOffset) {
      if (live.empty()) break;
      auto it = live.begin();
      std::advance(it, rng.next_below(live.size()));
      arena.deallocate(it->first);
      live.erase(it);
      continue;
    }
    live[off] = arena.allocation_size(off);
    const auto it = live.find(off);
    if (it != live.begin()) {
      const auto prev = std::prev(it);
      ASSERT_LE(prev->first + prev->second, off);
    }
    const auto next = std::next(it);
    if (next != live.end()) {
      ASSERT_LE(off + it->second, next->first);
    }
  }
}

}  // namespace
}  // namespace rapid::mem
