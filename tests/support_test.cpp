#include <gtest/gtest.h>

#include <limits>
#include <set>

#include "rapid/support/check.hpp"
#include "rapid/support/flags.hpp"
#include "rapid/support/json.hpp"
#include "rapid/support/log.hpp"
#include "rapid/support/rng.hpp"
#include "rapid/support/stopwatch.hpp"
#include "rapid/support/str.hpp"
#include "rapid/support/table.hpp"

namespace rapid {
namespace {

TEST(Check, ThrowsWithExpressionAndMessage) {
  try {
    RAPID_CHECK(1 == 2, cat("context ", 42));
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("context 42"), std::string::npos);
    EXPECT_NE(what.find("support_test.cpp"), std::string::npos);
  }
}

TEST(Check, PassingConditionDoesNotThrow) {
  EXPECT_NO_THROW(RAPID_CHECK(true, ""));
}

TEST(Check, FailMacroAlwaysThrows) {
  EXPECT_THROW(RAPID_FAIL("boom"), Error);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowIsInRangeAndCoversValues) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.next_below(10);
    ASSERT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, NextIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(Str, Fixed) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(-1.0, 0), "-1");
}

TEST(Str, Pct) {
  EXPECT_EQ(pct(0.123), "+12.3%");
  EXPECT_EQ(pct(-0.05), "-5.0%");
}

TEST(Str, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
}

TEST(Str, HumanBytes) {
  EXPECT_EQ(human_bytes(512), "512 B");
  EXPECT_EQ(human_bytes(1536), "1.50 KB");
}

TEST(Flags, ParsesBothSyntaxes) {
  Flags flags;
  flags.define("n", "1", "count").define("name", "x", "label");
  const char* argv[] = {"prog", "--n=5", "--name", "hello"};
  flags.parse(4, argv);
  EXPECT_EQ(flags.get_int("n"), 5);
  EXPECT_EQ(flags.get("name"), "hello");
}

TEST(Flags, DefaultsApply) {
  Flags flags;
  flags.define("p", "2,4,8", "procs");
  const char* argv[] = {"prog"};
  flags.parse(1, argv);
  const auto list = flags.get_int_list("p");
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[2], 8);
}

TEST(Flags, UnknownFlagThrows) {
  Flags flags;
  flags.define("a", "1", "");
  const char* argv[] = {"prog", "--b=2"};
  EXPECT_THROW(flags.parse(2, argv), Error);
}

TEST(Flags, BadIntegerThrows) {
  Flags flags;
  flags.define("a", "1", "");
  const char* argv[] = {"prog", "--a=xyz"};
  flags.parse(2, argv);
  EXPECT_THROW(flags.get_int("a"), Error);
}

TEST(Flags, BoolParsing) {
  Flags flags;
  flags.define("on", "false", "");
  const char* argv[] = {"prog", "--on=true"};
  flags.parse(2, argv);
  EXPECT_TRUE(flags.get_bool("on"));
}

TEST(Json, EscapesQuotesAndBackslashes) {
  JsonValue v(std::string("say \"hi\" c:\\temp"));
  EXPECT_EQ(v.dump(), "\"say \\\"hi\\\" c:\\\\temp\"\n");
}

TEST(Json, EscapesNamedControlCharacters) {
  JsonValue v(std::string("a\nb\tc\rd\be\ff"));
  EXPECT_EQ(v.dump(), "\"a\\nb\\tc\\rd\\be\\ff\"\n");
}

TEST(Json, EscapesUnnamedControlCharactersAsUnicode) {
  std::string s = "x";
  s += '\x01';
  s += '\x1f';
  s.push_back('\0');  // embedded NUL must not truncate the output
  JsonValue v(s);
  EXPECT_EQ(v.dump(), "\"x\\u0001\\u001f\\u0000\"\n");
}

TEST(Json, HighBytesPassThroughUnharmed) {
  // UTF-8 payload bytes (>= 0x80) must not be mangled into \uffXX by
  // signed-char promotion — they pass through verbatim.
  const std::string snowman = "\xe2\x98\x83";
  JsonValue v(snowman);
  EXPECT_EQ(v.dump(), "\"" + snowman + "\"\n");
}

TEST(Json, AdversarialKeyAndValueRoundTripStructurally) {
  // An object whose key and value both carry every escape class at once:
  // the dump must stay balanced and contain no raw control bytes.
  JsonValue root = JsonValue::object();
  std::string nasty = "\"\\\n\r\t\b\f";
  nasty += '\x02';
  nasty += "\xc3\xa9";  // é
  root[nasty] = nasty;
  const std::string out = root.dump();
  for (const char c : out) {
    EXPECT_TRUE(static_cast<unsigned char>(c) >= 0x20 || c == '\n')
        << "raw control byte leaked into output";
  }
  EXPECT_NE(out.find("\\u0002"), std::string::npos);
  EXPECT_NE(out.find("\\\""), std::string::npos);
  EXPECT_NE(out.find("\xc3\xa9"), std::string::npos);
}

TEST(Json, InfAndNanBecomeNull) {
  JsonValue arr = JsonValue::array();
  arr.push_back(std::numeric_limits<double>::infinity());
  arr.push_back(std::numeric_limits<double>::quiet_NaN());
  const std::string out = arr.dump();
  EXPECT_EQ(out.find("inf"), std::string::npos);
  EXPECT_EQ(out.find("nan"), std::string::npos);
  EXPECT_NE(out.find("null"), std::string::npos);
}

TEST(Table, RendersAligned) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name    value"), std::string::npos);
  EXPECT_NE(out.find("longer  22"), std::string::npos);
}

TEST(Table, ArityMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), Error);
}

TEST(Json, EmptyObjectAndArrayDumpCompact) {
  EXPECT_EQ(JsonValue::object().dump(), "{}\n");
  EXPECT_EQ(JsonValue::array().dump(), "[]\n");
  // Empty containers nested in a parent stay compact too.
  JsonValue doc = JsonValue::object();
  doc["runs"] = JsonValue::array();
  doc["meta"] = JsonValue::object();
  const std::string out = doc.dump();
  EXPECT_NE(out.find("\"runs\": []"), std::string::npos);
  EXPECT_NE(out.find("\"meta\": {}"), std::string::npos);
}

TEST(Stopwatch, NowNsIsMonotonic) {
  std::int64_t prev = now_ns();
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t t = now_ns();
    ASSERT_GE(t, prev);
    prev = t;
  }
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  std::int64_t spin = now_ns();
  while (now_ns() - spin < 1'000'000) {
  }
  EXPECT_GE(sw.nanos(), 1'000'000);
  EXPECT_GT(sw.millis(), 0.9);
  EXPECT_GT(sw.seconds(), 0.0009);
}

TEST(Log, LevelFromEnvParsesNamesAndNumbers) {
  EXPECT_EQ(log_level_from_env("debug"), LogLevel::kDebug);
  EXPECT_EQ(log_level_from_env("INFO"), LogLevel::kInfo);
  EXPECT_EQ(log_level_from_env("Warning"), LogLevel::kWarn);
  EXPECT_EQ(log_level_from_env("warn"), LogLevel::kWarn);
  EXPECT_EQ(log_level_from_env("error"), LogLevel::kError);
  EXPECT_EQ(log_level_from_env("0"), LogLevel::kDebug);
  EXPECT_EQ(log_level_from_env("3"), LogLevel::kError);
}

TEST(Log, LevelFromEnvFallsBackOnGarbage) {
  EXPECT_EQ(log_level_from_env(nullptr), LogLevel::kWarn);
  EXPECT_EQ(log_level_from_env("", LogLevel::kError), LogLevel::kError);
  EXPECT_EQ(log_level_from_env("loud", LogLevel::kInfo), LogLevel::kInfo);
  EXPECT_EQ(log_level_from_env("7"), LogLevel::kWarn);
}

TEST(Log, ThreadProcTagIsPerThread) {
  set_log_thread_proc(3);
  EXPECT_EQ(log_thread_proc(), 3);
  set_log_thread_proc(-1);
  EXPECT_EQ(log_thread_proc(), -1);
}

}  // namespace
}  // namespace rapid
