// Tests for the bounded model checker over the runtime's lock-free
// primitives (verify/litmus.hpp). Two directions, both load-bearing:
//
//   1. The STRONG variants — the orderings the threaded executor actually
//      ships (Doorbell seq_cst handshake, mailbox pending-flag reset inside
//      the critical section, crc→version→put_seq release chain) — must
//      verify CLEAN over every interleaving. This replaces the prose-only
//      ordering argument in docs/RUNTIME.md with a mechanical one.
//
//   2. The WEAKENED variants — each with exactly one ordering dropped —
//      must produce their counterexample. A checker that cannot refute the
//      broken versions proves nothing about the shipped ones.
#include <gtest/gtest.h>

#include <string>

#include "rapid/verify/litmus.hpp"

namespace rapid::verify {
namespace {

std::string joined(const LitmusResult& r) {
  std::string out;
  for (const std::string& v : r.violations) out += v + "\n";
  return out;
}

// ---- strong variants: the shipped orderings verify clean -------------------

TEST(Litmus, DoorbellStrongVerifiesClean) {
  const LitmusResult r = run_litmus(doorbell_handshake(0));
  EXPECT_TRUE(r.clean()) << joined(r);
  EXPECT_GT(r.states_explored, 0);
}

TEST(Litmus, MailboxStrongVerifiesClean) {
  const LitmusResult r = run_litmus(mailbox_handoff(0));
  EXPECT_TRUE(r.clean()) << joined(r);
  EXPECT_GT(r.states_explored, 0);
}

TEST(Litmus, PublicationStrongVerifiesClean) {
  const LitmusResult r = run_litmus(put_publication(0));
  EXPECT_TRUE(r.clean()) << joined(r);
  EXPECT_GT(r.states_explored, 0);
}

// ---- weakened variants: the checker must find the counterexample -----------

TEST(Litmus, WeakRingerSignalLosesTheWakeup) {
  const LitmusResult r = run_litmus(doorbell_handshake(1));
  ASSERT_FALSE(r.clean())
      << "a relaxed count++ must produce a lost wakeup";
  EXPECT_NE(r.violations.front().find("lost wakeup"), std::string::npos)
      << r.violations.front();
}

TEST(Litmus, WeakWaiterRegistrationLosesTheWakeup) {
  const LitmusResult r = run_litmus(doorbell_handshake(2));
  ASSERT_FALSE(r.clean())
      << "a relaxed sleepers++ must produce a lost wakeup";
  EXPECT_NE(r.violations.front().find("lost wakeup"), std::string::npos)
      << r.violations.front();
}

TEST(Litmus, WeakMailboxResetStrandsAPackage) {
  const LitmusResult r = run_litmus(mailbox_handoff(1));
  ASSERT_FALSE(r.clean())
      << "resetting the pending flag outside the lock must lose a package";
  EXPECT_NE(r.violations.front().find("property violated"),
            std::string::npos)
      << r.violations.front();
}

TEST(Litmus, WeakPublicationTearsThePut) {
  const LitmusResult r = run_litmus(put_publication(1));
  ASSERT_FALSE(r.clean())
      << "a relaxed put_seq store must produce a torn publication";
  EXPECT_NE(r.violations.front().find("property violated"),
            std::string::npos)
      << r.violations.front();
}

// ---- suite-level invariants ------------------------------------------------

TEST(Litmus, AllVariantsAgreeWithTheirExpectations) {
  for (const LitmusResult& r : run_all_litmus()) {
    EXPECT_TRUE(r.as_expected())
        << r.name << (r.expect_clean ? " was expected to verify clean:\n"
                                     : " was expected to find a "
                                       "counterexample\n")
        << joined(r);
  }
}

TEST(Litmus, EnumerationIsDeterministic) {
  const LitmusResult a = run_litmus(doorbell_handshake(0));
  const LitmusResult b = run_litmus(doorbell_handshake(0));
  EXPECT_EQ(a.states_explored, b.states_explored);
  const LitmusResult c = run_litmus(doorbell_handshake(2));
  const LitmusResult d = run_litmus(doorbell_handshake(2));
  ASSERT_FALSE(c.clean());
  EXPECT_EQ(c.violations, d.violations);
}

}  // namespace
}  // namespace rapid::verify
