#include <gtest/gtest.h>

#include <limits>

#include "rapid/rt/sim_executor.hpp"
#include "rapid/sched/liveness.hpp"
#include "rapid/sched/mapping.hpp"
#include "rapid/sched/ordering.hpp"

namespace rapid::rt {
namespace {

using graph::TaskGraph;

struct Fixture {
  TaskGraph graph = graph::make_paper_figure2_graph();
  sched::Schedule schedule;
  RunPlan plan;
  std::int64_t min_mem = 0;
  std::int64_t tot_mem = 0;

  explicit Fixture(bool mpo = false) {
    const auto procs = sched::owner_compute_tasks(graph, 2);
    const auto params = machine::MachineParams::cray_t3d(2);
    schedule = mpo ? sched::schedule_mpo(graph, procs, 2, params)
                   : sched::schedule_rcp(graph, procs, 2, params);
    plan = build_run_plan(graph, schedule);
    const auto liveness = sched::analyze_liveness(graph, schedule);
    min_mem = liveness.min_mem();
    tot_mem = liveness.tot_mem();
  }

  RunConfig config(std::int64_t capacity, bool active = true) const {
    RunConfig c;
    c.capacity_per_proc = capacity;
    c.active_memory = active;
    c.params = machine::MachineParams::cray_t3d(2);
    return c;
  }
};

TEST(SimExecutor, RunsToCompletionWithAmpleMemory) {
  Fixture f;
  const RunReport r = simulate(f.plan, f.config(1 << 20));
  EXPECT_TRUE(r.executable);
  EXPECT_EQ(r.tasks_executed, 20);
  EXPECT_GT(r.parallel_time_us, 0.0);
  // Ample memory: exactly one MAP per processor (the mandatory initial one).
  EXPECT_EQ(r.maps_per_proc[0], 1);
  EXPECT_EQ(r.maps_per_proc[1], 1);
}

TEST(SimExecutor, BaselineModeHasNoMaps) {
  Fixture f;
  const RunReport r = simulate(f.plan, f.config(1 << 20, /*active=*/false));
  EXPECT_TRUE(r.executable);
  EXPECT_EQ(r.maps_per_proc[0], 0);
  EXPECT_EQ(r.addr_packages, 0);
  EXPECT_EQ(r.suspended_sends, 0);
}

TEST(SimExecutor, ExecutableExactlyDownToMinMem) {
  // The MAP mechanism must execute any schedule with MIN_MEM <= capacity
  // and reject capacity < MIN_MEM — the run-time realization of Def. 6.
  Fixture f;
  const RunReport at = simulate(f.plan, f.config(f.min_mem));
  EXPECT_TRUE(at.executable) << at.failure;
  EXPECT_EQ(at.tasks_executed, 20);
  const RunReport below = simulate(f.plan, f.config(f.min_mem - 1));
  EXPECT_FALSE(below.executable);
  EXPECT_FALSE(below.failure.empty());
}

TEST(SimExecutor, BaselineNeedsTotMem) {
  Fixture f;
  EXPECT_TRUE(simulate(f.plan, f.config(f.tot_mem, false)).executable);
  EXPECT_FALSE(simulate(f.plan, f.config(f.tot_mem - 1, false)).executable);
}

TEST(SimExecutor, TighterMemoryMeansMoreMaps) {
  Fixture f;
  const RunReport loose = simulate(f.plan, f.config(f.tot_mem));
  const RunReport tight = simulate(f.plan, f.config(f.min_mem));
  EXPECT_TRUE(loose.executable);
  EXPECT_TRUE(tight.executable);
  EXPECT_GE(tight.avg_maps(), loose.avg_maps());
  EXPECT_GT(tight.avg_maps(), 1.0);
}

TEST(SimExecutor, ActiveMemoryCostsTime) {
  Fixture f;
  const RunReport base = simulate(f.plan, f.config(f.tot_mem, false));
  const RunReport active = simulate(f.plan, f.config(f.min_mem, true));
  EXPECT_GT(active.parallel_time_us, base.parallel_time_us);
}

TEST(SimExecutor, PeakMemoryWithinCapacityAndAboveNothing) {
  Fixture f;
  const RunReport r = simulate(f.plan, f.config(f.min_mem));
  ASSERT_TRUE(r.executable);
  for (std::int64_t peak : r.peak_bytes_per_proc) {
    EXPECT_LE(peak, f.min_mem);
    EXPECT_GT(peak, 0);
  }
}

TEST(SimExecutor, MessageAccounting) {
  Fixture f;
  const RunReport r = simulate(f.plan, f.config(1 << 20));
  // Five volatile objects (d8 on P0; d1,d3,d5,d7 on P1) => five content
  // messages of 1 byte each.
  EXPECT_EQ(r.content_messages, 5);
  EXPECT_EQ(r.content_bytes, 5);
  EXPECT_GT(r.addr_packages, 0);
  EXPECT_EQ(r.addr_entries, 5);
}

TEST(SimExecutor, DeterministicAcrossRuns) {
  Fixture f;
  const RunReport a = simulate(f.plan, f.config(f.min_mem));
  const RunReport b = simulate(f.plan, f.config(f.min_mem));
  EXPECT_DOUBLE_EQ(a.parallel_time_us, b.parallel_time_us);
  EXPECT_EQ(a.maps_per_proc, b.maps_per_proc);
  EXPECT_EQ(a.content_messages, b.content_messages);
}

TEST(SimExecutor, SuspendedSendsHappenUnderActiveMemory) {
  // With active memory, version-0 content cannot leave before the reader's
  // address package arrives: those sends are suspended at least once.
  Fixture f;
  const RunReport r = simulate(f.plan, f.config(1 << 20));
  EXPECT_GT(r.suspended_sends, 0);
}

TEST(SimExecutor, MpoScheduleAlsoExecutesAtItsMinMem) {
  Fixture f(/*mpo=*/true);
  const RunReport r = simulate(f.plan, f.config(f.min_mem));
  EXPECT_TRUE(r.executable) << r.failure;
  EXPECT_FALSE(simulate(f.plan, f.config(f.min_mem - 1)).executable);
}

TEST(SimExecutor, TimeBreakdownIsConsistent) {
  Fixture f;
  const RunReport r = simulate(f.plan, f.config(f.min_mem));
  ASSERT_TRUE(r.executable);
  // Compute time is exactly the sum of the modeled task times.
  double expected_compute = 0.0;
  for (graph::TaskId t = 0; t < f.graph.num_tasks(); ++t) {
    expected_compute =
        expected_compute +
        machine::MachineParams::cray_t3d(2).task_time_us(
            f.graph.task(t).flops);
  }
  EXPECT_NEAR(r.compute_us, expected_compute, 1e-9);
  EXPECT_GT(r.send_us, 0.0);
  EXPECT_GT(r.map_us, 0.0);  // active mode: MAP + address machinery
  // Busy time fits within p × makespan, so idle fraction is within [0, 1].
  EXPECT_GE(r.idle_fraction(), 0.0);
  EXPECT_LE(r.idle_fraction(), 1.0);
}

TEST(SimExecutor, BaselineHasNoMapTime) {
  Fixture f;
  const RunReport r = simulate(f.plan, f.config(f.tot_mem, false));
  ASSERT_TRUE(r.executable);
  EXPECT_DOUBLE_EQ(r.map_us, 0.0);
  EXPECT_GT(r.compute_us, 0.0);
}

TEST(SimExecutor, MultiSlotMailboxesExecuteIdentically) {
  Fixture f;
  auto config = f.config(f.min_mem);
  const RunReport one = simulate(f.plan, config);
  config.mailbox_slots = 8;
  const RunReport many = simulate(f.plan, config);
  ASSERT_TRUE(one.executable);
  ASSERT_TRUE(many.executable);
  EXPECT_EQ(one.tasks_executed, many.tasks_executed);
  EXPECT_EQ(one.content_messages, many.content_messages);
  // More slots can only reduce MAP blocking, never slow things down.
  EXPECT_LE(many.parallel_time_us, one.parallel_time_us + 1e-9);
}

TEST(SimExecutor, SingleProcessorNeedsNoMessages) {
  TaskGraph g = graph::make_paper_figure2_graph();
  for (graph::DataId d = 0; d < g.num_data(); ++d) g.set_owner(d, 0);
  const auto procs = sched::owner_compute_tasks(g, 1);
  const auto params = machine::MachineParams::cray_t3d(1);
  const auto schedule = sched::schedule_rcp(g, procs, 1, params);
  const RunPlan plan = build_run_plan(g, schedule);
  RunConfig c;
  c.capacity_per_proc = g.sequential_space();
  c.params = params;
  const RunReport r = simulate(plan, c);
  EXPECT_TRUE(r.executable) << r.failure;
  EXPECT_EQ(r.content_messages, 0);
  EXPECT_EQ(r.flag_messages, 0);
}

}  // namespace
}  // namespace rapid::rt
