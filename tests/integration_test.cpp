// Whole-pipeline integration tests on the paper's workload stand-ins:
// generator -> ordering -> symbolic factorization -> block task graph ->
// scheduling -> run plan -> simulated / threaded execution, asserting the
// cross-module invariants and the paper's qualitative findings at small
// scale. The bench binaries run the same pipeline at full scale.
#include <gtest/gtest.h>

#include <algorithm>

#include "rapid/num/cholesky_app.hpp"
#include "rapid/num/lu_app.hpp"
#include "rapid/num/reference.hpp"
#include "rapid/num/workloads.hpp"
#include "rapid/rt/sim_executor.hpp"
#include "rapid/sched/liveness.hpp"
#include "rapid/sched/mapping.hpp"
#include "rapid/sched/ordering.hpp"
#include "rapid/verify/testing.hpp"

namespace rapid {
namespace {

struct Pipeline {
  graph::TaskGraph* graph;
  std::vector<graph::ProcId> assignment;
  machine::MachineParams params;

  Pipeline(graph::TaskGraph& g, int procs)
      : graph(&g),
        assignment(sched::owner_compute_tasks(g, procs)),
        params(machine::MachineParams::cray_t3d(procs)) {}

  sched::Schedule rcp() const {
    return sched::schedule_rcp(*graph, assignment, params.num_procs, params);
  }
  sched::Schedule mpo() const {
    return sched::schedule_mpo(*graph, assignment, params.num_procs, params);
  }
  sched::Schedule dts(std::optional<std::int64_t> budget = {}) const {
    return sched::schedule_dts(*graph, assignment, params.num_procs, params,
                               budget);
  }

  rt::RunReport run(const sched::Schedule& s, std::int64_t capacity,
                    bool active = true) const {
    const rt::RunPlan plan = rt::build_run_plan(*graph, s);
    // Protocol-level audit only: these tests sweep deliberately infeasible
    // capacities, so capacity feasibility is the assertion's job, not the
    // auditor's (EXPECT_PLAN_CLEAN skips the capacity replay).
    EXPECT_PLAN_CLEAN(*graph, s, plan);
    rt::RunConfig config;
    config.params = params;
    config.capacity_per_proc = capacity;
    config.active_memory = active;
    return rt::simulate(plan, config);
  }
};

TEST(Integration, WorkloadsHaveDocumentedShapes) {
  EXPECT_EQ(num::bcsstk24_like(0.2).matrix.n_cols(), 144);  // 12x12 grid
  EXPECT_TRUE(num::bcsstk24_like(0.2).spd);
  EXPECT_FALSE(num::goodwin_like(0.2).spd);
  const auto w15 = num::bcsstk15_like(0.25);
  EXPECT_EQ(w15.matrix.n_cols(), 64);  // 4x4x4
}

TEST(Integration, CholeskyPipelineMemoryHierarchy) {
  auto workload = num::bcsstk24_like(0.25);
  auto app = num::CholeskyApp::build(std::move(workload.matrix), 6, 4);
  Pipeline pipe(app.mutable_graph(), 4);
  const auto rcp = pipe.rcp();
  const auto mpo = pipe.mpo();
  const auto dts = pipe.dts();
  const auto mem = [&](const sched::Schedule& s) {
    return sched::analyze_liveness(app.graph(), s).min_mem();
  };
  // Figure 7's qualitative content at small scale.
  EXPECT_GE(mem(rcp), mem(mpo));
  EXPECT_GE(mem(mpo), mem(dts));
  // And DTS is the slowest by predicted time, RCP the fastest.
  EXPECT_LE(rcp.predicted_makespan, dts.predicted_makespan + 1e-9);
}

TEST(Integration, CholeskyOverheadGrowsAsMemoryShrinks) {
  auto workload = num::bcsstk24_like(0.25);
  auto app = num::CholeskyApp::build(std::move(workload.matrix), 6, 4);
  Pipeline pipe(app.mutable_graph(), 4);
  const auto rcp = pipe.rcp();
  const auto liveness = sched::analyze_liveness(app.graph(), rcp);
  const auto tot = liveness.tot_mem();
  const rt::RunReport base = pipe.run(rcp, tot, /*active=*/false);
  ASSERT_TRUE(base.executable);
  double last_time = base.parallel_time_us;
  double prev_maps = 0.0;
  for (double frac : {1.0, 0.75, 0.5}) {
    const auto capacity = static_cast<std::int64_t>(tot * frac);
    if (capacity < liveness.min_mem()) break;
    const rt::RunReport r = pipe.run(rcp, capacity);
    ASSERT_TRUE(r.executable) << r.failure;
    EXPECT_GE(r.parallel_time_us, base.parallel_time_us);
    EXPECT_GE(r.avg_maps(), prev_maps);
    prev_maps = r.avg_maps();
    last_time = r.parallel_time_us;
  }
  EXPECT_GT(last_time, base.parallel_time_us);
}

TEST(Integration, LuPipelineRcpIsNotMemoryScalable) {
  auto workload = num::goodwin_like(0.15);
  auto app = num::LuApp::build(std::move(workload.matrix), 6, 4);
  Pipeline pipe(app.mutable_graph(), 4);
  const auto rcp = pipe.rcp();
  const auto dts = pipe.dts();
  const double s1 = static_cast<double>(app.graph().sequential_space());
  const double rcp_ratio =
      s1 / static_cast<double>(
               sched::analyze_liveness(app.graph(), rcp).min_mem());
  const double dts_ratio =
      s1 / static_cast<double>(
               sched::analyze_liveness(app.graph(), dts).min_mem());
  // Figure 7(b): DTS's memory reduction ratio beats RCP's on LU.
  EXPECT_GE(dts_ratio, rcp_ratio);
}

TEST(Integration, DtsSliceMergingRecoversTime) {
  auto workload = num::bcsstk24_like(0.25);
  auto app = num::CholeskyApp::build(std::move(workload.matrix), 6, 4);
  Pipeline pipe(app.mutable_graph(), 4);
  const auto plain = pipe.dts();
  // Generous budget: merging should recover time (Table 7's story).
  std::int64_t max_perm = 0;
  const auto liveness = sched::analyze_liveness(app.graph(), plain);
  for (const auto& p : liveness.procs) {
    max_perm = std::max(max_perm, p.permanent_bytes);
  }
  const auto merged = pipe.dts(std::optional<std::int64_t>(1 << 28));
  EXPECT_LE(merged.predicted_makespan, plain.predicted_makespan + 1e-9);
}

TEST(Integration, ExecutabilityFrontierMatchesDef6Everywhere) {
  // For each ordering, run a capacity sweep and verify executability is a
  // monotone threshold located exactly at MIN_MEM.
  auto workload = num::bcsstk24_like(0.2);
  auto app = num::CholeskyApp::build(std::move(workload.matrix), 4, 2);
  Pipeline pipe(app.mutable_graph(), 2);
  for (const auto& schedule : {pipe.rcp(), pipe.mpo(), pipe.dts()}) {
    const auto min_mem =
        sched::analyze_liveness(app.graph(), schedule).min_mem();
    EXPECT_TRUE(pipe.run(schedule, min_mem).executable);
    EXPECT_TRUE(pipe.run(schedule, min_mem + 1024).executable);
    EXPECT_FALSE(pipe.run(schedule, min_mem - 8).executable);
    EXPECT_FALSE(pipe.run(schedule, min_mem / 2).executable);
  }
}

TEST(Integration, MoreProcessorsImproveMemoryScalability) {
  // Table 1's driver: as p grows, per-processor MIN_MEM falls (more
  // recycling freedom), i.e. S1/MIN_MEM grows.
  auto workload = num::bcsstk24_like(0.25);
  double last_ratio = 0.0;
  for (int p : {1, 4, 16}) {
    auto matrix = workload.matrix;
    auto app = num::CholeskyApp::build(std::move(matrix), 6, p);
    Pipeline pipe(app.mutable_graph(), p);
    const double ratio = sched::memory_scalability(app.graph(), pipe.rcp());
    EXPECT_GE(ratio, last_ratio * 0.95);  // allow small non-monotone steps
    last_ratio = ratio;
  }
  EXPECT_GT(last_ratio, 1.5);
}

TEST(Integration, MapCountsDecreaseWithMoreMemory) {
  auto workload = num::goodwin_like(0.12);
  auto app = num::LuApp::build(std::move(workload.matrix), 5, 4);
  Pipeline pipe(app.mutable_graph(), 4);
  const auto rcp = pipe.rcp();
  const auto liveness = sched::analyze_liveness(app.graph(), rcp);
  const rt::RunReport tight = pipe.run(rcp, liveness.min_mem());
  const rt::RunReport loose = pipe.run(rcp, liveness.tot_mem());
  ASSERT_TRUE(tight.executable) << tight.failure;
  ASSERT_TRUE(loose.executable) << loose.failure;
  EXPECT_GE(tight.avg_maps(), loose.avg_maps());
  EXPECT_EQ(loose.avg_maps(), 1.0);
}

TEST(Integration, SimulatorStatisticsAreInternallyConsistent) {
  auto workload = num::bcsstk24_like(0.2);
  auto app = num::CholeskyApp::build(std::move(workload.matrix), 4, 4);
  Pipeline pipe(app.mutable_graph(), 4);
  const auto rcp = pipe.rcp();
  const rt::RunReport r =
      pipe.run(rcp, sched::analyze_liveness(app.graph(), rcp).min_mem());
  ASSERT_TRUE(r.executable);
  EXPECT_EQ(r.tasks_executed, app.graph().num_tasks());
  EXPECT_GT(r.content_messages, 0);
  EXPECT_GT(r.content_bytes, r.content_messages);  // blocks exceed 1 byte
  EXPECT_GE(r.suspended_sends, 0);
  EXPECT_LE(r.suspended_sends, r.content_messages);
  for (std::int64_t peak : r.peak_bytes_per_proc) {
    EXPECT_GT(peak, 0);
  }
}

}  // namespace
}  // namespace rapid
