// Observability plane tests: ring-buffer tracer semantics, metrics
// reduction, occupancy reconstruction (exact against the MAP engine's
// peak), Chrome-trace export structure, and the disabled-tracer guarantee
// (no events, identical protocol behavior).
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "counter_app.hpp"
#include "rapid/obs/chrome_trace.hpp"
#include "rapid/obs/metrics.hpp"
#include "rapid/obs/timeline.hpp"
#include "rapid/obs/trace.hpp"
#include "rapid/rt/sim_executor.hpp"
#include "rapid/sched/liveness.hpp"
#include "rapid/support/str.hpp"

namespace rapid::obs {
namespace {

using rt::testing::CounterApp;
using rt::testing::GridApp;

TraceConfig small_ring(std::int32_t events) {
  TraceConfig c;
  c.events_per_proc = events;
  return c;
}

TEST(Trace, RecordsInOrderWithPayload) {
  Trace trace(2, small_ring(64));
  trace.record_at(0, 10, EventKind::kTaskBegin, 7);
  trace.record_at(0, 20, EventKind::kTaskEnd, 7);
  trace.record_at(1, 15, EventKind::kPut, 3, 2, 1, 4096);
  const auto p0 = trace.events(0);
  ASSERT_EQ(p0.size(), 2u);
  EXPECT_EQ(p0[0].t_ns, 10);
  EXPECT_EQ(p0[0].kind, EventKind::kTaskBegin);
  EXPECT_EQ(p0[0].a, 7);
  EXPECT_EQ(p0[1].kind, EventKind::kTaskEnd);
  const auto p1 = trace.events(1);
  ASSERT_EQ(p1.size(), 1u);
  EXPECT_EQ(p1[0].bytes, 4096);
  EXPECT_EQ(p1[0].c, 1);
  EXPECT_EQ(trace.total_events(), 3);
  EXPECT_EQ(trace.total_dropped(), 0);
}

TEST(Trace, RingWrapsKeepingNewestEvents) {
  Trace trace(1, small_ring(64));
  for (int i = 0; i < 100; ++i) {
    trace.record_at(0, i, EventKind::kHeapSample, 0, 0, 0, i);
  }
  EXPECT_EQ(trace.recorded(0), 100);
  EXPECT_EQ(trace.dropped(0), 36);
  const auto events = trace.events(0);
  ASSERT_EQ(events.size(), 64u);
  EXPECT_EQ(events.front().t_ns, 36);  // oldest survivor
  EXPECT_EQ(events.back().t_ns, 99);
}

TEST(Trace, DisabledTraceRecordsNothing) {
  TraceConfig config;
  config.enabled = false;
  Trace trace(4, config);
  EXPECT_FALSE(trace.enabled());
  trace.record(0, EventKind::kTaskBegin, 1);
  trace.record_at(3, 99, EventKind::kPut, 1, 2, 3, 64);
  EXPECT_EQ(trace.total_events(), 0);
  for (int q = 0; q < 4; ++q) EXPECT_TRUE(trace.events(q).empty());
}

TEST(Trace, StampsMonotonicallyWithinAProcessor) {
  Trace trace(1);
  for (int i = 0; i < 200; ++i) trace.record(0, EventKind::kHeapSample);
  const auto events = trace.events(0);
  ASSERT_EQ(events.size(), 200u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    ASSERT_GE(events[i].t_ns, events[i - 1].t_ns);
  }
  EXPECT_GE(events.front().t_ns, 0);
}

TEST(Histogram, TracksCountSumBoundsAndPercentiles) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.percentile(0.5), 0);
  for (const std::int64_t v : {0LL, 1LL, 2LL, 3LL, 1000LL}) h.add(v);
  EXPECT_EQ(h.count(), 5);
  EXPECT_EQ(h.sum(), 1006);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 1000);
  EXPECT_DOUBLE_EQ(h.mean(), 1006.0 / 5.0);
  EXPECT_LE(h.percentile(0.5), 4);  // bucket upper bound containing 2
  EXPECT_EQ(h.percentile(1.0), 1000);  // clamped to observed max
}

/// End-to-end traced run on the Figure-2 counter app: every processor's
/// stream must show the full five-state protocol cycle, and per-event
/// counts must reconcile with the executor's own counters.
TEST(ObsThreaded, TracedRunCarriesAllFiveStatesAndReconciles) {
  const int procs = 4;
  CounterApp app(procs);
  const auto liveness = sched::analyze_liveness(app.graph, app.schedule);
  Trace trace(procs);
  rt::ThreadedOptions options;
  options.trace = &trace;
  rt::ThreadedExecutor exec(app.plan, app.config(liveness.min_mem()),
                            app.make_init(), app.make_body(), options);
  const rt::RunReport report = exec.run();
  ASSERT_TRUE(report.executable) << report.failure;

  std::int64_t task_begins = 0;
  std::int64_t publishes = 0;
  std::int64_t flag_sends = 0;
  for (int q = 0; q < procs; ++q) {
    std::set<int> states;
    std::int64_t maps_begun = 0;
    for (const TraceEvent& e : trace.events(q)) {
      switch (e.kind) {
        case EventKind::kStateEnter:
          states.insert(e.a);
          break;
        case EventKind::kTaskBegin:
          ++task_begins;
          break;
        case EventKind::kPutPublish:
        case EventKind::kResend:
          ++publishes;
          break;
        case EventKind::kFlagSend:
          ++flag_sends;
          break;
        case EventKind::kMapBegin:
          ++maps_begun;
          break;
        default:
          break;
      }
    }
    EXPECT_EQ(states.size(),
              static_cast<std::size_t>(ProtoState::kCount))
        << "proc " << q << " missing protocol states";
    EXPECT_EQ(maps_begun, report.maps_per_proc[static_cast<std::size_t>(q)]);
  }
  EXPECT_EQ(task_begins, report.tasks_executed);
  EXPECT_EQ(publishes, report.content_messages);
  EXPECT_EQ(flag_sends, report.flag_messages);
  EXPECT_EQ(trace.total_dropped(), 0);
}

/// The reconstructed occupancy high-water mark must equal the MAP engine's
/// reported peak bit-for-bit — including peaks reached by tentative
/// allocations that perform_map rolled back (covered by kHeapPeak).
TEST(ObsThreaded, OccupancyHighWaterMatchesMapEngineExactly) {
  const int procs = 4;
  GridApp app(6, 6, procs);
  const auto liveness = sched::analyze_liveness(app.graph, app.schedule);
  Trace trace(procs);
  rt::ThreadedOptions options;
  options.trace = &trace;
  rt::RunConfig config;
  config.capacity_per_proc = liveness.min_mem();
  config.active_memory = true;
  config.params = machine::MachineParams::cray_t3d(procs);
  rt::ThreadedExecutor exec(app.plan, config, app.make_init(),
                            app.make_body(), options);
  const rt::RunReport report = exec.run();
  ASSERT_TRUE(report.executable) << report.failure;
  app.check_results(exec);

  const OccupancyProfile occ = build_occupancy(trace);
  ASSERT_EQ(occ.high_water.size(), static_cast<std::size_t>(procs));
  for (int q = 0; q < procs; ++q) {
    EXPECT_EQ(occ.high_water[static_cast<std::size_t>(q)],
              report.peak_bytes_per_proc[static_cast<std::size_t>(q)])
        << "proc " << q;
  }
  // Samples are time-ordered and never exceed the high-water mark.
  for (int q = 0; q < procs; ++q) {
    const auto& series = occ.per_proc[static_cast<std::size_t>(q)];
    ASSERT_FALSE(series.empty());
    for (std::size_t i = 0; i < series.size(); ++i) {
      EXPECT_LE(series[i].bytes, occ.high_water[static_cast<std::size_t>(q)]);
      if (i > 0) {
        EXPECT_GE(series[i].t_ns, series[i - 1].t_ns);
      }
    }
  }
  const std::string csv = occupancy_csv(occ);
  EXPECT_EQ(csv.rfind("proc,t_ns,bytes\n", 0), 0u);
}

/// A null trace pointer and a disabled tracer must behave identically: no
/// events, and the protocol does exactly the same work (deterministic
/// counters only — suspended_sends depends on thread timing).
TEST(ObsThreaded, DisabledTracerChangesNothing) {
  const int procs = 4;
  CounterApp app(procs);
  const auto liveness = sched::analyze_liveness(app.graph, app.schedule);

  rt::ThreadedExecutor plain(app.plan, app.config(liveness.min_mem()),
                             app.make_init(), app.make_body());
  const rt::RunReport base = plain.run();
  ASSERT_TRUE(base.executable);

  TraceConfig config;
  config.enabled = false;
  Trace trace(procs, config);
  rt::ThreadedOptions options;
  options.trace = &trace;
  rt::ThreadedExecutor off(app.plan, app.config(liveness.min_mem()),
                           app.make_init(), app.make_body(), options);
  const rt::RunReport report = off.run();
  ASSERT_TRUE(report.executable);

  EXPECT_EQ(trace.total_events(), 0);
  EXPECT_EQ(report.tasks_executed, base.tasks_executed);
  EXPECT_EQ(report.content_messages, base.content_messages);
  EXPECT_EQ(report.flag_messages, base.flag_messages);
  EXPECT_EQ(report.addr_packages, base.addr_packages);
  EXPECT_FALSE(report.metrics);  // no metrics block without live tracing
}

TEST(ObsThreaded, MetricsSummaryReconcilesWithRun) {
  const int procs = 4;
  CounterApp app(procs);
  const auto liveness = sched::analyze_liveness(app.graph, app.schedule);
  Trace trace(procs);
  rt::ThreadedOptions options;
  options.trace = &trace;
  rt::ThreadedExecutor exec(app.plan, app.config(liveness.min_mem()),
                            app.make_init(), app.make_body(), options);
  const rt::RunReport report = exec.run();
  ASSERT_TRUE(report.executable);

  ASSERT_TRUE(report.metrics);
  const MetricsSummary& m = *report.metrics;
  EXPECT_EQ(m.task_us.count(), report.tasks_executed);
  EXPECT_EQ(m.events, trace.total_events());
  EXPECT_EQ(m.heap_high_water.size(), static_cast<std::size_t>(procs));
  for (int q = 0; q < procs; ++q) {
    EXPECT_EQ(m.heap_high_water[static_cast<std::size_t>(q)],
              report.peak_bytes_per_proc[static_cast<std::size_t>(q)]);
  }
  double residency = 0.0;
  for (const double r : m.state_residency_us) {
    EXPECT_GE(r, 0.0);
    residency += r;
  }
  EXPECT_GT(residency, 0.0);

  // The metrics block rides into the run report's JSON (v2 added
  // "metrics", v3 "put_batches", v4 "transport"/"proc_failure", v5
  // "run_id"/"attempt_deadline_us").
  const std::string json = report.to_json().dump();
  EXPECT_NE(json.find("\"schema_version\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"put_batches\""), std::string::npos);
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"state_residency_us\""), std::string::npos);
}

TEST(ObsThreaded, ChromeTraceExportIsStructurallySound) {
  const int procs = 2;
  CounterApp app(procs);
  const auto liveness = sched::analyze_liveness(app.graph, app.schedule);
  Trace trace(procs);
  rt::ThreadedOptions options;
  options.trace = &trace;
  rt::ThreadedExecutor exec(app.plan, app.config(liveness.min_mem()),
                            app.make_init(), app.make_body(), options);
  ASSERT_TRUE(exec.run().executable);

  TraceLabels labels;
  for (graph::TaskId t = 0; t < app.graph.num_tasks(); ++t) {
    labels.tasks.push_back(app.graph.task(t).name);
  }
  for (graph::DataId d = 0; d < app.graph.num_data(); ++d) {
    labels.objects.push_back(app.graph.data(d).name);
  }
  const std::string json = chrome_trace(trace, labels).dump();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  // All five protocol states appear as named spans.
  for (const char* state : {"REC", "EXE", "SND", "MAP", "END"}) {
    EXPECT_NE(json.find(cat("\"name\": \"", state, "\"")),
              std::string::npos)
        << state;
  }
  // Task spans use the app's labels, flows tie puts to consumption.
  EXPECT_NE(json.find("\"dataflow\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  // Unlabeled export falls back to generated names without throwing.
  const std::string bare = chrome_trace(trace).dump();
  EXPECT_NE(bare.find("obj"), std::string::npos);
}

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

/// PR 7's put batcher publishes several objects back-to-back inside one
/// coalesced RMA put; each published object must keep its own flow arrow —
/// merging them (or letting a later publication overwrite an earlier one
/// under the same key) loses dataflow edges in the viewer.
TEST(ChromeTraceFlows, BatchedPutsKeepOneArrowPerObject) {
  Trace trace(2, small_ring(64));
  // Proc 1 publishes objects 3 and 4 to reader 0 back-to-back (one staged
  // batch), then proc 0 consumes both. The consumer has the LOWER proc
  // index, so a single forward scan that matches while collecting would
  // see the consumes before the publishes — the two-pass regression.
  trace.record_at(1, 10, EventKind::kPutPublish, /*obj=*/3, /*ver=*/1,
                  /*dest=*/0, /*bytes=*/64, /*seq=*/1);
  trace.record_at(1, 11, EventKind::kPutPublish, /*obj=*/4, /*ver=*/1,
                  /*dest=*/0, /*bytes=*/64, /*seq=*/1);
  trace.record_at(0, 20, EventKind::kConsume, /*obj=*/3, /*ver=*/1,
                  /*owner=*/1, /*bytes=*/0, /*seq=*/1);
  trace.record_at(0, 21, EventKind::kConsume, /*obj=*/4, /*ver=*/1,
                  /*owner=*/1, /*bytes=*/0, /*seq=*/1);
  const std::string json = chrome_trace(trace).dump();
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"s\""), 2u) << json;
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"f\""), 2u) << json;
  // Distinct flow ids, each appearing exactly twice (its s and its f).
  EXPECT_EQ(count_occurrences(json, "\"id\": 1"), 2u) << json;
  EXPECT_EQ(count_occurrences(json, "\"id\": 2"), 2u) << json;
}

/// A republication of the same (object, reader) pair must not overwrite
/// the earlier publish's arrow: both consumptions resolve FIFO against
/// their own publication via the put-sequence stamp.
TEST(ChromeTraceFlows, RepublishKeepsEarlierArrowDistinct) {
  Trace trace(2, small_ring(64));
  trace.record_at(1, 10, EventKind::kPutPublish, 3, 1, 0, 64, /*seq=*/1);
  trace.record_at(1, 30, EventKind::kPutPublish, 3, 2, 0, 64, /*seq=*/2);
  trace.record_at(0, 20, EventKind::kConsume, 3, 1, 1, 0, /*seq=*/1);
  trace.record_at(0, 40, EventKind::kConsume, 3, 2, 1, 0, /*seq=*/2);
  const std::string json = chrome_trace(trace).dump();
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"s\""), 2u) << json;
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"f\""), 2u) << json;
  EXPECT_EQ(count_occurrences(json, "\"id\": 1"), 2u) << json;
  EXPECT_EQ(count_occurrences(json, "\"id\": 2"), 2u) << json;
}

/// Unstamped records (seq 0, e.g. simulator traces) fall back to the
/// (object, version, reader) plane and still pair up.
TEST(ChromeTraceFlows, VersionFallbackPairsUnstampedRecords) {
  Trace trace(2, small_ring(64));
  trace.record_at(1, 10, EventKind::kPutPublish, 3, 1, 0, 64, /*seq=*/0);
  trace.record_at(0, 20, EventKind::kConsume, 3, 1, 1, 0, /*seq=*/0);
  const std::string json = chrome_trace(trace).dump();
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"s\""), 1u) << json;
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"f\""), 1u) << json;
}

/// Run-id tagging: the executor stamps the trace before workers start and
/// the exporter uses it as the Chrome pid so merged multi-tenant
/// documents split per run.
TEST(ChromeTraceFlows, RunIdBecomesProcessGroup) {
  Trace trace(1, small_ring(64));
  trace.set_run_id(42);
  trace.record_at(0, 1, EventKind::kStateEnter, 0);
  trace.record_at(0, 5, EventKind::kStateEnter, 1);
  const std::string json = chrome_trace(trace).dump();
  EXPECT_NE(json.find("\"pid\": 42"), std::string::npos) << json;
  EXPECT_EQ(json.find("\"pid\": 0,"), std::string::npos) << json;
  EXPECT_NE(json.find("rapid run 42"), std::string::npos) << json;
}

TEST(ObsSim, SimulatorEmitsSameVocabularyInModeledTime) {
  const int procs = 4;
  CounterApp app(procs);
  const auto liveness = sched::analyze_liveness(app.graph, app.schedule);
  Trace trace(procs);
  const rt::RunReport report =
      rt::simulate(app.plan, app.config(liveness.min_mem()), &trace);
  ASSERT_TRUE(report.executable) << report.failure;

  std::int64_t task_begins = 0;
  for (int q = 0; q < procs; ++q) {
    std::set<int> states;
    for (const TraceEvent& e : trace.events(q)) {
      if (e.kind == EventKind::kStateEnter) states.insert(e.a);
      if (e.kind == EventKind::kTaskBegin) ++task_begins;
    }
    EXPECT_EQ(states.size(), static_cast<std::size_t>(ProtoState::kCount))
        << "proc " << q;
  }
  EXPECT_EQ(task_begins, report.tasks_executed);

  const OccupancyProfile occ = build_occupancy(trace);
  for (int q = 0; q < procs; ++q) {
    EXPECT_EQ(occ.high_water[static_cast<std::size_t>(q)],
              report.peak_bytes_per_proc[static_cast<std::size_t>(q)]);
  }
  ASSERT_TRUE(report.metrics);
  EXPECT_EQ(report.metrics->task_us.count(), report.tasks_executed);
}

}  // namespace
}  // namespace rapid::obs
