// Co-resident executor isolation — the TSan target behind the service
// layer. Several ThreadedExecutor instances share one immutable RunPlan and
// run simultaneously from different host threads; each must produce the
// exact sequential numerics and exactly its own counters. Any cross-run
// bleed — a shared mutable global, a counter incremented by a neighbor's
// worker, a data race on the plan — shows up as a numeric diff, a counter
// mismatch against the solo baseline, or a TSan report in the sanitizer
// lane.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "rapid/machine/params.hpp"
#include "rapid/num/shm_workloads.hpp"
#include "rapid/rt/threaded_executor.hpp"

namespace rapid::rt {
namespace {

RunConfig config_for(const num::ShmWorkload& wl) {
  RunConfig config;
  config.params = machine::MachineParams::cray_t3d(wl.plan.num_procs);
  config.active_memory = true;
  config.capacity_per_proc = wl.tot_mem;
  return config;
}

struct RunOutcome {
  RunReport report;
  double residual = -1.0;
  std::string error;
};

/// Runs the shared workload once on this thread, tagging logs with run_id.
RunOutcome run_once(const num::ShmWorkload& wl, const RunConfig& config,
                    std::int64_t run_id) {
  RunOutcome out;
  try {
    ThreadedOptions options;
    options.run_id = run_id;
    ThreadedExecutor exec(wl.plan, config, wl.make_init(), wl.make_body(),
                          options);
    out.report = exec.run();
    if (out.report.executable) out.residual = wl.residual(exec);
  } catch (const Error& e) {
    out.error = e.what();
  }
  return out;
}

void run_concurrent(const std::string& spec, int concurrency) {
  const auto wl = num::build_shm_workload(spec);
  const RunConfig config = config_for(*wl);

  // Solo baseline: the counters every concurrent run must reproduce.
  const RunOutcome solo = run_once(*wl, config, -1);
  ASSERT_TRUE(solo.error.empty()) << solo.error;
  ASSERT_TRUE(solo.report.executable) << solo.report.failure;

  std::vector<RunOutcome> outcomes(static_cast<std::size_t>(concurrency));
  {
    std::vector<std::thread> threads;
    for (int i = 0; i < concurrency; ++i) {
      threads.emplace_back([&wl, &config, &outcomes, i] {
        outcomes[static_cast<std::size_t>(i)] = run_once(*wl, config, i);
      });
    }
    for (std::thread& t : threads) t.join();
  }

  for (int i = 0; i < concurrency; ++i) {
    const RunOutcome& out = outcomes[static_cast<std::size_t>(i)];
    ASSERT_TRUE(out.error.empty()) << spec << " run " << i << ": "
                                   << out.error;
    ASSERT_TRUE(out.report.executable)
        << spec << " run " << i << ": " << out.report.failure;
    EXPECT_EQ(out.report.run_id, i);
    EXPECT_EQ(out.report.failure_kind, FailureKind::kNone)
        << spec << " run " << i;
    // Exact numerics: bit-exact zero for the integer grid, the usual
    // factorization threshold otherwise.
    if (spec.rfind("grid", 0) == 0) {
      EXPECT_EQ(out.residual, 0.0) << spec << " run " << i;
    } else {
      EXPECT_LT(out.residual, 1e-10) << spec << " run " << i;
    }
    // No cross-run counter bleed: every concurrent run's protocol counters
    // equal the solo run's, to the message.
    EXPECT_EQ(out.report.tasks_executed, solo.report.tasks_executed)
        << spec << " run " << i;
    EXPECT_EQ(out.report.content_messages, solo.report.content_messages)
        << spec << " run " << i;
    EXPECT_EQ(out.report.content_bytes, solo.report.content_bytes)
        << spec << " run " << i;
    EXPECT_EQ(out.report.flag_messages, solo.report.flag_messages)
        << spec << " run " << i;
    EXPECT_EQ(out.report.maps_per_proc, solo.report.maps_per_proc)
        << spec << " run " << i;
  }
}

TEST(MultiRun, FourConcurrentGridRunsStayExact) {
  run_concurrent("grid:rows=8,cols=8,procs=4", 4);
}

TEST(MultiRun, SixConcurrentCholeskyRunsShareOnePlan) {
  run_concurrent("cholesky:grid=8,block=4,procs=4", 6);
}

TEST(MultiRun, MixedWorkloadsSideBySide) {
  // Two different plans in flight at once from one host process — the
  // service's steady state, without the service in the way.
  std::thread a([] { run_concurrent("grid:rows=6,cols=10,procs=4", 2); });
  std::thread b([] { run_concurrent("lu:grid=8,block=4,procs=4", 2); });
  a.join();
  b.join();
}

}  // namespace
}  // namespace rapid::rt
