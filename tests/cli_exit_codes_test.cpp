// The exit-code contract (support/exit_codes.hpp), enforced on the real
// binaries: 0 = ran and the checked thing is good, 1 = ran and found
// findings (bad trace, failed guard, rejected/failed runs), 2 = the tool
// itself could not run (bad flags, unreadable input). Scripts and CI lanes
// branch on this distinction, so it gets a test that spawns the actual
// executables rather than trusting each main()'s bookkeeping.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "rapid/support/exit_codes.hpp"
#include "rapid/support/str.hpp"

namespace rapid {
namespace {

/// Build-tree root (the directory holding tests/, src/, bench/), resolved
/// from this test binary's own path.
std::string build_root() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return {};
  buf[n] = '\0';
  std::string dir(buf);
  const std::size_t slash = dir.rfind('/');
  if (slash == std::string::npos) return {};
  dir.resize(slash);
  return dir + "/..";
}

std::string binary(const std::string& rel) {
  const std::string path = build_root() + "/" + rel;
  return ::access(path.c_str(), X_OK) == 0 ? path : std::string();
}

/// Runs the command with output discarded; returns the exit code, or -1 if
/// the process did not exit normally.
int run(const std::string& cmd) {
  const int status = std::system((cmd + " >/dev/null 2>&1").c_str());
  if (status == -1 || !WIFEXITED(status)) return -1;
  return WEXITSTATUS(status);
}

const std::vector<std::string> kAllClis = {
    "src/rapid/verify/rapid_check", "src/rapid/verify/rapid_verify",
    "src/rapid/obs/rapid_trace",    "src/rapid/obs/rapid_top",
    "src/rapid/svc/rapid_serve",    "bench/bench_executor",
    "bench/bench_service",
};

TEST(CliExitCodes, HelpExitsOkOnEveryBinary) {
  int tested = 0;
  for (const std::string& rel : kAllClis) {
    const std::string bin = binary(rel);
    if (bin.empty()) continue;  // not built in this tree
    EXPECT_EQ(run(bin + " --help"), kExitOk) << rel;
    ++tested;
  }
  ASSERT_GT(tested, 0) << "no CLI binaries found under " << build_root();
}

TEST(CliExitCodes, UnknownFlagIsInfraErrorOnEveryBinary) {
  int tested = 0;
  for (const std::string& rel : kAllClis) {
    const std::string bin = binary(rel);
    if (bin.empty()) continue;
    // A flag typo means the tool never ran: infrastructure error, not
    // findings — a CI lane must not mistake it for a clean check.
    EXPECT_EQ(run(bin + " --no_such_flag=1"), kExitInfraError) << rel;
    ++tested;
  }
  ASSERT_GT(tested, 0) << "no CLI binaries found under " << build_root();
}

TEST(CliExitCodes, ServeDistinguishesFindingsFromInfraError) {
  const std::string bin = binary("src/rapid/svc/rapid_serve");
  if (bin.empty()) GTEST_SKIP() << "rapid_serve not built";
  const std::string dir = ::testing::TempDir();

  // All runs complete -> ok.
  const std::string good = dir + "/serve_good.runs";
  std::ofstream(good) << "grid:rows=6,cols=6,procs=4\n";
  EXPECT_EQ(run(bin + " --runs=" + good), kExitOk);

  // A run the service rejects is a finding about the workload, not a tool
  // failure: the report is still produced, the exit code says "look".
  const std::string bad = dir + "/serve_bad.runs";
  std::ofstream(bad) << "grid:rows=6,cols=6,procs=4\n"
                     << "nosuch:app=1\n";
  EXPECT_EQ(run(bin + " --runs=" + bad), kExitFindings);

  // An unreadable runs file means the service never saw the work.
  EXPECT_EQ(run(bin + " --runs=" + dir + "/serve_missing.runs"),
            kExitInfraError);
}

TEST(CliExitCodes, ServeMetricsWriteFailureDegradesNotDies) {
  const std::string bin = binary("src/rapid/svc/rapid_serve");
  if (bin.empty()) GTEST_SKIP() << "rapid_serve not built";
  const std::string dir = ::testing::TempDir();
  const std::string good = dir + "/serve_metrics_good.runs";
  std::ofstream(good) << "grid:rows=6,cols=6,procs=4\n";

  // An unwritable metrics path disables the sampler with a warning; the
  // service itself still runs every workload and exits by the normal
  // contract — telemetry loss must never take the service down.
  EXPECT_EQ(run(bin + " --runs=" + good +
                " --metrics-file=/nonexistent_rapid_dir/metrics.prom"),
            kExitOk);

  // And a writable one produces the snapshot pair alongside the same exit.
  const std::string prom = dir + "/serve_metrics.prom";
  EXPECT_EQ(run(bin + " --runs=" + good + " --metrics-file=" + prom),
            kExitOk);
  EXPECT_TRUE(std::ifstream(prom).good());
  EXPECT_TRUE(std::ifstream(prom + ".json").good());
}

TEST(CliExitCodes, TopDistinguishesFindingsFromInfraError) {
  const std::string top = binary("src/rapid/obs/rapid_top");
  const std::string serve = binary("src/rapid/svc/rapid_serve");
  if (top.empty()) GTEST_SKIP() << "rapid_top not built";
  const std::string dir = ::testing::TempDir();

  // Missing --file / unreadable snapshot: the tool never rendered.
  EXPECT_EQ(run(top), kExitInfraError);
  EXPECT_EQ(run(top + " --file=" + dir + "/top_missing.prom --frames=1"),
            kExitInfraError);

  // A file that is not exposition text is a finding about the snapshot.
  const std::string bad = dir + "/top_bad.prom";
  std::ofstream(bad) << "this is { not prometheus\n";
  EXPECT_EQ(run(top + " --file=" + bad + " --frames=1"), kExitFindings);

  // A real snapshot from rapid_serve renders clean.
  if (serve.empty()) return;
  const std::string runs = dir + "/top_runs.runs";
  std::ofstream(runs) << "grid:rows=6,cols=6,procs=4\n";
  const std::string prom = dir + "/top_live.prom";
  ASSERT_EQ(run(serve + " --runs=" + runs + " --metrics-file=" + prom),
            kExitOk);
  EXPECT_EQ(run(top + " --file=" + prom + " --frames=1"), kExitOk);
}

}  // namespace
}  // namespace rapid
