#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "rapid/sparse/generators.hpp"
#include "rapid/sparse/matrix_market.hpp"
#include "rapid/support/check.hpp"
#include "rapid/support/rng.hpp"

namespace rapid::sparse {
namespace {

TEST(MatrixMarket, ReadsGeneralRealCoordinate) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "3 3 4\n"
      "1 1 2.0\n"
      "3 1 -1.5\n"
      "2 2 4.0\n"
      "1 3 0.25\n");
  const CscMatrix a = read_matrix_market(in);
  EXPECT_NO_THROW(a.validate());
  EXPECT_EQ(a.n_rows(), 3);
  EXPECT_EQ(a.nnz(), 4);
  EXPECT_DOUBLE_EQ(a.at(2, 0), -1.5);
  EXPECT_DOUBLE_EQ(a.at(0, 2), 0.25);
}

TEST(MatrixMarket, ExpandsSymmetric) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 3\n"
      "1 1 2.0\n"
      "2 1 1.0\n"
      "3 3 5.0\n");
  const CscMatrix a = read_matrix_market(in);
  EXPECT_EQ(a.nnz(), 4);  // (2,1) mirrored to (1,2)
  EXPECT_DOUBLE_EQ(a.at(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(a.at(0, 1), 1.0);
}

TEST(MatrixMarket, PatternFieldGetsUnitValues) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 2\n"
      "2 1\n");
  const CscMatrix a = read_matrix_market(in);
  EXPECT_DOUBLE_EQ(a.at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), 1.0);
}

TEST(MatrixMarket, CaseInsensitiveHeader) {
  std::istringstream in(
      "%%matrixmarket MATRIX Coordinate Real General\n"
      "1 1 1\n"
      "1 1 3.0\n");
  EXPECT_NO_THROW(read_matrix_market(in));
}

TEST(MatrixMarket, RejectsMalformedInputsWithLineNumbers) {
  {
    std::istringstream in("not a banner\n");
    EXPECT_THROW(read_matrix_market(in), Error);
  }
  {
    std::istringstream in(
        "%%MatrixMarket matrix array real general\n2 2 4\n");
    EXPECT_THROW(read_matrix_market(in), Error);
  }
  {
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 1\n"
        "3 1 1.0\n");  // out of range
    try {
      read_matrix_market(in);
      FAIL() << "expected throw";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
    }
  }
  {
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 3\n"
        "1 1 1.0\n");  // truncated
    EXPECT_THROW(read_matrix_market(in), Error);
  }
}

TEST(MatrixMarket, RejectsDimensionOverflowAndBadSizes) {
  {
    // 2^33 rows: must fail with an explicit overflow message, not a
    // garbled parse of a wrapped 32-bit value.
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "8589934592 3 1\n"
        "1 1 1.0\n");
    try {
      read_matrix_market(in);
      FAIL() << "expected throw";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("overflow"), std::string::npos);
    }
  }
  {
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "-2 3 1\n"
        "1 1 1.0\n");
    try {
      read_matrix_market(in);
      FAIL() << "expected throw";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("non-positive"), std::string::npos);
    }
  }
  {
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 -1\n");
    try {
      read_matrix_market(in);
      FAIL() << "expected throw";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("negative nnz"), std::string::npos);
    }
  }
  {
    // Symmetric requires square.
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real symmetric\n"
        "2 3 1\n"
        "1 1 1.0\n");
    try {
      read_matrix_market(in);
      FAIL() << "expected throw";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("square"), std::string::npos);
    }
  }
  {
    // Header only, no size line at all.
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "% nothing but comments\n");
    try {
      read_matrix_market(in);
      FAIL() << "expected throw";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos);
    }
  }
}

TEST(MatrixMarket, TruncatedBodyNamesLineAndCounts) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "3 3 5\n"
      "1 1 1.0\n"
      "2 2 2.0\n");
  try {
    read_matrix_market(in);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("truncated"), std::string::npos);
    EXPECT_NE(what.find("5"), std::string::npos);
    EXPECT_NE(what.find("2"), std::string::npos);
  }
}

TEST(MatrixMarket, MissingValueOnRealEntryThrows) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "1 1\n");
  try {
    read_matrix_market(in);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(MatrixMarket, FileErrorsCarryThePath) {
  const std::string path = testing::TempDir() + "/rapid_mm_bad.mtx";
  {
    std::ofstream out(path);
    out << "%%MatrixMarket matrix coordinate real general\n"
        << "2 2 3\n"
        << "1 1 1.0\n";  // truncated: promised 3, wrote 1
  }
  try {
    read_matrix_market_file(path);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos);
    EXPECT_NE(what.find("truncated"), std::string::npos);
  }
}

TEST(MatrixMarket, RoundTripPreservesMatrix) {
  Rng rng(99);
  const CscMatrix a = random_banded(40, 5, 0.7, rng);
  std::stringstream buffer;
  write_matrix_market(buffer, a);
  const CscMatrix b = read_matrix_market(buffer);
  ASSERT_EQ(b.pattern, a.pattern);
  for (std::size_t k = 0; k < a.values.size(); ++k) {
    EXPECT_DOUBLE_EQ(b.values[k], a.values[k]);
  }
}

TEST(MatrixMarket, FileRoundTrip) {
  Rng rng(7);
  const CscMatrix a = random_banded(12, 3, 0.9, rng);
  const std::string path = testing::TempDir() + "/rapid_mm_test.mtx";
  write_matrix_market_file(path, a);
  const CscMatrix b = read_matrix_market_file(path);
  EXPECT_EQ(b.pattern, a.pattern);
}

TEST(MatrixMarket, MissingFileThrows) {
  EXPECT_THROW(read_matrix_market_file("/nonexistent/path.mtx"), Error);
}

}  // namespace
}  // namespace rapid::sparse
