// Direct unit tests of the MAP procedure (paper §3.3): free-dead /
// allocate-forward / assemble-packages semantics, the allocated-once rule,
// rollback on partial allocation, and the non-executable diagnosis.
#include <gtest/gtest.h>

#include <algorithm>

#include "rapid/rt/map_engine.hpp"
#include "rapid/sched/mapping.hpp"
#include "rapid/sched/ordering.hpp"
#include "rapid/support/check.hpp"

namespace rapid::rt {
namespace {

using graph::TaskGraph;

/// P0 produces objects a, b, c (8 bytes each); P1 consumes them one task
/// each, in order, so P1's volatile lifetimes are disjoint singletons.
struct PipelineFixture {
  TaskGraph g;
  graph::DataId a, b, c, sink;
  RunPlan plan;

  PipelineFixture() {
    a = g.add_data("a", 8, 0);
    b = g.add_data("b", 8, 0);
    c = g.add_data("c", 8, 0);
    sink = g.add_data("sink", 8, 1);
    const auto wa = g.add_task("Wa", {}, {a}, 1.0);
    const auto wb = g.add_task("Wb", {}, {b}, 1.0);
    const auto wc = g.add_task("Wc", {}, {c}, 1.0);
    const auto ra = g.add_task("Ra", {a}, {sink}, 1.0);
    const auto rb = g.add_task("Rb", {b}, {sink}, 1.0);
    const auto rc = g.add_task("Rc", {c}, {sink}, 1.0);
    g.finalize();
    sched::Schedule s;
    s.num_procs = 2;
    s.order = {{wa, wb, wc}, {ra, rb, rc}};
    s.rebuild_index(g.num_tasks());
    plan = build_run_plan(g, s);
  }
};

TEST(MapEngine, PermanentOverflowThrowsAtConstruction) {
  PipelineFixture f;
  // P0 owns 24 bytes of permanents.
  EXPECT_THROW(ProcMemory(f.plan, 0, 23), NonExecutableError);
  EXPECT_NO_THROW(ProcMemory(f.plan, 0, 24));
}

TEST(MapEngine, FirstMapAllocatesForwardUntilCapacity) {
  PipelineFixture f;
  // P1: 8 bytes permanent (sink) + capacity for exactly one volatile.
  ProcMemory memory(f.plan, 1, 16);
  ASSERT_TRUE(memory.needs_map(0));
  const MapResult map = memory.perform_map(0);
  EXPECT_EQ(map.allocated, std::vector<graph::DataId>{f.a});
  EXPECT_TRUE(map.freed.empty());
  EXPECT_EQ(map.alloc_upto, 1);  // only task 0's inputs fit
  ASSERT_EQ(map.packages.size(), 1u);
  EXPECT_EQ(map.packages[0].first, 0);  // owner of a
  EXPECT_EQ(map.packages[0].second.reader, 1);
  ASSERT_EQ(map.packages[0].second.entries.size(), 1u);
  EXPECT_EQ(map.packages[0].second.entries[0].first, f.a);
}

TEST(MapEngine, SubsequentMapFreesDeadAndContinues) {
  PipelineFixture f;
  ProcMemory memory(f.plan, 1, 16);
  memory.perform_map(0);
  ASSERT_TRUE(memory.needs_map(1));
  const MapResult map = memory.perform_map(1);
  EXPECT_EQ(map.freed, std::vector<graph::DataId>{f.a});  // dead after pos 0
  EXPECT_EQ(map.allocated, std::vector<graph::DataId>{f.b});
  EXPECT_EQ(map.alloc_upto, 2);
  EXPECT_FALSE(memory.is_allocated(f.a));
  EXPECT_TRUE(memory.is_allocated(f.b));
}

TEST(MapEngine, AmpleCapacityNeedsOneMap) {
  PipelineFixture f;
  ProcMemory memory(f.plan, 1, 1 << 10);
  const MapResult map = memory.perform_map(0);
  EXPECT_EQ(map.alloc_upto, 3);
  EXPECT_EQ(map.allocated.size(), 3u);
  EXPECT_FALSE(memory.needs_map(1));
  EXPECT_FALSE(memory.needs_map(2));
}

TEST(MapEngine, NonExecutableWhenCurrentTaskCannotFit) {
  PipelineFixture f;
  // 8 bytes permanent + 7 bytes leftover: no volatile ever fits.
  ProcMemory memory(f.plan, 1, 15);
  EXPECT_THROW(memory.perform_map(0), NonExecutableError);
}

TEST(MapEngine, PreallocateAllMatchesBaselineSemantics) {
  PipelineFixture f;
  ProcMemory memory(f.plan, 1, 8 + 24);
  EXPECT_NO_THROW(memory.preallocate_all());
  EXPECT_FALSE(memory.needs_map(0));
  EXPECT_TRUE(memory.is_allocated(f.a));
  EXPECT_TRUE(memory.is_allocated(f.c));
  ProcMemory tight(f.plan, 1, 8 + 23);
  EXPECT_THROW(tight.preallocate_all(), NonExecutableError);
}

TEST(MapEngine, OffsetsAreStableWhileLive) {
  PipelineFixture f;
  ProcMemory memory(f.plan, 1, 1 << 10);
  memory.perform_map(0);
  const mem::Offset off_b = memory.offset_of(f.b);
  // b stays at its address across unrelated activity (allocated once).
  EXPECT_EQ(memory.offset_of(f.b), off_b);
  EXPECT_THROW(memory.offset_of(f.sink + 100), Error);
}

TEST(MapEngine, PeakBytesTracksHighWater) {
  PipelineFixture f;
  ProcMemory tight(f.plan, 1, 16);
  tight.perform_map(0);
  tight.perform_map(1);
  tight.perform_map(2);
  EXPECT_EQ(tight.peak_bytes(), 16);  // 8 perm + 1 volatile at a time
  ProcMemory ample(f.plan, 1, 1 << 10);
  ample.perform_map(0);
  EXPECT_EQ(ample.peak_bytes(), 8 + 24);
}

/// Rollback: a task needing two volatiles where only one fits must leave
/// the arena unchanged for that task.
TEST(MapEngine, PartialAllocationRollsBack) {
  TaskGraph g;
  const auto x = g.add_data("x", 8, 0);
  const auto y = g.add_data("y", 8, 0);
  const auto out = g.add_data("out", 8, 1);
  const auto wx = g.add_task("Wx", {}, {x}, 1.0);
  const auto wy = g.add_task("Wy", {}, {y}, 1.0);
  const auto r = g.add_task("R", {x, y}, {out}, 1.0);
  g.finalize();
  sched::Schedule s;
  s.num_procs = 2;
  s.order = {{wx, wy}, {r}};
  s.rebuild_index(g.num_tasks());
  const RunPlan plan = build_run_plan(g, s);
  // P1: 8 permanent + 8 free — R needs 16 of volatile space.
  ProcMemory memory(plan, 1, 16);
  try {
    memory.perform_map(0);
    FAIL() << "expected NonExecutableError";
  } catch (const NonExecutableError&) {
    // Neither x nor y may remain allocated after the failed attempt.
    EXPECT_FALSE(memory.is_allocated(x));
    EXPECT_FALSE(memory.is_allocated(y));
    EXPECT_EQ(memory.arena().in_use(), 8);  // just the permanent
  }
}

TEST(MapEngine, FreeHookFiresForEveryFreedRegionBeforeReallocation) {
  PipelineFixture f;
  ProcMemory memory(f.plan, 1, 16);
  struct FreeEvent {
    graph::DataId object;
    mem::Offset offset;
    std::int64_t size;
    bool region_was_free;  // at hook time — i.e. before any reallocation
  };
  std::vector<FreeEvent> events;
  memory.set_free_hook([&](graph::DataId d, mem::Offset off,
                           std::int64_t size) {
    events.push_back({d, off, size, !memory.is_allocated(d)});
  });
  memory.perform_map(0);  // allocates a
  EXPECT_TRUE(events.empty());
  const mem::Offset off_a = memory.offset_of(f.a);
  memory.perform_map(1);  // frees a, allocates b
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].object, f.a);
  EXPECT_EQ(events[0].offset, off_a);
  EXPECT_EQ(events[0].size, 8);
  EXPECT_TRUE(events[0].region_was_free);
  memory.perform_map(2);  // frees b, allocates c
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].object, f.b);
}

}  // namespace
}  // namespace rapid::rt
