// Parameterized sweeps over the factorization apps: block size × processor
// count × ordering, each instance running the full pipeline (graph →
// schedule → plan → simulator), with threaded numeric verification on the
// diagonal of the sweep. These catch block-boundary and distribution edge
// cases (ragged last blocks, single-processor degeneration, more
// processors than blocks).
#include <gtest/gtest.h>

#include <tuple>

#include "rapid/num/cholesky_app.hpp"
#include "rapid/num/lu_app.hpp"
#include "rapid/num/reference.hpp"
#include "rapid/rt/sim_executor.hpp"
#include "rapid/sched/liveness.hpp"
#include "rapid/sched/mapping.hpp"
#include "rapid/sched/ordering.hpp"
#include "rapid/sparse/generators.hpp"
#include "rapid/sparse/ordering.hpp"
#include "rapid/support/rng.hpp"

namespace rapid::num {
namespace {

sparse::CscMatrix spd_matrix() {
  // 11x11 grid: n = 121, deliberately not divisible by most block sizes.
  sparse::CscMatrix a = sparse::grid_laplacian_2d(11, 11);
  return a.permuted_symmetric(sparse::nested_dissection_2d(11, 11));
}

sparse::CscMatrix unsym_matrix() {
  Rng rng(31);
  sparse::CscMatrix a = sparse::convection_diffusion_2d(9, 10, 0.1, rng);
  return a.permuted_symmetric(sparse::nested_dissection_2d(9, 10));
}

class CholeskySweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {
 protected:
  Index block() const { return std::get<0>(GetParam()); }
  int procs() const { return std::get<1>(GetParam()); }
  int ordering() const { return std::get<2>(GetParam()); }

  sched::Schedule make_schedule(const graph::TaskGraph& g,
                                const std::vector<graph::ProcId>& assignment,
                                const machine::MachineParams& params) const {
    switch (ordering()) {
      case 0:
        return sched::schedule_rcp(g, assignment, procs(), params);
      case 1:
        return sched::schedule_mpo(g, assignment, procs(), params);
      default:
        return sched::schedule_dts(g, assignment, procs(), params);
    }
  }
};

TEST_P(CholeskySweep, PipelineExecutesAndBoundsHold) {
  auto app = CholeskyApp::build(spd_matrix(), block(), procs());
  const auto& g = app.graph();
  const auto assignment = sched::owner_compute_tasks(g, procs());
  const auto params = machine::MachineParams::cray_t3d(procs());
  const auto schedule = make_schedule(g, assignment, params);
  ASSERT_NO_THROW(schedule.validate(g));
  const auto liveness = sched::analyze_liveness(g, schedule);
  const rt::RunPlan plan = rt::build_run_plan(g, schedule);
  rt::RunConfig config;
  config.params = params;
  // Mixed block sizes at the matrix edge can cost a small fragmentation
  // margin; an eighth above MIN_MEM must always execute.
  config.capacity_per_proc =
      liveness.min_mem() + std::max<std::int64_t>(8, liveness.min_mem() / 8);
  const rt::RunReport report = rt::simulate(plan, config);
  ASSERT_TRUE(report.executable) << report.failure;
  EXPECT_EQ(report.tasks_executed, g.num_tasks());
  // Strictly below MIN_MEM must never execute (Def. 6, one-sided).
  config.capacity_per_proc = liveness.min_mem() - 8;
  EXPECT_FALSE(rt::simulate(plan, config).executable);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CholeskySweep,
                         ::testing::Combine(::testing::Values(3, 7, 16, 40),
                                            ::testing::Values(1, 2, 4, 8),
                                            ::testing::Values(0, 1, 2)));

class CholeskyNumericSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CholeskyNumericSweep, ThreadedFactorMatchesReference) {
  const auto [block, procs] = GetParam();
  auto app = CholeskyApp::build(spd_matrix(), block, procs);
  const auto assignment = sched::owner_compute_tasks(app.graph(), procs);
  const auto params = machine::MachineParams::cray_t3d(procs);
  const auto schedule =
      sched::schedule_mpo(app.graph(), assignment, procs, params);
  const rt::RunPlan plan = rt::build_run_plan(app.graph(), schedule);
  rt::RunConfig config;
  config.capacity_per_proc = 1 << 24;
  rt::ThreadedExecutor exec(plan, config, app.make_init(), app.make_body());
  ASSERT_TRUE(exec.run().executable);
  EXPECT_LT(cholesky_residual(app.matrix(), app.extract_l_dense(exec)),
            1e-10);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CholeskyNumericSweep,
                         ::testing::Combine(::testing::Values(3, 7, 16),
                                            ::testing::Values(1, 3, 4)));

class LuSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LuSweep, PipelineExecutesAndNumericsHold) {
  const auto [block, procs] = GetParam();
  auto app = LuApp::build(unsym_matrix(), block, procs);
  const auto& g = app.graph();
  const auto assignment = sched::owner_compute_tasks(g, procs);
  const auto params = machine::MachineParams::cray_t3d(procs);
  const auto schedule = sched::schedule_mpo(g, assignment, procs, params);
  ASSERT_NO_THROW(schedule.validate(g));
  const auto liveness = sched::analyze_liveness(g, schedule);
  rt::RunConfig config;
  config.capacity_per_proc =
      liveness.min_mem() + std::max<std::int64_t>(8, liveness.min_mem() / 8);
  const rt::RunPlan plan = rt::build_run_plan(g, schedule);
  rt::ThreadedExecutor exec(plan, config, app.make_init(), app.make_body());
  const rt::RunReport report = exec.run();
  ASSERT_TRUE(report.executable) << report.failure;
  const auto extracted = app.extract(exec);
  EXPECT_LT(lu_residual(app.matrix(), extracted.lu, extracted.piv), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Sweep, LuSweep,
                         ::testing::Combine(::testing::Values(4, 9, 25),
                                            ::testing::Values(1, 2, 4, 6)));

}  // namespace
}  // namespace rapid::num
