#include <gtest/gtest.h>

#include <algorithm>

#include "rapid/graph/dot.hpp"
#include "rapid/graph/task_graph.hpp"
#include "rapid/support/check.hpp"

namespace rapid::graph {
namespace {

/// Finds the edge between two named tasks, or nullptr.
const Edge* find_edge(const TaskGraph& g, TaskId src, TaskId dst) {
  for (const Edge& e : g.edges()) {
    if (e.src == src && e.dst == dst) return &e;
  }
  return nullptr;
}

TEST(TaskGraph, TrueDependenceFromWriteToRead) {
  TaskGraph g;
  const DataId d = g.add_data("d", 8);
  const TaskId w = g.add_task("W", {}, {d}, 1.0);
  const TaskId r = g.add_task("R", {d}, {}, 1.0);
  g.finalize();
  const Edge* e = find_edge(g, w, r);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->kind, DepKind::kTrue);
  EXPECT_FALSE(e->redundant);
}

TEST(TaskGraph, AntiDependenceFromReadToWrite) {
  TaskGraph g;
  const DataId d = g.add_data("d", 8);
  g.add_task("W0", {}, {d}, 1.0);
  const TaskId r = g.add_task("R", {d}, {}, 1.0);
  const TaskId w = g.add_task("W1", {}, {d}, 1.0);
  g.finalize();
  const Edge* e = find_edge(g, r, w);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->kind, DepKind::kAnti);
}

TEST(TaskGraph, OutputDependenceBetweenWriters) {
  TaskGraph g;
  const DataId d = g.add_data("d", 8);
  const TaskId w0 = g.add_task("W0", {}, {d}, 1.0);
  const TaskId w1 = g.add_task("W1", {}, {d}, 1.0);
  g.finalize();
  const Edge* e = find_edge(g, w0, w1);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->kind, DepKind::kOutput);
}

TEST(TaskGraph, ReadModifyWriteChainsAsTrue) {
  TaskGraph g;
  const DataId d = g.add_data("d", 8);
  const TaskId a = g.add_task("A", {}, {d}, 1.0);
  const TaskId b = g.add_task("B", {d}, {d}, 1.0);
  const TaskId c = g.add_task("C", {d}, {d}, 1.0);
  g.finalize();
  const Edge* ab = find_edge(g, a, b);
  const Edge* bc = find_edge(g, b, c);
  ASSERT_NE(ab, nullptr);
  ASSERT_NE(bc, nullptr);
  EXPECT_EQ(ab->kind, DepKind::kTrue);
  EXPECT_EQ(bc->kind, DepKind::kTrue);
}

TEST(TaskGraph, RedundantAntiEdgeIsMarked) {
  // W0 -> R (true), R -> M (true via object e), M writes d: the anti edge
  // R -> M for d is subsumed by the true path R -> M.
  TaskGraph g;
  const DataId d = g.add_data("d", 8);
  const DataId e = g.add_data("e", 8);
  g.add_task("W0", {}, {d}, 1.0);
  const TaskId r = g.add_task("R", {d}, {e}, 1.0);
  const TaskId m = g.add_task("M", {e}, {d}, 1.0);
  g.finalize();
  // There are two edges R->M: true on e, anti on d. Anti must be redundant.
  bool saw_true = false, saw_anti = false;
  for (const Edge& edge : g.edges()) {
    if (edge.src != r || edge.dst != m) continue;
    if (edge.kind == DepKind::kTrue) {
      saw_true = true;
      EXPECT_FALSE(edge.redundant);
    } else {
      saw_anti = true;
      EXPECT_TRUE(edge.redundant);
    }
  }
  EXPECT_TRUE(saw_true);
  EXPECT_TRUE(saw_anti);
}

TEST(TaskGraph, NonRedundantAntiEdgeIsKept) {
  TaskGraph g;
  const DataId d = g.add_data("d", 8);
  g.add_task("W0", {}, {d}, 1.0);
  const TaskId r = g.add_task("R", {d}, {}, 1.0);
  const TaskId w1 = g.add_task("W1", {}, {d}, 1.0);
  g.finalize();
  const Edge* e = find_edge(g, r, w1);
  ASSERT_NE(e, nullptr);
  EXPECT_FALSE(e->redundant);
  // It must appear in the transformed adjacency.
  bool in_adjacency = false;
  for (std::int32_t ei : g.out_edges(r)) {
    if (g.edges()[ei].dst == w1) in_adjacency = true;
  }
  EXPECT_TRUE(in_adjacency);
}

TEST(TaskGraph, CommutingTasksAreUnordered) {
  TaskGraph g;
  const DataId d = g.add_data("d", 8);
  const DataId x = g.add_data("x", 8);
  const DataId y = g.add_data("y", 8);
  const TaskId w = g.add_task("W", {}, {d}, 1.0);
  const TaskId u1 = g.add_task("U1", {d, x}, {d}, 1.0, /*commute_group=*/7);
  const TaskId u2 = g.add_task("U2", {d, y}, {d}, 1.0, /*commute_group=*/7);
  const TaskId f = g.add_task("F", {d}, {d}, 1.0);
  g.finalize();
  EXPECT_EQ(find_edge(g, u1, u2), nullptr);  // unordered
  EXPECT_EQ(find_edge(g, u2, u1), nullptr);
  // Both ordered after W and before F.
  ASSERT_NE(find_edge(g, w, u1), nullptr);
  ASSERT_NE(find_edge(g, w, u2), nullptr);
  ASSERT_NE(find_edge(g, u1, f), nullptr);
  ASSERT_NE(find_edge(g, u2, f), nullptr);
}

TEST(TaskGraph, DifferentCommuteGroupsStayOrdered) {
  TaskGraph g;
  const DataId d = g.add_data("d", 8);
  const TaskId u1 = g.add_task("U1", {d}, {d}, 1.0, 1);
  const TaskId u2 = g.add_task("U2", {d}, {d}, 1.0, 2);
  g.finalize();
  ASSERT_NE(find_edge(g, u1, u2), nullptr);
}

TEST(TaskGraph, WritersAndReadersInProgramOrder) {
  TaskGraph g;
  const DataId d = g.add_data("d", 8);
  const TaskId w0 = g.add_task("W0", {}, {d}, 1.0);
  const TaskId r0 = g.add_task("R0", {d}, {}, 1.0);
  const TaskId w1 = g.add_task("W1", {d}, {d}, 1.0);
  g.finalize();
  const auto writers = g.writers(d);
  ASSERT_EQ(writers.size(), 2u);
  EXPECT_EQ(writers[0], w0);
  EXPECT_EQ(writers[1], w1);
  const auto readers = g.readers(d);
  ASSERT_EQ(readers.size(), 2u);
  EXPECT_EQ(readers[0], r0);
  EXPECT_EQ(readers[1], w1);  // RMW reads too
}

TEST(TaskGraph, TopologicalOrderRespectsEdges) {
  TaskGraph g = make_paper_figure2_graph();
  const auto order = g.topological_order();
  std::vector<std::int32_t> pos(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (const Edge& e : g.edges()) {
    if (e.redundant) continue;
    EXPECT_LT(pos[e.src], pos[e.dst]);
  }
}

TEST(TaskGraph, PaperFigure2Shape) {
  const TaskGraph g = make_paper_figure2_graph();
  EXPECT_EQ(g.num_tasks(), 20);
  EXPECT_EQ(g.num_data(), 11);
  EXPECT_EQ(g.sequential_space(), 11);
  // Cyclic mapping: d1 (index 0) on P0, d2 on P1, ...
  EXPECT_EQ(g.data(0).owner, 0);
  EXPECT_EQ(g.data(1).owner, 1);
}

TEST(TaskGraph, AccessorsValidateIds) {
  TaskGraph g;
  g.add_data("d", 8);
  EXPECT_THROW(g.data(5), Error);
  EXPECT_THROW(g.task(0), Error);
  EXPECT_THROW(g.add_task("T", {3}, {}, 1.0), Error);
}

TEST(TaskGraph, TaskMustAccessSomething) {
  TaskGraph g;
  EXPECT_THROW(g.add_task("T", {}, {}, 1.0), Error);
}

TEST(TaskGraph, FinalizeIsRequiredAndOnce) {
  TaskGraph g;
  const DataId d = g.add_data("d", 8);
  g.add_task("T", {}, {d}, 1.0);
  EXPECT_THROW(g.topological_order(), Error);
  g.finalize();
  EXPECT_THROW(g.finalize(), Error);
  EXPECT_THROW(g.add_data("x", 1), Error);
}

TEST(TaskGraph, DuplicateAccessesDeduplicated) {
  TaskGraph g;
  const DataId d = g.add_data("d", 8);
  const TaskId t = g.add_task("T", {d, d}, {d, d}, 1.0);
  EXPECT_EQ(g.task(t).reads.size(), 1u);
  EXPECT_EQ(g.task(t).writes.size(), 1u);
  EXPECT_EQ(g.task(t).accesses().size(), 1u);
}

TEST(Dot, RendersTasksClustersAndEdgeStyles) {
  TaskGraph g = make_paper_figure2_graph();
  DotOptions options;
  options.proc_of_task.assign(static_cast<std::size_t>(g.num_tasks()), 0);
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    options.proc_of_task[t] = g.data(g.task(t).writes.front()).owner;
  }
  const std::string dot = to_dot(g, options);
  EXPECT_NE(dot.find("digraph task_graph"), std::string::npos);
  EXPECT_NE(dot.find("cluster_p0"), std::string::npos);
  EXPECT_NE(dot.find("cluster_p1"), std::string::npos);
  EXPECT_NE(dot.find("T[1,2]"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);  // sync edges
  EXPECT_EQ(dot.find("style=dotted"), std::string::npos);  // hidden subsumed
  // Balanced braces (parseable by dot).
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));
}

TEST(Dot, ShowRedundantIncludesSubsumedEdges) {
  TaskGraph g;
  const DataId d = g.add_data("d", 8);
  const DataId e = g.add_data("e", 8);
  g.add_task("W0", {}, {d}, 1.0);
  g.add_task("R", {d}, {e}, 1.0);
  g.add_task("M", {e}, {d}, 1.0);
  g.finalize();
  DotOptions options;
  options.show_redundant = true;
  const std::string dot = to_dot(g, options);
  EXPECT_NE(dot.find("style=dotted"), std::string::npos);
}

TEST(TaskGraph, TotalFlops) {
  TaskGraph g;
  const DataId d = g.add_data("d", 8);
  g.add_task("A", {}, {d}, 2.5);
  g.add_task("B", {d}, {d}, 1.5);
  g.finalize();
  EXPECT_DOUBLE_EQ(g.total_flops(), 4.0);
}

}  // namespace
}  // namespace rapid::graph
