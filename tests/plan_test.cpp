#include <gtest/gtest.h>

#include <algorithm>

#include "rapid/rt/plan.hpp"
#include "rapid/sched/mapping.hpp"
#include "rapid/sched/ordering.hpp"
#include "rapid/support/check.hpp"
#include "rapid/verify/testing.hpp"

namespace rapid::rt {
namespace {

using graph::TaskGraph;

struct Fixture {
  TaskGraph graph = graph::make_paper_figure2_graph();
  sched::Schedule schedule;
  Fixture() {
    const auto procs = sched::owner_compute_tasks(graph, 2);
    schedule = sched::schedule_rcp(graph, procs, 2,
                                   machine::MachineParams::cray_t3d(2));
  }
};

TEST(Plan, BuildsForPaperExample) {
  Fixture f;
  const RunPlan plan = build_run_plan(f.graph, f.schedule);
  EXPECT_EQ(plan.num_procs, 2);
  EXPECT_EQ(plan.objects.size(), 11u);
  EXPECT_EQ(plan.tasks.size(), 20u);
  EXPECT_PLAN_CLEAN(f.graph, f.schedule, plan);
}

TEST(Plan, EpochsFollowProgramOrderOfWriters) {
  Fixture f;
  const RunPlan plan = build_run_plan(f.graph, f.schedule);
  for (graph::DataId d = 0; d < f.graph.num_data(); ++d) {
    const auto writers = f.graph.writers(d);
    std::size_t total = 0;
    for (const auto& epoch : plan.objects[d].epochs) total += epoch.size();
    EXPECT_EQ(total, writers.size());
  }
}

TEST(Plan, CommutingWritersShareAnEpoch) {
  TaskGraph g;
  const auto d = g.add_data("d", 8, 0);
  const auto x = g.add_data("x", 8, 0);
  g.add_task("W", {}, {d}, 1.0);
  g.add_task("U1", {d}, {d}, 1.0, 5);
  g.add_task("U2", {d}, {d}, 1.0, 5);
  g.add_task("R", {d}, {x}, 1.0);
  g.finalize();
  sched::Schedule s;
  s.num_procs = 1;
  s.order = {{0, 1, 2, 3}};
  s.rebuild_index(4);
  const RunPlan plan = build_run_plan(g, s);
  ASSERT_EQ(plan.objects[d].epochs.size(), 2u);
  EXPECT_EQ(plan.objects[d].epochs[0].size(), 1u);
  EXPECT_EQ(plan.objects[d].epochs[1].size(), 2u);
  EXPECT_EQ(plan.version_of_writer(d, 1), 2);
  EXPECT_EQ(plan.version_of_writer(d, 2), 2);
}

TEST(Plan, RemoteReadsCarryRequiredVersions) {
  Fixture f;
  const RunPlan plan = build_run_plan(f.graph, f.schedule);
  // Every task's remote reads refer to objects it accesses that it does not
  // own, and versions are within range.
  for (graph::TaskId t = 0; t < f.graph.num_tasks(); ++t) {
    const ProcId p = f.schedule.proc_of_task[t];
    for (const RemoteRead& rr : plan.tasks[t].remote_reads) {
      EXPECT_NE(f.graph.data(rr.object).owner, p);
      EXPECT_GE(rr.version, 0);
      EXPECT_LE(rr.version, plan.objects[rr.object].num_versions());
    }
  }
}

TEST(Plan, SendsMatchRemoteReads) {
  Fixture f;
  const RunPlan plan = build_run_plan(f.graph, f.schedule);
  for (graph::TaskId t = 0; t < f.graph.num_tasks(); ++t) {
    const ProcId p = f.schedule.proc_of_task[t];
    for (const RemoteRead& rr : plan.tasks[t].remote_reads) {
      // Some version >= rr.version must be scheduled for delivery to p.
      bool covered = false;
      const auto& sends = plan.objects[rr.object].sends_by_version;
      for (std::size_t v = rr.version; v < sends.size(); ++v) {
        covered |= std::count(sends[v].begin(), sends[v].end(), p) > 0;
      }
      EXPECT_TRUE(covered) << "no send covers task " << f.graph.task(t).name;
    }
  }
}

TEST(Plan, FlagRoutingMatchesSyncEdges) {
  Fixture f;
  const RunPlan plan = build_run_plan(f.graph, f.schedule);
  for (const graph::Edge& e : f.graph.edges()) {
    if (e.redundant || e.kind == graph::DepKind::kTrue) continue;
    if (f.schedule.proc_of_task[e.src] == f.schedule.proc_of_task[e.dst]) {
      continue;
    }
    const auto& dests = plan.tasks[e.src].flag_dests;
    EXPECT_TRUE(std::count(dests.begin(), dests.end(),
                           f.schedule.proc_of_task[e.dst]) > 0);
    const auto& preds = plan.tasks[e.dst].remote_sync_preds;
    EXPECT_TRUE(std::count(preds.begin(), preds.end(), e.src) > 0);
  }
}

TEST(Plan, VolatileAccessesAreRemoteReadsOnly) {
  Fixture f;
  const RunPlan plan = build_run_plan(f.graph, f.schedule);
  // Figure 2: VOLA(P0) = {d8}, VOLA(P1) = {d1, d3, d5, d7} (0-based: 7 and
  // 0, 2, 4, 6).
  std::vector<bool> vola0(11, false), vola1(11, false);
  for (graph::TaskId t = 0; t < f.graph.num_tasks(); ++t) {
    for (graph::DataId d : plan.tasks[t].volatile_accesses) {
      (f.schedule.proc_of_task[t] == 0 ? vola0 : vola1)[d] = true;
    }
  }
  EXPECT_TRUE(vola0[7]);
  EXPECT_EQ(std::count(vola0.begin(), vola0.end(), true), 1);
  EXPECT_TRUE(vola1[0] && vola1[2] && vola1[4] && vola1[6]);
  EXPECT_EQ(std::count(vola1.begin(), vola1.end(), true), 4);
}

TEST(Plan, InitialSendsOnlyForVersionZeroReaders) {
  Fixture f;
  const RunPlan plan = build_run_plan(f.graph, f.schedule);
  for (ProcId p = 0; p < 2; ++p) {
    for (const ContentSend& s : plan.procs[p].initial_sends) {
      EXPECT_EQ(s.version, 0);
      EXPECT_EQ(f.graph.data(s.object).owner, p);
    }
  }
}

TEST(Plan, ValidatesScheduleFirst) {
  Fixture f;
  sched::Schedule broken = f.schedule;
  std::swap(broken.order[0][0], broken.order[0].back());
  broken.rebuild_index(f.graph.num_tasks());
  EXPECT_THROW(build_run_plan(f.graph, broken), rapid::Error);
}

TEST(Plan, VersionOfWriterRejectsNonWriters) {
  Fixture f;
  const RunPlan plan = build_run_plan(f.graph, f.schedule);
  // Task 0 (T[1]) writes d1 (object 0) only.
  EXPECT_EQ(plan.version_of_writer(0, 0), 1);
  EXPECT_THROW(plan.version_of_writer(1, 0), rapid::Error);
}

}  // namespace
}  // namespace rapid::rt
