#include <gtest/gtest.h>

#include <cmath>

#include "rapid/num/nbody_app.hpp"
#include "rapid/num/reference.hpp"
#include "rapid/rt/sim_executor.hpp"
#include "rapid/sched/liveness.hpp"
#include "rapid/sched/mapping.hpp"
#include "rapid/sched/ordering.hpp"

namespace rapid::num {
namespace {

NBodyConfig small_config(std::int32_t steps = 2) {
  NBodyConfig config;
  config.width = 5;
  config.height = 4;
  config.particles_per_cell = 6;
  config.timesteps = steps;
  return config;
}

struct Runner {
  NBodyApp app;
  sched::Schedule schedule;
  rt::RunPlan plan;
  std::int64_t min_mem = 0;

  Runner(const NBodyConfig& config, int procs, bool use_dts = false) {
    app = NBodyApp::build(config, procs);
    const auto assignment = sched::owner_compute_tasks(app.graph(), procs);
    const auto params = machine::MachineParams::cray_t3d(procs);
    schedule =
        use_dts ? sched::schedule_dts(app.graph(), assignment, procs, params)
                : sched::schedule_mpo(app.graph(), assignment, procs, params);
    plan = rt::build_run_plan(app.graph(), schedule);
    min_mem = sched::analyze_liveness(app.graph(), schedule).min_mem();
  }
};

TEST(NBodyApp, GraphShapePerTimestep) {
  const NBodyConfig config = small_config(3);
  const auto app = NBodyApp::build(config, 2);
  const std::int32_t cells = config.width * config.height;
  // Per step: cells summaries + height zero-rows + cells row-accs + 1
  // zero-global + height glob-accs + cells forces + cells updates.
  const std::int32_t per_step =
      cells + config.height + cells + 1 + config.height + cells + cells;
  EXPECT_EQ(app.graph().num_tasks(), per_step * config.timesteps);
  EXPECT_NO_THROW(app.graph().topological_order());
}

TEST(NBodyApp, ReferenceMatchesThreadedRun) {
  Runner r(small_config(2), 4);
  rt::RunConfig config;
  config.capacity_per_proc = 1 << 22;
  rt::ThreadedExecutor exec(r.plan, config, r.app.make_init(),
                            r.app.make_body());
  const rt::RunReport report = exec.run();
  ASSERT_TRUE(report.executable) << report.failure;
  const auto expected = r.app.reference_run();
  const auto actual = r.app.extract_particles(exec);
  // Commuting reductions reorder floating-point sums; positions must still
  // agree tightly.
  EXPECT_LT(max_rel_error(actual, expected), 1e-10);
}

TEST(NBodyApp, RunsAtMinMemWithRecycling) {
  Runner r(small_config(2), 4);
  rt::RunConfig config;
  config.capacity_per_proc = r.min_mem + r.min_mem / 8;  // mixed sizes
  rt::ThreadedExecutor exec(r.plan, config, r.app.make_init(),
                            r.app.make_body());
  const rt::RunReport report = exec.run();
  ASSERT_TRUE(report.executable) << report.failure;
  EXPECT_GE(report.avg_maps(), 1.0);
  const auto expected = r.app.reference_run();
  const auto actual = r.app.extract_particles(exec);
  EXPECT_LT(max_rel_error(actual, expected), 1e-10);
}

TEST(NBodyApp, MultipleVersionsFlowAcrossTimesteps) {
  // Particle objects are re-sent to neighbor processors every timestep:
  // the same (object, destination) pair must carry several versions.
  Runner r(small_config(3), 4);
  bool multi_version = false;
  for (graph::DataId d = 0; d < r.app.graph().num_data(); ++d) {
    const auto& obj = r.plan.objects[d];
    std::vector<int> per_dest(static_cast<std::size_t>(4), 0);
    for (const auto& dests : obj.sends_by_version) {
      for (graph::ProcId p : dests) ++per_dest[p];
    }
    for (int count : per_dest) multi_version |= count > 1;
  }
  EXPECT_TRUE(multi_version);
}

TEST(NBodyApp, SimulatorExecutesAndCounts) {
  Runner r(small_config(2), 4);
  rt::RunConfig c;
  c.params = machine::MachineParams::cray_t3d(4);
  c.capacity_per_proc = 1 << 22;
  const rt::RunReport report = rt::simulate(r.plan, c);
  ASSERT_TRUE(report.executable) << report.failure;
  EXPECT_EQ(report.tasks_executed, r.app.graph().num_tasks());
  EXPECT_GT(report.content_messages, 0);
}

TEST(NBodyApp, DtsScheduleAlsoCorrect) {
  Runner r(small_config(2), 2, /*use_dts=*/true);
  rt::RunConfig config;
  config.capacity_per_proc = 1 << 22;
  rt::ThreadedExecutor exec(r.plan, config, r.app.make_init(),
                            r.app.make_body());
  const rt::RunReport report = exec.run();
  ASSERT_TRUE(report.executable) << report.failure;
  const auto expected = r.app.reference_run();
  const auto actual = r.app.extract_particles(exec);
  EXPECT_LT(max_rel_error(actual, expected), 1e-10);
}

TEST(NBodyApp, EnergyDoesNotExplode) {
  // Sanity on the physics: with softened gravity and a small dt, kinetic
  // energy stays bounded over the run (no NaNs, no blowup).
  const auto app = NBodyApp::build(small_config(4), 1);
  const auto particles = app.reference_run();
  double kinetic = 0.0;
  for (std::size_t p = 0; p < particles.size() / 4; ++p) {
    const double vx = particles[p * 4 + 2];
    const double vy = particles[p * 4 + 3];
    ASSERT_TRUE(std::isfinite(vx) && std::isfinite(vy));
    kinetic += 0.5 * (vx * vx + vy * vy);
  }
  EXPECT_LT(kinetic, 1e4);
}

}  // namespace
}  // namespace rapid::num
