#include <gtest/gtest.h>

#include "rapid/sched/liveness.hpp"
#include "rapid/sched/mapping.hpp"
#include "rapid/sched/ordering.hpp"

namespace rapid::sched {
namespace {

using graph::TaskGraph;

/// Two processors; P0 produces a, b; P1 consumes both into its own object.
struct TinyFixture {
  TaskGraph g;
  graph::DataId a, b, c;
  Schedule schedule;

  TinyFixture() {
    a = g.add_data("a", 100, 0);
    b = g.add_data("b", 200, 0);
    c = g.add_data("c", 50, 1);
    const auto wa = g.add_task("Wa", {}, {a}, 1.0);
    const auto wb = g.add_task("Wb", {}, {b}, 1.0);
    const auto ra = g.add_task("Ra", {a}, {c}, 1.0);
    const auto rb = g.add_task("Rb", {b}, {c}, 1.0);
    g.finalize();
    schedule.num_procs = 2;
    schedule.order = {{wa, wb}, {ra, rb}};
    schedule.rebuild_index(g.num_tasks());
  }
};

TEST(Liveness, PermanentBytesFollowOwnership) {
  TinyFixture f;
  const LivenessTable t = analyze_liveness(f.g, f.schedule);
  EXPECT_EQ(t.procs[0].permanent_bytes, 300);
  EXPECT_EQ(t.procs[1].permanent_bytes, 50);
}

TEST(Liveness, VolatileLifetimesPerPosition) {
  TinyFixture f;
  const LivenessTable t = analyze_liveness(f.g, f.schedule);
  EXPECT_TRUE(t.procs[0].volatiles.empty());
  ASSERT_EQ(t.procs[1].volatiles.size(), 2u);
  const auto& va = t.procs[1].volatiles[0];
  EXPECT_EQ(va.object, f.a);
  EXPECT_EQ(va.first_pos, 0);
  EXPECT_EQ(va.last_pos, 0);
  const auto& vb = t.procs[1].volatiles[1];
  EXPECT_EQ(vb.object, f.b);
  EXPECT_EQ(vb.first_pos, 1);
  EXPECT_EQ(vb.last_pos, 1);
}

TEST(Liveness, DisjointLifetimesShareSpaceInMinMem) {
  TinyFixture f;
  const LivenessTable t = analyze_liveness(f.g, f.schedule);
  // P1 peak: 50 permanent + max(100, 200) volatile = 250 (lifetimes of a
  // and b are disjoint).
  EXPECT_EQ(t.procs[1].peak_bytes, 250);
  EXPECT_EQ(t.procs[1].total_bytes, 350);
  EXPECT_EQ(t.min_mem(), 300);  // P0's permanents dominate
  EXPECT_EQ(t.tot_mem(), 350);
}

TEST(Liveness, OverlappingLifetimesAdd) {
  // Same graph but P1 interleaves so both volatiles are alive at once.
  TinyFixture f;
  // Order on P1: Ra uses a at pos 0, Rb uses b at pos 1; to overlap, make a
  // second reader of a after Rb.
  TaskGraph g;
  const auto a = g.add_data("a", 100, 0);
  const auto c = g.add_data("c", 10, 1);
  const auto b = g.add_data("b", 200, 0);
  const auto wa = g.add_task("Wa", {}, {a}, 1.0);
  const auto wb = g.add_task("Wb", {}, {b}, 1.0);
  const auto r1 = g.add_task("R1", {a}, {c}, 1.0);
  const auto r2 = g.add_task("R2", {b}, {c}, 1.0);
  const auto r3 = g.add_task("R3", {a}, {c}, 1.0);
  g.finalize();
  Schedule s;
  s.num_procs = 2;
  s.order = {{wa, wb}, {r1, r2, r3}};
  s.rebuild_index(g.num_tasks());
  const LivenessTable t = analyze_liveness(g, s);
  // a alive positions 0..2, b alive at 1: peak = 10 + 100 + 200.
  EXPECT_EQ(t.procs[1].peak_bytes, 310);
}

TEST(Liveness, MemoryScalabilityOnFigure2) {
  TaskGraph g = graph::make_paper_figure2_graph();
  const auto procs = owner_compute_tasks(g, 2);
  const Schedule s =
      schedule_rcp(g, procs, 2, machine::MachineParams::cray_t3d(2));
  const double ratio = memory_scalability(g, s);
  // S1 = 11; per-processor need is at least ceil(11/2) = 6, so the ratio is
  // at most 11/6 and at least 1.
  EXPECT_GE(ratio, 1.0);
  EXPECT_LE(ratio, 2.0);
}

TEST(Liveness, SingleProcessorPeakEqualsS1) {
  TaskGraph g = graph::make_paper_figure2_graph();
  for (graph::DataId d = 0; d < g.num_data(); ++d) g.set_owner(d, 0);
  const auto procs = owner_compute_tasks(g, 1);
  const Schedule s =
      schedule_rcp(g, procs, 1, machine::MachineParams::cray_t3d(1));
  const LivenessTable t = analyze_liveness(g, s);
  EXPECT_EQ(t.min_mem(), g.sequential_space());
  EXPECT_EQ(t.tot_mem(), g.sequential_space());
}

}  // namespace
}  // namespace rapid::sched
