#include <gtest/gtest.h>

#include <vector>

#include "rapid/machine/event_queue.hpp"
#include "rapid/machine/params.hpp"
#include "rapid/support/check.hpp"

namespace rapid::machine {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule_at(3.0, [&] { fired.push_back(3); });
  q.schedule_at(1.0, [&] { fired.push_back(1); });
  q.schedule_at(2.0, [&] { fired.push_back(2); });
  EXPECT_DOUBLE_EQ(q.run(), 3.0);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakBySchedulingOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(1.0, [&fired, i] { fired.push_back(i); });
  }
  q.run();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 10) q.schedule_after(1.0, chain);
  };
  q.schedule_at(0.0, chain);
  EXPECT_DOUBLE_EQ(q.run(), 9.0);
  EXPECT_EQ(count, 10);
  EXPECT_EQ(q.events_executed(), 10u);
}

TEST(EventQueue, PastSchedulingThrows) {
  EventQueue q;
  q.schedule_at(5.0, [&] {
    EXPECT_THROW(q.schedule_at(1.0, [] {}), Error);
  });
  q.run();
}

TEST(EventQueue, RunBounded) {
  EventQueue q;
  for (int i = 0; i < 10; ++i) q.schedule_at(i, [] {});
  EXPECT_FALSE(q.run_bounded(5));
  EXPECT_TRUE(q.run_bounded(100));
}

TEST(Params, T3dDefaults) {
  const MachineParams p = MachineParams::cray_t3d(16);
  EXPECT_EQ(p.num_procs, 16);
  EXPECT_DOUBLE_EQ(p.flops_per_us, 103.0);   // 103 MFLOPS
  EXPECT_DOUBLE_EQ(p.rma_overhead_us, 2.7);  // SHMEM_PUT overhead
  EXPECT_DOUBLE_EQ(p.bytes_per_us, 128.0);   // 128 MB/s
}

TEST(Params, TaskTimeIncludesOverhead) {
  const MachineParams p = MachineParams::cray_t3d(1);
  EXPECT_DOUBLE_EQ(p.task_time_us(0.0), p.task_overhead_us);
  EXPECT_DOUBLE_EQ(p.task_time_us(1030.0), p.task_overhead_us + 10.0);
}

TEST(Params, TransferScalesWithBytes) {
  const MachineParams p = MachineParams::cray_t3d(1);
  const double small = p.transfer_time_us(0);
  const double large = p.transfer_time_us(12800);
  EXPECT_DOUBLE_EQ(small, p.rma_latency_us);
  EXPECT_DOUBLE_EQ(large - small, 100.0);
}

TEST(Params, NegativeInputsThrow) {
  const MachineParams p = MachineParams::cray_t3d(1);
  EXPECT_THROW(p.task_time_us(-1.0), Error);
  EXPECT_THROW(p.send_overhead_us(-1), Error);
}

}  // namespace
}  // namespace rapid::machine
