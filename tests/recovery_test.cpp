// Tests for the self-healing protocol layer: integrity-checked RMA
// (checksums on content puts and address packages), bounded re-request
// recovery (NACKs, idempotent resends, retry exhaustion), task-level retry
// of transient errors, and run-level restart (run_with_recovery). The
// fail-stop behaviour of the same fault classes — what happens when
// recovery is OFF — is covered by data_plane_stress_test.cpp; this file
// asserts the complementary claim: with recovery ON, every injected fault
// class completes with the exact sequential numerics and zero escalations,
// and detected-but-unrecoverable situations escalate with a retry history
// attached.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "counter_app.hpp"
#include "rapid/num/cholesky_app.hpp"
#include "rapid/num/reference.hpp"
#include "rapid/rt/faults.hpp"
#include "rapid/rt/recovery.hpp"
#include "rapid/rt/sim_executor.hpp"
#include "rapid/rt/stall.hpp"
#include "rapid/rt/threaded_executor.hpp"
#include "rapid/sched/liveness.hpp"
#include "rapid/sched/mapping.hpp"
#include "rapid/sched/ordering.hpp"
#include "rapid/sparse/generators.hpp"
#include "rapid/sparse/ordering.hpp"
#include "rapid/support/stopwatch.hpp"

namespace rapid::rt {
namespace {

using testing::CounterApp;
using testing::GridApp;
using testing::oversubscribed_procs;

ThreadedOptions recovery_options() {
  ThreadedOptions options;
  options.retry = RetryPolicy::standard();
  return options;
}

/// CI artifact: dump a (merged) RunReport as JSON when the recovery lane
/// exports RAPID_RECOVERY_REPORT_DIR.
void dump_report(const std::string& name, const RunReport& report) {
  if (const char* dir = std::getenv("RAPID_RECOVERY_REPORT_DIR")) {
    std::ofstream out(std::string(dir) + "/" + name + ".json");
    out << report.to_json().dump();
  }
}

// ---- recovery sweep --------------------------------------------------------
//
// Every fault class — including the two new detected-fault classes, payload
// corruption and package duplication, which the fail-stop design cannot
// survive — must complete under recovery with the exact sequential numerics,
// failure_kind kNone, and zero ProtocolDeadlockError escalations. 32 seeds
// per class on the counter-app DAG at MIN_MEM.

void run_recovery_sweep(const std::string& preset) {
  constexpr int kProcs = 4;
  constexpr std::uint64_t kSeeds = 32;
  CounterApp app(kProcs);
  const auto liveness = sched::analyze_liveness(app.graph, app.schedule);
  RunConfig config = app.config(liveness.min_mem());

  const RunReport sim = simulate(app.plan, config);
  ASSERT_TRUE(sim.executable) << sim.failure;

  RunReport merged;  // counters accumulated across all seeds
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    ThreadedOptions options = recovery_options();
    options.faults = FaultPlan::preset(preset, seed);
    ASSERT_TRUE(options.faults.enabled());
    RunReport r;
    try {
      ThreadedExecutor exec(app.plan, config, app.make_init(),
                            app.make_body(), options);
      r = exec.run();
      ASSERT_TRUE(r.executable) << preset << " seed " << seed << ": "
                                << r.failure;
      for (graph::DataId d = 0; d < app.graph.num_data(); ++d) {
        const auto bytes = exec.read_object(d);
        std::int64_t v = 0;
        std::memcpy(&v, bytes.data(), sizeof(v));
        ASSERT_EQ(v, app.expected[d])
            << preset << " seed " << seed << ": " << app.graph.data(d).name;
      }
    } catch (const ProtocolDeadlockError& e) {
      FAIL() << preset << " seed " << seed
             << ": recovery escalated a healable fault:\n"
             << e.what();
    }
    EXPECT_EQ(r.failure_kind, FailureKind::kNone);
    EXPECT_EQ(r.tasks_executed, sim.tasks_executed)
        << preset << " seed " << seed;
    merged.recovery.merge(r.recovery);
    merged.tasks_executed += r.tasks_executed;
    merged.content_messages += r.content_messages;
  }
  // The detected-fault classes must actually exercise the healing paths:
  // corruption forces checksum rejections and clean resends; duplication
  // forces sequence-number suppressions. (The delay classes need no healing
  // — the protocol tolerates them outright — so no counter floor there.)
  if (preset == "corrupt") {
    EXPECT_GT(merged.recovery.checksum_rejections, 0);
    EXPECT_GT(merged.recovery.resends, 0);
    EXPECT_GT(merged.recovery.nacks_sent, 0);
  }
  if (preset == "dup") {
    EXPECT_GT(merged.recovery.duplicate_suppressions, 0);
  }
  dump_report("recovery_sweep_" + preset, merged);
}

TEST(RecoverySweep, AddressPackageDelays) { run_recovery_sweep("addr"); }
TEST(RecoverySweep, ContentPutPublicationDelays) { run_recovery_sweep("put"); }
TEST(RecoverySweep, TaskBodySlowdowns) { run_recovery_sweep("slow"); }
TEST(RecoverySweep, ForcedParkTimeouts) { run_recovery_sweep("park"); }
TEST(RecoverySweep, PayloadCorruption) { run_recovery_sweep("corrupt"); }
TEST(RecoverySweep, PackageDuplication) { run_recovery_sweep("dup"); }

// ---- re-request healing ----------------------------------------------------

TEST(Recovery, DroppedAddressPackageIsHealedByReRequest) {
  // The exact scenario the fail-stop design diagnoses as a genuine deadlock
  // (FaultInjection.DroppedAddressPackageIsDiagnosedAsDeadlock): p0's first
  // address package is lost, so the owner's sends to p0 suspend forever.
  // With recovery enabled the blocked waiter's NACK carries its own buffer
  // address (it always knows it — the package was built from its MAP), the
  // owner installs it and the CQ dispatches the suspended send: the run
  // completes with exact numerics instead of failing.
  constexpr int kProcs = 4;
  CounterApp app(kProcs);
  const auto liveness = sched::analyze_liveness(app.graph, app.schedule);
  RunConfig config = app.config(liveness.min_mem());
  ThreadedOptions options = recovery_options();
  options.faults.drop_addr_src = 0;
  options.faults.drop_addr_nth = 1;
  ThreadedExecutor exec(app.plan, config, app.make_init(), app.make_body(),
                        options);
  Stopwatch elapsed;
  const RunReport r = exec.run();  // a throw here fails the test
  EXPECT_LT(elapsed.seconds(), 10.0);
  ASSERT_TRUE(r.executable) << r.failure;
  EXPECT_EQ(r.failure_kind, FailureKind::kNone);
  EXPECT_GT(r.recovery.nacks_sent, 0);
  for (graph::DataId d = 0; d < app.graph.num_data(); ++d) {
    const auto bytes = exec.read_object(d);
    std::int64_t v = 0;
    std::memcpy(&v, bytes.data(), sizeof(v));
    ASSERT_EQ(v, app.expected[d]) << app.graph.data(d).name;
  }
  dump_report("recovery_dropped_package", r);
}

TEST(Recovery, DisabledRecoveryStillFailsFailStop) {
  // The same drop with recovery left disabled must keep the PR 3 contract:
  // a diagnosed ProtocolDeadlockError, not a silent hang or a heal.
  constexpr int kProcs = 4;
  CounterApp app(kProcs);
  const auto liveness = sched::analyze_liveness(app.graph, app.schedule);
  RunConfig config = app.config(liveness.min_mem());
  ThreadedOptions options;  // retry.max_attempts == 0: recovery off
  options.faults.drop_addr_src = 0;
  options.faults.drop_addr_nth = 1;
  ThreadedExecutor exec(app.plan, config, app.make_init(), app.make_body(),
                        options);
  EXPECT_THROW(exec.run(), ProtocolDeadlockError);
}

TEST(Recovery, ExhaustedRetriesEscalateWithRetryHistory) {
  // Drop the address package AND every re-request: the waiter's bounded
  // retries run out, and only then does the run escalate — as
  // ProtocolDeadlockError whose StallReport records the retry history.
  constexpr int kProcs = 4;
  CounterApp app(kProcs);
  const auto liveness = sched::analyze_liveness(app.graph, app.schedule);
  RunConfig config = app.config(liveness.min_mem());
  ThreadedOptions options = recovery_options();
  options.faults.drop_addr_src = 0;
  options.faults.drop_addr_nth = 1;
  options.faults.drop_nacks = true;
  ThreadedExecutor exec(app.plan, config, app.make_init(), app.make_body(),
                        options);
  Stopwatch elapsed;
  try {
    exec.run();
    FAIL() << "expected ProtocolDeadlockError (retries exhausted)";
  } catch (const ProtocolDeadlockError& e) {
    EXPECT_LT(elapsed.seconds(), 15.0);  // not the 30 s watchdog
    ASSERT_NE(e.report(), nullptr) << e.what();
    const StallReport& report = *e.report();
    EXPECT_TRUE(report.retries_exhausted);
    // At least one processor logged an exhausted wait with the policy's
    // full attempt count.
    bool found_exhausted = false;
    for (const ProcSnapshot& s : report.procs) {
      for (const RetryRecord& rec : s.retry_history) {
        if (rec.exhausted) {
          found_exhausted = true;
          EXPECT_EQ(rec.attempts, RetryPolicy::standard().max_attempts);
          EXPECT_GT(rec.waited_us, 0);
        }
      }
    }
    EXPECT_TRUE(found_exhausted) << report.summary();
    EXPECT_NE(report.summary().find("EXHAUSTED"), std::string::npos);
    // The dropped re-requests were still counted on the sender side.
    EXPECT_GT(exec.last_report().recovery.nacks_sent, 0);
    EXPECT_EQ(exec.last_report().failure_kind,
              FailureKind::kRetriesExhausted);
  }
}

// ---- integrity (checksums) -------------------------------------------------

TEST(Recovery, CorruptionWithoutRecoveryFailsStop) {
  // Payload corruption with checksums on but recovery off is a detected,
  // unrecoverable fault: the run must fail (kIntegrity), never return wrong
  // numerics. Corruption is probabilistic per (object, version, dest), so
  // sweep seeds until at least one run actually drew a corruption.
  constexpr int kProcs = 4;
  CounterApp app(kProcs);
  const auto liveness = sched::analyze_liveness(app.graph, app.schedule);
  RunConfig config = app.config(liveness.min_mem());
  bool saw_integrity_failure = false;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    ThreadedOptions options;  // recovery off, checksum on (default)
    options.faults = FaultPlan::preset("corrupt", seed);
    ThreadedExecutor exec(app.plan, config, app.make_init(), app.make_body(),
                          options);
    try {
      const RunReport r = exec.run();
      // No corruption drawn this seed: numerics must be exact.
      ASSERT_TRUE(r.executable) << r.failure;
      EXPECT_EQ(r.recovery.checksum_rejections, 0);
      for (graph::DataId d = 0; d < app.graph.num_data(); ++d) {
        const auto bytes = exec.read_object(d);
        std::int64_t v = 0;
        std::memcpy(&v, bytes.data(), sizeof(v));
        ASSERT_EQ(v, app.expected[d]);
      }
    } catch (const ExecutionFailedError& e) {
      saw_integrity_failure = true;
      EXPECT_NE(std::string(e.what()).find("integrity"), std::string::npos);
      EXPECT_EQ(exec.last_report().failure_kind, FailureKind::kIntegrity);
      EXPECT_GT(exec.last_report().recovery.checksum_rejections, 0);
    }
  }
  EXPECT_TRUE(saw_integrity_failure)
      << "no seed in 1..8 drew a corruption; the fail-stop path is untested";
}

TEST(Recovery, ChecksumOffSkipsVerification) {
  // With checksums disabled a clean run completes with zero rejections (the
  // knob exists for the bench overhead ablation).
  constexpr int kProcs = 4;
  CounterApp app(kProcs);
  const auto liveness = sched::analyze_liveness(app.graph, app.schedule);
  RunConfig config = app.config(liveness.min_mem());
  ThreadedOptions options;
  options.checksum = false;
  ThreadedExecutor exec(app.plan, config, app.make_init(), app.make_body(),
                        options);
  const RunReport r = exec.run();
  ASSERT_TRUE(r.executable) << r.failure;
  EXPECT_EQ(r.recovery.checksum_rejections, 0);
}

// ---- duplicate replay idempotence ------------------------------------------

TEST(Recovery, DuplicateReplayIsIdempotentOnTheGrid) {
  // Package duplication on the oversubscribed grid DAG: replays land both
  // before and after the original is consumed, and the per-sender sequence
  // numbers must suppress every one without disturbing the numerics.
  const int procs = oversubscribed_procs(2);
  GridApp app(/*rows=*/4, /*cols=*/procs, procs);
  RunConfig config;
  config.params = machine::MachineParams::cray_t3d(procs);
  config.active_memory = true;
  config.capacity_per_proc =
      sched::analyze_liveness(app.graph, app.schedule).min_mem();
  ThreadedOptions options = recovery_options();
  options.faults = FaultPlan::preset("dup", /*seed=*/7);
  ThreadedExecutor exec(app.plan, config, app.make_init(), app.make_body(),
                        options);
  const RunReport r = exec.run();
  ASSERT_TRUE(r.executable) << r.failure;
  app.check_results(exec);
  EXPECT_GT(r.recovery.duplicate_suppressions, 0);
}

TEST(Recovery, DuplicateReplayIsIdempotentOnCholesky) {
  // Same property on a real numeric kernel: duplicated address packages
  // under active memory must not perturb the factorization.
  constexpr int kProcs = 4;
  sparse::CscMatrix a = sparse::grid_laplacian_2d(8, 8);
  a = a.permuted_symmetric(sparse::nested_dissection_2d(8, 8));
  num::CholeskyApp app = num::CholeskyApp::build(std::move(a), 4, kProcs);
  const auto assignment = sched::owner_compute_tasks(app.graph(), kProcs);
  const auto params = machine::MachineParams::cray_t3d(kProcs);
  const auto schedule =
      sched::schedule_rcp(app.graph(), assignment, kProcs, params);
  const RunPlan plan = build_run_plan(app.graph(), schedule);
  RunConfig config;
  config.params = params;
  config.active_memory = true;
  config.capacity_per_proc =
      sched::analyze_liveness(app.graph(), schedule).min_mem();
  ThreadedOptions options = recovery_options();
  options.faults = FaultPlan::preset("dup", /*seed=*/3);
  ThreadedExecutor exec(plan, config, app.make_init(), app.make_body(),
                        options);
  const RunReport r = exec.run();
  ASSERT_TRUE(r.executable) << r.failure;
  const auto l = app.extract_l_dense(exec);
  EXPECT_LT(num::cholesky_residual(app.matrix(), l), 1e-10);
  EXPECT_GT(r.recovery.duplicate_suppressions, 0);
}

// ---- task-level retry ------------------------------------------------------

TEST(Recovery, TransientTaskErrorIsRetriedInPlace) {
  constexpr int kProcs = 4;
  CounterApp app(kProcs);
  const auto liveness = sched::analyze_liveness(app.graph, app.schedule);
  RunConfig config = app.config(liveness.min_mem());
  ThreadedOptions options = recovery_options();
  options.faults.transient_throw_in_task = app.graph.num_tasks() / 2;
  options.faults.transient_throw_count = 2;  // throws twice, then succeeds
  ThreadedExecutor exec(app.plan, config, app.make_init(), app.make_body(),
                        options);
  const RunReport r = exec.run();
  ASSERT_TRUE(r.executable) << r.failure;
  EXPECT_EQ(r.recovery.task_retries, 2);
  for (graph::DataId d = 0; d < app.graph.num_data(); ++d) {
    const auto bytes = exec.read_object(d);
    std::int64_t v = 0;
    std::memcpy(&v, bytes.data(), sizeof(v));
    ASSERT_EQ(v, app.expected[d]) << app.graph.data(d).name;
  }
}

TEST(Recovery, TransientErrorWithoutRecoveryFailsTheRun) {
  constexpr int kProcs = 4;
  CounterApp app(kProcs);
  const auto liveness = sched::analyze_liveness(app.graph, app.schedule);
  RunConfig config = app.config(liveness.min_mem());
  ThreadedOptions options;  // recovery off
  options.faults.transient_throw_in_task = app.graph.num_tasks() / 2;
  options.faults.transient_throw_count = 1;
  ThreadedExecutor exec(app.plan, config, app.make_init(), app.make_body(),
                        options);
  EXPECT_THROW(exec.run(), ExecutionFailedError);
}

TEST(Recovery, PersistentTransientErrorExhaustsTaskRetries) {
  // A task that throws on every attempt exhausts the in-place retries and
  // the run fails — the outer run_with_recovery ring is the next resort.
  constexpr int kProcs = 4;
  CounterApp app(kProcs);
  const auto liveness = sched::analyze_liveness(app.graph, app.schedule);
  RunConfig config = app.config(liveness.min_mem());
  ThreadedOptions options = recovery_options();
  options.faults.transient_throw_in_task = app.graph.num_tasks() / 2;
  options.faults.transient_throw_count = 1000;  // never succeeds
  ThreadedExecutor exec(app.plan, config, app.make_init(), app.make_body(),
                        options);
  EXPECT_THROW(exec.run(), ExecutionFailedError);
  EXPECT_EQ(exec.last_report().recovery.task_retries,
            RetryPolicy::standard().max_attempts);
}

// ---- run-level restart -----------------------------------------------------

TEST(Recovery, RunWithRecoveryRestartsAfterInducedFailure) {
  // A hard injected task failure on attempt 1 only (induced_fault_runs = 1):
  // the first run fails, the restart runs clean, and the merged report
  // carries both attempts' counters and the attempt history.
  constexpr int kProcs = 4;
  CounterApp app(kProcs);
  const auto liveness = sched::analyze_liveness(app.graph, app.schedule);
  RunConfig config = app.config(liveness.min_mem());
  ThreadedOptions options = recovery_options();
  options.faults.throw_in_task = app.graph.num_tasks() / 2;
  options.faults.induced_fault_runs = 1;
  const RecoveryRun out = run_with_recovery(
      app.plan, config, app.make_init(), app.make_body(), options);
  ASSERT_TRUE(out.report.executable) << out.report.failure;
  EXPECT_EQ(out.attempts, 2);
  EXPECT_EQ(out.report.recovery.run_attempts, 2);
  ASSERT_EQ(out.attempt_failures.size(), 1u);
  EXPECT_NE(out.attempt_failures[0].find("injected fault"),
            std::string::npos);
  ASSERT_NE(out.executor, nullptr);
  for (graph::DataId d = 0; d < app.graph.num_data(); ++d) {
    const auto bytes = out.executor->read_object(d);
    std::int64_t v = 0;
    std::memcpy(&v, bytes.data(), sizeof(v));
    ASSERT_EQ(v, app.expected[d]) << app.graph.data(d).name;
  }
  dump_report("recovery_run_restart", out.report);
}

TEST(Recovery, RunWithRecoveryGivesUpAfterMaxAttempts) {
  constexpr int kProcs = 4;
  CounterApp app(kProcs);
  const auto liveness = sched::analyze_liveness(app.graph, app.schedule);
  RunConfig config = app.config(liveness.min_mem());
  ThreadedOptions options = recovery_options();
  options.faults.throw_in_task = app.graph.num_tasks() / 2;
  // induced on every attempt: all restarts fail the same way
  RunRecoveryOptions ropts;
  ropts.max_run_attempts = 2;
  EXPECT_THROW(run_with_recovery(app.plan, config, app.make_init(),
                                 app.make_body(), options, ropts),
               ExecutionFailedError);
}

TEST(Recovery, RunWithRecoveryReportsNonExecutableWithoutRestarting) {
  // Capacity failures are deterministic: restarting cannot help, so the
  // report comes back immediately with executable == false and one attempt.
  constexpr int kProcs = 4;
  CounterApp app(kProcs);
  RunConfig config = app.config(/*capacity=*/8);  // absurdly small
  const RecoveryRun out = run_with_recovery(
      app.plan, config, app.make_init(), app.make_body(), recovery_options());
  EXPECT_FALSE(out.report.executable);
  EXPECT_EQ(out.attempts, 1);
  EXPECT_EQ(out.report.failure_kind, FailureKind::kNonExecutable);
}

// ---- clean-run hygiene -----------------------------------------------------

TEST(Recovery, CleanRunHasZeroRecoveryCounters) {
  // No faults: the recovery layer must be pure observation — zero NACKs,
  // resends, suppressions, rejections, and retries, with checksums on and
  // recovery armed. Deadlines are set far beyond the run's duration so a
  // slow scheduler (1-core TSan) cannot lapse one and fire a spurious —
  // harmless but nonzero — re-request.
  constexpr int kProcs = 4;
  CounterApp app(kProcs);
  const auto liveness = sched::analyze_liveness(app.graph, app.schedule);
  RunConfig config = app.config(liveness.min_mem());
  ThreadedOptions options = recovery_options();
  options.retry.base_delay_us = 10'000'000;  // no deadline lapses cleanly
  ThreadedExecutor exec(app.plan, config, app.make_init(), app.make_body(),
                        options);
  const RunReport r = exec.run();
  ASSERT_TRUE(r.executable) << r.failure;
  EXPECT_EQ(r.recovery.nacks_sent, 0);
  EXPECT_EQ(r.recovery.resends, 0);
  EXPECT_EQ(r.recovery.flag_resends, 0);
  EXPECT_EQ(r.recovery.duplicate_suppressions, 0);
  EXPECT_EQ(r.recovery.checksum_rejections, 0);
  EXPECT_EQ(r.recovery.task_retries, 0);
  EXPECT_EQ(r.recovery.run_attempts, 1);
}

TEST(Recovery, RunReportJsonCarriesRecoveryBlock) {
  RunReport r;
  r.recovery.nacks_sent = 3;
  r.recovery.resends = 2;
  r.recovery.run_attempts = 2;
  const std::string json = r.to_json().dump();
  EXPECT_NE(json.find("\"recovery\""), std::string::npos);
  EXPECT_NE(json.find("\"nacks_sent\""), std::string::npos);
  EXPECT_NE(json.find("\"run_attempts\""), std::string::npos);
}

TEST(Recovery, RetryPolicyDeadlinesAreExponentialAndBounded) {
  const RetryPolicy p = RetryPolicy::standard();
  ASSERT_TRUE(p.enabled());
  EXPECT_EQ(p.delay_us(1), p.base_delay_us);
  EXPECT_GT(p.delay_us(2), p.delay_us(1));
  EXPECT_GT(p.delay_us(3), p.delay_us(2));
  std::int64_t sum = 0;
  for (std::int32_t a = 1; a <= p.max_attempts; ++a) sum += p.delay_us(a);
  EXPECT_EQ(p.total_wait_us(), sum);
  const RetryPolicy off;
  EXPECT_FALSE(off.enabled());
}

}  // namespace
}  // namespace rapid::rt
