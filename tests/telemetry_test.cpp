// Telemetry-plane tests: registry instrument semantics (sharded counters,
// ratchets, atomic histograms), Prometheus exposition correctness (label
// escaping, cumulative bucket monotonicity, _sum/_count reconciliation
// against a real run's post-run metrics), snapshot torn-read freedom under
// concurrent writers, sampler write atomicity and write-failure
// degradation, exact service-counter reconciliation, and the cross-process
// shm heartbeat going stale under a SIGKILL and the run recovering.
#include <gtest/gtest.h>

#include <csignal>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "counter_app.hpp"
#include "rapid/obs/metrics.hpp"
#include "rapid/obs/telemetry.hpp"
#include "rapid/rt/faults.hpp"
#include "rapid/rt/recovery.hpp"
#include "rapid/rt/shm_health.hpp"
#include "rapid/rt/shm_transport.hpp"
#include "rapid/rt/threaded_executor.hpp"
#include "rapid/support/stopwatch.hpp"
#include "rapid/sched/liveness.hpp"
#include "rapid/svc/service.hpp"

#if defined(__SANITIZE_THREAD__)
#define RAPID_UNDER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define RAPID_UNDER_TSAN 1
#endif
#endif
#ifndef RAPID_UNDER_TSAN
#define RAPID_UNDER_TSAN 0
#endif

#define RAPID_SKIP_UNDER_TSAN()                                          \
  do {                                                                   \
    if (RAPID_UNDER_TSAN) {                                              \
      GTEST_SKIP() << "fork-based shm tests are incompatible with TSan"; \
    }                                                                    \
  } while (0)

namespace rapid::obs {
namespace {

using rt::testing::CounterApp;

const SeriesSnapshot* find_series(const MetricsSnapshot& snap,
                                  const std::string& name) {
  for (const SeriesSnapshot& s : snap.series) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::int64_t counter_value(const MetricsSnapshot& snap,
                           const std::string& name) {
  const SeriesSnapshot* s = find_series(snap, name);
  return s != nullptr ? s->int_value : -1;
}

// ---- instruments -----------------------------------------------------------

TEST(Telemetry, CounterShardsSumAndStayMonotone) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kAddsPerThread; ++i) c.add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kAddsPerThread);
  c.add(-5);  // negative deltas are dropped, not subtracted
  EXPECT_EQ(c.value(), kThreads * kAddsPerThread);
}

TEST(Telemetry, CounterAdvanceToRatchetsNeverRegresses) {
  Counter c;
  c.advance_to(10);
  EXPECT_EQ(c.value(), 10);
  c.advance_to(7);  // stale total: no-op
  EXPECT_EQ(c.value(), 10);
  c.advance_to(42);
  EXPECT_EQ(c.value(), 42);
}

TEST(Telemetry, AtomicHistogramBucketsLikePostRunHistogram) {
  AtomicHistogram live;
  Histogram post;
  for (const std::int64_t v : {0LL, 1LL, 2LL, 3LL, 17LL, 1000LL, 1LL << 40}) {
    live.observe(v);
    post.add(v);
  }
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    EXPECT_EQ(live.bucket(i), post.bucket(i)) << "bucket " << i;
  }
  EXPECT_EQ(live.sum(), post.sum());
}

// ---- exposition ------------------------------------------------------------

TEST(Telemetry, EscapesLabelValues) {
  EXPECT_EQ(escape_label_value("plain"), "plain");
  EXPECT_EQ(escape_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(escape_label_value("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(escape_label_value("line1\nline2"), "line1\\nline2");

  MetricsRegistry reg;
  reg.counter("rapid_test_total", "help", {{"spec", "grid:\"8x8\"\n"}})
      .add(3);
  const std::string text = prometheus_text(reg.snapshot());
  EXPECT_NE(text.find("rapid_test_total{spec=\"grid:\\\"8x8\\\"\\n\"} 3"),
            std::string::npos)
      << text;
}

TEST(Telemetry, PrometheusHistogramBucketsAreCumulativeAndReconcile) {
  MetricsRegistry reg;
  AtomicHistogram& h = reg.histogram("rapid_test_us", "help");
  std::int64_t expect_sum = 0;
  for (const std::int64_t v : {0LL, 1LL, 2LL, 3LL, 900LL, 1000LL}) {
    h.observe(v);
    expect_sum += v;
  }
  const MetricsSnapshot snap = reg.snapshot();
  const SeriesSnapshot* s = find_series(snap, "rapid_test_us");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->hist_count(), 6);
  EXPECT_EQ(s->hist_sum, expect_sum);

  const std::string text = prometheus_text(snap);
  // HELP/TYPE exactly once for the family.
  EXPECT_EQ(text.find("# HELP rapid_test_us "),
            text.rfind("# HELP rapid_test_us "));
  EXPECT_NE(text.find("# TYPE rapid_test_us histogram"), std::string::npos);
  EXPECT_NE(text.find("rapid_test_us_bucket{le=\"+Inf\"} 6"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("rapid_test_us_sum " + std::to_string(expect_sum)),
            std::string::npos);
  EXPECT_NE(text.find("rapid_test_us_count 6"), std::string::npos);

  // Cumulative bucket values never decrease in emission order.
  std::istringstream lines(text);
  std::string line;
  std::int64_t prev = -1;
  int bucket_lines = 0;
  while (std::getline(lines, line)) {
    if (line.rfind("rapid_test_us_bucket", 0) != 0) continue;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos);
    const std::int64_t v = std::stoll(line.substr(space + 1));
    EXPECT_GE(v, prev) << line;
    prev = v;
    ++bucket_lines;
  }
  EXPECT_GE(bucket_lines, 2);
}

TEST(Telemetry, HistogramMergeReconcilesWithPostRunMetrics) {
  // A real traced run's post-run task_us histogram imports into a live
  // AtomicHistogram exactly: same bucket rule, same count, same sum.
  const int procs = 4;
  CounterApp app(procs);
  const auto liveness = sched::analyze_liveness(app.graph, app.schedule);
  Trace trace(procs);
  rt::ThreadedOptions options;
  options.trace = &trace;
  rt::ThreadedExecutor exec(app.plan, app.config(liveness.min_mem()),
                            app.make_init(), app.make_body(), options);
  const rt::RunReport report = exec.run();
  ASSERT_TRUE(report.executable) << report.failure;
  ASSERT_TRUE(report.metrics);
  const Histogram& task_us = report.metrics->task_us;
  ASSERT_GT(task_us.count(), 0);

  MetricsRegistry reg;
  reg.histogram("rapid_task_us", "help").merge(task_us);
  const MetricsSnapshot snap = reg.snapshot();
  const SeriesSnapshot* s = find_series(snap, "rapid_task_us");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->hist_count(), task_us.count());
  EXPECT_EQ(s->hist_count(), report.tasks_executed);
  EXPECT_EQ(s->hist_sum, task_us.sum());
}

TEST(Telemetry, RegistryIsIdempotentOnNameAndLabels) {
  MetricsRegistry reg;
  Counter& a = reg.counter("rapid_x_total", "help");
  Counter& b = reg.counter("rapid_x_total", "other help");
  EXPECT_EQ(&a, &b);
  Counter& rank0 = reg.counter("rapid_y_total", "h", {{"rank", "0"}});
  Counter& rank1 = reg.counter("rapid_y_total", "h", {{"rank", "1"}});
  EXPECT_NE(&rank0, &rank1);
  rank0.add(1);
  rank1.add(2);
  const MetricsSnapshot snap = reg.snapshot();
  int series = 0;
  for (const SeriesSnapshot& s : snap.series) {
    if (s.name == "rapid_y_total") ++series;
  }
  EXPECT_EQ(series, 2);
}

// ---- snapshot consistency under concurrency --------------------------------

TEST(Telemetry, SnapshotsStayMonotoneUnderConcurrentWriters) {
  MetricsRegistry reg;
  Counter& runs = reg.counter("rapid_runs_total", "help");
  AtomicHistogram& lat = reg.histogram("rapid_lat_us", "help");
  std::atomic<bool> stop{false};
  constexpr int kWriters = 4;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&runs, &lat, &stop, w] {
      std::int64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        runs.add(1);
        lat.observe((i++ % 4096) + w);
      }
    });
  }

  // Under TSan this is the data-race probe for the whole snapshot path;
  // functionally, every snapshot must be internally monotone and the
  // sequence of snapshots monotone per series.
  std::int64_t prev_runs = 0;
  std::int64_t prev_lat_count = 0;
  for (int iter = 0; iter < 200; ++iter) {
    const MetricsSnapshot snap = reg.snapshot();
    const std::int64_t r = counter_value(snap, "rapid_runs_total");
    const SeriesSnapshot* s = find_series(snap, "rapid_lat_us");
    ASSERT_NE(s, nullptr);
    const std::int64_t n = s->hist_count();
    EXPECT_GE(r, prev_runs);
    EXPECT_GE(n, prev_lat_count);
    prev_runs = r;
    prev_lat_count = n;
  }
  stop.store(true);
  for (std::thread& t : writers) t.join();

  const MetricsSnapshot final_snap = reg.snapshot();
  EXPECT_EQ(counter_value(final_snap, "rapid_runs_total"), runs.value());
  EXPECT_EQ(find_series(final_snap, "rapid_lat_us")->hist_sum, lat.sum());
}

// ---- sampler ---------------------------------------------------------------

TEST(Telemetry, SamplerWritesParseableAtomicSnapshots) {
  const std::string path = testing::TempDir() + "rapid_telemetry_test.prom";
  std::remove(path.c_str());
  std::remove((path + ".json").c_str());

  MetricsRegistry reg;
  Counter& ticks_seen = reg.counter("rapid_probe_runs_total", "help");
  TelemetrySamplerOptions opts;
  opts.path = path;
  opts.interval_ms = 10;
  TelemetrySampler sampler(reg, opts);
  sampler.add_probe(
      [&ticks_seen](MetricsRegistry&) { ticks_seen.add(1); });
  sampler.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  sampler.stop();

  EXPECT_GE(sampler.ticks(), 2);
  EXPECT_FALSE(sampler.disabled());

  std::ifstream prom(path);
  ASSERT_TRUE(prom.good()) << path;
  std::stringstream text;
  text << prom.rdbuf();
  EXPECT_NE(text.str().find("# TYPE rapid_probe_runs_total counter"),
            std::string::npos);
  // The final stop() tick makes the file reflect the end state exactly.
  EXPECT_NE(text.str().find("rapid_probe_runs_total " +
                            std::to_string(ticks_seen.value())),
            std::string::npos)
      << text.str();

  std::ifstream json(path + ".json");
  ASSERT_TRUE(json.good());
  std::stringstream jtext;
  jtext << json.rdbuf();
  EXPECT_NE(jtext.str().find("\"rapid.telemetry.v1\""), std::string::npos);
  EXPECT_NE(jtext.str().find("\"wall_ns\""), std::string::npos);

  // No tmp file left behind by the atomic-rename protocol.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
  std::remove((path + ".json").c_str());
}

TEST(Telemetry, WriteFailureDisablesSamplerWithoutThrowing) {
  MetricsRegistry reg;
  reg.counter("rapid_x_total", "help").add(1);
  TelemetrySamplerOptions opts;
  opts.path = "/nonexistent_rapid_dir/metrics.prom";
  TelemetrySampler sampler(reg, opts);
  EXPECT_FALSE(sampler.tick());
  EXPECT_TRUE(sampler.disabled());
  EXPECT_EQ(sampler.ticks(), 0);
  // Further ticks stay no-ops; start/stop never throws either.
  EXPECT_FALSE(sampler.tick());
  sampler.start();
  sampler.stop();
  EXPECT_TRUE(sampler.disabled());
}

// ---- service reconciliation ------------------------------------------------

TEST(ServiceTelemetry, CountersReconcileExactlyWithServiceReport) {
  svc::ServiceOptions sopts;
  sopts.workers = 2;
  MetricsRegistry reg;
  svc::RuntimeService service(sopts);
  service.bind_telemetry(reg);

  std::vector<std::int64_t> ids;
  for (int i = 0; i < 3; ++i) {
    svc::RunRequest req;
    req.spec = "grid:rows=8,cols=8,procs=4";
    req.config.capacity_per_proc = 1 << 20;
    ids.push_back(service.submit(std::move(req)));
  }
  {
    // Demand beyond the whole budget: structured rejection.
    svc::RunRequest req;
    req.spec = "grid:rows=8,cols=8,procs=4";
    req.config.capacity_per_proc = sopts.budget_bytes;
    ids.push_back(service.submit(std::move(req)));
  }
  for (const std::int64_t id : ids) service.wait(id);
  service.sample_telemetry();

  const svc::ServiceReport report = service.report();
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(counter_value(snap, "rapid_runs_submitted_total"),
            report.submitted);
  EXPECT_EQ(counter_value(snap, "rapid_runs_completed_total"),
            report.completed);
  EXPECT_EQ(counter_value(snap, "rapid_runs_failed_total"), report.failed);
  EXPECT_EQ(counter_value(snap, "rapid_runs_rejected_total"),
            report.rejected);
  EXPECT_EQ(counter_value(snap, "rapid_runs_shed_total"), report.shed);
  EXPECT_EQ(counter_value(snap, "rapid_runs_expired_total"),
            report.expired);
  EXPECT_EQ(counter_value(snap, "rapid_plan_cache_hits_total"),
            report.cache_hits);
  EXPECT_EQ(counter_value(snap, "rapid_plan_cache_misses_total"),
            report.cache_misses);

  // The ISSUE's reconciliation identity: every submitted run is accounted
  // for by exactly one terminal counter once the queue drains.
  EXPECT_EQ(counter_value(snap, "rapid_runs_submitted_total"),
            counter_value(snap, "rapid_runs_completed_total") +
                counter_value(snap, "rapid_runs_failed_total") +
                counter_value(snap, "rapid_runs_rejected_total") +
                counter_value(snap, "rapid_runs_shed_total") +
                counter_value(snap, "rapid_runs_expired_total"));

  // Latency histograms cover exactly the dispatched terminals (the
  // rejected run never dispatched).
  const SeriesSnapshot* lat = find_series(snap, "rapid_run_latency_us");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->hist_count(), report.completed + report.failed);
  const SeriesSnapshot* task_us = find_series(snap, "rapid_task_us");
  ASSERT_NE(task_us, nullptr);

  // Drained service: instantaneous gauges settle to zero.
  const SeriesSnapshot* queue = find_series(snap, "rapid_queue_depth");
  ASSERT_NE(queue, nullptr);
  EXPECT_EQ(queue->value, 0.0);
  const SeriesSnapshot* in_flight = find_series(snap, "rapid_runs_in_flight");
  ASSERT_NE(in_flight, nullptr);
  EXPECT_EQ(in_flight->value, 0.0);
  const SeriesSnapshot* reserved = find_series(snap, "rapid_reserved_bytes");
  ASSERT_NE(reserved, nullptr);
  EXPECT_EQ(reserved->value, 0.0);
  const SeriesSnapshot* budget = find_series(snap, "rapid_budget_bytes");
  ASSERT_NE(budget, nullptr);
  EXPECT_EQ(budget->value, static_cast<double>(sopts.budget_bytes));
}

// ---- cross-process shm health ----------------------------------------------

double rank_gauge(const MetricsSnapshot& snap, const std::string& name,
                  const std::string& rank) {
  for (const SeriesSnapshot& s : snap.series) {
    if (s.name != name) continue;
    for (const Label& l : s.labels) {
      if (l.first == "rank" && l.second == rank) return s.value;
    }
  }
  return -2.0;  // series absent
}

/// The acceptance path: a worker that stops heartbeating mid-run shows up
/// as a stale heartbeat gauge (age past its lease, alive -> 0), the
/// SIGKILL + respawn cycle brings a fresh-beating rank back, and torn-down
/// sessions drop out of the sampler entirely.
TEST(ShmHealth, HeartbeatGoesStaleThenRecoversAcrossKillAndRespawn) {
  RAPID_SKIP_UNDER_TSAN();
  rt::ShmTransport::Dims dims;
  dims.num_procs = 2;
  dims.num_data = 2;
  dims.num_tasks = 2;
  dims.heap_bytes = 64;
  rt::ShmRunSpec spec;
  spec.capacity_per_proc = 64;
  spec.lease_timeout_seconds = 0.2;

  MetricsRegistry reg;
  {
    // Session 1: rank 0 beats once and wedges (alive but silent) — its
    // lease ages past the timeout and the sampler must flag it stale.
    auto session = rt::ShmSession::create(dims, spec);
    rt::ShmTransport& st = session->transport();
    session->spawn_fork([&st](graph::ProcId q) -> int {
      st.beat(q, /*state=*/1, /*pos=*/0);
      if (q == 0) {
        for (;;) ::pause();
      }
      return rt::kShmWorkerClean;
    });
    bool stale = false;
    Stopwatch sw;
    while (!stale && sw.seconds() < 10.0) {
      rt::sample_shm_health(reg);
      const MetricsSnapshot snap = reg.snapshot();
      const SeriesSnapshot* sessions = find_series(snap, "rapid_shm_sessions");
      ASSERT_NE(sessions, nullptr);
      EXPECT_EQ(sessions->value, 1.0);
      stale = rank_gauge(snap, "rapid_rank_heartbeat_age_seconds", "0") >
                  0.5 &&
              rank_gauge(snap, "rapid_rank_alive", "0") == 0.0;
      ::usleep(10'000);
    }
    EXPECT_TRUE(stale)
        << "wedged rank 0 never showed a stale heartbeat gauge";
    session->kill_all(SIGKILL);
    EXPECT_TRUE(session->wait_all(5.0));
  }
  EXPECT_EQ(rt::shm_health_active_sessions(), 0);

  {
    // Session 2 (the respawn): both ranks beat continuously — the same
    // rank index must read fresh and alive again.
    auto session = rt::ShmSession::create(dims, spec);
    rt::ShmTransport& st = session->transport();
    session->spawn_fork([&st](graph::ProcId q) -> int {
      for (int i = 0; i < 400; ++i) {
        st.beat(q, /*state=*/1, /*pos=*/0);
        ::usleep(5'000);
      }
      return rt::kShmWorkerClean;
    });
    bool fresh = false;
    Stopwatch sw;
    while (!fresh && sw.seconds() < 10.0) {
      rt::sample_shm_health(reg);
      const MetricsSnapshot snap = reg.snapshot();
      const double age =
          rank_gauge(snap, "rapid_rank_heartbeat_age_seconds", "0");
      fresh = age >= 0.0 && age < spec.lease_timeout_seconds &&
              rank_gauge(snap, "rapid_rank_alive", "0") == 1.0;
      ::usleep(10'000);
    }
    EXPECT_TRUE(fresh)
        << "respawned rank 0 never showed a fresh heartbeat gauge";
    session->kill_all(SIGKILL);
    EXPECT_TRUE(session->wait_all(5.0));
  }

  // All sessions unregistered on teardown; a final probe reports none.
  EXPECT_EQ(rt::shm_health_active_sessions(), 0);
  rt::sample_shm_health(reg);
  const MetricsSnapshot final_snap = reg.snapshot();
  const SeriesSnapshot* sessions =
      find_series(final_snap, "rapid_shm_sessions");
  ASSERT_NE(sessions, nullptr);
  EXPECT_EQ(sessions->value, 0.0);
}

/// Executor level: a SIGKILLed rank fail-stops the attempt, the restart
/// runs clean, and the live nack/resend mirrors never make the
/// cross-session counters regress. The session registered by the winning
/// attempt's executor stays sampleable until the executor is released.
TEST(ShmHealth, RecoveredRunReleasesItsSessionWithTheExecutor) {
  RAPID_SKIP_UNDER_TSAN();
  constexpr int kProcs = 4;
  CounterApp app(kProcs);
  const auto liveness = sched::analyze_liveness(app.graph, app.schedule);
  const rt::RunConfig config = app.config(liveness.min_mem());

  rt::ThreadedOptions options;
  options.transport = rt::TransportKind::kShm;
  options.faults = rt::FaultPlan::kill_proc_at(1, rt::FaultPlan::kKillExe, 1);
  options.faults.induced_fault_runs = 1;
  rt::RunRecoveryOptions ropts;
  ropts.max_run_attempts = 2;

  MetricsRegistry reg;
  rt::RecoveryRun rec = rt::run_with_recovery(
      app.plan, config, app.make_init(), app.make_body(), options, ropts);
  ASSERT_TRUE(rec.report.executable) << rec.report.failure;
  EXPECT_EQ(rec.attempts, 2);

  // The winner's executor keeps its session alive for read_object();
  // sampling sees it, and the per-rank counters only ever grow.
  EXPECT_EQ(rt::shm_health_active_sessions(), 1);
  rt::sample_shm_health(reg);
  const MetricsSnapshot during = reg.snapshot();
  const std::int64_t nacks_before =
      counter_value(during, "rapid_rank_nacks_total");
  rt::sample_shm_health(reg);
  EXPECT_GE(counter_value(reg.snapshot(), "rapid_rank_nacks_total"),
            nacks_before);

  rec.executor.reset();
  EXPECT_EQ(rt::shm_health_active_sessions(), 0);
}

}  // namespace
}  // namespace rapid::obs
