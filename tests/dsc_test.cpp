#include <gtest/gtest.h>

#include "rapid/num/cholesky_app.hpp"
#include "rapid/rt/sim_executor.hpp"
#include "rapid/sched/dsc.hpp"
#include "rapid/sched/liveness.hpp"
#include "rapid/sched/ordering.hpp"
#include "rapid/sparse/generators.hpp"
#include "rapid/sparse/ordering.hpp"
#include "rapid/support/rng.hpp"

namespace rapid::sched {
namespace {

using graph::TaskGraph;

machine::MachineParams params4() { return machine::MachineParams::cray_t3d(4); }

TEST(Dsc, ChainCollapsesToOneCluster) {
  // A pure chain must be zeroed into a single cluster (communication never
  // helps a chain).
  TaskGraph g;
  std::vector<graph::DataId> d;
  for (int i = 0; i < 6; ++i) {
    d.push_back(g.add_data("d" + std::to_string(i), 1024));
  }
  g.add_task("T0", {}, {d[0]}, 100.0);
  for (int i = 1; i < 6; ++i) {
    g.add_task("T" + std::to_string(i), {d[i - 1]}, {d[i]}, 100.0);
  }
  g.finalize();
  DscStats stats;
  const Clustering c = dsc_clusters(g, params4(), &stats);
  EXPECT_EQ(c.num_clusters, 1);
  for (auto cluster : c.cluster_of_task) EXPECT_EQ(cluster, 0);
}

TEST(Dsc, IndependentTasksStaySeparate) {
  TaskGraph g;
  for (int i = 0; i < 5; ++i) {
    const auto d = g.add_data("d" + std::to_string(i), 8);
    g.add_task("T" + std::to_string(i), {}, {d}, 100.0);
  }
  g.finalize();
  const Clustering c = dsc_clusters(g, params4());
  EXPECT_EQ(c.num_clusters, 5);
}

TEST(Dsc, ForkJoinMergesCriticalPath) {
  // Fork-join: source feeds two branches, one heavy and one light; the
  // heavy branch must share the source's cluster (its edge zeroed).
  TaskGraph g;
  const auto a = g.add_data("a", 1 << 16);
  const auto heavy_obj = g.add_data("h", 8);
  const auto light_obj = g.add_data("l", 8);
  const auto out = g.add_data("o", 8);
  const auto src = g.add_task("src", {}, {a}, 100.0);
  const auto heavy = g.add_task("heavy", {a}, {heavy_obj}, 10000.0);
  g.add_task("light", {a}, {light_obj}, 10.0);
  g.add_task("join", {heavy_obj, light_obj}, {out}, 10.0);
  g.finalize();
  const Clustering c = dsc_clusters(g, params4());
  EXPECT_EQ(c.cluster_of_task[src], c.cluster_of_task[heavy]);
}

TEST(Dsc, OwnerClosureMergesCoWriters) {
  // Two parallel writers of the same object would land in different DSC
  // clusters; the owner-closure must merge them.
  TaskGraph g;
  const auto x = g.add_data("x", 8);
  const auto y = g.add_data("y", 8);
  const auto shared = g.add_data("s", 8);
  g.add_task("A", {}, {x}, 500.0);
  g.add_task("B", {}, {y}, 500.0);
  const auto w1 = g.add_task("W1", {x}, {shared}, 10.0);
  const auto w2 = g.add_task("W2", {y}, {shared}, 10.0);
  g.finalize();
  DscStats stats;
  const Clustering c = dsc_clusters(g, params4(), &stats);
  EXPECT_EQ(c.cluster_of_task[w1], c.cluster_of_task[w2]);
  EXPECT_LE(stats.closed_clusters, stats.raw_clusters);
}

TEST(Dsc, EstimatedMakespanBeatsAllRemote) {
  // On the Figure-2 graph, DSC's unbounded-processor makespan must be no
  // worse than executing every edge remotely (zeroing only helps).
  TaskGraph g = graph::make_paper_figure2_graph();
  DscStats stats;
  dsc_clusters(g, params4(), &stats);
  // All-remote critical path = max blevel with remote edges everywhere.
  std::vector<graph::ProcId> all_distinct(
      static_cast<std::size_t>(g.num_tasks()));
  for (graph::TaskId t = 0; t < g.num_tasks(); ++t) {
    all_distinct[t] = t;  // every task its own "processor"
  }
  const auto bl = bottom_levels(g, all_distinct, params4());
  const double all_remote = *std::max_element(bl.begin(), bl.end());
  EXPECT_LE(stats.estimated_makespan, all_remote + 1e-9);
}

TEST(Dsc, FullPipelineExecutesAndComputes) {
  // DSC -> LPT mapping -> MPO ordering -> simulator, on a real workload.
  sparse::CscMatrix a = sparse::grid_laplacian_2d(10, 10);
  a = a.permuted_symmetric(sparse::nested_dissection_2d(10, 10));
  auto app = num::CholeskyApp::build(std::move(a), 5, 4);
  auto& g = app.mutable_graph();
  const Clustering clusters = dsc_clusters(g, params4());
  const auto procs = map_clusters_lpt(g, clusters, 4);
  const auto schedule = schedule_mpo(g, procs, 4, params4());
  EXPECT_NO_THROW(schedule.validate(g));
  const rt::RunPlan plan = rt::build_run_plan(g, schedule);
  rt::RunConfig config;
  config.params = params4();
  config.capacity_per_proc = analyze_liveness(g, schedule).min_mem();
  const rt::RunReport report = rt::simulate(plan, config);
  EXPECT_TRUE(report.executable) << report.failure;
  EXPECT_EQ(report.tasks_executed, g.num_tasks());
}

TEST(Dsc, ClusterFlopsAccountEverything) {
  TaskGraph g = graph::make_paper_figure2_graph();
  const Clustering c = dsc_clusters(g, params4());
  double total = 0.0;
  for (double f : c.cluster_flops) total += f;
  EXPECT_DOUBLE_EQ(total, g.total_flops());
}

}  // namespace
}  // namespace rapid::sched
