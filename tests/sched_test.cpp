#include <gtest/gtest.h>

#include <algorithm>

#include "rapid/sched/liveness.hpp"
#include "rapid/sched/mapping.hpp"
#include "rapid/sched/ordering.hpp"
#include "rapid/support/check.hpp"

namespace rapid::sched {
namespace {

using graph::TaskGraph;

machine::MachineParams params2() { return machine::MachineParams::cray_t3d(2); }

struct Fixture {
  TaskGraph graph = graph::make_paper_figure2_graph();
  std::vector<ProcId> procs;
  Fixture() { procs = owner_compute_tasks(graph, 2); }
};

TEST(Mapping, CyclicOwners) {
  TaskGraph g;
  for (int i = 0; i < 5; ++i) g.add_data("d", 1);
  assign_owners_cyclic(g, 3);
  EXPECT_EQ(g.data(0).owner, 0);
  EXPECT_EQ(g.data(3).owner, 0);
  EXPECT_EQ(g.data(4).owner, 1);
}

TEST(Mapping, OwnerComputePlacesWritersOnOwners) {
  Fixture f;
  for (DataId d = 0; d < f.graph.num_data(); ++d) {
    for (TaskId w : f.graph.writers(d)) {
      EXPECT_EQ(f.procs[w], f.graph.data(d).owner);
    }
  }
}

TEST(Mapping, OwnerComputeRejectsConflictingWrites) {
  TaskGraph g;
  const auto a = g.add_data("a", 1, 0);
  const auto b = g.add_data("b", 1, 1);
  g.add_task("T", {}, {a, b}, 1.0);
  g.finalize();
  EXPECT_THROW(owner_compute_tasks(g, 2), Error);
}

TEST(Mapping, ClusteringMergesCoWrittenObjects) {
  TaskGraph g;
  const auto a = g.add_data("a", 1);
  const auto b = g.add_data("b", 1);
  const auto c = g.add_data("c", 1);
  g.add_task("T1", {}, {a, b}, 1.0);  // merges a, b
  g.add_task("T2", {}, {c}, 1.0);
  g.finalize();
  const Clustering cl = owner_compute_clusters(g);
  EXPECT_EQ(cl.cluster_of_data[a], cl.cluster_of_data[b]);
  EXPECT_NE(cl.cluster_of_data[a], cl.cluster_of_data[c]);
  EXPECT_EQ(cl.num_clusters, 2);
}

TEST(Mapping, LptBalancesLoad) {
  TaskGraph g;
  std::vector<graph::DataId> objs;
  for (int i = 0; i < 8; ++i) objs.push_back(g.add_data("d", 1));
  for (int i = 0; i < 8; ++i) {
    g.add_task("T", {}, {objs[i]}, 10.0 + i);
  }
  g.finalize();
  const Clustering cl = owner_compute_clusters(g);
  const auto procs = map_clusters_lpt(g, cl, 2);
  double load[2] = {0, 0};
  for (graph::TaskId t = 0; t < g.num_tasks(); ++t) {
    load[procs[t]] += g.task(t).flops;
  }
  EXPECT_LE(std::abs(load[0] - load[1]), 13.0);
}

TEST(Schedule, ValidateCatchesLocalOrderViolations) {
  Fixture f;
  Schedule s = schedule_rcp(f.graph, f.procs, 2, params2());
  EXPECT_NO_THROW(s.validate(f.graph));
  // Break it: swap two dependent tasks on one processor.
  for (auto& order : s.order) {
    for (std::size_t i = 0; i + 1 < order.size(); ++i) {
      for (const graph::Edge& e : f.graph.edges()) {
        if (e.redundant) continue;
        if (e.src == order[i] && e.dst == order[i + 1]) {
          std::swap(order[i], order[i + 1]);
          s.rebuild_index(f.graph.num_tasks());
          EXPECT_THROW(s.validate(f.graph), Error);
          return;
        }
      }
    }
  }
  FAIL() << "no adjacent dependent pair found to break";
}

TEST(Ordering, AllThreeProduceValidSchedules) {
  Fixture f;
  for (auto* make : {&schedule_rcp, &schedule_mpo}) {
    const Schedule s = (*make)(f.graph, f.procs, 2, params2());
    EXPECT_NO_THROW(s.validate(f.graph));
    EXPECT_GT(s.predicted_makespan, 0.0);
  }
  const Schedule dts = schedule_dts(f.graph, f.procs, 2, params2());
  EXPECT_NO_THROW(dts.validate(f.graph));
}

TEST(Ordering, BottomLevelsDecreaseAlongEdges) {
  Fixture f;
  const auto bl = bottom_levels(f.graph, f.procs, params2());
  for (const graph::Edge& e : f.graph.edges()) {
    if (e.redundant) continue;
    EXPECT_GT(bl[e.src], bl[e.dst]);
  }
}

TEST(Ordering, PredictedTimesRespectDependences) {
  Fixture f;
  const Schedule s = schedule_rcp(f.graph, f.procs, 2, params2());
  for (const graph::Edge& e : f.graph.edges()) {
    if (e.redundant) continue;
    EXPECT_GE(s.predicted_start[e.dst], s.predicted_finish[e.src] - 1e-9);
  }
  // Tasks on one processor do not overlap.
  for (ProcId p = 0; p < 2; ++p) {
    for (std::size_t i = 0; i + 1 < s.order[p].size(); ++i) {
      EXPECT_GE(s.predicted_start[s.order[p][i + 1]],
                s.predicted_finish[s.order[p][i]] - 1e-9);
    }
  }
}

TEST(Ordering, MemoryMetricsOrderedAcrossHeuristics) {
  // The paper's qualitative result on its own example: MIN_MEM(RCP) >=
  // MIN_MEM(MPO) >= MIN_MEM(DTS).
  Fixture f;
  const auto rcp = schedule_rcp(f.graph, f.procs, 2, params2());
  const auto mpo = schedule_mpo(f.graph, f.procs, 2, params2());
  const auto dts = schedule_dts(f.graph, f.procs, 2, params2());
  const auto mem = [&](const Schedule& s) {
    return analyze_liveness(f.graph, s).min_mem();
  };
  EXPECT_GE(mem(rcp), mem(mpo));
  EXPECT_GE(mem(mpo), mem(dts));
}

TEST(Ordering, DtsExecutesSliceBySlice) {
  Fixture f;
  const auto slices = graph::compute_slices(f.graph);
  const Schedule s = schedule_dts(f.graph, f.procs, 2, params2());
  for (ProcId p = 0; p < 2; ++p) {
    for (std::size_t i = 0; i + 1 < s.order[p].size(); ++i) {
      EXPECT_LE(slices.slice_of_task[s.order[p][i]],
                slices.slice_of_task[s.order[p][i + 1]]);
    }
  }
}

TEST(Ordering, SliceDemandAndMerging) {
  Fixture f;
  const auto slices = graph::compute_slices(f.graph);
  const auto demand = slice_volatile_demand(f.graph, slices, f.procs, 2);
  ASSERT_EQ(demand.size(), slices.num_slices());
  for (std::int64_t d : demand) EXPECT_GE(d, 0);
  // Infinite budget: everything merges into one slice.
  std::int32_t merged = 0;
  const auto one = merge_slices(f.graph, slices, f.procs, 2,
                                std::numeric_limits<std::int64_t>::max(),
                                &merged);
  EXPECT_EQ(merged, 1);
  EXPECT_TRUE(std::all_of(one.begin(), one.end(),
                          [](std::int32_t s) { return s == 0; }));
  // Zero budget: only zero-demand slices can merge (Figure 6 merges while
  // the running sum stays within budget), so every positive-demand slice
  // starts a new merged slice.
  const auto zero = merge_slices(f.graph, slices, f.procs, 2, 0, &merged);
  std::int64_t positive = 0;
  for (std::int64_t d : demand) positive += d > 0 ? 1 : 0;
  EXPECT_GE(merged, static_cast<std::int32_t>(positive));
  EXPECT_LE(static_cast<std::size_t>(merged), slices.num_slices());
  (void)zero;
}

TEST(Ordering, MergedDtsMakespanNotWorseThanUnmerged) {
  Fixture f;
  const Schedule plain = schedule_dts(f.graph, f.procs, 2, params2());
  const Schedule merged = schedule_dts(
      f.graph, f.procs, 2, params2(),
      std::optional<std::int64_t>(std::numeric_limits<std::int64_t>::max()));
  // With everything merged into one slice, DTS degenerates to pure critical
  // path ordering, which cannot be slower than slice-constrained DTS here.
  EXPECT_LE(merged.predicted_makespan, plain.predicted_makespan + 1e-9);
}

TEST(Ordering, SingleProcessorSchedulesEveryTask) {
  TaskGraph g = graph::make_paper_figure2_graph();
  for (DataId d = 0; d < g.num_data(); ++d) g.set_owner(d, 0);
  const auto procs = owner_compute_tasks(g, 1);
  const Schedule s = schedule_rcp(g, procs, 1, machine::MachineParams::cray_t3d(1));
  EXPECT_EQ(s.order[0].size(), static_cast<std::size_t>(g.num_tasks()));
  EXPECT_NO_THROW(s.validate(g));
}

TEST(Ordering, GanttRenders) {
  Fixture f;
  const Schedule s = schedule_rcp(f.graph, f.procs, 2, params2());
  const std::string gantt = s.gantt(f.graph);
  EXPECT_NE(gantt.find("P0 |"), std::string::npos);
  EXPECT_NE(gantt.find("makespan"), std::string::npos);
}

}  // namespace
}  // namespace rapid::sched
