#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "rapid/num/dispatch.hpp"
#include "rapid/num/kernels.hpp"
#include "rapid/num/reference.hpp"
#include "rapid/sparse/generators.hpp"
#include "rapid/support/check.hpp"
#include "rapid/support/rng.hpp"

namespace rapid::num {
namespace {

/// Forces a kernel dispatch level for one test scope; restores kAuto.
struct LevelGuard {
  explicit LevelGuard(KernelLevel level) { set_kernel_level(level); }
  ~LevelGuard() { set_kernel_level(KernelLevel::kAuto); }
};

std::vector<double> random_spd(std::int64_t n, Rng& rng) {
  // A = B * B^T + n * I, column-major.
  std::vector<double> b(static_cast<std::size_t>(n * n));
  for (auto& v : b) v = rng.next_double(-1.0, 1.0);
  std::vector<double> a(static_cast<std::size_t>(n * n), 0.0);
  for (std::int64_t k = 0; k < n; ++k) {
    for (std::int64_t j = 0; j < n; ++j) {
      for (std::int64_t i = 0; i < n; ++i) {
        a[j * n + i] += b[k * n + i] * b[k * n + j];
      }
    }
  }
  for (std::int64_t i = 0; i < n; ++i) a[i * n + i] += n;
  return a;
}

TEST(Potrf, ReconstructsSpdMatrix) {
  Rng rng(1);
  const std::int64_t n = 12;
  const std::vector<double> a = random_spd(n, rng);
  std::vector<double> l = a;
  potrf_lower(l.data(), n, n);
  // Zero upper, compute L L^T, compare.
  for (std::int64_t j = 0; j < n; ++j) {
    for (std::int64_t i = 0; i < j; ++i) l[j * n + i] = 0.0;
  }
  for (std::int64_t j = 0; j < n; ++j) {
    for (std::int64_t i = j; i < n; ++i) {
      double dot = 0.0;
      for (std::int64_t k = 0; k < n; ++k) {
        dot += l[k * n + i] * l[k * n + j];
      }
      EXPECT_NEAR(dot, a[j * n + i], 1e-9);
    }
  }
}

TEST(Potrf, RejectsIndefiniteMatrix) {
  std::vector<double> a = {1.0, 2.0, 2.0, 1.0};  // eigenvalues 3, -1
  EXPECT_THROW(potrf_lower(a.data(), 2, 2), Error);
}

TEST(TrsmRightLowerTranspose, SolvesAgainstReference) {
  Rng rng(2);
  const std::int64_t n = 8, m = 5;
  std::vector<double> l = random_spd(n, rng);
  potrf_lower(l.data(), n, n);
  std::vector<double> x_true(static_cast<std::size_t>(m * n));
  for (auto& v : x_true) v = rng.next_double(-2.0, 2.0);
  // B = X * L^T.
  std::vector<double> b(static_cast<std::size_t>(m * n), 0.0);
  for (std::int64_t j = 0; j < n; ++j) {
    for (std::int64_t k = 0; k <= j; ++k) {
      const double ljk = l[k * n + j];
      for (std::int64_t i = 0; i < m; ++i) {
        b[j * m + i] += x_true[k * m + i] * ljk;
      }
    }
  }
  trsm_right_lower_transpose(l.data(), n, b.data(), m, m, n);
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_NEAR(b[i], x_true[i], 1e-9);
  }
}

TEST(TrsmLeftUnitLower, SolvesAgainstReference) {
  Rng rng(3);
  const std::int64_t m = 7, n = 4;
  std::vector<double> l(static_cast<std::size_t>(m * m), 0.0);
  for (std::int64_t j = 0; j < m; ++j) {
    l[j * m + j] = 1.0;
    for (std::int64_t i = j + 1; i < m; ++i) {
      l[j * m + i] = rng.next_double(-1.0, 1.0);
    }
  }
  std::vector<double> x_true(static_cast<std::size_t>(m * n));
  for (auto& v : x_true) v = rng.next_double(-2.0, 2.0);
  // B = L * X (unit lower).
  std::vector<double> b(static_cast<std::size_t>(m * n), 0.0);
  for (std::int64_t j = 0; j < n; ++j) {
    for (std::int64_t k = 0; k < m; ++k) {
      const double xkj = x_true[j * m + k];
      b[j * m + k] += xkj;
      for (std::int64_t i = k + 1; i < m; ++i) {
        b[j * m + i] += l[k * m + i] * xkj;
      }
    }
  }
  trsm_left_unit_lower(l.data(), m, b.data(), m, m, n);
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_NEAR(b[i], x_true[i], 1e-9);
  }
}

TEST(Gemm, MinusAbtMatchesNaive) {
  Rng rng(4);
  const std::int64_t m = 6, n = 5, k = 7;
  std::vector<double> a(static_cast<std::size_t>(m * k));
  std::vector<double> b(static_cast<std::size_t>(n * k));
  std::vector<double> c(static_cast<std::size_t>(m * n));
  for (auto& v : a) v = rng.next_double(-1, 1);
  for (auto& v : b) v = rng.next_double(-1, 1);
  for (auto& v : c) v = rng.next_double(-1, 1);
  std::vector<double> expected = c;
  for (std::int64_t j = 0; j < n; ++j) {
    for (std::int64_t i = 0; i < m; ++i) {
      for (std::int64_t kk = 0; kk < k; ++kk) {
        expected[j * m + i] -= a[kk * m + i] * b[kk * n + j];
      }
    }
  }
  gemm_minus_abt(a.data(), m, b.data(), n, c.data(), m, m, n, k);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], expected[i], 1e-12);
  }
}

TEST(Gemm, MinusAbMatchesNaive) {
  Rng rng(5);
  const std::int64_t m = 4, n = 6, k = 3;
  std::vector<double> a(static_cast<std::size_t>(m * k));
  std::vector<double> b(static_cast<std::size_t>(k * n));
  std::vector<double> c(static_cast<std::size_t>(m * n));
  for (auto& v : a) v = rng.next_double(-1, 1);
  for (auto& v : b) v = rng.next_double(-1, 1);
  for (auto& v : c) v = rng.next_double(-1, 1);
  std::vector<double> expected = c;
  for (std::int64_t j = 0; j < n; ++j) {
    for (std::int64_t i = 0; i < m; ++i) {
      for (std::int64_t kk = 0; kk < k; ++kk) {
        expected[j * m + i] -= a[kk * m + i] * b[j * k + kk];
      }
    }
  }
  gemm_minus_ab(a.data(), m, b.data(), k, c.data(), m, m, n, k);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], expected[i], 1e-12);
  }
}

TEST(GetrfPanel, FactorsWithPivoting) {
  Rng rng(6);
  const std::int64_t m = 9, w = 4;
  std::vector<double> a(static_cast<std::size_t>(m * w));
  for (auto& v : a) v = rng.next_double(-1, 1);
  const std::vector<double> original = a;
  std::vector<std::int32_t> piv(static_cast<std::size_t>(w));
  getrf_panel(a.data(), m, m, w, piv.data());
  // Pivots are in range and the magnitudes of L are <= 1 (partial
  // pivoting's defining property).
  for (std::int64_t j = 0; j < w; ++j) {
    EXPECT_GE(piv[j], j);
    EXPECT_LT(piv[j], m);
    for (std::int64_t i = j + 1; i < m; ++i) {
      EXPECT_LE(std::abs(a[j * m + i]), 1.0 + 1e-12);
    }
  }
  // Reconstruct: P * original == L * U.
  std::vector<double> pa = original;
  for (std::int64_t j = 0; j < w; ++j) {
    if (piv[j] != j) {
      for (std::int64_t c = 0; c < w; ++c) {
        std::swap(pa[c * m + j], pa[c * m + piv[j]]);
      }
    }
  }
  for (std::int64_t j = 0; j < w; ++j) {
    for (std::int64_t i = 0; i < m; ++i) {
      double dot = 0.0;
      for (std::int64_t k = 0; k <= std::min<std::int64_t>(j, w - 1); ++k) {
        const double lik = (i == k) ? 1.0 : (i > k ? a[k * m + i] : 0.0);
        const double ukj = (k <= j) ? a[j * m + k] : 0.0;
        dot += lik * ukj;
      }
      EXPECT_NEAR(dot, pa[j * m + i], 1e-9) << i << "," << j;
    }
  }
}

TEST(GetrfPanel, SingularColumnThrows) {
  std::vector<double> a = {0.0, 0.0, 0.0, 1.0};  // first column all zero
  std::vector<std::int32_t> piv(2);
  EXPECT_THROW(getrf_panel(a.data(), 2, 2, 2, piv.data()), Error);
}

TEST(ApplyPivots, MatchesManualSwaps) {
  std::vector<double> a = {1, 2, 3, 4, 5, 6, 7, 8};  // 4x2 column-major
  const std::vector<std::int32_t> piv = {2, 3};
  apply_pivots(a.data(), 4, 2, /*row_offset=*/0, piv);
  // Step 0: swap rows 0,2 -> col0: 3,2,1,4; col1: 7,6,5,8.
  // Step 1: swap rows 1,3 -> col0: 3,4,1,2; col1: 7,8,5,6.
  EXPECT_EQ(a, (std::vector<double>{3, 4, 1, 2, 7, 8, 5, 6}));
}

TEST(DenseLu, ResidualIsTiny) {
  Rng rng(7);
  const sparse::CscMatrix a = sparse::random_banded(30, 6, 0.7, rng);
  const DenseLu lu = dense_lu(a.to_dense(), 30);
  EXPECT_LT(lu_residual(a, lu.lu, lu.piv), 1e-12);
}

TEST(DenseLu, SolveRecoversUnitSolution) {
  Rng rng(8);
  const sparse::CscMatrix a = sparse::random_banded(25, 5, 0.8, rng);
  const DenseLu lu = dense_lu(a.to_dense(), 25);
  const auto x = lu_solve(lu.lu, lu.piv, 25, sparse::rhs_for_unit_solution(a));
  std::vector<double> ones(25, 1.0);
  EXPECT_LT(max_rel_error(x, ones), 1e-10);
}

TEST(DenseCholesky, ResidualAndSolve) {
  const sparse::CscMatrix a = sparse::grid_laplacian_2d(5, 5);
  const auto l = dense_cholesky(a.to_dense(), 25);
  EXPECT_LT(cholesky_residual(a, l), 1e-13);
  const auto x = cholesky_solve(l, 25, sparse::rhs_for_unit_solution(a));
  std::vector<double> ones(25, 1.0);
  EXPECT_LT(max_rel_error(x, ones), 1e-11);
}

// ---- blocked-kernel property tests (dispatch.hpp) ------------------------
//
// The blocked microkernels reassociate sums, so "equality" with the scalar
// reference is ULP-bounded: |blocked - ref| <= tol * (k + 1) * (1 + |ref|)
// with tol a small multiple of machine epsilon. gemm/trsm are compared
// elementwise; potrf/getrf pivoting and summation order differ enough that
// the meaningful contract is the factorization residual at both levels.

constexpr double kUlp = 16.0 * 2.220446049250313e-16;  // 16 * DBL_EPSILON

void expect_close(const std::vector<double>& got,
                  const std::vector<double>& want, std::int64_t depth,
                  const char* what) {
  ASSERT_EQ(got.size(), want.size());
  const double tol = kUlp * static_cast<double>(depth + 1);
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_NEAR(got[i], want[i], tol * (1.0 + std::abs(want[i])))
        << what << " diverged at flat index " << i;
  }
}

std::vector<double> random_matrix(std::int64_t ld, std::int64_t cols,
                                  Rng& rng, bool zero = false) {
  std::vector<double> m(static_cast<std::size_t>(ld * cols));
  if (!zero) {
    for (auto& v : m) v = rng.next_double(-1.0, 1.0);
  }
  return m;
}

TEST(KernelDispatch, GemmMinusAbtBlockedMatchesRefRandomized) {
  Rng rng(41);
  for (int trial = 0; trial < 60; ++trial) {
    const std::int64_t m = 1 + static_cast<std::int64_t>(rng.next_below(70));
    const std::int64_t n = 1 + static_cast<std::int64_t>(rng.next_below(40));
    const std::int64_t k = 1 + static_cast<std::int64_t>(rng.next_below(50));
    // Leading dimensions strictly larger than the live block on some trials
    // (ld > rows), so strided panels and edge tiles are exercised.
    const std::int64_t lda = m + static_cast<std::int64_t>(rng.next_below(9));
    const std::int64_t ldb = n + static_cast<std::int64_t>(rng.next_below(9));
    const std::int64_t ldc = m + static_cast<std::int64_t>(rng.next_below(9));
    const bool zero_a = trial % 17 == 0;  // zero blocks stay exact
    const auto a = random_matrix(lda, k, rng, zero_a);
    const auto b = random_matrix(ldb, k, rng);
    const auto c0 = random_matrix(ldc, n, rng);
    std::vector<double> want = c0, got = c0;
    gemm_minus_abt_ref(a.data(), lda, b.data(), ldb, want.data(), ldc, m, n,
                       k);
    {
      LevelGuard guard(KernelLevel::kBlocked);
      gemm_minus_abt(a.data(), lda, b.data(), ldb, got.data(), ldc, m, n, k);
    }
    expect_close(got, want, k, "gemm_minus_abt");
  }
}

TEST(KernelDispatch, GemmMinusAbBlockedMatchesRefRandomized) {
  Rng rng(42);
  for (int trial = 0; trial < 60; ++trial) {
    const std::int64_t m = 1 + static_cast<std::int64_t>(rng.next_below(70));
    const std::int64_t n = 1 + static_cast<std::int64_t>(rng.next_below(40));
    const std::int64_t k = 1 + static_cast<std::int64_t>(rng.next_below(50));
    const std::int64_t lda = m + static_cast<std::int64_t>(rng.next_below(9));
    const std::int64_t ldb = k + static_cast<std::int64_t>(rng.next_below(9));
    const std::int64_t ldc = m + static_cast<std::int64_t>(rng.next_below(9));
    const bool zero_b = trial % 19 == 0;
    const auto a = random_matrix(lda, k, rng);
    const auto b = random_matrix(ldb, n, rng, zero_b);
    const auto c0 = random_matrix(ldc, n, rng);
    std::vector<double> want = c0, got = c0;
    gemm_minus_ab_ref(a.data(), lda, b.data(), ldb, want.data(), ldc, m, n,
                      k);
    {
      LevelGuard guard(KernelLevel::kBlocked);
      gemm_minus_ab(a.data(), lda, b.data(), ldb, got.data(), ldc, m, n, k);
    }
    expect_close(got, want, k, "gemm_minus_ab");
  }
}

TEST(KernelDispatch, TrsmRightBlockedMatchesRefRandomized) {
  Rng rng(43);
  for (int trial = 0; trial < 20; ++trial) {
    const std::int64_t n = 65 + static_cast<std::int64_t>(rng.next_below(40));
    const std::int64_t m = 8 + static_cast<std::int64_t>(rng.next_below(24));
    const std::int64_t ldl = n + static_cast<std::int64_t>(rng.next_below(5));
    const std::int64_t ldb = m + static_cast<std::int64_t>(rng.next_below(5));
    std::vector<double> l = random_matrix(ldl, n, rng);
    for (std::int64_t j = 0; j < n; ++j) l[j * ldl + j] += n;  // well-cond.
    const auto b0 = random_matrix(ldb, n, rng);
    std::vector<double> want = b0, got = b0;
    trsm_right_lower_transpose_ref(l.data(), ldl, want.data(), ldb, m, n);
    {
      LevelGuard guard(KernelLevel::kBlocked);
      trsm_right_lower_transpose(l.data(), ldl, got.data(), ldb, m, n);
    }
    expect_close(got, want, n, "trsm_right_lower_transpose");
  }
}

TEST(KernelDispatch, TrsmLeftBlockedMatchesRefRandomized) {
  Rng rng(44);
  for (int trial = 0; trial < 20; ++trial) {
    const std::int64_t m = 65 + static_cast<std::int64_t>(rng.next_below(40));
    const std::int64_t n = 4 + static_cast<std::int64_t>(rng.next_below(24));
    const std::int64_t ldl = m + static_cast<std::int64_t>(rng.next_below(5));
    const std::int64_t ldb = m + static_cast<std::int64_t>(rng.next_below(5));
    std::vector<double> l = random_matrix(ldl, m, rng);
    // Scale the multipliers so forward substitution cannot amplify: with
    // |l_ik| <= 1/(2m) the solution stays O(1) and the ULP bound is fair
    // (random unit-triangular solves are otherwise exponentially badly
    // conditioned in m).
    for (auto& v : l) v *= 0.5 / static_cast<double>(m);
    const auto b0 = random_matrix(ldb, n, rng);
    std::vector<double> want = b0, got = b0;
    trsm_left_unit_lower_ref(l.data(), ldl, want.data(), ldb, m, n);
    {
      LevelGuard guard(KernelLevel::kBlocked);
      trsm_left_unit_lower(l.data(), ldl, got.data(), ldb, m, n);
    }
    expect_close(got, want, m, "trsm_left_unit_lower");
  }
}

TEST(KernelDispatch, PotrfResidualTinyAtBothLevels) {
  Rng rng(45);
  const std::int64_t n = 97;  // past the blocked threshold, ragged edge
  const std::int64_t ld = n + 3;
  const std::vector<double> spd = random_spd(n, rng);
  std::vector<double> padded(static_cast<std::size_t>(ld * n), -7.0);
  for (std::int64_t j = 0; j < n; ++j) {
    for (std::int64_t i = 0; i < n; ++i) {
      padded[j * ld + i] = spd[j * n + i];
    }
  }
  for (const KernelLevel level :
       {KernelLevel::kRef, KernelLevel::kBlocked}) {
    std::vector<double> l = padded;
    {
      LevelGuard guard(level);
      potrf_lower(l.data(), ld, n);
    }
    // Reconstruction residual max |(L L^T - A)_ij| / n stays at round-off.
    double worst = 0.0;
    for (std::int64_t j = 0; j < n; ++j) {
      for (std::int64_t i = j; i < n; ++i) {
        double dot = 0.0;
        for (std::int64_t k = 0; k <= j; ++k) {
          dot += l[k * ld + i] * l[k * ld + j];
        }
        worst = std::max(worst, std::abs(dot - spd[j * n + i]));
      }
    }
    EXPECT_LT(worst / static_cast<double>(n), 1e-10)
        << "level " << kernel_level_name(level);
    // Rows past n in each column are padding the kernel must not touch.
    for (std::int64_t j = 0; j < n; ++j) {
      for (std::int64_t i = n; i < ld; ++i) {
        ASSERT_EQ(l[j * ld + i], -7.0);
      }
    }
  }
}

TEST(KernelDispatch, GetrfPanelResidualTinyAtBothLevels) {
  Rng rng(46);
  const std::int64_t m = 150, w = 96;  // blocked path (w >= 64, m >= 64)
  const std::int64_t ld = m + 2;
  std::vector<double> a0(static_cast<std::size_t>(ld * w));
  for (auto& v : a0) v = rng.next_double(-1.0, 1.0);
  for (const KernelLevel level :
       {KernelLevel::kRef, KernelLevel::kBlocked}) {
    std::vector<double> a = a0;
    std::vector<std::int32_t> piv(static_cast<std::size_t>(w));
    {
      LevelGuard guard(level);
      getrf_panel(a.data(), ld, m, w, piv.data());
    }
    // Pivots in range, |L| <= 1 (partial pivoting), and P A = L U.
    std::vector<double> pa = a0;
    for (std::int64_t j = 0; j < w; ++j) {
      ASSERT_GE(piv[j], j);
      ASSERT_LT(piv[j], m);
      if (piv[j] != j) {
        for (std::int64_t c = 0; c < w; ++c) {
          std::swap(pa[c * ld + j], pa[c * ld + piv[j]]);
        }
      }
    }
    double worst = 0.0;
    for (std::int64_t j = 0; j < w; ++j) {
      for (std::int64_t i = 0; i < m; ++i) {
        if (i > j) ASSERT_LE(std::abs(a[j * ld + i]), 1.0 + 1e-12);
        double dot = 0.0;
        const std::int64_t kmax = std::min<std::int64_t>(i, j);
        for (std::int64_t k = 0; k <= kmax; ++k) {
          const double lik = (i == k) ? 1.0 : a[k * ld + i];
          dot += lik * a[j * ld + k];
        }
        worst = std::max(worst, std::abs(dot - pa[j * ld + i]));
      }
    }
    EXPECT_LT(worst, 1e-9) << "level " << kernel_level_name(level);
  }
}

TEST(KernelDispatch, LevelRoundTripsAndNamesAreStable) {
  EXPECT_EQ(kernel_level(), KernelLevel::kAuto);
  set_kernel_level(KernelLevel::kRef);
  EXPECT_EQ(kernel_level(), KernelLevel::kRef);
  set_kernel_level(KernelLevel::kAuto);
  EXPECT_STREQ(kernel_level_name(KernelLevel::kAuto), "auto");
  EXPECT_STREQ(kernel_level_name(KernelLevel::kRef), "ref");
  EXPECT_STREQ(kernel_level_name(KernelLevel::kBlocked), "blocked");
}

TEST(Flops, CountsArePositiveAndMonotone) {
  EXPECT_GT(flops_potrf(8), 0.0);
  EXPECT_LT(flops_potrf(8), flops_potrf(16));
  EXPECT_DOUBLE_EQ(flops_gemm(2, 3, 4), 48.0);
  EXPECT_GT(flops_getrf_panel(100, 10), flops_getrf_panel(50, 10));
}

}  // namespace
}  // namespace rapid::num
