#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rapid/num/kernels.hpp"
#include "rapid/num/reference.hpp"
#include "rapid/sparse/generators.hpp"
#include "rapid/support/check.hpp"
#include "rapid/support/rng.hpp"

namespace rapid::num {
namespace {

std::vector<double> random_spd(std::int64_t n, Rng& rng) {
  // A = B * B^T + n * I, column-major.
  std::vector<double> b(static_cast<std::size_t>(n * n));
  for (auto& v : b) v = rng.next_double(-1.0, 1.0);
  std::vector<double> a(static_cast<std::size_t>(n * n), 0.0);
  for (std::int64_t k = 0; k < n; ++k) {
    for (std::int64_t j = 0; j < n; ++j) {
      for (std::int64_t i = 0; i < n; ++i) {
        a[j * n + i] += b[k * n + i] * b[k * n + j];
      }
    }
  }
  for (std::int64_t i = 0; i < n; ++i) a[i * n + i] += n;
  return a;
}

TEST(Potrf, ReconstructsSpdMatrix) {
  Rng rng(1);
  const std::int64_t n = 12;
  const std::vector<double> a = random_spd(n, rng);
  std::vector<double> l = a;
  potrf_lower(l.data(), n, n);
  // Zero upper, compute L L^T, compare.
  for (std::int64_t j = 0; j < n; ++j) {
    for (std::int64_t i = 0; i < j; ++i) l[j * n + i] = 0.0;
  }
  for (std::int64_t j = 0; j < n; ++j) {
    for (std::int64_t i = j; i < n; ++i) {
      double dot = 0.0;
      for (std::int64_t k = 0; k < n; ++k) {
        dot += l[k * n + i] * l[k * n + j];
      }
      EXPECT_NEAR(dot, a[j * n + i], 1e-9);
    }
  }
}

TEST(Potrf, RejectsIndefiniteMatrix) {
  std::vector<double> a = {1.0, 2.0, 2.0, 1.0};  // eigenvalues 3, -1
  EXPECT_THROW(potrf_lower(a.data(), 2, 2), Error);
}

TEST(TrsmRightLowerTranspose, SolvesAgainstReference) {
  Rng rng(2);
  const std::int64_t n = 8, m = 5;
  std::vector<double> l = random_spd(n, rng);
  potrf_lower(l.data(), n, n);
  std::vector<double> x_true(static_cast<std::size_t>(m * n));
  for (auto& v : x_true) v = rng.next_double(-2.0, 2.0);
  // B = X * L^T.
  std::vector<double> b(static_cast<std::size_t>(m * n), 0.0);
  for (std::int64_t j = 0; j < n; ++j) {
    for (std::int64_t k = 0; k <= j; ++k) {
      const double ljk = l[k * n + j];
      for (std::int64_t i = 0; i < m; ++i) {
        b[j * m + i] += x_true[k * m + i] * ljk;
      }
    }
  }
  trsm_right_lower_transpose(l.data(), n, b.data(), m, m, n);
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_NEAR(b[i], x_true[i], 1e-9);
  }
}

TEST(TrsmLeftUnitLower, SolvesAgainstReference) {
  Rng rng(3);
  const std::int64_t m = 7, n = 4;
  std::vector<double> l(static_cast<std::size_t>(m * m), 0.0);
  for (std::int64_t j = 0; j < m; ++j) {
    l[j * m + j] = 1.0;
    for (std::int64_t i = j + 1; i < m; ++i) {
      l[j * m + i] = rng.next_double(-1.0, 1.0);
    }
  }
  std::vector<double> x_true(static_cast<std::size_t>(m * n));
  for (auto& v : x_true) v = rng.next_double(-2.0, 2.0);
  // B = L * X (unit lower).
  std::vector<double> b(static_cast<std::size_t>(m * n), 0.0);
  for (std::int64_t j = 0; j < n; ++j) {
    for (std::int64_t k = 0; k < m; ++k) {
      const double xkj = x_true[j * m + k];
      b[j * m + k] += xkj;
      for (std::int64_t i = k + 1; i < m; ++i) {
        b[j * m + i] += l[k * m + i] * xkj;
      }
    }
  }
  trsm_left_unit_lower(l.data(), m, b.data(), m, m, n);
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_NEAR(b[i], x_true[i], 1e-9);
  }
}

TEST(Gemm, MinusAbtMatchesNaive) {
  Rng rng(4);
  const std::int64_t m = 6, n = 5, k = 7;
  std::vector<double> a(static_cast<std::size_t>(m * k));
  std::vector<double> b(static_cast<std::size_t>(n * k));
  std::vector<double> c(static_cast<std::size_t>(m * n));
  for (auto& v : a) v = rng.next_double(-1, 1);
  for (auto& v : b) v = rng.next_double(-1, 1);
  for (auto& v : c) v = rng.next_double(-1, 1);
  std::vector<double> expected = c;
  for (std::int64_t j = 0; j < n; ++j) {
    for (std::int64_t i = 0; i < m; ++i) {
      for (std::int64_t kk = 0; kk < k; ++kk) {
        expected[j * m + i] -= a[kk * m + i] * b[kk * n + j];
      }
    }
  }
  gemm_minus_abt(a.data(), m, b.data(), n, c.data(), m, m, n, k);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], expected[i], 1e-12);
  }
}

TEST(Gemm, MinusAbMatchesNaive) {
  Rng rng(5);
  const std::int64_t m = 4, n = 6, k = 3;
  std::vector<double> a(static_cast<std::size_t>(m * k));
  std::vector<double> b(static_cast<std::size_t>(k * n));
  std::vector<double> c(static_cast<std::size_t>(m * n));
  for (auto& v : a) v = rng.next_double(-1, 1);
  for (auto& v : b) v = rng.next_double(-1, 1);
  for (auto& v : c) v = rng.next_double(-1, 1);
  std::vector<double> expected = c;
  for (std::int64_t j = 0; j < n; ++j) {
    for (std::int64_t i = 0; i < m; ++i) {
      for (std::int64_t kk = 0; kk < k; ++kk) {
        expected[j * m + i] -= a[kk * m + i] * b[j * k + kk];
      }
    }
  }
  gemm_minus_ab(a.data(), m, b.data(), k, c.data(), m, m, n, k);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], expected[i], 1e-12);
  }
}

TEST(GetrfPanel, FactorsWithPivoting) {
  Rng rng(6);
  const std::int64_t m = 9, w = 4;
  std::vector<double> a(static_cast<std::size_t>(m * w));
  for (auto& v : a) v = rng.next_double(-1, 1);
  const std::vector<double> original = a;
  std::vector<std::int32_t> piv(static_cast<std::size_t>(w));
  getrf_panel(a.data(), m, m, w, piv.data());
  // Pivots are in range and the magnitudes of L are <= 1 (partial
  // pivoting's defining property).
  for (std::int64_t j = 0; j < w; ++j) {
    EXPECT_GE(piv[j], j);
    EXPECT_LT(piv[j], m);
    for (std::int64_t i = j + 1; i < m; ++i) {
      EXPECT_LE(std::abs(a[j * m + i]), 1.0 + 1e-12);
    }
  }
  // Reconstruct: P * original == L * U.
  std::vector<double> pa = original;
  for (std::int64_t j = 0; j < w; ++j) {
    if (piv[j] != j) {
      for (std::int64_t c = 0; c < w; ++c) {
        std::swap(pa[c * m + j], pa[c * m + piv[j]]);
      }
    }
  }
  for (std::int64_t j = 0; j < w; ++j) {
    for (std::int64_t i = 0; i < m; ++i) {
      double dot = 0.0;
      for (std::int64_t k = 0; k <= std::min<std::int64_t>(j, w - 1); ++k) {
        const double lik = (i == k) ? 1.0 : (i > k ? a[k * m + i] : 0.0);
        const double ukj = (k <= j) ? a[j * m + k] : 0.0;
        dot += lik * ukj;
      }
      EXPECT_NEAR(dot, pa[j * m + i], 1e-9) << i << "," << j;
    }
  }
}

TEST(GetrfPanel, SingularColumnThrows) {
  std::vector<double> a = {0.0, 0.0, 0.0, 1.0};  // first column all zero
  std::vector<std::int32_t> piv(2);
  EXPECT_THROW(getrf_panel(a.data(), 2, 2, 2, piv.data()), Error);
}

TEST(ApplyPivots, MatchesManualSwaps) {
  std::vector<double> a = {1, 2, 3, 4, 5, 6, 7, 8};  // 4x2 column-major
  const std::vector<std::int32_t> piv = {2, 3};
  apply_pivots(a.data(), 4, 2, /*row_offset=*/0, piv);
  // Step 0: swap rows 0,2 -> col0: 3,2,1,4; col1: 7,6,5,8.
  // Step 1: swap rows 1,3 -> col0: 3,4,1,2; col1: 7,8,5,6.
  EXPECT_EQ(a, (std::vector<double>{3, 4, 1, 2, 7, 8, 5, 6}));
}

TEST(DenseLu, ResidualIsTiny) {
  Rng rng(7);
  const sparse::CscMatrix a = sparse::random_banded(30, 6, 0.7, rng);
  const DenseLu lu = dense_lu(a.to_dense(), 30);
  EXPECT_LT(lu_residual(a, lu.lu, lu.piv), 1e-12);
}

TEST(DenseLu, SolveRecoversUnitSolution) {
  Rng rng(8);
  const sparse::CscMatrix a = sparse::random_banded(25, 5, 0.8, rng);
  const DenseLu lu = dense_lu(a.to_dense(), 25);
  const auto x = lu_solve(lu.lu, lu.piv, 25, sparse::rhs_for_unit_solution(a));
  std::vector<double> ones(25, 1.0);
  EXPECT_LT(max_rel_error(x, ones), 1e-10);
}

TEST(DenseCholesky, ResidualAndSolve) {
  const sparse::CscMatrix a = sparse::grid_laplacian_2d(5, 5);
  const auto l = dense_cholesky(a.to_dense(), 25);
  EXPECT_LT(cholesky_residual(a, l), 1e-13);
  const auto x = cholesky_solve(l, 25, sparse::rhs_for_unit_solution(a));
  std::vector<double> ones(25, 1.0);
  EXPECT_LT(max_rel_error(x, ones), 1e-11);
}

TEST(Flops, CountsArePositiveAndMonotone) {
  EXPECT_GT(flops_potrf(8), 0.0);
  EXPECT_LT(flops_potrf(8), flops_potrf(16));
  EXPECT_DOUBLE_EQ(flops_gemm(2, 3, 4), 48.0);
  EXPECT_GT(flops_getrf_panel(100, 10), flops_getrf_panel(50, 10));
}

}  // namespace
}  // namespace rapid::num
