// Newton's method for a sparse nonlinear system — the paper's §2 mentions
// using RAPID to parallelize exactly this. The key property on display is
// the inspector/executor split for iterative computation: the Jacobian's
// sparsity is invariant across Newton iterations, so the task graph,
// schedule, liveness tables and run plan are built ONCE; every iteration
// only refreshes the numeric values (LuApp::update_values) and re-executes
// the same plan on real threads.
//
// System: F(x) = A·x + eps·x³ − b, Jacobian J(x) = A + 3·eps·diag(x²),
// with A an unsymmetric convection-diffusion operator. b is chosen so the
// exact solution is the all-ones vector.
//
// Run:  ./newton_method [--nx 12] [--ny 12] [--block 8] [--procs 4]
#include <cmath>
#include <cstdio>

#include "rapid/num/lu_app.hpp"
#include "rapid/num/reference.hpp"
#include "rapid/rt/threaded_executor.hpp"
#include "rapid/sched/liveness.hpp"
#include "rapid/sched/mapping.hpp"
#include "rapid/sched/ordering.hpp"
#include "rapid/sparse/coo.hpp"
#include "rapid/sparse/generators.hpp"
#include "rapid/sparse/ordering.hpp"
#include "rapid/support/flags.hpp"
#include "rapid/support/rng.hpp"
#include "rapid/support/stopwatch.hpp"

using namespace rapid;

namespace {

constexpr double kEps = 0.2;

/// J(x) = A + 3·eps·diag(x²), on A's pattern (A has a full diagonal).
sparse::CscMatrix jacobian(const sparse::CscMatrix& a,
                           const std::vector<double>& x) {
  sparse::CscMatrix j = a;
  for (sparse::Index col = 0; col < j.n_cols(); ++col) {
    for (sparse::Index k = j.pattern.col_ptr[col];
         k < j.pattern.col_ptr[col + 1]; ++k) {
      if (j.pattern.row_idx[k] == col) {
        j.values[k] += 3.0 * kEps * x[col] * x[col];
      }
    }
  }
  return j;
}

std::vector<double> residual(const sparse::CscMatrix& a,
                             const std::vector<double>& x,
                             const std::vector<double>& b) {
  std::vector<double> r = a.multiply(x);
  for (std::size_t i = 0; i < r.size(); ++i) {
    r[i] += kEps * x[i] * x[i] * x[i] - b[i];
  }
  return r;
}

double norm_inf(const std::vector<double>& v) {
  double worst = 0.0;
  for (double value : v) worst = std::max(worst, std::abs(value));
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.define("nx", "12", "grid width");
  flags.define("ny", "12", "grid height");
  flags.define("block", "8", "column-block width");
  flags.define("procs", "4", "number of simulated processors (threads)");
  flags.parse(argc, argv);
  if (flags.help_requested()) return 0;
  const auto nx = static_cast<sparse::Index>(flags.get_int("nx"));
  const auto ny = static_cast<sparse::Index>(flags.get_int("ny"));
  const auto block = static_cast<sparse::Index>(flags.get_int("block"));
  const int procs = static_cast<int>(flags.get_int("procs"));

  std::printf("== Newton's method on F(x) = A x + %.2g x^3 - b, %dx%d grid ==\n",
              kEps, nx, ny);
  Rng rng(5);
  sparse::CscMatrix a = sparse::convection_diffusion_2d(nx, ny, 0.1, rng);
  // Shift to diagonal dominance: the raw convection operator can have
  // ||A^-1|| ~ 1e3, which amplifies the cubic term and puts x = 0 outside
  // Newton's basin. The shifted operator keeps the unsymmetric structure.
  a = sparse::make_diagonally_dominant(a);
  a = a.permuted_symmetric(sparse::nested_dissection_2d(nx, ny));
  const sparse::Index n = a.n_cols();
  // b = F(ones) so x* = ones.
  std::vector<double> ones(static_cast<std::size_t>(n), 1.0);
  std::vector<double> b = a.multiply(ones);
  for (double& v : b) v += kEps;

  // Inspector, once: structure from the Jacobian's (invariant) pattern.
  Stopwatch inspector;
  auto app = num::LuApp::build(jacobian(a, ones), block, procs);
  const auto assignment = sched::owner_compute_tasks(app.graph(), procs);
  const auto params = machine::MachineParams::cray_t3d(procs);
  const auto schedule =
      sched::schedule_mpo(app.graph(), assignment, procs, params);
  const rt::RunPlan plan = rt::build_run_plan(app.graph(), schedule);
  const auto capacity =
      sched::analyze_liveness(app.graph(), schedule).min_mem();
  std::printf("inspector (once): %d tasks, %d column blocks — %.1f ms\n",
              app.graph().num_tasks(), app.graph().num_data(),
              inspector.millis());

  std::vector<double> x(static_cast<std::size_t>(n), 0.0);  // initial guess
  double exec_ms_total = 0.0;
  for (int iter = 1; iter <= 20; ++iter) {
    const auto f = residual(a, x, b);
    const double fnorm = norm_inf(f);
    std::printf("iter %2d: |F(x)|_inf = %.3e", iter, fnorm);
    if (fnorm < 1e-11) {
      std::printf("  converged\n");
      break;
    }
    // Executor, each iteration: refresh values, factorize J, solve J dx=-F.
    app.update_values(jacobian(a, x));
    rt::RunConfig config;
    config.capacity_per_proc = capacity;
    rt::ThreadedExecutor exec(plan, config, app.make_init(), app.make_body());
    Stopwatch executor;
    const rt::RunReport report = exec.run();
    exec_ms_total += executor.millis();
    if (!report.executable) {
      std::printf("\nnon-executable: %s\n", report.failure.c_str());
      return 1;
    }
    const auto lu = app.extract(exec);
    std::vector<double> rhs(f.size());
    for (std::size_t i = 0; i < f.size(); ++i) rhs[i] = -f[i];
    const auto dx = num::lu_solve(lu.lu, lu.piv, n, std::move(rhs));
    // Damped Newton: backtrack until the residual actually decreases.
    double step = 1.0;
    std::vector<double> trial(x.size());
    int backtracks = 0;
    while (true) {
      for (std::size_t i = 0; i < x.size(); ++i) {
        trial[i] = x[i] + step * dx[i];
      }
      if (norm_inf(residual(a, trial, b)) < fnorm || step < 1e-6) break;
      step *= 0.5;
      ++backtracks;
    }
    x = trial;
    std::printf("  (factorize+solve %.1f ms, avg #MAPs %.2f, step %.3g)\n",
                executor.millis(), report.avg_maps(), step);
    (void)backtracks;
  }
  double err = 0.0;
  for (double xi : x) err = std::max(err, std::abs(xi - 1.0));
  std::printf("final max|x_i - 1| = %.3e (%s); executor total %.1f ms\n", err,
              err < 1e-9 ? "OK" : "FAILED", exec_ms_total);
  return err < 1e-9 ? 0 : 1;
}
