// Sparse Cholesky factorization through the full RAPID-97 stack: generate a
// structural-engineering-style SPD matrix, build the 2-D block task graph,
// schedule with MPO, execute on real threads under a tight memory cap, and
// verify the factor numerically.
//
// Run:  ./sparse_cholesky [--n 24] [--block 8] [--procs 4]
#include <cstdio>

#include "rapid/num/cholesky_app.hpp"
#include "rapid/num/reference.hpp"
#include "rapid/rt/threaded_executor.hpp"
#include "rapid/sched/liveness.hpp"
#include "rapid/sched/mapping.hpp"
#include "rapid/sched/ordering.hpp"
#include "rapid/sparse/generators.hpp"
#include "rapid/sparse/ordering.hpp"
#include "rapid/support/flags.hpp"
#include "rapid/support/str.hpp"

using namespace rapid;

int main(int argc, char** argv) {
  Flags flags;
  flags.define("n", "24", "grid side (matrix dimension = n*n)");
  flags.define("block", "12", "square block size");
  flags.define("procs", "4", "number of simulated processors (threads)");
  flags.parse(argc, argv);
  if (flags.help_requested()) return 0;
  const auto n = static_cast<sparse::Index>(flags.get_int("n"));
  const auto block = static_cast<sparse::Index>(flags.get_int("block"));
  const int procs = static_cast<int>(flags.get_int("procs"));

  std::printf("== sparse Cholesky on a %dx%d grid Laplacian (n=%d) ==\n", n, n,
              n * n);
  sparse::CscMatrix a = sparse::grid_laplacian_2d(n, n);
  a = a.permuted_symmetric(sparse::nested_dissection_2d(n, n));
  std::printf("nnz(A) = %d\n", a.nnz());

  auto app = num::CholeskyApp::build(std::move(a), block, procs);
  std::printf("factor blocks (objects): %d, tasks: %d, S1 = %s\n",
              app.graph().num_data(), app.graph().num_tasks(),
              human_bytes(static_cast<double>(
                              app.graph().sequential_space()))
                  .c_str());

  const auto params = machine::MachineParams::cray_t3d(procs);
  const auto assignment = sched::owner_compute_tasks(app.graph(), procs);
  const auto schedule =
      sched::schedule_mpo(app.graph(), assignment, procs, params);
  const auto liveness = sched::analyze_liveness(app.graph(), schedule);
  std::printf("MPO schedule: MIN_MEM %s, TOT %s  (S1/p = %s)\n",
              human_bytes(static_cast<double>(liveness.min_mem())).c_str(),
              human_bytes(static_cast<double>(liveness.tot_mem())).c_str(),
              human_bytes(static_cast<double>(
                              app.graph().sequential_space()) /
                          procs)
                  .c_str());

  const rt::RunPlan plan = rt::build_run_plan(app.graph(), schedule);
  rt::RunConfig config;
  config.params = params;
  config.capacity_per_proc = liveness.min_mem();  // tightest possible
  rt::ThreadedExecutor exec(plan, config, app.make_init(), app.make_body());
  const rt::RunReport report = exec.run();
  if (!report.executable) {
    std::printf("non-executable: %s\n", report.failure.c_str());
    return 1;
  }
  std::printf(
      "executed on %d threads at capacity = MIN_MEM: %.2f ms wall, avg "
      "#MAPs %.2f,\n  %lld content messages (%s), %lld address packages\n",
      procs, report.parallel_time_us / 1e3, report.avg_maps(),
      static_cast<long long>(report.content_messages),
      human_bytes(static_cast<double>(report.content_bytes)).c_str(),
      static_cast<long long>(report.addr_packages));

  const auto l = app.extract_l_dense(exec);
  const double residual = num::cholesky_residual(app.matrix(), l);
  std::printf("residual |A - L*L^T|_F / |A|_F = %.3e  (%s)\n", residual,
              residual < 1e-10 ? "OK" : "FAILED");
  // Solve A x = b for b = A*ones and report the solution error.
  const auto x = num::cholesky_solve(
      l, app.matrix().n_cols(), sparse::rhs_for_unit_solution(app.matrix()));
  double worst = 0.0;
  for (double xi : x) worst = std::max(worst, std::abs(xi - 1.0));
  std::printf("solve error max|x_i - 1| = %.3e\n", worst);
  return residual < 1e-10 ? 0 : 1;
}
