// Quickstart: the whole API on the paper's Figure 2 example.
//
//  1. Register data objects and tasks (the inspector derives dependences).
//  2. Map objects cyclically, tasks by owner-compute.
//  3. Order with RCP / MPO / DTS and compare MIN_MEM and predicted time.
//  4. Execute under a tight memory capacity on the simulated machine and on
//     real threads, watching the MAPs do their work.
//
// Run:  ./quickstart
#include <cstdio>
#include <cstring>

#include "rapid/graph/dcg.hpp"
#include "rapid/rt/sim_executor.hpp"
#include "rapid/rt/threaded_executor.hpp"
#include "rapid/sched/liveness.hpp"
#include "rapid/sched/mapping.hpp"
#include "rapid/sched/ordering.hpp"
#include "rapid/support/str.hpp"
#include "rapid/support/table.hpp"

using namespace rapid;

int main() {
  std::printf("== RAPID-97 quickstart: the paper's Figure 2 DAG ==\n\n");

  // --- 1. Build the task graph through the public API. -------------------
  // make_paper_figure2_graph() registers 11 unit-size objects and 20 tasks;
  // here we rebuild it with 8-byte objects so the threaded run can hold an
  // int64 counter per object.
  graph::TaskGraph g;
  const graph::TaskGraph proto = graph::make_paper_figure2_graph();
  for (graph::DataId d = 0; d < proto.num_data(); ++d) {
    g.add_data(proto.data(d).name, 8, proto.data(d).owner);
  }
  for (graph::TaskId t = 0; t < proto.num_tasks(); ++t) {
    const auto& task = proto.task(t);
    g.add_task(task.name, task.reads, task.writes, task.flops,
               task.commute_group);
  }
  g.finalize();
  std::printf("tasks: %d, objects: %d, S1 = %lld bytes\n", g.num_tasks(),
              g.num_data(), static_cast<long long>(g.sequential_space()));
  int true_edges = 0, sync_edges = 0, redundant = 0;
  for (const auto& e : g.edges()) {
    if (e.redundant) {
      ++redundant;
    } else if (e.kind == graph::DepKind::kTrue) {
      ++true_edges;
    } else {
      ++sync_edges;
    }
  }
  std::printf(
      "dependences: %d true, %d kept anti/output (sync), %d subsumed\n\n",
      true_edges, sync_edges, redundant);

  // --- 2. Map and order. --------------------------------------------------
  const int p = 2;
  const auto params = machine::MachineParams::cray_t3d(p);
  const auto assignment = sched::owner_compute_tasks(g, p);

  TextTable cmp({"ordering", "MIN_MEM", "TOT", "predicted time (us)"});
  struct Named {
    const char* name;
    sched::Schedule schedule;
  };
  std::vector<Named> schedules;
  schedules.push_back({"RCP", sched::schedule_rcp(g, assignment, p, params)});
  schedules.push_back({"MPO", sched::schedule_mpo(g, assignment, p, params)});
  schedules.push_back({"DTS", sched::schedule_dts(g, assignment, p, params)});
  for (const auto& s : schedules) {
    const auto liveness = sched::analyze_liveness(g, s.schedule);
    cmp.add_row({s.name, std::to_string(liveness.min_mem()),
                 std::to_string(liveness.tot_mem()),
                 fixed(s.schedule.predicted_makespan, 1)});
  }
  std::fputs(cmp.render().c_str(), stdout);
  std::printf("\nDTS slices (Figure 5): ");
  const auto slices = graph::compute_slices(g);
  for (const auto& slice : slices.slices) {
    std::printf("{");
    for (std::size_t i = 0; i < slice.objects.size(); ++i) {
      std::printf("%s%s", i ? "," : "", g.data(slice.objects[i]).name.c_str());
    }
    std::printf("} ");
  }
  std::printf("\n\nRCP Gantt chart (predicted):\n%s\n",
              schedules[0].schedule.gantt(g).c_str());

  // --- 3. Execute under a tight capacity (Figure 3's situation). ---------
  const auto& dts = schedules[2].schedule;
  const rt::RunPlan plan = rt::build_run_plan(g, dts);
  const auto liveness = sched::analyze_liveness(g, dts);
  rt::RunConfig config;
  config.params = params;
  config.capacity_per_proc = liveness.min_mem();
  const rt::RunReport sim = rt::simulate(plan, config);
  std::printf(
      "simulated DTS run at capacity=MIN_MEM=%lld: time %.1f us, avg #MAPs "
      "%.2f,\n  %lld content msgs, %lld address packages, %lld suspended "
      "sends\n",
      static_cast<long long>(liveness.min_mem()), sim.parallel_time_us,
      sim.avg_maps(), static_cast<long long>(sim.content_messages),
      static_cast<long long>(sim.addr_packages),
      static_cast<long long>(sim.suspended_sends));
  config.capacity_per_proc = liveness.min_mem() - 1;
  std::printf("one byte less is non-executable: %s\n\n",
              rt::simulate(plan, config).executable ? "NO (bug!)" : "yes");

  // --- 4. Real threads computing real values. -----------------------------
  config.capacity_per_proc = liveness.min_mem();
  rt::ThreadedExecutor exec(
      plan, config,
      [](graph::DataId, std::span<std::byte> buf) {
        std::memset(buf.data(), 0, buf.size());
      },
      [&g](graph::TaskId t, rt::ObjectResolver& resolver) {
        // T[j] producers set j+1; T[j] updates double; T[i,j] adds d_i.
        const auto& task = g.task(t);
        const graph::DataId target = task.writes.front();
        auto out = resolver.write(target);
        std::int64_t v = 0;
        std::memcpy(&v, out.data(), sizeof(v));
        if (task.reads.empty()) {
          v = target + 1;
        } else if (task.reads.front() == target) {
          v *= 2;
        } else {
          const auto in = resolver.read(task.reads.front());
          std::int64_t r = 0;
          std::memcpy(&r, in.data(), sizeof(r));
          v += r;
        }
        std::memcpy(out.data(), &v, sizeof(v));
      });
  const rt::RunReport real = exec.run();
  std::printf("threaded run: executable=%d, %.2f ms wall, avg #MAPs %.2f\n",
              real.executable, real.parallel_time_us / 1e3, real.avg_maps());
  std::printf("final object values:");
  for (graph::DataId d = 0; d < g.num_data(); ++d) {
    const auto bytes = exec.read_object(d);
    std::int64_t v = 0;
    std::memcpy(&v, bytes.data(), sizeof(v));
    std::printf(" %s=%lld", g.data(d).name.c_str(),
                static_cast<long long>(v));
  }
  std::printf("\n");
  return 0;
}
