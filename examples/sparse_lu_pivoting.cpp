// Sparse LU with partial pivoting — the paper's "open problem" workload —
// through the full stack: unsymmetric convection-diffusion matrix, static
// symbolic factorization (pivot-safe row-merge bound), 1-D column-block
// task graph, DTS schedule with slice merging for a known capacity, real
// threaded execution, numerical verification of PA = LU.
//
// Run:  ./sparse_lu_pivoting [--nx 14] [--ny 13] [--block 8] [--procs 4]
#include <cstdio>

#include "rapid/num/lu_app.hpp"
#include "rapid/num/reference.hpp"
#include "rapid/rt/threaded_executor.hpp"
#include "rapid/sched/liveness.hpp"
#include "rapid/sched/mapping.hpp"
#include "rapid/sched/ordering.hpp"
#include "rapid/sparse/generators.hpp"
#include "rapid/sparse/ordering.hpp"
#include "rapid/support/flags.hpp"
#include "rapid/support/rng.hpp"
#include "rapid/support/str.hpp"

using namespace rapid;

int main(int argc, char** argv) {
  Flags flags;
  flags.define("nx", "14", "grid width");
  flags.define("ny", "13", "grid height");
  flags.define("block", "8", "column-block width");
  flags.define("procs", "4", "number of simulated processors (threads)");
  flags.define("seed", "42", "wind seed for the convection field");
  flags.parse(argc, argv);
  if (flags.help_requested()) return 0;
  const auto nx = static_cast<sparse::Index>(flags.get_int("nx"));
  const auto ny = static_cast<sparse::Index>(flags.get_int("ny"));
  const auto block = static_cast<sparse::Index>(flags.get_int("block"));
  const int procs = static_cast<int>(flags.get_int("procs"));

  std::printf("== sparse LU with partial pivoting, %dx%d convection grid ==\n",
              nx, ny);
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));
  sparse::CscMatrix a = sparse::convection_diffusion_2d(nx, ny, 0.1, rng);
  a = a.permuted_symmetric(sparse::nested_dissection_2d(nx, ny));
  std::printf("n = %d, nnz(A) = %d (structurally unsymmetric)\n", a.n_cols(),
              a.nnz());

  auto app = num::LuApp::build(std::move(a), block, procs);
  std::printf("column blocks: %d, tasks: %d, S1 = %s (static pivot-safe "
              "bound)\n",
              app.graph().num_data(), app.graph().num_tasks(),
              human_bytes(static_cast<double>(
                              app.graph().sequential_space()))
                  .c_str());

  const auto params = machine::MachineParams::cray_t3d(procs);
  const auto assignment = sched::owner_compute_tasks(app.graph(), procs);
  // DTS with slice merging: assume we know the capacity we are targeting.
  const auto probe =
      sched::schedule_dts(app.graph(), assignment, procs, params);
  const auto probe_liveness = sched::analyze_liveness(app.graph(), probe);
  std::int64_t max_perm = 0;
  for (const auto& pl : probe_liveness.procs) {
    max_perm = std::max(max_perm, pl.permanent_bytes);
  }
  const std::int64_t capacity =
      probe_liveness.min_mem() + probe_liveness.min_mem() / 4;
  const auto schedule = sched::schedule_dts(
      app.graph(), assignment, procs, params,
      std::optional<std::int64_t>(capacity - max_perm));
  const auto liveness = sched::analyze_liveness(app.graph(), schedule);
  std::printf("DTS+merge schedule at capacity %s: MIN_MEM %s, TOT %s\n",
              human_bytes(static_cast<double>(capacity)).c_str(),
              human_bytes(static_cast<double>(liveness.min_mem())).c_str(),
              human_bytes(static_cast<double>(liveness.tot_mem())).c_str());

  const rt::RunPlan plan = rt::build_run_plan(app.graph(), schedule);
  rt::RunConfig config;
  config.params = params;
  config.capacity_per_proc = capacity;
  rt::ThreadedExecutor exec(plan, config, app.make_init(), app.make_body());
  const rt::RunReport report = exec.run();
  if (!report.executable) {
    std::printf("non-executable: %s\n", report.failure.c_str());
    return 1;
  }
  std::printf("executed on %d threads: %.2f ms wall, avg #MAPs %.2f\n", procs,
              report.parallel_time_us / 1e3, report.avg_maps());

  const auto extracted = app.extract(exec);
  int swaps = 0;
  for (sparse::Index j = 0;
       j < static_cast<sparse::Index>(extracted.piv.size()); ++j) {
    swaps += extracted.piv[j] != j;
  }
  const double residual =
      num::lu_residual(app.matrix(), extracted.lu, extracted.piv);
  std::printf("partial pivoting performed %d row interchanges\n", swaps);
  std::printf("residual |P*A - L*U|_F / |A|_F = %.3e  (%s)\n", residual,
              residual < 1e-10 ? "OK" : "FAILED");
  const auto x = num::lu_solve(extracted.lu, extracted.piv,
                               app.matrix().n_cols(),
                               sparse::rhs_for_unit_solution(app.matrix()));
  double worst = 0.0;
  for (double xi : x) worst = std::max(worst, std::abs(xi - 1.0));
  std::printf("solve error max|x_i - 1| = %.3e\n", worst);
  return residual < 1e-10 ? 0 : 1;
}
