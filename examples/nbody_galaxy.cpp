// N-body galaxy simulation through the runtime — the paper's other
// motivating application class. Demonstrates the inspector/executor split:
// the task graph, schedule, liveness tables and run plan are built ONCE for
// T unrolled timesteps (the dependence structure is invariant), then
// executed on real threads under a tight memory cap; the inspector cost is
// amortized over every timestep.
//
// Run:  ./nbody_galaxy [--width 8] [--height 8] [--particles 16]
//                      [--steps 4] [--procs 4]
#include <cstdio>

#include "rapid/num/nbody_app.hpp"
#include "rapid/num/reference.hpp"
#include "rapid/rt/threaded_executor.hpp"
#include "rapid/sched/liveness.hpp"
#include "rapid/sched/mapping.hpp"
#include "rapid/sched/ordering.hpp"
#include "rapid/support/flags.hpp"
#include "rapid/support/stopwatch.hpp"
#include "rapid/support/str.hpp"

using namespace rapid;

int main(int argc, char** argv) {
  Flags flags;
  flags.define("width", "8", "cells per row");
  flags.define("height", "8", "rows of cells");
  flags.define("particles", "16", "particles per cell");
  flags.define("steps", "4", "timesteps unrolled into the task graph");
  flags.define("procs", "4", "number of simulated processors (threads)");
  flags.parse(argc, argv);
  if (flags.help_requested()) return 0;

  num::NBodyConfig config;
  config.width = static_cast<std::int32_t>(flags.get_int("width"));
  config.height = static_cast<std::int32_t>(flags.get_int("height"));
  config.particles_per_cell =
      static_cast<std::int32_t>(flags.get_int("particles"));
  config.timesteps = static_cast<std::int32_t>(flags.get_int("steps"));
  const int procs = static_cast<int>(flags.get_int("procs"));

  std::printf("== N-body: %dx%d cells, %d particles/cell, %d timesteps ==\n",
              config.width, config.height, config.particles_per_cell,
              config.timesteps);

  // Inspector stage: graph + schedule + liveness + plan, once.
  Stopwatch inspector;
  auto app = num::NBodyApp::build(config, procs);
  const auto assignment = sched::owner_compute_tasks(app.graph(), procs);
  const auto params = machine::MachineParams::cray_t3d(procs);
  const auto schedule =
      sched::schedule_mpo(app.graph(), assignment, procs, params);
  const rt::RunPlan plan = rt::build_run_plan(app.graph(), schedule);
  const auto liveness = sched::analyze_liveness(app.graph(), schedule);
  const double inspector_ms = inspector.millis();
  std::printf(
      "inspector: %d tasks, %d objects, S1 = %s — built in %.1f ms "
      "(amortized %.2f ms/timestep)\n",
      app.graph().num_tasks(), app.graph().num_data(),
      human_bytes(static_cast<double>(app.graph().sequential_space()))
          .c_str(),
      inspector_ms, inspector_ms / config.timesteps);
  std::printf("MIN_MEM %s, TOT %s per processor\n",
              human_bytes(static_cast<double>(liveness.min_mem())).c_str(),
              human_bytes(static_cast<double>(liveness.tot_mem())).c_str());

  // Executor stage: real threads under a tight capacity.
  rt::RunConfig run_config;
  run_config.capacity_per_proc = liveness.min_mem() + liveness.min_mem() / 8;
  rt::ThreadedExecutor exec(plan, run_config, app.make_init(),
                            app.make_body());
  Stopwatch executor;
  const rt::RunReport report = exec.run();
  if (!report.executable) {
    std::printf("non-executable: %s\n", report.failure.c_str());
    return 1;
  }
  std::printf(
      "executor: %.1f ms on %d threads (%.2f ms/timestep), avg #MAPs %.2f,\n"
      "  %lld content messages (%s) — particle sets are re-shipped every "
      "step\n",
      executor.millis(), procs, executor.millis() / config.timesteps,
      report.avg_maps(), static_cast<long long>(report.content_messages),
      human_bytes(static_cast<double>(report.content_bytes)).c_str());

  // Verify against the sequential reference.
  const auto expected = app.reference_run();
  const auto actual = app.extract_particles(exec);
  const double err = num::max_rel_error(actual, expected);
  std::printf("max relative error vs sequential reference: %.3e (%s)\n", err,
              err < 1e-10 ? "OK" : "FAILED");

  // A crude density map of the final state.
  std::printf("\nfinal particle density (one char per cell):\n");
  std::vector<int> density(
      static_cast<std::size_t>(config.width) * config.height, 0);
  for (std::size_t p = 0; p < actual.size() / 4; ++p) {
    const auto cx = static_cast<std::int32_t>(actual[p * 4 + 0]);
    const auto cy = static_cast<std::int32_t>(actual[p * 4 + 1]);
    if (cx >= 0 && cx < config.width && cy >= 0 && cy < config.height) {
      ++density[static_cast<std::size_t>(cy) * config.width + cx];
    }
  }
  const char* shades = " .:-=+*#%@";
  for (std::int32_t y = 0; y < config.height; ++y) {
    std::printf("  ");
    for (std::int32_t x = 0; x < config.width; ++x) {
      const int d = density[static_cast<std::size_t>(y) * config.width + x];
      const int shade = std::min(9, d * 10 / (config.particles_per_cell * 2));
      std::printf("%c", shades[shade]);
    }
    std::printf("\n");
  }
  return err < 1e-10 ? 0 : 1;
}
