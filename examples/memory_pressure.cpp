// Memory-pressure study on one instance: sweep the per-processor capacity
// from TOT down past MIN_MEM and watch the paper's §5.1 trade-off appear —
// more MAPs, more suspended sends, more time — until the schedule becomes
// non-executable. Compares all three orderings at each capacity.
//
// Run:  ./memory_pressure [--scale 0.25] [--block 12] [--procs 8]
#include <cstdio>

#include "rapid/num/cholesky_app.hpp"
#include "rapid/num/workloads.hpp"
#include "rapid/rt/sim_executor.hpp"
#include "rapid/sched/liveness.hpp"
#include "rapid/sched/mapping.hpp"
#include "rapid/sched/ordering.hpp"
#include "rapid/support/flags.hpp"
#include "rapid/support/str.hpp"
#include "rapid/support/table.hpp"

using namespace rapid;

int main(int argc, char** argv) {
  Flags flags;
  flags.define("scale", "0.25", "workload scale in (0,1]");
  flags.define("block", "12", "square block size");
  flags.define("procs", "8", "number of simulated processors");
  flags.parse(argc, argv);
  if (flags.help_requested()) return 0;
  const double scale = flags.get_double("scale");
  const auto block = static_cast<sparse::Index>(flags.get_int("block"));
  const int procs = static_cast<int>(flags.get_int("procs"));

  const num::Workload workload = num::bcsstk24_like(scale);
  std::printf("== memory pressure sweep: %s, p = %d ==\n\n",
              workload.name.c_str(), procs);
  auto matrix = workload.matrix;
  auto app = num::CholeskyApp::build(std::move(matrix), block, procs);
  const auto params = machine::MachineParams::cray_t3d(procs);
  const auto assignment = sched::owner_compute_tasks(app.graph(), procs);

  struct Entry {
    const char* name;
    sched::Schedule schedule;
    rt::RunPlan plan;
    std::int64_t min_mem;
    double base_time;
  };
  std::vector<Entry> entries;
  auto add = [&](const char* name, sched::Schedule s) {
    auto plan = rt::build_run_plan(app.graph(), s);
    const auto liveness = sched::analyze_liveness(app.graph(), s);
    rt::RunConfig base;
    base.params = params;
    base.capacity_per_proc = liveness.tot_mem();
    base.active_memory = false;
    const double base_time = rt::simulate(plan, base).parallel_time_us;
    entries.push_back(Entry{name, std::move(s), std::move(plan),
                            liveness.min_mem(), base_time});
  };
  add("RCP", sched::schedule_rcp(app.graph(), assignment, procs, params));
  add("MPO", sched::schedule_mpo(app.graph(), assignment, procs, params));
  add("DTS", sched::schedule_dts(app.graph(), assignment, procs, params));

  const auto tot = sched::analyze_liveness(app.graph(), entries[0].schedule)
                       .tot_mem();
  std::printf("TOT(RCP) = %s;  MIN_MEM: RCP %s, MPO %s, DTS %s\n\n",
              human_bytes(static_cast<double>(tot)).c_str(),
              human_bytes(static_cast<double>(entries[0].min_mem)).c_str(),
              human_bytes(static_cast<double>(entries[1].min_mem)).c_str(),
              human_bytes(static_cast<double>(entries[2].min_mem)).c_str());

  TextTable table({"capacity", "% of TOT", "RCP PT+ / #MAP", "MPO PT+ / #MAP",
                   "DTS PT+ / #MAP"});
  for (double frac : {1.0, 0.8, 0.6, 0.5, 0.4, 0.3, 0.25, 0.2, 0.15}) {
    const auto capacity =
        static_cast<std::int64_t>(static_cast<double>(tot) * frac);
    std::vector<std::string> row = {
        human_bytes(static_cast<double>(capacity)),
        fixed(frac * 100.0, 0) + "%"};
    for (const Entry& e : entries) {
      rt::RunConfig config;
      config.params = params;
      config.capacity_per_proc = capacity;
      const rt::RunReport r = rt::simulate(e.plan, config);
      if (!r.executable) {
        row.push_back("inf");
      } else {
        row.push_back(
            fixed((r.parallel_time_us / e.base_time - 1.0) * 100.0, 1) +
            "% / " + fixed(r.avg_maps(), 2));
      }
    }
    table.add_row(std::move(row));
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nPT+ = parallel-time increase over that ordering's no-management "
      "baseline;\n'inf' = non-executable at that capacity (Def. 6). The "
      "memory-aware orderings\n(MPO/DTS) survive deeper cuts than RCP.\n");
  return 0;
}
