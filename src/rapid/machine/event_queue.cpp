#include "rapid/machine/event_queue.hpp"

#include "rapid/support/check.hpp"
#include "rapid/support/str.hpp"

namespace rapid::machine {

void EventQueue::schedule_at(SimTime when, Callback fn) {
  RAPID_CHECK(when >= now_,
              cat("event scheduled in the past: ", when, " < ", now_));
  heap_.push(Event{when, next_seq_++, std::move(fn)});
}

void EventQueue::schedule_after(SimTime delay, Callback fn) {
  RAPID_CHECK(delay >= 0.0, "negative delay");
  schedule_at(now_ + delay, std::move(fn));
}

SimTime EventQueue::run() {
  while (!heap_.empty()) {
    // Move out the callback before popping (top() is const).
    Event ev = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    now_ = ev.when;
    ++executed_;
    ev.fn();
  }
  return now_;
}

bool EventQueue::run_bounded(std::uint64_t max_events) {
  for (std::uint64_t i = 0; i < max_events && !heap_.empty(); ++i) {
    Event ev = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    now_ = ev.when;
    ++executed_;
    ev.fn();
  }
  return heap_.empty();
}

}  // namespace rapid::machine
