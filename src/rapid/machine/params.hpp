// Machine cost model. Defaults mirror the paper's Cray-T3D numbers:
// 64 MB/node, 103 MFLOPS (BLAS-3 DGEMM), SHMEM_PUT with 2.7 µs overhead and
// 128 MB/s bandwidth. All times in microseconds.
#pragma once

#include <cstdint>

namespace rapid::machine {

struct MachineParams {
  int num_procs = 1;

  // Computation.
  double flops_per_us = 103.0;    // 103 MFLOPS
  double task_overhead_us = 2.0;  // dispatch/bookkeeping per task

  // RMA (shmem_put-like): sender pays overhead, payload arrives at the
  // destination after latency + bytes/bandwidth.
  double rma_overhead_us = 2.7;
  double rma_latency_us = 1.0;
  double bytes_per_us = 128.0;  // 128 MB/s

  // Active memory management costs.
  double map_base_us = 50.0;        // fixed cost per MAP
  double map_per_object_us = 3.0;   // per allocate/deallocate action
  double addr_entry_us = 1.0;       // per address entry in a package
  double poll_us = 2.0;             // one RA+CQ service round while blocked
  // Per-message software cost of the address machinery in active mode:
  // remote-address table lookup plus suspended-queue bookkeeping on every
  // content send (the baseline has addresses hardwired, so it skips this).
  double addr_lookup_us = 20.0;

  /// Task execution time for a given flop count.
  double task_time_us(double flops) const;

  /// Sender-side occupancy of one RMA put.
  double send_overhead_us(std::int64_t bytes) const;

  /// Delay from send to availability at the destination (excludes the
  /// sender overhead which serializes on the sender).
  double transfer_time_us(std::int64_t bytes) const;

  /// Paper-default parameter set for p processors.
  static MachineParams cray_t3d(int num_procs);
};

}  // namespace rapid::machine
