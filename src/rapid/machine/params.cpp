#include "rapid/machine/params.hpp"

#include "rapid/support/check.hpp"

namespace rapid::machine {

double MachineParams::task_time_us(double flops) const {
  RAPID_CHECK(flops >= 0.0, "negative flops");
  return task_overhead_us + flops / flops_per_us;
}

double MachineParams::send_overhead_us(std::int64_t bytes) const {
  RAPID_CHECK(bytes >= 0, "negative message size");
  // The paper's SHMEM_PUT cost: fixed software overhead; the payload
  // streaming occupies the sender for bytes/bandwidth as well.
  return rma_overhead_us + static_cast<double>(bytes) / bytes_per_us;
}

double MachineParams::transfer_time_us(std::int64_t bytes) const {
  RAPID_CHECK(bytes >= 0, "negative message size");
  return rma_latency_us + static_cast<double>(bytes) / bytes_per_us;
}

MachineParams MachineParams::cray_t3d(int num_procs) {
  MachineParams p;
  p.num_procs = num_procs;
  return p;
}

}  // namespace rapid::machine
