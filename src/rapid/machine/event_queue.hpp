// Deterministic discrete-event engine. Events at equal timestamps fire in
// scheduling order (a monotone sequence number breaks ties), so simulations
// are bit-reproducible regardless of platform.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace rapid::machine {

using SimTime = double;  // microseconds throughout the simulator

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `fn` at absolute time `when` (must be >= now()).
  void schedule_at(SimTime when, Callback fn);

  /// Schedules `fn` at now() + delay.
  void schedule_after(SimTime delay, Callback fn);

  /// Runs events until the queue is empty. Returns the time of the last
  /// event (0 if none ran).
  SimTime run();

  /// Runs at most `max_events` events; returns true if the queue drained.
  bool run_bounded(std::uint64_t max_events);

  SimTime now() const { return now_; }
  bool empty() const { return heap_.empty(); }
  std::uint64_t events_executed() const { return executed_; }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace rapid::machine
