#include "rapid/svc/plan_cache.hpp"

#include <utility>

#include "rapid/rt/shm_transport.hpp"
#include "rapid/support/check.hpp"
#include "rapid/support/str.hpp"

namespace rapid::svc {

PlanCache::PlanCache(std::size_t max_entries)
    : max_entries_(max_entries == 0 ? 1 : max_entries) {}

std::string PlanCache::key(const std::string& spec,
                           const rt::RunConfig& config) {
  return cat(spec, "|cap=", config.capacity_per_proc,
             "|active=", config.active_memory ? 1 : 0,
             "|policy=", static_cast<int>(config.alloc_policy),
             "|slab=", config.slab_arena ? 1 : 0);
}

std::shared_ptr<const CachedPlan> PlanCache::get(
    const std::string& spec, const rt::RunConfig& config) {
  const std::string k = key(spec, config);
  std::lock_guard<std::mutex> lock(m_);
  const auto it = index_.find(k);
  if (it != index_.end()) {
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->second;
  }
  ++misses_;
  // Build under the lock: concurrent submitters of the same new spec would
  // otherwise race to do the expensive build twice; serializing misses is
  // the cheaper failure mode for a cache whose whole point is reuse.
  auto entry = std::make_shared<CachedPlan>();
  entry->spec = spec;
  entry->workload = std::shared_ptr<const num::ShmWorkload>(
      num::build_shm_workload(spec));
  entry->fingerprint = rt::plan_fingerprint(entry->workload->plan);
  entry->demand = compute_demand(entry->workload->plan, config);
  lru_.emplace_front(k, entry);
  index_[k] = lru_.begin();
  if (lru_.size() > max_entries_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
  return entry;
}

std::int64_t PlanCache::hits() const {
  std::lock_guard<std::mutex> lock(m_);
  return hits_;
}

std::int64_t PlanCache::misses() const {
  std::lock_guard<std::mutex> lock(m_);
  return misses_;
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(m_);
  return lru_.size();
}

}  // namespace rapid::svc
