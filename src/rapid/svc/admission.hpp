// Capacity-budget admission control for the runtime service.
//
// The paper's Def. 5/6 make a run's memory footprint statically knowable:
// replaying the MAP procedure symbolically (the same ProcMemory the
// executor and the auditor use) yields each processor's exact peak heap
// bytes before a single task runs. The service exploits that: a RunRequest
// is admitted only after its *exact* byte need — the sum of per-processor
// peaks under the run's own RunConfig (alignment 8, the threaded executor's
// mode) — is computed and reserved against the service-wide budget, so
// co-resident runs can never oversubscribe memory no matter how their MAPs
// interleave. A run that cannot fit is refused *up front* with a structured
// AdmissionReport naming the shortfall, never half-started.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rapid/rt/plan.hpp"
#include "rapid/rt/report.hpp"
#include "rapid/support/json.hpp"

namespace rapid::svc {

/// Exact memory demand of one run, from the symbolic MAP replay.
struct RunDemand {
  /// False when the plan is non-executable under the request's
  /// capacity_per_proc (Def. 6) — `failure` names the first failing
  /// processor and position, in the auditor's CAP-* vocabulary.
  bool executable = true;
  std::string failure;
  /// Peak arena bytes per processor over the whole replay (permanents plus
  /// the worst live volatile set, at the executor's 8-byte alignment).
  std::vector<std::int64_t> peak_bytes_per_proc;
  /// Sum of the per-processor peaks: the bytes the service reserves.
  std::int64_t total_bytes = 0;
  /// MAPs the replay performed (plan-cache telemetry; 0 in baseline mode).
  std::int64_t maps = 0;
};

/// Replays the MAP procedure for every processor of `plan` under `config`
/// (active or baseline, the request's allocation policy and slab flag, the
/// threaded executor's 8-byte alignment) and returns the exact demand.
/// Never throws on capacity failure — that comes back as
/// executable == false so admission can reject with a structured report.
RunDemand compute_demand(const rt::RunPlan& plan, const rt::RunConfig& config);

/// The admission decision for one submitted run.
enum class AdmissionVerdict : std::uint8_t {
  kAdmitted,  // need fits the budget's currently-available bytes
  kQueued,    // fits the total budget but must wait for reservations to free
  kRejected,  // can never run: need exceeds the whole budget, the plan is
              // non-executable under its own capacity, or the spec is bad
  kShed,      // dropped by overload policy: the bounded queue was full and
              // this run had the least chance of meeting its deadline
};

const char* to_string(AdmissionVerdict verdict);

/// Structured admission outcome, attached to every submitted run. For a
/// rejection the report names the exact shortfall; for a shed run the
/// overload state (queue depth, budget reserved) at the moment of the
/// decision.
struct AdmissionReport {
  AdmissionVerdict verdict = AdmissionVerdict::kRejected;
  std::int64_t run_id = -1;
  std::string spec;
  /// Exact bytes the run needs (0 when the spec never built).
  std::int64_t need_bytes = 0;
  /// The service-wide budget and how much of it was reserved by co-resident
  /// runs when the decision was taken.
  std::int64_t budget_bytes = 0;
  std::int64_t reserved_bytes = 0;
  /// Rejections only: need_bytes - budget_bytes when the run can never fit
  /// (0 for non-capacity rejections).
  std::int64_t shortfall_bytes = 0;
  /// Admission-queue depth after the decision.
  std::int32_t queue_depth = 0;
  std::string reason;

  JsonValue to_json() const;
};

}  // namespace rapid::svc
