// rapid_serve: drive the multi-tenant RuntimeService from run-spec lines.
// Each input line describes one RunRequest — a workload spec in the
// num/shm_workloads.hpp grammar followed by optional key=value tokens —
// and the tool prints one JSON RunRecord per run plus a closing service
// summary, so a shell loop or a CI lane can exercise admission control,
// deadlines, backpressure and fault containment without writing C++.
//
//   echo "grid:rows=8,cols=8,procs=4 capacity=4096" | ./rapid_serve
//   ./rapid_serve --runs=mix.txt --budget=$((64<<20)) --workers=4 \
//                 --json=service_report.json --report-dir=reports/
//
// Line grammar (after the workload spec, any order):
//   capacity=<bytes>     per-proc capacity          (default 1048576)
//   deadline_us=<n>      per-run deadline, 0 = none (default 0)
//   priority=<n>         higher dispatches first    (default 0)
//   attempts=<n>         restart attempt cap        (default 3)
//   backoff_us=<n>       restart backoff base      (default 0)
//   faults=<preset>      addr|put|slow|park|corrupt|dup (arms retry too)
//   seed=<n>             seed for the fault preset  (default 1)
//   kernel=<n>           per-run kernel dispatch: 0 auto, 1 ref, 2 blocked
//   active=<0|1>         paper's active memory      (default 1)
//   slab=<0|1>           slab arena fast path       (default 0)
//
// Exit codes (support/exit_codes.hpp): 0 every run completed with clean
// numerics; 1 findings (a run failed, was rejected, shed, expired, or
// finished inexact); 2 infrastructure error (bad flags, unreadable input,
// unexpected exception).
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "rapid/obs/telemetry.hpp"
#include "rapid/rt/faults.hpp"
#include "rapid/rt/shm_health.hpp"
#include "rapid/support/backoff.hpp"
#include "rapid/support/exit_codes.hpp"
#include "rapid/support/flags.hpp"
#include "rapid/support/str.hpp"
#include "rapid/svc/service.hpp"

namespace {

using namespace rapid;

/// Parses one input line into a RunRequest. Throws rapid::Error on a
/// malformed key (the caller converts that into an infra error — the line
/// never reached the service).
svc::RunRequest parse_line(const std::string& line) {
  std::istringstream in(line);
  svc::RunRequest req;
  in >> req.spec;
  RAPID_CHECK(!req.spec.empty(), "empty run line");
  req.config.capacity_per_proc = 1 << 20;
  std::string token;
  std::string fault_preset;
  std::uint64_t fault_seed = 1;
  while (in >> token) {
    const std::size_t eq = token.find('=');
    RAPID_CHECK(eq != std::string::npos,
                cat("run line: expected key=value, got \"", token, "\""));
    const std::string key = token.substr(0, eq);
    const std::string val = token.substr(eq + 1);
    if (key == "capacity") {
      req.config.capacity_per_proc = std::stoll(val);
    } else if (key == "deadline_us") {
      req.deadline_us = std::stoll(val);
    } else if (key == "priority") {
      req.priority = static_cast<std::int32_t>(std::stoll(val));
    } else if (key == "attempts") {
      req.recovery.max_run_attempts = static_cast<std::int32_t>(
          std::stoll(val));
    } else if (key == "backoff_us") {
      req.recovery.restart_backoff_us = std::stoll(val);
    } else if (key == "faults") {
      fault_preset = val;
    } else if (key == "seed") {
      fault_seed = static_cast<std::uint64_t>(std::stoll(val));
    } else if (key == "kernel") {
      req.config.kernel_dispatch = static_cast<std::int32_t>(
          std::stoll(val));
    } else if (key == "active") {
      req.config.active_memory = std::stoll(val) != 0;
    } else if (key == "slab") {
      req.config.slab_arena = std::stoll(val) != 0;
    } else {
      RAPID_FAIL(cat("run line: unknown key \"", key, "\""));
    }
  }
  if (!fault_preset.empty()) {
    req.options.faults = rt::FaultPlan::preset(fault_preset, fault_seed);
    req.options.retry = RetryPolicy::standard();
  }
  return req;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  RAPID_CHECK(out.good(), cat("cannot open ", path, " for writing"));
  out << content;
  RAPID_CHECK(out.good(), cat("short write to ", path));
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.define("runs", "",
               "file of run lines (one RunRequest per line; '#' comments); "
               "empty: read stdin");
  flags.define("budget", std::to_string(256ll << 20),
               "global capacity budget in bytes");
  flags.define("workers", "2", "worker pool size (concurrent runs)");
  flags.define("queue", "16", "bounded admission-queue limit");
  flags.define("cache", "32", "plan-cache entries");
  flags.define("json", "", "write the full service document to this path");
  flags.define("report-dir", "",
               "also write each run's record as <dir>/run_<id>.json");
  flags.define("metrics-file", "",
               "write live Prometheus telemetry snapshots to this path "
               "(plus <path>.json), atomically, while serving; a write "
               "failure disables the sampler with a warning, never the "
               "service");
  flags.define("metrics-interval-ms", "250",
               "telemetry sampling/write period in milliseconds");
  try {
    flags.parse(argc, argv);
  } catch (const rapid::Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return kExitInfraError;
  }
  if (flags.help_requested()) return kExitOk;

  try {
    std::ifstream file;
    std::istream* in = &std::cin;
    if (!flags.get("runs").empty()) {
      file.open(flags.get("runs"));
      RAPID_CHECK(file.good(),
                  cat("cannot read run file ", flags.get("runs")));
      in = &file;
    }

    svc::ServiceOptions sopts;
    sopts.budget_bytes = flags.get_int("budget");
    sopts.workers = static_cast<std::int32_t>(flags.get_int("workers"));
    sopts.queue_limit = static_cast<std::int32_t>(flags.get_int("queue"));
    sopts.plan_cache_entries =
        static_cast<std::size_t>(flags.get_int("cache"));
    svc::RuntimeService service(sopts);

    // Telemetry plane: bind the service's instruments, sample its gauges
    // and any live shm sessions, and snapshot to --metrics-file until the
    // service drains. The registry must outlive the service binding, and
    // the sampler must stop before the service dies — scope order below.
    obs::MetricsRegistry registry;
    std::unique_ptr<obs::TelemetrySampler> sampler;
    if (!flags.get("metrics-file").empty()) {
      service.bind_telemetry(registry);
      obs::TelemetrySamplerOptions topts;
      topts.path = flags.get("metrics-file");
      topts.interval_ms =
          static_cast<int>(flags.get_int("metrics-interval-ms"));
      sampler = std::make_unique<obs::TelemetrySampler>(registry, topts);
      sampler->add_probe(
          [&service](obs::MetricsRegistry&) { service.sample_telemetry(); });
      sampler->add_probe(
          [](obs::MetricsRegistry& reg) { rt::sample_shm_health(reg); });
      sampler->start();
    }

    std::string line;
    std::vector<std::int64_t> ids;
    while (std::getline(*in, line)) {
      const std::size_t start = line.find_first_not_of(" \t");
      if (start == std::string::npos || line[start] == '#') continue;
      ids.push_back(service.submit(parse_line(line)));
    }

    bool findings = false;
    for (const std::int64_t id : ids) {
      const svc::RunRecord& record = service.wait(id);
      const bool ok =
          record.state == svc::RunState::kCompleted && record.numerics_ok;
      findings = findings || !ok;
      std::printf("%s\n", record.to_json().dump().c_str());
      if (!flags.get("report-dir").empty()) {
        write_file(cat(flags.get("report-dir"), "/run_", id, ".json"),
                   record.to_json().dump());
      }
    }

    // Final snapshot after every run is terminal, so the written counters
    // reconcile exactly with the summed RunRecords.
    if (sampler) sampler->stop();

    const svc::ServiceReport report = service.report();
    std::fprintf(stderr, "%s", report.to_json().dump().c_str());
    if (!flags.get("json").empty()) {
      JsonValue doc = JsonValue::object();
      doc["artifact"] = "rapid_serve";
      doc["service"] = report.to_json();
      JsonValue& runs = (doc["runs"] = JsonValue::array());
      for (const std::int64_t id : ids) {
        runs.push_back(service.wait(id).to_json());
      }
      write_file(flags.get("json"), doc.dump());
    }
    return findings ? kExitFindings : kExitOk;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rapid_serve: %s\n", e.what());
    return kExitInfraError;
  }
}
