#include "rapid/svc/admission.hpp"

#include <memory>
#include <utility>

#include "rapid/rt/map_engine.hpp"
#include "rapid/support/str.hpp"

namespace rapid::svc {

RunDemand compute_demand(const rt::RunPlan& plan,
                         const rt::RunConfig& config) {
  RunDemand demand;
  demand.peak_bytes_per_proc.reserve(
      static_cast<std::size_t>(plan.num_procs));
  for (rt::ProcId p = 0; p < plan.num_procs; ++p) {
    std::unique_ptr<rt::ProcMemory> memory;
    try {
      // Alignment 8 matches the threaded executor's arenas, so the replayed
      // peaks are the bytes the real run will touch, not the Def. 5 lower
      // bound.
      memory = std::make_unique<rt::ProcMemory>(
          plan, p, config.capacity_per_proc, /*alignment=*/8,
          config.alloc_policy, config.slab_arena);
      if (config.active_memory) {
        const auto n =
            static_cast<std::int32_t>(plan.procs[p].order.size());
        for (std::int32_t pos = 0; pos < n; ++pos) {
          if (!memory->needs_map(pos)) continue;
          (void)memory->perform_map(pos);
          ++demand.maps;
        }
      } else {
        memory->preallocate_all();
      }
    } catch (const rt::NonExecutableError& e) {
      demand.executable = false;
      demand.failure = e.what();  // already names the processor/position
      return demand;
    }
    demand.peak_bytes_per_proc.push_back(memory->peak_bytes());
    demand.total_bytes += memory->peak_bytes();
  }
  return demand;
}

const char* to_string(AdmissionVerdict verdict) {
  switch (verdict) {
    case AdmissionVerdict::kAdmitted:
      return "admitted";
    case AdmissionVerdict::kQueued:
      return "queued";
    case AdmissionVerdict::kRejected:
      return "rejected";
    case AdmissionVerdict::kShed:
      return "shed";
  }
  return "?";
}

JsonValue AdmissionReport::to_json() const {
  JsonValue doc = JsonValue::object();
  doc["verdict"] = to_string(verdict);
  doc["run_id"] = run_id;
  doc["spec"] = spec;
  doc["need_bytes"] = need_bytes;
  doc["budget_bytes"] = budget_bytes;
  doc["reserved_bytes"] = reserved_bytes;
  doc["shortfall_bytes"] = shortfall_bytes;
  doc["queue_depth"] = queue_depth;
  doc["reason"] = reason;
  return doc;
}

}  // namespace rapid::svc
