// RuntimeService: a long-lived multi-tenant front end over the threaded
// executor. One process hosts a persistent worker pool and a global
// capacity budget; clients submit RunRequests (a workload spec + RunConfig
// + deadline + priority) and get back structured per-run outcomes. The
// service composes the pieces the previous PRs built — symbolic-replay
// admission (svc/admission.hpp), the plan cache (svc/plan_cache.hpp),
// per-run cooperative cancellation (ThreadedOptions::attempt_deadline_us),
// and run-level recovery (rt/recovery.hpp in capture_failure mode) — into
// one overload-surviving loop:
//
//   submit  -> build/cache plan -> exact byte demand -> admit | queue |
//              reject (structured shortfall) | shed (bounded queue)
//   dispatch-> reserve demand from the budget, backfill by priority,
//              expire lapsed runs before they waste a worker
//   execute -> run_with_recovery, per-run fault containment: a fault,
//              checksum storm or dead worker process in one run restarts
//              *that run* only; co-resident runs never pause
//   deadline-> a run still in flight past its deadline is cooperatively
//              cancelled, its arena reclaimed with its executor, and the
//              partial RunReport returned — never a wedged worker
//
// Every submitted run — completed, failed, rejected, shed, or expired —
// ends in a terminal RunRecord carrying its AdmissionReport and (when it
// ran) its RecoveryRun outcome, so overload degrades service throughput,
// never observability.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "rapid/obs/telemetry.hpp"
#include "rapid/rt/recovery.hpp"
#include "rapid/svc/admission.hpp"
#include "rapid/svc/plan_cache.hpp"

namespace rapid::svc {

struct ServiceOptions {
  /// Global capacity budget (bytes) shared by all co-resident runs. Each
  /// admitted run reserves its exact replayed demand for its whole
  /// execution; the sum of reservations never exceeds this.
  std::int64_t budget_bytes = 256ll << 20;
  /// Persistent worker pool size: at most this many runs execute at once
  /// (each run internally spins up its plan's processor threads).
  std::int32_t workers = 2;
  /// Bounded admission queue. A submit that would exceed this sheds the
  /// queued run with the earliest deadline (possibly the newcomer) —
  /// overload back-pressure instead of unbounded growth.
  std::int32_t queue_limit = 16;
  std::size_t plan_cache_entries = 32;
};

struct RunRequest {
  /// Workload spec in the num/shm_workloads.hpp grammar
  /// (cholesky:… | lu:… | grid:…).
  std::string spec;
  rt::RunConfig config;
  /// Wall-clock budget from submission (µs; 0 = none). A run still queued
  /// past it expires undispatched; a run in flight past it is cooperatively
  /// cancelled and returns its partial report.
  std::int64_t deadline_us = 0;
  /// Higher runs first among those whose demand fits the free budget.
  std::int32_t priority = 0;
  /// Per-run executor knobs (faults, retry policy, transport, tracing…).
  /// The service overrides run_id and attempt_deadline_us.
  rt::ThreadedOptions options;
  /// Per-run restart policy (attempt cap, backoff). capture_failure is
  /// forced on — the service never lets a run escape as an exception.
  rt::RunRecoveryOptions recovery;
};

enum class RunState : std::uint8_t {
  kQueued,     // admitted or queued, waiting for budget/worker
  kRunning,    // executing
  kCompleted,  // ran to completion (outcome.report is final)
  kFailed,     // exhausted its restart attempts (outcome holds the partial)
  kRejected,   // refused at admission (can never fit / bad spec)
  kShed,       // dropped by the bounded-queue overload policy
  kExpired,    // deadline lapsed — queued (never ran) or mid-run (cancelled
               // cooperatively; outcome.report is the partial)
};

const char* to_string(RunState state);
/// True for every state a run can end in (everything but kQueued/kRunning).
bool is_terminal(RunState state);

/// Everything the service knows about one submitted run. Records are
/// created at submit() and never destroyed before the service; references
/// returned by wait() stay valid.
struct RunRecord {
  std::int64_t run_id = -1;
  std::string spec;
  std::int32_t priority = 0;
  std::int64_t deadline_us = 0;
  RunState state = RunState::kQueued;
  AdmissionReport admission;
  /// Why a terminal state was reached, for states without an outcome
  /// (rejected / shed / queued-expiry).
  std::string reason;

  /// Set for every run that dispatched (kCompleted/kFailed and mid-run
  /// kExpired). The executor inside is released once the residual has been
  /// extracted, so finished runs hold no arena memory.
  bool has_outcome = false;
  rt::RecoveryRun outcome;
  /// Workload residual of a completed run: bit-exact max-abs-diff for the
  /// grid app (anything but 0 is a protocol bug), relative factorization
  /// residual for cholesky/lu. -1 before completion.
  double residual = -1.0;
  /// residual within the workload's acceptance threshold (grid: == 0).
  bool numerics_ok = false;

  /// Microseconds from submit to dispatch and from dispatch to terminal.
  std::int64_t wait_us = 0;
  std::int64_t exec_us = 0;

  JsonValue to_json() const;
};

/// Aggregate service counters, snapshot at any time.
struct ServiceReport {
  std::int64_t submitted = 0;
  std::int64_t completed = 0;
  std::int64_t failed = 0;
  std::int64_t rejected = 0;
  std::int64_t shed = 0;
  std::int64_t expired = 0;
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  std::int64_t budget_bytes = 0;
  /// High-water mark of concurrently reserved bytes (<= budget_bytes by
  /// construction — the admission invariant).
  std::int64_t peak_reserved_bytes = 0;
  std::int32_t peak_queue_depth = 0;

  JsonValue to_json() const;
};

class RuntimeService {
 public:
  explicit RuntimeService(ServiceOptions options = {});
  /// Drains the queue and joins the workers.
  ~RuntimeService();

  RuntimeService(const RuntimeService&) = delete;
  RuntimeService& operator=(const RuntimeService&) = delete;

  /// Admits, queues, rejects, or sheds the request; never throws for a bad
  /// request (the record carries the reason). Returns the run id.
  std::int64_t submit(RunRequest request);

  /// Blocks until the run reaches a terminal state and returns its record.
  const RunRecord& wait(std::int64_t run_id);

  /// Waits for every submitted run, in submission order.
  std::vector<const RunRecord*> wait_all();

  ServiceReport report() const;
  const ServiceOptions& options() const { return options_; }

  /// Registers the service's metric families in `registry` and turns on
  /// inline instrumentation: every state transition that bumps an internal
  /// counter also bumps the matching registry counter, so snapshots
  /// reconcile exactly with report() and with the summed per-run
  /// RunReports (submitted = completed + failed + rejected + shed +
  /// expired once the queue drains). Call once, before traffic; the
  /// registry must outlive the service.
  void bind_telemetry(obs::MetricsRegistry& registry);

  /// Refreshes the instantaneous gauges (queue depth, runs in flight,
  /// reservations vs budget, uptime) and ratchets the plan-cache
  /// counters. The TelemetrySampler probe target; safe from any thread;
  /// no-op when bind_telemetry was never called.
  void sample_telemetry();

 private:
  struct Pending {
    std::int64_t run_id = -1;
    std::shared_ptr<const CachedPlan> plan;
    RunRequest request;
    std::int64_t submit_ns = 0;
    /// Absolute expiry (now_ns() scale); INT64_MAX when no deadline.
    std::int64_t deadline_ns = 0;
  };

  void worker_loop();
  /// Marks every queued entry whose deadline already lapsed as expired.
  void sweep_expired_locked();
  /// Index of the best dispatchable entry (fits the free budget; highest
  /// priority, then earliest deadline, then FIFO), or -1.
  int pick_locked() const;
  void execute(RunRecord& record, Pending pending);
  RunRecord& record_of(std::int64_t run_id);

  /// Registry instruments, resolved once at bind_telemetry(). All null
  /// until bound; hot-path sites guard on `bound`.
  struct Telemetry {
    bool bound = false;
    obs::MetricsRegistry* registry = nullptr;
    obs::Counter* submitted = nullptr;
    obs::Counter* completed = nullptr;
    obs::Counter* failed = nullptr;
    obs::Counter* rejected = nullptr;
    obs::Counter* shed = nullptr;
    obs::Counter* expired = nullptr;
    obs::Counter* cache_hits = nullptr;
    obs::Counter* cache_misses = nullptr;
    obs::Counter* recovery_nacks = nullptr;
    obs::Counter* recovery_resends = nullptr;
    obs::Counter* recovery_task_retries = nullptr;
    obs::Counter* recovery_run_attempts = nullptr;
    obs::AtomicHistogram* latency_us = nullptr;
    obs::AtomicHistogram* wait_us = nullptr;
    obs::AtomicHistogram* task_us = nullptr;
    obs::AtomicHistogram* put_bytes = nullptr;
    obs::Gauge* queue_depth = nullptr;
    obs::Gauge* in_flight = nullptr;
    obs::Gauge* reserved_bytes = nullptr;
    obs::Gauge* budget_bytes = nullptr;
    obs::Gauge* peak_reserved_bytes = nullptr;
    obs::Gauge* peak_queue_depth = nullptr;
    obs::Gauge* workers = nullptr;
    obs::Gauge* uptime_seconds = nullptr;
  };

  const ServiceOptions options_;
  PlanCache cache_;
  Telemetry tel_;
  std::int64_t start_ns_ = 0;

  mutable std::mutex m_;
  std::condition_variable cv_work_;  // queue/budget changed
  std::condition_variable cv_done_;  // some run reached a terminal state
  std::deque<Pending> queue_;
  std::unordered_map<std::int64_t, std::unique_ptr<RunRecord>> records_;
  std::vector<std::int64_t> submit_order_;
  std::int64_t next_run_id_ = 0;
  std::int64_t reserved_bytes_ = 0;
  std::int64_t peak_reserved_bytes_ = 0;
  std::int32_t peak_queue_depth_ = 0;
  std::int32_t running_ = 0;
  std::int64_t completed_ = 0;
  std::int64_t failed_ = 0;
  std::int64_t rejected_ = 0;
  std::int64_t shed_ = 0;
  std::int64_t expired_ = 0;
  bool stopping_ = false;

  std::vector<std::thread> workers_;
};

}  // namespace rapid::svc
