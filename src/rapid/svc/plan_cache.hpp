// Plan cache for the runtime service. Building a workload from its spec —
// matrix generation, ordering, scheduling, plan construction, and the
// admission replay — costs far more than a small run executes in, and a
// multi-tenant service sees the same specs again and again. The cache keys
// on everything that changes the plan or its byte demand: the spec string
// (which deterministically fixes the graph and processor count — spec
// equality implies plan equality, the shm transport's own invariant, and
// the entry records rt::plan_fingerprint as the graph hash) plus the
// capacity, memory mode, allocation policy and slab flag from the
// RunConfig. Entries are immutable and shared: co-resident runs of the same
// spec execute off one plan (the executor never writes through it), so a
// cache hit costs one shared_ptr bump.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "rapid/num/shm_workloads.hpp"
#include "rapid/svc/admission.hpp"

namespace rapid::svc {

/// One immutable cache entry: the built workload (graph + plan + bodies),
/// its graph fingerprint, and the admission demand under the keyed config.
struct CachedPlan {
  std::string spec;
  std::shared_ptr<const num::ShmWorkload> workload;
  std::uint64_t fingerprint = 0;
  RunDemand demand;
};

class PlanCache {
 public:
  explicit PlanCache(std::size_t max_entries = 32);

  /// Returns the cached entry for (spec, config), building it on a miss.
  /// Throws rapid::Error for a malformed or unknown spec (the service turns
  /// that into a rejection). The returned entry stays valid after eviction
  /// — holders share ownership.
  std::shared_ptr<const CachedPlan> get(const std::string& spec,
                                        const rt::RunConfig& config);

  std::int64_t hits() const;
  std::int64_t misses() const;
  std::size_t size() const;

 private:
  static std::string key(const std::string& spec,
                         const rt::RunConfig& config);

  const std::size_t max_entries_;
  mutable std::mutex m_;
  /// LRU order, most recent first; the map points into the list.
  std::list<std::pair<std::string, std::shared_ptr<const CachedPlan>>> lru_;
  std::unordered_map<std::string, decltype(lru_)::iterator> index_;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
};

}  // namespace rapid::svc
