#include "rapid/svc/service.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <utility>

#include "rapid/support/check.hpp"
#include "rapid/support/log.hpp"
#include "rapid/support/stopwatch.hpp"
#include "rapid/support/str.hpp"

namespace rapid::svc {

namespace {

/// Completed-run acceptance: the grid app computes in exact integers (any
/// nonzero residual is a protocol bug), the factorizations are checked
/// against the same bound the transport tests use.
bool residual_ok(const std::string& spec, double residual) {
  const bool exact = spec.rfind("grid", 0) == 0;
  return exact ? residual == 0.0 : residual < 1e-10;
}

}  // namespace

const char* to_string(RunState state) {
  switch (state) {
    case RunState::kQueued:
      return "queued";
    case RunState::kRunning:
      return "running";
    case RunState::kCompleted:
      return "completed";
    case RunState::kFailed:
      return "failed";
    case RunState::kRejected:
      return "rejected";
    case RunState::kShed:
      return "shed";
    case RunState::kExpired:
      return "expired";
  }
  return "?";
}

bool is_terminal(RunState state) {
  return state != RunState::kQueued && state != RunState::kRunning;
}

JsonValue RunRecord::to_json() const {
  JsonValue doc = JsonValue::object();
  doc["run_id"] = run_id;
  doc["spec"] = spec;
  doc["priority"] = priority;
  doc["deadline_us"] = deadline_us;
  doc["state"] = to_string(state);
  doc["admission"] = admission.to_json();
  if (!reason.empty()) doc["reason"] = reason;
  if (has_outcome) {
    doc["outcome"] = outcome.to_json();
    doc["residual"] = residual;
    doc["numerics_ok"] = numerics_ok;
  }
  doc["wait_us"] = wait_us;
  doc["exec_us"] = exec_us;
  return doc;
}

JsonValue ServiceReport::to_json() const {
  JsonValue doc = JsonValue::object();
  doc["submitted"] = submitted;
  doc["completed"] = completed;
  doc["failed"] = failed;
  doc["rejected"] = rejected;
  doc["shed"] = shed;
  doc["expired"] = expired;
  doc["cache_hits"] = cache_hits;
  doc["cache_misses"] = cache_misses;
  doc["budget_bytes"] = budget_bytes;
  doc["peak_reserved_bytes"] = peak_reserved_bytes;
  doc["peak_queue_depth"] = peak_queue_depth;
  return doc;
}

RuntimeService::RuntimeService(ServiceOptions options)
    : options_(std::move(options)), cache_(options_.plan_cache_entries) {
  RAPID_CHECK(options_.budget_bytes > 0 && options_.workers >= 1 &&
                  options_.queue_limit >= 1,
              "RuntimeService needs a positive budget, >= 1 worker and a "
              "queue limit >= 1");
  start_ns_ = now_ns();
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (std::int32_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

RuntimeService::~RuntimeService() {
  {
    std::lock_guard<std::mutex> lock(m_);
    stopping_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void RuntimeService::bind_telemetry(obs::MetricsRegistry& registry) {
  std::lock_guard<std::mutex> lock(m_);
  Telemetry t;
  t.registry = &registry;
  t.submitted = &registry.counter("rapid_runs_submitted_total",
                                  "Runs submitted to the service");
  t.completed = &registry.counter(
      "rapid_runs_completed_total", "Runs that executed to completion");
  t.failed = &registry.counter("rapid_runs_failed_total",
                               "Runs that exhausted their restart attempts");
  t.rejected = &registry.counter("rapid_runs_rejected_total",
                                 "Runs refused at admission");
  t.shed = &registry.counter(
      "rapid_runs_shed_total", "Runs dropped by the bounded-queue overload "
                               "policy");
  t.expired = &registry.counter(
      "rapid_runs_expired_total",
      "Runs whose deadline lapsed (queued or cancelled mid-run)");
  t.cache_hits = &registry.counter("rapid_plan_cache_hits_total",
                                   "Plan-cache hits");
  t.cache_misses = &registry.counter("rapid_plan_cache_misses_total",
                                     "Plan-cache misses (plan built)");
  t.recovery_nacks = &registry.counter(
      "rapid_recovery_nacks_total",
      "NACK re-requests across all finished runs");
  t.recovery_resends = &registry.counter(
      "rapid_recovery_resends_total",
      "Content + flag resends across all finished runs");
  t.recovery_task_retries = &registry.counter(
      "rapid_recovery_task_retries_total",
      "Task-level retries across all finished runs");
  t.recovery_run_attempts = &registry.counter(
      "rapid_recovery_run_attempts_total",
      "Run attempts (1 per run + restarts) across all finished runs");
  t.latency_us = &registry.histogram(
      "rapid_run_latency_us",
      "Admission-to-terminal latency of dispatched runs (microseconds)");
  t.wait_us = &registry.histogram(
      "rapid_run_wait_us",
      "Submit-to-dispatch queue wait of dispatched runs (microseconds)");
  t.task_us = &registry.histogram(
      "rapid_task_us",
      "Task durations merged from traced runs (microseconds)");
  t.put_bytes = &registry.histogram(
      "rapid_put_bytes", "Content put sizes merged from traced runs");
  t.queue_depth =
      &registry.gauge("rapid_queue_depth", "Admission queue occupancy");
  t.in_flight =
      &registry.gauge("rapid_runs_in_flight", "Runs currently executing");
  t.reserved_bytes = &registry.gauge(
      "rapid_reserved_bytes",
      "Capacity bytes currently reserved by admitted runs");
  t.budget_bytes =
      &registry.gauge("rapid_budget_bytes", "Global capacity budget");
  t.peak_reserved_bytes = &registry.gauge(
      "rapid_peak_reserved_bytes",
      "High-water mark of concurrently reserved bytes");
  t.peak_queue_depth = &registry.gauge("rapid_peak_queue_depth",
                                       "High-water admission queue depth");
  t.workers = &registry.gauge("rapid_workers", "Worker pool size");
  t.uptime_seconds =
      &registry.gauge("rapid_uptime_seconds", "Service uptime");
  t.bound = true;
  tel_ = t;
  tel_.budget_bytes->set(static_cast<double>(options_.budget_bytes));
  tel_.workers->set(static_cast<double>(options_.workers));
}

void RuntimeService::sample_telemetry() {
  if (!tel_.bound) return;
  {
    std::lock_guard<std::mutex> lock(m_);
    tel_.queue_depth->set(static_cast<double>(queue_.size()));
    tel_.in_flight->set(static_cast<double>(running_));
    tel_.reserved_bytes->set(static_cast<double>(reserved_bytes_));
    tel_.peak_reserved_bytes->set(
        static_cast<double>(peak_reserved_bytes_));
    tel_.peak_queue_depth->set(static_cast<double>(peak_queue_depth_));
  }
  // The cache keeps its own monotone totals; ratchet, don't add.
  tel_.cache_hits->advance_to(cache_.hits());
  tel_.cache_misses->advance_to(cache_.misses());
  tel_.uptime_seconds->set(static_cast<double>(now_ns() - start_ns_) *
                           1e-9);
}

RunRecord& RuntimeService::record_of(std::int64_t run_id) {
  const auto it = records_.find(run_id);
  RAPID_CHECK(it != records_.end(), cat("unknown run id ", run_id));
  return *it->second;
}

std::int64_t RuntimeService::submit(RunRequest request) {
  // The expensive part — building the plan and replaying its demand — runs
  // outside the service lock (the cache has its own).
  std::shared_ptr<const CachedPlan> plan;
  std::string build_error;
  try {
    plan = cache_.get(request.spec, request.config);
  } catch (const Error& e) {
    build_error = e.what();
  }

  std::unique_lock<std::mutex> lock(m_);
  const std::int64_t id = next_run_id_++;
  auto rec = std::make_unique<RunRecord>();
  rec->run_id = id;
  rec->spec = request.spec;
  rec->priority = request.priority;
  rec->deadline_us = request.deadline_us;
  rec->admission.run_id = id;
  rec->admission.spec = request.spec;
  rec->admission.budget_bytes = options_.budget_bytes;
  rec->admission.reserved_bytes = reserved_bytes_;
  RunRecord& record = *rec;
  records_[id] = std::move(rec);
  submit_order_.push_back(id);
  if (tel_.bound) tel_.submitted->add(1);

  const auto reject = [&](std::string reason, std::int64_t shortfall) {
    record.state = RunState::kRejected;
    record.admission.verdict = AdmissionVerdict::kRejected;
    record.admission.shortfall_bytes = shortfall;
    record.admission.queue_depth = static_cast<std::int32_t>(queue_.size());
    record.admission.reason = record.reason = std::move(reason);
    ++rejected_;
    if (tel_.bound) tel_.rejected->add(1);
    cv_done_.notify_all();
  };

  if (!plan) {
    reject(cat("spec did not build: ", build_error), 0);
    return id;
  }
  record.admission.need_bytes = plan->demand.total_bytes;
  if (!plan->demand.executable) {
    reject(cat("non-executable under capacity ",
               request.config.capacity_per_proc, " (Def. 6): ",
               plan->demand.failure),
           0);
    return id;
  }
  if (plan->demand.total_bytes > options_.budget_bytes) {
    reject(cat("needs ", plan->demand.total_bytes,
               " bytes but the whole budget is ", options_.budget_bytes,
               " (short by ",
               plan->demand.total_bytes - options_.budget_bytes, " bytes)"),
           plan->demand.total_bytes - options_.budget_bytes);
    return id;
  }

  Pending pending;
  pending.run_id = id;
  pending.plan = std::move(plan);
  pending.request = std::move(request);
  pending.submit_ns = now_ns();
  pending.deadline_ns =
      pending.request.deadline_us > 0
          ? pending.submit_ns + pending.request.deadline_us * 1000
          : std::numeric_limits<std::int64_t>::max();

  if (static_cast<std::int32_t>(queue_.size()) >= options_.queue_limit) {
    // Overload: the bounded queue is full. Shed the entry with the least
    // chance of meeting its deadline — the earliest absolute deadline,
    // newcomer included (no-deadline entries never shed before dated ones).
    std::size_t victim = queue_.size();  // sentinel: the newcomer
    std::int64_t victim_deadline = pending.deadline_ns;
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      if (queue_[i].deadline_ns < victim_deadline) {
        victim_deadline = queue_[i].deadline_ns;
        victim = i;
      }
    }
    const std::int64_t shed_id =
        victim == queue_.size() ? id : queue_[victim].run_id;
    RunRecord& shed_rec = record_of(shed_id);
    shed_rec.state = RunState::kShed;
    shed_rec.admission.verdict = AdmissionVerdict::kShed;
    shed_rec.admission.reserved_bytes = reserved_bytes_;
    shed_rec.admission.queue_depth =
        static_cast<std::int32_t>(queue_.size());
    shed_rec.admission.reason = shed_rec.reason =
        cat("admission queue full (limit ", options_.queue_limit,
            "); shed as the earliest-deadline entry");
    ++shed_;
    if (tel_.bound) tel_.shed->add(1);
    RAPID_WARN("service: shed run " << shed_id << " (" << shed_rec.spec
                                    << ") under overload");
    if (victim != queue_.size()) {
      queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(victim));
    }
    cv_done_.notify_all();
    if (shed_id == id) return id;
  }

  record.admission.verdict =
      pending.plan->demand.total_bytes <=
              options_.budget_bytes - reserved_bytes_
          ? AdmissionVerdict::kAdmitted
          : AdmissionVerdict::kQueued;
  queue_.push_back(std::move(pending));
  record.admission.queue_depth = static_cast<std::int32_t>(queue_.size());
  peak_queue_depth_ = std::max(peak_queue_depth_,
                               static_cast<std::int32_t>(queue_.size()));
  lock.unlock();
  cv_work_.notify_all();
  return id;
}

void RuntimeService::sweep_expired_locked() {
  const std::int64_t now = now_ns();
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->deadline_ns > now) {
      ++it;
      continue;
    }
    RunRecord& record = record_of(it->run_id);
    record.state = RunState::kExpired;
    record.wait_us = (now - it->submit_ns) / 1000;
    record.reason = cat("deadline of ", it->request.deadline_us,
                        " us lapsed while queued (waited ", record.wait_us,
                        " us)");
    ++expired_;
    if (tel_.bound) tel_.expired->add(1);
    it = queue_.erase(it);
    cv_done_.notify_all();
  }
}

int RuntimeService::pick_locked() const {
  const std::int64_t available = options_.budget_bytes - reserved_bytes_;
  int best = -1;
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const Pending& c = queue_[i];
    if (c.plan->demand.total_bytes > available) continue;
    if (best < 0) {
      best = static_cast<int>(i);
      continue;
    }
    const Pending& b = queue_[static_cast<std::size_t>(best)];
    if (c.request.priority != b.request.priority) {
      if (c.request.priority > b.request.priority) best = static_cast<int>(i);
    } else if (c.deadline_ns != b.deadline_ns) {
      if (c.deadline_ns < b.deadline_ns) best = static_cast<int>(i);
    }  // else FIFO: the earlier index already wins
  }
  return best;
}

void RuntimeService::worker_loop() {
  std::unique_lock<std::mutex> lock(m_);
  for (;;) {
    sweep_expired_locked();
    const int idx = pick_locked();
    if (idx < 0) {
      if (stopping_ && queue_.empty()) return;
      // The wait_for bound doubles as the queued-deadline sweep cadence.
      cv_work_.wait_for(lock, std::chrono::milliseconds(20));
      continue;
    }
    Pending pending = std::move(queue_[static_cast<std::size_t>(idx)]);
    queue_.erase(queue_.begin() + idx);
    RunRecord& record = record_of(pending.run_id);
    const std::int64_t need = pending.plan->demand.total_bytes;
    reserved_bytes_ += need;
    peak_reserved_bytes_ = std::max(peak_reserved_bytes_, reserved_bytes_);
    RAPID_CHECK(reserved_bytes_ <= options_.budget_bytes,
                "admission invariant violated: reservations exceed budget");
    record.state = RunState::kRunning;
    record.wait_us = (now_ns() - pending.submit_ns) / 1000;
    ++running_;
    lock.unlock();

    execute(record, std::move(pending));

    lock.lock();
    reserved_bytes_ -= need;
    --running_;
    switch (record.state) {
      case RunState::kCompleted:
        ++completed_;
        if (tel_.bound) tel_.completed->add(1);
        break;
      case RunState::kFailed:
        ++failed_;
        if (tel_.bound) tel_.failed->add(1);
        break;
      case RunState::kExpired:
        ++expired_;
        if (tel_.bound) tel_.expired->add(1);
        break;
      default:
        RAPID_FAIL("execute() left a non-terminal state");
    }
    if (tel_.bound) {
      tel_.wait_us->observe(record.wait_us);
      tel_.latency_us->observe(record.wait_us + record.exec_us);
    }
    cv_work_.notify_all();
    cv_done_.notify_all();
  }
}

void RuntimeService::execute(RunRecord& record, Pending pending) {
  const RunRequest& req = pending.request;
  Stopwatch exec_timer;
  // The run happens with m_ released, so every record field is staged in
  // locals and committed under the lock at the end: wait()'s predicate and
  // to_json() snapshots read the record whenever cv_done_ stirs.
  RunState state = RunState::kFailed;
  std::string reason;
  bool has_outcome = false;
  rt::RecoveryRun outcome;
  double residual = -1.0;
  bool numerics_ok = false;

  const auto commit = [&] {
    std::lock_guard<std::mutex> lock(m_);
    record.exec_us = exec_timer.nanos() / 1000;
    record.state = state;
    if (!reason.empty()) record.reason = std::move(reason);
    record.has_outcome = has_outcome;
    if (has_outcome) record.outcome = std::move(outcome);
    record.residual = residual;
    record.numerics_ok = numerics_ok;
  };

  std::int64_t remaining_us = 0;  // 0 = no deadline
  if (pending.deadline_ns != std::numeric_limits<std::int64_t>::max()) {
    remaining_us = (pending.deadline_ns - now_ns()) / 1000;
    if (remaining_us <= 0) {
      state = RunState::kExpired;
      reason = cat("deadline of ", req.deadline_us,
                   " us lapsed between pick and dispatch");
      commit();
      return;
    }
  }

  rt::ThreadedOptions options = req.options;
  options.run_id = record.run_id;
  if (remaining_us > 0 &&
      (options.attempt_deadline_us <= 0 ||
       options.attempt_deadline_us > remaining_us)) {
    options.attempt_deadline_us = remaining_us;
  }
  rt::RunRecoveryOptions ropts = req.recovery;
  ropts.capture_failure = true;
  if (remaining_us > 0 && (ropts.attempt_deadline_us <= 0 ||
                           ropts.attempt_deadline_us > remaining_us)) {
    ropts.attempt_deadline_us = remaining_us;
  }

  const num::ShmWorkload& workload = *pending.plan->workload;
  try {
    outcome = rt::run_with_recovery(workload.plan, req.config,
                                    workload.make_init(),
                                    workload.make_body(), options, ropts);
    has_outcome = true;
    if (!outcome.failed && outcome.report.executable) {
      residual = workload.residual(*outcome.executor);
      numerics_ok = residual_ok(record.spec, residual);
      state = RunState::kCompleted;
    } else if (outcome.failed &&
               outcome.failure_kind == rt::FailureKind::kCancelled) {
      // The cooperative per-run deadline fired mid-flight: the partial
      // report survives, the arena went with the executor.
      state = RunState::kExpired;
      reason = outcome.failure;
    } else {
      state = RunState::kFailed;
      reason = outcome.failed ? outcome.failure : outcome.report.failure;
    }
    // Completed or not, drop the executor now: records outlive runs, and a
    // parked arena would silently outlast its budget reservation.
    outcome.executor.reset();
    if (tel_.bound) {
      // Fold the finished run's RunReport into the live plane: recovery
      // totals as counter deltas (each run's totals are final here, so a
      // snapshot's counters equal the summed per-run reports), and the
      // traced distributions bucket-exactly via the shared bucket rule.
      const rt::RecoveryCounters& rc = outcome.report.recovery;
      tel_.recovery_nacks->add(rc.nacks_sent);
      tel_.recovery_resends->add(rc.resends + rc.flag_resends);
      tel_.recovery_task_retries->add(rc.task_retries);
      tel_.recovery_run_attempts->add(
          std::max<std::int64_t>(rc.run_attempts, 1));
      if (outcome.report.metrics) {
        tel_.task_us->merge(outcome.report.metrics->task_us);
        tel_.put_bytes->merge(outcome.report.metrics->put_bytes);
      }
    }
  } catch (const Error& e) {
    // Infrastructure failure the recovery layer could not structure (e.g. a
    // RAPID_CHECK tripping). Contained to this run.
    state = RunState::kFailed;
    reason = cat("infrastructure error: ", e.what());
  }
  commit();
}

const RunRecord& RuntimeService::wait(std::int64_t run_id) {
  std::unique_lock<std::mutex> lock(m_);
  RunRecord& record = record_of(run_id);
  cv_done_.wait(lock, [&] { return is_terminal(record.state); });
  return record;
}

std::vector<const RunRecord*> RuntimeService::wait_all() {
  std::vector<std::int64_t> ids;
  {
    std::lock_guard<std::mutex> lock(m_);
    ids = submit_order_;
  }
  std::vector<const RunRecord*> out;
  out.reserve(ids.size());
  for (const std::int64_t id : ids) out.push_back(&wait(id));
  return out;
}

ServiceReport RuntimeService::report() const {
  ServiceReport r;
  {
    std::lock_guard<std::mutex> lock(m_);
    r.submitted = next_run_id_;
    r.completed = completed_;
    r.failed = failed_;
    r.rejected = rejected_;
    r.shed = shed_;
    r.expired = expired_;
    r.budget_bytes = options_.budget_bytes;
    r.peak_reserved_bytes = peak_reserved_bytes_;
    r.peak_queue_depth = peak_queue_depth_;
  }
  r.cache_hits = cache_.hits();
  r.cache_misses = cache_.misses();
  return r;
}

}  // namespace rapid::svc
