// Tiny command-line flag parser for the bench and example binaries.
// Supports --name=value and --name value; unknown flags are an error so
// typos in sweep scripts fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rapid {

class Flags {
 public:
  /// Registers a flag with a default and a help line. Must be called before
  /// parse(). Returns *this for chaining.
  Flags& define(const std::string& name, const std::string& default_value,
                const std::string& help);

  /// Parses argv. Throws rapid::Error on unknown flags or missing values.
  /// Recognizes --help: prints usage and sets help_requested().
  void parse(int argc, const char* const* argv);

  bool help_requested() const { return help_requested_; }

  std::string get(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  /// Comma-separated integer list, e.g. --procs=2,4,8.
  std::vector<std::int64_t> get_int_list(const std::string& name) const;

  std::string usage(const std::string& program) const;

 private:
  struct Spec {
    std::string default_value;
    std::string help;
  };
  std::map<std::string, Spec> specs_;
  std::map<std::string, std::string> values_;
  bool help_requested_ = false;
};

}  // namespace rapid
