// Monotonic time for the whole repo: benches, the threaded executor, and
// the tracer all read the same clock, so their timestamps are directly
// comparable. now_ns() is the single primitive; Stopwatch is sugar on top.
#pragma once

#include <chrono>
#include <cstdint>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define RAPID_TSC_CLOCK 1
#include <x86intrin.h>
#endif

namespace rapid {

/// Monotonic nanoseconds since an arbitrary (per-process) epoch.
inline std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

#ifdef RAPID_TSC_CLOCK
namespace detail {

/// One-time calibration of the x86 TSC against steady_clock. The tracer
/// stamps events with rdtsc (~20ns) instead of clock_gettime (~50ns, a real
/// syscall on some VMs); with thousands of events per run the difference is
/// measurable in the traced-vs-untraced overhead guard. Invariant TSC (all
/// x86_64 since ~2008) is monotone and constant-rate; small cross-core skew
/// is acceptable for tracing.
struct TscCalibration {
  double ns_per_tick = 0.0;
};

inline const TscCalibration& tsc_calibration() {
  static const TscCalibration cal = [] {
    TscCalibration c;
    const std::uint64_t t0 = __rdtsc();
    const std::int64_t n0 = now_ns();
    // 200us window: clock_gettime jitter (~50ns per read) contributes
    // <0.1% relative error, i.e. <10us of skew over a 10ms trace.
    while (now_ns() - n0 < 200'000) {
    }
    const std::uint64_t t1 = __rdtsc();
    const std::int64_t n1 = now_ns();
    c.ns_per_tick =
        static_cast<double>(n1 - n0) / static_cast<double>(t1 - t0);
    return c;
  }();
  return cal;
}

}  // namespace detail
#endif  // RAPID_TSC_CLOCK

class Stopwatch {
 public:
  Stopwatch() : start_ns_(now_ns()) {}

  void reset() { start_ns_ = now_ns(); }

  std::int64_t nanos() const { return now_ns() - start_ns_; }

  /// Elapsed seconds since construction or last reset().
  double seconds() const { return static_cast<double>(nanos()) * 1e-9; }

  double millis() const { return static_cast<double>(nanos()) * 1e-6; }

 private:
  std::int64_t start_ns_;
};

}  // namespace rapid
