#include "rapid/support/backoff.hpp"

#include <algorithm>
#include <thread>

namespace rapid {

std::int64_t RetryPolicy::delay_us(std::int32_t attempt) const {
  double d = static_cast<double>(base_delay_us);
  for (std::int32_t k = 1; k < attempt; ++k) d *= std::max(1.0, multiplier);
  return static_cast<std::int64_t>(std::min(d, 1e12));
}

std::int64_t RetryPolicy::total_wait_us() const {
  std::int64_t total = 0;
  for (std::int32_t k = 1; k <= max_attempts; ++k) {
    total = sat_add_i64(total, delay_us(k));
    // Every later attempt's delay is >= this one, so once the running sum
    // saturates no further term can change the answer.
    if (total == INT64_MAX) break;
  }
  return total;
}

void Backoff::pause(std::uint64_t seen) {
  if (attempts_ < spin_iters_) {
    if (attempts_ < spin_iters_ / 2) {
      cpu_relax();
    } else {
      std::this_thread::yield();
    }
    ++attempts_;
    return;
  }
  ++parks_;
  if (!bell_.wait(seen, park_timeout_us_)) ++park_timeouts_;
}

}  // namespace rapid
