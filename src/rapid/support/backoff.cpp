#include "rapid/support/backoff.hpp"

#include <thread>

namespace rapid {

void Backoff::pause(std::uint64_t seen) {
  if (attempts_ < spin_iters_) {
    if (attempts_ < spin_iters_ / 2) {
      cpu_relax();
    } else {
      std::this_thread::yield();
    }
    ++attempts_;
    return;
  }
  ++parks_;
  if (!bell_.wait(seen, park_timeout_us_)) ++park_timeouts_;
}

}  // namespace rapid
