// String formatting helpers shared by logs, error messages and benches.
#pragma once

#include <sstream>
#include <string>
#include <vector>

namespace rapid {

/// Concatenates stream-printable arguments into a std::string.
template <typename... Args>
std::string cat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}

/// Fixed-precision decimal rendering, e.g. fixed(3.14159, 2) == "3.14".
std::string fixed(double value, int digits);

/// Renders a ratio as a signed percentage, e.g. pct(0.123) == "+12.3%".
std::string pct(double ratio, int digits = 1);

/// Splits on a single character, keeping empty fields.
std::vector<std::string> split(const std::string& text, char sep);

/// Human-readable byte count ("1.50 MB").
std::string human_bytes(double bytes);

}  // namespace rapid
