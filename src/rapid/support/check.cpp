#include "rapid/support/check.hpp"

#include <sstream>

namespace rapid::detail {

void throw_check_failure(const char* expr, const char* file, int line,
                         const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace rapid::detail
