#include "rapid/support/log.hpp"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include <unistd.h>

namespace rapid {

namespace {
int initial_level() {
  return static_cast<int>(
      log_level_from_env(std::getenv("RAPID_LOG"), LogLevel::kWarn));
}

std::atomic<int> g_level{initial_level()};
std::mutex g_emit_mutex;
thread_local int t_proc = -1;
thread_local long long t_run = -1;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

LogLevel log_level_from_env(const char* spec, LogLevel fallback) {
  if (spec == nullptr || *spec == '\0') return fallback;
  std::string s;
  for (const char* c = spec; *c != '\0'; ++c) {
    s.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(*c))));
  }
  if (s == "debug" || s == "0") return LogLevel::kDebug;
  if (s == "info" || s == "1") return LogLevel::kInfo;
  if (s == "warn" || s == "warning" || s == "2") return LogLevel::kWarn;
  if (s == "error" || s == "3") return LogLevel::kError;
  return fallback;
}

void set_log_thread_proc(int proc) { t_proc = proc; }

int log_thread_proc() { return t_proc; }

void set_log_thread_run(long long run_id) { t_run = run_id; }

long long log_thread_run() { return t_run; }

namespace detail {
void log_emit(LogLevel level, const std::string& msg) {
  // The pid disambiguates interleaved stderr when the shm transport runs
  // one OS process per rank (getpid() is async-signal-safe and cheap; the
  // value changes across fork, so it cannot be cached at static-init time).
  // The run tag disambiguates co-resident service runs in one process.
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  char tags[64] = {'\0'};
  int n = 0;
  if (t_run >= 0) {
    n += std::snprintf(tags + n, sizeof(tags) - static_cast<std::size_t>(n),
                       " r%lld", t_run);
  }
  if (t_proc >= 0 && n >= 0) {
    n += std::snprintf(tags + n, sizeof(tags) - static_cast<std::size_t>(n),
                       " p%d", t_proc);
  }
  if (n < 0) tags[0] = '\0';
  std::fprintf(stderr, "[rapid %s pid%ld%s] %s\n", level_name(level),
               static_cast<long>(::getpid()), tags, msg.c_str());
}
}  // namespace detail

}  // namespace rapid
