// POSIX shared-memory plumbing for the cross-process transport backend:
// a named segment wrapper (shm_open + ftruncate + mmap MAP_SHARED), a
// futex-backed Bell whose state lives inside the segment, and a tiny
// spinlock that survives a SIGKILLed holder by bailing out when the run's
// abort flag rises. Everything here is offset/POD based — the segment is
// mapped at different addresses in every process, so no pointer ever
// crosses a process boundary.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "rapid/support/backoff.hpp"

namespace rapid {

/// A named POSIX shared-memory segment. The creating (coordinator) process
/// owns the name: its destructor unlinks it. Attaching processes map the
/// existing segment and only unmap on destruction. Mappings are
/// MAP_SHARED, so plain std::atomic objects placement-new'd into the
/// segment give real cross-process ordering on every platform we target
/// (all lock-free, address-free atomics).
class ShmSegment {
 public:
  ShmSegment() = default;
  ShmSegment(const ShmSegment&) = delete;
  ShmSegment& operator=(const ShmSegment&) = delete;
  ShmSegment(ShmSegment&& other) noexcept;
  ShmSegment& operator=(ShmSegment&& other) noexcept;
  ~ShmSegment();

  /// Creates (O_CREAT | O_EXCL) a segment of `bytes` bytes, zero-filled.
  /// Throws rapid::Error on failure.
  static ShmSegment create(const std::string& name, std::int64_t bytes);

  /// Maps an existing segment created by another process.
  static ShmSegment attach(const std::string& name);

  std::byte* data() const { return data_; }
  std::int64_t size() const { return size_; }
  const std::string& name() const { return name_; }
  bool valid() const { return data_ != nullptr; }

  /// Unmaps (and unlinks, if owner) early; the destructor is then a no-op.
  void close();

 private:
  std::string name_;
  std::byte* data_ = nullptr;
  std::int64_t size_ = 0;
  bool owner_ = false;
};

/// Bell state embedded in a shared segment. `count` is the progress
/// counter (the doorbell value); `word` is the 32-bit futex cell (a
/// truncated shadow of count — only inequality matters); `sleepers` gates
/// the wake syscall exactly like Doorbell's condvar path.
struct ShmBellState {
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint32_t> word{0};
  std::atomic<std::int32_t> sleepers{0};
};
static_assert(std::atomic<std::uint64_t>::is_always_lock_free);
static_assert(std::atomic<std::uint32_t>::is_always_lock_free);

/// Futex-backed Bell over segment-resident state. Same handshake contract
/// as Doorbell: ring() bumps count and word with seq_cst so it cannot
/// reorder against a waiter's (register-sleeper, re-check-count) pair;
/// wait() re-checks the counter after registering as a sleeper and before
/// the kernel wait, so a ring between the caller's predicate check and the
/// park is never lost (the futex compare re-checks `word` atomically in
/// the kernel).
class FutexBell final : public Bell {
 public:
  explicit FutexBell(ShmBellState* s) : s_(s) {}

  std::uint64_t value() const override {
    return s_->count.load(std::memory_order_acquire);
  }

  void ring() override;
  bool wait(std::uint64_t seen, std::int64_t timeout_us) override;

 private:
  ShmBellState* s_;
};

/// Spinlock over a segment-resident word, used for the (coarse, cold)
/// mailbox and NACK channels. A holder can die by SIGKILL while the lock
/// is taken; acquire() therefore periodically checks the run's abort flag
/// and gives up (returns false) once the coordinator has declared the run
/// dead, so no survivor can wedge on a corpse's lock. There is no
/// ownership recovery — the protocol is fail-stop past that point.
class ShmSpinLock {
 public:
  /// Returns false iff the abort flag rose while spinning.
  static bool acquire(std::atomic<std::uint32_t>& lock,
                      const std::atomic<std::uint32_t>& abort_flag);
  static void release(std::atomic<std::uint32_t>& lock);
};

}  // namespace rapid
