#include "rapid/support/shm.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <ctime>
#include <utility>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#endif

#include "rapid/support/check.hpp"
#include "rapid/support/str.hpp"

namespace rapid {

namespace {

[[noreturn]] void throw_errno(const char* what, const std::string& name) {
  throw Error(cat("shm: ", what, " failed for '", name, "': ",
                  std::strerror(errno)));
}

#if defined(__linux__)
// Raw futex syscall over process-shared (non-PRIVATE) words. glibc exposes
// no wrapper; the two ops we use are WAIT (with relative timeout) and
// WAKE-all.
long futex_call(std::atomic<std::uint32_t>* addr, int op, std::uint32_t val,
                const timespec* timeout) {
  return syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(addr), op, val,
                 timeout, nullptr, 0);
}
#endif

void futex_wait(std::atomic<std::uint32_t>* addr, std::uint32_t expected,
                std::int64_t timeout_us) {
#if defined(__linux__)
  timespec ts;
  ts.tv_sec = timeout_us / 1'000'000;
  ts.tv_nsec = (timeout_us % 1'000'000) * 1'000;
  // EAGAIN (word moved), EINTR, and ETIMEDOUT are all fine: the caller
  // re-checks its predicate regardless.
  futex_call(addr, FUTEX_WAIT, expected, &ts);
#else
  // Portable fallback: bounded sleep-poll. Correctness only needs the
  // caller's post-wait re-check; this just costs latency.
  (void)addr;
  (void)expected;
  timespec ts;
  ts.tv_sec = 0;
  ts.tv_nsec = std::min<std::int64_t>(timeout_us, 2000) * 1'000;
  nanosleep(&ts, nullptr);
#endif
}

void futex_wake_all(std::atomic<std::uint32_t>* addr) {
#if defined(__linux__)
  futex_call(addr, FUTEX_WAKE, INT32_MAX, nullptr);
#else
  (void)addr;
#endif
}

}  // namespace

ShmSegment::ShmSegment(ShmSegment&& other) noexcept
    : name_(std::move(other.name_)),
      data_(other.data_),
      size_(other.size_),
      owner_(other.owner_) {
  other.data_ = nullptr;
  other.size_ = 0;
  other.owner_ = false;
}

ShmSegment& ShmSegment::operator=(ShmSegment&& other) noexcept {
  if (this != &other) {
    close();
    name_ = std::move(other.name_);
    data_ = other.data_;
    size_ = other.size_;
    owner_ = other.owner_;
    other.data_ = nullptr;
    other.size_ = 0;
    other.owner_ = false;
  }
  return *this;
}

ShmSegment::~ShmSegment() { close(); }

void ShmSegment::close() {
  if (data_ != nullptr) {
    ::munmap(data_, static_cast<std::size_t>(size_));
    data_ = nullptr;
  }
  if (owner_ && !name_.empty()) {
    ::shm_unlink(name_.c_str());
    owner_ = false;
  }
}

ShmSegment ShmSegment::create(const std::string& name, std::int64_t bytes) {
  int fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  if (fd < 0) throw_errno("shm_open(create)", name);
  if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
    ::close(fd);
    ::shm_unlink(name.c_str());
    throw_errno("ftruncate", name);
  }
  void* p = ::mmap(nullptr, static_cast<std::size_t>(bytes),
                   PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (p == MAP_FAILED) {
    ::shm_unlink(name.c_str());
    throw_errno("mmap", name);
  }
  ShmSegment seg;
  seg.name_ = name;
  seg.data_ = static_cast<std::byte*>(p);
  seg.size_ = bytes;
  seg.owner_ = true;
  return seg;
}

ShmSegment ShmSegment::attach(const std::string& name) {
  int fd = ::shm_open(name.c_str(), O_RDWR, 0600);
  if (fd < 0) throw_errno("shm_open(attach)", name);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw_errno("fstat", name);
  }
  void* p = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                   PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (p == MAP_FAILED) throw_errno("mmap", name);
  ShmSegment seg;
  seg.name_ = name;
  seg.data_ = static_cast<std::byte*>(p);
  seg.size_ = static_cast<std::int64_t>(st.st_size);
  seg.owner_ = false;
  return seg;
}

void FutexBell::ring() {
  s_->count.fetch_add(1, std::memory_order_seq_cst);
  s_->word.fetch_add(1, std::memory_order_seq_cst);
  if (s_->sleepers.load(std::memory_order_seq_cst) != 0) {
    futex_wake_all(&s_->word);
  }
}

bool FutexBell::wait(std::uint64_t seen, std::int64_t timeout_us) {
  s_->sleepers.fetch_add(1, std::memory_order_seq_cst);
  std::uint32_t w = s_->word.load(std::memory_order_seq_cst);
  if (s_->count.load(std::memory_order_seq_cst) == seen) {
    // The kernel re-checks word == w under its own lock, so a ring that
    // lands between this load and the sleep wakes us immediately.
    futex_wait(&s_->word, w, timeout_us);
  }
  s_->sleepers.fetch_sub(1, std::memory_order_relaxed);
  return s_->count.load(std::memory_order_acquire) != seen;
}

bool ShmSpinLock::acquire(std::atomic<std::uint32_t>& lock,
                         const std::atomic<std::uint32_t>& abort_flag) {
  for (std::int64_t spins = 0;; ++spins) {
    std::uint32_t expected = 0;
    if (lock.compare_exchange_weak(expected, 1, std::memory_order_acquire,
                                   std::memory_order_relaxed)) {
      return true;
    }
    cpu_relax();
    if ((spins & 1023) == 1023 &&
        abort_flag.load(std::memory_order_acquire) != 0) {
      return false;
    }
  }
}

void ShmSpinLock::release(std::atomic<std::uint32_t>& lock) {
  lock.store(0, std::memory_order_release);
}

}  // namespace rapid
