// Minimal JSON value builder + writer for the bench harnesses'
// machine-readable output (--json). Write-only by design: benches build a
// JsonValue tree and dump() it; nothing in the repo parses JSON. Object keys
// keep insertion order so emitted files diff cleanly across runs.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace rapid {

class JsonValue {
 public:
  JsonValue() : kind_(Kind::kNull) {}
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}  // NOLINT(google-explicit-constructor)
  JsonValue(double d) : kind_(Kind::kNumber), num_(d) {}  // NOLINT(google-explicit-constructor)
  JsonValue(std::int64_t i)  // NOLINT(google-explicit-constructor)
      : kind_(Kind::kInt), int_(i) {}
  JsonValue(int i) : kind_(Kind::kInt), int_(i) {}  // NOLINT(google-explicit-constructor)
  JsonValue(std::string s)  // NOLINT(google-explicit-constructor)
      : kind_(Kind::kString), str_(std::move(s)) {}
  JsonValue(const char* s) : kind_(Kind::kString), str_(s) {}  // NOLINT(google-explicit-constructor)

  static JsonValue object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }
  static JsonValue array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }

  /// Object member access; inserts a null member on first use. Only valid
  /// on objects (or null values, which become objects).
  JsonValue& operator[](const std::string& key);

  /// Appends to an array (null values become arrays).
  JsonValue& push_back(JsonValue v);

  bool is_null() const { return kind_ == Kind::kNull; }

  /// Serializes with 2-space indentation and a trailing newline at the top
  /// level, suitable for committing as an artifact.
  std::string dump() const;

 private:
  enum class Kind { kNull, kBool, kInt, kNumber, kString, kArray, kObject };

  void write(std::string& out, int indent) const;

  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double num_ = 0.0;
  std::string str_;
  std::vector<JsonValue> arr_;
  std::vector<std::pair<std::string, JsonValue>> obj_;
};

}  // namespace rapid
