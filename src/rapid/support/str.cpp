#include "rapid/support/str.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace rapid {

std::string fixed(double value, int digits) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.*f", digits, value);
  return std::string(buf.data());
}

std::string pct(double ratio, int digits) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%+.*f%%", digits, ratio * 100.0);
  return std::string(buf.data());
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : text) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

std::string human_bytes(double bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  int unit = 0;
  while (std::abs(bytes) >= 1024.0 && unit < 4) {
    bytes /= 1024.0;
    ++unit;
  }
  return fixed(bytes, unit == 0 ? 0 : 2) + " " + kUnits[unit];
}

}  // namespace rapid
