#include "rapid/support/json.hpp"

#include <cmath>
#include <cstdio>

#include "rapid/support/check.hpp"

namespace rapid {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          // Cast before formatting: a plain (signed) char promotes to a
          // negative int for bytes >= 0x80, which %x would render as
          // "￿ffXX" — invalid JSON.
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;  // UTF-8 payload bytes pass through untouched
        }
    }
  }
  out += '"';
}

}  // namespace

JsonValue& JsonValue::operator[](const std::string& key) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  RAPID_CHECK(kind_ == Kind::kObject, "JsonValue::operator[] on non-object");
  for (auto& [k, v] : obj_) {
    if (k == key) return v;
  }
  obj_.emplace_back(key, JsonValue());
  return obj_.back().second;
}

JsonValue& JsonValue::push_back(JsonValue v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  RAPID_CHECK(kind_ == Kind::kArray, "JsonValue::push_back on non-array");
  arr_.push_back(std::move(v));
  return arr_.back();
}

void JsonValue::write(std::string& out, int indent) const {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  const std::string pad_in(static_cast<std::size_t>(indent + 1) * 2, ' ');
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kInt:
      out += std::to_string(int_);
      break;
    case Kind::kNumber: {
      if (std::isfinite(num_)) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.9g", num_);
        out += buf;
      } else {
        out += "null";  // JSON has no inf/nan
      }
      break;
    }
    case Kind::kString:
      append_escaped(out, str_);
      break;
    case Kind::kArray: {
      if (arr_.empty()) {
        out += "[]";
        break;
      }
      out += "[\n";
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        out += pad_in;
        arr_[i].write(out, indent + 1);
        if (i + 1 < arr_.size()) out += ',';
        out += '\n';
      }
      out += pad + "]";
      break;
    }
    case Kind::kObject: {
      if (obj_.empty()) {
        out += "{}";
        break;
      }
      out += "{\n";
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        out += pad_in;
        append_escaped(out, obj_[i].first);
        out += ": ";
        obj_[i].second.write(out, indent + 1);
        if (i + 1 < obj_.size()) out += ',';
        out += '\n';
      }
      out += pad + "}";
      break;
    }
  }
}

std::string JsonValue::dump() const {
  std::string out;
  write(out, 0);
  out += '\n';
  return out;
}

}  // namespace rapid
