#include "rapid/support/flags.hpp"

#include <cstdio>
#include <cstdlib>

#include "rapid/support/check.hpp"
#include "rapid/support/str.hpp"

namespace rapid {

Flags& Flags::define(const std::string& name, const std::string& default_value,
                     const std::string& help) {
  RAPID_CHECK(!specs_.count(name), cat("duplicate flag --", name));
  specs_[name] = Spec{default_value, help};
  return *this;
}

void Flags::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    RAPID_CHECK(arg.rfind("--", 0) == 0, cat("expected --flag, got ", arg));
    arg = arg.substr(2);
    if (arg == "help") {
      std::fputs(usage(argv[0]).c_str(), stdout);
      help_requested_ = true;
      return;
    }
    std::string name, value;
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      RAPID_CHECK(i + 1 < argc, cat("flag --", name, " needs a value"));
      value = argv[++i];
    }
    RAPID_CHECK(specs_.count(name), cat("unknown flag --", name));
    values_[name] = value;
  }
}

std::string Flags::get(const std::string& name) const {
  auto spec = specs_.find(name);
  RAPID_CHECK(spec != specs_.end(), cat("undefined flag --", name));
  auto it = values_.find(name);
  return it == values_.end() ? spec->second.default_value : it->second;
}

std::int64_t Flags::get_int(const std::string& name) const {
  const std::string v = get(name);
  char* end = nullptr;
  const long long out = std::strtoll(v.c_str(), &end, 10);
  RAPID_CHECK(end && *end == '\0' && !v.empty(),
              cat("--", name, " expects an integer, got '", v, "'"));
  return out;
}

double Flags::get_double(const std::string& name) const {
  const std::string v = get(name);
  char* end = nullptr;
  const double out = std::strtod(v.c_str(), &end);
  RAPID_CHECK(end && *end == '\0' && !v.empty(),
              cat("--", name, " expects a number, got '", v, "'"));
  return out;
}

bool Flags::get_bool(const std::string& name) const {
  const std::string v = get(name);
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  RAPID_FAIL(cat("--", name, " expects a boolean, got '", v, "'"));
}

std::vector<std::int64_t> Flags::get_int_list(const std::string& name) const {
  std::vector<std::int64_t> out;
  for (const auto& piece : split(get(name), ',')) {
    if (piece.empty()) continue;
    char* end = nullptr;
    const long long v = std::strtoll(piece.c_str(), &end, 10);
    RAPID_CHECK(end && *end == '\0',
                cat("--", name, ": bad list element '", piece, "'"));
    out.push_back(v);
  }
  return out;
}

std::string Flags::usage(const std::string& program) const {
  std::string out = "usage: " + program + " [flags]\n";
  for (const auto& [name, spec] : specs_) {
    out += cat("  --", name, " (default: ", spec.default_value, ")\n      ",
               spec.help, "\n");
  }
  return out;
}

}  // namespace rapid
