// Error handling primitives shared by every rapid module.
//
// RAPID_CHECK is for conditions that indicate caller error or internal
// invariant violations; it throws rapid::Error (never aborts) so tests can
// assert on failures. RAPID_ASSERT compiles away in NDEBUG builds and is for
// hot-path internal invariants only.
#pragma once

#include <stdexcept>
#include <string>

namespace rapid {

/// Exception type thrown by all rapid libraries on precondition or
/// invariant failure. Carries the failing expression and location.
class Error : public std::runtime_error {
 public:
  explicit Error(std::string what) : std::runtime_error(std::move(what)) {}
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* expr, const char* file,
                                      int line, const std::string& msg);
}  // namespace detail

}  // namespace rapid

/// Throws rapid::Error if `expr` is false. `msg` is any expression
/// convertible to std::string (may be built with rapid::cat()).
#define RAPID_CHECK(expr, msg)                                              \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::rapid::detail::throw_check_failure(#expr, __FILE__, __LINE__,       \
                                           (msg));                          \
    }                                                                       \
  } while (0)

/// Unconditional failure with a message.
#define RAPID_FAIL(msg) \
  ::rapid::detail::throw_check_failure("RAPID_FAIL", __FILE__, __LINE__, (msg))

#ifdef NDEBUG
#define RAPID_ASSERT(expr) ((void)0)
#else
#define RAPID_ASSERT(expr) RAPID_CHECK(expr, "debug assertion")
#endif
