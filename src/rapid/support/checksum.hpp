// CRC32C (Castagnoli) for the runtime's integrity-checked RMA. Software
// slice-by-4 table implementation — fast enough that checksumming a content
// put is noise next to the memcpy it guards, with no ISA dependence. The
// polynomial matches iSCSI/ext4 so values can be cross-checked against any
// standard crc32c tool.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace rapid {

/// CRC32C of a byte range. `seed` chains calls: crc32c(b) ==
/// crc32c(b2, crc32c(b1)) for any split b = b1 ++ b2.
std::uint32_t crc32c(std::span<const std::byte> bytes, std::uint32_t seed = 0);

/// Folds one 64-bit value into a running CRC32C. Used to checksum
/// structured messages (address packages) field by field, so struct padding
/// never enters the digest.
std::uint32_t crc32c_u64(std::uint64_t value, std::uint32_t seed);

}  // namespace rapid
