// Exit-code contract shared by every CLI in this repo (rapid_check,
// rapid_verify, rapid_trace, rapid_serve, bench_executor, …):
//
//   0  clean — the tool ran and found nothing wrong
//   1  findings — the tool ran to completion and the thing it checks is
//      bad (audit errors, conformance findings, failed/shed/inexact runs,
//      a guard row tripping). The artifact/JSON it wrote is valid and
//      describes the findings.
//   2  infrastructure error — the tool itself could not do its job (bad
//      flags, unbuildable workload, I/O failure, unexpected exception).
//      Outputs may be missing or partial.
//
// CI lanes branch on the distinction: findings fail the quality gate with
// artifacts to read, infrastructure errors fail the lane itself. A CLI must
// never report findings by crashing (an uncaught exception aborts with a
// signal status, which reads as infrastructure).
#pragma once

namespace rapid {

inline constexpr int kExitOk = 0;
inline constexpr int kExitFindings = 1;
inline constexpr int kExitInfraError = 2;

}  // namespace rapid
