#include "rapid/support/checksum.hpp"

#include <array>
#include <cstring>

namespace rapid {

namespace {

constexpr std::uint32_t kPoly = 0x82F63B78u;  // CRC32C, reflected

struct Tables {
  // tab[k][b]: CRC of byte b followed by k zero bytes — slice-by-4.
  std::array<std::array<std::uint32_t, 256>, 4> tab{};
};

Tables make_tables() {
  Tables t;
  for (std::uint32_t b = 0; b < 256; ++b) {
    std::uint32_t crc = b;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
    }
    t.tab[0][b] = crc;
  }
  for (std::uint32_t b = 0; b < 256; ++b) {
    std::uint32_t crc = t.tab[0][b];
    for (std::size_t k = 1; k < 4; ++k) {
      crc = t.tab[0][crc & 0xFFu] ^ (crc >> 8);
      t.tab[k][b] = crc;
    }
  }
  return t;
}

const Tables& tables() {
  static const Tables t = make_tables();
  return t;
}

}  // namespace

std::uint32_t crc32c(std::span<const std::byte> bytes, std::uint32_t seed) {
  const Tables& t = tables();
  std::uint32_t crc = ~seed;
  const auto* p = reinterpret_cast<const unsigned char*>(bytes.data());
  std::size_t n = bytes.size();
  while (n >= 4) {
    std::uint32_t word;
    std::memcpy(&word, p, 4);
    crc ^= word;
    crc = t.tab[3][crc & 0xFFu] ^ t.tab[2][(crc >> 8) & 0xFFu] ^
          t.tab[1][(crc >> 16) & 0xFFu] ^ t.tab[0][crc >> 24];
    p += 4;
    n -= 4;
  }
  while (n > 0) {
    crc = t.tab[0][(crc ^ *p) & 0xFFu] ^ (crc >> 8);
    ++p;
    --n;
  }
  return ~crc;
}

std::uint32_t crc32c_u64(std::uint64_t value, std::uint32_t seed) {
  std::array<std::byte, 8> buf;
  std::memcpy(buf.data(), &value, 8);
  return crc32c(buf, seed);
}

}  // namespace rapid
