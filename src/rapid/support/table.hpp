// ASCII table rendering for the benchmark harnesses. Every bench binary
// prints the paper's table next to our measured values using this.
#pragma once

#include <string>
#include <vector>

namespace rapid {

/// Column-aligned text table. Cells are strings; the first added row is the
/// header. Renders with a separator under the header, e.g.
///
///   #procs  ratio
///   ------  -----
///   2       1.88
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Adds a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  std::string render() const;

  std::size_t num_rows() const { return rows_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rapid
