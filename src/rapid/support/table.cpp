#include "rapid/support/table.hpp"

#include <algorithm>

#include "rapid/support/check.hpp"
#include "rapid/support/str.hpp"

namespace rapid {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  RAPID_CHECK(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> row) {
  RAPID_CHECK(row.size() == header_.size(),
              cat("row arity ", row.size(), " != header arity ",
                  header_.size()));
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      if (c + 1 < row.size()) {
        out.append(width[c] - row[c].size() + 2, ' ');
      }
    }
    out += '\n';
  };
  std::string out;
  emit_row(header_, out);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out.append(width[c], '-');
    if (c + 1 < header_.size()) out.append(2, ' ');
  }
  out += '\n';
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

}  // namespace rapid
