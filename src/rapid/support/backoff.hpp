// Progress doorbell + adaptive spin-then-park backoff for the threaded
// runtime. Every protocol event (content put, flag, address package,
// mailbox consumption, task completion) rings the doorbell; blocked states
// spin briefly and then park on it instead of yield-thrashing, which is
// what keeps runs with num_procs > hardware_concurrency from degrading.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace rapid {

/// Busy-wait hint: cheaper than yield(), keeps the core but releases
/// pipeline resources to a hyperthread sibling.
inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// Saturating arithmetic for deadline/budget math derived from retry
/// policies. Callers may configure max_attempts x multiplier products whose
/// exact sum exceeds int64 microseconds (centuries); the budgets derived
/// from them must clamp, not wrap into the past.
inline std::int64_t sat_add_i64(std::int64_t a, std::int64_t b) {
  std::int64_t r = 0;
  if (__builtin_add_overflow(a, b, &r)) {
    return (a > 0) ? INT64_MAX : INT64_MIN;
  }
  return r;
}

inline std::int64_t sat_mul_i64(std::int64_t a, std::int64_t b) {
  std::int64_t r = 0;
  if (__builtin_mul_overflow(a, b, &r)) {
    return ((a > 0) == (b > 0)) ? INT64_MAX : INT64_MIN;
  }
  return r;
}

/// Abstract progress bell: the doorbell handshake contract (see Doorbell)
/// independent of the wakeup primitive. The threaded backend parks on a
/// condition variable; the shared-memory backend parks on a futex word in
/// the control segment. Blocked protocol states only ever talk to this
/// interface.
class Bell {
 public:
  virtual ~Bell() = default;
  virtual std::uint64_t value() const = 0;
  virtual void ring() = 0;
  /// Parks until value() != seen or `timeout_us` elapses; returns whether
  /// the counter moved past `seen`. Spurious wakeups are allowed.
  virtual bool wait(std::uint64_t seen, std::int64_t timeout_us) = 0;
};

/// A monotonically increasing event counter with a condition variable
/// attached. ring() is wait-free on the fast path (no sleepers): one
/// fetch_add plus one load. wait(seen, ...) blocks until the counter has
/// moved past `seen` or the timeout elapses; it never blocks if the counter
/// already moved, and a ring can never be lost between the caller's
/// predicate check and the park as long as `seen` was read *before* the
/// predicate (see docs/RUNTIME.md, "Doorbell handshake").
class Doorbell final : public Bell {
 public:
  std::uint64_t value() const override {
    return count_.load(std::memory_order_acquire);
  }

  /// Publishes one unit of progress and wakes any sleepers. The counter
  /// increment and the sleeper check are both seq_cst so they cannot
  /// reorder against a waiter's (register-sleeper, re-check-counter) pair:
  /// either the waiter sees the new count and skips the park, or this ring
  /// sees the sleeper and notifies.
  void ring() override {
    count_.fetch_add(1, std::memory_order_seq_cst);
    if (sleepers_.load(std::memory_order_seq_cst) != 0) {
      // Taking the mutex (even empty) orders this notify after any waiter
      // that has re-checked the counter under the lock but not yet parked.
      { std::lock_guard<std::mutex> lock(m_); }
      cv_.notify_all();
    }
  }

  /// Parks until value() != seen, `timeout_us` elapses, or a spurious
  /// wakeup. Callers re-check their own predicate afterwards regardless.
  /// Returns whether the counter moved past `seen` (i.e. the wakeup carried
  /// progress) — false means a pure timeout/spurious wakeup, which the
  /// stall diagnostics count separately from productive rings.
  bool wait(std::uint64_t seen, std::int64_t timeout_us) override {
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    {
      std::unique_lock<std::mutex> lock(m_);
      if (count_.load(std::memory_order_seq_cst) == seen) {
        cv_.wait_for(lock, std::chrono::microseconds(timeout_us));
      }
    }
    sleepers_.fetch_sub(1, std::memory_order_relaxed);
    return count_.load(std::memory_order_acquire) != seen;
  }

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::int32_t> sleepers_{0};
  std::mutex m_;
  std::condition_variable cv_;
};

/// Bounded re-request (NACK) schedule for the threaded runtime's recovery
/// layer: a waiter whose per-wait deadline expires re-requests the message
/// it is missing instead of parking forever, with exponentially growing
/// deadlines. max_attempts == 0 disables recovery entirely (the PR 3
/// fail-stop behavior). All deadlines derived from this policy are
/// steady_clock-based — wall-clock jumps can neither starve nor spuriously
/// fire a retry.
struct RetryPolicy {
  /// Re-requests per wait before escalating to ProtocolDeadlockError.
  std::int32_t max_attempts = 0;
  /// Deadline before the first re-request (µs).
  std::int64_t base_delay_us = 2000;
  /// Deadline growth factor per attempt.
  double multiplier = 2.0;

  bool enabled() const { return max_attempts > 0; }

  /// Deadline for attempt k (1-based): base * multiplier^(k-1), µs.
  std::int64_t delay_us(std::int32_t attempt) const;

  /// Sum of every deadline: how long a single wait may stay unsatisfied
  /// before its retries exhaust. The stall monitor scales its watchdog
  /// budget by this so in-flight recovery is never misdiagnosed as a
  /// genuine deadlock. Saturates at INT64_MAX for absurd
  /// max_attempts x multiplier products instead of wrapping negative.
  std::int64_t total_wait_us() const;

  /// Default recovery tuning for tests and the bench --recovery mode.
  static RetryPolicy standard() { return RetryPolicy{4, 1500, 2.0}; }
};

/// Per-blocked-state policy: the first half of the spin budget issues
/// cpu_relax(), the second half yields, and past the budget the caller
/// parks on the doorbell. reset() after every unit of local progress so a
/// processor that is actively draining work never pays a park.
class Backoff {
 public:
  Backoff(Bell& bell, std::int32_t spin_iters, std::int64_t park_timeout_us)
      : bell_(bell),
        spin_iters_(spin_iters),
        park_timeout_us_(park_timeout_us) {}

  /// One blocked iteration. `seen` must be a doorbell value read before
  /// the caller's last (failed) predicate check.
  void pause(std::uint64_t seen);

  void reset() { attempts_ = 0; }

  std::int64_t parks() const { return parks_; }
  /// Parks that ended on the timeout (or a spurious wakeup) rather than a
  /// productive ring — the signal the forced-park-timeout fault class
  /// amplifies and the stall snapshots record.
  std::int64_t park_timeouts() const { return park_timeouts_; }

 private:
  Bell& bell_;
  std::int32_t spin_iters_;
  std::int64_t park_timeout_us_;
  std::int32_t attempts_ = 0;
  std::int64_t parks_ = 0;
  std::int64_t park_timeouts_ = 0;
};

}  // namespace rapid
