// Minimal leveled logger. Thread-safe; writes to stderr. Intended for the
// runtime's diagnostic traces (protocol state transitions, MAP activity),
// which tests can raise to kDebug when chasing a protocol bug.
//
// The threshold starts from the RAPID_LOG environment variable
// (debug|info|warn|error, or 0..3) and can be changed at run time with
// set_log_level(). Executor worker threads call set_log_thread_proc(q) so
// their messages carry a "p<q>" tag.
#pragma once

#include <sstream>
#include <string>

namespace rapid {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parse a RAPID_LOG-style spec ("debug", "INFO", "2", ...). Returns
/// fallback when spec is null or unrecognized.
LogLevel log_level_from_env(const char* spec,
                            LogLevel fallback = LogLevel::kWarn);

/// Tag this thread's log lines with a processor id (negative clears the
/// tag). The executors call this from each worker thread.
void set_log_thread_proc(int proc);
int log_thread_proc();

/// Tag this thread's log lines with a run id (negative clears the tag).
/// The runtime service admits many concurrent runs into one process, so
/// interleaved stderr is attributable only when every line carries the run
/// that produced it; single-run callers never set it and see the old format.
void set_log_thread_run(long long run_id);
long long log_thread_run();

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}

}  // namespace rapid

#define RAPID_LOG(level, stream_expr)                          \
  do {                                                         \
    if (static_cast<int>(level) >=                             \
        static_cast<int>(::rapid::log_level())) {              \
      std::ostringstream rapid_log_os;                         \
      rapid_log_os << stream_expr;                             \
      ::rapid::detail::log_emit(level, rapid_log_os.str());    \
    }                                                          \
  } while (0)

#define RAPID_DEBUG(s) RAPID_LOG(::rapid::LogLevel::kDebug, s)
#define RAPID_INFO(s) RAPID_LOG(::rapid::LogLevel::kInfo, s)
#define RAPID_WARN(s) RAPID_LOG(::rapid::LogLevel::kWarn, s)
#define RAPID_ERROR(s) RAPID_LOG(::rapid::LogLevel::kError, s)
