// Deterministic, seedable PRNG (xoshiro256**) so every generator, scheduler
// tie-break and workload in this repo is reproducible across platforms —
// std::mt19937 distributions are not portable across standard libraries.
#pragma once

#include <cstdint>
#include <limits>

#include "rapid/support/check.hpp"

namespace rapid {

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm),
/// reimplemented here. Passes BigCrush; 2^256-1 period.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  /// Re-initializes state from a 64-bit seed via splitmix64 expansion.
  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      // splitmix64 step
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0. Uses Lemire's method with
  /// rejection to avoid modulo bias.
  std::uint64_t next_below(std::uint64_t bound) {
    RAPID_CHECK(bound > 0, "next_below(0)");
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi) {
    RAPID_CHECK(lo <= hi, "next_int: empty range");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Bernoulli with probability p.
  bool next_bool(double p) { return next_double() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace rapid
