#include "rapid/rt/sim_executor.hpp"

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <unordered_set>

#include "rapid/machine/event_queue.hpp"
#include "rapid/obs/metrics.hpp"
#include "rapid/obs/trace.hpp"
#include "rapid/rt/map_engine.hpp"
#include "rapid/support/str.hpp"
#include "rapid/verify/auditor.hpp"

namespace rapid::rt {

namespace {

using machine::SimTime;

class Simulator {
 public:
  Simulator(const RunPlan& plan, const RunConfig& config, obs::Trace* trace)
      : plan_(plan),
        config_(config),
        params_(config.params),
        trace_(trace),
        tracing_(trace != nullptr && trace->enabled()) {
    const auto p = static_cast<std::size_t>(plan.num_procs);
    procs_.resize(p);
    epoch_remaining_.resize(static_cast<std::size_t>(plan.graph->num_data()));
    current_version_.assign(static_cast<std::size_t>(plan.graph->num_data()),
                            0);
    for (DataId d = 0; d < plan.graph->num_data(); ++d) {
      const ObjectPlan& obj = plan.objects[d];
      epoch_remaining_[d].resize(obj.epochs.size());
      for (std::size_t v = 0; v < obj.epochs.size(); ++v) {
        epoch_remaining_[d][v] =
            static_cast<std::int32_t>(obj.epochs[v].size());
      }
    }
    for (ProcId q = 0; q < plan.num_procs; ++q) {
      ProcState& ps = procs_[q];
      ps.memory = std::make_unique<ProcMemory>(plan, q,
                                               config.capacity_per_proc,
                                               /*alignment=*/1,
                                               config.alloc_policy,
                                               config.slab_arena);
      ps.received_version.assign(
          static_cast<std::size_t>(plan.graph->num_data()), -1);
      ps.received_seq.assign(
          static_cast<std::size_t>(plan.graph->num_data()), 0);
      ps.mailbox_in_flight.assign(p, 0);
      ps.pkg_seq_sent.assign(p, 0);
      if (!config.active_memory) {
        ps.memory->preallocate_all();
        // Baseline: every reader address is known from the start.
        for (DataId d = 0; d < plan.graph->num_data(); ++d) {
          if (plan.graph->data(d).owner != q) continue;
          for (const auto& dests : plan.objects[d].sends_by_version) {
            for (ProcId dest : dests) ps.known_addrs.emplace(d, dest);
          }
        }
      }
    }
  }

  RunReport run() {
    RunReport report;
    report.maps_per_proc.assign(static_cast<std::size_t>(plan_.num_procs), 0);
    report.peak_bytes_per_proc.assign(
        static_cast<std::size_t>(plan_.num_procs), 0);
    report_ = &report;
    try {
      for (ProcId q = 0; q < plan_.num_procs; ++q) {
        // Baseline heap samples at t=0 (permanents, plus all volatiles in
        // baseline mode).
        record(q, 0.0, obs::EventKind::kHeapSample, 0, 0, 0,
               procs_[q].memory->in_use_bytes());
        record(q, 0.0, obs::EventKind::kHeapPeak, 0, 0, 0,
               procs_[q].memory->peak_bytes());
        dispatch_sends(q, plan_.procs[q].initial_sends);
        queue_.schedule_at(0.0, [this, q] { advance(q); });
      }
      report.parallel_time_us = queue_.run();
      check_all_finished();
    } catch (const NonExecutableError& e) {
      report.executable = false;
      report.failure = e.what();
    }
    for (ProcId q = 0; q < plan_.num_procs; ++q) {
      report.maps_per_proc[q] = procs_[q].maps;
      report.peak_bytes_per_proc[q] = procs_[q].memory->peak_bytes();
    }
    if (tracing_) {
      report.metrics = std::make_shared<obs::MetricsSummary>(
          obs::derive_metrics(*trace_));
    }
    return report;
  }

 private:
  struct ProcState {
    std::unique_ptr<ProcMemory> memory;
    std::int32_t pos = 0;
    SimTime busy_until = 0.0;
    bool executing = false;
    bool in_map = false;
    std::int32_t maps = 0;

    std::vector<std::int32_t> received_version;  // per object, -1 = nothing
    /// Reader-side put sequence per object (mirrors the threaded executor's
    /// Shared::put_seq so both executors stamp the same conformance plane).
    std::vector<std::uint32_t> received_seq;
    /// Owner-side put sequence per (owned object, reader), keyed the same
    /// way as known_addrs. The simulator never retransmits, so these only
    /// ever reach 1 — but the checker reconciles stamps, not assumptions.
    std::map<std::pair<DataId, ProcId>, std::uint32_t> sent_seq;
    std::unordered_set<TaskId> flags_received;
    std::vector<std::int32_t> mailbox_in_flight;  // per source proc
    /// 1-based address-package sequence per destination (mirrors the
    /// threaded executor's per-pair stamps; the conformance checker uses
    /// them to verify duplicate suppression).
    std::vector<std::uint32_t> pkg_seq_sent;
    std::set<std::pair<DataId, ProcId>> known_addrs;  // owner side
    std::deque<ContentSend> suspended;
    std::deque<std::pair<ProcId, AddrPackage>> pending_packages;
    // Delivered address packages not yet consumed: RA runs only at state
    // transitions (paper Figure 3(b)), never mid-task — this is where the
    // scheme's real stalls come from.
    std::deque<std::pair<ProcId, AddrPackage>> inbox;
    std::uint8_t traced_state = 255;  // change-only state recording
  };

  /// Modeled-time event recording: SimTime is µs, trace timestamps are ns.
  void record(ProcId q, SimTime t, obs::EventKind kind, std::int32_t a = 0,
              std::int32_t b = 0, std::int32_t c = 0,
              std::int64_t bytes = 0, std::uint16_t d = 0) {
    if (!tracing_) return;
    trace_->record_at(q, static_cast<std::int64_t>(t * 1000.0), kind, a, b,
                      c, bytes, d);
  }

  void trace_state(ProcId q, obs::ProtoState s, SimTime t) {
    if (!tracing_) return;
    ProcState& ps = procs_[q];
    if (ps.traced_state == static_cast<std::uint8_t>(s)) return;
    ps.traced_state = static_cast<std::uint8_t>(s);
    record(q, t, obs::EventKind::kStateEnter, static_cast<std::int32_t>(s));
  }

  std::int32_t num_tasks_of(ProcId q) const {
    return static_cast<std::int32_t>(plan_.procs[q].order.size());
  }

  bool task_ready(ProcId q, TaskId t) const {
    const ProcState& ps = procs_[q];
    const TaskRuntimePlan& tp = plan_.tasks[t];
    for (const RemoteRead& rr : tp.remote_reads) {
      if (ps.received_version[rr.object] < rr.version) return false;
    }
    for (TaskId u : tp.remote_sync_preds) {
      if (!ps.flags_received.count(u)) return false;
    }
    return true;
  }

  /// The processor's main state machine; re-entered by wake events.
  void advance(ProcId q) {
    ProcState& ps = procs_[q];
    if (ps.executing) return;
    if (queue_.now() < ps.busy_until) {
      queue_.schedule_at(ps.busy_until, [this, q] { advance(q); });
      return;
    }
    service_ra_cq(q);  // RA then CQ, as in every non-EXE state
    if (queue_.now() < ps.busy_until) {  // CQ dispatches charged time
      queue_.schedule_at(ps.busy_until, [this, q] { advance(q); });
      return;
    }
    // MAP state: start one, or continue draining its address packages.
    if (config_.active_memory && (ps.in_map || ps.memory->needs_map(ps.pos))) {
      if (!ps.in_map) {
        trace_state(q, obs::ProtoState::kMap, queue_.now());
        record(q, queue_.now(), obs::EventKind::kMapBegin, ps.pos);
        const MapResult map = ps.memory->perform_map(ps.pos);  // may throw
        ++ps.maps;
        const double cost =
            params_.map_base_us +
            params_.map_per_object_us *
                static_cast<double>(map.freed.size() + map.allocated.size());
        report_->map_us += cost;
        ps.busy_until = queue_.now() + cost;
        if (tracing_) {
          for (DataId d : map.freed) {
            record(q, queue_.now(), obs::EventKind::kMapFree, d, 0, 0,
                   plan_.graph->data(d).size_bytes);
          }
          for (DataId d : map.allocated) {
            record(q, queue_.now(), obs::EventKind::kMapAlloc, d, 0, 0,
                   plan_.graph->data(d).size_bytes);
          }
          record(q, ps.busy_until, obs::EventKind::kMapEnd, ps.pos);
          record(q, ps.busy_until, obs::EventKind::kHeapSample, 0, 0, 0,
                 ps.memory->in_use_bytes());
          record(q, ps.busy_until, obs::EventKind::kHeapPeak, 0, 0, 0,
                 ps.memory->peak_bytes());
        }
        for (auto& pkg : map.packages) ps.pending_packages.push_back(pkg);
        ps.in_map = true;
        queue_.schedule_at(ps.busy_until, [this, q] { advance(q); });
        return;
      }
      // Send the assembled packages sequentially; a full destination slot
      // blocks us here (we are woken by the consumption event).
      while (!ps.pending_packages.empty()) {
        const auto& [dest, pkg] = ps.pending_packages.front();
        if (procs_[dest].mailbox_in_flight[q] >=
            config_.mailbox_slots) {
          return;  // destination slots full: blocked in MAP
        }
        send_addr_package(q, dest, pkg);
        ps.pending_packages.pop_front();
      }
      ps.in_map = false;
      if (queue_.now() < ps.busy_until) {
        queue_.schedule_at(ps.busy_until, [this, q] { advance(q); });
        return;
      }
    }
    if (ps.pos >= num_tasks_of(q)) {  // END: passive, CQ event-driven
      trace_state(q, obs::ProtoState::kEnd, queue_.now());
      return;
    }
    const TaskId t = plan_.procs[q].order[ps.pos];
    trace_state(q, obs::ProtoState::kRec, queue_.now());
    if (!task_ready(q, t)) return;  // REC: woken by arrivals
    // EXE.
    if (tracing_) {
      for (const RemoteRead& rr : plan_.tasks[t].remote_reads) {
        record(q, queue_.now(), obs::EventKind::kConsume, rr.object,
               rr.version, plan_.graph->data(rr.object).owner, 0,
               static_cast<std::uint16_t>(ps.received_seq[rr.object]));
      }
    }
    trace_state(q, obs::ProtoState::kExe, queue_.now());
    record(q, queue_.now(), obs::EventKind::kTaskBegin, t);
    ps.executing = true;
    const double task_time = params_.task_time_us(plan_.graph->task(t).flops);
    report_->compute_us += task_time;
    ps.busy_until = queue_.now() + task_time;
    queue_.schedule_at(ps.busy_until, [this, q] { complete_task(q); });
  }

  void complete_task(ProcId q) {
    ProcState& ps = procs_[q];
    const TaskId t = plan_.procs[q].order[ps.pos];
    ps.executing = false;
    ++ps.pos;
    ++report_->tasks_executed;
    record(q, queue_.now(), obs::EventKind::kTaskEnd, t);
    trace_state(q, obs::ProtoState::kSnd, queue_.now());
    const TaskRuntimePlan& tp = plan_.tasks[t];
    // SND: completion flags for kept anti/output edges (zero-byte puts into
    // preallocated control space — never need an address).
    for (ProcId dest : tp.flag_dests) {
      ps.busy_until += params_.send_overhead_us(8);
      report_->send_us += params_.send_overhead_us(8);
      ++report_->flag_messages;
      record(q, ps.busy_until, obs::EventKind::kFlagSend, t, 0, dest);
      const SimTime arrive = ps.busy_until + params_.rma_latency_us;
      queue_.schedule_at(arrive, [this, dest, t] {
        procs_[dest].flags_received.insert(t);
        wake(dest);
      });
    }
    // Epoch countdown; completed versions trigger content sends, routed
    // together so same-destination puts count as one coalesced batch.
    std::vector<ContentSend> sends;
    for (const auto& [d, v] : tp.epoch_memberships) {
      if (--epoch_remaining_[d][static_cast<std::size_t>(v) - 1] == 0) {
        RAPID_CHECK(current_version_[d] == v - 1,
                    "object versions completed out of order");
        current_version_[d] = v;
        for (ProcId dest :
             plan_.objects[d].sends_by_version[static_cast<std::size_t>(v)]) {
          sends.push_back(ContentSend{d, v, dest});
        }
      }
    }
    dispatch_sends(q, sends);
    queue_.schedule_at(std::max(queue_.now(), ps.busy_until),
                       [this, q] { advance(q); });
  }

  /// Returns whether the send was transmitted (false: suspended on a
  /// missing address).
  bool trigger_send(ProcId q, const ContentSend& s) {
    ProcState& ps = procs_[q];
    if (config_.active_memory) {
      // Address-table lookup + suspended-queue bookkeeping per message.
      ps.busy_until =
          std::max(queue_.now(), ps.busy_until) + params_.addr_lookup_us;
      report_->map_us += params_.addr_lookup_us;
    }
    if (!ps.known_addrs.count({s.object, s.dest})) {
      RAPID_CHECK(config_.active_memory,
                  "baseline mode must know every address");
      ps.suspended.push_back(s);
      ++report_->suspended_sends;
      return false;
    }
    transmit(q, s);
    return true;
  }

  /// Counter-plane mirror of the threaded executor's put coalescing: sends
  /// dispatched together to the same destination count as one put batch.
  /// The cost model still charges per message — only the batch counter is
  /// mirrored. Batch composition differs across the executors (suspension
  /// and wake timing differ), so the conformance plane reconciles messages
  /// and sequence stamps, never batches.
  void dispatch_sends(ProcId q, const std::vector<ContentSend>& sends) {
    std::set<ProcId> dests;
    for (const ContentSend& s : sends) {
      if (trigger_send(q, s)) dests.insert(s.dest);
    }
    report_->put_batches += static_cast<std::int64_t>(dests.size());
  }

  void transmit(ProcId q, const ContentSend& s) {
    // Data consistency (Theorem 1): a suspended message can never be
    // overtaken by a later write of the same object.
    RAPID_CHECK(current_version_[s.object] == s.version,
                cat("content of ", plan_.graph->data(s.object).name,
                    " advanced to version ", current_version_[s.object],
                    " before version ", s.version, " was sent"));
    ProcState& ps = procs_[q];
    const std::int64_t bytes = plan_.graph->data(s.object).size_bytes;
    const std::uint32_t seq = ++ps.sent_seq[{s.object, s.dest}];
    record(q, std::max(queue_.now(), ps.busy_until), obs::EventKind::kPut,
           s.object, s.version, s.dest, bytes,
           static_cast<std::uint16_t>(seq));
    ps.busy_until =
        std::max(queue_.now(), ps.busy_until) + params_.send_overhead_us(bytes);
    report_->send_us += params_.send_overhead_us(bytes);
    ++report_->content_messages;
    report_->content_bytes += bytes;
    record(q, ps.busy_until, obs::EventKind::kPutPublish, s.object,
           s.version, s.dest, bytes, static_cast<std::uint16_t>(seq));
    const SimTime arrive = ps.busy_until + params_.rma_latency_us;
    const DataId d = s.object;
    const std::int32_t v = s.version;
    const ProcId dest = s.dest;
    queue_.schedule_at(arrive, [this, dest, d, v, seq] {
      auto& rv = procs_[dest].received_version[d];
      rv = std::max(rv, v);
      auto& rs = procs_[dest].received_seq[d];
      rs = std::max(rs, seq);
      wake(dest);
    });
  }

  void send_addr_package(ProcId q, ProcId dest, AddrPackage pkg) {
    ProcState& ps = procs_[q];
    pkg.seq = ++ps.pkg_seq_sent[dest];
    ++procs_[dest].mailbox_in_flight[q];
    const double pkg_cost =
        params_.rma_overhead_us +
        params_.addr_entry_us * static_cast<double>(pkg.entries.size());
    ps.busy_until = std::max(queue_.now(), ps.busy_until) + pkg_cost;
    report_->map_us += pkg_cost;
    ++report_->addr_packages;
    report_->addr_entries += static_cast<std::int64_t>(pkg.entries.size());
    record(q, ps.busy_until, obs::EventKind::kAddrPkgSend,
           static_cast<std::int32_t>(pkg.entries.size()),
           static_cast<std::int32_t>(pkg.seq), dest);
    const SimTime arrive = ps.busy_until + params_.rma_latency_us;
    queue_.schedule_at(arrive, [this, q, dest, pkg] {
      // Delivery into the destination slot; consumption waits for the
      // destination's next RA service round.
      procs_[dest].inbox.emplace_back(q, pkg);
      wake(dest);
    });
  }

  /// RA: absorb delivered packages, free the slots (waking senders blocked
  /// in MAP), then CQ: dispatch suspended sends with now-known addresses.
  void service_ra_cq(ProcId q) {
    ProcState& ps = procs_[q];
    while (!ps.inbox.empty()) {
      const auto [src, pkg] = ps.inbox.front();
      ps.inbox.pop_front();
      for (const auto& [d, offset] : pkg.entries) {
        (void)offset;  // the simulator tracks knowledge, not raw addresses
        ps.known_addrs.emplace(d, pkg.reader);
      }
      record(q, queue_.now(), obs::EventKind::kAddrPkgInstall,
             static_cast<std::int32_t>(pkg.entries.size()),
             static_cast<std::int32_t>(pkg.seq), pkg.reader);
      --ps.mailbox_in_flight[src];
      ps.busy_until = std::max(queue_.now(), ps.busy_until) + params_.poll_us;
      queue_.schedule_after(params_.poll_us, [this, src = src] {
        advance(src);
      });
    }
    // Suspended sends whose addresses just arrived: one batch per
    // destination per drain round, matching the threaded executor's CQ.
    std::set<ProcId> dispatched;
    for (auto it = ps.suspended.begin(); it != ps.suspended.end();) {
      if (ps.known_addrs.count({it->object, it->dest})) {
        transmit(q, *it);
        dispatched.insert(it->dest);
        it = ps.suspended.erase(it);
      } else {
        ++it;
      }
    }
    report_->put_batches += static_cast<std::int64_t>(dispatched.size());
  }

  /// Arrival-driven wake-up; the poll charge models one RA+CQ round.
  void wake(ProcId q) {
    queue_.schedule_after(params_.poll_us, [this, q] { advance(q); });
  }

  void check_all_finished() const {
    for (ProcId q = 0; q < plan_.num_procs; ++q) {
      const ProcState& ps = procs_[q];
      if (ps.pos < num_tasks_of(q) || !ps.suspended.empty() ||
          !ps.pending_packages.empty()) {
        std::string dump;
        for (ProcId r = 0; r < plan_.num_procs; ++r) {
          const ProcState& rs = procs_[r];
          dump += cat("\n  P", r, ": pos ", rs.pos, "/", num_tasks_of(r),
                      rs.in_map ? " [in MAP]" : "", ", suspended ",
                      rs.suspended.size(), ", pending packages ",
                      rs.pending_packages.size());
          if (rs.pos < num_tasks_of(r)) {
            dump += cat(", waiting on ",
                        plan_.graph->task(plan_.procs[r].order[rs.pos]).name);
          }
        }
        throw ProtocolDeadlockError(
            cat("protocol stopped with unfinished work:", dump));
      }
    }
  }

  const RunPlan& plan_;
  const RunConfig& config_;
  const machine::MachineParams& params_;
  obs::Trace* const trace_;
  const bool tracing_;
  machine::EventQueue queue_;
  std::vector<ProcState> procs_;
  std::vector<std::vector<std::int32_t>> epoch_remaining_;
  std::vector<std::int32_t> current_version_;
  RunReport* report_ = nullptr;
};

}  // namespace

RunReport simulate(const RunPlan& plan, const RunConfig& config,
                   obs::Trace* trace) {
  try {
    if (config.audit) verify::audit_or_throw(plan, config);
    if (trace != nullptr && trace->enabled()) {
      RAPID_CHECK(trace->num_procs() >= plan.num_procs,
                  "the Trace is sized for fewer processors than the plan");
    }
    Simulator sim(plan, config, trace);
    return sim.run();
  } catch (const NonExecutableError& e) {
    RunReport report;
    report.executable = false;
    report.failure = e.what();
    return report;
  }
}

}  // namespace rapid::rt
