#include "rapid/rt/report.hpp"

#include <algorithm>

namespace rapid::rt {

const char* to_string(FailureKind kind) {
  switch (kind) {
    case FailureKind::kNone: return "none";
    case FailureKind::kNonExecutable: return "non-executable";
    case FailureKind::kTaskError: return "task-error";
    case FailureKind::kInjectedFault: return "injected-fault";
    case FailureKind::kDeadlock: return "deadlock";
    case FailureKind::kWatchdog: return "watchdog";
  }
  return "?";
}

double RunReport::avg_maps() const {
  if (maps_per_proc.empty()) return 0.0;
  double total = 0.0;
  for (std::int32_t m : maps_per_proc) total += m;
  return total / static_cast<double>(maps_per_proc.size());
}

std::int64_t RunReport::peak_bytes() const {
  std::int64_t peak = 0;
  for (std::int64_t b : peak_bytes_per_proc) peak = std::max(peak, b);
  return peak;
}

double RunReport::idle_fraction() const {
  const double total =
      parallel_time_us * static_cast<double>(maps_per_proc.size());
  if (total <= 0.0) return 0.0;
  const double busy = compute_us + send_us + map_us;
  return std::max(0.0, 1.0 - busy / total);
}

}  // namespace rapid::rt
