#include "rapid/rt/report.hpp"

#include <algorithm>

#include "rapid/obs/metrics.hpp"
#include "rapid/rt/proc_failure.hpp"

namespace rapid::rt {

const char* to_string(FailureKind kind) {
  switch (kind) {
    case FailureKind::kNone: return "none";
    case FailureKind::kNonExecutable: return "non-executable";
    case FailureKind::kTaskError: return "task-error";
    case FailureKind::kInjectedFault: return "injected-fault";
    case FailureKind::kDeadlock: return "deadlock";
    case FailureKind::kWatchdog: return "watchdog";
    case FailureKind::kIntegrity: return "integrity";
    case FailureKind::kRetriesExhausted: return "retries-exhausted";
    case FailureKind::kProcFailure: return "proc-failure";
    case FailureKind::kCancelled: return "cancelled";
  }
  return "?";
}

void RecoveryCounters::merge(const RecoveryCounters& other) {
  nacks_sent += other.nacks_sent;
  resends += other.resends;
  flag_resends += other.flag_resends;
  duplicate_suppressions += other.duplicate_suppressions;
  checksum_rejections += other.checksum_rejections;
  task_retries += other.task_retries;
}

double RunReport::avg_maps() const {
  if (maps_per_proc.empty()) return 0.0;
  double total = 0.0;
  for (std::int32_t m : maps_per_proc) total += m;
  return total / static_cast<double>(maps_per_proc.size());
}

std::int64_t RunReport::peak_bytes() const {
  std::int64_t peak = 0;
  for (std::int64_t b : peak_bytes_per_proc) peak = std::max(peak, b);
  return peak;
}

double RunReport::idle_fraction() const {
  const double total =
      parallel_time_us * static_cast<double>(maps_per_proc.size());
  if (total <= 0.0) return 0.0;
  const double busy = compute_us + send_us + map_us;
  return std::max(0.0, 1.0 - busy / total);
}

JsonValue RunReport::to_json() const {
  JsonValue doc = JsonValue::object();
  doc["schema_version"] = kSchemaVersion;
  if (run_id >= 0) doc["run_id"] = run_id;
  doc["attempt_deadline_us"] = attempt_deadline_us;
  doc["executable"] = executable;
  doc["failure"] = failure;
  doc["failure_kind"] = to_string(failure_kind);
  JsonValue errs = JsonValue::array();
  for (const std::string& e : errors) errs.push_back(e);
  doc["errors"] = std::move(errs);
  doc["parallel_time_us"] = parallel_time_us;
  JsonValue maps = JsonValue::array();
  for (const std::int32_t m : maps_per_proc) maps.push_back(m);
  doc["maps_per_proc"] = std::move(maps);
  JsonValue peaks = JsonValue::array();
  for (const std::int64_t b : peak_bytes_per_proc) peaks.push_back(b);
  doc["peak_bytes_per_proc"] = std::move(peaks);
  doc["content_messages"] = content_messages;
  doc["content_bytes"] = content_bytes;
  doc["put_batches"] = put_batches;
  doc["flag_messages"] = flag_messages;
  doc["addr_packages"] = addr_packages;
  doc["addr_entries"] = addr_entries;
  doc["suspended_sends"] = suspended_sends;
  doc["tasks_executed"] = tasks_executed;
  JsonValue rec = JsonValue::object();
  rec["nacks_sent"] = recovery.nacks_sent;
  rec["resends"] = recovery.resends;
  rec["flag_resends"] = recovery.flag_resends;
  rec["duplicate_suppressions"] = recovery.duplicate_suppressions;
  rec["checksum_rejections"] = recovery.checksum_rejections;
  rec["task_retries"] = recovery.task_retries;
  rec["run_attempts"] = recovery.run_attempts;
  doc["recovery"] = std::move(rec);
  doc["transport"] = transport;
  if (proc_failure) doc["proc_failure"] = proc_failure->to_json();
  if (metrics) doc["metrics"] = metrics->to_json();
  return doc;
}

}  // namespace rapid::rt
