// Run plan: everything the executors need, precomputed from the task graph
// and the static schedule at the inspector stage (paper Figure 1) — write
// epochs and object versions, the content messages each version triggers,
// synchronization-flag routing for the kept anti/output edges, per-task
// gating conditions, and per-processor volatile lifetime (dead point)
// tables for the MAPs.
//
// Version model: the writers of an object form "epochs" — maximal runs of
// program-order writers sharing a commute group (a non-commuting writer is
// its own epoch). Epoch v (1-based) produces version v when all its member
// tasks complete; version 0 is the object's initial content. A remote
// reader needs the max version over its true in-edges for that object
// (0 if it reads the initial content). Because all writers of an object run
// on its owner (owner-compute), content messages always flow owner → reader.
#pragma once

#include <cstdint>
#include <vector>

#include "rapid/sched/liveness.hpp"
#include "rapid/sched/schedule.hpp"

namespace rapid::rt {

using graph::DataId;
using graph::ProcId;
using graph::TaskId;

struct RemoteRead {
  DataId object = graph::kInvalidData;
  std::int32_t version = 0;  // minimum version that must have arrived
};

struct ContentSend {
  DataId object = graph::kInvalidData;
  std::int32_t version = 0;
  ProcId dest = graph::kInvalidProc;
};

struct ObjectPlan {
  /// Epochs in program order; epochs[v-1] produces version v.
  std::vector<std::vector<TaskId>> epochs;
  /// sends_by_version[v] = destination processors needing version v
  /// (v ranges over 0..epochs.size()).
  std::vector<std::vector<ProcId>> sends_by_version;

  std::int32_t num_versions() const {
    return static_cast<std::int32_t>(epochs.size());
  }
};

struct TaskRuntimePlan {
  /// Volatile inputs gated on received versions.
  std::vector<RemoteRead> remote_reads;
  /// Cross-processor anti/output predecessors whose completion flags must
  /// have arrived (deduplicated task ids).
  std::vector<TaskId> remote_sync_preds;
  /// Processors that must receive this task's completion flag.
  std::vector<ProcId> flag_dests;
  /// Volatile objects this task accesses (allocation units for the MAPs).
  std::vector<DataId> volatile_accesses;
  /// (object, version) epochs this task is a member of; used to count down
  /// epoch completion at run time.
  std::vector<std::pair<DataId, std::int32_t>> epoch_memberships;
};

struct ProcPlan {
  std::vector<TaskId> order;
  /// Objects owned by this processor (allocated for the whole run).
  std::vector<DataId> permanents;
  std::int64_t permanent_bytes = 0;
  /// Volatile lifetimes on this processor, from the liveness analysis.
  std::vector<sched::VolatileLifetime> volatiles;
  /// Initial content sends this owner must issue (version 0).
  std::vector<ContentSend> initial_sends;
};

struct RunPlan {
  const graph::TaskGraph* graph = nullptr;
  sched::Schedule schedule;
  int num_procs = 0;
  std::vector<ObjectPlan> objects;
  std::vector<TaskRuntimePlan> tasks;
  std::vector<ProcPlan> procs;

  /// Version produced by writer task t for object d (t must be a writer of
  /// d). Exposed for the executors' epoch bookkeeping and for tests.
  std::int32_t version_of_writer(DataId d, TaskId t) const;
};

/// Validates the schedule against the graph (including owner-compute) and
/// builds the plan. Throws rapid::Error on inconsistencies.
RunPlan build_run_plan(const graph::TaskGraph& graph,
                       const sched::Schedule& schedule);

}  // namespace rapid::rt
