// The one-sided transport seam of the threaded runtime. Everything the
// executor's data plane does to a peer — put payload bytes at a preknown
// offset, publish (crc, version, put-seq) with release semantics, raise a
// completion flag, deposit an address package or a NACK, ring a doorbell —
// goes through this interface. Two backends implement it:
//
//   * InProcTransport — every paper-processor is a std::thread, windows
//     are slabs in one address space, bells are condvar Doorbells. This is
//     byte-for-byte the pre-transport data plane (same memory orderings,
//     same drain orders, same counters).
//   * ShmTransport (rt/shm_transport.hpp) — every paper-processor is an OS
//     process, windows live in an mmap'd POSIX shm segment, bells are
//     futex-backed, and liveness is a lease in the control segment.
//
// The hot path never pays a virtual call: window(q) hands the executor raw
// pointers into q's RMA window (heap bytes + version/crc/seq/flag arrays),
// and put()/publish()/send_flag() are defined here, once, over those
// views — so the publication-order contract (payload -> crc -> version ->
// seq, Theorem 1) lives in exactly one place. Only coarse, amortized
// operations (mailbox, NACK channel, control plane) are virtual.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "rapid/rt/map_engine.hpp"
#include "rapid/rt/plan.hpp"
#include "rapid/rt/report.hpp"
#include "rapid/support/backoff.hpp"

namespace rapid::rt {

enum class TransportKind : std::uint8_t {
  kInProc = 0,  ///< threads in one address space (default)
  kShm = 1,     ///< one OS process per paper-processor over POSIX shm
};

const char* to_string(TransportKind k);
/// Parses "inproc" | "shm" (throws rapid::Error otherwise).
TransportKind transport_from_string(const std::string& s);

/// A re-request for a missing message, deposited one-sidedly into the
/// owner's NACK channel by a waiter whose retry deadline expired. POD so
/// the shm backend can store it in a segment ring verbatim.
struct NackRequest {
  ProcId requester = graph::kInvalidProc;
  /// Content re-request: object + minimum version needed. kInvalidData
  /// means this is a flag re-request instead.
  DataId object = graph::kInvalidData;
  std::int32_t version = -1;
  /// Flag re-request: the task whose completion flag is missing.
  TaskId flag_task = graph::kInvalidTask;
  /// Where the requester's copy of the object lives (its preknown
  /// destination address), so the owner can re-put without a lookup.
  mem::Offset reader_offset = mem::kNullOffset;
  /// The put-seq the requester last verified or rejected; the owner only
  /// resends if its own sent-seq differs (idempotence gate).
  std::uint32_t observed_seq = 0;
};
static_assert(std::is_trivially_copyable_v<NackRequest>);

/// Raw pointers into one processor's RMA window. All arrays are indexed by
/// DataId (version/crc/seq) or TaskId (flags); `heap` is the arena the
/// MAP engine hands out offsets into. Both backends expose identical
/// views, so the executor's acquire-loads and readiness checks compile to
/// the same code regardless of where the bytes physically live.
struct WindowView {
  std::byte* heap = nullptr;
  std::atomic<std::int32_t>* received_version = nullptr;
  std::atomic<std::uint32_t>* received_crc = nullptr;
  std::atomic<std::uint32_t>* put_seq = nullptr;
  std::atomic<std::uint8_t>* flags = nullptr;
};

/// One processor's coarse liveness/progress record, readable by the
/// monitor (in-proc) or the coordinator (shm) without cooperation from the
/// processor itself. The wait fields mirror the blocked-state beat_wait()
/// publications; lease_ns is 0 until the first beat and meaningful only on
/// cross-process transports.
struct LightState {
  std::uint8_t state = 0;  // rt::ProcState
  std::int32_t pos = 0;
  std::int64_t lease_ns = 0;
  DataId waiting_object = graph::kInvalidData;
  std::int32_t waiting_version = -1;
  TaskId waiting_flag = graph::kInvalidTask;
  ProcId map_dest = graph::kInvalidProc;
  std::int32_t retry_attempts = 0;
  bool retries_exhausted = false;
};

class Transport {
 public:
  virtual ~Transport() = default;

  virtual TransportKind kind() const = 0;
  /// True when peers are OS processes (enables lease bookkeeping and the
  /// process-kill fault class).
  virtual bool cross_process() const = 0;

  virtual std::int32_t num_procs() const = 0;

  /// Raw view of processor q's window. Valid for the transport's lifetime;
  /// the executor caches one per rank.
  virtual WindowView window(ProcId q) = 0;

  // -- one-sided data plane (non-virtual: defined once over window()) ----

  /// RMA put: copy `size` bytes into q's heap at `dst_off`. No lock, no
  /// handshake — the plan guarantees the destination range is quiescent.
  void put(const WindowView& dst, mem::Offset dst_off, const std::byte* src,
           std::int64_t size) {
    std::memcpy(dst.heap + dst_off, src, static_cast<std::size_t>(size));
  }

  /// Publication: crc (relaxed) -> received_version (release, max-merge) ->
  /// put_seq (release). Readers gate readiness on the version acquire and
  /// trust on the seq acquire + CRC check; see docs/PROTOCOL.md Theorem 1.
  void publish(const WindowView& dst, DataId d, std::int32_t version,
               bool with_crc, std::uint32_t crc, std::uint32_t seq) {
    if (with_crc) dst.received_crc[d].store(crc, std::memory_order_relaxed);
    if (dst.received_version[d].load(std::memory_order_relaxed) < version) {
      dst.received_version[d].store(version, std::memory_order_release);
    }
    dst.put_seq[d].store(seq, std::memory_order_release);
  }

  /// Completion-flag raise (release): the reader's acquire load of the
  /// flag synchronizes with every write the completing task made.
  void raise_flag(const WindowView& dst, TaskId t) {
    dst.flags[t].store(1, std::memory_order_release);
  }

  // -- address-package mailbox (coarse; single-slot bounded per src) -----

  /// Deposits `copies` copies of `pkg` into dest's mailbox lane for `from`
  /// iff the lane holds fewer than `slot_bound` packages. Returns whether
  /// the deposit happened (false = mailbox full, caller backs off; the
  /// paper's MAP blocks on exactly this). `copies` > 1 only under the
  /// duplication fault class.
  virtual bool try_send_addr_package(ProcId from, ProcId dest,
                                     const AddrPackage& pkg,
                                     std::int32_t slot_bound,
                                     std::int32_t copies) = 0;
  /// Cheap pending probe (acquire) — the fast-path gate before draining.
  virtual bool addr_packages_pending(ProcId me) const = 0;
  /// Drains every pending package into `out` (append, source-major FIFO)
  /// and clears the pending count.
  virtual void drain_addr_packages(ProcId me, std::vector<AddrPackage>* out) = 0;
  /// Occupancy across all source lanes (diagnostics only).
  virtual std::int64_t mailbox_occupancy(ProcId me) = 0;

  // -- NACK channel (coarse) ---------------------------------------------

  virtual void push_nack(ProcId dest, const NackRequest& n) = 0;
  virtual bool nacks_pending(ProcId me) const = 0;
  virtual void drain_nacks(ProcId me, std::vector<NackRequest>* out) = 0;

  // -- doorbells ---------------------------------------------------------

  /// Data-plane progress bell: rung on every put/flag/package/consumption.
  virtual Bell& data_bell() = 0;
  /// Control bell: quiescence, failure, retry exhaustion.
  virtual Bell& control_bell() = 0;

  // -- run control -------------------------------------------------------

  virtual void request_abort() = 0;
  virtual bool aborted() const = 0;
  /// Marks q quiescent; returns the post-increment count.
  virtual std::int32_t note_quiescent(ProcId q) = 0;
  virtual std::int32_t quiescent_count() const = 0;

  // -- failure capture ---------------------------------------------------

  /// Records a failure raised by processor q (or the monitor/coordinator,
  /// q < 0). The first report fixes the run's disposition kind.
  virtual void report_failure(ProcId q, FailureKind kind,
                              const std::string& text) = 0;
  virtual bool any_failure() const = 0;
  virtual FailureKind first_failure_kind() const = 0;
  /// All failure texts, first-reported first.
  virtual std::vector<std::string> failure_texts() const = 0;

  // -- liveness / light status ------------------------------------------

  /// Heartbeat: publishes q's protocol state and position (release) and,
  /// on cross-process transports, refreshes q's lease.
  virtual void beat(ProcId q, std::uint8_t state, std::int32_t pos) = 0;
  /// Publishes what q is blocked on, for coordinator-side diagnosis of
  /// peers that can no longer answer snapshot requests. No-op in-proc
  /// (the cooperative snapshot plane covers it).
  virtual void beat_wait(ProcId q, DataId object, std::int32_t version,
                         TaskId flag, ProcId map_dest,
                         std::int32_t retry_attempts, bool exhausted) {
    (void)q; (void)object; (void)version; (void)flag; (void)map_dest;
    (void)retry_attempts; (void)exhausted;
  }
  /// Publishes q's running recovery-traffic totals (NACKs sent, content
  /// resends) so an external sampler can read per-rank health *during* a
  /// run. Cross-process transports mirror these into the control segment;
  /// in-proc runs are observable directly and keep this a no-op.
  virtual void publish_recovery(ProcId q, std::int64_t nacks_sent,
                                std::int64_t resends) {
    (void)q; (void)nacks_sent; (void)resends;
  }
  virtual LightState light(ProcId q) const = 0;
};

/// Builds the in-process backend: per-proc windows sized
/// `heap_bytes_per_proc`, version arrays initialised to -1, everything
/// else zeroed — exactly the pre-transport executor's reset state.
std::unique_ptr<Transport> make_inproc_transport(std::int32_t num_procs,
                                                 std::int64_t num_data,
                                                 std::int64_t num_tasks,
                                                 std::int64_t heap_bytes_per_proc);

}  // namespace rapid::rt
