// Discrete-event executor: runs the active-memory-management protocol on a
// modeled distributed-memory machine (rapid::machine) and reports modeled
// parallel time, MAP counts, peak memory and message traffic. This is the
// instrument behind every timing table in the paper reproduction.
//
// Protocol states map onto the paper's Figure 3(b):
//   REC — a processor whose next task's remote inputs have not arrived is
//         idle; arrival events wake it (the DES equivalent of polling, a
//         poll_us charge models the RA/CQ service round).
//   EXE — a busy interval ending in a completion event.
//   SND — completion handlers charge the sender for flag and content puts;
//         content sends without a known remote address join the suspended
//         queue (dispatched by CQ when the address package is consumed).
//   MAP — perform_map() plus sequential address-package sends; a full
//         destination mailbox slot blocks the sender until the consumption
//         event frees it.
//   END — a processor past its last task stays passive; its remaining
//         suspended sends are dispatched by arrival-driven CQ service.
#pragma once

#include "rapid/rt/plan.hpp"
#include "rapid/rt/report.hpp"

namespace rapid::obs {
class Trace;  // obs/trace.hpp — per-processor ring-buffer event tracer
}

namespace rapid::rt {

/// Runs the plan under the config on the simulated machine. Never throws
/// for capacity exhaustion — that is reported via RunReport::executable.
/// Throws ProtocolDeadlockError if the protocol wedges (Theorem 1 says it
/// cannot on valid inputs). An optional Trace records the same event
/// vocabulary as the threaded executor, stamped with modeled time
/// (SimTime µs → ns), and attaches derived metrics to the report.
RunReport simulate(const RunPlan& plan, const RunConfig& config,
                   obs::Trace* trace = nullptr);

}  // namespace rapid::rt
