// rapid_shm_worker: the exec-mode entry point for one shm-transport rank.
// The coordinator spawns `rapid_shm_worker --segment=<name> --rank=<q>`;
// this process attaches the segment, rebuilds the workload from the spec
// string the coordinator wrote into the header, cross-checks the plan
// fingerprint (a divergent rebuild must fail-stop before any put lands in
// shared memory), and runs the standard worker loop. Exit codes are the
// kShmWorker* constants; anything else — or a signal — is classified by the
// coordinator as a process failure.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <unistd.h>

#include "rapid/num/shm_workloads.hpp"
#include "rapid/rt/shm_transport.hpp"
#include "rapid/support/log.hpp"
#include "rapid/support/str.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s --segment=<shm-name> --rank=<q>\n", argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string segment;
  long rank = -1;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--segment=", 10) == 0) {
      segment = a + 10;
    } else if (std::strncmp(a, "--rank=", 7) == 0) {
      rank = std::strtol(a + 7, nullptr, 10);
    } else {
      return usage(argv[0]);
    }
  }
  if (segment.empty() || rank < 0) return usage(argv[0]);

  using namespace rapid;
  int rc = rt::kShmWorkerFailed;
  try {
    auto tp = rt::ShmTransport::attach(segment,
                                       static_cast<graph::ProcId>(rank));
    const rt::ShmRunSpec& spec = tp->spec();
    try {
      if (spec.workload_spec[0] == '\0') {
        throw Error("rapid_shm_worker: the segment header carries no "
                    "workload spec (was the run launched in fork mode?)");
      }
      auto wl = num::build_shm_workload(spec.workload_spec);
      const std::uint64_t fp = rt::plan_fingerprint(wl->plan);
      if (fp != spec.plan_fingerprint) {
        throw Error(cat("rapid_shm_worker: plan fingerprint mismatch for "
                        "spec \"", spec.workload_spec, "\": rebuilt ", fp,
                        ", coordinator planned ", spec.plan_fingerprint));
      }
      rc = rt::shm_worker_run(*tp, wl->plan, wl->make_init(),
                              wl->make_body());
    } catch (const std::exception& e) {
      // The segment is attached: report through it so the coordinator sees
      // a structured failure, not just a nonzero exit.
      tp->report_failure(static_cast<graph::ProcId>(rank),
                         rt::FailureKind::kTaskError, e.what());
      tp->request_abort();
      tp->data_bell().ring();
      tp->control_bell().ring();
      rc = rt::kShmWorkerFailed;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rapid_shm_worker: %s\n", e.what());
    rc = rt::kShmWorkerFailed;
  }
  // _exit, not return: never run atexit handlers or static destructors in
  // a worker — the segment mapping and any inherited state belong to the
  // coordinator's teardown.
  ::_exit(rc);
}
