#include "rapid/rt/stall.hpp"

#include <algorithm>

#include "rapid/support/str.hpp"

namespace rapid::rt {

const char* to_string(ProcState state) {
  switch (state) {
    case ProcState::kStart: return "START";
    case ProcState::kMap: return "MAP";
    case ProcState::kMapBlocked: return "MAP-blocked";
    case ProcState::kExe: return "EXE";
    case ProcState::kRecBlocked: return "REC-blocked";
    case ProcState::kEndDrain: return "END-drain";
    case ProcState::kQuiescent: return "QUIESCENT";
    case ProcState::kFailed: return "FAILED";
  }
  return "?";
}

namespace {

bool is_blocked(ProcState s) {
  return s == ProcState::kRecBlocked || s == ProcState::kMapBlocked ||
         s == ProcState::kEndDrain;
}

std::string object_name(const RunPlan& plan, DataId d) {
  return d == graph::kInvalidData ? std::string("?")
                                  : plan.graph->data(d).name;
}

std::string task_name(const RunPlan& plan, TaskId t) {
  return t == graph::kInvalidTask ? std::string("?")
                                  : plan.graph->task(t).name;
}

}  // namespace

std::vector<WaitEdge> build_wait_edges(
    const RunPlan& plan, const std::vector<ProcSnapshot>& procs) {
  // Reverse map: which processor runs each task (for flag waits).
  std::vector<ProcId> task_proc(
      static_cast<std::size_t>(plan.graph->num_tasks()), graph::kInvalidProc);
  for (ProcId q = 0; q < plan.num_procs; ++q) {
    for (TaskId t : plan.procs[q].order) task_proc[t] = q;
  }

  std::vector<WaitEdge> edges;
  for (const ProcSnapshot& s : procs) {
    if (!is_blocked(s.state)) continue;
    if (s.state == ProcState::kRecBlocked) {
      if (s.waiting_object != graph::kInvalidData) {
        WaitEdge e;
        e.from = s.proc;
        e.to = plan.graph->data(s.waiting_object).owner;
        e.kind = WaitEdge::Kind::kContent;
        e.object = s.waiting_object;
        e.retries = s.retry_attempts;
        e.reason = cat("task ", task_name(plan, s.current_task),
                       " needs version ", s.waiting_version, " of ",
                       object_name(plan, s.waiting_object), " (has ",
                       s.have_version, ") from p", e.to);
        if (e.retries > 0) {
          e.reason += cat("; ", e.retries, " re-request(s) sent");
        }
        edges.push_back(std::move(e));
      } else if (s.waiting_flag_task != graph::kInvalidTask) {
        WaitEdge e;
        e.from = s.proc;
        e.to = task_proc[s.waiting_flag_task];
        e.kind = WaitEdge::Kind::kFlag;
        e.retries = s.retry_attempts;
        e.reason = cat("task ", task_name(plan, s.current_task),
                       " needs the completion flag of ",
                       task_name(plan, s.waiting_flag_task), " from p", e.to);
        if (e.retries > 0) {
          e.reason += cat("; ", e.retries, " re-request(s) sent");
        }
        edges.push_back(std::move(e));
      }
    }
    if (s.state == ProcState::kMapBlocked &&
        s.mailbox_full_dest != graph::kInvalidProc) {
      WaitEdge e;
      e.from = s.proc;
      e.to = s.mailbox_full_dest;
      e.kind = WaitEdge::Kind::kMailboxSlot;
      e.reason = cat("MAP blocked: p", e.to,
                     "'s address mailbox slot for p", s.proc, " is full");
      edges.push_back(std::move(e));
    }
    // Suspended sends wait for the destination's next MAP to publish
    // addresses — an edge regardless of which state the owner idles in.
    for (ProcId r = 0;
         r < static_cast<ProcId>(s.suspended_by_dest.size()); ++r) {
      if (s.suspended_by_dest[static_cast<std::size_t>(r)] <= 0) continue;
      WaitEdge e;
      e.from = s.proc;
      e.to = r;
      e.kind = WaitEdge::Kind::kAddrPackage;
      e.reason =
          cat(s.suspended_by_dest[static_cast<std::size_t>(r)],
              " suspended send(s) to p", r, " awaiting its address package");
      edges.push_back(std::move(e));
    }
  }
  return edges;
}

std::vector<ProcId> find_cycle(int num_procs,
                               const std::vector<WaitEdge>& edges) {
  std::vector<std::vector<ProcId>> adj(static_cast<std::size_t>(num_procs));
  for (const WaitEdge& e : edges) {
    if (e.from >= 0 && e.to >= 0 && e.from < num_procs && e.to < num_procs) {
      adj[static_cast<std::size_t>(e.from)].push_back(e.to);
    }
  }
  // Iterative colored DFS; on a back edge, unwind the explicit stack into
  // the cycle node sequence.
  enum : std::uint8_t { kWhite, kGray, kBlack };
  std::vector<std::uint8_t> color(static_cast<std::size_t>(num_procs),
                                  kWhite);
  for (ProcId root = 0; root < num_procs; ++root) {
    if (color[static_cast<std::size_t>(root)] != kWhite) continue;
    std::vector<std::pair<ProcId, std::size_t>> stack{{root, 0}};
    color[static_cast<std::size_t>(root)] = kGray;
    while (!stack.empty()) {
      auto& [node, next] = stack.back();
      const auto& out = adj[static_cast<std::size_t>(node)];
      if (next >= out.size()) {
        color[static_cast<std::size_t>(node)] = kBlack;
        stack.pop_back();
        continue;
      }
      const ProcId child = out[next++];
      if (color[static_cast<std::size_t>(child)] == kGray) {
        std::vector<ProcId> cycle;
        auto it = std::find_if(stack.begin(), stack.end(),
                               [&](const auto& f) { return f.first == child; });
        for (; it != stack.end(); ++it) cycle.push_back(it->first);
        return cycle;
      }
      if (color[static_cast<std::size_t>(child)] == kWhite) {
        color[static_cast<std::size_t>(child)] = kGray;
        stack.emplace_back(child, 0);
      }
    }
  }
  return {};
}

StallReport diagnose_stall(const RunPlan& plan,
                           std::vector<ProcSnapshot> procs,
                           double stalled_seconds,
                           std::vector<std::string> errors) {
  StallReport report;
  report.stalled_seconds = stalled_seconds;
  report.procs = std::move(procs);
  report.errors = std::move(errors);
  report.edges = build_wait_edges(plan, report.procs);
  report.cycle = find_cycle(plan.num_procs, report.edges);
  report.genuine_deadlock = !report.cycle.empty();
  for (const ProcSnapshot& s : report.procs) {
    for (const RetryRecord& r : s.retry_history) {
      if (r.exhausted) report.retries_exhausted = true;
    }
  }
  if (!report.genuine_deadlock) {
    // A wait pointed at an already-quiescent processor can never be
    // satisfied either: that processor performs no further MAPs, sends, or
    // flags. (A mailbox-slot wait is exempt — quiescent processors still
    // drain their mailboxes.)
    for (const WaitEdge& e : report.edges) {
      if (e.kind == WaitEdge::Kind::kMailboxSlot) continue;
      const auto& target = report.procs[static_cast<std::size_t>(e.to)];
      if (target.state == ProcState::kQuiescent) {
        report.genuine_deadlock = true;
        break;
      }
    }
  }
  return report;
}

std::string StallReport::summary() const {
  std::string out = cat("no protocol progress for ",
                        fixed(stalled_seconds, 2), " s");
  if (attempt_deadline_us > 0) {
    out += cat(" (attempt deadline ", attempt_deadline_us, " us)");
  }
  out += "\n";
  if (!cycle.empty()) {
    out += "wait-for cycle: ";
    for (const ProcId q : cycle) out += cat("p", q, " -> ");
    out += cat("p", cycle.front(), "\n");
  } else if (genuine_deadlock) {
    out += "wait on an already-quiescent processor (can never resolve)\n";
  } else {
    out += "no wait-for cycle (slow progress, not a proven deadlock)\n";
  }
  for (const ProcSnapshot& s : procs) {
    out += cat("  p", s.proc, " [", to_string(s.state), "] pos ", s.pos, "/",
               s.order_size);
    if (!s.detailed) {
      out += " (light snapshot: worker busy in task body)\n";
      continue;
    }
    out += cat(", suspended=", s.suspended_sends,
               ", mailbox=", s.mailbox_packages, ", parks=", s.parks, "(",
               s.park_timeouts, " timeouts)\n");
    for (const RetryRecord& r : s.retry_history) {
      out += cat("    retry: ",
                 r.object != graph::kInvalidData
                     ? cat("object ", r.object, " v", r.version)
                     : cat("flag of task ", r.flag_task),
                 ", ", r.attempts, " attempt(s), waited ", r.waited_us,
                 " us", r.exhausted ? " — EXHAUSTED" : "", "\n");
    }
  }
  for (const WaitEdge& e : edges) {
    out += cat("  p", e.from, " -> p", e.to, ": ", e.reason, "\n");
  }
  for (const std::string& err : errors) {
    out += cat("  error: ", err, "\n");
  }
  return out;
}

JsonValue StallReport::to_json() const {
  JsonValue doc = JsonValue::object();
  doc["stalled_seconds"] = stalled_seconds;
  doc["attempt_deadline_us"] = attempt_deadline_us;
  doc["genuine_deadlock"] = genuine_deadlock;
  doc["retries_exhausted"] = retries_exhausted;
  JsonValue cyc = JsonValue::array();
  for (const ProcId q : cycle) cyc.push_back(q);
  doc["cycle"] = std::move(cyc);
  JsonValue ps = JsonValue::array();
  for (const ProcSnapshot& s : procs) {
    JsonValue p = JsonValue::object();
    p["proc"] = s.proc;
    p["state"] = to_string(s.state);
    p["detailed"] = s.detailed;
    p["pos"] = s.pos;
    p["order_size"] = s.order_size;
    p["current_task"] = s.current_task;
    p["waiting_object"] = s.waiting_object;
    p["waiting_version"] = s.waiting_version;
    p["have_version"] = s.have_version;
    p["waiting_flag_task"] = s.waiting_flag_task;
    p["mailbox_full_dest"] = s.mailbox_full_dest;
    p["suspended_sends"] = s.suspended_sends;
    p["mailbox_packages"] = s.mailbox_packages;
    p["parks"] = s.parks;
    p["park_timeouts"] = s.park_timeouts;
    p["retry_attempts"] = s.retry_attempts;
    JsonValue retries = JsonValue::array();
    for (const RetryRecord& r : s.retry_history) {
      JsonValue rr = JsonValue::object();
      rr["object"] = r.object;
      rr["version"] = r.version;
      rr["flag_task"] = r.flag_task;
      rr["attempts"] = r.attempts;
      rr["waited_us"] = r.waited_us;
      rr["exhausted"] = r.exhausted;
      retries.push_back(std::move(rr));
    }
    p["retry_history"] = std::move(retries);
    JsonValue epochs = JsonValue::array();
    for (const std::uint32_t e : s.addr_epoch) {
      epochs.push_back(static_cast<std::int64_t>(e));
    }
    p["addr_epoch"] = std::move(epochs);
    JsonValue susp = JsonValue::array();
    for (const std::int64_t n : s.suspended_by_dest) susp.push_back(n);
    p["suspended_by_dest"] = std::move(susp);
    ps.push_back(std::move(p));
  }
  doc["procs"] = std::move(ps);
  JsonValue es = JsonValue::array();
  for (const WaitEdge& e : edges) {
    JsonValue j = JsonValue::object();
    j["from"] = e.from;
    j["to"] = e.to;
    j["object"] = e.object;
    j["retries"] = e.retries;
    j["reason"] = e.reason;
    es.push_back(std::move(j));
  }
  doc["edges"] = std::move(es);
  JsonValue errs = JsonValue::array();
  for (const std::string& e : errors) errs.push_back(e);
  doc["errors"] = std::move(errs);
  return doc;
}

}  // namespace rapid::rt
