#include "rapid/rt/proc_failure.hpp"

#include "rapid/support/str.hpp"

namespace rapid::rt {

std::string ProcFailureReport::summary() const {
  std::string s = cat("worker process for rank p", dead_rank, " ");
  if (detected_by == "lease") {
    s += cat("stopped heartbeating (lease ", fixed(lease_age_seconds, 2),
             " s stale)");
  } else if (signal != 0) {
    s += cat("died on signal ", signal);
  } else {
    s += cat("exited unexpectedly with code ", exit_code);
  }
  s += cat(" at pos ", pos_at_death);
  if (!orphaned.empty()) {
    s += cat("; ", orphaned.size(), " orphaned wait(s):");
    for (const OrphanedWait& w : orphaned) {
      if (w.object != graph::kInvalidData) {
        s += cat(" [p", w.waiter, " needs v", w.version, " of object ",
                 w.object, "]");
      } else if (w.flag_task != graph::kInvalidTask) {
        s += cat(" [p", w.waiter, " needs the flag of task ", w.flag_task,
                 "]");
      } else if (w.map_blocked) {
        s += cat(" [p", w.waiter, " blocked on p", dead_rank, "'s mailbox]");
      }
    }
  }
  return s;
}

JsonValue ProcFailureReport::to_json() const {
  JsonValue doc = JsonValue::object();
  doc["dead_rank"] = dead_rank;
  doc["signal"] = signal;
  doc["exit_code"] = exit_code;
  doc["detected_by"] = detected_by;
  doc["lease_age_seconds"] = lease_age_seconds;
  doc["state_at_death"] = static_cast<std::int32_t>(state_at_death);
  doc["pos_at_death"] = pos_at_death;
  JsonValue waits = JsonValue::array();
  for (const OrphanedWait& w : orphaned) {
    JsonValue j = JsonValue::object();
    j["waiter"] = w.waiter;
    j["object"] = w.object;
    j["version"] = w.version;
    j["flag_task"] = w.flag_task;
    j["map_blocked"] = w.map_blocked;
    waits.push_back(std::move(j));
  }
  doc["orphaned_waits"] = std::move(waits);
  doc["summary"] = summary();
  return doc;
}

}  // namespace rapid::rt
