#include "rapid/rt/transport.hpp"

#include <deque>
#include <mutex>

#include "rapid/support/check.hpp"
#include "rapid/support/str.hpp"

namespace rapid::rt {

const char* to_string(TransportKind k) {
  switch (k) {
    case TransportKind::kInProc: return "inproc";
    case TransportKind::kShm: return "shm";
  }
  return "?";
}

TransportKind transport_from_string(const std::string& s) {
  if (s == "inproc") return TransportKind::kInProc;
  if (s == "shm") return TransportKind::kShm;
  throw Error(cat("unknown transport '", s, "' (want inproc|shm)"));
}

namespace {

/// The threads-in-one-address-space backend: exactly the pre-transport
/// executor's data plane. Windows are heap slabs plus per-slot atomic
/// arrays; the mailbox is a mutex-guarded deque per (dest, src); the NACK
/// inbox a mutex-guarded deque per dest; bells are condvar Doorbells. The
/// drain orders, lock scopes, and memory orderings below are
/// line-for-line the ones the executor used before the seam existed —
/// that identity is what transport_test's counter-reconciliation checks.
class InProcTransport final : public Transport {
 public:
  InProcTransport(std::int32_t num_procs, std::int64_t num_data,
                  std::int64_t num_tasks, std::int64_t heap_bytes)
      : num_procs_(num_procs) {
    procs_.reserve(static_cast<std::size_t>(num_procs));
    for (std::int32_t q = 0; q < num_procs; ++q) {
      auto p = std::make_unique<PerProc>();
      const auto nd = static_cast<std::size_t>(num_data);
      const auto nt = static_cast<std::size_t>(num_tasks);
      p->heap.resize(static_cast<std::size_t>(heap_bytes));
      p->received_version = std::make_unique<std::atomic<std::int32_t>[]>(nd);
      p->received_crc = std::make_unique<std::atomic<std::uint32_t>[]>(nd);
      p->put_seq = std::make_unique<std::atomic<std::uint32_t>[]>(nd);
      for (std::size_t d = 0; d < nd; ++d) {
        p->received_version[d].store(-1, std::memory_order_relaxed);
        p->received_crc[d].store(0, std::memory_order_relaxed);
        p->put_seq[d].store(0, std::memory_order_relaxed);
      }
      p->flags = std::make_unique<std::atomic<std::uint8_t>[]>(nt);
      for (std::size_t t = 0; t < nt; ++t) {
        p->flags[t].store(0, std::memory_order_relaxed);
      }
      p->mailbox.resize(static_cast<std::size_t>(num_procs));
      procs_.push_back(std::move(p));
    }
    status_ = std::make_unique<LightStatus[]>(
        static_cast<std::size_t>(num_procs));
  }

  TransportKind kind() const override { return TransportKind::kInProc; }
  bool cross_process() const override { return false; }
  std::int32_t num_procs() const override { return num_procs_; }

  WindowView window(ProcId q) override {
    PerProc& p = *procs_[static_cast<std::size_t>(q)];
    WindowView v;
    v.heap = p.heap.data();
    v.received_version = p.received_version.get();
    v.received_crc = p.received_crc.get();
    v.put_seq = p.put_seq.get();
    v.flags = p.flags.get();
    return v;
  }

  bool try_send_addr_package(ProcId from, ProcId dest, const AddrPackage& pkg,
                             std::int32_t slot_bound,
                             std::int32_t copies) override {
    PerProc& dst = *procs_[static_cast<std::size_t>(dest)];
    std::lock_guard<std::mutex> lock(dst.mailbox_m);
    auto& slot = dst.mailbox[static_cast<std::size_t>(from)];
    if (static_cast<std::int32_t>(slot.size()) >= slot_bound) return false;
    for (std::int32_t c = 0; c < copies; ++c) slot.push_back(pkg);
    dst.mailbox_pending.fetch_add(copies, std::memory_order_release);
    return true;
  }

  bool addr_packages_pending(ProcId me) const override {
    return procs_[static_cast<std::size_t>(me)]->mailbox_pending.load(
               std::memory_order_acquire) != 0;
  }

  void drain_addr_packages(ProcId me, std::vector<AddrPackage>* out) override {
    PerProc& mine = *procs_[static_cast<std::size_t>(me)];
    std::lock_guard<std::mutex> lock(mine.mailbox_m);
    for (auto& slot : mine.mailbox) {
      while (!slot.empty()) {
        out->push_back(std::move(slot.front()));
        slot.pop_front();
      }
    }
    mine.mailbox_pending.store(0, std::memory_order_relaxed);
  }

  std::int64_t mailbox_occupancy(ProcId me) override {
    PerProc& mine = *procs_[static_cast<std::size_t>(me)];
    std::lock_guard<std::mutex> lock(mine.mailbox_m);
    std::int64_t n = 0;
    for (const auto& slot : mine.mailbox) {
      n += static_cast<std::int64_t>(slot.size());
    }
    return n;
  }

  void push_nack(ProcId dest, const NackRequest& n) override {
    PerProc& dst = *procs_[static_cast<std::size_t>(dest)];
    {
      std::lock_guard<std::mutex> lock(dst.nack_m);
      dst.nacks.push_back(n);
    }
    dst.nack_pending.fetch_add(1, std::memory_order_release);
  }

  bool nacks_pending(ProcId me) const override {
    return procs_[static_cast<std::size_t>(me)]->nack_pending.load(
               std::memory_order_acquire) != 0;
  }

  void drain_nacks(ProcId me, std::vector<NackRequest>* out) override {
    PerProc& mine = *procs_[static_cast<std::size_t>(me)];
    {
      std::lock_guard<std::mutex> lock(mine.nack_m);
      out->assign(mine.nacks.begin(), mine.nacks.end());
      mine.nacks.clear();
    }
    mine.nack_pending.store(0, std::memory_order_release);
  }

  Bell& data_bell() override { return bell_; }
  Bell& control_bell() override { return control_bell_; }

  void request_abort() override {
    abort_.store(true, std::memory_order_release);
  }
  bool aborted() const override {
    return abort_.load(std::memory_order_acquire);
  }

  std::int32_t note_quiescent(ProcId) override {
    return quiescent_.fetch_add(1, std::memory_order_acq_rel) + 1;
  }
  std::int32_t quiescent_count() const override {
    return quiescent_.load(std::memory_order_acquire);
  }

  void report_failure(ProcId, FailureKind kind,
                      const std::string& text) override {
    std::lock_guard<std::mutex> lock(error_m_);
    errors_.push_back(text);
    if (first_text_.empty()) {
      first_text_ = text;
      first_kind_ = kind;
    }
  }
  bool any_failure() const override {
    std::lock_guard<std::mutex> lock(error_m_);
    return !first_text_.empty();
  }
  FailureKind first_failure_kind() const override {
    std::lock_guard<std::mutex> lock(error_m_);
    return first_kind_;
  }
  std::vector<std::string> failure_texts() const override {
    std::lock_guard<std::mutex> lock(error_m_);
    return errors_;
  }

  void beat(ProcId q, std::uint8_t state, std::int32_t pos) override {
    LightStatus& s = status_[static_cast<std::size_t>(q)];
    s.state.store(state, std::memory_order_release);
    s.pos.store(pos, std::memory_order_release);
  }

  LightState light(ProcId q) const override {
    const LightStatus& s = status_[static_cast<std::size_t>(q)];
    LightState out;
    out.state = s.state.load(std::memory_order_acquire);
    out.pos = s.pos.load(std::memory_order_acquire);
    return out;
  }

 private:
  struct PerProc {
    std::vector<std::byte> heap;
    std::unique_ptr<std::atomic<std::int32_t>[]> received_version;
    std::unique_ptr<std::atomic<std::uint8_t>[]> flags;
    std::unique_ptr<std::atomic<std::uint32_t>[]> received_crc;
    std::unique_ptr<std::atomic<std::uint32_t>[]> put_seq;

    std::mutex mailbox_m;
    std::vector<std::deque<AddrPackage>> mailbox;  // per source proc
    std::atomic<std::int32_t> mailbox_pending{0};

    std::mutex nack_m;
    std::deque<NackRequest> nacks;
    std::atomic<std::int32_t> nack_pending{0};
  };

  struct alignas(64) LightStatus {
    std::atomic<std::uint8_t> state{0};
    std::atomic<std::int32_t> pos{0};
  };

  const std::int32_t num_procs_;
  std::vector<std::unique_ptr<PerProc>> procs_;
  std::unique_ptr<LightStatus[]> status_;

  Doorbell bell_;
  Doorbell control_bell_;
  std::atomic<bool> abort_{false};
  std::atomic<std::int32_t> quiescent_{0};

  mutable std::mutex error_m_;
  std::string first_text_;
  std::vector<std::string> errors_;
  FailureKind first_kind_ = FailureKind::kNone;
};

}  // namespace

std::unique_ptr<Transport> make_inproc_transport(
    std::int32_t num_procs, std::int64_t num_data, std::int64_t num_tasks,
    std::int64_t heap_bytes_per_proc) {
  return std::make_unique<InProcTransport>(num_procs, num_data, num_tasks,
                                           heap_bytes_per_proc);
}

}  // namespace rapid::rt
