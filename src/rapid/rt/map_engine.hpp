// Per-processor memory state plus the Memory Allocation Point procedure
// (paper §3.3), shared verbatim by the simulator and the threaded executor:
//   1. free volatile objects that are dead at the current position,
//   2. allocate volatile space forward along the execution chain, stopping
//      before the first task whose objects no longer fit (that position is
//      the next MAP),
//   3. assemble address packages for the owners of the newly allocated
//      volatiles.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "rapid/mem/arena.hpp"
#include "rapid/rt/plan.hpp"
#include "rapid/rt/report.hpp"

namespace rapid::rt {

/// One address package: (object, offset in the reader's arena) entries for
/// a single owner processor. The integrity plane stamps each package with a
/// per-(sender → owner) sequence number and a CRC32C at send time: the
/// receiver suppresses replays by sequence and rejects corrupted packages
/// before installing any entry.
struct AddrPackage {
  ProcId reader = graph::kInvalidProc;  // who allocated the buffers
  std::vector<std::pair<DataId, mem::Offset>> entries;
  /// 1-based per-(sender, owner) sequence number; 0 = unstamped (never sent).
  std::uint32_t seq = 0;
  /// CRC32C over (reader, seq, entries), folded field by field so struct
  /// padding never enters the digest. Computed by checksum() at send time.
  std::uint32_t crc = 0;

  /// Digest of the package's logical content (everything but `crc`).
  std::uint32_t checksum() const;
};

struct MapResult {
  std::vector<DataId> freed;
  std::vector<DataId> allocated;
  /// Address packages grouped by destination owner processor.
  std::vector<std::pair<ProcId, AddrPackage>> packages;
  /// Tasks [0, alloc_upto) now have all volatile inputs allocated; the next
  /// MAP fires when execution reaches alloc_upto.
  std::int32_t alloc_upto = 0;
};

class ProcMemory {
 public:
  /// Allocates all permanent objects up front; throws NonExecutableError if
  /// they alone exceed the capacity. `alignment` is 1 by default so that
  /// capacity semantics match Def. 5 byte-for-byte (the simulator's mode);
  /// the threaded executor passes 8 because its buffers hold doubles — all
  /// of its objects have sizes that are multiples of 8, so accounting is
  /// unchanged.
  ///
  /// `slab_arena` enables the arena's size-class slab fast path, with the
  /// classes derived deterministically from this processor's planned
  /// volatile sizes (the MAP alloc/free population) — so a conformance or
  /// audit replay constructed from the same plan and flag reproduces the
  /// executor's MAP placements exactly. Byte accounting (peak_bytes,
  /// in_use_bytes) is identical either way.
  ProcMemory(const RunPlan& plan, ProcId proc, std::int64_t capacity,
             std::int64_t alignment = 1,
             mem::AllocPolicy policy = mem::AllocPolicy::kFirstFit,
             bool slab_arena = false);

  /// The slab classes `slab_arena = true` installs: the dominant rounded
  /// volatile sizes of this processor's plan (up to 8 classes, each backing
  /// at least 4 planned objects). Exposed so tests and replays can assert
  /// the derivation is deterministic.
  static mem::SlabConfig derive_slab_config(const RunPlan& plan, ProcId proc,
                                            std::int64_t alignment);

  /// True when execution at `pos` has crossed the allocated prefix, i.e. a
  /// MAP must run before the task at `pos` starts.
  bool needs_map(std::int32_t pos) const;

  /// Runs the MAP at `pos`. Throws NonExecutableError if even the current
  /// task's objects cannot be allocated after freeing every dead volatile
  /// (the schedule is non-executable under this capacity, Def. 6).
  MapResult perform_map(std::int32_t pos);

  /// Baseline (original RAPID) mode: allocates every volatile object at
  /// once; throws NonExecutableError if the total does not fit.
  void preallocate_all();

  /// Arena offset of a live object (permanent or allocated volatile).
  mem::Offset offset_of(DataId d) const;
  bool is_allocated(DataId d) const;

  /// Called for every volatile freed by a MAP, with its (offset, size)
  /// region — after the deallocation and strictly before any reallocation
  /// in the same MAP. The threaded executor uses it to poison freed heap
  /// regions in debug builds so use-after-free across MAP reuse reads as
  /// garbage instead of stale-but-plausible content, and to reset the
  /// object's reader-side verification state so a recycled region is never
  /// trusted on the strength of a previous lifetime's checksum (the
  /// resend-safety contract: a region freed here has no put in flight to
  /// it, so clearing per-object state here is race-free).
  using FreeHook = std::function<void(DataId, mem::Offset, std::int64_t)>;
  void set_free_hook(FreeHook hook) { free_hook_ = std::move(hook); }

  std::int64_t peak_bytes() const { return arena_.stats().peak_in_use; }
  /// Bytes currently allocated (permanents + live volatiles). The tracer
  /// samples this after each MAP for the occupancy timeline.
  std::int64_t in_use_bytes() const { return arena_.stats().in_use; }
  const mem::Arena& arena() const { return arena_; }

 private:
  enum class VolState : std::uint8_t { kUnallocated, kAllocated, kFreed };

  const RunPlan& plan_;
  const ProcId proc_;
  mem::Arena arena_;

  std::unordered_map<DataId, mem::Offset> offsets_;  // live objects
  std::unordered_map<DataId, std::int32_t> vol_index_;  // -> plan volatiles
  std::vector<VolState> vol_state_;   // parallel to plan volatiles
  std::multimap<std::int32_t, DataId> allocated_by_last_pos_;
  std::int32_t alloc_upto_ = 0;
  FreeHook free_hook_;
};

}  // namespace rapid::rt
