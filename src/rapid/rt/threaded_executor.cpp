#include "rapid/rt/threaded_executor.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstring>
#include <deque>
#include <filesystem>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <utility>

#include <signal.h>
#include <unistd.h>

#include "rapid/num/dispatch.hpp"
#include "rapid/obs/metrics.hpp"
#include "rapid/obs/trace.hpp"
#include "rapid/obs/trace_io.hpp"
#include "rapid/rt/map_engine.hpp"
#include "rapid/rt/proc_failure.hpp"
#include "rapid/rt/shm_transport.hpp"
#include "rapid/rt/stall.hpp"
#include "rapid/rt/transport.hpp"
#include "rapid/support/backoff.hpp"
#include "rapid/support/checksum.hpp"
#include "rapid/support/log.hpp"
#include "rapid/support/stopwatch.hpp"
#include "rapid/support/str.hpp"
#include "rapid/verify/auditor.hpp"

namespace rapid::rt {

namespace {

void sleep_us(std::int64_t us) {
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

}  // namespace

struct ThreadedExecutor::Impl {
  const RunPlan& plan;
  const RunConfig config;  // by value: callers often pass temporaries
  ObjectInit init;
  TaskBody body;
  ThreadedOptions options;
  /// Copied out of options so every hook site is one `if (faults_on)`
  /// branch on a const member; enabled() false means zero injected work.
  const FaultPlan faults;
  const bool faults_on;
  /// Induced (non-probabilistic) failures only fire on run attempts within
  /// FaultPlan::induced_fault_runs — run_with_recovery's restarted attempts
  /// then run clean.
  const bool induced_on;
  const bool checksum_on;
  const bool recovery_on;
  /// Event tracer. Same pattern as faults_on: `tracing` is a const member
  /// so every record site is one predictable branch when tracing is off.
  obs::Trace* const trace;
  const bool tracing;
  const std::int64_t effective_park_us;
  /// Watchdog budget scaled by the retry policy: an in-flight recovery
  /// (bounded by RetryPolicy::total_wait_us per wait) must never be
  /// misdiagnosed as a watchdog-level deadlock. All monitor and retry
  /// deadlines are steady_clock-based (Stopwatch and WaitTracker), so
  /// wall-clock jumps can neither starve nor spuriously fire them.
  const double effective_watchdog;

  /// Identity + deadline of the wait a processor is currently blocked in
  /// (worker-private). Deadlines are monotonic (now_ns) and grow per the
  /// RetryPolicy; identity changes reset the attempt count (a changed gate
  /// means the previous one was satisfied — progress, not a retry).
  struct WaitTracker {
    bool active = false;
    bool exhausted = false;
    DataId object = graph::kInvalidData;
    std::int32_t version = -1;
    TaskId flag_task = graph::kInvalidTask;
    std::int32_t attempts = 0;
    std::int64_t started_ns = 0;
    std::int64_t deadline_ns = 0;
  };

  /// The first unmet gate of a task, as seen by its processor right now.
  struct GateRef {
    DataId object = graph::kInvalidData;
    std::int32_t version = -1;
    std::int32_t have = -1;
    TaskId flag_task = graph::kInvalidTask;
    /// The version arrived but its checksum was rejected: the wait is for a
    /// resend, and the first re-request goes out without waiting for the
    /// deadline.
    bool rejected = false;
  };

  /// A put that transmit_batch has staged (payload copied, checksummed,
  /// fault hooks applied) but not yet published. The publication pass
  /// replays these in order.
  struct StagedPut {
    DataId object = graph::kInvalidData;
    std::int32_t version = -1;
    std::int64_t size = 0;
    std::uint32_t crc = 0;
    std::uint32_t attempt = 0;
  };

  /// Per-processor private state, touched only by its own thread.
  struct Private {
    std::unique_ptr<ProcMemory> memory;
    std::int32_t pos = 0;
    std::int32_t maps = 0;
    /// Owner-side address table: offset of owned object d inside reader
    /// r's heap, at [owned_index[d] * num_procs + r]; kNullOffset =
    /// unknown. Flat array — the send path does no tree walks.
    std::vector<mem::Offset> known_addrs;
    /// Owner-side put sequence numbers, parallel to known_addrs: how many
    /// puts this owner has issued into (object, reader)'s slot. Single
    /// lifetime window per (object, reader) keeps the slot's address stable,
    /// so the counter spans original puts and resends alike.
    std::vector<std::uint32_t> sent_seq;
    /// Suspended sends grouped by destination, plus per-peer epochs: a
    /// destination's queue is rescanned only when new addresses from that
    /// peer arrived since the last scan (addr_epoch advanced past
    /// scanned_epoch), not on every poll.
    std::vector<std::deque<ContentSend>> suspended_by_dest;
    std::vector<std::uint32_t> addr_epoch;
    std::vector<std::uint32_t> scanned_epoch;
    std::int64_t suspended_count = 0;
    /// Put-coalescing scratch, worker-private: the sends a SND state emits
    /// before routing (send_scratch), the per-destination grouping buckets
    /// (batch_by_dest, cleared after each flush), and the staged-but-not-
    /// yet-published puts of the batch in flight (staged).
    std::vector<ContentSend> send_scratch;
    std::vector<std::vector<ContentSend>> batch_by_dest;
    std::vector<StagedPut> staged;
    std::vector<std::int32_t> epoch_remaining;  // flattened, see epoch_base
    std::vector<std::int32_t> current_version;  // per owned object
    /// Reader-side verification state, per object: the put seq whose
    /// payload last passed (verified) or failed (rejected) its CRC. Gating
    /// recomputation on the seq makes verification race-free against
    /// resends: bytes are only read at a seq the owner has fully published,
    /// and never re-read at a seq already rejected (the owner's next
    /// retransmit bumps the seq past it). Reset by the MAP free hook when
    /// the object's region is recycled.
    std::vector<std::uint32_t> verified_seq;
    std::vector<std::uint32_t> rejected_seq;
    /// A fresh checksum rejection fast-tracks exactly one re-request.
    bool fast_nack = false;
    /// Address-package sequence stamping (per destination) and replay
    /// suppression (per source).
    std::vector<std::uint32_t> pkg_seq_sent;
    std::vector<std::uint32_t> pkg_seq_seen;
    /// Bounded re-request bookkeeping.
    WaitTracker wait;
    std::vector<RetryRecord> retry_log;
    std::size_t exhausted_index = 0;  // retry_log slot of the exhausted wait
    /// END-state bookkeeping and stall-snapshot plumbing (worker-private).
    bool counted_quiescent = false;
    std::optional<Backoff> backoff;  // the worker loop's backoff
    /// Last protocol state recorded to the tracer (change-only recording);
    /// 255 = none yet. Worker-private like everything else here.
    std::uint8_t traced_state = 255;
    std::uint64_t snap_seen = 0;     // last snapshot generation served
    std::int64_t addr_pkgs_sent = 0;  // deterministic per-proc ordinal
    std::int64_t park_accum = 0;      // parks from finished MAP-send waits
    std::int64_t timeout_accum = 0;
    /// Process-kill fault bookkeeping: deterministic per-(rank, phase)
    /// entry ordinals (indexed by FaultPlan::kKillRec..kKillMap), and the
    /// last position whose REC entry was counted (REC counts positions,
    /// not poll iterations).
    std::int64_t kill_ordinals[4] = {0, 0, 0, 0};
    std::int32_t last_rec_pos = -1;
  };

  std::vector<Private> priv;
  std::vector<std::size_t> epoch_base;  // per object, into epoch_remaining
  /// Dense index of each object among its owner's permanents (for the
  /// known_addrs tables); -1 until built.
  std::vector<std::int32_t> owned_index;

  /// The one-sided transport behind the data plane: windows, mailboxes,
  /// NACK channels, doorbells, the abort/quiescence/failure control plane,
  /// and the light per-processor status (plus leases, cross-process).
  /// `win` caches the raw window views so the hot path stays devirtualized;
  /// `bell`/`control_bell` alias the transport's bells. owned_tp holds the
  /// in-process backend; shm runs point tp into the session's transport.
  std::unique_ptr<Transport> owned_tp;
  Transport* tp = nullptr;
  std::vector<WindowView> win;
  Bell* bell = nullptr;
  Bell* control_bell = nullptr;
  /// Coordinator-side shm session (segment + worker processes); kept on
  /// the Impl so read_object can still reach the owner heaps after run().
  std::unique_ptr<ShmSession> session;

  std::shared_ptr<const StallReport> stall_report;  // set by the monitor
  bool completed = false;  // run() finished cleanly; gates read_object()
  RunReport last_report;   // filled by run() even on the throwing paths

  /// Cooperative cancellation. cancel() only sets the flag (it may race
  /// run() setup, so it must not touch the transport); the monitor and the
  /// shm coordinator poll it every heartbeat and perform the actual abort
  /// from the thread that owns the control-plane pointers.
  std::atomic<bool> cancel_requested{false};
  std::mutex cancel_m;
  std::string cancel_reason;
  /// Wall clock of the current attempt, reset at run() entry; the
  /// attempt_deadline_us budget is measured against it.
  Stopwatch since_run_start;

  /// Cooperative stall-snapshot handshake: the monitor bumps snap_gen;
  /// each worker notices at the top of its protocol loop (or inside a
  /// blocked MAP send), publishes its own private state into snap_slots,
  /// and acks. The monitor never touches worker-private data directly.
  std::atomic<std::uint64_t> snap_gen{0};
  std::mutex snap_m;
  std::vector<ProcSnapshot> snap_slots;
  std::atomic<std::int32_t> snap_acked{0};

  /// Waiters whose bounded re-requests ran out and are still unhealed. The
  /// monitor escalates only when this is nonzero AND global progress has
  /// stopped — exhaustion against a merely-slow owner heals itself and
  /// decrements before the stall window closes.
  std::atomic<std::int32_t> exhausted_waiters{0};

  // Counters (relaxed; exact totals gathered after join).
  std::atomic<std::int64_t> content_messages{0}, content_bytes{0},
      put_batches{0}, flag_messages{0}, addr_packages{0}, addr_entries{0},
      suspended_sends{0}, tasks_executed{0}, dropped_packages{0};
  // Recovery counters (RunReport::recovery).
  std::atomic<std::int64_t> nacks_sent{0}, resends{0}, flag_resends{0},
      duplicate_suppressions{0}, checksum_rejections{0}, task_retries{0};

  Impl(const RunPlan& plan_, const RunConfig& config_, ObjectInit init_,
       TaskBody body_, ThreadedOptions options_)
      : plan(plan_),
        config(config_),
        init(std::move(init_)),
        body(std::move(body_)),
        options(options_),
        faults(options_.faults),
        faults_on(options_.faults.enabled()),
        induced_on(faults_on &&
                   options_.run_attempt <= options_.faults.induced_fault_runs),
        checksum_on(options_.checksum),
        recovery_on(options_.retry.enabled()),
        trace(options_.trace),
        tracing(options_.trace != nullptr && options_.trace->enabled()),
        effective_park_us(faults_on && options_.faults.force_park_timeout
                              ? options_.faults.forced_park_timeout_us
                              : options_.park_timeout_us),
        effective_watchdog(
            recovery_on
                ? std::max(options_.watchdog_seconds,
                           4.0 * static_cast<double>(
                                     options_.retry.total_wait_us()) /
                               1e6)
                : options_.watchdog_seconds) {}

  void fail(ProcId q, std::string what, FailureKind kind) {
    tp->report_failure(q, kind, what);
    tp->request_abort();
    bell->ring();          // wake parked workers so they observe the abort
    control_bell->ring();  // and the monitor
  }

  void bump_progress() { bell->ring(); }

  /// Mirror the running recovery totals into the transport's control plane
  /// so an external sampler sees per-rank NACK/resend rates mid-run. Only
  /// called on recovery paths (already cold); no-op in-proc.
  void publish_recovery_counters(ProcId q) {
    tp->publish_recovery(
        q, nacks_sent.load(std::memory_order_relaxed),
        resends.load(std::memory_order_relaxed) +
            flag_resends.load(std::memory_order_relaxed));
  }

  /// Publishes q's light protocol state (and, cross-process, refreshes its
  /// heartbeat lease).
  void set_state(ProcId q, ProcState s) {
    tp->beat(q, static_cast<std::uint8_t>(s), priv[q].pos);
  }

  /// Process-kill fault hook: rank q SIGKILLs itself at its nth entry into
  /// `phase`. Real process death only — the in-process backend ignores the
  /// plan (a thread cannot fail independently of the run).
  void maybe_kill(ProcId q, std::int32_t phase) {
    Private& me = priv[q];
    const std::int64_t ordinal = ++me.kill_ordinals[phase];
    if (induced_on && tp->cross_process() &&
        faults.should_kill(q, phase, ordinal)) {
      std::raise(SIGKILL);
    }
  }

  /// Record entry into one of the paper's five protocol states
  /// (change-only: re-entering the current state records nothing).
  void trace_state(ProcId q, obs::ProtoState s) {
    if (!tracing) return;
    Private& me = priv[q];
    if (me.traced_state == static_cast<std::uint8_t>(s)) return;
    me.traced_state = static_cast<std::uint8_t>(s);
    trace->record(q, obs::EventKind::kStateEnter,
                  static_cast<std::int32_t>(s));
  }

  /// backoff.pause() with park accounting into the trace: one kPark event
  /// per pause that actually parked (spin-only pauses record nothing).
  void traced_pause(ProcId q, Backoff& backoff, std::uint64_t seen) {
    if (!tracing) {
      backoff.pause(seen);
      return;
    }
    const std::int64_t before = backoff.parks();
    backoff.pause(seen);
    const std::int64_t parked = backoff.parks() - before;
    if (parked > 0) {
      trace->record(q, obs::EventKind::kPark,
                    static_cast<std::int32_t>(parked));
    }
  }

  std::size_t slot_index(DataId d, ProcId reader) const {
    return static_cast<std::size_t>(owned_index[d]) *
               static_cast<std::size_t>(plan.num_procs) +
           static_cast<std::size_t>(reader);
  }

  mem::Offset& addr_slot(Private& me, DataId d, ProcId reader) {
    return me.known_addrs[slot_index(d, reader)];
  }

  // ---- owner-side sending ----------------------------------------------

  /// The coalesced RMA put: every send of the batch targets `dest`, and the
  /// batch runs as one staging pass followed by one publication pass with a
  /// single doorbell ring at the end — the trace-driven hot-path fix for SND
  /// states that fan several small objects into the same destination (one
  /// bell ring, one counter cache-line bounce per *batch* instead of per
  /// put). Per put the protocol is unchanged: payload memcpy into the
  /// destination heap with no lock held, then a release publish in the
  /// order crc (relaxed) → version (release) → seq (release) — readiness
  /// gates on version, trust gates on seq, and an acquire load of seq makes
  /// the payload, crc, and version all visible. Publication replays the
  /// batch in staging order, so per (object, dest) nothing is reordered.
  /// Always runs on the owner's thread (complete_task / initial sends / CQ
  /// dispatch / NACK resend), so the copies are program-ordered and the
  /// version/crc/seq slots keep a single writer. The put-delay fault
  /// stretches the window between copy and publication — bytes written,
  /// visibility withheld — which a correct reader must never notice; with
  /// coalescing the whole batch sits staged through the slowest put's
  /// window. The corruption fault flips a destination byte inside that same
  /// window, which the checksum must catch before the content is trusted.
  void transmit_batch(ProcId q, ProcId dest,
                      std::span<const ContentSend> sends) {
    Private& me = priv[q];
    const WindowView& dst = win[dest];
    const WindowView& mine = win[q];
    auto& staged = me.staged;
    staged.clear();
    std::int64_t batch_bytes = 0;
    std::int64_t delay_us = 0;
    for (const ContentSend& s : sends) {
      RAPID_CHECK(s.dest == dest, "batched send to the wrong destination");
      RAPID_CHECK(me.current_version[s.object] == s.version,
                  cat("object ", plan.graph->data(s.object).name,
                      " overwritten before version ", s.version,
                      " was sent"));
      const mem::Offset dst_off = addr_slot(me, s.object, dest);
      RAPID_CHECK(dst_off != mem::kNullOffset, "transmit without address");
      const std::int64_t size = plan.graph->data(s.object).size_bytes;
      const mem::Offset src_off = me.memory->offset_of(s.object);
      const std::uint32_t attempt = ++me.sent_seq[slot_index(s.object, dest)];
      if (tracing) {
        trace->record(q, obs::EventKind::kPut, s.object, s.version, dest,
                      size, static_cast<std::uint16_t>(attempt));
      }
      if (size > 0) {
        tp->put(dst, dst_off, mine.heap + src_off, size);
      }
      std::uint32_t crc = 0;
      if (checksum_on) {
        // Digest of the source bytes (stable: the owner is the only writer
        // of its own object and is not inside a task body here).
        crc = crc32c({mine.heap + src_off, static_cast<std::size_t>(size)});
      }
      if (faults_on && size > 0 &&
          faults.corrupt_put(s.object, s.version, dest, attempt)) {
        const auto [site, mask] = faults.corrupt_site(s.object, s.version,
                                                      dest);
        dst.heap[static_cast<std::ptrdiff_t>(dst_off) +
                 static_cast<std::ptrdiff_t>(
                     site % static_cast<std::uint64_t>(size))] ^=
            static_cast<std::byte>(mask);
      }
      if (faults_on) {
        delay_us = std::max(delay_us,
                            faults.put_delay_us(s.object, s.version, dest));
      }
      staged.push_back({s.object, s.version, size, crc, attempt});
      batch_bytes += size;
    }
    // One delay for the whole batch, stretched to its slowest put: every
    // staged payload stays unpublished through the window, which is exactly
    // the copied-but-invisible state the fault models.
    if (delay_us > 0) sleep_us(delay_us);
    for (const StagedPut& p : staged) {
      // The one publication-order contract (crc relaxed -> version
      // release max-merge -> seq release), defined once on the Transport.
      tp->publish(dst, p.object, p.version, checksum_on, p.crc, p.attempt);
      if (p.attempt > 1) {
        resends.fetch_add(1, std::memory_order_relaxed);
        publish_recovery_counters(q);
      }
      if (tracing) {
        trace->record(q, p.attempt > 1 ? obs::EventKind::kResend
                                       : obs::EventKind::kPutPublish,
                      p.object, p.version, dest, p.size,
                      static_cast<std::uint16_t>(p.attempt));
      }
    }
    content_messages.fetch_add(static_cast<std::int64_t>(sends.size()),
                               std::memory_order_relaxed);
    content_bytes.fetch_add(batch_bytes, std::memory_order_relaxed);
    put_batches.fetch_add(1, std::memory_order_relaxed);
    bump_progress();
  }

  /// Single-put form (NACK resends and other one-off paths): a batch of one.
  void transmit(ProcId q, const ContentSend& s) {
    transmit_batch(q, s.dest, {&s, 1});
  }

  void trigger_send(ProcId q, const ContentSend& s) {
    Private& me = priv[q];
    if (addr_slot(me, s.object, s.dest) != mem::kNullOffset) {
      transmit(q, s);
    } else {
      RAPID_CHECK(config.active_memory, "baseline must know every address");
      me.suspended_by_dest[s.dest].push_back(s);
      ++me.suspended_count;
      suspended_sends.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Route a SND state's sends: coalesce the ones whose destination buffer
  /// addresses are already known into one transmit_batch per destination
  /// (per-destination program order preserved); suspend the rest exactly as
  /// trigger_send would.
  void dispatch_sends(ProcId q, std::span<const ContentSend> sends) {
    if (sends.empty()) return;
    if (sends.size() == 1) {
      trigger_send(q, sends.front());
      return;
    }
    Private& me = priv[q];
    bool any_ready = false;
    for (const ContentSend& s : sends) {
      if (addr_slot(me, s.object, s.dest) != mem::kNullOffset) {
        me.batch_by_dest[s.dest].push_back(s);
        any_ready = true;
      } else {
        RAPID_CHECK(config.active_memory, "baseline must know every address");
        me.suspended_by_dest[s.dest].push_back(s);
        ++me.suspended_count;
        suspended_sends.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (!any_ready) return;
    for (ProcId r = 0; r < plan.num_procs; ++r) {
      auto& batch = me.batch_by_dest[r];
      if (batch.empty()) continue;
      transmit_batch(q, r, batch);
      batch.clear();
    }
  }

  void send_flag(ProcId q, ProcId dest, TaskId t) {
    tp->raise_flag(win[dest], t);
    flag_messages.fetch_add(1, std::memory_order_relaxed);
    if (tracing) trace->record(q, obs::EventKind::kFlagSend, t, 0, dest);
    bump_progress();
  }

  // ---- re-request (NACK) recovery --------------------------------------

  /// Waiter side: ask the owner to (re)send the message the current wait
  /// is missing. For content waits, the request carries the waiter's own
  /// buffer offset — so a lost address package is healed by the re-request
  /// itself — and the last put sequence the waiter *examined* (verified or
  /// rejected), NOT a fresh load of put_seq: a newer, not-yet-examined put
  /// means the wait is about to resolve, and advertising its sequence
  /// would let the owner retransmit concurrently with this reader's first
  /// CRC pass over those very bytes. With the examined sequence, a resend
  /// can only target a sequence whose bytes this reader is done reading
  /// (rejected copies are never re-read; verified ones are gated by the
  /// WAR anti-edges), which is what makes the resend memcpy race-free.
  void send_nack(ProcId q, const GateRef& gate) {
    Private& me = priv[q];
    NackRequest n;
    n.requester = q;
    ProcId owner;
    if (gate.object != graph::kInvalidData) {
      owner = plan.graph->data(gate.object).owner;
      n.object = gate.object;
      n.version = gate.version;
      n.reader_offset = me.memory->offset_of(gate.object);
      n.observed_seq = std::max(me.verified_seq[gate.object],
                                me.rejected_seq[gate.object]);
    } else {
      owner = plan.schedule.proc_of_task[gate.flag_task];
      n.flag_task = gate.flag_task;
    }
    nacks_sent.fetch_add(1, std::memory_order_relaxed);
    publish_recovery_counters(q);
    if (tracing) {
      if (gate.object != graph::kInvalidData) {
        trace->record(q, obs::EventKind::kNack, gate.object, gate.version,
                      owner, 0, static_cast<std::uint16_t>(n.observed_seq));
      } else {
        trace->record(q, obs::EventKind::kNack, -1,
                      static_cast<std::int32_t>(gate.flag_task), owner);
      }
    }
    if (induced_on && faults.drop_nacks) return;  // lost recovery traffic
    tp->push_nack(owner, n);
    bump_progress();  // wake the owner if parked
  }

  /// Owner side: service one re-request idempotently. Replay safety
  /// (docs/PROTOCOL.md): the version/crc/seq slots are single-writer, an
  /// object has one lifetime window per reader (so the slot address is
  /// stable), and a resend is issued only when the request's observed_seq
  /// equals this owner's sent_seq — at most one retransmit per observed
  /// state, and never one that could race the reader's verification of a
  /// newer put. A waiter still needing version v implies (by the WAR
  /// anti-edges of a dependence-complete plan) the owner's current_version
  /// is still v, so retransmitting current content is consistent.
  bool service_nack(ProcId q, const NackRequest& n) {
    Private& me = priv[q];
    if (n.flag_task != graph::kInvalidTask) {
      // Flag stores are idempotent; resend iff the task completed here.
      if (plan.schedule.pos_of_task[n.flag_task] < me.pos) {
        send_flag(q, n.requester, n.flag_task);
        flag_resends.fetch_add(1, std::memory_order_relaxed);
        publish_recovery_counters(q);
        return true;
      }
      return false;  // not yet complete: normal completion will deliver it
    }
    const DataId d = n.object;
    bool installed = false;
    mem::Offset& slot = addr_slot(me, d, n.requester);
    if (slot == mem::kNullOffset) {
      // The address package carrying this buffer was lost: the re-request
      // heals it (the waiter always knows its own buffer — Fact I). The CQ
      // scan after this drain dispatches the suspended send.
      slot = n.reader_offset;
      ++me.addr_epoch[n.requester];
      installed = true;
    }
    if (me.current_version[d] < n.version) {
      // The epoch producing the needed version has not completed here yet;
      // its completion will send normally. Nothing to resend.
      return installed;
    }
    if (me.current_version[d] > n.version) {
      // Stale re-request: the waiter was already satisfied (its NACK raced
      // the delivery). WAR anti-edges forbid this while the wait is real.
      duplicate_suppressions.fetch_add(1, std::memory_order_relaxed);
      return installed;
    }
    auto& queue = me.suspended_by_dest[n.requester];
    for (auto it = queue.begin(); it != queue.end(); ++it) {
      if (it->object == d && it->version == n.version) {
        // The original send never left: it was suspended waiting for the
        // very address this re-request carried (or that arrived late).
        // Dispatch it here AND erase it, so neither a second queued NACK
        // nor the CQ scan after this drain can transmit it again — a
        // double dispatch would memcpy over bytes the waiter may already
        // be CRC-verifying from the first copy.
        transmit(q, *it);
        queue.erase(it);
        --me.suspended_count;
        return true;
      }
    }
    if (installed) return true;  // nothing suspended: completion will send
    if (me.sent_seq[slot_index(d, n.requester)] != n.observed_seq) {
      // A newer put than the waiter observed is already published (the
      // NACK raced it): replaying now could race the waiter's verification
      // of that put. Suppress — the waiter re-checks before re-requesting.
      duplicate_suppressions.fetch_add(1, std::memory_order_relaxed);
      return installed;
    }
    transmit(q, ContentSend{d, n.version, n.requester});
    return true;
  }

  /// Tracks the wait a blocked processor is in; sends a re-request when the
  /// wait's steady-clock deadline expires, escalates when attempts run out.
  void note_blocked_wait(ProcId q, const GateRef& gate) {
    Private& me = priv[q];
    WaitTracker& w = me.wait;
    const std::int64_t now = now_ns();
    if (!w.active || w.object != gate.object || w.version != gate.version ||
        w.flag_task != gate.flag_task) {
      finish_wait(q);  // a changed gate means the previous one was satisfied
      w.active = true;
      w.exhausted = false;
      w.object = gate.object;
      w.version = gate.version;
      w.flag_task = gate.flag_task;
      w.attempts = 0;
      w.started_ns = now;
      w.deadline_ns =
          sat_add_i64(now, sat_mul_i64(options.retry.delay_us(1), 1000));
    }
    if (w.exhausted) return;
    const bool fast = gate.rejected && me.fast_nack;
    if (!fast && now < w.deadline_ns) return;
    me.fast_nack = false;
    if (w.attempts >= options.retry.max_attempts) {
      w.exhausted = true;
      RetryRecord r;
      r.object = w.object;
      r.version = w.version;
      r.flag_task = w.flag_task;
      r.attempts = w.attempts;
      r.waited_us = (now - w.started_ns) / 1000;
      r.exhausted = true;
      me.retry_log.push_back(r);
      me.exhausted_index = me.retry_log.size() - 1;
      exhausted_waiters.fetch_add(1, std::memory_order_acq_rel);
      tp->beat_wait(q, w.object, w.version, w.flag_task, graph::kInvalidProc,
                    w.attempts, true);
      control_bell->ring();  // the monitor decides whether to escalate
      return;
    }
    ++w.attempts;
    w.deadline_ns = sat_add_i64(
        now, sat_mul_i64(options.retry.delay_us(w.attempts + 1), 1000));
    send_nack(q, gate);
  }

  /// Closes the current wait episode: records it in the retry history when
  /// re-requests were sent, and heals an exhausted wait that resolved after
  /// all (a slow owner, not a lost message).
  void finish_wait(ProcId q) {
    Private& me = priv[q];
    WaitTracker& w = me.wait;
    if (!w.active) return;
    const std::int64_t waited = (now_ns() - w.started_ns) / 1000;
    if (w.exhausted) {
      RetryRecord& r = me.retry_log[me.exhausted_index];
      r.exhausted = false;  // healed after exhausting: owner was slow
      r.waited_us = waited;
      exhausted_waiters.fetch_sub(1, std::memory_order_acq_rel);
    } else if (w.attempts > 0) {
      RetryRecord r;
      r.object = w.object;
      r.version = w.version;
      r.flag_task = w.flag_task;
      r.attempts = w.attempts;
      r.waited_us = waited;
      me.retry_log.push_back(r);
    }
    w = WaitTracker{};
  }

  // ---- RA / CQ -----------------------------------------------------------

  /// RA: consume address packages from my mailbox slots (suppressing
  /// replays by per-source sequence and rejecting corrupted packages before
  /// installing any entry), then drain re-requests, then CQ: dispatch
  /// suspended sends whose addresses became known. Returns whether any
  /// package was consumed, request serviced, or send dispatched (the
  /// caller's backoff resets on progress).
  bool service_ra_cq(ProcId q) {
    Private& me = priv[q];
    bool progressed = false;
    if (tp->addr_packages_pending(q)) {
      std::vector<AddrPackage> consumed;
      tp->drain_addr_packages(q, &consumed);
      for (const AddrPackage& pkg : consumed) {
        if (pkg.seq != 0) {
          auto& last_seen = me.pkg_seq_seen[pkg.reader];
          if (pkg.seq <= last_seen) {
            // Replayed/duplicated package: entries were already installed
            // (idempotently installable anyway — one lifetime window per
            // object keeps the offsets identical), only the count matters.
            duplicate_suppressions.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          if (checksum_on && pkg.crc != pkg.checksum()) {
            checksum_rejections.fetch_add(1, std::memory_order_relaxed);
            if (!recovery_on) {
              fail(q,
                   cat("integrity: address package from p", pkg.reader,
                       " to p", q, " failed its checksum"),
                   FailureKind::kIntegrity);
              return progressed;
            }
            // Dropped before advancing last_seen: the waiter's re-request
            // carries the same addresses and heals this.
            continue;
          }
          last_seen = pkg.seq;
        }
        for (const auto& [d, offset] : pkg.entries) {
          addr_slot(me, d, pkg.reader) = offset;
        }
        ++me.addr_epoch[pkg.reader];
        if (tracing) {
          trace->record(q, obs::EventKind::kAddrPkgInstall,
                        static_cast<std::int32_t>(pkg.entries.size()),
                        static_cast<std::int32_t>(pkg.seq), pkg.reader);
        }
        progressed = true;
        bump_progress();
      }
    }
    if (recovery_on && tp->nacks_pending(q)) {
      std::vector<NackRequest> requests;
      tp->drain_nacks(q, &requests);
      for (const NackRequest& n : requests) {
        if (service_nack(q, n)) progressed = true;
      }
    }
    if (me.suspended_count > 0) {
      for (ProcId r = 0; r < plan.num_procs; ++r) {
        auto& queue = me.suspended_by_dest[r];
        if (queue.empty() || me.scanned_epoch[r] == me.addr_epoch[r]) {
          continue;  // no new addresses from r since the last scan
        }
        me.scanned_epoch[r] = me.addr_epoch[r];
        // The suspended queue for one destination is a natural batch: every
        // send whose address just arrived goes out in one coalesced put.
        auto& batch = me.batch_by_dest[r];
        for (auto it = queue.begin(); it != queue.end();) {
          if (addr_slot(me, it->object, r) != mem::kNullOffset) {
            batch.push_back(*it);
            it = queue.erase(it);
            --me.suspended_count;
          } else {
            ++it;
          }
        }
        if (!batch.empty()) {
          transmit_batch(q, r, batch);
          batch.clear();
          progressed = true;
        }
      }
    }
    return progressed;
  }

  /// Blocking send of one address package (MAP state): spins then parks on
  /// the doorbell while the destination slot is full, servicing RA/CQ like
  /// the paper requires. The package is stamped with its per-(sender, dest)
  /// sequence number and CRC at send time. Fault hooks: the package may be
  /// delayed (reordering delivery relative to other sources), dropped
  /// outright — the induced deadlock the stall diagnostics must explain and
  /// the re-request recovery must heal — or duplicated (delivered twice
  /// with the same sequence number, bypassing the slot bound, which the
  /// receiver must suppress).
  bool send_addr_package_blocking(ProcId q, ProcId dest,
                                  const AddrPackage& pkg) {
    Private& me = priv[q];
    std::int64_t ordinal = 0;
    if (faults_on) {
      ordinal = ++me.addr_pkgs_sent;
      if (induced_on && faults.drop_addr_src == q &&
          faults.drop_addr_nth == ordinal) {
        dropped_packages.fetch_add(1, std::memory_order_relaxed);
        return true;  // swallowed: a lost control message
      }
      const std::int64_t delay = faults.addr_delay_us(q, dest, ordinal);
      if (delay > 0) sleep_us(delay);
    }
    AddrPackage stamped = pkg;
    stamped.seq = ++me.pkg_seq_sent[dest];
    stamped.crc = stamped.checksum();
    // Network-level duplication fault: same sequence number, past the slot
    // bound (the bound is a protocol courtesy the fault deliberately
    // violates); the receiver must suppress the replay.
    std::int32_t copies = 1;
    if (faults_on && faults.dup_addr_package(q, dest, ordinal)) copies = 2;
    Backoff backoff(*bell, options.spin_iters, effective_park_us);
    bool sent = false;
    while (!tp->aborted()) {
      if (snap_gen.load(std::memory_order_acquire) != me.snap_seen) {
        publish_snapshot(q, backoff.parks(), backoff.park_timeouts(), dest);
      }
      const std::uint64_t seen = bell->value();
      if (tp->try_send_addr_package(q, dest, stamped, config.mailbox_slots,
                                    copies)) {
        addr_packages.fetch_add(1, std::memory_order_relaxed);
        addr_entries.fetch_add(
            static_cast<std::int64_t>(stamped.entries.size()),
            std::memory_order_relaxed);
        sent = true;
        if (tracing) {
          trace->record(q, obs::EventKind::kAddrPkgSend,
                        static_cast<std::int32_t>(stamped.entries.size()),
                        static_cast<std::int32_t>(stamped.seq), dest);
        }
        bump_progress();
        break;
      }
      if (service_ra_cq(q)) {
        backoff.reset();
      } else {
        // Publish the blocked-on-mailbox state (with the full destination)
        // before parking so a cross-process coordinator can attribute this
        // wait if the destination's process dies.
        tp->beat(q, static_cast<std::uint8_t>(ProcState::kMapBlocked),
                 me.pos);
        tp->beat_wait(q, graph::kInvalidData, -1, graph::kInvalidTask, dest,
                      0, false);
        traced_pause(q, backoff, seen);
      }
    }
    me.park_accum += backoff.parks();
    me.timeout_accum += backoff.park_timeouts();
    return sent;
  }

  // ---- readiness ---------------------------------------------------------

  /// Reader-side trust in the last put of `d` (readiness already checked):
  /// recompute the CRC only at a put sequence not yet verified or rejected.
  /// Gating on the seq is what makes verification race-free against owner
  /// resends — bytes are only read at a fully published seq, and a NACK for
  /// a rejected seq reaches the owner (through the inbox mutex) strictly
  /// after the reader's byte reads, ordering any retransmit's memcpy after
  /// them.
  bool content_trusted(ProcId q, DataId d, GateRef* gate) {
    Private& me = priv[q];
    const WindowView& mine = win[static_cast<std::size_t>(q)];
    const std::uint32_t seq = mine.put_seq[d].load(std::memory_order_acquire);
    if (seq == 0) return false;  // version visible, seq racing: retry soon
    if (me.verified_seq[d] == seq) return true;
    if (me.rejected_seq[d] == seq) {
      if (gate) gate->rejected = true;
      return false;  // known-bad copy: wait for the resend
    }
    const std::int64_t size = plan.graph->data(d).size_bytes;
    const mem::Offset off = me.memory->offset_of(d);
    const std::uint32_t expect =
        mine.received_crc[d].load(std::memory_order_relaxed);
    const std::uint32_t actual =
        crc32c({mine.heap + off, static_cast<std::size_t>(size)});
    if (actual == expect) {
      me.verified_seq[d] = seq;
      return true;
    }
    me.rejected_seq[d] = seq;
    me.fast_nack = true;  // re-request immediately, not at the deadline
    checksum_rejections.fetch_add(1, std::memory_order_relaxed);
    if (!recovery_on) {
      fail(q,
           cat("integrity: checksum mismatch on object ",
               plan.graph->data(d).name, " (put seq ", seq,
               ") received at processor ", q),
           FailureKind::kIntegrity);
    }
    if (gate) gate->rejected = true;
    return false;
  }

  /// Lock-free: acquire loads pair with the senders' release stores, so a
  /// `true` result makes the payload bytes (and the flagged predecessors'
  /// effects) visible to the task body — and, with checksums on, that every
  /// remote input's payload digest matched. On false, `gate` (if given) is
  /// filled with the first unmet gate for wait tracking and diagnosis.
  bool task_ready(ProcId q, TaskId t, GateRef* gate = nullptr) {
    const TaskRuntimePlan& trp = plan.tasks[t];
    const WindowView& mine = win[static_cast<std::size_t>(q)];
    for (const RemoteRead& rr : trp.remote_reads) {
      const std::int32_t have =
          mine.received_version[rr.object].load(std::memory_order_acquire);
      const bool arrived = have >= rr.version;
      if (arrived && (!checksum_on || content_trusted(q, rr.object, gate))) {
        continue;
      }
      if (gate) {
        gate->object = rr.object;
        gate->version = rr.version;
        gate->have = have;
      }
      return false;
    }
    for (TaskId u : trp.remote_sync_preds) {
      if (mine.flags[u].load(std::memory_order_acquire) == 0) {
        if (gate) gate->flag_task = u;
        return false;
      }
    }
    return true;
  }

  // ---- stall snapshots ---------------------------------------------------

  /// Worker-side answer to a monitor snapshot request: publish everything
  /// the diagnosis needs from this processor's own private state (never
  /// read cross-thread), including a re-derivation of what the current
  /// task is blocked on and the recovery retry history. `map_blocked_dest`
  /// marks the MAP-blocked state when called from inside
  /// send_addr_package_blocking.
  void publish_snapshot(ProcId q, std::int64_t extra_parks,
                        std::int64_t extra_timeouts, ProcId map_blocked_dest) {
    Private& me = priv[q];
    const std::uint64_t gen = snap_gen.load(std::memory_order_acquire);
    const ProcPlan& pp = plan.procs[q];
    const auto n = static_cast<std::int32_t>(pp.order.size());
    ProcSnapshot s;
    s.proc = q;
    s.detailed = true;
    s.pos = me.pos;
    s.order_size = n;
    s.suspended_sends = me.suspended_count;
    s.suspended_by_dest.resize(static_cast<std::size_t>(plan.num_procs), 0);
    for (ProcId r = 0; r < plan.num_procs; ++r) {
      s.suspended_by_dest[static_cast<std::size_t>(r)] =
          static_cast<std::int64_t>(
              me.suspended_by_dest[static_cast<std::size_t>(r)].size());
    }
    s.addr_epoch = me.addr_epoch;
    s.mailbox_packages = tp->mailbox_occupancy(q);
    s.parks = me.park_accum + (me.backoff ? me.backoff->parks() : 0) +
              extra_parks;
    s.park_timeouts = me.timeout_accum +
                      (me.backoff ? me.backoff->park_timeouts() : 0) +
                      extra_timeouts;
    if (recovery_on) {
      s.retry_history = me.retry_log;
      if (me.wait.active) {
        s.retry_attempts = me.wait.attempts;
        if (me.wait.attempts > 0 && !me.wait.exhausted) {
          // The in-flight wait, reported as an open (non-exhausted) episode.
          RetryRecord r;
          r.object = me.wait.object;
          r.version = me.wait.version;
          r.flag_task = me.wait.flag_task;
          r.attempts = me.wait.attempts;
          r.waited_us = (now_ns() - me.wait.started_ns) / 1000;
          s.retry_history.push_back(r);
        }
      }
    }
    if (map_blocked_dest != graph::kInvalidProc) {
      s.state = ProcState::kMapBlocked;
      s.mailbox_full_dest = map_blocked_dest;
      if (me.pos < n) s.current_task = pp.order[me.pos];
    } else if (me.pos >= n) {
      s.state = me.counted_quiescent ? ProcState::kQuiescent
                                     : ProcState::kEndDrain;
    } else if (config.active_memory && me.memory->needs_map(me.pos)) {
      s.state = ProcState::kMap;
      s.current_task = pp.order[me.pos];
    } else {
      const TaskId t = pp.order[me.pos];
      s.current_task = t;
      GateRef gate;
      if (task_ready(q, t, &gate)) {
        s.state = ProcState::kExe;  // ready-to-run, snapshot raced the gate
      } else {
        s.state = ProcState::kRecBlocked;
        s.waiting_object = gate.object;
        s.waiting_version = gate.version;
        s.have_version = gate.have;
        s.waiting_flag_task = gate.flag_task;
      }
    }
    {
      std::lock_guard<std::mutex> lock(snap_m);
      snap_slots[static_cast<std::size_t>(q)] = std::move(s);
    }
    snap_acked.fetch_add(1, std::memory_order_release);
    me.snap_seen = gen;
  }

  /// Monitor-side: request snapshots, wait for the responsive workers,
  /// synthesize light entries for the rest (they are inside task bodies),
  /// and run the wait-for-graph analysis. Deliberately rings no doorbell:
  /// bell.value() is the progress signal the caller re-checks to know the
  /// collected snapshots describe one frozen instant.
  StallReport collect_and_diagnose(double stalled_seconds) {
    {
      std::lock_guard<std::mutex> lock(snap_m);
      snap_slots.assign(static_cast<std::size_t>(plan.num_procs),
                        ProcSnapshot{});
    }
    snap_acked.store(0, std::memory_order_relaxed);
    snap_gen.fetch_add(1, std::memory_order_release);
    // Parked workers wake within one park timeout and notice the request;
    // no ring needed (and a ring would corrupt the progress signal).
    const std::int64_t deadline_us = std::max<std::int64_t>(
        static_cast<std::int64_t>(options.snapshot_wait_seconds * 1e6),
        4 * effective_park_us);
    Stopwatch sw;
    for (;;) {
      int expected = 0;
      for (ProcId q = 0; q < plan.num_procs; ++q) {
        const auto st = static_cast<ProcState>(tp->light(q).state);
        // kExe workers are inside a body and cannot answer; kFailed
        // workers have unwound. Everyone else loops and will respond.
        if (st != ProcState::kExe && st != ProcState::kFailed) ++expected;
      }
      if (snap_acked.load(std::memory_order_acquire) >= expected) break;
      if (sw.seconds() * 1e6 > static_cast<double>(deadline_us)) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    std::vector<ProcSnapshot> snaps;
    {
      std::lock_guard<std::mutex> lock(snap_m);
      snaps = snap_slots;
    }
    for (ProcId q = 0; q < plan.num_procs; ++q) {
      ProcSnapshot& s = snaps[static_cast<std::size_t>(q)];
      if (s.detailed) continue;
      const LightState light = tp->light(q);
      s.proc = q;
      s.state = static_cast<ProcState>(light.state);
      s.pos = light.pos;
      s.order_size = static_cast<std::int32_t>(plan.procs[q].order.size());
    }
    std::vector<std::string> errs = tp->failure_texts();
    StallReport report = diagnose_stall(plan, std::move(snaps),
                                        stalled_seconds, std::move(errs));
    report.attempt_deadline_us = options.attempt_deadline_us;
    return report;
  }

  /// Deadline/cancel poll shared by the inproc monitor and the shm
  /// coordinator loop. Returns true when it cancelled the run (the caller
  /// breaks out of its loop; workers unwind via the abort).
  bool check_cancelled() {
    if (options.attempt_deadline_us > 0) {
      const auto elapsed_us =
          static_cast<std::int64_t>(since_run_start.seconds() * 1e6);
      if (elapsed_us >= options.attempt_deadline_us) {
        fail(graph::kInvalidProc,
             cat("run cancelled: attempt deadline of ",
                 options.attempt_deadline_us, " us lapsed after ", elapsed_us,
                 " us"),
             FailureKind::kCancelled);
        return true;
      }
    }
    if (cancel_requested.load(std::memory_order_acquire)) {
      std::string reason;
      {
        std::lock_guard<std::mutex> lock(cancel_m);
        reason = cancel_reason;
      }
      fail(graph::kInvalidProc, cat("run cancelled: ", reason),
           FailureKind::kCancelled);
      return true;
    }
    return false;
  }

  /// Heartbeat park bounded by the time left on the attempt deadline, so a
  /// lapse is noticed promptly even when the heartbeat is coarse.
  std::int64_t deadline_clamped(std::int64_t heartbeat_us) const {
    if (options.attempt_deadline_us <= 0) return heartbeat_us;
    const auto elapsed_us =
        static_cast<std::int64_t>(since_run_start.seconds() * 1e6);
    const std::int64_t remaining =
        std::max<std::int64_t>(options.attempt_deadline_us - elapsed_us, 500);
    return std::min(heartbeat_us, remaining);
  }

  /// The progress monitor (replaces the blind watchdog): parked on the
  /// control doorbell, it samples the data doorbell on a heartbeat. After
  /// stall_check_seconds without progress it collects a snapshot and builds
  /// the wait-for graph — a genuine cycle (or a wait on a quiescent
  /// processor) fails the run immediately with the StallReport; anything
  /// else is slow progress and the run resumes. With recovery enabled, a
  /// genuine diagnosis is held instead of failed: the re-request layer can
  /// heal waits that are provably dead under fail-stop rules (a dropped
  /// address package forms a real cycle that one NACK dissolves). The run
  /// then fails only when a waiter exhausted its bounded retries while
  /// global progress is stopped, or when the RetryPolicy-scaled watchdog
  /// budget expires. An unchanged bell across the whole snapshot window is
  /// what makes the per-processor snapshots mutually consistent: every
  /// unblocking event rings the bell, so "bell unmoved" means no processor
  /// changed protocol state while the snapshots were taken.
  void monitor() {
    const double stall_after =
        std::min(options.stall_check_seconds, effective_watchdog);
    const std::int64_t heartbeat_us = std::clamp<std::int64_t>(
        static_cast<std::int64_t>(stall_after * 1e6 / 4), 1000, 250000);
    std::uint64_t last = bell->value();
    Stopwatch since_progress;
    bool diagnosed = false;  // already analyzed this bell value
    std::shared_ptr<const StallReport> pending;  // slow-progress diagnosis
    for (;;) {
      // Control value read before the exit checks: a ring that lands after
      // the read makes the park return immediately, so run termination is
      // never charged a full heartbeat of latency.
      const std::uint64_t control_seen = control_bell->value();
      if (tp->quiescent_count() >= plan.num_procs || tp->aborted()) {
        break;
      }
      if (check_cancelled()) break;
      const std::uint64_t now = bell->value();
      if (now != last) {
        last = now;
        since_progress.reset();
        diagnosed = false;
        pending.reset();
      }
      const double stalled = since_progress.seconds();
      if (recovery_on && stalled > stall_after &&
          exhausted_waiters.load(std::memory_order_acquire) > 0) {
        auto report =
            std::make_shared<StallReport>(collect_and_diagnose(stalled));
        if (bell->value() != now) continue;  // progressed mid-snapshot
        if (exhausted_waiters.load(std::memory_order_acquire) > 0) {
          report->retries_exhausted = true;
          stall_report = report;
          fail(graph::kInvalidProc,
               cat("recovery retries exhausted after ", fixed(stalled, 2),
                   " s without progress: ", report->summary()),
               FailureKind::kRetriesExhausted);
          break;
        }
        continue;  // the exhausted wait healed while we were snapshotting
      }
      if (stalled > stall_after && !diagnosed) {
        auto report =
            std::make_shared<StallReport>(collect_and_diagnose(stalled));
        if (bell->value() != now) continue;  // progressed mid-snapshot
        diagnosed = true;
        if (report->genuine_deadlock && !recovery_on) {
          stall_report = report;
          fail(graph::kInvalidProc,
               cat("protocol deadlock after ", fixed(stalled, 2), " s: ",
                   report->summary()),
               FailureKind::kDeadlock);
          break;
        }
        // Slow progress — or, with recovery on, a diagnosis the re-request
        // layer may yet dissolve: hold for the (scaled) watchdog.
        pending = std::move(report);
      }
      if (stalled > effective_watchdog) {
        if (!pending) {
          pending =
              std::make_shared<StallReport>(collect_and_diagnose(stalled));
        }
        stall_report = pending;
        fail(graph::kInvalidProc,
             cat("watchdog: no protocol progress for ", fixed(stalled, 2),
                 " s: ", pending->summary()),
             FailureKind::kWatchdog);
        break;
      }
      control_bell->wait(control_seen, deadline_clamped(heartbeat_us));
    }
  }

  // ---- worker ------------------------------------------------------------

  class Resolver final : public ObjectResolver {
   public:
    Resolver(Impl& impl, ProcId proc) : impl_(impl), proc_(proc) {}

    std::span<const std::byte> read(DataId d) const override {
      const std::int64_t size = impl_.plan.graph->data(d).size_bytes;
      const mem::Offset off = impl_.priv[proc_].memory->offset_of(d);
      return {impl_.win[static_cast<std::size_t>(proc_)].heap + off,
              static_cast<std::size_t>(size)};
    }

    std::span<std::byte> write(DataId d) override {
      RAPID_CHECK(impl_.plan.graph->data(d).owner == proc_,
                  cat("task on processor ", proc_, " writing non-owned ",
                      impl_.plan.graph->data(d).name));
      const std::int64_t size = impl_.plan.graph->data(d).size_bytes;
      const mem::Offset off = impl_.priv[proc_].memory->offset_of(d);
      return {impl_.win[static_cast<std::size_t>(proc_)].heap + off,
              static_cast<std::size_t>(size)};
    }

   private:
    Impl& impl_;
    ProcId proc_;
  };

  void complete_task(ProcId q, TaskId t) {
    Private& me = priv[q];
    const TaskRuntimePlan& trp = plan.tasks[t];
    trace_state(q, obs::ProtoState::kSnd);
    for (ProcId dest : trp.flag_dests) send_flag(q, dest, t);
    // Collect every send this SND state produces, then route them together:
    // dispatch_sends coalesces same-destination puts into one batch.
    me.send_scratch.clear();
    for (const auto& [d, v] : trp.epoch_memberships) {
      auto& remaining = me.epoch_remaining[epoch_base[d] +
                                           static_cast<std::size_t>(v) - 1];
      if (--remaining == 0) {
        RAPID_CHECK(me.current_version[d] == v - 1,
                    "versions completed out of order");
        me.current_version[d] = v;
        for (ProcId dest :
             plan.objects[d].sends_by_version[static_cast<std::size_t>(v)]) {
          me.send_scratch.push_back(ContentSend{d, v, dest});
        }
      }
    }
    dispatch_sends(q, me.send_scratch);
    tasks_executed.fetch_add(1, std::memory_order_relaxed);
    bump_progress();
  }

  /// EXE with bounded re-execution: a TransientTaskError (injected or
  /// thrown by the body for a genuinely transient condition) is retried up
  /// to RetryPolicy::max_attempts times with the policy's backoff. The
  /// poison-fill free hook guarantees a retried body cannot silently read
  /// stale heap through a dangling address — a stale read yields poison,
  /// not plausible content — and the MAP free hook has reset the
  /// verification state of any recycled input region.
  void execute_task(TaskId t, Resolver& resolver) {
    std::int32_t attempt = 1;
    for (;;) {
      try {
        if (faults_on) {
          if (induced_on && t == faults.throw_in_task) {
            throw InjectedFaultError(
                cat("injected fault: task ", plan.graph->task(t).name,
                    " forced to fail"));
          }
          if (induced_on && faults.task_throws_transient(t, attempt)) {
            throw TransientTaskError(
                cat("injected transient fault: task ",
                    plan.graph->task(t).name, " attempt ", attempt));
          }
          const std::int64_t delay = faults.task_delay_us(t);
          if (delay > 0) sleep_us(delay);
        }
        body(t, resolver);  // EXE
        return;
      } catch (const TransientTaskError&) {
        if (!recovery_on || attempt > options.retry.max_attempts ||
            tp->aborted()) {
          throw;
        }
        task_retries.fetch_add(1, std::memory_order_relaxed);
        sleep_us(options.retry.delay_us(attempt));
        ++attempt;
      }
    }
  }

  void worker(ProcId q) {
    Private& me = priv[q];
    set_log_thread_proc(q);
    set_log_thread_run(options.run_id);
    // Per-run kernel dispatch: a thread-local override instead of the
    // process-global level, so co-resident service runs with different
    // RunConfig::kernel_dispatch never clobber each other.
    if (config.kernel_dispatch >= 0) {
      num::set_thread_kernel_level(config.kernel_dispatch);
    }
    try {
      const ProcPlan& pp = plan.procs[q];
      // Initialize owned objects, then issue version-0 sends (they suspend
      // in active mode until reader addresses arrive).
      Resolver resolver(*this, q);
      for (DataId d : pp.permanents) {
        if (init) init(d, resolver.write(d));
      }
      dispatch_sends(q, pp.initial_sends);

      me.backoff.emplace(*bell, options.spin_iters, effective_park_us);
      Backoff& backoff = *me.backoff;
      const auto n = static_cast<std::int32_t>(pp.order.size());
      while (!tp->aborted()) {
        if (snap_gen.load(std::memory_order_acquire) != me.snap_seen) {
          publish_snapshot(q, 0, 0, graph::kInvalidProc);
        }
        if (me.pos < n) {
          if (config.active_memory && me.memory->needs_map(me.pos)) {
            // MAP state.
            set_state(q, ProcState::kMap);
            trace_state(q, obs::ProtoState::kMap);
            if (tracing) trace->record(q, obs::EventKind::kMapBegin, me.pos);
            if (faults_on) maybe_kill(q, FaultPlan::kKillMap);
            const MapResult map = me.memory->perform_map(me.pos);
            ++me.maps;
            if (tracing) {
              // kMapFree events came from the free hook inside perform_map;
              // close the MAP with its allocations and the heap samples the
              // occupancy timeline is built from. kHeapPeak carries the
              // arena's true peak — tentative allocations rolled back inside
              // perform_map count, so it can exceed every kHeapSample.
              for (DataId d : map.allocated) {
                trace->record(q, obs::EventKind::kMapAlloc, d, 0, 0,
                              plan.graph->data(d).size_bytes);
              }
              trace->record(q, obs::EventKind::kMapEnd, me.pos);
              trace->record(q, obs::EventKind::kHeapSample, 0, 0, 0,
                            me.memory->in_use_bytes());
              trace->record(q, obs::EventKind::kHeapPeak, 0, 0, 0,
                            me.memory->peak_bytes());
            }
            for (const auto& [dest, pkg] : map.packages) {
              if (!send_addr_package_blocking(q, dest, pkg)) return;
            }
            bump_progress();
            backoff.reset();
            continue;
          }
          const TaskId t = pp.order[me.pos];
          // The protocol enters REC before every task (Fig. 3(b)); a ready
          // task just passes through it instantly.
          trace_state(q, obs::ProtoState::kRec);
          if (faults_on && me.pos != me.last_rec_pos) {
            // First REC entry at this schedule position (re-entries after a
            // blocked pause are the same protocol state, not a new one).
            me.last_rec_pos = me.pos;
            maybe_kill(q, FaultPlan::kKillRec);
          }
          // Doorbell value read BEFORE the readiness check: an input that
          // arrives between the check and the park moves the bell past
          // `seen`, so the park returns immediately instead of sleeping
          // through the wakeup.
          const std::uint64_t seen = bell->value();
          GateRef gate;
          if (task_ready(q, t, &gate)) {
            if (recovery_on) finish_wait(q);
            if (tracing) {
              // The task's remote inputs are now all trusted: close the
              // put→publish→consume flows on the reader side. The stamp is
              // a fresh acquire load of the published put sequence — a real
              // release/acquire pair with the owner's publication, so the
              // conformance checker's publish→consume edge is a genuine
              // happens-before edge, not a timestamp heuristic.
              for (const RemoteRead& rr : plan.tasks[t].remote_reads) {
                const std::uint32_t seq =
                    win[static_cast<std::size_t>(q)].put_seq[rr.object].load(
                        std::memory_order_acquire);
                trace->record(q, obs::EventKind::kConsume, rr.object,
                              rr.version,
                              plan.graph->data(rr.object).owner, 0,
                              static_cast<std::uint16_t>(seq));
              }
            }
            set_state(q, ProcState::kExe);
            trace_state(q, obs::ProtoState::kExe);
            if (faults_on) maybe_kill(q, FaultPlan::kKillExe);
            if (tracing) trace->record(q, obs::EventKind::kTaskBegin, t);
            execute_task(t, resolver);
            if (tracing) trace->record(q, obs::EventKind::kTaskEnd, t);
            ++me.pos;
            tp->beat(q, static_cast<std::uint8_t>(ProcState::kExe), me.pos);
            if (faults_on) maybe_kill(q, FaultPlan::kKillSnd);
            complete_task(q, t);  // SND
            backoff.reset();
          } else if (service_ra_cq(q)) {  // REC
            backoff.reset();
          } else {
            set_state(q, ProcState::kRecBlocked);
            if (recovery_on) note_blocked_wait(q, gate);
            tp->beat_wait(q, gate.object, gate.version, gate.flag_task,
                          graph::kInvalidProc, me.wait.attempts,
                          me.wait.exhausted);
            traced_pause(q, backoff, seen);
          }
          continue;
        }
        // END: drain, then wait for global quiescence.
        trace_state(q, obs::ProtoState::kEnd);
        const std::uint64_t seen = bell->value();
        const bool progressed = service_ra_cq(q);
        if (!me.counted_quiescent && me.suspended_count == 0) {
          me.counted_quiescent = true;
          set_state(q, ProcState::kQuiescent);
          if (tp->note_quiescent(q) == plan.num_procs) {
            control_bell->ring();  // the run is over: wake the monitor
          }
          bump_progress();  // and any peers parked waiting for quiescence
        } else if (!me.counted_quiescent) {
          set_state(q, ProcState::kEndDrain);
        }
        if (tp->quiescent_count() == plan.num_procs) {
          return;
        }
        if (progressed) {
          backoff.reset();
        } else {
          traced_pause(q, backoff, seen);
        }
      }
    } catch (const NonExecutableError& e) {
      set_state(q, ProcState::kFailed);
      fail(q, e.what(), FailureKind::kNonExecutable);
    } catch (const InjectedFaultError& e) {
      set_state(q, ProcState::kFailed);
      fail(q, cat("processor ", q, ": ", e.what()),
           FailureKind::kInjectedFault);
    } catch (const std::exception& e) {
      set_state(q, ProcState::kFailed);
      fail(q, cat("processor ", q, ": ", e.what()), FailureKind::kTaskError);
    }
  }

  void fill_counters(RunReport& report) {
    for (ProcId q = 0; q < plan.num_procs; ++q) {
      report.maps_per_proc[q] = priv[q].maps;
      if (priv[q].memory) {
        report.peak_bytes_per_proc[q] = priv[q].memory->peak_bytes();
      }
    }
    report.content_messages = content_messages.load();
    report.content_bytes = content_bytes.load();
    report.put_batches = put_batches.load();
    report.flag_messages = flag_messages.load();
    report.addr_packages = addr_packages.load();
    report.addr_entries = addr_entries.load();
    report.suspended_sends = suspended_sends.load();
    report.tasks_executed = tasks_executed.load();
    report.recovery.nacks_sent = nacks_sent.load();
    report.recovery.resends = resends.load();
    report.recovery.flag_resends = flag_resends.load();
    report.recovery.duplicate_suppressions = duplicate_suppressions.load();
    report.recovery.checksum_rejections = checksum_rejections.load();
    report.recovery.task_retries = task_retries.load();
  }

  // ---- run orchestration -------------------------------------------------

  /// Per-run state reset plus the plan-derived index tables; shared by both
  /// backends and by shm_worker_run.
  void reset_run_state() {
    completed = false;
    priv.clear();
    priv.resize(static_cast<std::size_t>(plan.num_procs));
    win.clear();
    snap_slots.assign(static_cast<std::size_t>(plan.num_procs),
                      ProcSnapshot{});
    snap_gen.store(0);
    snap_acked.store(0);
    exhausted_waiters.store(0);
    stall_report.reset();
    epoch_base.assign(static_cast<std::size_t>(plan.graph->num_data()), 0);
    owned_index.assign(static_cast<std::size_t>(plan.graph->num_data()), -1);
    for (ProcId q = 0; q < plan.num_procs; ++q) {
      std::int32_t next = 0;
      for (DataId d : plan.procs[q].permanents) owned_index[d] = next++;
    }
  }

  /// Rank q's plan-derived private state: the MAP engine (whose offsets are
  /// deterministic, so every process derives the same addresses) and the
  /// owner/reader tables. The free hook pokes rank q's window, so it is
  /// installed only where this process plays q's protocol role. Requires
  /// `win` to be populated. Throws NonExecutableError on capacity failure.
  void setup_proc_state(ProcId q, bool install_free_hook) {
    Private& pr = priv[q];
    pr.memory = std::make_unique<ProcMemory>(
        plan, q, config.capacity_per_proc, /*alignment=*/8,
        config.alloc_policy, config.slab_arena);
    if (install_free_hook &&
        (options.poison_freed || checksum_on || tracing)) {
      // Poison-fill freed volatile regions so a read through a stale
      // address (use-after-free across MAP reuse) yields garbage that the
      // numeric checks catch, not stale-but-plausible content — and reset
      // the freed object's verification state so a recycled region is
      // never trusted on the strength of a previous lifetime's checksum.
      // The hook fires between a MAP's frees and its reallocations, and
      // the protocol guarantees no put is in flight to a dead region (see
      // docs/RUNTIME.md), so neither the memset nor the reset can race a
      // sender. impl.priv is sized once before the workers start, so the
      // captured pointers stay valid.
      std::byte* heap = win[static_cast<std::size_t>(q)].heap;
      Private* mine = &pr;
      const bool poison = options.poison_freed;
      Impl* self = this;
      pr.memory->set_free_hook(
          [heap, mine, poison, self, q](DataId d, mem::Offset off,
                                        std::int64_t size) {
            if (poison && size > 0) {
              std::memset(heap + off, 0xA5, static_cast<std::size_t>(size));
            }
            mine->verified_seq[d] = 0;
            mine->rejected_seq[d] = 0;
            // The hook fires on the owning worker's thread inside its
            // MAP, so recording here obeys the single-writer ring rule.
            if (self->tracing) {
              self->trace->record(q, obs::EventKind::kMapFree, d, 0, 0,
                                  size);
            }
          });
    }
    if (!config.active_memory) pr.memory->preallocate_all();
    pr.current_version.assign(
        static_cast<std::size_t>(plan.graph->num_data()), 0);
    pr.known_addrs.assign(plan.procs[q].permanents.size() *
                              static_cast<std::size_t>(plan.num_procs),
                          mem::kNullOffset);
    pr.sent_seq.assign(pr.known_addrs.size(), 0);
    pr.verified_seq.assign(static_cast<std::size_t>(plan.graph->num_data()),
                           0);
    pr.rejected_seq.assign(static_cast<std::size_t>(plan.graph->num_data()),
                           0);
    pr.suspended_by_dest.resize(static_cast<std::size_t>(plan.num_procs));
    pr.batch_by_dest.resize(static_cast<std::size_t>(plan.num_procs));
    pr.addr_epoch.assign(static_cast<std::size_t>(plan.num_procs), 0);
    pr.scanned_epoch.assign(static_cast<std::size_t>(plan.num_procs), 0);
    pr.pkg_seq_sent.assign(static_cast<std::size_t>(plan.num_procs), 0);
    pr.pkg_seq_seen.assign(static_cast<std::size_t>(plan.num_procs), 0);
  }

  /// Flattened epoch counters (owner-private: every writer of an object
  /// runs on its owner) plus the baseline address prefill.
  void setup_epochs_and_baseline() {
    std::size_t total_epochs = 0;
    for (DataId d = 0; d < plan.graph->num_data(); ++d) {
      epoch_base[d] = total_epochs;
      total_epochs += plan.objects[d].epochs.size();
    }
    for (ProcId q = 0; q < plan.num_procs; ++q) {
      priv[q].epoch_remaining.assign(total_epochs, 0);
    }
    for (DataId d = 0; d < plan.graph->num_data(); ++d) {
      const ProcId owner = plan.graph->data(d).owner;
      for (std::size_t v = 0; v < plan.objects[d].epochs.size(); ++v) {
        priv[owner].epoch_remaining[epoch_base[d] + v] =
            static_cast<std::int32_t>(plan.objects[d].epochs[v].size());
      }
    }
    // Baseline: owners learn every reader address before any worker starts.
    if (!config.active_memory) {
      for (ProcId reader = 0; reader < plan.num_procs; ++reader) {
        for (const sched::VolatileLifetime& v :
             plan.procs[reader].volatiles) {
          const ProcId owner = plan.graph->data(v.object).owner;
          addr_slot(priv[owner], v.object, reader) =
              priv[reader].memory->offset_of(v.object);
        }
      }
    }
  }

  RunReport nonexecutable_report(const std::exception& e) {
    RunReport report;
    report.run_id = options.run_id;
    report.attempt_deadline_us = options.attempt_deadline_us;
    report.maps_per_proc.assign(static_cast<std::size_t>(plan.num_procs), 0);
    report.peak_bytes_per_proc.assign(
        static_cast<std::size_t>(plan.num_procs), 0);
    report.executable = false;
    report.failure = e.what();
    report.failure_kind = FailureKind::kNonExecutable;
    report.errors.push_back(e.what());
    report.transport = to_string(options.transport);
    last_report = report;
    return report;
  }

  /// Shared failure disposition: returns normally only for the reported
  /// (non-throwing) kNonExecutable channel.
  [[noreturn]] void throw_disposition(RunReport& report) {
    switch (report.failure_kind) {
      case FailureKind::kDeadlock:
      case FailureKind::kWatchdog:
      case FailureKind::kRetriesExhausted:
        throw ProtocolDeadlockError(report.failure, stall_report);
      case FailureKind::kProcFailure:
        throw ProcFailureError(report.failure, report.proc_failure);
      case FailureKind::kCancelled:
        throw RunCancelledError(report.failure,
                                std::make_shared<RunReport>(report));
      default:
        throw ExecutionFailedError(report.failure, report.errors);
    }
  }

  RunReport run_inproc() {
    RunReport report;
    report.run_id = options.run_id;
    report.attempt_deadline_us = options.attempt_deadline_us;
    report.maps_per_proc.assign(static_cast<std::size_t>(plan.num_procs), 0);
    report.peak_bytes_per_proc.assign(
        static_cast<std::size_t>(plan.num_procs), 0);
    reset_run_state();
    since_run_start.reset();
    set_log_thread_run(options.run_id);
    try {
      if (config.audit) verify::audit_or_throw(plan, config);
      owned_tp = make_inproc_transport(
          plan.num_procs, plan.graph->num_data(), plan.graph->num_tasks(),
          config.capacity_per_proc);
      tp = owned_tp.get();
      bell = &tp->data_bell();
      control_bell = &tp->control_bell();
      for (ProcId q = 0; q < plan.num_procs; ++q) {
        win.push_back(tp->window(q));
      }
      for (ProcId q = 0; q < plan.num_procs; ++q) {
        setup_proc_state(q, /*install_free_hook=*/true);
      }
    } catch (const NonExecutableError& e) {
      return nonexecutable_report(e);
    }
    setup_epochs_and_baseline();

    if (tracing) {
      RAPID_CHECK(trace->num_procs() >= plan.num_procs,
                  "the Trace is sized for fewer processors than the plan");
      // Tag the trace with its owning run before any worker writes a
      // record, so multi-tenant Chrome traces split per run.
      if (options.run_id > 0) trace->set_run_id(options.run_id);
      // Baseline heap samples (permanents, plus preallocated volatiles in
      // baseline mode), recorded before the workers exist so the
      // single-writer ring rule holds via the thread-creation edge.
      for (ProcId q = 0; q < plan.num_procs; ++q) {
        trace->record(q, obs::EventKind::kHeapSample, 0, 0, 0,
                      priv[q].memory->in_use_bytes());
        trace->record(q, obs::EventKind::kHeapPeak, 0, 0, 0,
                      priv[q].memory->peak_bytes());
      }
    }

    Stopwatch wall;
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(plan.num_procs));
    for (ProcId q = 0; q < plan.num_procs; ++q) {
      threads.emplace_back([this, q] { worker(q); });
    }
    monitor();
    for (auto& th : threads) th.join();
    report.parallel_time_us = wall.seconds() * 1e6;
    fill_counters(report);
    report.transport = to_string(tp->kind());
    if (tracing) {
      report.metrics = std::make_shared<obs::MetricsSummary>(
          obs::derive_metrics(*trace));
    }

    if (tp->any_failure()) {
      const std::vector<std::string> texts = tp->failure_texts();
      report.failure = texts.empty() ? "unknown failure" : texts.front();
      report.failure_kind = tp->first_failure_kind();
      report.errors = texts;
      last_report = report;
      if (report.failure_kind == FailureKind::kNonExecutable) {
        report.executable = false;  // the "∞" channel: reported, not thrown
        last_report = report;
        return report;
      }
      throw_disposition(report);
    }
    completed = report.executable;
    last_report = report;
    return report;
  }

  // ---- shm coordinator ---------------------------------------------------

  ShmRunSpec build_shm_spec(const std::string& trace_dir) const {
    ShmRunSpec spec;
    spec.capacity_per_proc = config.capacity_per_proc;
    spec.active_memory = config.active_memory ? 1 : 0;
    spec.alloc_policy = static_cast<std::uint8_t>(config.alloc_policy);
    spec.slab_arena = config.slab_arena ? 1 : 0;
    spec.mailbox_slots = config.mailbox_slots;
    spec.kernel_dispatch = config.kernel_dispatch;
    spec.run_id = options.run_id;
    spec.watchdog_seconds = options.watchdog_seconds;
    spec.stall_check_seconds = options.stall_check_seconds;
    spec.snapshot_wait_seconds = options.snapshot_wait_seconds;
    spec.spin_iters = options.spin_iters;
    spec.park_timeout_us = options.park_timeout_us;
    spec.poison_freed = options.poison_freed ? 1 : 0;
    spec.checksum = options.checksum ? 1 : 0;
    spec.retry = options.retry;
    spec.run_attempt = options.run_attempt;
    spec.faults = faults;
    spec.lease_timeout_seconds = options.lease_timeout_seconds;
    spec.trace_enabled = tracing ? 1 : 0;
    std::strncpy(spec.trace_dir, trace_dir.c_str(),
                 sizeof(spec.trace_dir) - 1);
    std::strncpy(spec.workload_spec, options.workload_spec.c_str(),
                 sizeof(spec.workload_spec) - 1);
    spec.plan_fingerprint = rt::plan_fingerprint(plan);
    return spec;
  }

  /// Light-state stall diagnosis for the coordinator: the workers live in
  /// other processes, so snapshots are synthesized from their beat/beat_wait
  /// publications in the control segment instead of the cooperative
  /// snapshot handshake.
  StallReport shm_collect(double stalled_seconds) {
    std::vector<ProcSnapshot> snaps(static_cast<std::size_t>(plan.num_procs));
    for (ProcId q = 0; q < plan.num_procs; ++q) {
      ProcSnapshot& s = snaps[static_cast<std::size_t>(q)];
      const LightState l = tp->light(q);
      s.proc = q;
      s.state = static_cast<ProcState>(l.state);
      s.pos = l.pos;
      s.order_size = static_cast<std::int32_t>(plan.procs[q].order.size());
      if (s.pos >= 0 && s.pos < s.order_size) {
        s.current_task = plan.procs[q].order[s.pos];
      }
      if (s.state == ProcState::kRecBlocked) {
        s.waiting_object = l.waiting_object;
        s.waiting_version = l.waiting_version;
        s.waiting_flag_task = l.waiting_flag;
      } else if (s.state == ProcState::kMapBlocked) {
        s.mailbox_full_dest = l.map_dest;
      }
      s.retry_attempts = l.retry_attempts;
    }
    StallReport report = diagnose_stall(plan, std::move(snaps),
                                        stalled_seconds, tp->failure_texts());
    report.attempt_deadline_us = options.attempt_deadline_us;
    return report;
  }

  /// Structured diagnosis of rank `dead`'s death, including every
  /// survivor's wait that only the corpse could have satisfied. Also
  /// records the failure into the control segment (coordinator slot) and
  /// requests the abort so survivors unwind.
  std::shared_ptr<ProcFailureReport> make_proc_failure(
      ProcId dead, const char* detected_by, int sig, int code,
      double lease_age) {
    auto r = std::make_shared<ProcFailureReport>();
    r->dead_rank = dead;
    r->signal = sig;
    r->exit_code = code;
    r->detected_by = detected_by;
    r->lease_age_seconds = lease_age;
    const LightState dl = tp->light(dead);
    r->state_at_death = dl.state;
    r->pos_at_death = dl.pos;
    for (ProcId q = 0; q < plan.num_procs; ++q) {
      if (q == dead || session->child(q).exited) continue;
      const LightState l = tp->light(q);
      const auto st = static_cast<ProcState>(l.state);
      if (st == ProcState::kRecBlocked) {
        if (l.waiting_object != graph::kInvalidData &&
            plan.graph->data(l.waiting_object).owner == dead) {
          OrphanedWait w;
          w.waiter = q;
          w.object = l.waiting_object;
          w.version = l.waiting_version;
          r->orphaned.push_back(w);
        } else if (l.waiting_flag != graph::kInvalidTask &&
                   plan.schedule.proc_of_task[l.waiting_flag] == dead) {
          OrphanedWait w;
          w.waiter = q;
          w.flag_task = l.waiting_flag;
          r->orphaned.push_back(w);
        }
      } else if (st == ProcState::kMapBlocked && l.map_dest == dead) {
        OrphanedWait w;
        w.waiter = q;
        w.map_blocked = true;
        r->orphaned.push_back(w);
      }
    }
    tp->report_failure(graph::kInvalidProc, FailureKind::kProcFailure,
                       r->summary());
    tp->request_abort();
    bell->ring();
    control_bell->ring();
    return r;
  }

  void fill_counters_shm(RunReport& report) {
    ShmTransport& st = session->transport();
    for (ProcId q = 0; q < plan.num_procs; ++q) {
      if (!st.worker_done(q)) continue;
      report.maps_per_proc[q] =
          static_cast<std::int32_t>(st.worker_counter(q, kCtrMaps));
      report.peak_bytes_per_proc[q] = st.worker_counter(q, kCtrPeakBytes);
      report.content_messages += st.worker_counter(q, kCtrContentMessages);
      report.content_bytes += st.worker_counter(q, kCtrContentBytes);
      report.put_batches += st.worker_counter(q, kCtrPutBatches);
      report.flag_messages += st.worker_counter(q, kCtrFlagMessages);
      report.addr_packages += st.worker_counter(q, kCtrAddrPackages);
      report.addr_entries += st.worker_counter(q, kCtrAddrEntries);
      report.suspended_sends += st.worker_counter(q, kCtrSuspendedSends);
      report.tasks_executed += st.worker_counter(q, kCtrTasksExecuted);
      report.recovery.nacks_sent += st.worker_counter(q, kCtrNacksSent);
      report.recovery.resends += st.worker_counter(q, kCtrResends);
      report.recovery.flag_resends += st.worker_counter(q, kCtrFlagResends);
      report.recovery.duplicate_suppressions +=
          st.worker_counter(q, kCtrDupSuppressions);
      report.recovery.checksum_rejections +=
          st.worker_counter(q, kCtrChecksumRejections);
      report.recovery.task_retries += st.worker_counter(q, kCtrTaskRetries);
    }
  }

  /// Merges the per-rank trace dumps the workers left in `dir` into the
  /// session Trace (epoch-rebased; see obs/trace_io.hpp).
  void merge_worker_traces(const std::string& dir) {
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::directory_iterator it(dir, ec);
    if (ec) {
      RAPID_WARN("shm trace merge: cannot read " << dir << ": "
                                                 << ec.message());
      return;
    }
    for (const auto& entry : it) {
      if (!entry.is_regular_file()) continue;
      const std::string name = entry.path().filename().string();
      if (name.size() < 11 || name[0] != 'p' ||
          name.rfind(".trace.bin") != name.size() - 10) {
        continue;
      }
      try {
        const obs::LoadedProcTrace lt =
            obs::load_proc_trace(entry.path().string());
        if (lt.proc >= 0 && lt.proc < trace->num_procs()) {
          obs::merge_proc_trace(trace, lt);
        }
      } catch (const Error& e) {
        RAPID_WARN("shm trace merge: skipping " << name << ": " << e.what());
      }
    }
  }

  RunReport run_shm() {
    RunReport report;
    report.run_id = options.run_id;
    report.attempt_deadline_us = options.attempt_deadline_us;
    report.transport = to_string(TransportKind::kShm);
    report.maps_per_proc.assign(static_cast<std::size_t>(plan.num_procs), 0);
    report.peak_bytes_per_proc.assign(
        static_cast<std::size_t>(plan.num_procs), 0);
    reset_run_state();
    since_run_start.reset();
    set_log_thread_run(options.run_id);

    std::string trace_dir = options.shm_trace_dir;
    bool throwaway_trace_dir = false;
    if (tracing) {
      RAPID_CHECK(trace->num_procs() >= plan.num_procs,
                  "the Trace is sized for fewer processors than the plan");
      if (options.run_id > 0) trace->set_run_id(options.run_id);
      if (trace_dir.empty()) {
        trace_dir = (std::filesystem::temp_directory_path() /
                     cat("rapid-trace-", ::getpid(), "-",
                         now_ns() & 0xffffff))
                        .string();
        throwaway_trace_dir = true;
      }
      std::filesystem::create_directories(trace_dir);
    }

    try {
      if (config.audit) verify::audit_or_throw(plan, config);
      ShmTransport::Dims dims;
      dims.num_procs = plan.num_procs;
      dims.num_data = plan.graph->num_data();
      dims.num_tasks = plan.graph->num_tasks();
      dims.heap_bytes = config.capacity_per_proc;
      session = ShmSession::create(dims, build_shm_spec(trace_dir));
      tp = &session->transport();
      bell = &tp->data_bell();
      control_bell = &tp->control_bell();
      for (ProcId q = 0; q < plan.num_procs; ++q) {
        win.push_back(tp->window(q));
      }
      // Coordinator-side MAP engines for every rank: the offsets are
      // deterministic, so read_object and the baseline prefill agree with
      // the engines the workers rebuild for themselves. No free hooks —
      // the coordinator never plays a protocol role.
      for (ProcId q = 0; q < plan.num_procs; ++q) {
        setup_proc_state(q, /*install_free_hook=*/false);
      }
    } catch (const NonExecutableError& e) {
      session.reset();
      return nonexecutable_report(e);
    }
    setup_epochs_and_baseline();

    Stopwatch wall;
    if (options.shm_launch == ThreadedOptions::ShmLaunch::kSpawn) {
      RAPID_CHECK(!options.shm_worker_path.empty(),
                  "shm spawn mode needs ThreadedOptions::shm_worker_path");
      RAPID_CHECK(!options.workload_spec.empty(),
                  "shm spawn mode needs ThreadedOptions::workload_spec so "
                  "rapid_shm_worker can rebuild the plan");
      session->spawn_exec(options.shm_worker_path);
    } else {
      ShmTransport* st = &session->transport();
      session->spawn_fork([this, st](ProcId q) {
        (void)q;  // spawn_fork already switched the transport's rank
        return shm_worker_run(*st, plan, init, body);
      });
    }

    // Coordinator loop: reap deaths, police leases, watch progress.
    std::shared_ptr<ProcFailureReport> proc_failure;
    ShmTransport& st = session->transport();
    const double stall_after =
        std::min(options.stall_check_seconds, effective_watchdog);
    const std::int64_t heartbeat_us = std::clamp<std::int64_t>(
        static_cast<std::int64_t>(stall_after * 1e6 / 4), 1000, 250000);
    std::uint64_t last = bell->value();
    Stopwatch since_progress;
    Stopwatch since_start;
    bool diagnosed = false;
    std::shared_ptr<const StallReport> pending;
    for (;;) {
      const std::uint64_t control_seen = control_bell->value();
      session->poll();
      for (ProcId q = 0; q < plan.num_procs && !proc_failure; ++q) {
        ShmSession::Child& c = session->child(q);
        if (!c.exited || c.reported) continue;
        c.reported = true;
        if (c.signal != 0 || (c.exit_code != kShmWorkerClean &&
                              c.exit_code != kShmWorkerAborted &&
                              c.exit_code != kShmWorkerFailed)) {
          proc_failure = make_proc_failure(q, "waitpid", c.signal,
                                           c.exit_code,
                                           st.lease_age_seconds(q));
        }
      }
      if (proc_failure) break;
      if (tp->quiescent_count() >= plan.num_procs || tp->aborted()) break;
      if (check_cancelled()) break;
      if (session->all_exited()) break;  // defensive: no child left to wait on
      // Lease lapse: a rank that stopped beating while NOT inside a task
      // body (kExe beats are suspended for the body's duration) is dead to
      // the protocol even if the process still exists (SIGSTOP, livelock).
      // Kill it so fail-stop is true, then report.
      for (ProcId q = 0; q < plan.num_procs && !proc_failure; ++q) {
        if (session->child(q).exited || st.worker_done(q)) continue;
        const LightState l = tp->light(q);
        const auto state = static_cast<ProcState>(l.state);
        if (state == ProcState::kExe || state == ProcState::kQuiescent ||
            state == ProcState::kFailed) {
          continue;
        }
        const double age = l.lease_ns == 0 ? since_start.seconds()
                                           : st.lease_age_seconds(q);
        if (age > options.lease_timeout_seconds) {
          ::kill(session->child(q).pid, SIGKILL);
          proc_failure = make_proc_failure(q, "lease", SIGKILL, 0, age);
        }
      }
      if (proc_failure) break;
      const std::uint64_t now = bell->value();
      if (now != last) {
        last = now;
        since_progress.reset();
        diagnosed = false;
        pending.reset();
      }
      const double stalled = since_progress.seconds();
      if (stalled > stall_after && !diagnosed) {
        auto rep = std::make_shared<StallReport>(shm_collect(stalled));
        if (bell->value() != now) continue;  // progressed mid-snapshot
        diagnosed = true;
        bool exhausted = false;
        for (ProcId q = 0; q < plan.num_procs; ++q) {
          if (tp->light(q).retries_exhausted) exhausted = true;
        }
        if (recovery_on && exhausted) {
          rep->retries_exhausted = true;
          stall_report = rep;
          fail(graph::kInvalidProc,
               cat("recovery retries exhausted after ", fixed(stalled, 2),
                   " s without progress: ", rep->summary()),
               FailureKind::kRetriesExhausted);
          break;
        }
        if (rep->genuine_deadlock && !recovery_on) {
          stall_report = rep;
          fail(graph::kInvalidProc,
               cat("protocol deadlock after ", fixed(stalled, 2), " s: ",
                   rep->summary()),
               FailureKind::kDeadlock);
          break;
        }
        pending = rep;
      }
      if (stalled > effective_watchdog) {
        if (!pending) {
          pending = std::make_shared<StallReport>(shm_collect(stalled));
        }
        stall_report = pending;
        fail(graph::kInvalidProc,
             cat("watchdog: no protocol progress for ", fixed(stalled, 2),
                 " s: ", pending->summary()),
             FailureKind::kWatchdog);
        break;
      }
      control_bell->wait(control_seen, deadline_clamped(heartbeat_us));
    }

    // Teardown: whatever ended the loop, no child may outlive the run.
    const bool clean = !proc_failure && !tp->any_failure() &&
                       tp->quiescent_count() >= plan.num_procs;
    if (!clean) {
      tp->request_abort();
      bell->ring();
      control_bell->ring();
    }
    if (!session->wait_all(
            std::max(2.0, 2.0 * options.lease_timeout_seconds))) {
      session->kill_all(SIGKILL);
      session->wait_all(5.0);
    }
    report.parallel_time_us = wall.seconds() * 1e6;
    fill_counters_shm(report);
    if (tracing) {
      merge_worker_traces(trace_dir);
      report.metrics = std::make_shared<obs::MetricsSummary>(
          obs::derive_metrics(*trace));
      if (throwaway_trace_dir) {
        std::error_code ec;
        std::filesystem::remove_all(trace_dir, ec);
      }
    }

    if (proc_failure) {
      report.failure_kind = FailureKind::kProcFailure;
      report.failure = proc_failure->summary();
      report.errors = tp->failure_texts();
      report.proc_failure = proc_failure;
      last_report = report;
      throw_disposition(report);
    }
    if (tp->any_failure()) {
      const std::vector<std::string> texts = tp->failure_texts();
      report.failure = texts.empty() ? "unknown failure" : texts.front();
      report.failure_kind = tp->first_failure_kind();
      report.errors = texts;
      last_report = report;
      if (report.failure_kind == FailureKind::kNonExecutable) {
        report.executable = false;
        last_report = report;
        return report;
      }
      throw_disposition(report);
    }
    if (!clean) {
      // All children exited without quiescence or any recorded failure —
      // should be impossible; surface it (with each child's exit status and
      // last beat) rather than return a bogus clean report.
      report.failure_kind = FailureKind::kWatchdog;
      std::string detail = cat("shm run ended without quiescence or a "
                               "recorded failure (quiescent ",
                               tp->quiescent_count(), "/", plan.num_procs,
                               ")");
      for (ProcId q = 0; q < plan.num_procs; ++q) {
        const ShmSession::Child& c = session->child(q);
        const LightState l = tp->light(q);
        detail += cat("; p", q, ": ",
                      c.exited
                          ? (c.signal != 0 ? cat("signal ", c.signal)
                                           : cat("exit ", c.exit_code))
                          : std::string("running"),
                      " state ", static_cast<int>(l.state), " pos ", l.pos);
      }
      report.failure = detail;
      report.errors.push_back(report.failure);
      last_report = report;
      throw_disposition(report);
    }
    completed = report.executable;
    last_report = report;
    return report;
  }
};

ThreadedExecutor::ThreadedExecutor(const RunPlan& plan, const RunConfig& config,
                                   ObjectInit init, TaskBody body,
                                   ThreadedOptions options)
    : impl_(std::make_unique<Impl>(plan, config, std::move(init),
                                   std::move(body), options)) {}

ThreadedExecutor::~ThreadedExecutor() = default;

RunReport ThreadedExecutor::run() {
  if (impl_->options.transport == TransportKind::kShm) {
    return impl_->run_shm();
  }
  return impl_->run_inproc();
}

std::vector<std::byte> ThreadedExecutor::read_object(DataId d) const {
  const Impl& impl = *impl_;
  RAPID_CHECK(impl.completed,
              "ThreadedExecutor::read_object called before a successful "
              "run() — the owner heaps hold no defined content yet");
  const ProcId owner = impl.plan.graph->data(d).owner;
  const std::int64_t size = impl.plan.graph->data(d).size_bytes;
  const mem::Offset off = impl.priv[owner].memory->offset_of(d);
  const std::byte* base =
      impl.win[static_cast<std::size_t>(owner)].heap + off;
  return std::vector<std::byte>(base, base + size);
}

// One rank's worker run against an shm transport: rebuild the run
// parameters from the segment header (so fork children and exec'd
// rapid_shm_worker processes execute identically), run the unchanged
// protocol loop on the calling thread, then publish counters and dump the
// trace ring for the coordinator to merge.
int shm_worker_run(ShmTransport& transport, const RunPlan& plan,
                   const ObjectInit& init, const TaskBody& body) {
  const ProcId q = transport.local_rank();
  // A lambda so the catch below can turn *anything* escaping the worker
  // loop into a structured failure in the segment, never a silent nonzero
  // exit. (A plain helper function would lose Impl friendship.)
  auto inner = [&]() -> int {
  const ShmRunSpec& spec = transport.spec();
  RunConfig config;
  config.capacity_per_proc = spec.capacity_per_proc;
  config.active_memory = spec.active_memory != 0;
  config.alloc_policy = static_cast<mem::AllocPolicy>(spec.alloc_policy);
  config.slab_arena = spec.slab_arena != 0;
  config.mailbox_slots = spec.mailbox_slots;
  config.kernel_dispatch = spec.kernel_dispatch;
  config.audit = false;  // the coordinator audited before spawning
  ThreadedOptions options;
  options.run_id = spec.run_id;
  options.watchdog_seconds = spec.watchdog_seconds;
  options.stall_check_seconds = spec.stall_check_seconds;
  options.snapshot_wait_seconds = spec.snapshot_wait_seconds;
  options.spin_iters = spec.spin_iters;
  options.park_timeout_us = spec.park_timeout_us;
  options.poison_freed = spec.poison_freed != 0;
  options.checksum = spec.checksum != 0;
  options.retry = spec.retry;
  options.run_attempt = spec.run_attempt;
  options.faults = spec.faults;
  options.transport = TransportKind::kShm;
  options.lease_timeout_seconds = spec.lease_timeout_seconds;
  obs::TraceConfig tc;
  tc.enabled = spec.trace_enabled != 0;
  tc.events_per_proc = spec.trace_events_per_proc;
  obs::Trace local_trace(plan.num_procs, tc);
  if (spec.trace_enabled != 0) options.trace = &local_trace;

  ThreadedExecutor::Impl impl(plan, config, init, body, options);
  impl.reset_run_state();
  impl.tp = &transport;
  impl.bell = &transport.data_bell();
  impl.control_bell = &transport.control_bell();
  for (ProcId r = 0; r < plan.num_procs; ++r) {
    impl.win.push_back(transport.window(r));
  }
  set_log_thread_proc(q);
  try {
    // MAP engines for every rank (offsets feed the baseline prefill and the
    // owner tables); the free hook only for the rank whose window this
    // process owns.
    for (ProcId r = 0; r < plan.num_procs; ++r) {
      impl.setup_proc_state(r, /*install_free_hook=*/r == q);
    }
  } catch (const std::exception& e) {
    transport.report_failure(q, FailureKind::kNonExecutable, e.what());
    transport.request_abort();
    transport.data_bell().ring();
    transport.control_bell().ring();
    return kShmWorkerFailed;
  }
  impl.setup_epochs_and_baseline();
  if (impl.tracing) {
    impl.trace->record(q, obs::EventKind::kHeapSample, 0, 0, 0,
                       impl.priv[q].memory->in_use_bytes());
    impl.trace->record(q, obs::EventKind::kHeapPeak, 0, 0, 0,
                       impl.priv[q].memory->peak_bytes());
  }
  transport.beat(q, static_cast<std::uint8_t>(ProcState::kStart), 0);

  impl.worker(q);  // the full REC/EXE/SND/MAP/END loop, on this thread

  int rc = kShmWorkerClean;
  if (transport.rank_failed(q)) {
    rc = kShmWorkerFailed;
  } else if (transport.aborted() &&
             transport.quiescent_count() < plan.num_procs) {
    rc = kShmWorkerAborted;
  }
  std::int64_t counters[kNumShmCounters] = {};
  counters[kCtrContentMessages] = impl.content_messages.load();
  counters[kCtrContentBytes] = impl.content_bytes.load();
  counters[kCtrPutBatches] = impl.put_batches.load();
  counters[kCtrFlagMessages] = impl.flag_messages.load();
  counters[kCtrAddrPackages] = impl.addr_packages.load();
  counters[kCtrAddrEntries] = impl.addr_entries.load();
  counters[kCtrSuspendedSends] = impl.suspended_sends.load();
  counters[kCtrTasksExecuted] = impl.tasks_executed.load();
  counters[kCtrNacksSent] = impl.nacks_sent.load();
  counters[kCtrResends] = impl.resends.load();
  counters[kCtrFlagResends] = impl.flag_resends.load();
  counters[kCtrDupSuppressions] = impl.duplicate_suppressions.load();
  counters[kCtrChecksumRejections] = impl.checksum_rejections.load();
  counters[kCtrTaskRetries] = impl.task_retries.load();
  counters[kCtrMaps] = impl.priv[q].maps;
  counters[kCtrPeakBytes] =
      impl.priv[q].memory ? impl.priv[q].memory->peak_bytes() : 0;
  transport.publish_worker_done(q, counters);
  if (impl.tracing && spec.trace_dir[0] != '\0') {
    const std::string path =
        cat(spec.trace_dir, "/p", q, ".pid", ::getpid(), ".trace.bin");
    if (!obs::save_proc_trace(*impl.trace, q, path)) {
      RAPID_WARN("shm worker p" << q << ": failed to dump trace to "
                                << path);
    }
  }
  return rc;
  };
  try {
    return inner();
  } catch (const std::exception& e) {
    transport.report_failure(q, FailureKind::kTaskError,
                             cat("shm worker p", q, ": ", e.what()));
    transport.request_abort();
    transport.data_bell().ring();
    transport.control_bell().ring();
    return kShmWorkerFailed;
  }
}

const RunReport& ThreadedExecutor::last_report() const {
  return impl_->last_report;
}

void ThreadedExecutor::cancel(std::string reason) {
  Impl& impl = *impl_;
  {
    std::lock_guard<std::mutex> lock(impl.cancel_m);
    impl.cancel_reason = std::move(reason);
  }
  // Release store pairs with the monitor's acquire poll. Only the flag is
  // touched here: the control-plane pointers (bells, transport) are owned
  // by the run() thread and may not even exist yet; the monitor performs
  // the actual abort within one heartbeat.
  impl.cancel_requested.store(true, std::memory_order_release);
}

}  // namespace rapid::rt
