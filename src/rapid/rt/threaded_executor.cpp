#include "rapid/rt/threaded_executor.hpp"

#include <atomic>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "rapid/rt/map_engine.hpp"
#include "rapid/support/stopwatch.hpp"
#include "rapid/support/str.hpp"
#include "rapid/verify/auditor.hpp"

namespace rapid::rt {

namespace {

struct PendingSend {
  ContentSend send;
};

}  // namespace

struct ThreadedExecutor::Impl {
  const RunPlan& plan;
  const RunConfig config;  // by value: callers often pass temporaries
  ObjectInit init;
  TaskBody body;
  ThreadedOptions options;

  /// Per-processor shared state: remote threads deposit data, flags and
  /// address packages here under the mutex; the heap memcpy happens under
  /// the same lock so the version publish orders after the payload.
  struct Shared {
    std::mutex m;
    std::vector<std::int32_t> received_version;  // per object, -1 = none
    std::unordered_set<TaskId> flags;
    std::vector<std::deque<AddrPackage>> mailbox;  // per source proc
    std::vector<std::byte> heap;
  };

  /// Per-processor private state, touched only by its own thread.
  struct Private {
    std::unique_ptr<ProcMemory> memory;
    std::int32_t pos = 0;
    std::int32_t maps = 0;
    // Owner-side: (object, dest) -> offset in the dest heap.
    std::map<std::pair<DataId, ProcId>, mem::Offset> known_addrs;
    std::deque<ContentSend> suspended;
    std::vector<std::int32_t> epoch_remaining;  // flattened, see epoch_base
    std::vector<std::int32_t> current_version;  // per owned object
  };

  std::vector<std::unique_ptr<Shared>> shared;
  std::vector<Private> priv;
  std::vector<std::size_t> epoch_base;  // per object, into epoch_remaining

  std::atomic<bool> abort{false};
  std::atomic<std::uint64_t> progress{0};
  std::atomic<int> quiescent_count{0};
  std::mutex error_m;
  std::string error_text;
  bool non_executable = false;

  // Counters (relaxed; exact totals gathered after join).
  std::atomic<std::int64_t> content_messages{0}, content_bytes{0},
      flag_messages{0}, addr_packages{0}, addr_entries{0}, suspended_sends{0},
      tasks_executed{0};

  Impl(const RunPlan& plan_, const RunConfig& config_, ObjectInit init_,
       TaskBody body_, ThreadedOptions options_)
      : plan(plan_),
        config(config_),
        init(std::move(init_)),
        body(std::move(body_)),
        options(options_) {}

  void fail(std::string what, bool capacity_failure) {
    {
      std::lock_guard<std::mutex> lock(error_m);
      if (error_text.empty()) {
        error_text = std::move(what);
        non_executable = capacity_failure;
      }
    }
    abort.store(true, std::memory_order_release);
  }

  void bump_progress() {
    progress.fetch_add(1, std::memory_order_relaxed);
  }

  // ---- owner-side sending ----------------------------------------------

  void transmit(ProcId q, const ContentSend& s) {
    Private& me = priv[q];
    RAPID_CHECK(me.current_version[s.object] == s.version,
                cat("object ", plan.graph->data(s.object).name,
                    " overwritten before version ", s.version, " was sent"));
    const auto it = me.known_addrs.find({s.object, s.dest});
    RAPID_CHECK(it != me.known_addrs.end(), "transmit without address");
    const std::int64_t size = plan.graph->data(s.object).size_bytes;
    const mem::Offset src_off = me.memory->offset_of(s.object);
    Shared& src_shared = *shared[q];
    Shared& dst = *shared[s.dest];
    {
      std::lock_guard<std::mutex> lock(dst.m);
      if (size > 0) {
        std::memcpy(dst.heap.data() + it->second,
                    src_shared.heap.data() + src_off,
                    static_cast<std::size_t>(size));
      }
      auto& rv = dst.received_version[s.object];
      rv = std::max(rv, s.version);
    }
    content_messages.fetch_add(1, std::memory_order_relaxed);
    content_bytes.fetch_add(size, std::memory_order_relaxed);
    bump_progress();
  }

  void trigger_send(ProcId q, const ContentSend& s) {
    Private& me = priv[q];
    if (me.known_addrs.count({s.object, s.dest})) {
      transmit(q, s);
    } else {
      RAPID_CHECK(config.active_memory, "baseline must know every address");
      me.suspended.push_back(s);
      suspended_sends.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void send_flag(ProcId dest, TaskId t) {
    Shared& dst = *shared[dest];
    {
      std::lock_guard<std::mutex> lock(dst.m);
      dst.flags.insert(t);
    }
    flag_messages.fetch_add(1, std::memory_order_relaxed);
    bump_progress();
  }

  // ---- RA / CQ -----------------------------------------------------------

  /// RA: consume address packages from my mailbox slots. CQ: dispatch
  /// suspended sends whose addresses became known.
  void service_ra_cq(ProcId q) {
    Private& me = priv[q];
    std::vector<AddrPackage> consumed;
    {
      Shared& mine = *shared[q];
      std::lock_guard<std::mutex> lock(mine.m);
      for (auto& slot : mine.mailbox) {
        while (!slot.empty()) {
          consumed.push_back(std::move(slot.front()));
          slot.pop_front();
        }
      }
    }
    for (const AddrPackage& pkg : consumed) {
      for (const auto& [d, offset] : pkg.entries) {
        me.known_addrs.emplace(std::make_pair(d, pkg.reader), offset);
      }
      bump_progress();
    }
    for (auto it = me.suspended.begin(); it != me.suspended.end();) {
      if (me.known_addrs.count({it->object, it->dest})) {
        transmit(q, *it);
        it = me.suspended.erase(it);
      } else {
        ++it;
      }
    }
  }

  /// Blocking send of one address package (MAP state): spins on the
  /// destination slot, servicing RA/CQ like the paper requires.
  bool send_addr_package_blocking(ProcId q, ProcId dest,
                                  const AddrPackage& pkg) {
    while (!abort.load(std::memory_order_acquire)) {
      {
        Shared& dst = *shared[dest];
        std::lock_guard<std::mutex> lock(dst.m);
        if (static_cast<std::int32_t>(dst.mailbox[q].size()) <
            config.mailbox_slots) {
          dst.mailbox[q].push_back(pkg);
          addr_packages.fetch_add(1, std::memory_order_relaxed);
          addr_entries.fetch_add(
              static_cast<std::int64_t>(pkg.entries.size()),
              std::memory_order_relaxed);
          bump_progress();
          return true;
        }
      }
      service_ra_cq(q);
      std::this_thread::yield();
    }
    return false;
  }

  // ---- readiness ---------------------------------------------------------

  bool task_ready(ProcId q, TaskId t) {
    const TaskRuntimePlan& tp = plan.tasks[t];
    Shared& mine = *shared[q];
    std::lock_guard<std::mutex> lock(mine.m);
    for (const RemoteRead& rr : tp.remote_reads) {
      if (mine.received_version[rr.object] < rr.version) return false;
    }
    for (TaskId u : tp.remote_sync_preds) {
      if (!mine.flags.count(u)) return false;
    }
    return true;
  }

  // ---- worker ------------------------------------------------------------

  class Resolver final : public ObjectResolver {
   public:
    Resolver(Impl& impl, ProcId proc) : impl_(impl), proc_(proc) {}

    std::span<const std::byte> read(DataId d) const override {
      const std::int64_t size = impl_.plan.graph->data(d).size_bytes;
      const mem::Offset off = impl_.priv[proc_].memory->offset_of(d);
      return {impl_.shared[proc_]->heap.data() + off,
              static_cast<std::size_t>(size)};
    }

    std::span<std::byte> write(DataId d) override {
      RAPID_CHECK(impl_.plan.graph->data(d).owner == proc_,
                  cat("task on processor ", proc_, " writing non-owned ",
                      impl_.plan.graph->data(d).name));
      const std::int64_t size = impl_.plan.graph->data(d).size_bytes;
      const mem::Offset off = impl_.priv[proc_].memory->offset_of(d);
      return {impl_.shared[proc_]->heap.data() + off,
              static_cast<std::size_t>(size)};
    }

   private:
    Impl& impl_;
    ProcId proc_;
  };

  void complete_task(ProcId q, TaskId t) {
    Private& me = priv[q];
    const TaskRuntimePlan& tp = plan.tasks[t];
    for (ProcId dest : tp.flag_dests) send_flag(dest, t);
    for (const auto& [d, v] : tp.epoch_memberships) {
      auto& remaining = me.epoch_remaining[epoch_base[d] +
                                           static_cast<std::size_t>(v) - 1];
      if (--remaining == 0) {
        RAPID_CHECK(me.current_version[d] == v - 1,
                    "versions completed out of order");
        me.current_version[d] = v;
        for (ProcId dest :
             plan.objects[d].sends_by_version[static_cast<std::size_t>(v)]) {
          trigger_send(q, ContentSend{d, v, dest});
        }
      }
    }
    tasks_executed.fetch_add(1, std::memory_order_relaxed);
    bump_progress();
  }

  void worker(ProcId q) {
    try {
      Private& me = priv[q];
      const ProcPlan& pp = plan.procs[q];
      // Initialize owned objects, then issue version-0 sends (they suspend
      // in active mode until reader addresses arrive).
      Resolver resolver(*this, q);
      for (DataId d : pp.permanents) {
        if (init) init(d, resolver.write(d));
      }
      for (const ContentSend& s : pp.initial_sends) trigger_send(q, s);

      const auto n = static_cast<std::int32_t>(pp.order.size());
      bool counted_quiescent = false;
      while (!abort.load(std::memory_order_acquire)) {
        if (me.pos < n) {
          if (config.active_memory && me.memory->needs_map(me.pos)) {
            // MAP state.
            const MapResult map = me.memory->perform_map(me.pos);
            ++me.maps;
            for (const auto& [dest, pkg] : map.packages) {
              if (!send_addr_package_blocking(q, dest, pkg)) return;
            }
            bump_progress();
            continue;
          }
          const TaskId t = pp.order[me.pos];
          if (task_ready(q, t)) {
            body(t, resolver);  // EXE
            ++me.pos;
            complete_task(q, t);  // SND
          } else {
            service_ra_cq(q);  // REC
            std::this_thread::yield();
          }
          continue;
        }
        // END: drain, then wait for global quiescence.
        service_ra_cq(q);
        if (!counted_quiescent && me.suspended.empty()) {
          counted_quiescent = true;
          quiescent_count.fetch_add(1, std::memory_order_acq_rel);
        }
        if (quiescent_count.load(std::memory_order_acquire) ==
            plan.num_procs) {
          return;
        }
        std::this_thread::yield();
      }
    } catch (const NonExecutableError& e) {
      fail(e.what(), /*capacity_failure=*/true);
    } catch (const std::exception& e) {
      fail(cat("processor ", q, ": ", e.what()), /*capacity_failure=*/false);
    }
  }
};

ThreadedExecutor::ThreadedExecutor(const RunPlan& plan, const RunConfig& config,
                                   ObjectInit init, TaskBody body,
                                   ThreadedOptions options)
    : impl_(std::make_unique<Impl>(plan, config, std::move(init),
                                   std::move(body), options)) {}

ThreadedExecutor::~ThreadedExecutor() = default;

RunReport ThreadedExecutor::run() {
  Impl& impl = *impl_;
  const RunPlan& plan = impl.plan;
  RunReport report;
  report.maps_per_proc.assign(static_cast<std::size_t>(plan.num_procs), 0);
  report.peak_bytes_per_proc.assign(static_cast<std::size_t>(plan.num_procs),
                                    0);

  // Set up heaps and memory managers; capacity failures surface here or at
  // the first MAP inside a worker.
  impl.shared.clear();
  impl.priv.clear();
  impl.priv.resize(static_cast<std::size_t>(plan.num_procs));
  impl.epoch_base.assign(static_cast<std::size_t>(plan.graph->num_data()), 0);
  try {
    if (impl.config.audit) verify::audit_or_throw(plan, impl.config);
    for (ProcId q = 0; q < plan.num_procs; ++q) {
      auto sh = std::make_unique<Impl::Shared>();
      sh->received_version.assign(
          static_cast<std::size_t>(plan.graph->num_data()), -1);
      sh->mailbox.resize(static_cast<std::size_t>(plan.num_procs));
      sh->heap.resize(static_cast<std::size_t>(impl.config.capacity_per_proc));
      impl.shared.push_back(std::move(sh));
      Impl::Private& pr = impl.priv[q];
      pr.memory = std::make_unique<ProcMemory>(
          plan, q, impl.config.capacity_per_proc, /*alignment=*/8,
          impl.config.alloc_policy);
      if (!impl.config.active_memory) pr.memory->preallocate_all();
      pr.current_version.assign(
          static_cast<std::size_t>(plan.graph->num_data()), 0);
    }
  } catch (const NonExecutableError& e) {
    report.executable = false;
    report.failure = e.what();
    return report;
  }
  // Flattened epoch counters (owner-private: every writer of an object runs
  // on its owner).
  std::size_t total_epochs = 0;
  for (DataId d = 0; d < plan.graph->num_data(); ++d) {
    impl.epoch_base[d] = total_epochs;
    total_epochs += plan.objects[d].epochs.size();
  }
  for (ProcId q = 0; q < plan.num_procs; ++q) {
    impl.priv[q].epoch_remaining.assign(total_epochs, 0);
  }
  for (DataId d = 0; d < plan.graph->num_data(); ++d) {
    const ProcId owner = plan.graph->data(d).owner;
    for (std::size_t v = 0; v < plan.objects[d].epochs.size(); ++v) {
      impl.priv[owner].epoch_remaining[impl.epoch_base[d] + v] =
          static_cast<std::int32_t>(plan.objects[d].epochs[v].size());
    }
  }
  // Baseline: owners learn every reader address before the threads start.
  if (!impl.config.active_memory) {
    for (ProcId reader = 0; reader < plan.num_procs; ++reader) {
      for (const sched::VolatileLifetime& v : plan.procs[reader].volatiles) {
        const ProcId owner = plan.graph->data(v.object).owner;
        impl.priv[owner].known_addrs.emplace(
            std::make_pair(v.object, reader),
            impl.priv[reader].memory->offset_of(v.object));
      }
    }
  }

  impl.abort.store(false);
  impl.quiescent_count.store(0);
  Stopwatch wall;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(plan.num_procs));
  for (ProcId q = 0; q < plan.num_procs; ++q) {
    threads.emplace_back([&impl, q] { impl.worker(q); });
  }
  // Watchdog: abort if no global progress for options.watchdog_seconds.
  {
    std::uint64_t last = impl.progress.load();
    Stopwatch since_progress;
    while (impl.quiescent_count.load(std::memory_order_acquire) <
               plan.num_procs &&
           !impl.abort.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      const std::uint64_t now = impl.progress.load();
      if (now != last) {
        last = now;
        since_progress.reset();
      } else if (since_progress.seconds() > impl.options.watchdog_seconds) {
        impl.fail("watchdog: no protocol progress", false);
      }
    }
  }
  for (auto& th : threads) th.join();
  report.parallel_time_us = wall.seconds() * 1e6;

  if (!impl.error_text.empty()) {
    if (impl.non_executable) {
      report.executable = false;
      report.failure = impl.error_text;
    } else {
      throw ProtocolDeadlockError(impl.error_text);
    }
  }
  for (ProcId q = 0; q < plan.num_procs; ++q) {
    report.maps_per_proc[q] = impl.priv[q].maps;
    report.peak_bytes_per_proc[q] = impl.priv[q].memory->peak_bytes();
  }
  report.content_messages = impl.content_messages.load();
  report.content_bytes = impl.content_bytes.load();
  report.flag_messages = impl.flag_messages.load();
  report.addr_packages = impl.addr_packages.load();
  report.addr_entries = impl.addr_entries.load();
  report.suspended_sends = impl.suspended_sends.load();
  report.tasks_executed = impl.tasks_executed.load();
  return report;
}

std::vector<std::byte> ThreadedExecutor::read_object(DataId d) const {
  const Impl& impl = *impl_;
  const ProcId owner = impl.plan.graph->data(d).owner;
  const std::int64_t size = impl.plan.graph->data(d).size_bytes;
  const mem::Offset off = impl.priv[owner].memory->offset_of(d);
  const auto* base = impl.shared[owner]->heap.data() + off;
  return std::vector<std::byte>(base, base + size);
}

}  // namespace rapid::rt
