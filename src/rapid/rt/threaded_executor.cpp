#include "rapid/rt/threaded_executor.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>

#include "rapid/rt/map_engine.hpp"
#include "rapid/support/backoff.hpp"
#include "rapid/support/stopwatch.hpp"
#include "rapid/support/str.hpp"
#include "rapid/verify/auditor.hpp"

namespace rapid::rt {

struct ThreadedExecutor::Impl {
  const RunPlan& plan;
  const RunConfig config;  // by value: callers often pass temporaries
  ObjectInit init;
  TaskBody body;
  ThreadedOptions options;

  /// Per-processor shared state — the RMA window. The heap and the
  /// per-object version slots form a lock-free data plane: a sender memcpys
  /// the payload into the destination heap (nobody else touches those
  /// bytes: regions are disjoint per object, and owner-compute makes the
  /// object's owner the only writer), then publishes visibility with a
  /// release store on received_version; readers gate on acquire loads.
  /// Completion flags are a dense atomic array with the same discipline.
  /// Only the multi-slot address-package mailbox keeps a mutex — it is a
  /// many-producer queue of variable-size packages, off the data path.
  /// docs/RUNTIME.md has the full memory-ordering argument.
  struct Shared {
    std::vector<std::byte> heap;
    /// Per object, -1 = none yet. Single writer per slot (the object's
    /// owner), so max-merge is a plain compare + release store.
    std::unique_ptr<std::atomic<std::int32_t>[]> received_version;
    /// Per task, 1 = completion flag delivered. Single writer per slot.
    std::unique_ptr<std::atomic<std::uint8_t>[]> flags;

    std::mutex mailbox_m;
    std::vector<std::deque<AddrPackage>> mailbox;  // per source proc
    /// Lock-free "is there anything to drain" hint; modified under
    /// mailbox_m, read without it on the RA fast path.
    std::atomic<std::int32_t> mailbox_pending{0};
  };

  /// Per-processor private state, touched only by its own thread.
  struct Private {
    std::unique_ptr<ProcMemory> memory;
    std::int32_t pos = 0;
    std::int32_t maps = 0;
    /// Owner-side address table: offset of owned object d inside reader
    /// r's heap, at [owned_index[d] * num_procs + r]; kNullOffset =
    /// unknown. Flat array — the send path does no tree walks.
    std::vector<mem::Offset> known_addrs;
    /// Suspended sends grouped by destination, plus per-peer epochs: a
    /// destination's queue is rescanned only when new addresses from that
    /// peer arrived since the last scan (addr_epoch advanced past
    /// scanned_epoch), not on every poll.
    std::vector<std::deque<ContentSend>> suspended_by_dest;
    std::vector<std::uint32_t> addr_epoch;
    std::vector<std::uint32_t> scanned_epoch;
    std::int64_t suspended_count = 0;
    std::vector<std::int32_t> epoch_remaining;  // flattened, see epoch_base
    std::vector<std::int32_t> current_version;  // per owned object
  };

  std::vector<std::unique_ptr<Shared>> shared;
  std::vector<Private> priv;
  std::vector<std::size_t> epoch_base;  // per object, into epoch_remaining
  /// Dense index of each object among its owner's permanents (for the
  /// known_addrs tables); -1 until built.
  std::vector<std::int32_t> owned_index;

  /// Data-plane doorbell: rung on every protocol event; blocked workers
  /// park on it. The control doorbell is rung only on run termination
  /// events (failure, global quiescence) so the watchdog can park without
  /// making every bump_progress() pay a notify.
  Doorbell bell;
  Doorbell control_bell;

  std::atomic<bool> abort{false};
  std::atomic<int> quiescent_count{0};
  std::mutex error_m;
  std::string error_text;
  bool non_executable = false;
  bool completed = false;  // run() finished cleanly; gates read_object()

  // Counters (relaxed; exact totals gathered after join).
  std::atomic<std::int64_t> content_messages{0}, content_bytes{0},
      flag_messages{0}, addr_packages{0}, addr_entries{0}, suspended_sends{0},
      tasks_executed{0};

  Impl(const RunPlan& plan_, const RunConfig& config_, ObjectInit init_,
       TaskBody body_, ThreadedOptions options_)
      : plan(plan_),
        config(config_),
        init(std::move(init_)),
        body(std::move(body_)),
        options(options_) {}

  void fail(std::string what, bool capacity_failure) {
    {
      std::lock_guard<std::mutex> lock(error_m);
      if (error_text.empty()) {
        error_text = std::move(what);
        non_executable = capacity_failure;
      }
    }
    abort.store(true, std::memory_order_release);
    bell.ring();          // wake parked workers so they observe the abort
    control_bell.ring();  // and the watchdog
  }

  void bump_progress() { bell.ring(); }

  mem::Offset& addr_slot(Private& me, DataId d, ProcId reader) {
    return me.known_addrs[static_cast<std::size_t>(owned_index[d]) *
                              static_cast<std::size_t>(plan.num_procs) +
                          static_cast<std::size_t>(reader)];
  }

  // ---- owner-side sending ----------------------------------------------

  /// The RMA put: payload memcpy into the destination heap with no lock
  /// held, then a release publish of the version. Always runs on the
  /// owner's thread (complete_task / initial sends / CQ dispatch), so per
  /// (object, dest) the copies are program-ordered and the version slot
  /// has a single writer.
  void transmit(ProcId q, const ContentSend& s) {
    Private& me = priv[q];
    RAPID_CHECK(me.current_version[s.object] == s.version,
                cat("object ", plan.graph->data(s.object).name,
                    " overwritten before version ", s.version, " was sent"));
    const mem::Offset dst_off = addr_slot(me, s.object, s.dest);
    RAPID_CHECK(dst_off != mem::kNullOffset, "transmit without address");
    const std::int64_t size = plan.graph->data(s.object).size_bytes;
    const mem::Offset src_off = me.memory->offset_of(s.object);
    Shared& dst = *shared[s.dest];
    if (size > 0) {
      std::memcpy(dst.heap.data() + dst_off,
                  shared[q]->heap.data() + src_off,
                  static_cast<std::size_t>(size));
    }
    auto& slot = dst.received_version[s.object];
    if (slot.load(std::memory_order_relaxed) < s.version) {
      slot.store(s.version, std::memory_order_release);
    }
    content_messages.fetch_add(1, std::memory_order_relaxed);
    content_bytes.fetch_add(size, std::memory_order_relaxed);
    bump_progress();
  }

  void trigger_send(ProcId q, const ContentSend& s) {
    Private& me = priv[q];
    if (addr_slot(me, s.object, s.dest) != mem::kNullOffset) {
      transmit(q, s);
    } else {
      RAPID_CHECK(config.active_memory, "baseline must know every address");
      me.suspended_by_dest[s.dest].push_back(s);
      ++me.suspended_count;
      suspended_sends.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void send_flag(ProcId dest, TaskId t) {
    shared[dest]->flags[t].store(1, std::memory_order_release);
    flag_messages.fetch_add(1, std::memory_order_relaxed);
    bump_progress();
  }

  // ---- RA / CQ -----------------------------------------------------------

  /// RA: consume address packages from my mailbox slots. CQ: dispatch
  /// suspended sends whose addresses became known. Returns whether any
  /// package was consumed or send dispatched (the caller's backoff resets
  /// on progress).
  bool service_ra_cq(ProcId q) {
    Private& me = priv[q];
    Shared& mine = *shared[q];
    bool progressed = false;
    if (mine.mailbox_pending.load(std::memory_order_acquire) != 0) {
      std::vector<AddrPackage> consumed;
      {
        std::lock_guard<std::mutex> lock(mine.mailbox_m);
        for (auto& slot : mine.mailbox) {
          while (!slot.empty()) {
            consumed.push_back(std::move(slot.front()));
            slot.pop_front();
          }
        }
        mine.mailbox_pending.store(0, std::memory_order_relaxed);
      }
      for (const AddrPackage& pkg : consumed) {
        for (const auto& [d, offset] : pkg.entries) {
          addr_slot(me, d, pkg.reader) = offset;
        }
        ++me.addr_epoch[pkg.reader];
        progressed = true;
        bump_progress();
      }
    }
    if (me.suspended_count > 0) {
      for (ProcId r = 0; r < plan.num_procs; ++r) {
        auto& queue = me.suspended_by_dest[r];
        if (queue.empty() || me.scanned_epoch[r] == me.addr_epoch[r]) {
          continue;  // no new addresses from r since the last scan
        }
        me.scanned_epoch[r] = me.addr_epoch[r];
        for (auto it = queue.begin(); it != queue.end();) {
          if (addr_slot(me, it->object, r) != mem::kNullOffset) {
            transmit(q, *it);
            it = queue.erase(it);
            --me.suspended_count;
            progressed = true;
          } else {
            ++it;
          }
        }
      }
    }
    return progressed;
  }

  /// Blocking send of one address package (MAP state): spins then parks on
  /// the doorbell while the destination slot is full, servicing RA/CQ like
  /// the paper requires.
  bool send_addr_package_blocking(ProcId q, ProcId dest,
                                  const AddrPackage& pkg) {
    Backoff backoff(bell, options.spin_iters, options.park_timeout_us);
    while (!abort.load(std::memory_order_acquire)) {
      const std::uint64_t seen = bell.value();
      {
        Shared& dst = *shared[dest];
        std::lock_guard<std::mutex> lock(dst.mailbox_m);
        if (static_cast<std::int32_t>(dst.mailbox[q].size()) <
            config.mailbox_slots) {
          dst.mailbox[q].push_back(pkg);
          dst.mailbox_pending.fetch_add(1, std::memory_order_release);
          addr_packages.fetch_add(1, std::memory_order_relaxed);
          addr_entries.fetch_add(
              static_cast<std::int64_t>(pkg.entries.size()),
              std::memory_order_relaxed);
          bump_progress();
          return true;
        }
      }
      if (service_ra_cq(q)) {
        backoff.reset();
      } else {
        backoff.pause(seen);
      }
    }
    return false;
  }

  // ---- readiness ---------------------------------------------------------

  /// Lock-free: acquire loads pair with the senders' release stores, so a
  /// `true` result makes the payload bytes (and the flagged predecessors'
  /// effects) visible to the task body.
  bool task_ready(ProcId q, TaskId t) {
    const TaskRuntimePlan& tp = plan.tasks[t];
    Shared& mine = *shared[q];
    for (const RemoteRead& rr : tp.remote_reads) {
      if (mine.received_version[rr.object].load(std::memory_order_acquire) <
          rr.version) {
        return false;
      }
    }
    for (TaskId u : tp.remote_sync_preds) {
      if (mine.flags[u].load(std::memory_order_acquire) == 0) return false;
    }
    return true;
  }

  // ---- worker ------------------------------------------------------------

  class Resolver final : public ObjectResolver {
   public:
    Resolver(Impl& impl, ProcId proc) : impl_(impl), proc_(proc) {}

    std::span<const std::byte> read(DataId d) const override {
      const std::int64_t size = impl_.plan.graph->data(d).size_bytes;
      const mem::Offset off = impl_.priv[proc_].memory->offset_of(d);
      return {impl_.shared[proc_]->heap.data() + off,
              static_cast<std::size_t>(size)};
    }

    std::span<std::byte> write(DataId d) override {
      RAPID_CHECK(impl_.plan.graph->data(d).owner == proc_,
                  cat("task on processor ", proc_, " writing non-owned ",
                      impl_.plan.graph->data(d).name));
      const std::int64_t size = impl_.plan.graph->data(d).size_bytes;
      const mem::Offset off = impl_.priv[proc_].memory->offset_of(d);
      return {impl_.shared[proc_]->heap.data() + off,
              static_cast<std::size_t>(size)};
    }

   private:
    Impl& impl_;
    ProcId proc_;
  };

  void complete_task(ProcId q, TaskId t) {
    Private& me = priv[q];
    const TaskRuntimePlan& tp = plan.tasks[t];
    for (ProcId dest : tp.flag_dests) send_flag(dest, t);
    for (const auto& [d, v] : tp.epoch_memberships) {
      auto& remaining = me.epoch_remaining[epoch_base[d] +
                                           static_cast<std::size_t>(v) - 1];
      if (--remaining == 0) {
        RAPID_CHECK(me.current_version[d] == v - 1,
                    "versions completed out of order");
        me.current_version[d] = v;
        for (ProcId dest :
             plan.objects[d].sends_by_version[static_cast<std::size_t>(v)]) {
          trigger_send(q, ContentSend{d, v, dest});
        }
      }
    }
    tasks_executed.fetch_add(1, std::memory_order_relaxed);
    bump_progress();
  }

  void worker(ProcId q) {
    try {
      Private& me = priv[q];
      const ProcPlan& pp = plan.procs[q];
      // Initialize owned objects, then issue version-0 sends (they suspend
      // in active mode until reader addresses arrive).
      Resolver resolver(*this, q);
      for (DataId d : pp.permanents) {
        if (init) init(d, resolver.write(d));
      }
      for (const ContentSend& s : pp.initial_sends) trigger_send(q, s);

      Backoff backoff(bell, options.spin_iters, options.park_timeout_us);
      const auto n = static_cast<std::int32_t>(pp.order.size());
      bool counted_quiescent = false;
      while (!abort.load(std::memory_order_acquire)) {
        if (me.pos < n) {
          if (config.active_memory && me.memory->needs_map(me.pos)) {
            // MAP state.
            const MapResult map = me.memory->perform_map(me.pos);
            ++me.maps;
            for (const auto& [dest, pkg] : map.packages) {
              if (!send_addr_package_blocking(q, dest, pkg)) return;
            }
            bump_progress();
            backoff.reset();
            continue;
          }
          const TaskId t = pp.order[me.pos];
          // Doorbell value read BEFORE the readiness check: an input that
          // arrives between the check and the park moves the bell past
          // `seen`, so the park returns immediately instead of sleeping
          // through the wakeup.
          const std::uint64_t seen = bell.value();
          if (task_ready(q, t)) {
            body(t, resolver);  // EXE
            ++me.pos;
            complete_task(q, t);  // SND
            backoff.reset();
          } else if (service_ra_cq(q)) {  // REC
            backoff.reset();
          } else {
            backoff.pause(seen);
          }
          continue;
        }
        // END: drain, then wait for global quiescence.
        const std::uint64_t seen = bell.value();
        const bool progressed = service_ra_cq(q);
        if (!counted_quiescent && me.suspended_count == 0) {
          counted_quiescent = true;
          if (quiescent_count.fetch_add(1, std::memory_order_acq_rel) + 1 ==
              plan.num_procs) {
            control_bell.ring();  // the run is over: wake the watchdog
          }
          bump_progress();  // and any peers parked waiting for quiescence
        }
        if (quiescent_count.load(std::memory_order_acquire) ==
            plan.num_procs) {
          return;
        }
        if (progressed) {
          backoff.reset();
        } else {
          backoff.pause(seen);
        }
      }
    } catch (const NonExecutableError& e) {
      fail(e.what(), /*capacity_failure=*/true);
    } catch (const std::exception& e) {
      fail(cat("processor ", q, ": ", e.what()), /*capacity_failure=*/false);
    }
  }
};

ThreadedExecutor::ThreadedExecutor(const RunPlan& plan, const RunConfig& config,
                                   ObjectInit init, TaskBody body,
                                   ThreadedOptions options)
    : impl_(std::make_unique<Impl>(plan, config, std::move(init),
                                   std::move(body), options)) {}

ThreadedExecutor::~ThreadedExecutor() = default;

RunReport ThreadedExecutor::run() {
  Impl& impl = *impl_;
  const RunPlan& plan = impl.plan;
  RunReport report;
  report.maps_per_proc.assign(static_cast<std::size_t>(plan.num_procs), 0);
  report.peak_bytes_per_proc.assign(static_cast<std::size_t>(plan.num_procs),
                                    0);

  // Set up heaps and memory managers; capacity failures surface here or at
  // the first MAP inside a worker.
  impl.completed = false;
  impl.shared.clear();
  impl.priv.clear();
  impl.priv.resize(static_cast<std::size_t>(plan.num_procs));
  impl.epoch_base.assign(static_cast<std::size_t>(plan.graph->num_data()), 0);
  impl.owned_index.assign(static_cast<std::size_t>(plan.graph->num_data()),
                          -1);
  for (ProcId q = 0; q < plan.num_procs; ++q) {
    std::int32_t next = 0;
    for (DataId d : plan.procs[q].permanents) impl.owned_index[d] = next++;
  }
  try {
    if (impl.config.audit) verify::audit_or_throw(plan, impl.config);
    for (ProcId q = 0; q < plan.num_procs; ++q) {
      auto sh = std::make_unique<Impl::Shared>();
      const auto num_data = static_cast<std::size_t>(plan.graph->num_data());
      const auto num_tasks = static_cast<std::size_t>(plan.graph->num_tasks());
      sh->received_version =
          std::make_unique<std::atomic<std::int32_t>[]>(num_data);
      for (std::size_t d = 0; d < num_data; ++d) {
        sh->received_version[d].store(-1, std::memory_order_relaxed);
      }
      sh->flags = std::make_unique<std::atomic<std::uint8_t>[]>(num_tasks);
      for (std::size_t t = 0; t < num_tasks; ++t) {
        sh->flags[t].store(0, std::memory_order_relaxed);
      }
      sh->mailbox.resize(static_cast<std::size_t>(plan.num_procs));
      sh->heap.resize(static_cast<std::size_t>(impl.config.capacity_per_proc));
      impl.shared.push_back(std::move(sh));
      Impl::Private& pr = impl.priv[q];
      pr.memory = std::make_unique<ProcMemory>(
          plan, q, impl.config.capacity_per_proc, /*alignment=*/8,
          impl.config.alloc_policy);
      if (!impl.config.active_memory) pr.memory->preallocate_all();
      pr.current_version.assign(
          static_cast<std::size_t>(plan.graph->num_data()), 0);
      pr.known_addrs.assign(
          plan.procs[q].permanents.size() *
              static_cast<std::size_t>(plan.num_procs),
          mem::kNullOffset);
      pr.suspended_by_dest.resize(static_cast<std::size_t>(plan.num_procs));
      pr.addr_epoch.assign(static_cast<std::size_t>(plan.num_procs), 0);
      pr.scanned_epoch.assign(static_cast<std::size_t>(plan.num_procs), 0);
    }
  } catch (const NonExecutableError& e) {
    report.executable = false;
    report.failure = e.what();
    return report;
  }
  // Flattened epoch counters (owner-private: every writer of an object runs
  // on its owner).
  std::size_t total_epochs = 0;
  for (DataId d = 0; d < plan.graph->num_data(); ++d) {
    impl.epoch_base[d] = total_epochs;
    total_epochs += plan.objects[d].epochs.size();
  }
  for (ProcId q = 0; q < plan.num_procs; ++q) {
    impl.priv[q].epoch_remaining.assign(total_epochs, 0);
  }
  for (DataId d = 0; d < plan.graph->num_data(); ++d) {
    const ProcId owner = plan.graph->data(d).owner;
    for (std::size_t v = 0; v < plan.objects[d].epochs.size(); ++v) {
      impl.priv[owner].epoch_remaining[impl.epoch_base[d] + v] =
          static_cast<std::int32_t>(plan.objects[d].epochs[v].size());
    }
  }
  // Baseline: owners learn every reader address before the threads start.
  if (!impl.config.active_memory) {
    for (ProcId reader = 0; reader < plan.num_procs; ++reader) {
      for (const sched::VolatileLifetime& v : plan.procs[reader].volatiles) {
        const ProcId owner = plan.graph->data(v.object).owner;
        impl.addr_slot(impl.priv[owner], v.object, reader) =
            impl.priv[reader].memory->offset_of(v.object);
      }
    }
  }

  impl.abort.store(false);
  impl.quiescent_count.store(0);
  Stopwatch wall;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(plan.num_procs));
  for (ProcId q = 0; q < plan.num_procs; ++q) {
    threads.emplace_back([&impl, q] { impl.worker(q); });
  }
  // Watchdog: parked on the control doorbell (rung on failure and on global
  // quiescence), waking on a heartbeat to sample the progress doorbell;
  // aborts if it has not moved for options.watchdog_seconds.
  {
    const std::int64_t heartbeat_us = std::clamp<std::int64_t>(
        static_cast<std::int64_t>(impl.options.watchdog_seconds * 1e6 / 4),
        1000, 250000);
    std::uint64_t last = impl.bell.value();
    Stopwatch since_progress;
    for (;;) {
      // Control value read before the exit checks: a ring that lands after
      // the read makes the park return immediately, so run termination is
      // never charged a full heartbeat of latency.
      const std::uint64_t control_seen = impl.control_bell.value();
      if (impl.quiescent_count.load(std::memory_order_acquire) >=
              plan.num_procs ||
          impl.abort.load(std::memory_order_acquire)) {
        break;
      }
      const std::uint64_t now = impl.bell.value();
      if (now != last) {
        last = now;
        since_progress.reset();
      } else if (since_progress.seconds() > impl.options.watchdog_seconds) {
        impl.fail("watchdog: no protocol progress", false);
        break;
      }
      impl.control_bell.wait(control_seen, heartbeat_us);
    }
  }
  for (auto& th : threads) th.join();
  report.parallel_time_us = wall.seconds() * 1e6;

  if (!impl.error_text.empty()) {
    if (impl.non_executable) {
      report.executable = false;
      report.failure = impl.error_text;
    } else {
      throw ProtocolDeadlockError(impl.error_text);
    }
  }
  for (ProcId q = 0; q < plan.num_procs; ++q) {
    report.maps_per_proc[q] = impl.priv[q].maps;
    report.peak_bytes_per_proc[q] = impl.priv[q].memory->peak_bytes();
  }
  report.content_messages = impl.content_messages.load();
  report.content_bytes = impl.content_bytes.load();
  report.flag_messages = impl.flag_messages.load();
  report.addr_packages = impl.addr_packages.load();
  report.addr_entries = impl.addr_entries.load();
  report.suspended_sends = impl.suspended_sends.load();
  report.tasks_executed = impl.tasks_executed.load();
  impl.completed = report.executable;
  return report;
}

std::vector<std::byte> ThreadedExecutor::read_object(DataId d) const {
  const Impl& impl = *impl_;
  RAPID_CHECK(impl.completed,
              "ThreadedExecutor::read_object called before a successful "
              "run() — the owner heaps hold no defined content yet");
  const ProcId owner = impl.plan.graph->data(d).owner;
  const std::int64_t size = impl.plan.graph->data(d).size_bytes;
  const mem::Offset off = impl.priv[owner].memory->offset_of(d);
  const auto* base = impl.shared[owner]->heap.data() + off;
  return std::vector<std::byte>(base, base + size);
}

}  // namespace rapid::rt
