// Deterministic fault injection for the threaded executor. Theorem 1
// promises liveness only when the protocol's assumptions hold; this layer
// exists to adversarially bend them at run time — stretching message
// timings until latent orderings surface, and breaking delivery outright to
// prove the stall diagnostics (rt/stall.hpp) can explain the resulting
// deadlock. Every perturbation is a pure function of (seed, site), so a
// failing seed replays bit-identically; with the plan disabled (the
// default) the executor pays one predictable branch per hook site.
#pragma once

#include <cstdint>
#include <string>

#include "rapid/graph/ids.hpp"
#include "rapid/support/check.hpp"

namespace rapid::rt {

/// Thrown by the executor when FaultPlan::throw_in_task fires — kept
/// distinct from user task-body exceptions so RunReport::failure_kind can
/// tell an injected failure from a real kernel bug.
class InjectedFaultError : public Error {
 public:
  using Error::Error;
};

/// A reproducible perturbation schedule for one ThreadedExecutor run.
/// Delay draws are stateless hashes of (seed, site identifiers), never a
/// shared RNG stream, so they are thread-safe and independent of the
/// interleaving they themselves create. All classes are off by default;
/// enabled() gates every hook in the executor.
struct FaultPlan {
  std::uint64_t seed = 0;

  /// Class 1 — address-package delivery delay: the sender sleeps before
  /// pushing a package into the destination mailbox, which reorders
  /// deliveries relative to other sources and to the content puts the
  /// addresses unlock.
  double addr_delay_prob = 0.0;
  std::int64_t addr_delay_max_us = 0;

  /// Class 2 — content-put publication delay: the payload memcpy completes
  /// but the release store of received_version is deferred, widening the
  /// window a reader could (incorrectly) observe unpublished bytes.
  double put_delay_prob = 0.0;
  std::int64_t put_delay_max_us = 0;

  /// Class 3 — task-body slowdown: a pseudorandom sleep before the body
  /// runs, so protocol states overlap in orders a fast kernel never shows.
  double task_slow_prob = 0.0;
  std::int64_t task_slow_max_us = 0;

  /// Class 4 — forced park-timeout wakeups: shrinks the doorbell park
  /// timeout so every blocked state keeps waking by timeout instead of by
  /// ring, exercising the stale-wakeup re-check paths.
  bool force_park_timeout = false;
  std::int64_t forced_park_timeout_us = 50;

  /// Induced failure — drop the nth (1-based) address package that
  /// processor `drop_addr_src` sends, counted in that processor's own
  /// deterministic program order. The owner never learns those addresses,
  /// its content sends suspend forever, and the run deadlocks — the
  /// canonical input for the stall-diagnosis tests.
  graph::ProcId drop_addr_src = graph::kInvalidProc;
  std::int64_t drop_addr_nth = -1;

  /// Induced failure — throw InjectedFaultError instead of running this
  /// task's body (cooperative-cancellation test input).
  graph::TaskId throw_in_task = graph::kInvalidTask;

  bool enabled() const {
    return addr_delay_prob > 0.0 || put_delay_prob > 0.0 ||
           task_slow_prob > 0.0 || force_park_timeout ||
           (drop_addr_src != graph::kInvalidProc && drop_addr_nth > 0) ||
           throw_in_task != graph::kInvalidTask;
  }

  /// Sweep presets: one per fault class, fully determined by the seed.
  static FaultPlan address_delays(std::uint64_t seed);
  static FaultPlan put_delays(std::uint64_t seed);
  static FaultPlan slow_tasks(std::uint64_t seed);
  static FaultPlan forced_park_timeouts(std::uint64_t seed);
  /// Preset by name ("addr", "put", "slow", "park") for CLI flags; throws
  /// rapid::Error on unknown names.
  static FaultPlan preset(const std::string& name, std::uint64_t seed);

  /// Deterministic per-site draws (µs to sleep; 0 = no delay at this site).
  std::int64_t addr_delay_us(graph::ProcId src, graph::ProcId dest,
                             std::int64_t ordinal) const;
  std::int64_t put_delay_us(graph::DataId object, std::int32_t version,
                            graph::ProcId dest) const;
  std::int64_t task_delay_us(graph::TaskId task) const;
};

}  // namespace rapid::rt
