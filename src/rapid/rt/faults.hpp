// Deterministic fault injection for the threaded executor. Theorem 1
// promises liveness only when the protocol's assumptions hold; this layer
// exists to adversarially bend them at run time — stretching message
// timings until latent orderings surface, and breaking delivery outright to
// prove the stall diagnostics (rt/stall.hpp) can explain the resulting
// deadlock. Every perturbation is a pure function of (seed, site), so a
// failing seed replays bit-identically; with the plan disabled (the
// default) the executor pays one predictable branch per hook site.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "rapid/graph/ids.hpp"
#include "rapid/support/check.hpp"

namespace rapid::rt {

/// Thrown by the executor when FaultPlan::throw_in_task fires — kept
/// distinct from user task-body exceptions so RunReport::failure_kind can
/// tell an injected failure from a real kernel bug.
class InjectedFaultError : public Error {
 public:
  using Error::Error;
};

/// A task failure the recovery layer may retry: the executor re-runs the
/// task (bounded by RetryPolicy::max_attempts) instead of cancelling the
/// run. Task bodies can throw it for genuinely transient conditions;
/// FaultPlan::transient_throw_in_task injects it for the retry tests.
class TransientTaskError : public Error {
 public:
  using Error::Error;
};

/// A reproducible perturbation schedule for one ThreadedExecutor run.
/// Delay draws are stateless hashes of (seed, site identifiers), never a
/// shared RNG stream, so they are thread-safe and independent of the
/// interleaving they themselves create. All classes are off by default;
/// enabled() gates every hook in the executor.
struct FaultPlan {
  std::uint64_t seed = 0;

  /// Class 1 — address-package delivery delay: the sender sleeps before
  /// pushing a package into the destination mailbox, which reorders
  /// deliveries relative to other sources and to the content puts the
  /// addresses unlock.
  double addr_delay_prob = 0.0;
  std::int64_t addr_delay_max_us = 0;

  /// Class 2 — content-put publication delay: the payload memcpy completes
  /// but the release store of received_version is deferred, widening the
  /// window a reader could (incorrectly) observe unpublished bytes.
  double put_delay_prob = 0.0;
  std::int64_t put_delay_max_us = 0;

  /// Class 3 — task-body slowdown: a pseudorandom sleep before the body
  /// runs, so protocol states overlap in orders a fast kernel never shows.
  double task_slow_prob = 0.0;
  std::int64_t task_slow_max_us = 0;

  /// Class 4 — forced park-timeout wakeups: shrinks the doorbell park
  /// timeout so every blocked state keeps waking by timeout instead of by
  /// ring, exercising the stale-wakeup re-check paths.
  bool force_park_timeout = false;
  std::int64_t forced_park_timeout_us = 50;

  /// Class 5 — payload corruption: flip one byte of the destination copy
  /// between the RMA memcpy and the version publication (a corrupted
  /// transfer the checksum must catch before the content is trusted). Only
  /// the first `corrupt_max_attempts` put attempts of a given (object,
  /// version, dest) are corrupted, so a NACK-triggered resend delivers
  /// clean bytes and recovery can converge.
  double corrupt_prob = 0.0;
  std::int32_t corrupt_max_attempts = 1;

  /// Class 6 — address-package duplication/replay: after a successful
  /// mailbox push, an identical copy (same sequence number) is delivered
  /// again, bypassing the slot bound — network-level duplication the
  /// receiver must suppress idempotently.
  double dup_addr_prob = 0.0;

  /// Induced failure — drop the nth (1-based) address package that
  /// processor `drop_addr_src` sends, counted in that processor's own
  /// deterministic program order. The owner never learns those addresses,
  /// its content sends suspend forever, and the run deadlocks — the
  /// canonical input for the stall-diagnosis tests (and, with recovery
  /// enabled, for the address-carrying re-request path that heals it).
  graph::ProcId drop_addr_src = graph::kInvalidProc;
  std::int64_t drop_addr_nth = -1;

  /// Induced failure — throw InjectedFaultError instead of running this
  /// task's body (cooperative-cancellation test input).
  graph::TaskId throw_in_task = graph::kInvalidTask;

  /// Induced failure — the task throws TransientTaskError on its first
  /// `transient_throw_count` execution attempts and succeeds afterwards
  /// (task-retry test input).
  graph::TaskId transient_throw_in_task = graph::kInvalidTask;
  std::int32_t transient_throw_count = 1;

  /// Induced failure — swallow every re-request (NACK), modeling lost
  /// recovery traffic: bounded retries exhaust and must escalate with the
  /// retry history in the StallReport.
  bool drop_nacks = false;

  /// Induced failure — process kill (multi-process/shm transport only):
  /// rank `kill_proc` SIGKILLs itself at its `kill_at_site`-th (1-based)
  /// entry into protocol phase `kill_phase`, counted in the rank's own
  /// deterministic program order. The in-process backend ignores it (a
  /// thread cannot fail independently); the shm coordinator must detect
  /// the corpse and fail-stop with a ProcFailureReport. Site ordinals are
  /// per (rank, phase): REC counts first-blocked-or-ready entries per
  /// position, EXE counts task bodies started, SND counts task
  /// completions, MAP counts MAP procedures begun.
  graph::ProcId kill_proc = graph::kInvalidProc;
  std::int32_t kill_phase = -1;  // one of kKillRec..kKillMap
  std::int64_t kill_at_site = -1;

  static constexpr std::int32_t kKillRec = 0;
  static constexpr std::int32_t kKillExe = 1;
  static constexpr std::int32_t kKillSnd = 2;
  static constexpr std::int32_t kKillMap = 3;

  /// Process-kill plan: rank `proc` dies at its `nth` entry into `phase`.
  static FaultPlan kill_proc_at(graph::ProcId proc, std::int32_t phase,
                                std::int64_t nth) {
    FaultPlan p;
    p.kill_proc = proc;
    p.kill_phase = phase;
    p.kill_at_site = nth;
    return p;
  }

  bool should_kill(graph::ProcId q, std::int32_t phase,
                   std::int64_t ordinal) const {
    return q == kill_proc && phase == kill_phase && ordinal == kill_at_site;
  }

  /// Induced failures (drop/throw/transient/drop_nacks) fire only on run
  /// attempts <= this bound (ThreadedOptions::run_attempt, 1-based) —
  /// run_with_recovery's restarted attempt then runs clean. Probabilistic
  /// classes 1–6 are not gated: they model environment faults that do not
  /// go away on restart.
  std::int32_t induced_fault_runs = 1 << 30;

  bool enabled() const {
    return addr_delay_prob > 0.0 || put_delay_prob > 0.0 ||
           task_slow_prob > 0.0 || force_park_timeout ||
           corrupt_prob > 0.0 || dup_addr_prob > 0.0 ||
           (drop_addr_src != graph::kInvalidProc && drop_addr_nth > 0) ||
           throw_in_task != graph::kInvalidTask ||
           transient_throw_in_task != graph::kInvalidTask || drop_nacks ||
           (kill_proc != graph::kInvalidProc && kill_at_site > 0);
  }

  /// Sweep presets: one per fault class, fully determined by the seed.
  static FaultPlan address_delays(std::uint64_t seed);
  static FaultPlan put_delays(std::uint64_t seed);
  static FaultPlan slow_tasks(std::uint64_t seed);
  static FaultPlan forced_park_timeouts(std::uint64_t seed);
  static FaultPlan payload_corruption(std::uint64_t seed);
  static FaultPlan package_duplication(std::uint64_t seed);
  /// Preset by name ("addr", "put", "slow", "park", "corrupt", "dup") for
  /// CLI flags; throws rapid::Error on unknown names.
  static FaultPlan preset(const std::string& name, std::uint64_t seed);

  /// Deterministic per-site draws (µs to sleep; 0 = no delay at this site).
  std::int64_t addr_delay_us(graph::ProcId src, graph::ProcId dest,
                             std::int64_t ordinal) const;
  std::int64_t put_delay_us(graph::DataId object, std::int32_t version,
                            graph::ProcId dest) const;
  std::int64_t task_delay_us(graph::TaskId task) const;

  /// Whether put attempt `attempt` (1-based, the owner's per-slot sequence
  /// number) of (object, version, dest) is corrupted.
  bool corrupt_put(graph::DataId object, std::int32_t version,
                   graph::ProcId dest, std::uint32_t attempt) const;
  /// Which destination byte to flip and with what mask (mask always
  /// nonzero); only meaningful when corrupt_put() returned true.
  std::pair<std::uint64_t, std::uint8_t> corrupt_site(
      graph::DataId object, std::int32_t version, graph::ProcId dest) const;

  /// Whether the sender's `ordinal`-th address package to `dest` is
  /// delivered twice.
  bool dup_addr_package(graph::ProcId src, graph::ProcId dest,
                        std::int64_t ordinal) const;

  /// Whether this task's `attempt`-th (1-based) execution throws
  /// TransientTaskError.
  bool task_throws_transient(graph::TaskId task, std::int32_t attempt) const {
    return task == transient_throw_in_task && attempt <= transient_throw_count;
  }
};

}  // namespace rapid::rt
