// Threaded executor: the same protocol as the simulator, but real. Each
// "processor" is a std::thread with a private fixed-capacity heap; RMA puts
// are memcpys into the destination heap at offsets learned through address
// packages; blocked states poll RA (read address packages) then CQ (check
// the suspended send queue) exactly like the paper's Figure 3(b). Task
// bodies run real kernels, so a run both demonstrates protocol liveness
// under true concurrency and produces numerical results that tests compare
// against reference solvers.
//
// The communication data plane is lock-free, like the shmem_put RMA it
// models: senders memcpy payloads straight into the destination heap and
// publish visibility with a per-object release store; readiness checks are
// acquire loads. Only the multi-slot address-package mailbox keeps a mutex.
// Blocked states spin briefly and then park on a shared progress doorbell
// instead of yield-spinning. docs/RUNTIME.md states the memory-ordering
// argument.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "rapid/rt/plan.hpp"
#include "rapid/rt/report.hpp"

namespace rapid::rt {

/// Resolves data objects to buffers in the executing processor's heap.
/// Reads of remote objects see the locally received copy; writes are only
/// legal on the owner (owner-compute).
class ObjectResolver {
 public:
  virtual ~ObjectResolver() = default;
  virtual std::span<const std::byte> read(DataId d) const = 0;
  virtual std::span<std::byte> write(DataId d) = 0;
};

/// Fills an owned object's initial content (version 0).
using ObjectInit = std::function<void(DataId, std::span<std::byte>)>;
/// Executes one task against its resolved buffers.
using TaskBody = std::function<void(TaskId, ObjectResolver&)>;

struct ThreadedOptions {
  /// Abort with ProtocolDeadlockError if no global progress for this long.
  double watchdog_seconds = 30.0;
  /// Blocked-state backoff: iterations of cheap spinning (cpu_relax, then
  /// yield) before a blocked processor parks on the progress doorbell.
  std::int32_t spin_iters = 64;
  /// Park timeout (µs): an explicit doorbell ring normally ends a park;
  /// the timeout is the bound on how stale a parked thread can go.
  std::int64_t park_timeout_us = 2000;
};

class ThreadedExecutor {
 public:
  ThreadedExecutor(const RunPlan& plan, const RunConfig& config,
                   ObjectInit init, TaskBody body,
                   ThreadedOptions options = {});
  ~ThreadedExecutor();

  ThreadedExecutor(const ThreadedExecutor&) = delete;
  ThreadedExecutor& operator=(const ThreadedExecutor&) = delete;

  /// Runs to completion. Throws ProtocolDeadlockError on watchdog expiry;
  /// capacity failures are reported via RunReport::executable.
  RunReport run();

  /// Final content of an object, copied from its owner's heap. Throws
  /// rapid::Error unless run() completed successfully first — heap state
  /// before that point is uninitialized or partial.
  std::vector<std::byte> read_object(DataId d) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace rapid::rt
