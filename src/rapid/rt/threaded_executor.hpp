// Threaded executor: the same protocol as the simulator, but real. Each
// "processor" is a std::thread with a private fixed-capacity heap; RMA puts
// are memcpys into the destination heap at offsets learned through address
// packages; blocked states poll RA (read address packages) then CQ (check
// the suspended send queue) exactly like the paper's Figure 3(b). Task
// bodies run real kernels, so a run both demonstrates protocol liveness
// under true concurrency and produces numerical results that tests compare
// against reference solvers.
//
// The communication data plane is lock-free, like the shmem_put RMA it
// models: senders memcpy payloads straight into the destination heap and
// publish visibility with a per-object release store; readiness checks are
// acquire loads. Only the multi-slot address-package mailbox keeps a mutex.
// Blocked states spin briefly and then park on a shared progress doorbell
// instead of yield-spinning. docs/RUNTIME.md states the memory-ordering
// argument.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include <string>

#include "rapid/rt/faults.hpp"
#include "rapid/rt/plan.hpp"
#include "rapid/rt/report.hpp"
#include "rapid/rt/transport.hpp"
#include "rapid/support/backoff.hpp"

namespace rapid::obs {
class Trace;  // obs/trace.hpp — per-processor ring-buffer event tracer
}

namespace rapid::rt {

class ShmTransport;  // rt/shm_transport.hpp

/// Resolves data objects to buffers in the executing processor's heap.
/// Reads of remote objects see the locally received copy; writes are only
/// legal on the owner (owner-compute).
class ObjectResolver {
 public:
  virtual ~ObjectResolver() = default;
  virtual std::span<const std::byte> read(DataId d) const = 0;
  virtual std::span<std::byte> write(DataId d) = 0;
};

/// Fills an owned object's initial content (version 0).
using ObjectInit = std::function<void(DataId, std::span<std::byte>)>;
/// Executes one task against its resolved buffers.
using TaskBody = std::function<void(TaskId, ObjectResolver&)>;

struct ThreadedOptions {
  /// Hard limit: abort with ProtocolDeadlockError (carrying the last stall
  /// diagnosis) if no global progress for this long.
  double watchdog_seconds = 30.0;
  /// Soft limit: after this long without progress the monitor snapshots
  /// every processor and builds the wait-for graph. A genuine cycle fails
  /// the run immediately with a structured StallReport; anything else is
  /// classified as slow progress and the run resumes — so diagnosis of a
  /// real deadlock fires in seconds, not watchdog_seconds.
  double stall_check_seconds = 0.5;
  /// How long the monitor waits for workers to publish their snapshots
  /// (workers blocked in a long task body are reported from light state).
  double snapshot_wait_seconds = 0.25;
  /// Blocked-state backoff: iterations of cheap spinning (cpu_relax, then
  /// yield) before a blocked processor parks on the progress doorbell.
  std::int32_t spin_iters = 64;
  /// Park timeout (µs): an explicit doorbell ring normally ends a park;
  /// the timeout is the bound on how stale a parked thread can go.
  std::int64_t park_timeout_us = 2000;
  /// Fill volatile regions freed by a MAP with 0xA5 so use-after-free
  /// across heap reuse reads as garbage, not stale content. Debug default;
  /// off in NDEBUG builds (it is a memset per freed object).
#ifdef NDEBUG
  bool poison_freed = false;
#else
  bool poison_freed = true;
#endif
  /// Integrity-checked RMA: every content put and address package carries
  /// a CRC32C verified before the publication is trusted (docs/PROTOCOL.md,
  /// "Integrity and re-request recovery"). A mismatch fails the run with
  /// FailureKind::kIntegrity unless `retry` recovery is enabled, in which
  /// case the reader re-requests the payload instead.
  bool checksum = true;
  /// Bounded re-request/retry recovery. Disabled by default
  /// (max_attempts == 0): detected faults fail the run exactly as in the
  /// fail-stop design. When enabled, a blocked wait past its deadline sends
  /// a NACK/re-request to the owner; transient task errors are re-executed;
  /// only exhausted retries escalate to ProtocolDeadlockError, and the
  /// stall watchdog budget is scaled by the policy's total wait so retries
  /// are never misdiagnosed as a deadlock.
  RetryPolicy retry;
  /// 1-based attempt number when driven by run_with_recovery();
  /// FaultPlan::induced_fault_runs gates induced failures by it.
  std::int32_t run_attempt = 1;
  /// Per-attempt cancellation deadline (µs of wall time from run() entry;
  /// 0 = none). When it lapses the monitor cooperatively cancels the run:
  /// abort is requested on the control plane, every worker unwinds at its
  /// next protocol step, and run() throws RunCancelledError carrying the
  /// partial RunReport — the run never wedges a worker past its budget.
  /// The service layer sets this to each run's remaining deadline.
  std::int64_t attempt_deadline_us = 0;
  /// Service-assigned run id (negative = standalone run). Mirrored into
  /// RunReport::run_id and the per-thread log tag so interleaved logs and
  /// reports of co-resident runs are attributable.
  std::int64_t run_id = -1;
  /// Deterministic fault injection (off by default — enabled() false means
  /// every hook reduces to one predictable branch). See docs/FAULTS.md.
  FaultPlan faults;
  /// Event tracer (docs/OBSERVABILITY.md). Null (the default) means no
  /// tracing: every record site reduces to one predictable branch. When
  /// set, each worker appends protocol events to its own ring in the Trace
  /// (single-writer, lock-free), and run() attaches the derived
  /// MetricsSummary to the RunReport. The Trace must outlive run() and be
  /// sized for at least plan.num_procs processors. On the shm transport
  /// each worker process traces into a private ring, dumps it at clean
  /// exit, and the coordinator merges the per-rank files into this Trace.
  obs::Trace* trace = nullptr;

  /// Which one-sided transport carries the data plane. kInProc (default)
  /// is the thread-per-processor executor; kShm runs each paper-processor
  /// as an OS process over a POSIX shared-memory segment
  /// (docs/TRANSPORT.md).
  TransportKind transport = TransportKind::kInProc;
  /// How shm worker processes come to life: fork (default — they inherit
  /// the plan and task bodies, any workload works) or spawning the
  /// rapid_shm_worker binary (requires workload_spec so the worker can
  /// rebuild the plan; only spec-expressible workloads).
  enum class ShmLaunch : std::uint8_t { kFork = 0, kSpawn = 1 };
  ShmLaunch shm_launch = ShmLaunch::kFork;
  /// Path to the rapid_shm_worker binary (spawn mode only).
  std::string shm_worker_path;
  /// Workload spec string (num/shm_workloads.hpp grammar) identifying the
  /// plan for spawned workers; checked against a fingerprint of the
  /// coordinator's plan before any worker touches shared state.
  std::string workload_spec;
  /// Directory for per-rank worker trace dumps (shm + trace only). Empty:
  /// a throwaway directory under the system temp dir, removed after the
  /// merge.
  std::string shm_trace_dir;
  /// Heartbeat lease (shm only): a worker whose lease goes stale for this
  /// long while not inside a task body is declared dead (SIGKILLed if
  /// still twitching, e.g. SIGSTOP) and the run fail-stops with a
  /// ProcFailureReport.
  double lease_timeout_seconds = 2.0;
};

class ThreadedExecutor {
 public:
  ThreadedExecutor(const RunPlan& plan, const RunConfig& config,
                   ObjectInit init, TaskBody body,
                   ThreadedOptions options = {});
  ~ThreadedExecutor();

  ThreadedExecutor(const ThreadedExecutor&) = delete;
  ThreadedExecutor& operator=(const ThreadedExecutor&) = delete;

  /// Runs to completion. Capacity failures are reported via
  /// RunReport::executable. Throws ProtocolDeadlockError — carrying a
  /// StallReport with per-processor states and the wait-for cycle — when
  /// the stall monitor proves a deadlock or the watchdog expires, and
  /// ExecutionFailedError (with every per-processor failure) when task
  /// bodies threw and the run was cooperatively cancelled.
  RunReport run();

  /// Final content of an object, copied from its owner's heap. Throws
  /// rapid::Error unless run() completed successfully first — heap state
  /// before that point is uninitialized or partial.
  std::vector<std::byte> read_object(DataId d) const;

  /// The report of the most recent run(), including the partial counters of
  /// a run that threw — run_with_recovery() merges these across restart
  /// attempts. Valid after run() returned or threw.
  const RunReport& last_report() const;

  /// Requests cooperative cancellation of an in-flight run() from another
  /// thread. The monitor observes the request within one heartbeat
  /// (bounded by stall_check_seconds/4, at most 250 ms), aborts the run,
  /// and run() throws RunCancelledError with the partial report. Safe to
  /// call at any time, including before run() or after completion (a run
  /// that already quiesced is unaffected).
  void cancel(std::string reason = "cancelled by caller");

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;

  friend int shm_worker_run(ShmTransport& transport, const RunPlan& plan,
                            const ObjectInit& init, const TaskBody& body);
};

}  // namespace rapid::rt
