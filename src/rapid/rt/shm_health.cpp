#include "rapid/rt/shm_health.hpp"

#include <algorithm>
#include <mutex>
#include <vector>

#include "rapid/rt/shm_transport.hpp"

namespace rapid::rt {

namespace {

/// One registered session plus the last live counter values we folded into
/// the registry, so repeated samples add only deltas (live mirrors are
/// monotone within a session; a fresh session starts them at zero).
struct TrackedSession {
  ShmSession* session = nullptr;
  std::vector<std::int64_t> last_nacks;
  std::vector<std::int64_t> last_resends;
};

std::mutex& health_mu() {
  static std::mutex mu;
  return mu;
}

std::vector<TrackedSession>& sessions() {
  static std::vector<TrackedSession> v;
  return v;
}

constexpr double kAgeClampSeconds = 1e6;  // "never beat" sentinel cap

}  // namespace

namespace detail {

void shm_health_register(ShmSession* session) {
  std::lock_guard<std::mutex> lock(health_mu());
  TrackedSession t;
  t.session = session;
  const std::size_t p =
      static_cast<std::size_t>(session->transport().num_procs());
  t.last_nacks.assign(p, 0);
  t.last_resends.assign(p, 0);
  sessions().push_back(std::move(t));
}

void shm_health_unregister(ShmSession* session) {
  std::lock_guard<std::mutex> lock(health_mu());
  auto& v = sessions();
  v.erase(std::remove_if(v.begin(), v.end(),
                         [session](const TrackedSession& t) {
                           return t.session == session;
                         }),
          v.end());
}

}  // namespace detail

int shm_health_active_sessions() {
  std::lock_guard<std::mutex> lock(health_mu());
  return static_cast<int>(sessions().size());
}

void sample_shm_health(obs::MetricsRegistry& reg) {
  std::lock_guard<std::mutex> lock(health_mu());
  auto& v = sessions();
  reg.gauge("rapid_shm_sessions",
            "Coordinator-side shm sessions currently alive")
      .set(static_cast<double>(v.size()));

  // Aggregate per rank index across sessions: worst (oldest) heartbeat,
  // alive if any session's rank is beating, counter deltas summed.
  struct RankAgg {
    double age = -1.0;  // -1 = no session has this rank
    bool alive = false;
    std::int64_t d_nacks = 0;
    std::int64_t d_resends = 0;
  };
  std::vector<RankAgg> ranks;

  for (TrackedSession& t : v) {
    ShmTransport& tp = t.session->transport();
    const std::int32_t p = tp.num_procs();
    if (static_cast<std::size_t>(p) > ranks.size()) {
      ranks.resize(static_cast<std::size_t>(p));
    }
    const double lease_timeout =
        std::max(tp.spec().lease_timeout_seconds, 0.1);
    for (std::int32_t q = 0; q < p; ++q) {
      RankAgg& agg = ranks[static_cast<std::size_t>(q)];
      const double age =
          std::min(tp.lease_age_seconds(q), kAgeClampSeconds);
      agg.age = std::max(agg.age, age);
      if (age < lease_timeout) agg.alive = true;

      const std::int64_t nacks = tp.live_nacks(q);
      const std::int64_t resends = tp.live_resends(q);
      auto& last_n = t.last_nacks[static_cast<std::size_t>(q)];
      auto& last_r = t.last_resends[static_cast<std::size_t>(q)];
      if (nacks > last_n) {
        agg.d_nacks += nacks - last_n;
        last_n = nacks;
      }
      if (resends > last_r) {
        agg.d_resends += resends - last_r;
        last_r = resends;
      }
    }
  }

  for (std::size_t q = 0; q < ranks.size(); ++q) {
    const RankAgg& agg = ranks[q];
    if (agg.age < 0) continue;
    const std::vector<obs::Label> labels = {
        {"rank", std::to_string(q)}};
    reg.gauge("rapid_rank_heartbeat_age_seconds",
              "Seconds since the rank's last heartbeat lease refresh "
              "(max across active sessions)",
              labels)
        .set(agg.age);
    reg.gauge("rapid_rank_alive",
              "1 when some active session's rank beats within its lease "
              "timeout",
              labels)
        .set(agg.alive ? 1.0 : 0.0);
    reg.counter("rapid_rank_nacks_total",
                "NACK re-requests sent by this rank (all sessions)",
                labels)
        .add(agg.d_nacks);
    reg.counter("rapid_rank_resends_total",
                "Content resends served by this rank (all sessions)",
                labels)
        .add(agg.d_resends);
  }
}

}  // namespace rapid::rt
