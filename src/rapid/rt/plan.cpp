#include "rapid/rt/plan.hpp"

#include <algorithm>
#include <set>
#include <tuple>

#include "rapid/support/check.hpp"
#include "rapid/support/str.hpp"

namespace rapid::rt {

namespace {

/// Epoch grouping: a writer joins the current epoch iff it carries the same
/// non-negative commute group AND no external reader of the object sits
/// between it and the previous member in program order. The reader
/// condition matters for liveness: an interleaved reader has an anti edge
/// into every later epoch member (the inspector's semantics), so gating the
/// reader on whole-epoch completion would wait on tasks that transitively
/// wait on the reader. Splitting the epoch there makes the reader's version
/// available as soon as the earlier members finish.
std::vector<std::vector<TaskId>> group_epochs(const graph::TaskGraph& graph,
                                              DataId d) {
  const std::span<const TaskId> writers = graph.writers(d);
  // Pure readers of d (read but do not write it), sorted by program order
  // (task ids are assigned in registration order).
  std::vector<TaskId> pure_readers;
  for (TaskId r : graph.readers(d)) {
    if (!std::binary_search(graph.task(r).writes.begin(),
                            graph.task(r).writes.end(), d)) {
      pure_readers.push_back(r);
    }
  }
  auto reader_between = [&pure_readers](TaskId a, TaskId b) {
    auto it = std::upper_bound(pure_readers.begin(), pure_readers.end(), a);
    return it != pure_readers.end() && *it < b;
  };
  std::vector<std::vector<TaskId>> epochs;
  std::int32_t current_group = -2;
  for (TaskId w : writers) {
    const std::int32_t g = graph.task(w).commute_group;
    if (!epochs.empty() && g >= 0 && g == current_group &&
        !reader_between(epochs.back().back(), w)) {
      epochs.back().push_back(w);
    } else {
      epochs.push_back({w});
      current_group = g >= 0 ? g : -2;  // non-commuting: nobody can join
    }
  }
  return epochs;
}

}  // namespace

std::int32_t RunPlan::version_of_writer(DataId d, TaskId t) const {
  const ObjectPlan& obj = objects[d];
  for (std::size_t v = 0; v < obj.epochs.size(); ++v) {
    if (std::binary_search(obj.epochs[v].begin(), obj.epochs[v].end(), t)) {
      return static_cast<std::int32_t>(v) + 1;
    }
  }
  RAPID_FAIL(cat("task ", t, " is not a writer of object ", d));
}

RunPlan build_run_plan(const graph::TaskGraph& graph,
                       const sched::Schedule& schedule) {
  schedule.validate(graph);
  RunPlan plan;
  plan.graph = &graph;
  plan.schedule = schedule;
  plan.num_procs = schedule.num_procs;
  plan.objects.resize(static_cast<std::size_t>(graph.num_data()));
  plan.tasks.resize(static_cast<std::size_t>(graph.num_tasks()));
  plan.procs.resize(static_cast<std::size_t>(plan.num_procs));

  // Epoch structure per object. Task ids are assigned in program order, so
  // writer lists are sorted; epochs inherit that (binary_search-able).
  for (DataId d = 0; d < graph.num_data(); ++d) {
    plan.objects[d].epochs = group_epochs(graph, d);
    plan.objects[d].sends_by_version.resize(
        plan.objects[d].epochs.size() + 1);
  }

  // Epoch memberships per task.
  for (DataId d = 0; d < graph.num_data(); ++d) {
    const auto& epochs = plan.objects[d].epochs;
    for (std::size_t v = 0; v < epochs.size(); ++v) {
      for (TaskId w : epochs[v]) {
        plan.tasks[w].epoch_memberships.emplace_back(
            d, static_cast<std::int32_t>(v) + 1);
      }
    }
  }

  // Gating conditions and flag routing from the transformed graph's edges.
  for (TaskId t = 0; t < graph.num_tasks(); ++t) {
    TaskRuntimePlan& tp = plan.tasks[t];
    const ProcId my_proc = schedule.proc_of_task[t];
    // Volatile accesses: remotely-owned objects this task reads. (Writes
    // are always local under owner-compute; validate() enforced it.)
    for (DataId d : graph.task(t).accesses()) {
      if (graph.data(d).owner != my_proc) {
        tp.volatile_accesses.push_back(d);
      }
    }
    // Required versions per volatile object.
    std::vector<std::int32_t> version_needed(tp.volatile_accesses.size(), 0);
    std::set<TaskId> sync_preds;
    for (std::int32_t ei : graph.in_edges(t)) {
      const graph::Edge& e = graph.edges()[ei];
      if (schedule.proc_of_task[e.src] == my_proc) continue;
      if (e.kind == graph::DepKind::kTrue) {
        const auto it = std::find(tp.volatile_accesses.begin(),
                                  tp.volatile_accesses.end(), e.object);
        RAPID_CHECK(it != tp.volatile_accesses.end(),
                    "cross-processor true edge into a non-volatile input");
        const auto slot =
            static_cast<std::size_t>(it - tp.volatile_accesses.begin());
        version_needed[slot] =
            std::max(version_needed[slot],
                     plan.version_of_writer(e.object, e.src));
      } else {
        sync_preds.insert(e.src);
      }
    }
    for (std::size_t i = 0; i < tp.volatile_accesses.size(); ++i) {
      tp.remote_reads.push_back(
          RemoteRead{tp.volatile_accesses[i], version_needed[i]});
    }
    tp.remote_sync_preds.assign(sync_preds.begin(), sync_preds.end());
    // Flag destinations from outgoing sync edges.
    std::set<ProcId> flag_dests;
    for (std::int32_t ei : graph.out_edges(t)) {
      const graph::Edge& e = graph.edges()[ei];
      if (e.kind == graph::DepKind::kTrue) continue;
      const ProcId dest = schedule.proc_of_task[e.dst];
      if (dest != my_proc) flag_dests.insert(dest);
    }
    tp.flag_dests.assign(flag_dests.begin(), flag_dests.end());
  }

  // Content sends: for every remote reader, one (object, version, proc)
  // message, deduplicated.
  {
    std::set<std::tuple<DataId, std::int32_t, ProcId>> sends;
    for (TaskId t = 0; t < graph.num_tasks(); ++t) {
      for (const RemoteRead& rr : plan.tasks[t].remote_reads) {
        sends.emplace(rr.object, rr.version, plan.schedule.proc_of_task[t]);
      }
    }
    for (const auto& [d, v, dest] : sends) {
      plan.objects[d].sends_by_version[static_cast<std::size_t>(v)].push_back(
          dest);
    }
  }

  // Per-processor plans.
  const sched::LivenessTable liveness =
      sched::analyze_liveness(graph, schedule);
  for (ProcId p = 0; p < plan.num_procs; ++p) {
    ProcPlan& pp = plan.procs[p];
    pp.order = schedule.order[p];
    pp.volatiles = liveness.procs[p].volatiles;
    pp.permanent_bytes = liveness.procs[p].permanent_bytes;
  }
  for (DataId d = 0; d < graph.num_data(); ++d) {
    const ProcId owner = graph.data(d).owner;
    plan.procs[owner].permanents.push_back(d);
    for (ProcId dest : plan.objects[d].sends_by_version[0]) {
      plan.procs[owner].initial_sends.push_back(ContentSend{d, 0, dest});
    }
  }
  return plan;
}

}  // namespace rapid::rt
