// Run-level restart: the outermost ring of the self-healing layer
// (docs/FAULTS.md, "Recovery"). The inner rings — integrity-checked RMA and
// bounded re-request/retry — heal lost or corrupted messages *within* a run;
// run_with_recovery() bounds what happens when a run still fails (exhausted
// retries, a task that keeps throwing): re-run the whole plan from scratch,
// up to a configured attempt count, and merge every attempt's recovery
// counters into the one report the caller sees.
//
// A restart is safe for the same reason a single run is deterministic: run()
// rebuilds all heaps, versions, and protocol state from the plan, and task
// bodies are pure functions of their resolved inputs. Nothing of a failed
// attempt survives into the next one.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rapid/rt/proc_failure.hpp"
#include "rapid/rt/threaded_executor.hpp"

namespace rapid::rt {

struct RunRecoveryOptions {
  /// Total run() attempts, including the first (1 = no restart, identical
  /// to calling ThreadedExecutor::run() directly).
  std::int32_t max_run_attempts = 3;
  /// Pause before restarting after a failed attempt (µs; 0 = immediate,
  /// the pre-PR behavior). Grows by restart_backoff_multiplier per further
  /// restart, so a run tripping over a persistent environmental fault backs
  /// off instead of hammering: attempt k (k >= 2) waits
  /// restart_backoff_us * multiplier^(k-2).
  std::int64_t restart_backoff_us = 0;
  double restart_backoff_multiplier = 2.0;
  /// Per-attempt cancellation deadline forwarded to
  /// ThreadedOptions::attempt_deadline_us (0 keeps whatever the caller set
  /// there). Each attempt gets the full budget; a cancelled attempt is
  /// never restarted — a lapsed deadline only lapses further.
  std::int64_t attempt_deadline_us = 0;
  /// When true, a run that still fails after the attempt cap — or is
  /// cancelled — does not rethrow: the RecoveryRun comes back with
  /// failed == true, the failing attempt's partial report, and the executor
  /// that produced it. The runtime service uses this so every admitted run
  /// yields a structured (possibly partial) RunReport instead of an
  /// exception to re-wrap.
  bool capture_failure = false;
};

/// Result of run_with_recovery(): the successful attempt's report with the
/// failed attempts' recovery counters merged in (and run_attempts set to the
/// total number of attempts), plus the failure text of each failed attempt
/// in order. `executor` is the instance that produced `report`, kept alive
/// so read_object() works on the final state.
struct RecoveryRun {
  RunReport report;
  std::unique_ptr<ThreadedExecutor> executor;
  /// failure summary of attempt i+1 (empty when the first attempt
  /// succeeded).
  std::vector<std::string> attempt_failures;
  /// Structured reports of every attempt that died to a process failure
  /// (shm transport: a worker was SIGKILLed, crashed, or lapsed its lease).
  /// Restarting respawns the dead rank's process from scratch, so these
  /// attempts are recoverable exactly like protocol-level faults.
  std::vector<std::shared_ptr<const ProcFailureReport>> attempt_proc_failures;
  std::int32_t attempts = 0;
  /// Capture mode (RunRecoveryOptions::capture_failure) only: the run did
  /// not complete — `report` is the last attempt's partial report and
  /// failure_kind/failure describe why. Always false when the legacy
  /// rethrowing mode returned.
  bool failed = false;
  FailureKind failure_kind = FailureKind::kNone;
  std::string failure;
  /// The per-attempt deadline that was in force (µs; 0 = none) and the
  /// restart backoff actually waited before each restart, for post-hoc
  /// timeout diagnosis in the JSON artifact.
  std::int64_t attempt_deadline_us = 0;
  std::vector<std::int64_t> backoff_waits_us;

  /// CI-artifact form: the merged RunReport plus the attempt history —
  /// per-attempt failure summaries, proc-failure blocks, the deadline in
  /// force, and the restart backoff waits.
  JsonValue to_json() const;
};

/// Runs the plan under the threaded executor, restarting from scratch on
/// ProtocolDeadlockError / ExecutionFailedError up to
/// RunRecoveryOptions::max_run_attempts total attempts. Each attempt gets a
/// fresh executor with options.run_attempt set to its 1-based index, so a
/// FaultPlan gated by induced_fault_runs stops injecting on the restarts. A
/// non-executable plan is reported immediately (restarting cannot make a
/// capacity failure fit); exhausting the attempts rethrows the last
/// attempt's exception (or returns it structured in capture_failure mode).
/// A RunCancelledError is never retried: cancellation is a caller decision,
/// not a fault, and a lapsed deadline only lapses further on a restart.
/// Restarts wait restart_backoff_us (growing by the multiplier) first.
RecoveryRun run_with_recovery(const RunPlan& plan, const RunConfig& config,
                              ObjectInit init, TaskBody body,
                              ThreadedOptions options = {},
                              RunRecoveryOptions ropts = {});

}  // namespace rapid::rt
