// Run-level restart: the outermost ring of the self-healing layer
// (docs/FAULTS.md, "Recovery"). The inner rings — integrity-checked RMA and
// bounded re-request/retry — heal lost or corrupted messages *within* a run;
// run_with_recovery() bounds what happens when a run still fails (exhausted
// retries, a task that keeps throwing): re-run the whole plan from scratch,
// up to a configured attempt count, and merge every attempt's recovery
// counters into the one report the caller sees.
//
// A restart is safe for the same reason a single run is deterministic: run()
// rebuilds all heaps, versions, and protocol state from the plan, and task
// bodies are pure functions of their resolved inputs. Nothing of a failed
// attempt survives into the next one.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rapid/rt/proc_failure.hpp"
#include "rapid/rt/threaded_executor.hpp"

namespace rapid::rt {

struct RunRecoveryOptions {
  /// Total run() attempts, including the first (1 = no restart, identical
  /// to calling ThreadedExecutor::run() directly).
  std::int32_t max_run_attempts = 3;
};

/// Result of run_with_recovery(): the successful attempt's report with the
/// failed attempts' recovery counters merged in (and run_attempts set to the
/// total number of attempts), plus the failure text of each failed attempt
/// in order. `executor` is the instance that produced `report`, kept alive
/// so read_object() works on the final state.
struct RecoveryRun {
  RunReport report;
  std::unique_ptr<ThreadedExecutor> executor;
  /// failure summary of attempt i+1 (empty when the first attempt
  /// succeeded).
  std::vector<std::string> attempt_failures;
  /// Structured reports of every attempt that died to a process failure
  /// (shm transport: a worker was SIGKILLed, crashed, or lapsed its lease).
  /// Restarting respawns the dead rank's process from scratch, so these
  /// attempts are recoverable exactly like protocol-level faults.
  std::vector<std::shared_ptr<const ProcFailureReport>> attempt_proc_failures;
  std::int32_t attempts = 0;
};

/// Runs the plan under the threaded executor, restarting from scratch on
/// ProtocolDeadlockError / ExecutionFailedError up to
/// RunRecoveryOptions::max_run_attempts total attempts. Each attempt gets a
/// fresh executor with options.run_attempt set to its 1-based index, so a
/// FaultPlan gated by induced_fault_runs stops injecting on the restarts. A
/// non-executable plan is reported immediately (restarting cannot make a
/// capacity failure fit); exhausting the attempts rethrows the last
/// attempt's exception.
RecoveryRun run_with_recovery(const RunPlan& plan, const RunConfig& config,
                              ObjectInit init, TaskBody body,
                              ThreadedOptions options = {},
                              RunRecoveryOptions ropts = {});

}  // namespace rapid::rt
