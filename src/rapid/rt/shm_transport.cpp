#include "rapid/rt/shm_transport.hpp"

#include <csignal>
#include <cstring>
#include <new>

#include <sys/wait.h>
#include <unistd.h>

#include "rapid/support/check.hpp"
#include "rapid/support/log.hpp"
#include "rapid/support/stopwatch.hpp"
#include "rapid/support/str.hpp"

namespace rapid::rt {

namespace {

constexpr char kShmMagic[8] = {'R', 'A', 'P', 'I', 'D', 'S', 'H', 'M'};
// v2: live_nacks / live_resends mirrors appended to ShmRankCtl so the
// telemetry sampler can read per-rank recovery traffic mid-run.
constexpr std::uint32_t kLayoutVersion = 2;
/// Bounded NACK ring per destination; a full ring drops the re-request
/// (the waiter's next deadline re-sends it — NACKs are idempotent).
constexpr std::int32_t kNackCap = 1024;

constexpr std::int64_t align_up(std::int64_t x, std::int64_t a) {
  return (x + a - 1) / a * a;
}

struct ShmHeader {
  char magic[8];
  std::uint32_t layout_version;
  std::int32_t num_procs;
  std::int64_t num_data;
  std::int64_t num_tasks;
  std::int64_t heap_bytes;
  std::int64_t total_bytes;
  ShmRunSpec spec;
  alignas(64) ShmBellState data_bell;
  alignas(64) ShmBellState control_bell;
  alignas(64) std::atomic<std::uint32_t> abort;
  std::atomic<std::int32_t> quiescent;
  /// Control-slot index of the first failure (-1 = none). Slot num_procs
  /// is the coordinator's own pseudo-rank.
  std::atomic<std::int32_t> first_error_rank;
};
static_assert(std::is_trivially_destructible_v<ShmHeader>);

/// One rank's control record: heartbeat lease, light protocol state, the
/// blocked-wait record the coordinator diagnoses corpses from, the error
/// slot, and the end-of-run counters. error_text is written before the
/// has_error release store, so a reader that observes has_error == 1 sees
/// the full text.
struct alignas(64) ShmRankCtl {
  std::atomic<std::int64_t> lease_ns;
  std::atomic<std::uint8_t> state;
  std::atomic<std::uint8_t> done;
  std::atomic<std::uint8_t> has_error;
  std::atomic<std::uint8_t> error_kind;
  std::atomic<std::int32_t> pos;
  std::atomic<std::int32_t> wait_obj;
  std::atomic<std::int32_t> wait_ver;
  std::atomic<std::int32_t> wait_flag;
  std::atomic<std::int32_t> wait_map_dest;
  std::atomic<std::int32_t> wait_retries;
  std::atomic<std::uint8_t> wait_exhausted;
  char error_text[448];
  std::atomic<std::int64_t> counters[kNumShmCounters];
  /// Running recovery totals mirrored by the worker mid-run (the
  /// `counters` slots above are end-of-run, published with done). Read by
  /// the cross-process telemetry sampler; relaxed is fine, they are
  /// monotone hints, not protocol state.
  std::atomic<std::int64_t> live_nacks;
  std::atomic<std::int64_t> live_resends;
};
static_assert(std::atomic<std::int64_t>::is_always_lock_free);
static_assert(std::atomic<std::int32_t>::is_always_lock_free);
static_assert(std::atomic<std::uint8_t>::is_always_lock_free);

/// Mailbox lane header (one per (dest, src) pair), followed by `lane_cap`
/// fixed-size package slots forming a ring: head = oldest slot, count =
/// occupancy. Mutated only under the destination's spinlock; count is
/// atomic so the diagnostics-only occupancy probe needs no lock.
struct MailLane {
  std::atomic<std::int32_t> head;
  std::atomic<std::int32_t> count;
};

/// Serialized AddrPackage slot layout:
///   int32 n | int32 reader | uint32 seq | uint32 crc | n x (int32, int64)
constexpr std::int64_t kSlotHeaderBytes = 16;
constexpr std::int64_t kSlotEntryBytes = 12;

struct MailDstHeader {
  std::atomic<std::uint32_t> lock;
  std::uint32_t pad;
  std::atomic<std::int64_t> pending;
};

struct NackDstHeader {
  std::atomic<std::uint32_t> lock;
  std::uint32_t pad;
  std::atomic<std::int64_t> pending;
  std::atomic<std::int32_t> count;
  std::int32_t pad2;
};

void serialize_package(std::byte* slot, const AddrPackage& pkg) {
  const std::int32_t n = static_cast<std::int32_t>(pkg.entries.size());
  std::memcpy(slot + 0, &n, 4);
  std::memcpy(slot + 4, &pkg.reader, 4);
  std::memcpy(slot + 8, &pkg.seq, 4);
  std::memcpy(slot + 12, &pkg.crc, 4);
  std::byte* p = slot + kSlotHeaderBytes;
  for (const auto& [d, off] : pkg.entries) {
    std::memcpy(p, &d, 4);
    std::memcpy(p + 4, &off, 8);
    p += kSlotEntryBytes;
  }
}

AddrPackage deserialize_package(const std::byte* slot) {
  AddrPackage pkg;
  std::int32_t n = 0;
  std::memcpy(&n, slot + 0, 4);
  std::memcpy(&pkg.reader, slot + 4, 4);
  std::memcpy(&pkg.seq, slot + 8, 4);
  std::memcpy(&pkg.crc, slot + 12, 4);
  pkg.entries.resize(static_cast<std::size_t>(n));
  const std::byte* p = slot + kSlotHeaderBytes;
  for (auto& [d, off] : pkg.entries) {
    std::memcpy(&d, p, 4);
    std::memcpy(&off, p + 4, 8);
    p += kSlotEntryBytes;
  }
  return pkg;
}

}  // namespace

std::uint64_t plan_fingerprint(const RunPlan& plan) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(static_cast<std::uint64_t>(plan.procs.size()));
  for (const ProcPlan& pp : plan.procs) {
    mix(static_cast<std::uint64_t>(pp.order.size()));
    for (TaskId t : pp.order) mix(static_cast<std::uint64_t>(t) + 0x9e3779b9ull);
    mix(static_cast<std::uint64_t>(pp.permanent_bytes));
  }
  return h;
}

/// Offsets (and a few derived byte sizes) of every region in the segment,
/// computed identically by the creator and every attacher from the dims in
/// the header. All pointers are into this process's own mapping.
struct ShmTransport::Layout {
  ShmHeader* hdr = nullptr;
  ShmRankCtl* ctl = nullptr;  // num_procs + 1 slots (last = coordinator)
  std::byte* heaps = nullptr;
  std::atomic<std::int32_t>* versions = nullptr;
  std::atomic<std::uint32_t>* crcs = nullptr;
  std::atomic<std::uint32_t>* seqs = nullptr;
  std::atomic<std::uint8_t>* flags = nullptr;
  std::byte* mail = nullptr;
  std::byte* nack = nullptr;

  std::int32_t p = 0;
  std::int64_t num_data = 0;
  std::int64_t num_tasks = 0;
  std::int64_t heap_bytes = 0;
  std::int32_t lane_cap = 0;
  std::int64_t slot_bytes = 0;
  std::int64_t lane_bytes = 0;
  std::int64_t mail_per_dst = 0;
  std::int64_t nack_per_dst = 0;
  std::int64_t total_bytes = 0;

  static Layout compute(std::byte* base, std::int32_t p, std::int64_t num_data,
                        std::int64_t num_tasks, std::int64_t heap_bytes,
                        std::int32_t mailbox_slots) {
    Layout l;
    l.p = p;
    l.num_data = num_data;
    l.num_tasks = num_tasks;
    l.heap_bytes = heap_bytes;
    // Duplication faults deliver one extra copy past the logical bound, so
    // the physical ring keeps two slots of headroom above mailbox_slots.
    l.lane_cap = mailbox_slots + 2;
    l.slot_bytes =
        align_up(kSlotHeaderBytes + kSlotEntryBytes * num_data, 8);
    l.lane_bytes = align_up(static_cast<std::int64_t>(sizeof(MailLane)) +
                                l.lane_cap * l.slot_bytes,
                            8);
    l.mail_per_dst = align_up(
        static_cast<std::int64_t>(sizeof(MailDstHeader)) + p * l.lane_bytes,
        64);
    l.nack_per_dst =
        align_up(static_cast<std::int64_t>(sizeof(NackDstHeader)) +
                     kNackCap * static_cast<std::int64_t>(sizeof(NackRequest)),
                 64);

    std::int64_t off = align_up(static_cast<std::int64_t>(sizeof(ShmHeader)), 64);
    const std::int64_t ctl_off = off;
    off = align_up(off + (p + 1) * static_cast<std::int64_t>(sizeof(ShmRankCtl)),
                   64);
    const std::int64_t heap_off = off;
    off = align_up(off + p * heap_bytes, 64);
    const std::int64_t ver_off = off;
    off = align_up(off + p * num_data * 4, 64);
    const std::int64_t crc_off = off;
    off = align_up(off + p * num_data * 4, 64);
    const std::int64_t seq_off = off;
    off = align_up(off + p * num_data * 4, 64);
    const std::int64_t flag_off = off;
    off = align_up(off + p * num_tasks, 64);
    const std::int64_t mail_off = off;
    off = align_up(off + p * l.mail_per_dst, 64);
    const std::int64_t nack_off = off;
    off = align_up(off + p * l.nack_per_dst, 64);
    l.total_bytes = off;

    if (base != nullptr) {
      l.hdr = reinterpret_cast<ShmHeader*>(base);
      l.ctl = reinterpret_cast<ShmRankCtl*>(base + ctl_off);
      l.heaps = base + heap_off;
      l.versions = reinterpret_cast<std::atomic<std::int32_t>*>(base + ver_off);
      l.crcs = reinterpret_cast<std::atomic<std::uint32_t>*>(base + crc_off);
      l.seqs = reinterpret_cast<std::atomic<std::uint32_t>*>(base + seq_off);
      l.flags = reinterpret_cast<std::atomic<std::uint8_t>*>(base + flag_off);
      l.mail = base + mail_off;
      l.nack = base + nack_off;
    }
    return l;
  }

  MailDstHeader* mail_dst(ProcId dst) const {
    return reinterpret_cast<MailDstHeader*>(mail + dst * mail_per_dst);
  }
  MailLane* mail_lane(ProcId dst, ProcId src) const {
    return reinterpret_cast<MailLane*>(mail + dst * mail_per_dst +
                                       sizeof(MailDstHeader) +
                                       src * lane_bytes);
  }
  std::byte* mail_slot(ProcId dst, ProcId src, std::int32_t i) const {
    return mail + dst * mail_per_dst + sizeof(MailDstHeader) +
           src * lane_bytes + sizeof(MailLane) + i * slot_bytes;
  }
  NackDstHeader* nack_dst(ProcId dst) const {
    return reinterpret_cast<NackDstHeader*>(nack + dst * nack_per_dst);
  }
  NackRequest* nack_slots(ProcId dst) const {
    return reinterpret_cast<NackRequest*>(nack + dst * nack_per_dst +
                                          sizeof(NackDstHeader));
  }
};

ShmTransport::ShmTransport(ShmSegment seg, ProcId rank)
    : seg_(std::move(seg)), rank_(rank) {
  ShmHeader* hdr = reinterpret_cast<ShmHeader*>(seg_.data());
  l_ = std::make_unique<Layout>(Layout::compute(
      seg_.data(), hdr->num_procs, hdr->num_data, hdr->num_tasks,
      hdr->heap_bytes, hdr->spec.mailbox_slots));
  data_bell_ = std::make_unique<FutexBell>(&l_->hdr->data_bell);
  control_bell_ = std::make_unique<FutexBell>(&l_->hdr->control_bell);
}

ShmTransport::~ShmTransport() = default;

std::unique_ptr<ShmTransport> ShmTransport::create(const std::string& name,
                                                   const Dims& dims,
                                                   const ShmRunSpec& spec) {
  RAPID_CHECK(dims.num_procs > 0 && dims.heap_bytes >= 0,
              "shm transport: bad dims");
  const Layout sizing =
      Layout::compute(nullptr, dims.num_procs, dims.num_data, dims.num_tasks,
                      dims.heap_bytes, spec.mailbox_slots);
  ShmSegment seg = ShmSegment::create(name, sizing.total_bytes);
  std::byte* base = seg.data();

  // The mapping is zero-filled by ftruncate; placement-new every shared
  // object anyway so the code never leans on atomic representation details.
  ShmHeader* hdr = new (base) ShmHeader{};
  std::memcpy(hdr->magic, kShmMagic, sizeof(kShmMagic));
  hdr->layout_version = kLayoutVersion;
  hdr->num_procs = dims.num_procs;
  hdr->num_data = dims.num_data;
  hdr->num_tasks = dims.num_tasks;
  hdr->heap_bytes = dims.heap_bytes;
  hdr->total_bytes = sizing.total_bytes;
  hdr->spec = spec;
  new (&hdr->data_bell) ShmBellState{};
  new (&hdr->control_bell) ShmBellState{};
  new (&hdr->abort) std::atomic<std::uint32_t>{0};
  new (&hdr->quiescent) std::atomic<std::int32_t>{0};
  new (&hdr->first_error_rank) std::atomic<std::int32_t>{-1};

  const Layout l = Layout::compute(base, dims.num_procs, dims.num_data,
                                   dims.num_tasks, dims.heap_bytes,
                                   spec.mailbox_slots);
  for (std::int32_t q = 0; q <= l.p; ++q) new (&l.ctl[q]) ShmRankCtl{};
  for (std::int64_t i = 0; i < l.p * l.num_data; ++i) {
    new (&l.versions[i]) std::atomic<std::int32_t>{-1};
    new (&l.crcs[i]) std::atomic<std::uint32_t>{0};
    new (&l.seqs[i]) std::atomic<std::uint32_t>{0};
  }
  for (std::int64_t i = 0; i < l.p * l.num_tasks; ++i) {
    new (&l.flags[i]) std::atomic<std::uint8_t>{0};
  }
  for (std::int32_t dst = 0; dst < l.p; ++dst) {
    new (l.mail_dst(dst)) MailDstHeader{};
    for (std::int32_t src = 0; src < l.p; ++src) {
      new (l.mail_lane(dst, src)) MailLane{};
    }
    new (l.nack_dst(dst)) NackDstHeader{};
  }
  return std::unique_ptr<ShmTransport>(
      new ShmTransport(std::move(seg), graph::kInvalidProc));
}

std::unique_ptr<ShmTransport> ShmTransport::attach(const std::string& name,
                                                   ProcId rank) {
  ShmSegment seg = ShmSegment::attach(name);
  RAPID_CHECK(seg.size() >= static_cast<std::int64_t>(sizeof(ShmHeader)),
              "shm transport: segment too small for header");
  const ShmHeader* hdr = reinterpret_cast<const ShmHeader*>(seg.data());
  RAPID_CHECK(std::memcmp(hdr->magic, kShmMagic, sizeof(kShmMagic)) == 0,
              cat("shm transport: bad magic in ", name));
  RAPID_CHECK(hdr->layout_version == kLayoutVersion,
              cat("shm transport: layout version mismatch in ", name));
  RAPID_CHECK(seg.size() >= hdr->total_bytes,
              cat("shm transport: segment truncated (", seg.size(), " < ",
                  hdr->total_bytes, ")"));
  RAPID_CHECK(rank >= 0 && rank < hdr->num_procs,
              cat("shm transport: rank ", rank, " out of range"));
  return std::unique_ptr<ShmTransport>(
      new ShmTransport(std::move(seg), rank));
}

const std::string& ShmTransport::segment_name() const { return seg_.name(); }
const ShmRunSpec& ShmTransport::spec() const { return l_->hdr->spec; }

ShmTransport::Dims ShmTransport::dims() const {
  Dims d;
  d.num_procs = l_->p;
  d.num_data = l_->num_data;
  d.num_tasks = l_->num_tasks;
  d.heap_bytes = l_->heap_bytes;
  return d;
}

std::int32_t ShmTransport::num_procs() const { return l_->p; }

WindowView ShmTransport::window(ProcId q) {
  WindowView w;
  w.heap = l_->heaps + q * l_->heap_bytes;
  w.received_version = l_->versions + q * l_->num_data;
  w.received_crc = l_->crcs + q * l_->num_data;
  w.put_seq = l_->seqs + q * l_->num_data;
  w.flags = l_->flags + q * l_->num_tasks;
  return w;
}

bool ShmTransport::try_send_addr_package(ProcId from, ProcId dest,
                                         const AddrPackage& pkg,
                                         std::int32_t slot_bound,
                                         std::int32_t copies) {
  MailDstHeader* mh = l_->mail_dst(dest);
  if (!ShmSpinLock::acquire(mh->lock, l_->hdr->abort)) return false;
  MailLane* lane = l_->mail_lane(dest, from);
  const std::int32_t count = lane->count.load(std::memory_order_relaxed);
  if (count >= slot_bound) {
    ShmSpinLock::release(mh->lock);
    return false;
  }
  const std::int32_t head = lane->head.load(std::memory_order_relaxed);
  std::int32_t written = 0;
  for (std::int32_t c = 0; c < copies && count + c < l_->lane_cap; ++c) {
    serialize_package(
        l_->mail_slot(dest, from, (head + count + c) % l_->lane_cap), pkg);
    ++written;
  }
  lane->count.store(count + written, std::memory_order_relaxed);
  mh->pending.fetch_add(written, std::memory_order_release);
  ShmSpinLock::release(mh->lock);
  return true;
}

bool ShmTransport::addr_packages_pending(ProcId me) const {
  return l_->mail_dst(me)->pending.load(std::memory_order_acquire) > 0;
}

void ShmTransport::drain_addr_packages(ProcId me,
                                       std::vector<AddrPackage>* out) {
  MailDstHeader* mh = l_->mail_dst(me);
  if (!ShmSpinLock::acquire(mh->lock, l_->hdr->abort)) return;
  for (std::int32_t src = 0; src < l_->p; ++src) {
    MailLane* lane = l_->mail_lane(me, src);
    const std::int32_t count = lane->count.load(std::memory_order_relaxed);
    const std::int32_t head = lane->head.load(std::memory_order_relaxed);
    for (std::int32_t i = 0; i < count; ++i) {
      out->push_back(deserialize_package(
          l_->mail_slot(me, src, (head + i) % l_->lane_cap)));
    }
    lane->head.store(0, std::memory_order_relaxed);
    lane->count.store(0, std::memory_order_relaxed);
  }
  mh->pending.store(0, std::memory_order_relaxed);
  ShmSpinLock::release(mh->lock);
}

std::int64_t ShmTransport::mailbox_occupancy(ProcId me) {
  std::int64_t total = 0;
  for (std::int32_t src = 0; src < l_->p; ++src) {
    total += l_->mail_lane(me, src)->count.load(std::memory_order_relaxed);
  }
  return total;
}

void ShmTransport::push_nack(ProcId dest, const NackRequest& n) {
  NackDstHeader* nh = l_->nack_dst(dest);
  if (!ShmSpinLock::acquire(nh->lock, l_->hdr->abort)) return;
  const std::int32_t count = nh->count.load(std::memory_order_relaxed);
  if (count < kNackCap) {
    l_->nack_slots(dest)[count] = n;
    nh->count.store(count + 1, std::memory_order_relaxed);
    ShmSpinLock::release(nh->lock);
    nh->pending.fetch_add(1, std::memory_order_release);
  } else {
    // Full ring: drop — the requester's next expired deadline re-sends.
    ShmSpinLock::release(nh->lock);
    RAPID_WARN("shm transport: NACK ring for p" << dest
               << " full; dropping re-request from p" << n.requester);
  }
}

bool ShmTransport::nacks_pending(ProcId me) const {
  return l_->nack_dst(me)->pending.load(std::memory_order_acquire) > 0;
}

void ShmTransport::drain_nacks(ProcId me, std::vector<NackRequest>* out) {
  NackDstHeader* nh = l_->nack_dst(me);
  if (!ShmSpinLock::acquire(nh->lock, l_->hdr->abort)) return;
  const std::int32_t count = nh->count.load(std::memory_order_relaxed);
  const NackRequest* slots = l_->nack_slots(me);
  out->insert(out->end(), slots, slots + count);
  nh->count.store(0, std::memory_order_relaxed);
  ShmSpinLock::release(nh->lock);
  nh->pending.store(0, std::memory_order_release);
}

Bell& ShmTransport::data_bell() { return *data_bell_; }
Bell& ShmTransport::control_bell() { return *control_bell_; }

void ShmTransport::request_abort() {
  l_->hdr->abort.store(1, std::memory_order_release);
}

bool ShmTransport::aborted() const {
  return l_->hdr->abort.load(std::memory_order_acquire) != 0;
}

std::int32_t ShmTransport::note_quiescent(ProcId) {
  return l_->hdr->quiescent.fetch_add(1, std::memory_order_acq_rel) + 1;
}

std::int32_t ShmTransport::quiescent_count() const {
  return l_->hdr->quiescent.load(std::memory_order_acquire);
}

void ShmTransport::report_failure(ProcId q, FailureKind kind,
                                  const std::string& text) {
  const std::int32_t slot = (q >= 0 && q < l_->p) ? q : l_->p;
  ShmRankCtl& c = l_->ctl[slot];
  // First writer per slot wins; a second failure on the same rank keeps
  // the original (matches the in-proc dedup by kind/first-text).
  if (c.has_error.load(std::memory_order_acquire) == 0) {
    std::strncpy(c.error_text, text.c_str(), sizeof(c.error_text) - 1);
    c.error_text[sizeof(c.error_text) - 1] = '\0';
    c.error_kind.store(static_cast<std::uint8_t>(kind),
                       std::memory_order_relaxed);
    c.has_error.store(1, std::memory_order_release);
  }
  std::int32_t expected = -1;
  l_->hdr->first_error_rank.compare_exchange_strong(
      expected, slot, std::memory_order_acq_rel);
}

bool ShmTransport::any_failure() const {
  return l_->hdr->first_error_rank.load(std::memory_order_acquire) != -1;
}

FailureKind ShmTransport::first_failure_kind() const {
  const std::int32_t slot =
      l_->hdr->first_error_rank.load(std::memory_order_acquire);
  if (slot < 0) return FailureKind::kNone;
  return static_cast<FailureKind>(
      l_->ctl[slot].error_kind.load(std::memory_order_acquire));
}

std::vector<std::string> ShmTransport::failure_texts() const {
  std::vector<std::string> out;
  const std::int32_t first =
      l_->hdr->first_error_rank.load(std::memory_order_acquire);
  if (first < 0) return out;
  auto append = [&](std::int32_t slot) {
    const ShmRankCtl& c = l_->ctl[slot];
    if (c.has_error.load(std::memory_order_acquire) != 0) {
      out.emplace_back(c.error_text,
                       strnlen(c.error_text, sizeof(c.error_text)));
    }
  };
  append(first);
  for (std::int32_t slot = 0; slot <= l_->p; ++slot) {
    if (slot != first) append(slot);
  }
  return out;
}

void ShmTransport::beat(ProcId q, std::uint8_t state, std::int32_t pos) {
  ShmRankCtl& c = l_->ctl[q];
  c.pos.store(pos, std::memory_order_relaxed);
  c.state.store(state, std::memory_order_release);
  c.lease_ns.store(now_ns(), std::memory_order_release);
}

void ShmTransport::beat_wait(ProcId q, DataId object, std::int32_t version,
                             TaskId flag, ProcId map_dest,
                             std::int32_t retry_attempts, bool exhausted) {
  ShmRankCtl& c = l_->ctl[q];
  c.wait_obj.store(object, std::memory_order_relaxed);
  c.wait_ver.store(version, std::memory_order_relaxed);
  c.wait_flag.store(flag, std::memory_order_relaxed);
  c.wait_map_dest.store(map_dest, std::memory_order_relaxed);
  c.wait_retries.store(retry_attempts, std::memory_order_relaxed);
  c.wait_exhausted.store(exhausted ? 1 : 0, std::memory_order_release);
  c.lease_ns.store(now_ns(), std::memory_order_release);
}

LightState ShmTransport::light(ProcId q) const {
  const ShmRankCtl& c = l_->ctl[q];
  LightState s;
  s.state = c.state.load(std::memory_order_acquire);
  s.pos = c.pos.load(std::memory_order_acquire);
  s.lease_ns = c.lease_ns.load(std::memory_order_acquire);
  s.waiting_object = c.wait_obj.load(std::memory_order_acquire);
  s.waiting_version = c.wait_ver.load(std::memory_order_acquire);
  s.waiting_flag = c.wait_flag.load(std::memory_order_acquire);
  s.map_dest = c.wait_map_dest.load(std::memory_order_acquire);
  s.retry_attempts = c.wait_retries.load(std::memory_order_acquire);
  s.retries_exhausted =
      c.wait_exhausted.load(std::memory_order_acquire) != 0;
  return s;
}

void ShmTransport::publish_worker_done(
    ProcId q, const std::int64_t (&counters)[kNumShmCounters]) {
  ShmRankCtl& c = l_->ctl[q];
  for (std::int32_t i = 0; i < kNumShmCounters; ++i) {
    c.counters[i].store(counters[i], std::memory_order_relaxed);
  }
  c.done.store(1, std::memory_order_release);
}

bool ShmTransport::worker_done(ProcId q) const {
  return l_->ctl[q].done.load(std::memory_order_acquire) != 0;
}

std::int64_t ShmTransport::worker_counter(ProcId q, ShmCounter which) const {
  return l_->ctl[q].counters[which].load(std::memory_order_acquire);
}

void ShmTransport::publish_recovery(ProcId q, std::int64_t nacks_sent,
                                    std::int64_t resends) {
  ShmRankCtl& c = l_->ctl[q];
  c.live_nacks.store(nacks_sent, std::memory_order_relaxed);
  c.live_resends.store(resends, std::memory_order_relaxed);
}

std::int64_t ShmTransport::live_nacks(ProcId q) const {
  return l_->ctl[q].live_nacks.load(std::memory_order_relaxed);
}

std::int64_t ShmTransport::live_resends(ProcId q) const {
  return l_->ctl[q].live_resends.load(std::memory_order_relaxed);
}

double ShmTransport::lease_age_seconds(ProcId q) const {
  const std::int64_t lease =
      l_->ctl[q].lease_ns.load(std::memory_order_acquire);
  if (lease == 0) return 1e18;  // never beat
  return static_cast<double>(now_ns() - lease) * 1e-9;
}

bool ShmTransport::rank_failed(ProcId q) const {
  return l_->ctl[q].has_error.load(std::memory_order_acquire) != 0;
}

FailureKind ShmTransport::rank_failure_kind(ProcId q) const {
  return static_cast<FailureKind>(
      l_->ctl[q].error_kind.load(std::memory_order_acquire));
}

std::string ShmTransport::rank_failure_text(ProcId q) const {
  const ShmRankCtl& c = l_->ctl[q];
  return std::string(c.error_text, strnlen(c.error_text, sizeof(c.error_text)));
}

// ---------------------------------------------------------------------------
// ShmSession

namespace {
std::string fresh_segment_name() {
  static std::atomic<std::uint32_t> counter{0};
  return cat("/rapid-", static_cast<std::int64_t>(::getpid()), "-",
             counter.fetch_add(1, std::memory_order_relaxed), "-",
             now_ns() & 0xffffff);
}
}  // namespace

ShmSession::ShmSession(std::unique_ptr<ShmTransport> tp) : tp_(std::move(tp)) {
  children_.resize(static_cast<std::size_t>(tp_->num_procs()));
  detail::shm_health_register(this);
}

std::unique_ptr<ShmSession> ShmSession::create(const ShmTransport::Dims& dims,
                                               const ShmRunSpec& spec) {
  return std::unique_ptr<ShmSession>(
      new ShmSession(ShmTransport::create(fresh_segment_name(), dims, spec)));
}

ShmSession::~ShmSession() {
  // Unregister before tearing anything down so the telemetry sampler can
  // never observe a half-destroyed session.
  detail::shm_health_unregister(this);
  kill_all(SIGKILL);
  wait_all(10.0);
}

void ShmSession::spawn_fork(const WorkerFn& fn) {
  const std::int32_t p = tp_->num_procs();
  for (std::int32_t q = 0; q < p; ++q) {
    const pid_t pid = ::fork();
    RAPID_CHECK(pid >= 0, cat("shm session: fork failed: ", std::strerror(errno)));
    if (pid == 0) {
      // Child: become rank q and never return through the caller's stack.
      tp_->set_local_rank(q);
      int rc = kShmWorkerFailed;
      try {
        rc = fn(q);
      } catch (...) {
        rc = kShmWorkerFailed;
      }
      ::_exit(rc & 0xff);
    }
    children_[static_cast<std::size_t>(q)].pid = pid;
  }
}

void ShmSession::spawn_exec(const std::string& worker_path) {
  const std::int32_t p = tp_->num_procs();
  const std::string seg_arg = cat("--segment=", tp_->segment_name());
  for (std::int32_t q = 0; q < p; ++q) {
    const std::string rank_arg = cat("--rank=", q);
    const pid_t pid = ::fork();
    RAPID_CHECK(pid >= 0, cat("shm session: fork failed: ", std::strerror(errno)));
    if (pid == 0) {
      char* argv[] = {const_cast<char*>(worker_path.c_str()),
                      const_cast<char*>(seg_arg.c_str()),
                      const_cast<char*>(rank_arg.c_str()), nullptr};
      ::execv(worker_path.c_str(), argv);
      ::_exit(127);
    }
    children_[static_cast<std::size_t>(q)].pid = pid;
  }
}

bool ShmSession::poll() {
  bool any = false;
  for (Child& c : children_) {
    if (c.pid < 0 || c.exited) continue;
    int st = 0;
    const pid_t r = ::waitpid(c.pid, &st, WNOHANG);
    if (r == c.pid) {
      c.exited = true;
      any = true;
      if (WIFEXITED(st)) {
        c.exit_code = WEXITSTATUS(st);
      } else if (WIFSIGNALED(st)) {
        c.signal = WTERMSIG(st);
      }
    } else if (r < 0 && errno == ECHILD) {
      // Reaped elsewhere (shouldn't happen); treat as an unexplained exit.
      c.exited = true;
      c.exit_code = -1;
      any = true;
    }
  }
  return any;
}

bool ShmSession::all_exited() const {
  for (const Child& c : children_) {
    if (c.pid >= 0 && !c.exited) return false;
  }
  return true;
}

void ShmSession::kill_all(int sig) {
  for (Child& c : children_) {
    if (c.pid >= 0 && !c.exited) ::kill(c.pid, sig);
  }
}

bool ShmSession::wait_all(double timeout_seconds) {
  const std::int64_t deadline =
      sat_add_i64(now_ns(), static_cast<std::int64_t>(timeout_seconds * 1e9));
  for (;;) {
    poll();
    if (all_exited()) return true;
    if (now_ns() >= deadline) return false;
    ::usleep(1000);
  }
}

}  // namespace rapid::rt
