#include "rapid/rt/map_engine.hpp"

#include <algorithm>

#include "rapid/support/checksum.hpp"
#include "rapid/support/str.hpp"

namespace rapid::rt {

std::uint32_t AddrPackage::checksum() const {
  std::uint32_t crc32 = crc32c_u64(static_cast<std::uint64_t>(reader), 0);
  crc32 = crc32c_u64(seq, crc32);
  for (const auto& [d, offset] : entries) {
    crc32 = crc32c_u64(static_cast<std::uint64_t>(d), crc32);
    crc32 = crc32c_u64(static_cast<std::uint64_t>(offset), crc32);
  }
  return crc32;
}

mem::SlabConfig ProcMemory::derive_slab_config(const RunPlan& plan,
                                               ProcId proc,
                                               std::int64_t alignment) {
  // Histogram of rounded volatile sizes — the population the MAP procedure
  // allocates and frees. std::map keeps the walk deterministic.
  std::map<std::int64_t, std::int64_t> counts;
  for (const auto& vol : plan.procs[proc].volatiles) {
    std::int64_t size = vol.size_bytes;
    if (size == 0) size = 1;
    const std::int64_t r = (size + alignment - 1) / alignment * alignment;
    ++counts[r];
  }
  // Dominant classes only: a class must amortize its cache over at least a
  // few objects, and more than 8 classes stops being a fast path.
  std::vector<std::pair<std::int64_t, std::int64_t>> ranked;  // (count, size)
  for (const auto& [size, count] : counts) {
    if (count >= 4) ranked.emplace_back(count, size);
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;  // most objects first
    return a.second < b.second;                        // then smallest size
  });
  if (ranked.size() > 8) ranked.resize(8);
  mem::SlabConfig slab;
  for (const auto& [count, size] : ranked) slab.class_sizes.push_back(size);
  std::sort(slab.class_sizes.begin(), slab.class_sizes.end());
  return slab;
}

ProcMemory::ProcMemory(const RunPlan& plan, ProcId proc, std::int64_t capacity,
                       std::int64_t alignment, mem::AllocPolicy policy,
                       bool slab_arena)
    : plan_(plan),
      proc_(proc),
      arena_(capacity, alignment, policy,
             slab_arena ? derive_slab_config(plan, proc, alignment)
                        : mem::SlabConfig{}) {
  const ProcPlan& pp = plan.procs[proc];
  for (DataId d : pp.permanents) {
    const mem::Offset off = arena_.allocate(plan.graph->data(d).size_bytes);
    if (off == mem::kNullOffset) {
      throw NonExecutableError(
          cat("processor ", proc_, ": permanent objects (",
              pp.permanent_bytes, " bytes) exceed capacity ", capacity));
    }
    offsets_.emplace(d, off);
  }
  vol_state_.assign(pp.volatiles.size(), VolState::kUnallocated);
  for (std::size_t i = 0; i < pp.volatiles.size(); ++i) {
    vol_index_.emplace(pp.volatiles[i].object, static_cast<std::int32_t>(i));
  }
}

bool ProcMemory::needs_map(std::int32_t pos) const {
  return pos < static_cast<std::int32_t>(plan_.procs[proc_].order.size()) &&
         pos >= alloc_upto_;
}

MapResult ProcMemory::perform_map(std::int32_t pos) {
  const ProcPlan& pp = plan_.procs[proc_];
  MapResult result;

  // 1. Free every volatile object whose last access precedes `pos`. The
  // dead points were computed statically by the liveness analysis; freed
  // objects are never reallocated (the "allocated once" rule, §3.2).
  for (auto it = allocated_by_last_pos_.begin();
       it != allocated_by_last_pos_.end() && it->first < pos;) {
    const DataId d = it->second;
    const mem::Offset off = offsets_.at(d);
    arena_.deallocate(off);
    offsets_.erase(d);
    vol_state_[vol_index_.at(d)] = VolState::kFreed;
    // Hook runs with the object fully dead (deallocated + unmapped) and
    // strictly before the allocation phase below can reuse the region.
    if (free_hook_) free_hook_(d, off, plan_.graph->data(d).size_bytes);
    result.freed.push_back(d);
    it = allocated_by_last_pos_.erase(it);
  }

  // 2. Allocate forward along the execution chain.
  RAPID_CHECK(alloc_upto_ <= pos, "MAP ran behind the allocated prefix");
  std::int32_t k = pos;
  const auto n = static_cast<std::int32_t>(pp.order.size());
  for (; k < n; ++k) {
    const TaskRuntimePlan& tp = plan_.tasks[pp.order[k]];
    std::vector<DataId> just_allocated;
    bool fits = true;
    for (DataId d : tp.volatile_accesses) {
      const std::int32_t vi = vol_index_.at(d);
      if (vol_state_[vi] == VolState::kAllocated) continue;
      RAPID_CHECK(vol_state_[vi] == VolState::kUnallocated,
                  cat("volatile ", plan_.graph->data(d).name,
                      " accessed after its dead point"));
      const mem::Offset off =
          arena_.allocate(plan_.graph->data(d).size_bytes);
      if (off == mem::kNullOffset) {
        fits = false;
        break;
      }
      offsets_.emplace(d, off);
      vol_state_[vi] = VolState::kAllocated;
      just_allocated.push_back(d);
    }
    if (!fits) {
      // Roll back this task's partial allocations; the next MAP sits right
      // before it.
      for (DataId d : just_allocated) {
        arena_.deallocate(offsets_.at(d));
        offsets_.erase(d);
        vol_state_[vol_index_.at(d)] = VolState::kUnallocated;
      }
      break;
    }
    for (DataId d : just_allocated) {
      allocated_by_last_pos_.emplace(
          pp.volatiles[vol_index_.at(d)].last_pos, d);
      result.allocated.push_back(d);
    }
  }
  if (k == pos) {
    throw NonExecutableError(
        cat("processor ", proc_, ": cannot allocate volatile inputs of task ",
            plan_.graph->task(pp.order[pos]).name, " at position ", pos,
            " even after freeing all dead objects (capacity ",
            arena_.capacity(), " bytes)"));
  }
  alloc_upto_ = k;
  result.alloc_upto = k;

  // 3. Assemble address packages, one per owner processor.
  std::map<ProcId, AddrPackage> by_owner;
  for (DataId d : result.allocated) {
    const ProcId owner = plan_.graph->data(d).owner;
    AddrPackage& pkg = by_owner[owner];
    pkg.reader = proc_;
    pkg.entries.emplace_back(d, offsets_.at(d));
  }
  for (auto& [owner, pkg] : by_owner) {
    result.packages.emplace_back(owner, std::move(pkg));
  }
  return result;
}

void ProcMemory::preallocate_all() {
  const ProcPlan& pp = plan_.procs[proc_];
  for (std::size_t i = 0; i < pp.volatiles.size(); ++i) {
    const DataId d = pp.volatiles[i].object;
    const mem::Offset off = arena_.allocate(plan_.graph->data(d).size_bytes);
    if (off == mem::kNullOffset) {
      throw NonExecutableError(
          cat("processor ", proc_, ": preallocated volatile space does not "
              "fit in capacity ", arena_.capacity(), " bytes"));
    }
    offsets_.emplace(d, off);
    vol_state_[i] = VolState::kAllocated;
  }
  alloc_upto_ = static_cast<std::int32_t>(pp.order.size());
}

mem::Offset ProcMemory::offset_of(DataId d) const {
  const auto it = offsets_.find(d);
  RAPID_CHECK(it != offsets_.end(),
              cat("object ", plan_.graph->data(d).name,
                  " is not live on processor ", proc_));
  return it->second;
}

bool ProcMemory::is_allocated(DataId d) const {
  return offsets_.count(d) != 0;
}

}  // namespace rapid::rt
