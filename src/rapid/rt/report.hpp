// Run configuration and result reporting shared by both executors.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "rapid/machine/params.hpp"
#include "rapid/mem/arena.hpp"
#include "rapid/support/check.hpp"
#include "rapid/support/json.hpp"

namespace rapid::obs {
struct MetricsSummary;  // obs/metrics.hpp — trace-derived metrics
}

namespace rapid::rt {

struct StallReport;  // rt/stall.hpp — full diagnosis of a stalled run
struct ProcFailureReport;  // rt/proc_failure.hpp — dead-rank diagnosis

/// Thrown when a schedule cannot execute under the configured capacity
/// (paper Def. 6: MIN_MEM exceeds the per-processor memory). The bench
/// harnesses render this as the paper's "∞" entries.
class NonExecutableError : public Error {
 public:
  using Error::Error;
};

/// Thrown when the protocol stops making progress. Theorem 1 says this
/// never happens for dependence-complete graphs; hitting it indicates a bug
/// (or a deliberately broken protocol in the fault-injection tests). The
/// threaded executor attaches the stall monitor's structured diagnosis —
/// per-processor protocol states and the wait-for cycle — when it has one.
class ProtocolDeadlockError : public Error {
 public:
  explicit ProtocolDeadlockError(
      std::string what, std::shared_ptr<const StallReport> report = nullptr)
      : Error(std::move(what)), report_(std::move(report)) {}

  /// The structured stall diagnosis, or nullptr (simulator deadlocks and
  /// legacy paths carry text only).
  const StallReport* report() const { return report_.get(); }

 private:
  std::shared_ptr<const StallReport> report_;
};

/// Thrown by the threaded executor when one or more task bodies failed (a
/// real exception or an injected fault) and the run was cooperatively
/// cancelled. Carries every per-processor failure, not just the first.
class ExecutionFailedError : public Error {
 public:
  ExecutionFailedError(std::string what, std::vector<std::string> errors)
      : Error(std::move(what)), errors_(std::move(errors)) {}

  const std::vector<std::string>& errors() const { return errors_; }

 private:
  std::vector<std::string> errors_;
};

/// How a run ended, recorded in RunReport (and implied by the exception
/// type for the throwing dispositions).
enum class FailureKind : std::uint8_t {
  kNone,           // clean completion
  kNonExecutable,  // capacity failure (RunReport::executable == false)
  kTaskError,      // a task body threw
  kInjectedFault,  // a FaultPlan-induced failure fired
  kDeadlock,       // stall monitor proved a wait-for cycle
  kWatchdog,       // no progress for watchdog_seconds, no cycle proven
  kIntegrity,      // checksum mismatch detected with recovery disabled
  kRetriesExhausted,  // a waiter's bounded re-requests ran out
  kProcFailure,    // a worker process died (signal, crash, or lease lapse)
  kCancelled,      // cooperative cancellation (deadline lapse or cancel())
};

const char* to_string(FailureKind kind);

struct RunReport;  // defined below

/// Thrown when a run was cooperatively cancelled — its per-attempt deadline
/// (ThreadedOptions::attempt_deadline_us) lapsed, or an external
/// ThreadedExecutor::cancel() landed. Cancellation is not a fault: the
/// abort rides the same control plane as failure handling, every worker
/// unwinds at its next protocol step, the arena is reclaimed with the
/// executor, and the partial counters survive in last_report(). Carries a
/// copy of that partial report so service-level callers can return it
/// without keeping the executor alive. run_with_recovery never restarts a
/// cancelled run (a lapsed deadline only lapses further on a restart).
class RunCancelledError : public Error {
 public:
  explicit RunCancelledError(std::string what,
                             std::shared_ptr<const RunReport> partial = {})
      : Error(std::move(what)), partial_(std::move(partial)) {}

  /// The cancelled attempt's partial RunReport (null on legacy paths).
  const std::shared_ptr<const RunReport>& partial() const { return partial_; }

 private:
  std::shared_ptr<const RunReport> partial_;
};

/// What the self-healing layer did during a run (all zero on a clean run
/// with no faults). run_with_recovery() merges these across restart
/// attempts into the final report.
struct RecoveryCounters {
  std::int64_t nacks_sent = 0;       // re-requests issued by waiters
  std::int64_t resends = 0;          // content puts retransmitted by owners
  std::int64_t flag_resends = 0;     // completion flags retransmitted
  std::int64_t duplicate_suppressions = 0;  // replayed packages/NACKs ignored
  std::int64_t checksum_rejections = 0;     // payloads/packages failing CRC
  std::int64_t task_retries = 0;            // transient task re-executions
  /// 1-based count of run() attempts merged into this report (run-level
  /// restart); 1 means the first attempt succeeded.
  std::int32_t run_attempts = 1;

  /// Sums the event counters of a failed earlier attempt into this one
  /// (run_attempts is set by the caller, not summed).
  void merge(const RecoveryCounters& other);
};

struct RunConfig {
  /// Memory available on each processor for data objects (bytes).
  std::int64_t capacity_per_proc = 0;
  /// true: the paper's active memory management (MAPs, address packages,
  /// recycling). false: the original-RAPID baseline — all volatile space
  /// preallocated, all addresses known at start, no management overhead.
  bool active_memory = true;
  /// Cost model for the simulator (the threaded executor measures
  /// wall-clock instead).
  machine::MachineParams params;
  /// Volatile-space placement policy. Best-fit shrinks the fragmentation
  /// margin above MIN_MEM that mixed-size workloads need (the "special
  /// memory allocator" question from the paper's §6).
  mem::AllocPolicy alloc_policy = mem::AllocPolicy::kFirstFit;
  /// Address-package slots per (source, destination) pair. The paper's
  /// design is 1 ("we will not support address buffering in order to avoid
  /// the overhead of buffer managing"); larger values let a MAP finish
  /// without waiting for slow consumers — an ablatable design choice.
  std::int32_t mailbox_slots = 1;
  /// Run the static plan auditor (rapid::verify) before executing. Capacity
  /// findings surface as NonExecutableError (so RunReport::executable stays
  /// the "∞" channel); protocol-level findings throw verify::AuditError.
  bool audit = false;
  /// Enable the arena's size-class slab fast path (classes derived from the
  /// plan's per-processor volatile sizes; see ProcMemory). Placement can
  /// differ from the plain coalescing arena, so conformance/audit replays
  /// must be constructed with the same flag; byte accounting is identical.
  bool slab_arena = false;
  /// Kernel dispatch level for this run's task bodies (num::KernelLevel as
  /// an int: 0 auto, 1 ref, 2 blocked; negative — the default — inherits
  /// the process-global num::kernel_level()). Worker threads install it as
  /// a thread-local override, so concurrent service runs with different
  /// levels coexist in one process without clobbering each other.
  std::int32_t kernel_dispatch = -1;
};

struct RunReport {
  /// Version of the to_json() document layout. Bumped when fields are
  /// added/renamed so downstream consumers of BENCH_executor.json and the
  /// CI report artifacts can detect what they are reading. Version 2 added
  /// the optional "metrics" block (trace-derived histograms/residencies);
  /// version 3 added "put_batches" (coalesced RMA put rounds); version 4
  /// added "transport" (inproc|shm backend) and the optional
  /// "proc_failure" block (dead-rank diagnosis of a multi-process run);
  /// version 5 added "run_id" (service-assigned, omitted when unset) and
  /// "attempt_deadline_us" (the per-attempt cancellation deadline in force,
  /// 0 = none).
  static constexpr std::int32_t kSchemaVersion = 5;

  bool executable = true;
  /// Service-assigned run id mirrored from ThreadedOptions::run_id
  /// (negative = not a service run; omitted from to_json()).
  std::int64_t run_id = -1;
  /// The per-attempt cancellation deadline that was in force
  /// (ThreadedOptions::attempt_deadline_us; 0 = none) — post-hoc timeout
  /// diagnosis needs to know the budget, not just that it lapsed.
  std::int64_t attempt_deadline_us = 0;
  /// Why the run was not executable (empty when executable).
  std::string failure;
  /// Failure disposition. kNone on success; kNonExecutable pairs with
  /// executable == false; the throwing kinds are filled in on the report
  /// the executor keeps internally and mirrored into the exception.
  FailureKind failure_kind = FailureKind::kNone;
  /// Every captured per-processor failure (a multi-thread failure is not
  /// masked by whichever thread lost the race to report first).
  std::vector<std::string> errors;

  /// Which transport backend ran the data plane ("inproc" threads or "shm"
  /// worker processes) — the bench guard rows record it.
  std::string transport = "inproc";
  /// Structured diagnosis of a dead worker process (failure_kind ==
  /// kProcFailure); null otherwise. Mirrored into ProcFailureError.
  std::shared_ptr<const ProcFailureReport> proc_failure;

  /// Modeled (simulator) or measured (threaded) parallel time, µs.
  double parallel_time_us = 0.0;

  std::vector<std::int32_t> maps_per_proc;
  std::vector<std::int64_t> peak_bytes_per_proc;

  std::int64_t content_messages = 0;
  std::int64_t content_bytes = 0;
  /// Coalesced put rounds: each batch covers >= 1 content_messages to one
  /// destination with a single staging pass + doorbell ring, so
  /// content_messages / put_batches is the average coalescing factor.
  std::int64_t put_batches = 0;
  std::int64_t flag_messages = 0;
  std::int64_t addr_packages = 0;
  std::int64_t addr_entries = 0;
  std::int64_t suspended_sends = 0;  // sends that had to wait for an address
  std::int64_t tasks_executed = 0;

  /// Self-healing activity (threaded executor only).
  RecoveryCounters recovery;

  /// Trace-derived metrics (state residencies, wait/put/MAP histograms,
  /// heap high-water marks). Null unless the run was traced
  /// (ThreadedOptions::trace / simulate()'s trace argument).
  std::shared_ptr<const obs::MetricsSummary> metrics;

  /// Simulator-only time breakdown, summed across processors (µs): task
  /// execution, sender-side message occupancy, and MAP/address machinery.
  /// parallel_time_us × p − (sum of these) is idle/blocked time.
  double compute_us = 0.0;
  double send_us = 0.0;
  double map_us = 0.0;

  double avg_maps() const;
  std::int64_t peak_bytes() const;
  /// Fraction of total processor-time spent idle or blocked (simulator).
  double idle_fraction() const;
  /// CI-artifact form: every counter, the recovery block, and the failure
  /// disposition.
  JsonValue to_json() const;
};

}  // namespace rapid::rt
