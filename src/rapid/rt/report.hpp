// Run configuration and result reporting shared by both executors.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rapid/machine/params.hpp"
#include "rapid/mem/arena.hpp"
#include "rapid/support/check.hpp"

namespace rapid::rt {

/// Thrown when a schedule cannot execute under the configured capacity
/// (paper Def. 6: MIN_MEM exceeds the per-processor memory). The bench
/// harnesses render this as the paper's "∞" entries.
class NonExecutableError : public Error {
 public:
  using Error::Error;
};

/// Thrown when the protocol stops making progress. Theorem 1 says this
/// never happens for dependence-complete graphs; hitting it indicates a bug
/// (or a deliberately broken protocol in the fault-injection tests).
class ProtocolDeadlockError : public Error {
 public:
  using Error::Error;
};

struct RunConfig {
  /// Memory available on each processor for data objects (bytes).
  std::int64_t capacity_per_proc = 0;
  /// true: the paper's active memory management (MAPs, address packages,
  /// recycling). false: the original-RAPID baseline — all volatile space
  /// preallocated, all addresses known at start, no management overhead.
  bool active_memory = true;
  /// Cost model for the simulator (the threaded executor measures
  /// wall-clock instead).
  machine::MachineParams params;
  /// Volatile-space placement policy. Best-fit shrinks the fragmentation
  /// margin above MIN_MEM that mixed-size workloads need (the "special
  /// memory allocator" question from the paper's §6).
  mem::AllocPolicy alloc_policy = mem::AllocPolicy::kFirstFit;
  /// Address-package slots per (source, destination) pair. The paper's
  /// design is 1 ("we will not support address buffering in order to avoid
  /// the overhead of buffer managing"); larger values let a MAP finish
  /// without waiting for slow consumers — an ablatable design choice.
  std::int32_t mailbox_slots = 1;
  /// Run the static plan auditor (rapid::verify) before executing. Capacity
  /// findings surface as NonExecutableError (so RunReport::executable stays
  /// the "∞" channel); protocol-level findings throw verify::AuditError.
  bool audit = false;
};

struct RunReport {
  bool executable = true;
  /// Why the run was not executable (empty when executable).
  std::string failure;

  /// Modeled (simulator) or measured (threaded) parallel time, µs.
  double parallel_time_us = 0.0;

  std::vector<std::int32_t> maps_per_proc;
  std::vector<std::int64_t> peak_bytes_per_proc;

  std::int64_t content_messages = 0;
  std::int64_t content_bytes = 0;
  std::int64_t flag_messages = 0;
  std::int64_t addr_packages = 0;
  std::int64_t addr_entries = 0;
  std::int64_t suspended_sends = 0;  // sends that had to wait for an address
  std::int64_t tasks_executed = 0;

  /// Simulator-only time breakdown, summed across processors (µs): task
  /// execution, sender-side message occupancy, and MAP/address machinery.
  /// parallel_time_us × p − (sum of these) is idle/blocked time.
  double compute_us = 0.0;
  double send_us = 0.0;
  double map_us = 0.0;

  double avg_maps() const;
  std::int64_t peak_bytes() const;
  /// Fraction of total processor-time spent idle or blocked (simulator).
  double idle_fraction() const;
};

}  // namespace rapid::rt
