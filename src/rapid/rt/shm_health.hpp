// Cross-process transport health for the telemetry plane. Every live
// ShmSession self-registers (shm_transport.hpp detail hooks); this module
// reads each session's control segment — per-rank heartbeat leases and the
// live recovery mirrors — and publishes them as registry gauges/counters.
// Everything read here is a lock-free atomic in the mmap'd segment, so
// sampling never touches the session's own threads, children, or waitpid
// state; that is what makes metrics aggregate *across processes*.
#pragma once

#include "rapid/obs/telemetry.hpp"

namespace rapid::rt {

/// Number of coordinator-side shm sessions currently alive in this
/// process.
int shm_health_active_sessions();

/// Sample every active session into `reg`:
///   rapid_shm_sessions                      gauge   active sessions
///   rapid_rank_heartbeat_age_seconds{rank}  gauge   max lease age across
///                                                   sessions (clamped)
///   rapid_rank_alive{rank}                  gauge   1 = some session's
///                                                   rank beats within its
///                                                   lease timeout
///   rapid_rank_nacks_total{rank}            counter accumulated NACKs
///   rapid_rank_resends_total{rank}          counter accumulated resends
/// Counter totals accumulate deltas across sessions (each session's live
/// mirrors reset at session start), so they stay monotone service-wide.
void sample_shm_health(obs::MetricsRegistry& reg);

}  // namespace rapid::rt
