#include "rapid/rt/faults.hpp"

#include "rapid/support/str.hpp"

namespace rapid::rt {

namespace {

/// splitmix64 finalizer: the same mixer Rng uses for seeding, applied as a
/// stateless hash so concurrent sites never contend on generator state.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t mix3(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                   std::uint64_t c) {
  return mix(mix(mix(mix(seed) ^ a) ^ b) ^ c);
}

/// Bernoulli(prob) then uniform [1, max_us]; one 64-bit draw feeds both so
/// a site's outcome is a single hash evaluation.
std::int64_t draw_delay(std::uint64_t h, double prob, std::int64_t max_us) {
  if (max_us <= 0 || prob <= 0.0) return 0;
  const double u =
      static_cast<double>(h >> 11) * 0x1.0p-53;  // uniform in [0, 1)
  if (u >= prob) return 0;
  return 1 + static_cast<std::int64_t>(mix(h) %
                                       static_cast<std::uint64_t>(max_us));
}

}  // namespace

FaultPlan FaultPlan::address_delays(std::uint64_t seed) {
  FaultPlan p;
  p.seed = seed;
  p.addr_delay_prob = 0.6;
  p.addr_delay_max_us = 400;
  return p;
}

FaultPlan FaultPlan::put_delays(std::uint64_t seed) {
  FaultPlan p;
  p.seed = seed;
  p.put_delay_prob = 0.6;
  p.put_delay_max_us = 250;
  return p;
}

FaultPlan FaultPlan::slow_tasks(std::uint64_t seed) {
  FaultPlan p;
  p.seed = seed;
  p.task_slow_prob = 0.5;
  p.task_slow_max_us = 500;
  return p;
}

FaultPlan FaultPlan::forced_park_timeouts(std::uint64_t seed) {
  FaultPlan p;
  p.seed = seed;
  p.force_park_timeout = true;
  p.forced_park_timeout_us = 50;
  // A light task jitter keeps the timeout wakeups landing at varied protocol
  // points instead of only at the initial barrier.
  p.task_slow_prob = 0.25;
  p.task_slow_max_us = 120;
  return p;
}

FaultPlan FaultPlan::payload_corruption(std::uint64_t seed) {
  FaultPlan p;
  p.seed = seed;
  p.corrupt_prob = 0.5;
  p.corrupt_max_attempts = 1;  // resends deliver clean bytes
  return p;
}

FaultPlan FaultPlan::package_duplication(std::uint64_t seed) {
  FaultPlan p;
  p.seed = seed;
  p.dup_addr_prob = 0.6;
  // Light delivery jitter so duplicates land both before and after the
  // original has been consumed.
  p.addr_delay_prob = 0.3;
  p.addr_delay_max_us = 150;
  return p;
}

FaultPlan FaultPlan::preset(const std::string& name, std::uint64_t seed) {
  if (name == "addr") return address_delays(seed);
  if (name == "put") return put_delays(seed);
  if (name == "slow") return slow_tasks(seed);
  if (name == "park") return forced_park_timeouts(seed);
  if (name == "corrupt") return payload_corruption(seed);
  if (name == "dup") return package_duplication(seed);
  RAPID_FAIL(cat("unknown fault preset '", name,
                 "' (expected addr, put, slow, park, corrupt, or dup)"));
}

std::int64_t FaultPlan::addr_delay_us(graph::ProcId src, graph::ProcId dest,
                                      std::int64_t ordinal) const {
  return draw_delay(mix3(seed ^ 0xA11Aull, static_cast<std::uint64_t>(src),
                         static_cast<std::uint64_t>(dest),
                         static_cast<std::uint64_t>(ordinal)),
                    addr_delay_prob, addr_delay_max_us);
}

std::int64_t FaultPlan::put_delay_us(graph::DataId object,
                                     std::int32_t version,
                                     graph::ProcId dest) const {
  return draw_delay(mix3(seed ^ 0x9D7ull, static_cast<std::uint64_t>(object),
                         static_cast<std::uint64_t>(version),
                         static_cast<std::uint64_t>(dest)),
                    put_delay_prob, put_delay_max_us);
}

std::int64_t FaultPlan::task_delay_us(graph::TaskId task) const {
  return draw_delay(mix3(seed ^ 0x7A5Cull, static_cast<std::uint64_t>(task),
                         0, 0),
                    task_slow_prob, task_slow_max_us);
}

bool FaultPlan::corrupt_put(graph::DataId object, std::int32_t version,
                            graph::ProcId dest, std::uint32_t attempt) const {
  if (corrupt_prob <= 0.0 ||
      attempt > static_cast<std::uint32_t>(corrupt_max_attempts)) {
    return false;
  }
  const std::uint64_t h =
      mix3(seed ^ 0xC0DEull, static_cast<std::uint64_t>(object),
           static_cast<std::uint64_t>(version),
           static_cast<std::uint64_t>(dest));
  return static_cast<double>(h >> 11) * 0x1.0p-53 < corrupt_prob;
}

std::pair<std::uint64_t, std::uint8_t> FaultPlan::corrupt_site(
    graph::DataId object, std::int32_t version, graph::ProcId dest) const {
  const std::uint64_t h =
      mix(mix3(seed ^ 0xC0DEull, static_cast<std::uint64_t>(object),
               static_cast<std::uint64_t>(version),
               static_cast<std::uint64_t>(dest)));
  return {h >> 8, static_cast<std::uint8_t>(h | 1u)};  // mask never 0
}

bool FaultPlan::dup_addr_package(graph::ProcId src, graph::ProcId dest,
                                 std::int64_t ordinal) const {
  if (dup_addr_prob <= 0.0) return false;
  const std::uint64_t h =
      mix3(seed ^ 0xD0Dull, static_cast<std::uint64_t>(src),
           static_cast<std::uint64_t>(dest),
           static_cast<std::uint64_t>(ordinal));
  return static_cast<double>(h >> 11) * 0x1.0p-53 < dup_addr_prob;
}

}  // namespace rapid::rt
