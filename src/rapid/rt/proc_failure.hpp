// Structured diagnosis of a dead worker process in a multi-process (shm)
// run: which rank died, how the coordinator noticed (waitpid reaping vs
// lease lapse in the control segment), what protocol state the rank last
// published, and which survivors were left waiting on messages only the
// corpse could have sent. The coordinator fail-stops the run with this
// report instead of hanging; run_with_recovery treats the resulting
// ProcFailureError like any other failed attempt and restarts the run with
// a respawned rank.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rapid/graph/ids.hpp"
#include "rapid/support/check.hpp"
#include "rapid/support/json.hpp"

namespace rapid::rt {

using graph::DataId;
using graph::ProcId;
using graph::TaskId;

/// A survivor's wait that the dead rank can never satisfy: the content,
/// flag, or mailbox slot it was blocked on is owned by the corpse.
struct OrphanedWait {
  ProcId waiter = graph::kInvalidProc;
  /// Content wait: object + minimum version (object != kInvalidData).
  DataId object = graph::kInvalidData;
  std::int32_t version = -1;
  /// Flag wait: the uncompleted task whose flag was needed.
  TaskId flag_task = graph::kInvalidTask;
  /// MAP wait: the waiter was blocked sending an address package to the
  /// dead rank's mailbox.
  bool map_blocked = false;
};

struct ProcFailureReport {
  ProcId dead_rank = graph::kInvalidProc;
  /// Termination cause when reaped: the signal (SIGKILL, SIGSEGV, ...) or,
  /// for a plain exit, the unexpected exit code. signal == 0 means exit.
  std::int32_t signal = 0;
  std::int32_t exit_code = 0;
  /// "waitpid" (reaped by the coordinator) or "lease" (still running but
  /// its heartbeat lapsed — SIGSTOPped or livelocked; the coordinator
  /// kills it to make fail-stop true).
  std::string detected_by = "waitpid";
  double lease_age_seconds = 0.0;
  /// Last state/position the rank beat into its control slot.
  std::uint8_t state_at_death = 0;
  std::int32_t pos_at_death = 0;
  /// Survivors' waits targeting the dead rank at detection time.
  std::vector<OrphanedWait> orphaned;

  std::string summary() const;
  JsonValue to_json() const;
};

/// Thrown by the shm coordinator when a worker process dies. An Error, so
/// run_with_recovery's restart loop catches it like any failed attempt.
class ProcFailureError : public Error {
 public:
  ProcFailureError(std::string what,
                   std::shared_ptr<const ProcFailureReport> report)
      : Error(std::move(what)), report_(std::move(report)) {}

  const ProcFailureReport* report() const { return report_.get(); }
  std::shared_ptr<const ProcFailureReport> shared_report() const {
    return report_;
  }

 private:
  std::shared_ptr<const ProcFailureReport> report_;
};

}  // namespace rapid::rt
