// The cross-process transport backend: one OS process per paper-processor,
// every RMA window an mmap'd region of a single named POSIX shm segment,
// doorbells futex-backed, liveness a per-rank heartbeat lease in the
// control block. The layout is strictly offset-based (the segment maps at
// different addresses in every process); docs/TRANSPORT.md diagrams it.
//
//   [ ShmHeader         | magic, dims, run spec, bells, abort, quiescent ]
//   [ ShmRankCtl x p    | lease, state/pos, wait record, error, counters ]
//   [ heap windows x p  | capacity_per_proc bytes each                   ]
//   [ received_version  | p x num_data  atomic<int32>                    ]
//   [ received_crc      | p x num_data  atomic<uint32>                   ]
//   [ put_seq           | p x num_data  atomic<uint32>                   ]
//   [ flags             | p x num_tasks atomic<uint8>                    ]
//   [ mailboxes x p     | per-dest lock + per-src bounded package lanes  ]
//   [ NACK rings x p    | per-dest lock + bounded NackRequest ring       ]
//
// The coordinator (the process that called ThreadedExecutor::run) creates
// the segment, spawns workers (fork by default — the plan and task bodies
// are inherited — or exec of rapid_shm_worker, which rebuilds the workload
// from the spec string in the header), and monitors: waitpid reaping,
// lease lapses, the light status slots, and the global watchdog. Workers
// run the unchanged protocol loop against this transport and _exit with
// kShmWorkerClean / kShmWorkerAborted / kShmWorkerFailed.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <sys/types.h>

#include "rapid/rt/faults.hpp"
#include "rapid/rt/threaded_executor.hpp"
#include "rapid/rt/transport.hpp"
#include "rapid/support/shm.hpp"

namespace rapid::rt {

/// Worker-process exit codes (anything else — or a signal — is a process
/// failure the coordinator reports as ProcFailureReport).
inline constexpr int kShmWorkerClean = 0;
/// The worker saw the abort flag (a peer or the coordinator failed first)
/// and unwound cooperatively.
inline constexpr int kShmWorkerAborted = 20;
/// The worker hit its own failure; details are in its error slot.
inline constexpr int kShmWorkerFailed = 30;

/// POD run parameters the coordinator writes into the header so every
/// worker — forked or exec'd — executes under the exact same configuration
/// it planned with.
struct ShmRunSpec {
  // RunConfig scalars.
  std::int64_t capacity_per_proc = 0;
  std::uint8_t active_memory = 1;
  std::uint8_t alloc_policy = 0;  // mem::AllocPolicy
  std::uint8_t slab_arena = 0;
  std::int32_t mailbox_slots = 1;
  /// RunConfig::kernel_dispatch (-1 = inherit the process-global level).
  std::int32_t kernel_dispatch = -1;
  /// ThreadedOptions::run_id for worker log tags (-1 = standalone run).
  std::int64_t run_id = -1;
  // ThreadedOptions scalars.
  double watchdog_seconds = 30.0;
  double stall_check_seconds = 0.5;
  double snapshot_wait_seconds = 0.25;
  std::int32_t spin_iters = 64;
  std::int64_t park_timeout_us = 2000;
  std::uint8_t poison_freed = 0;
  std::uint8_t checksum = 1;
  RetryPolicy retry;
  std::int32_t run_attempt = 1;
  FaultPlan faults;
  double lease_timeout_seconds = 2.0;
  // Tracing: workers dump per-rank rings into trace_dir for the
  // coordinator to merge.
  std::uint8_t trace_enabled = 0;
  std::int32_t trace_events_per_proc = 1 << 16;
  char trace_dir[256] = {};
  // Exec mode: the workload spec rapid_shm_worker rebuilds the plan from,
  // and a fingerprint of the coordinator's plan so a divergent rebuild
  // fail-stops instead of corrupting memory.
  char workload_spec[256] = {};
  std::uint64_t plan_fingerprint = 0;
};
static_assert(std::is_trivially_copyable_v<ShmRunSpec>);

/// Per-rank end-of-run counter slots (ShmRankCtl::counters indices).
enum ShmCounter : std::int32_t {
  kCtrContentMessages = 0,
  kCtrContentBytes,
  kCtrPutBatches,
  kCtrFlagMessages,
  kCtrAddrPackages,
  kCtrAddrEntries,
  kCtrSuspendedSends,
  kCtrTasksExecuted,
  kCtrNacksSent,
  kCtrResends,
  kCtrFlagResends,
  kCtrDupSuppressions,
  kCtrChecksumRejections,
  kCtrTaskRetries,
  kCtrMaps,
  kCtrPeakBytes,
  kNumShmCounters,
};

/// Cheap fingerprint of a plan's shape (dims + schedule order), enough to
/// catch an exec-mode worker that rebuilt a different plan.
std::uint64_t plan_fingerprint(const RunPlan& plan);

class ShmTransport final : public Transport {
 public:
  struct Dims {
    std::int32_t num_procs = 0;
    std::int64_t num_data = 0;
    std::int64_t num_tasks = 0;
    std::int64_t heap_bytes = 0;  // per rank (capacity_per_proc)
  };

  /// Coordinator side: creates + initializes the segment. local rank -1.
  static std::unique_ptr<ShmTransport> create(const std::string& name,
                                              const Dims& dims,
                                              const ShmRunSpec& spec);
  /// Worker side (exec mode): maps an existing segment as `rank`.
  static std::unique_ptr<ShmTransport> attach(const std::string& name,
                                              ProcId rank);
  ~ShmTransport() override;

  /// Fork-mode children inherit the coordinator's mapping and just switch
  /// identity.
  void set_local_rank(ProcId q) { rank_ = q; }
  ProcId local_rank() const { return rank_; }

  const std::string& segment_name() const;
  const ShmRunSpec& spec() const;
  Dims dims() const;

  // Transport interface --------------------------------------------------
  TransportKind kind() const override { return TransportKind::kShm; }
  bool cross_process() const override { return true; }
  std::int32_t num_procs() const override;
  WindowView window(ProcId q) override;
  bool try_send_addr_package(ProcId from, ProcId dest, const AddrPackage& pkg,
                             std::int32_t slot_bound,
                             std::int32_t copies) override;
  bool addr_packages_pending(ProcId me) const override;
  void drain_addr_packages(ProcId me, std::vector<AddrPackage>* out) override;
  std::int64_t mailbox_occupancy(ProcId me) override;
  void push_nack(ProcId dest, const NackRequest& n) override;
  bool nacks_pending(ProcId me) const override;
  void drain_nacks(ProcId me, std::vector<NackRequest>* out) override;
  Bell& data_bell() override;
  Bell& control_bell() override;
  void request_abort() override;
  bool aborted() const override;
  std::int32_t note_quiescent(ProcId q) override;
  std::int32_t quiescent_count() const override;
  void report_failure(ProcId q, FailureKind kind,
                      const std::string& text) override;
  bool any_failure() const override;
  FailureKind first_failure_kind() const override;
  std::vector<std::string> failure_texts() const override;
  void beat(ProcId q, std::uint8_t state, std::int32_t pos) override;
  void beat_wait(ProcId q, DataId object, std::int32_t version, TaskId flag,
                 ProcId map_dest, std::int32_t retry_attempts,
                 bool exhausted) override;
  void publish_recovery(ProcId q, std::int64_t nacks_sent,
                        std::int64_t resends) override;
  LightState light(ProcId q) const override;

  /// Live mid-run recovery totals mirrored by publish_recovery (distinct
  /// from worker_counter, which is valid only after worker_done).
  std::int64_t live_nacks(ProcId q) const;
  std::int64_t live_resends(ProcId q) const;

  // Worker/coordinator extras --------------------------------------------
  /// Worker at clean end: stores its counter slots and raises done
  /// (release) so the coordinator's sums are exact.
  void publish_worker_done(ProcId q,
                           const std::int64_t (&counters)[kNumShmCounters]);
  bool worker_done(ProcId q) const;
  std::int64_t worker_counter(ProcId q, ShmCounter which) const;
  /// Lease age in seconds (now - last beat); a huge value before the first
  /// beat so "never attached" reads as lapsed once the grace period ends.
  double lease_age_seconds(ProcId q) const;
  /// Per-rank failure details (valid when light/has_error says so).
  bool rank_failed(ProcId q) const;
  FailureKind rank_failure_kind(ProcId q) const;
  std::string rank_failure_text(ProcId q) const;

 private:
  struct Layout;
  ShmTransport(ShmSegment seg, ProcId rank);

  ShmSegment seg_;
  ProcId rank_;  // -1 = coordinator
  std::unique_ptr<Layout> l_;
  std::unique_ptr<FutexBell> data_bell_;
  std::unique_ptr<FutexBell> control_bell_;
};

/// Coordinator-side session: the segment plus the worker processes. The
/// destructor is the no-hang guarantee — it SIGKILLs and reaps any child
/// still alive, then unlinks the segment.
class ShmSession {
 public:
  static std::unique_ptr<ShmSession> create(const ShmTransport::Dims& dims,
                                            const ShmRunSpec& spec);
  ~ShmSession();

  ShmTransport& transport() { return *tp_; }

  struct Child {
    pid_t pid = -1;
    bool exited = false;
    int exit_code = 0;
    int signal = 0;   // nonzero if terminated by a signal
    bool reported = false;  // coordinator already classified this exit
  };

  using WorkerFn = std::function<int(ProcId)>;
  /// Forks one child per rank; each child runs fn(rank) and _exit()s with
  /// its return value. Call before creating any thread in this process.
  void spawn_fork(const WorkerFn& fn);
  /// Spawns `worker_path --segment=<name> --rank=<q>` per rank.
  void spawn_exec(const std::string& worker_path);

  /// Non-blocking waitpid sweep; returns true if any child newly exited.
  bool poll();
  bool all_exited() const;
  Child& child(ProcId q) { return children_[static_cast<std::size_t>(q)]; }
  /// Signals every still-running child.
  void kill_all(int sig);
  /// Polls until every child exited or the timeout lapses.
  bool wait_all(double timeout_seconds);

 private:
  explicit ShmSession(std::unique_ptr<ShmTransport> tp);
  std::unique_ptr<ShmTransport> tp_;
  std::vector<Child> children_;
};

/// Runs one rank's worker protocol loop against an attached/forked shm
/// transport (defined next to the executor internals in
/// threaded_executor.cpp; shared by the fork children and the
/// rapid_shm_worker binary). Returns the worker exit code.
int shm_worker_run(ShmTransport& transport, const RunPlan& plan,
                   const ObjectInit& init, const TaskBody& body);

namespace detail {
/// Global registry of live coordinator-side ShmSessions, maintained by
/// ShmSession's ctor/dtor so the telemetry plane (rt/shm_health.hpp) can
/// sample per-rank heartbeat/recovery health across every active session
/// without owning any of them.
void shm_health_register(ShmSession* session);
void shm_health_unregister(ShmSession* session);
}  // namespace detail

}  // namespace rapid::rt
