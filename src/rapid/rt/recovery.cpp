#include "rapid/rt/recovery.hpp"

#include <chrono>
#include <exception>
#include <thread>
#include <utility>

#include "rapid/support/check.hpp"

namespace rapid::rt {

namespace {

/// Backoff before restart attempt `attempt` (2-based; attempt 2 waits the
/// base, attempt 3 the base * multiplier, ...). Saturates instead of
/// overflowing for absurd multiplier products.
std::int64_t restart_wait_us(const RunRecoveryOptions& ropts,
                             std::int32_t attempt) {
  if (ropts.restart_backoff_us <= 0 || attempt < 2) return 0;
  double wait = static_cast<double>(ropts.restart_backoff_us);
  for (std::int32_t k = 2; k < attempt; ++k) {
    wait *= ropts.restart_backoff_multiplier;
    if (wait > 1e15) return static_cast<std::int64_t>(1e15);
  }
  return static_cast<std::int64_t>(wait);
}

}  // namespace

JsonValue RecoveryRun::to_json() const {
  JsonValue doc = JsonValue::object();
  doc["report"] = report.to_json();
  doc["attempts"] = attempts;
  doc["failed"] = failed;
  if (failed) {
    doc["failure"] = failure;
    doc["failure_kind"] = to_string(failure_kind);
  }
  doc["attempt_deadline_us"] = attempt_deadline_us;
  JsonValue fails = JsonValue::array();
  for (const std::string& f : attempt_failures) fails.push_back(f);
  doc["attempt_failures"] = std::move(fails);
  JsonValue procs = JsonValue::array();
  for (const auto& pf : attempt_proc_failures) {
    if (pf) procs.push_back(pf->to_json());
  }
  doc["attempt_proc_failures"] = std::move(procs);
  JsonValue waits = JsonValue::array();
  for (const std::int64_t w : backoff_waits_us) waits.push_back(w);
  doc["backoff_waits_us"] = std::move(waits);
  return doc;
}

RecoveryRun run_with_recovery(const RunPlan& plan, const RunConfig& config,
                              ObjectInit init, TaskBody body,
                              ThreadedOptions options,
                              RunRecoveryOptions ropts) {
  RAPID_CHECK(ropts.max_run_attempts >= 1,
              "run_with_recovery needs at least one attempt");
  if (ropts.attempt_deadline_us > 0) {
    options.attempt_deadline_us = ropts.attempt_deadline_us;
  }
  RecoveryRun out;
  out.attempt_deadline_us = options.attempt_deadline_us;
  RecoveryCounters accumulated;  // from failed attempts
  std::int32_t failed_attempts = 0;
  std::exception_ptr last_error;
  for (std::int32_t attempt = 1; attempt <= ropts.max_run_attempts;
       ++attempt) {
    if (attempt > 1) {
      const std::int64_t wait = restart_wait_us(ropts, attempt);
      out.backoff_waits_us.push_back(wait);
      if (wait > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(wait));
      }
    }
    ThreadedOptions opts = options;
    opts.run_attempt = attempt;
    auto exec = std::make_unique<ThreadedExecutor>(plan, config, init, body,
                                                   opts);
    out.attempts = attempt;
    try {
      out.report = exec->run();
    } catch (const RunCancelledError&) {
      // Cancellation (deadline lapse or an external cancel()) is terminal:
      // restarting cannot un-lapse a deadline, and the caller asked the run
      // to stop. Surface the partial report instead of retrying.
      const RunReport& partial = exec->last_report();
      accumulated.merge(partial.recovery);
      out.report = partial;
      out.report.recovery = accumulated;
      out.report.recovery.run_attempts = attempt;
      out.failed = true;
      out.failure_kind = partial.failure_kind;
      out.failure = partial.failure;
      out.attempt_failures.push_back(partial.failure);
      out.executor = std::move(exec);
      if (!ropts.capture_failure) throw;
      return out;
    } catch (const Error&) {
      // Deadlock/exhaustion or task failure: fold this attempt's partial
      // counters in and restart from scratch (run() rebuilds all state).
      last_error = std::current_exception();
      const RunReport& partial = exec->last_report();
      out.attempt_failures.push_back(partial.failure);
      if (partial.proc_failure) {
        out.attempt_proc_failures.push_back(partial.proc_failure);
      }
      accumulated.merge(partial.recovery);
      accumulated.run_attempts = ++failed_attempts;
      if (attempt == ropts.max_run_attempts && ropts.capture_failure) {
        out.report = partial;
        out.report.recovery = accumulated;
        out.report.recovery.run_attempts = attempt;
        out.failed = true;
        out.failure_kind = partial.failure_kind;
        out.failure = partial.failure;
        out.executor = std::move(exec);
        return out;
      }
      continue;
    }
    out.executor = std::move(exec);
    if (!out.report.executable) {
      // Capacity failure: deterministic, a restart cannot change it.
      out.report.recovery.merge(accumulated);
      out.report.recovery.run_attempts = attempt;
      return out;
    }
    out.report.recovery.merge(accumulated);
    out.report.recovery.run_attempts = attempt;
    return out;
  }
  std::rethrow_exception(last_error);
}

}  // namespace rapid::rt
