#include "rapid/rt/recovery.hpp"

#include <exception>
#include <utility>

#include "rapid/support/check.hpp"

namespace rapid::rt {

RecoveryRun run_with_recovery(const RunPlan& plan, const RunConfig& config,
                              ObjectInit init, TaskBody body,
                              ThreadedOptions options,
                              RunRecoveryOptions ropts) {
  RAPID_CHECK(ropts.max_run_attempts >= 1,
              "run_with_recovery needs at least one attempt");
  RecoveryRun out;
  RecoveryCounters accumulated;  // from failed attempts
  std::int32_t failed_attempts = 0;
  std::exception_ptr last_error;
  for (std::int32_t attempt = 1; attempt <= ropts.max_run_attempts;
       ++attempt) {
    ThreadedOptions opts = options;
    opts.run_attempt = attempt;
    auto exec = std::make_unique<ThreadedExecutor>(plan, config, init, body,
                                                   opts);
    out.attempts = attempt;
    try {
      out.report = exec->run();
    } catch (const Error&) {
      // Deadlock/exhaustion or task failure: fold this attempt's partial
      // counters in and restart from scratch (run() rebuilds all state).
      last_error = std::current_exception();
      const RunReport& partial = exec->last_report();
      out.attempt_failures.push_back(partial.failure);
      if (partial.proc_failure) {
        out.attempt_proc_failures.push_back(partial.proc_failure);
      }
      accumulated.merge(partial.recovery);
      accumulated.run_attempts = ++failed_attempts;
      continue;
    }
    out.executor = std::move(exec);
    if (!out.report.executable) {
      // Capacity failure: deterministic, a restart cannot change it.
      out.report.recovery.merge(accumulated);
      out.report.recovery.run_attempts = attempt;
      return out;
    }
    out.report.recovery.merge(accumulated);
    out.report.recovery.run_attempts = attempt;
    return out;
  }
  std::rethrow_exception(last_error);
}

}  // namespace rapid::rt
