// Stall diagnosis for the threaded executor: when the progress monitor
// suspects a stall it snapshots every processor's protocol state, builds
// the processor-level wait-for graph, and either names the cycle (genuine
// deadlock — Theorem 1's preconditions were violated) or reports "slow
// progress" so the monitor resumes waiting. The snapshot protocol is
// cooperative: each worker publishes its own private state when asked, so
// the monitor never races worker-owned data (docs/RUNTIME.md, "Failure
// modes and stall diagnosis").
#pragma once

#include <string>
#include <vector>

#include "rapid/rt/plan.hpp"
#include "rapid/support/json.hpp"

namespace rapid::rt {

/// Where a processor's worker thread is inside the REC/EXE/SND/MAP/END
/// protocol (paper Figure 3(b)), as published for diagnosis.
enum class ProcState : std::uint8_t {
  kStart,       // before the first protocol loop iteration
  kMap,         // running the MAP procedure
  kMapBlocked,  // MAP blocked: destination mailbox slot full
  kExe,         // executing a task body (or between EXE and SND)
  kRecBlocked,  // REC: waiting for a remote version or completion flag
  kEndDrain,    // END: own order finished, draining suspended sends
  kQuiescent,   // END: drained, waiting for global quiescence
  kFailed,      // worker unwound with an error
};

const char* to_string(ProcState state);

/// One bounded re-request (recovery) episode on a processor: either a wait
/// that was healed after `attempts` NACKs, or one whose attempts ran out
/// (`exhausted`) — the event that escalates to ProtocolDeadlockError.
struct RetryRecord {
  DataId object = graph::kInvalidData;   // content wait (or package target)
  std::int32_t version = -1;             // version the waiter needed
  TaskId flag_task = graph::kInvalidTask;  // flag wait (object invalid)
  std::int32_t attempts = 0;             // NACKs sent for this wait
  std::int64_t waited_us = 0;            // total steady-clock wait time
  bool exhausted = false;
};

/// One processor's state at the stall instant. `detailed` snapshots are
/// filled by the worker itself (full private state); light snapshots are
/// synthesized by the monitor from the always-published atomics when a
/// worker cannot respond (it is inside a long task body).
struct ProcSnapshot {
  ProcId proc = graph::kInvalidProc;
  bool detailed = false;
  ProcState state = ProcState::kStart;
  std::int32_t pos = 0;         // position in the static task order
  std::int32_t order_size = 0;
  TaskId current_task = graph::kInvalidTask;

  // REC-blocked cause: the first unmet gate of current_task.
  DataId waiting_object = graph::kInvalidData;
  std::int32_t waiting_version = -1;  // version required
  std::int32_t have_version = -1;     // version actually received
  TaskId waiting_flag_task = graph::kInvalidTask;

  // MAP-blocked cause.
  ProcId mailbox_full_dest = graph::kInvalidProc;

  std::int64_t suspended_sends = 0;
  std::vector<std::int64_t> suspended_by_dest;  // per destination processor
  std::vector<std::uint32_t> addr_epoch;        // per-peer address epochs
  std::int64_t mailbox_packages = 0;  // occupancy of this proc's own mailbox
  std::int64_t parks = 0;
  std::int64_t park_timeouts = 0;

  /// Re-requests issued for the wait the processor is currently blocked in
  /// (0 when recovery is off or the wait is fresh).
  std::int32_t retry_attempts = 0;
  /// Finished recovery episodes this run, ending with the current wait if
  /// it has sent any NACKs — the "retry history" the escalation carries.
  std::vector<RetryRecord> retry_history;
};

/// One wait-for edge: `from` cannot progress until `to` acts.
struct WaitEdge {
  enum class Kind : std::uint8_t {
    kContent,      // waiting for a version of an object owned by `to`
    kFlag,         // waiting for a completion flag from a task on `to`
    kAddrPackage,  // suspended sends to `to` awaiting its address package
    kMailboxSlot,  // MAP blocked until `to` drains its mailbox
  };
  ProcId from = graph::kInvalidProc;
  ProcId to = graph::kInvalidProc;
  Kind kind = Kind::kContent;
  DataId object = graph::kInvalidData;  // kContent: the blocked object
  /// Re-requests the waiter has already issued along this edge (nonzero
  /// only for the blocked wait of a recovery-enabled run).
  std::int32_t retries = 0;
  std::string reason;                   // human-readable, with names
};

/// The structured diagnosis attached to ProtocolDeadlockError. summary()
/// renders it for terminals and exception messages; to_json() for CI
/// artifacts (support/json escapes arbitrary message content).
struct StallReport {
  double stalled_seconds = 0.0;
  /// The per-attempt cancellation deadline in force when the stall was
  /// diagnosed (ThreadedOptions::attempt_deadline_us; 0 = none). Surfaced
  /// so a service-imposed timeout is diagnosable post-hoc: a report whose
  /// stalled_seconds approaches this budget describes a run that was about
  /// to be cancelled, not one that deadlocked.
  std::int64_t attempt_deadline_us = 0;
  std::vector<ProcSnapshot> procs;
  std::vector<WaitEdge> edges;
  /// Processors forming a wait-for cycle, in cycle order; empty when the
  /// stall was not (yet) provably a deadlock.
  std::vector<ProcId> cycle;
  /// True when the stall cannot resolve on its own: a wait-for cycle, or a
  /// wait targeting an already-quiescent processor.
  bool genuine_deadlock = false;
  /// True when recovery was enabled and a waiter ran out of re-request
  /// attempts — the only way a recovery-enabled run escalates to
  /// ProtocolDeadlockError before the scaled watchdog.
  bool retries_exhausted = false;
  /// Every per-processor failure captured this run (not just the first).
  std::vector<std::string> errors;

  std::string summary() const;
  JsonValue to_json() const;
};

/// Builds wait-for edges from the snapshots. Edges only originate from
/// blocked states; a processor inside EXE is presumed to make progress.
std::vector<WaitEdge> build_wait_edges(const RunPlan& plan,
                                       const std::vector<ProcSnapshot>& procs);

/// Finds one cycle in the processor wait-for graph (empty if acyclic).
std::vector<ProcId> find_cycle(int num_procs,
                               const std::vector<WaitEdge>& edges);

/// Full diagnosis: edges, cycle, genuine-deadlock classification.
StallReport diagnose_stall(const RunPlan& plan,
                           std::vector<ProcSnapshot> procs,
                           double stalled_seconds,
                           std::vector<std::string> errors);

}  // namespace rapid::rt
