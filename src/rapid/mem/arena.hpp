// Fixed-capacity per-processor arena with a first-fit, address-ordered free
// list and eager coalescing — the "special memory allocator" the paper's
// conclusion calls for to fight fragmentation of irregular object space.
// Offsets (not host pointers) are the currency: the runtime ships them in
// address packages exactly like RAPID ships remote user-space addresses.
//
// Two fast paths keep the MAP admission path off the O(#free-blocks) scans:
//  - `largest_free_block` is maintained incrementally (a multiset of free
//    block sizes), so stats() and can_allocate() are O(1)/O(log n) instead
//    of rescanning the free list;
//  - an optional size-class slab layer (SlabConfig) caches freed blocks of
//    the dominant MAP classes on per-class LIFO lists for O(1) alloc/free,
//    falling back to the coalescing map when a class misses. Cached blocks
//    are free bytes that merely skip coalescing, so in_use/peak accounting
//    — and with it ProcMemory::peak_bytes() and the CONF-CAP replay — is
//    byte-identical to the plain arena.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "rapid/support/check.hpp"

namespace rapid::mem {

using Offset = std::int64_t;
inline constexpr Offset kNullOffset = -1;

struct ArenaStats {
  std::int64_t capacity = 0;
  std::int64_t in_use = 0;          // bytes currently allocated
  std::int64_t peak_in_use = 0;     // high-water mark
  std::int64_t num_allocs = 0;      // successful allocations
  std::int64_t num_frees = 0;
  std::int64_t failed_allocs = 0;   // allocation attempts that returned null
  std::int64_t largest_free_block = 0;  // largest block on the coalescing map
  std::int64_t slab_hits = 0;       // allocations served from a slab cache
  std::int64_t slab_flushes = 0;    // cache spills back into the map

  /// External fragmentation in [0,1]: 1 - largest_free / total_free.
  double fragmentation() const;
};

/// Placement policy. kFirstFit is the classic fast choice; kBestFit picks
/// the smallest hole that fits, which measurably reduces the external
/// fragmentation the paper's §6 complains about (see the allocator ablation
/// bench).
enum class AllocPolicy { kFirstFit, kBestFit };

/// Size-class slab configuration. Class sizes are rounded to the arena's
/// alignment and deduplicated; an empty list disables the slab layer
/// entirely (the default — behavior is then identical to the plain arena).
struct SlabConfig {
  std::vector<std::int64_t> class_sizes;
  /// Freed blocks cached per class before frees fall back to the map.
  std::int32_t max_cached_per_class = 64;

  bool enabled() const { return !class_sizes.empty(); }
};

/// Byte-granular allocator over a [0, capacity) range. Map-path operations
/// are O(log #free-blocks) plus the placement scan; slab-class alloc/free
/// is O(1).
class Arena {
 public:
  explicit Arena(std::int64_t capacity, std::int64_t alignment = 8,
                 AllocPolicy policy = AllocPolicy::kFirstFit,
                 SlabConfig slab = {});

  /// Allocates `size` bytes (size 0 is allowed and consumes `alignment`
  /// bytes so every object has a distinct address). Returns kNullOffset if
  /// no free block fits.
  Offset allocate(std::int64_t size);

  /// Returns whether an allocation of `size` would currently succeed,
  /// without performing it. May internally spill slab caches back into the
  /// coalescing map (free bytes stay free; no observable accounting
  /// changes).
  bool can_allocate(std::int64_t size) const;

  /// Frees a block previously returned by allocate(). Throws on double-free
  /// or foreign offsets.
  void deallocate(Offset offset);

  /// Size recorded for a live allocation.
  std::int64_t allocation_size(Offset offset) const;

  std::int64_t capacity() const { return capacity_; }
  std::int64_t in_use() const { return stats_.in_use; }
  std::int64_t free_bytes() const { return capacity_ - stats_.in_use; }
  const ArenaStats& stats() const;
  std::size_t num_live_allocations() const { return live_.size(); }
  std::size_t num_free_blocks() const { return free_.size(); }
  /// Freed blocks currently parked on slab caches (0 when slabs are off).
  std::int64_t slab_cached_blocks() const { return cached_blocks_; }

  /// Spills all slab caches back into the coalescing map.
  void flush_slabs();

  /// Internal consistency check (free blocks coalesced, disjoint, in range,
  /// bytes conserved across map + slab caches + live, and the incremental
  /// largest_free_block re-derived independently). Used by property tests;
  /// throws on violation.
  void check_invariants() const;

 private:
  std::int64_t rounded(std::int64_t size) const;
  /// Index into slabs_ for an exact-class rounded size, or -1.
  std::int32_t class_of(std::int64_t need) const;
  /// Inserts into the free map, coalescing with neighbors and keeping the
  /// size multiset in step.
  void insert_free(Offset offset, std::int64_t size);
  void erase_size(std::int64_t size);
  std::int64_t largest_free() const {
    return free_sizes_.empty() ? 0 : *free_sizes_.rbegin();
  }

  std::int64_t capacity_;
  std::int64_t alignment_;
  AllocPolicy policy_;
  std::map<Offset, std::int64_t> free_;  // offset -> block size (coalesced)
  std::map<Offset, std::int64_t> live_;  // offset -> rounded size
  // Multiset of free_ block sizes: largest_free_block in O(1), maintained
  // on every allocate/deallocate/coalesce instead of rescanned.
  std::multiset<std::int64_t> free_sizes_;
  // Slab layer: class_sizes_[i] (rounded, sorted, unique) backs slabs_[i],
  // a LIFO of cached block offsets.
  std::vector<std::int64_t> class_sizes_;
  std::vector<std::vector<Offset>> slabs_;
  std::int32_t max_cached_per_class_ = 0;
  std::int64_t cached_blocks_ = 0;
  mutable ArenaStats stats_;
};

}  // namespace rapid::mem
