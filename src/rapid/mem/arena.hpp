// Fixed-capacity per-processor arena with a first-fit, address-ordered free
// list and eager coalescing — the "special memory allocator" the paper's
// conclusion calls for to fight fragmentation of irregular object space.
// Offsets (not host pointers) are the currency: the runtime ships them in
// address packages exactly like RAPID ships remote user-space addresses.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "rapid/support/check.hpp"

namespace rapid::mem {

using Offset = std::int64_t;
inline constexpr Offset kNullOffset = -1;

struct ArenaStats {
  std::int64_t capacity = 0;
  std::int64_t in_use = 0;          // bytes currently allocated
  std::int64_t peak_in_use = 0;     // high-water mark
  std::int64_t num_allocs = 0;      // successful allocations
  std::int64_t num_frees = 0;
  std::int64_t failed_allocs = 0;   // allocation attempts that returned null
  std::int64_t largest_free_block = 0;

  /// External fragmentation in [0,1]: 1 - largest_free / total_free.
  double fragmentation() const;
};

/// Placement policy. kFirstFit is the classic fast choice; kBestFit picks
/// the smallest hole that fits, which measurably reduces the external
/// fragmentation the paper's §6 complains about (see the allocator ablation
/// bench).
enum class AllocPolicy { kFirstFit, kBestFit };

/// Byte-granular allocator over a [0, capacity) range. All operations are
/// O(#free-blocks); the free list is kept coalesced so the block count stays
/// proportional to the number of live "holes".
class Arena {
 public:
  explicit Arena(std::int64_t capacity, std::int64_t alignment = 8,
                 AllocPolicy policy = AllocPolicy::kFirstFit);

  /// Allocates `size` bytes (size 0 is allowed and consumes `alignment`
  /// bytes so every object has a distinct address). Returns kNullOffset if
  /// no free block fits.
  Offset allocate(std::int64_t size);

  /// Returns whether an allocation of `size` would currently succeed,
  /// without performing it.
  bool can_allocate(std::int64_t size) const;

  /// Frees a block previously returned by allocate(). Throws on double-free
  /// or foreign offsets.
  void deallocate(Offset offset);

  /// Size recorded for a live allocation.
  std::int64_t allocation_size(Offset offset) const;

  std::int64_t capacity() const { return capacity_; }
  std::int64_t in_use() const { return stats_.in_use; }
  std::int64_t free_bytes() const { return capacity_ - stats_.in_use; }
  const ArenaStats& stats() const;
  std::size_t num_live_allocations() const { return live_.size(); }
  std::size_t num_free_blocks() const { return free_.size(); }

  /// Internal consistency check (free blocks coalesced, disjoint, in range,
  /// bytes conserved). Used by property tests; throws on violation.
  void check_invariants() const;

 private:
  std::int64_t rounded(std::int64_t size) const;

  std::int64_t capacity_;
  std::int64_t alignment_;
  AllocPolicy policy_;
  std::map<Offset, std::int64_t> free_;  // offset -> block size (coalesced)
  std::map<Offset, std::int64_t> live_;  // offset -> rounded size
  mutable ArenaStats stats_;
};

}  // namespace rapid::mem
