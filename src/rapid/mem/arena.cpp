#include "rapid/mem/arena.hpp"

#include <algorithm>

#include "rapid/support/str.hpp"

namespace rapid::mem {

double ArenaStats::fragmentation() const {
  const std::int64_t total_free = capacity - in_use;
  if (total_free <= 0) return 0.0;
  return 1.0 - static_cast<double>(largest_free_block) /
                   static_cast<double>(total_free);
}

Arena::Arena(std::int64_t capacity, std::int64_t alignment,
             AllocPolicy policy, SlabConfig slab)
    : capacity_(capacity), alignment_(alignment), policy_(policy) {
  RAPID_CHECK(capacity >= 0, "negative capacity");
  RAPID_CHECK(alignment > 0, "alignment must be positive");
  if (capacity_ > 0) {
    free_[0] = capacity_;
    free_sizes_.insert(capacity_);
  }
  stats_.capacity = capacity_;
  if (slab.enabled()) {
    RAPID_CHECK(slab.max_cached_per_class > 0,
                "slab max_cached_per_class must be positive");
    for (const std::int64_t s : slab.class_sizes) class_sizes_.push_back(rounded(s));
    std::sort(class_sizes_.begin(), class_sizes_.end());
    class_sizes_.erase(std::unique(class_sizes_.begin(), class_sizes_.end()),
                       class_sizes_.end());
    slabs_.resize(class_sizes_.size());
    max_cached_per_class_ = slab.max_cached_per_class;
  }
}

std::int64_t Arena::rounded(std::int64_t size) const {
  RAPID_CHECK(size >= 0, "negative allocation size");
  if (size == 0) size = 1;  // distinct address per object
  return (size + alignment_ - 1) / alignment_ * alignment_;
}

std::int32_t Arena::class_of(std::int64_t need) const {
  // Exact match only: a cached block must be reusable without splitting,
  // or the byte accounting would drift from the plain arena. The class
  // list is tiny (dominant MAP sizes), so a linear scan beats a map.
  for (std::size_t i = 0; i < class_sizes_.size(); ++i) {
    if (class_sizes_[i] == need) return static_cast<std::int32_t>(i);
  }
  return -1;
}

void Arena::erase_size(std::int64_t size) {
  const auto it = free_sizes_.find(size);
  RAPID_CHECK(it != free_sizes_.end(), "free size multiset drifted");
  free_sizes_.erase(it);
}

void Arena::insert_free(Offset offset, std::int64_t size) {
  auto [pos, inserted] = free_.emplace(offset, size);
  RAPID_CHECK(inserted, "free list corruption");
  // Coalesce with successor.
  auto next = std::next(pos);
  if (next != free_.end() && pos->first + pos->second == next->first) {
    erase_size(next->second);
    pos->second += next->second;
    free_.erase(next);
  }
  // Coalesce with predecessor.
  if (pos != free_.begin()) {
    auto prev = std::prev(pos);
    if (prev->first + prev->second == pos->first) {
      erase_size(prev->second);
      prev->second += pos->second;
      free_.erase(pos);
      pos = prev;
    }
  }
  free_sizes_.insert(pos->second);
}

Offset Arena::allocate(std::int64_t size) {
  const std::int64_t need = rounded(size);
  const std::int32_t cls = class_of(need);
  if (cls >= 0 && !slabs_[cls].empty()) {
    const Offset offset = slabs_[cls].back();
    slabs_[cls].pop_back();
    --cached_blocks_;
    live_[offset] = need;
    stats_.in_use += need;
    stats_.peak_in_use = std::max(stats_.peak_in_use, stats_.in_use);
    ++stats_.num_allocs;
    ++stats_.slab_hits;
    return offset;
  }
  for (int attempt = 0; attempt < 2; ++attempt) {
    auto chosen = free_.end();
    if (largest_free() >= need) {
      for (auto it = free_.begin(); it != free_.end(); ++it) {
        if (it->second < need) continue;
        if (policy_ == AllocPolicy::kFirstFit) {
          chosen = it;
          break;
        }
        if (chosen == free_.end() || it->second < chosen->second) {
          chosen = it;
          if (it->second == need) break;  // exact fit cannot be beaten
        }
      }
    }
    if (chosen == free_.end()) {
      // The map alone cannot satisfy this; cached slab blocks may coalesce
      // into a large-enough hole. Spill them once and retry.
      if (attempt == 0 && cached_blocks_ > 0) {
        flush_slabs();
        continue;
      }
      ++stats_.failed_allocs;
      return kNullOffset;
    }
    const Offset offset = chosen->first;
    const std::int64_t remainder = chosen->second - need;
    erase_size(chosen->second);
    free_.erase(chosen);
    if (remainder > 0) {
      free_[offset + need] = remainder;
      free_sizes_.insert(remainder);
    }
    live_[offset] = need;
    stats_.in_use += need;
    stats_.peak_in_use = std::max(stats_.peak_in_use, stats_.in_use);
    ++stats_.num_allocs;
    return offset;
  }
  ++stats_.failed_allocs;  // unreachable; keeps the compiler satisfied
  return kNullOffset;
}

bool Arena::can_allocate(std::int64_t size) const {
  const std::int64_t need = rounded(size);
  const std::int32_t cls = class_of(need);
  if (cls >= 0 && !slabs_[cls].empty()) return true;
  if (largest_free() >= need) return true;
  if (cached_blocks_ == 0) return false;
  // Cached slab blocks might coalesce into a hole that fits. Spilling them
  // only changes the internal representation of free space — in_use,
  // failed_allocs and the set of satisfiable requests are untouched — so
  // it is safe behind const.
  const_cast<Arena*>(this)->flush_slabs();
  return largest_free() >= need;
}

void Arena::flush_slabs() {
  if (cached_blocks_ == 0) return;
  for (std::size_t cls = 0; cls < slabs_.size(); ++cls) {
    for (const Offset offset : slabs_[cls]) {
      insert_free(offset, class_sizes_[cls]);
    }
    slabs_[cls].clear();
  }
  cached_blocks_ = 0;
  ++stats_.slab_flushes;
}

void Arena::deallocate(Offset offset) {
  auto it = live_.find(offset);
  RAPID_CHECK(it != live_.end(),
              cat("deallocate of unknown offset ", offset));
  const std::int64_t size = it->second;
  live_.erase(it);
  stats_.in_use -= size;
  ++stats_.num_frees;
  const std::int32_t cls = class_of(size);
  if (cls >= 0 &&
      slabs_[cls].size() < static_cast<std::size_t>(max_cached_per_class_)) {
    slabs_[cls].push_back(offset);
    ++cached_blocks_;
    return;
  }
  insert_free(offset, size);
}

std::int64_t Arena::allocation_size(Offset offset) const {
  auto it = live_.find(offset);
  RAPID_CHECK(it != live_.end(), cat("unknown allocation at ", offset));
  return it->second;
}

const ArenaStats& Arena::stats() const {
  stats_.largest_free_block = largest_free();
  return stats_;
}

void Arena::check_invariants() const {
  std::int64_t free_total = 0;
  std::int64_t derived_largest = 0;
  Offset prev_end = -1;
  for (const auto& [offset, size] : free_) {
    RAPID_CHECK(size > 0, "empty free block");
    RAPID_CHECK(offset >= 0 && offset + size <= capacity_,
                "free block out of range");
    RAPID_CHECK(offset > prev_end,
                "free blocks overlap or are not coalesced");
    prev_end = offset + size;  // strict > above forbids adjacency too
    free_total += size;
    derived_largest = std::max(derived_largest, size);
    RAPID_CHECK(free_sizes_.count(size) >= 1,
                "free size missing from multiset");
  }
  RAPID_CHECK(free_sizes_.size() == free_.size(),
              "free size multiset out of step with the free list");
  // Re-derive the incrementally-maintained largest block independently.
  RAPID_CHECK(derived_largest == largest_free(),
              cat("largest_free_block drifted: maintained ", largest_free(),
                  " derived ", derived_largest));
  // Slab caches: class-sized, in range, disjoint from the free map and the
  // live set (interval-checked via a merged occupancy map).
  std::int64_t cached_total = 0;
  std::int64_t cached_count = 0;
  std::map<Offset, std::int64_t> occupancy = free_;
  for (const auto& [offset, size] : live_) occupancy.emplace(offset, size);
  for (std::size_t cls = 0; cls < slabs_.size(); ++cls) {
    for (const Offset offset : slabs_[cls]) {
      const std::int64_t size = class_sizes_[cls];
      RAPID_CHECK(offset >= 0 && offset + size <= capacity_,
                  "cached slab block out of range");
      const auto [pos, inserted] = occupancy.emplace(offset, size);
      RAPID_CHECK(inserted, "cached slab block collides");
      cached_total += size;
      ++cached_count;
    }
  }
  Offset cursor = 0;
  for (const auto& [offset, size] : occupancy) {
    RAPID_CHECK(offset >= cursor, "blocks overlap");
    cursor = offset + size;
  }
  RAPID_CHECK(cached_count == cached_blocks_, "cached block count drifted");
  std::int64_t live_total = 0;
  for (const auto& [offset, size] : live_) {
    RAPID_CHECK(offset >= 0 && offset + size <= capacity_,
                "live block out of range");
    live_total += size;
  }
  RAPID_CHECK(free_total + cached_total + live_total == capacity_,
              cat("bytes not conserved: free ", free_total, " + cached ",
                  cached_total, " + live ", live_total, " != capacity ",
                  capacity_));
  RAPID_CHECK(live_total == stats_.in_use, "in_use stat drifted");
}

}  // namespace rapid::mem
