#include "rapid/mem/arena.hpp"

#include <algorithm>

#include "rapid/support/str.hpp"

namespace rapid::mem {

double ArenaStats::fragmentation() const {
  const std::int64_t total_free = capacity - in_use;
  if (total_free <= 0) return 0.0;
  return 1.0 - static_cast<double>(largest_free_block) /
                   static_cast<double>(total_free);
}

Arena::Arena(std::int64_t capacity, std::int64_t alignment,
             AllocPolicy policy)
    : capacity_(capacity), alignment_(alignment), policy_(policy) {
  RAPID_CHECK(capacity >= 0, "negative capacity");
  RAPID_CHECK(alignment > 0, "alignment must be positive");
  if (capacity_ > 0) free_[0] = capacity_;
  stats_.capacity = capacity_;
}

std::int64_t Arena::rounded(std::int64_t size) const {
  RAPID_CHECK(size >= 0, "negative allocation size");
  if (size == 0) size = 1;  // distinct address per object
  return (size + alignment_ - 1) / alignment_ * alignment_;
}

Offset Arena::allocate(std::int64_t size) {
  const std::int64_t need = rounded(size);
  auto chosen = free_.end();
  for (auto it = free_.begin(); it != free_.end(); ++it) {
    if (it->second < need) continue;
    if (policy_ == AllocPolicy::kFirstFit) {
      chosen = it;
      break;
    }
    if (chosen == free_.end() || it->second < chosen->second) {
      chosen = it;
      if (it->second == need) break;  // exact fit cannot be beaten
    }
  }
  if (chosen == free_.end()) {
    ++stats_.failed_allocs;
    return kNullOffset;
  }
  const Offset offset = chosen->first;
  const std::int64_t remainder = chosen->second - need;
  free_.erase(chosen);
  if (remainder > 0) free_[offset + need] = remainder;
  live_[offset] = need;
  stats_.in_use += need;
  stats_.peak_in_use = std::max(stats_.peak_in_use, stats_.in_use);
  ++stats_.num_allocs;
  return offset;
}

bool Arena::can_allocate(std::int64_t size) const {
  const std::int64_t need = rounded(size);
  for (const auto& [offset, block] : free_) {
    (void)offset;
    if (block >= need) return true;
  }
  return false;
}

void Arena::deallocate(Offset offset) {
  auto it = live_.find(offset);
  RAPID_CHECK(it != live_.end(),
              cat("deallocate of unknown offset ", offset));
  const std::int64_t size = it->second;
  live_.erase(it);
  stats_.in_use -= size;
  ++stats_.num_frees;
  // Insert and coalesce with neighbors.
  auto [pos, inserted] = free_.emplace(offset, size);
  RAPID_CHECK(inserted, "free list corruption");
  // Coalesce with successor.
  auto next = std::next(pos);
  if (next != free_.end() && pos->first + pos->second == next->first) {
    pos->second += next->second;
    free_.erase(next);
  }
  // Coalesce with predecessor.
  if (pos != free_.begin()) {
    auto prev = std::prev(pos);
    if (prev->first + prev->second == pos->first) {
      prev->second += pos->second;
      free_.erase(pos);
    }
  }
}

std::int64_t Arena::allocation_size(Offset offset) const {
  auto it = live_.find(offset);
  RAPID_CHECK(it != live_.end(), cat("unknown allocation at ", offset));
  return it->second;
}

const ArenaStats& Arena::stats() const {
  stats_.largest_free_block = 0;
  for (const auto& [offset, block] : free_) {
    (void)offset;
    stats_.largest_free_block =
        std::max(stats_.largest_free_block, block);
  }
  return stats_;
}

void Arena::check_invariants() const {
  std::int64_t free_total = 0;
  Offset prev_end = -1;
  for (const auto& [offset, size] : free_) {
    RAPID_CHECK(size > 0, "empty free block");
    RAPID_CHECK(offset >= 0 && offset + size <= capacity_,
                "free block out of range");
    RAPID_CHECK(offset > prev_end,
                "free blocks overlap or are not coalesced");
    prev_end = offset + size;  // strict > above forbids adjacency too
    free_total += size;
  }
  std::int64_t live_total = 0;
  for (const auto& [offset, size] : live_) {
    RAPID_CHECK(offset >= 0 && offset + size <= capacity_,
                "live block out of range");
    live_total += size;
  }
  RAPID_CHECK(free_total + live_total == capacity_,
              cat("bytes not conserved: free ", free_total, " + live ",
                  live_total, " != capacity ", capacity_));
  RAPID_CHECK(live_total == stats_.in_use, "in_use stat drifted");
}

}  // namespace rapid::mem
