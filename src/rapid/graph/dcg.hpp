// Data connection graph (paper §4.2): nodes are data objects, edges the
// temporal order of data accesses. Strongly connected components of the DCG
// become "slices"; a topological order of the component DAG is the slice
// order that the DTS scheduler enforces.
//
// Association rules (verbatim from the paper, extended where ambiguous):
//  - A task that uses but does not modify d is associated with d.
//  - A task that only modifies d and uses no other object is associated
//    with d (a read-modify-write of d alone counts).
//  - Extension: a task that modifies several objects and reads none is
//    associated with all of them (the paper leaves this case open); the
//    multi-association rule below then fuses those nodes, which is the
//    conservative choice.
//  - A task associated with multiple data nodes strongly connects them
//    (doubly-directed edges).
//  - A transformed-graph edge (Tx, Ty) adds DCG edges from every node
//    associated with Tx to every node associated with Ty.
#pragma once

#include <vector>

#include "rapid/graph/task_graph.hpp"

namespace rapid::graph {

struct Dcg {
  /// assoc[t] = data nodes task t is associated with (≥1 for any task that
  /// accesses data, which add_task guarantees).
  std::vector<std::vector<DataId>> task_assoc;
  /// Adjacency over data nodes (deduplicated, no self loops).
  std::vector<std::vector<DataId>> succ;

  DataId num_nodes() const { return static_cast<DataId>(succ.size()); }
};

Dcg build_dcg(const TaskGraph& graph);

/// One DTS slice: a strongly connected component of the DCG plus the tasks
/// associated with its data nodes.
struct Slice {
  std::vector<DataId> objects;
  std::vector<TaskId> tasks;
};

struct SliceDecomposition {
  /// Slices in a valid topological order of the component DAG. Slices with
  /// no associated tasks are dropped (their objects are never read).
  std::vector<Slice> slices;
  /// slice_of_task[t] = index into slices (every task appears exactly once).
  std::vector<std::int32_t> slice_of_task;

  std::size_t num_slices() const { return slices.size(); }
};

/// Tarjan SCC + condensation topological order.
SliceDecomposition decompose_slices(const TaskGraph& graph, const Dcg& dcg);

/// Convenience: build_dcg + decompose_slices.
SliceDecomposition compute_slices(const TaskGraph& graph);

/// True if the DCG itself is acyclic (every SCC is a single node) — the
/// hypothesis of Corollary 1.
bool dcg_is_acyclic(const Dcg& dcg);

}  // namespace rapid::graph
