// The paper's computation model (§2): a set of tasks, a set of distinct
// data objects, each task reading/writing a subset. Tasks are registered in
// sequential program order (the inspector order); finalize() derives
// true/anti/output dependences from the access history, marks anti/output
// edges subsumed by true-dependence paths as redundant, and exposes the
// *transformed* dependence-complete DAG: true edges plus the non-redundant
// anti/output edges kept as zero-byte synchronization edges.
//
// Commutativity (§2's extension): tasks carrying the same non-negative
// commute_group that read-modify-write the same object are mutually
// unordered; the group as a whole is ordered after prior writers and before
// subsequent accesses. This is what lets the factorization update tasks run
// in any order.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "rapid/graph/ids.hpp"

namespace rapid::graph {

enum class DepKind : std::uint8_t { kTrue, kAnti, kOutput };

const char* dep_kind_name(DepKind kind);

struct DataObject {
  std::string name;
  std::int64_t size_bytes = 0;
  ProcId owner = kInvalidProc;  // assigned by the mapping stage
};

struct Task {
  std::string name;
  std::vector<DataId> reads;
  std::vector<DataId> writes;
  double flops = 0.0;
  std::int32_t commute_group = -1;  // -1: does not commute with anything

  /// All objects the task touches (reads ∪ writes), deduplicated, sorted.
  std::vector<DataId> accesses() const;
};

struct Edge {
  TaskId src = kInvalidTask;
  TaskId dst = kInvalidTask;
  DataId object = kInvalidData;
  DepKind kind = DepKind::kTrue;
  bool redundant = false;  // subsumed by a true-dependence path
};

class TaskGraph {
 public:
  /// Registers a data object. Size is the payload footprint used by the
  /// memory manager; owner may be assigned later via set_owner().
  DataId add_data(std::string name, std::int64_t size_bytes,
                  ProcId owner = kInvalidProc);

  /// Registers a task in sequential program order. Duplicate ids within
  /// reads/writes are tolerated and deduplicated.
  TaskId add_task(std::string name, std::vector<DataId> reads,
                  std::vector<DataId> writes, double flops,
                  std::int32_t commute_group = -1);

  /// Derives dependence edges from the registration order, marks redundant
  /// anti/output edges, and builds transformed-graph adjacency. Must be
  /// called exactly once, after which the graph is immutable except for
  /// set_owner().
  void finalize();
  bool finalized() const { return finalized_; }

  void set_owner(DataId d, ProcId owner);

  TaskId num_tasks() const { return static_cast<TaskId>(tasks_.size()); }
  DataId num_data() const { return static_cast<DataId>(data_.size()); }
  const Task& task(TaskId t) const;
  const DataObject& data(DataId d) const;

  /// All derived edges (including redundant ones, for inspection).
  const std::vector<Edge>& edges() const { return edges_; }

  /// Transformed-graph adjacency: indices into edges() of the non-redundant
  /// edges leaving / entering a task.
  std::span<const std::int32_t> out_edges(TaskId t) const;
  std::span<const std::int32_t> in_edges(TaskId t) const;

  /// Writer tasks of each object, in program order (transformed graph keeps
  /// this as the version order of the object).
  std::span<const TaskId> writers(DataId d) const;
  /// Reader tasks of each object, in program order.
  std::span<const TaskId> readers(DataId d) const;

  /// Topological order of the transformed graph; throws if cyclic.
  std::vector<TaskId> topological_order() const;

  /// Sum of all data object sizes = S1, the sequential space requirement.
  std::int64_t sequential_space() const;

  /// Total flops over all tasks.
  double total_flops() const;

  /// Edge-count cap above which redundancy marking is skipped (the check is
  /// O(#anti/output-edges × #true-edges) in the worst case). Exposed so
  /// tests can force either path.
  static constexpr std::int64_t kRedundancyWorkCap = 64 * 1000 * 1000;

  /// Fault injection for the plan auditor's negative tests: removes the
  /// edge at `edge_index` from the transformed graph (marks it redundant
  /// and rebuilds adjacency) while leaving the tasks' access sets intact —
  /// the result is deliberately NOT dependence complete unless a true path
  /// subsumed the edge. Test-only; executing such a graph is undefined.
  void drop_edge_for_test(std::int32_t edge_index);

 private:
  void derive_edges();
  void mark_redundant_edges();
  void build_adjacency();

  std::vector<DataObject> data_;
  std::vector<Task> tasks_;
  std::vector<Edge> edges_;
  bool finalized_ = false;

  // CSR adjacency over non-redundant edges.
  std::vector<std::int32_t> out_ptr_, out_idx_;
  std::vector<std::int32_t> in_ptr_, in_idx_;
  // Per-object access lists (program order).
  std::vector<std::vector<TaskId>> writers_;
  std::vector<std::vector<TaskId>> readers_;
};

/// Builds the 20-task / 11-object DAG of the paper's Figure 2(a), with unit
/// object sizes and unit task costs. Used by tests and the quickstart.
TaskGraph make_paper_figure2_graph();

}  // namespace rapid::graph
