#include "rapid/graph/task_graph.hpp"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "rapid/support/check.hpp"
#include "rapid/support/str.hpp"

namespace rapid::graph {

const char* dep_kind_name(DepKind kind) {
  switch (kind) {
    case DepKind::kTrue:
      return "true";
    case DepKind::kAnti:
      return "anti";
    case DepKind::kOutput:
      return "output";
  }
  return "?";
}

std::vector<DataId> Task::accesses() const {
  std::vector<DataId> all = reads;
  all.insert(all.end(), writes.begin(), writes.end());
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

DataId TaskGraph::add_data(std::string name, std::int64_t size_bytes,
                           ProcId owner) {
  RAPID_CHECK(!finalized_, "graph is finalized");
  RAPID_CHECK(size_bytes >= 0, "negative object size");
  data_.push_back(DataObject{std::move(name), size_bytes, owner});
  return static_cast<DataId>(data_.size() - 1);
}

TaskId TaskGraph::add_task(std::string name, std::vector<DataId> reads,
                           std::vector<DataId> writes, double flops,
                           std::int32_t commute_group) {
  RAPID_CHECK(!finalized_, "graph is finalized");
  RAPID_CHECK(flops >= 0.0, "negative flops");
  auto dedupe = [this](std::vector<DataId>& ids) {
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    for (DataId d : ids) {
      RAPID_CHECK(d >= 0 && d < num_data(), cat("unknown data id ", d));
    }
  };
  dedupe(reads);
  dedupe(writes);
  RAPID_CHECK(!reads.empty() || !writes.empty(),
              "task must access at least one object");
  tasks_.push_back(Task{std::move(name), std::move(reads), std::move(writes),
                        flops, commute_group});
  return static_cast<TaskId>(tasks_.size() - 1);
}

void TaskGraph::set_owner(DataId d, ProcId owner) {
  RAPID_CHECK(d >= 0 && d < num_data(), "unknown data id");
  data_[d].owner = owner;
}

const Task& TaskGraph::task(TaskId t) const {
  RAPID_CHECK(t >= 0 && t < num_tasks(), cat("unknown task id ", t));
  return tasks_[t];
}

const DataObject& TaskGraph::data(DataId d) const {
  RAPID_CHECK(d >= 0 && d < num_data(), cat("unknown data id ", d));
  return data_[d];
}

void TaskGraph::finalize() {
  RAPID_CHECK(!finalized_, "finalize() called twice");
  derive_edges();
  mark_redundant_edges();
  build_adjacency();
  finalized_ = true;
}

void TaskGraph::drop_edge_for_test(std::int32_t edge_index) {
  RAPID_CHECK(finalized_, "graph not finalized");
  RAPID_CHECK(edge_index >= 0 &&
                  edge_index < static_cast<std::int32_t>(edges_.size()),
              cat("unknown edge index ", edge_index));
  edges_[static_cast<std::size_t>(edge_index)].redundant = true;
  build_adjacency();
}

namespace {

/// Per-object inspector state (see header comment for the commuting-epoch
/// semantics).
struct ObjState {
  std::vector<TaskId> writers;       // current write epoch
  std::vector<TaskId> prev_writers;  // epoch before current
  std::int32_t group = -2;           // commute group of current epoch
  std::vector<TaskId> readers;       // readers since current epoch began
  // Readers of the previous epoch: a writer that *joins* the current epoch
  // must also be ordered after them (its commuting peers got those anti
  // edges when the epoch began; without this the joiner and a prior reader
  // would be unordered and the reader could observe a half-updated value).
  std::vector<TaskId> prev_readers;
};

}  // namespace

void TaskGraph::derive_edges() {
  std::vector<ObjState> state(data_.size());
  writers_.assign(data_.size(), {});
  readers_.assign(data_.size(), {});

  auto add_edge = [this](TaskId src, TaskId dst, DataId obj, DepKind kind) {
    if (src == dst) return;
    edges_.push_back(Edge{src, dst, obj, kind, false});
  };

  for (TaskId t = 0; t < num_tasks(); ++t) {
    const Task& task = tasks_[t];
    std::unordered_set<DataId> write_set(task.writes.begin(),
                                         task.writes.end());
    // Pure reads first.
    for (DataId d : task.reads) {
      readers_[d].push_back(t);
      if (write_set.count(d)) continue;  // handled with the write below
      ObjState& s = state[d];
      for (TaskId w : s.writers) add_edge(w, t, d, DepKind::kTrue);
      s.readers.push_back(t);
    }
    // Writes (including read-modify-writes).
    for (DataId d : task.writes) {
      ObjState& s = state[d];
      writers_[d].push_back(t);
      const bool rmw =
          std::binary_search(task.reads.begin(), task.reads.end(), d);
      const bool joins_commute_epoch = task.commute_group >= 0 &&
                                       s.group == task.commute_group &&
                                       !s.writers.empty();
      if (joins_commute_epoch) {
        // Mutually unordered with the epoch's other writers; ordered after
        // the previous epoch, after the previous epoch's readers, and after
        // any external readers of this epoch.
        for (TaskId w : s.prev_writers) {
          add_edge(w, t, d, rmw ? DepKind::kTrue : DepKind::kOutput);
        }
        for (TaskId r : s.prev_readers) add_edge(r, t, d, DepKind::kAnti);
        for (TaskId r : s.readers) add_edge(r, t, d, DepKind::kAnti);
        s.writers.push_back(t);
        continue;
      }
      // New epoch: ordered after current writers and readers.
      for (TaskId w : s.writers) {
        add_edge(w, t, d, rmw ? DepKind::kTrue : DepKind::kOutput);
      }
      for (TaskId r : s.readers) add_edge(r, t, d, DepKind::kAnti);
      s.prev_writers = std::move(s.writers);
      s.writers = {t};
      s.group = task.commute_group >= 0 ? task.commute_group : -1;
      s.prev_readers = std::move(s.readers);
      s.readers.clear();
    }
  }

  // Deduplicate exact duplicates (same endpoints, object and kind).
  std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
    return std::tie(a.src, a.dst, a.object, a.kind) <
           std::tie(b.src, b.dst, b.object, b.kind);
  });
  edges_.erase(std::unique(edges_.begin(), edges_.end(),
                           [](const Edge& a, const Edge& b) {
                             return a.src == b.src && a.dst == b.dst &&
                                    a.object == b.object && a.kind == b.kind;
                           }),
               edges_.end());
}

void TaskGraph::mark_redundant_edges() {
  // An anti/output edge (u, v) is redundant if v is reachable from u through
  // true edges (possibly interleaved with already-required sync edges — we
  // conservatively use true edges only, which can only under-mark).
  std::vector<std::vector<TaskId>> true_succ(tasks_.size());
  std::int64_t n_true = 0, n_sync = 0;
  for (const Edge& e : edges_) {
    if (e.kind == DepKind::kTrue) {
      true_succ[e.src].push_back(e.dst);
      ++n_true;
    } else {
      ++n_sync;
    }
  }
  if (n_sync == 0) return;
  if (n_sync * std::max<std::int64_t>(n_true, 1) > kRedundancyWorkCap) {
    // Too expensive; keep all sync edges (correct, possibly more messages).
    return;
  }
  // Topological levels over true edges bound the search.
  std::vector<std::int32_t> level(tasks_.size(), 0);
  {
    std::vector<std::int32_t> indeg(tasks_.size(), 0);
    for (TaskId u = 0; u < num_tasks(); ++u) {
      for (TaskId v : true_succ[u]) ++indeg[v];
    }
    std::deque<TaskId> queue;
    for (TaskId t = 0; t < num_tasks(); ++t) {
      if (indeg[t] == 0) queue.push_back(t);
    }
    while (!queue.empty()) {
      const TaskId u = queue.front();
      queue.pop_front();
      for (TaskId v : true_succ[u]) {
        level[v] = std::max(level[v], level[u] + 1);
        if (--indeg[v] == 0) queue.push_back(v);
      }
    }
  }
  std::vector<std::int32_t> visited(tasks_.size(), -1);
  std::vector<TaskId> stack;
  for (std::size_t ei = 0; ei < edges_.size(); ++ei) {
    Edge& e = edges_[ei];
    if (e.kind == DepKind::kTrue) continue;
    if (level[e.src] >= level[e.dst]) continue;  // no true path possible
    // DFS from src along true edges, pruned by level.
    const auto stamp = static_cast<std::int32_t>(ei);
    stack.assign(1, e.src);
    visited[e.src] = stamp;
    bool reachable = false;
    while (!stack.empty() && !reachable) {
      const TaskId u = stack.back();
      stack.pop_back();
      for (TaskId v : true_succ[u]) {
        if (v == e.dst) {
          reachable = true;
          break;
        }
        if (visited[v] != stamp && level[v] < level[e.dst]) {
          visited[v] = stamp;
          stack.push_back(v);
        }
      }
    }
    e.redundant = reachable;
  }
}

void TaskGraph::build_adjacency() {
  const auto n = tasks_.size();
  out_ptr_.assign(n + 1, 0);
  in_ptr_.assign(n + 1, 0);
  for (const Edge& e : edges_) {
    if (e.redundant) continue;
    ++out_ptr_[static_cast<std::size_t>(e.src) + 1];
    ++in_ptr_[static_cast<std::size_t>(e.dst) + 1];
  }
  for (std::size_t i = 0; i < n; ++i) {
    out_ptr_[i + 1] += out_ptr_[i];
    in_ptr_[i + 1] += in_ptr_[i];
  }
  out_idx_.resize(static_cast<std::size_t>(out_ptr_[n]));
  in_idx_.resize(static_cast<std::size_t>(in_ptr_[n]));
  std::vector<std::int32_t> out_next(out_ptr_.begin(), out_ptr_.end() - 1);
  std::vector<std::int32_t> in_next(in_ptr_.begin(), in_ptr_.end() - 1);
  for (std::size_t ei = 0; ei < edges_.size(); ++ei) {
    const Edge& e = edges_[ei];
    if (e.redundant) continue;
    out_idx_[out_next[e.src]++] = static_cast<std::int32_t>(ei);
    in_idx_[in_next[e.dst]++] = static_cast<std::int32_t>(ei);
  }
}

std::span<const std::int32_t> TaskGraph::out_edges(TaskId t) const {
  RAPID_CHECK(finalized_, "graph not finalized");
  RAPID_CHECK(t >= 0 && t < num_tasks(), "unknown task id");
  return {out_idx_.data() + out_ptr_[t],
          static_cast<std::size_t>(out_ptr_[t + 1] - out_ptr_[t])};
}

std::span<const std::int32_t> TaskGraph::in_edges(TaskId t) const {
  RAPID_CHECK(finalized_, "graph not finalized");
  RAPID_CHECK(t >= 0 && t < num_tasks(), "unknown task id");
  return {in_idx_.data() + in_ptr_[t],
          static_cast<std::size_t>(in_ptr_[t + 1] - in_ptr_[t])};
}

std::span<const TaskId> TaskGraph::writers(DataId d) const {
  RAPID_CHECK(finalized_, "graph not finalized");
  RAPID_CHECK(d >= 0 && d < num_data(), "unknown data id");
  return {writers_[d].data(), writers_[d].size()};
}

std::span<const TaskId> TaskGraph::readers(DataId d) const {
  RAPID_CHECK(finalized_, "graph not finalized");
  RAPID_CHECK(d >= 0 && d < num_data(), "unknown data id");
  return {readers_[d].data(), readers_[d].size()};
}

std::vector<TaskId> TaskGraph::topological_order() const {
  RAPID_CHECK(finalized_, "graph not finalized");
  std::vector<std::int32_t> indeg(tasks_.size(), 0);
  for (TaskId t = 0; t < num_tasks(); ++t) {
    indeg[t] = static_cast<std::int32_t>(in_edges(t).size());
  }
  std::deque<TaskId> queue;
  for (TaskId t = 0; t < num_tasks(); ++t) {
    if (indeg[t] == 0) queue.push_back(t);
  }
  std::vector<TaskId> order;
  order.reserve(tasks_.size());
  while (!queue.empty()) {
    const TaskId u = queue.front();
    queue.pop_front();
    order.push_back(u);
    for (std::int32_t ei : out_edges(u)) {
      const TaskId v = edges_[ei].dst;
      if (--indeg[v] == 0) queue.push_back(v);
    }
  }
  RAPID_CHECK(order.size() == tasks_.size(),
              "transformed dependence graph contains a cycle");
  return order;
}

std::int64_t TaskGraph::sequential_space() const {
  std::int64_t total = 0;
  for (const DataObject& d : data_) total += d.size_bytes;
  return total;
}

double TaskGraph::total_flops() const {
  double total = 0.0;
  for (const Task& t : tasks_) total += t.flops;
  return total;
}

TaskGraph make_paper_figure2_graph() {
  TaskGraph g;
  // 11 unit-size objects d1..d11; cyclic owner mapping on 2 processors
  // assigns odd ids to P0 and even ids to P1 (owner = (i-1) mod 2).
  std::vector<DataId> d(12, kInvalidData);
  for (int i = 1; i <= 11; ++i) {
    d[i] = g.add_data(cat("d", i), 1, static_cast<ProcId>((i - 1) % 2));
  }
  auto writer = [&](int j) {
    g.add_task(cat("T[", j, "]"), {}, {d[j]}, 1.0);
  };
  auto update = [&](int j) {
    g.add_task(cat("T[", j, "]"), {d[j]}, {d[j]}, 1.0);
  };
  auto reader = [&](int i, int j) {
    g.add_task(cat("T[", i, ",", j, "]"), {d[i]}, {d[j]}, 1.0);
  };
  // 20 tasks in program order. VOLA(P0) = {d8}; VOLA(P1) = {d1,d3,d5,d7},
  // matching the paper's description of Figure 2(a).
  writer(1);      // T[1]
  writer(3);      // T[3]
  writer(5);      // T[5]
  writer(7);      // T[7]
  reader(1, 2);   // T[1,2]
  update(2);      // T[2]
  reader(1, 4);   // T[1,4]
  reader(3, 4);   // T[3,4]
  reader(3, 10);  // T[3,10]
  reader(5, 10);  // T[5,10]
  reader(5, 6);   // T[5,6]
  reader(7, 8);   // T[7,8]
  update(8);      // T[8]
  reader(8, 9);   // T[8,9]
  reader(4, 10);  // T[4,10]
  reader(2, 10);  // T[2,10]
  reader(4, 6);   // T[4,6]
  update(9);      // T[9]
  reader(9, 11);  // T[9,11]
  update(10);     // T[10]
  g.finalize();
  return g;
}

}  // namespace rapid::graph
