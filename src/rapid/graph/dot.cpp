#include "rapid/graph/dot.hpp"

#include "rapid/support/check.hpp"
#include "rapid/support/str.hpp"

namespace rapid::graph {

namespace {

/// Escapes a label for a quoted Graphviz string.
std::string escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string to_dot(const TaskGraph& graph, const DotOptions& options) {
  RAPID_CHECK(graph.finalized(), "graph must be finalized");
  RAPID_CHECK(options.proc_of_task.empty() ||
                  static_cast<TaskId>(options.proc_of_task.size()) ==
                      graph.num_tasks(),
              "proc_of_task size mismatch");
  std::string out = "digraph task_graph {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n";

  if (options.proc_of_task.empty()) {
    for (TaskId t = 0; t < graph.num_tasks(); ++t) {
      out += cat("  t", t, " [label=\"", escape(graph.task(t).name), "\"];\n");
    }
  } else {
    ProcId max_proc = 0;
    for (ProcId p : options.proc_of_task) max_proc = std::max(max_proc, p);
    for (ProcId p = 0; p <= max_proc; ++p) {
      out += cat("  subgraph cluster_p", p, " {\n    label=\"P", p,
                 "\";\n    style=rounded;\n");
      for (TaskId t = 0; t < graph.num_tasks(); ++t) {
        if (options.proc_of_task[t] != p) continue;
        out += cat("    t", t, " [label=\"", escape(graph.task(t).name),
                   "\"];\n");
      }
      out += "  }\n";
    }
  }

  for (const Edge& e : graph.edges()) {
    if (e.redundant && !options.show_redundant) continue;
    std::string attrs;
    if (e.redundant) {
      attrs = "style=dotted, color=gray";
    } else if (e.kind != DepKind::kTrue) {
      attrs = "style=dashed";
    }
    if (options.label_objects && e.object != kInvalidData) {
      if (!attrs.empty()) attrs += ", ";
      attrs += cat("label=\"", escape(graph.data(e.object).name), "\"");
    }
    out += cat("  t", e.src, " -> t", e.dst);
    if (!attrs.empty()) out += cat(" [", attrs, "]");
    out += ";\n";
  }
  out += "}\n";
  return out;
}

}  // namespace rapid::graph
