// Graphviz export of task graphs and schedules, for debugging and docs:
// tasks as nodes (clustered per processor when a schedule is given), true
// dependences as solid edges, kept anti/output synchronization edges as
// dashed, subsumed edges omitted.
#pragma once

#include <string>

#include "rapid/graph/task_graph.hpp"

namespace rapid::graph {

struct DotOptions {
  /// Processor of each task; tasks are grouped into per-processor clusters
  /// when non-empty.
  std::vector<ProcId> proc_of_task;
  /// Include edge labels naming the carried data object.
  bool label_objects = true;
  /// Include subsumed (redundant) edges, dotted gray.
  bool show_redundant = false;
};

/// Renders the transformed dependence graph as a Graphviz digraph.
std::string to_dot(const TaskGraph& graph, const DotOptions& options = {});

}  // namespace rapid::graph
