// Shared identifier types for the task parallelism model.
#pragma once

#include <cstdint>

namespace rapid::graph {

using TaskId = std::int32_t;
using DataId = std::int32_t;
using ProcId = std::int32_t;

inline constexpr TaskId kInvalidTask = -1;
inline constexpr DataId kInvalidData = -1;
inline constexpr ProcId kInvalidProc = -1;

}  // namespace rapid::graph
