#include "rapid/graph/dcg.hpp"

#include <algorithm>

#include "rapid/support/check.hpp"

namespace rapid::graph {

Dcg build_dcg(const TaskGraph& graph) {
  RAPID_CHECK(graph.finalized(), "graph must be finalized");
  Dcg dcg;
  dcg.task_assoc.resize(static_cast<std::size_t>(graph.num_tasks()));
  dcg.succ.resize(static_cast<std::size_t>(graph.num_data()));

  for (TaskId t = 0; t < graph.num_tasks(); ++t) {
    const Task& task = graph.task(t);
    auto& assoc = dcg.task_assoc[t];
    for (DataId d : task.reads) {
      const bool modifies =
          std::binary_search(task.writes.begin(), task.writes.end(), d);
      if (!modifies) assoc.push_back(d);
    }
    if (assoc.empty()) {
      // Every read is also a write here. Single write: the paper's "only
      // modifies d_i and uses no other objects" rule. Multiple writes: the
      // extension from the header (associate with all written objects).
      assoc = task.writes;
    }
    RAPID_CHECK(!assoc.empty(), "task with no data association");
    std::sort(assoc.begin(), assoc.end());
    assoc.erase(std::unique(assoc.begin(), assoc.end()), assoc.end());
    // Multi-association: strongly connect the associated nodes.
    for (std::size_t a = 0; a + 1 < assoc.size(); ++a) {
      for (std::size_t b = a + 1; b < assoc.size(); ++b) {
        dcg.succ[assoc[a]].push_back(assoc[b]);
        dcg.succ[assoc[b]].push_back(assoc[a]);
      }
    }
  }

  // Temporal edges from transformed-graph dependences.
  for (const Edge& e : graph.edges()) {
    if (e.redundant) continue;
    for (DataId di : dcg.task_assoc[e.src]) {
      for (DataId dj : dcg.task_assoc[e.dst]) {
        if (di != dj) dcg.succ[di].push_back(dj);
      }
    }
  }
  for (auto& list : dcg.succ) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  return dcg;
}

namespace {

/// Iterative Tarjan SCC. Returns comp[node] with components numbered in
/// *reverse* topological order of the condensation (standard Tarjan
/// property: a component is numbered when popped, after its successors).
struct TarjanResult {
  std::vector<std::int32_t> comp;
  std::int32_t num_components = 0;
};

TarjanResult tarjan_scc(const std::vector<std::vector<DataId>>& succ) {
  const auto n = static_cast<DataId>(succ.size());
  TarjanResult res;
  res.comp.assign(static_cast<std::size_t>(n), -1);
  std::vector<std::int32_t> index(static_cast<std::size_t>(n), -1);
  std::vector<std::int32_t> lowlink(static_cast<std::size_t>(n), 0);
  std::vector<bool> on_stack(static_cast<std::size_t>(n), false);
  std::vector<DataId> stack;
  std::int32_t next_index = 0;

  struct Frame {
    DataId node;
    std::size_t child = 0;
  };
  std::vector<Frame> dfs;

  for (DataId root = 0; root < n; ++root) {
    if (index[root] != -1) continue;
    dfs.push_back(Frame{root});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!dfs.empty()) {
      Frame& frame = dfs.back();
      const DataId u = frame.node;
      if (frame.child < succ[u].size()) {
        const DataId v = succ[u][frame.child++];
        if (index[v] == -1) {
          index[v] = lowlink[v] = next_index++;
          stack.push_back(v);
          on_stack[v] = true;
          dfs.push_back(Frame{v});
        } else if (on_stack[v]) {
          lowlink[u] = std::min(lowlink[u], index[v]);
        }
        continue;
      }
      // All children explored.
      if (lowlink[u] == index[u]) {
        while (true) {
          const DataId w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          res.comp[w] = res.num_components;
          if (w == u) break;
        }
        ++res.num_components;
      }
      dfs.pop_back();
      if (!dfs.empty()) {
        lowlink[dfs.back().node] =
            std::min(lowlink[dfs.back().node], lowlink[u]);
      }
    }
  }
  return res;
}

}  // namespace

SliceDecomposition decompose_slices(const TaskGraph& graph, const Dcg& dcg) {
  const TarjanResult scc = tarjan_scc(dcg.succ);
  // Tarjan numbers components in reverse topological order; flip it.
  auto topo_of_comp = [&](std::int32_t c) {
    return scc.num_components - 1 - c;
  };

  std::vector<Slice> all(static_cast<std::size_t>(scc.num_components));
  for (DataId d = 0; d < dcg.num_nodes(); ++d) {
    all[topo_of_comp(scc.comp[d])].objects.push_back(d);
  }
  std::vector<std::int32_t> raw_slice_of_task(
      static_cast<std::size_t>(graph.num_tasks()), -1);
  for (TaskId t = 0; t < graph.num_tasks(); ++t) {
    // All of a task's associated nodes share one SCC (multi-association
    // strongly connects them), so any of them determines the slice.
    const DataId d0 = dcg.task_assoc[t].front();
    const std::int32_t s = topo_of_comp(scc.comp[d0]);
    for (DataId d : dcg.task_assoc[t]) {
      RAPID_CHECK(topo_of_comp(scc.comp[d]) == s,
                  "task associated with nodes in different SCCs");
    }
    raw_slice_of_task[t] = s;
    all[s].tasks.push_back(t);
  }

  // Drop task-less slices and renumber.
  SliceDecomposition out;
  std::vector<std::int32_t> renumber(all.size(), -1);
  for (std::size_t s = 0; s < all.size(); ++s) {
    if (all[s].tasks.empty()) continue;
    renumber[s] = static_cast<std::int32_t>(out.slices.size());
    out.slices.push_back(std::move(all[s]));
  }
  out.slice_of_task.resize(static_cast<std::size_t>(graph.num_tasks()));
  for (TaskId t = 0; t < graph.num_tasks(); ++t) {
    out.slice_of_task[t] = renumber[raw_slice_of_task[t]];
    RAPID_CHECK(out.slice_of_task[t] >= 0, "task lost its slice");
  }
  return out;
}

SliceDecomposition compute_slices(const TaskGraph& graph) {
  return decompose_slices(graph, build_dcg(graph));
}

bool dcg_is_acyclic(const Dcg& dcg) {
  const TarjanResult scc = tarjan_scc(dcg.succ);
  return scc.num_components == dcg.num_nodes();
}

}  // namespace rapid::graph
