// Vector-clock happens-before engine over obs traces. The obs rings are
// single-writer and read only after thread::join(), so each ring is a
// totally ordered thread history; the cross-ring edges of the paper's
// protocol are recovered from the event vocabulary itself:
//
//   publish → consume      the content put's release store of put_seq and
//                          the reader's acquire load of it (the kConsume
//                          stamp is that very load, so the edge is a real
//                          release/acquire synchronizes-with, not a
//                          timestamp heuristic)
//   pkg send → install     the address-package mailbox handoff
//   flag send → task begin the completion flag's release store gating the
//                          first remote-sync successor on the reader
//   NACK → resend          the re-request inbox mutex ordering a waiter's
//                          request before the owner's retransmit
//
// Doorbell signal→wake edges carry no extra ordering here: every ring of
// the data-plane doorbell accompanies one of the protocol events above, so
// the wakeup chain is subsumed by these edges, and the handshake itself is
// model-checked exhaustively by verify/litmus.hpp instead. Plan dependences
// need no edges of their own either — a same-processor dependence is ring
// program order, and a cross-processor one is realized by exactly the
// publish/flag messages listed above (that realization is what
// conformance.hpp checks).
//
// The engine assigns every event a vector clock by processing events in a
// topological order of (program order ∪ cross edges); happens_before is
// then a single clock comparison. verify/conformance.cpp derives the edges
// and asks the race questions; this header is protocol-agnostic.
#pragma once

#include <cstdint>
#include <vector>

#include "rapid/obs/trace.hpp"
#include "rapid/rt/plan.hpp"

namespace rapid::verify {

/// One trace event, addressed as (ring, index into TraceView::rings[ring]).
struct EventRef {
  std::int32_t proc = -1;
  std::int32_t index = -1;

  bool valid() const { return proc >= 0; }
  bool operator==(const EventRef& other) const {
    return proc == other.proc && index == other.index;
  }
};

/// Post-run snapshot of a Trace: per-ring event sequences (oldest first)
/// plus the per-ring overflow counts. The conformance checker consumes a
/// TraceView rather than the live Trace so the negative-path tests can
/// seed protocol violations by editing the view (see verify/testing.hpp).
struct TraceView {
  std::vector<std::vector<obs::TraceEvent>> rings;
  std::vector<std::int64_t> dropped;

  static TraceView from(const obs::Trace& trace);

  int num_procs() const { return static_cast<int>(rings.size()); }
  /// True when any ring overflowed: the retained prefix of history is
  /// gone, and absence-of-event conclusions are no longer sound.
  bool truncated() const;
  const obs::TraceEvent& at(EventRef ref) const {
    return rings[static_cast<std::size_t>(ref.proc)]
                [static_cast<std::size_t>(ref.index)];
  }
};

/// The protocol's cross-ring edges, plus the match failures the derivation
/// surfaced (the conformance checker turns those into findings).
struct ProtocolEdges {
  /// (src, dst) pairs: src happens-before dst.
  std::vector<std::pair<EventRef, EventRef>> edges;
  /// kConsume events with no matching publication on the owner's ring —
  /// a read of content nothing released (HB-RACE evidence).
  std::vector<EventRef> unmatched_consumes;
  /// kAddrPkgInstall events with no matching kAddrPkgSend (CONF-MSG
  /// evidence: an installed package nobody sent).
  std::vector<EventRef> unmatched_installs;
};

/// Derives the publish→consume, pkg send→install, flag→gated-task-begin
/// and NACK→resend edges from the trace, matching on the put-sequence
/// stamps (TraceEvent::d) where present and falling back to
/// (object, version, dest) for stamp-free traces.
ProtocolEdges derive_protocol_edges(const rt::RunPlan& plan,
                                    const TraceView& view);

/// Vector clocks over (ring program order ∪ cross edges).
class HbGraph {
 public:
  HbGraph(const TraceView& view,
          const std::vector<std::pair<EventRef, EventRef>>& cross_edges);

  /// False when the edges are cyclic — impossible for a trace produced by
  /// a real run (edges follow real synchronization), so a cycle means the
  /// trace was corrupted or hand-edited; happens_before is then
  /// meaningless and the conformance checker reports instead of querying.
  bool consistent() const { return consistent_; }

  /// Strict happens-before: a ≺ b under (program order ∪ cross edges)+.
  /// Requires consistent().
  bool happens_before(EventRef a, EventRef b) const;

  std::int64_t num_events() const { return num_events_; }

 private:
  /// clocks_[r] holds, flattened, one vector clock of width num_procs per
  /// event of ring r: clocks_[r][i * P + q] = number of ring-q events that
  /// happen-before-or-equal event (r, i).
  std::vector<std::vector<std::int32_t>> clocks_;
  std::int32_t num_procs_ = 0;
  std::int64_t num_events_ = 0;
  bool consistent_ = true;
};

}  // namespace rapid::verify
