// rapid_check: execution-conformance gate. Runs seed workloads under the
// event tracer (threaded and/or simulated), replays each trace through the
// vector-clock happens-before engine and the conformance rules (HB-RACE /
// CONF-STATE / CONF-MSG / CONF-CAP, see verify/conformance.hpp), optionally
// sweeps the recovery fault presets across seeds, and runs the litmus model
// checker over the lock-free primitives. Exits non-zero iff any ERROR
// finding survives (or, with --strict, any warning), or a litmus variant
// disagrees with its expectation.
//
//   ./rapid_check                                   # cholesky+lu, both executors
//   ./rapid_check --workload=lu --executor=sim
//   ./rapid_check --faults=all --seeds=32 --json=findings.json
//   ./rapid_check --litmus-only                     # just the model checker
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "rapid/num/cholesky_app.hpp"
#include "rapid/num/lu_app.hpp"
#include "rapid/num/workloads.hpp"
#include "rapid/obs/trace.hpp"
#include "rapid/rt/faults.hpp"
#include "rapid/rt/plan.hpp"
#include "rapid/rt/sim_executor.hpp"
#include "rapid/rt/threaded_executor.hpp"
#include "rapid/rt/transport.hpp"
#include "rapid/sched/liveness.hpp"
#include "rapid/sched/mapping.hpp"
#include "rapid/sched/ordering.hpp"
#include "rapid/support/exit_codes.hpp"
#include "rapid/support/flags.hpp"
#include "rapid/support/json.hpp"
#include "rapid/support/str.hpp"
#include "rapid/verify/conformance.hpp"
#include "rapid/verify/litmus.hpp"

namespace {

using namespace rapid;

struct Workload {
  std::string name;
  graph::TaskGraph* graph = nullptr;
  std::shared_ptr<num::CholeskyApp> cholesky;
  std::shared_ptr<num::LuApp> lu;

  rt::ObjectInit make_init() const {
    return cholesky ? cholesky->make_init() : lu->make_init();
  }
  rt::TaskBody make_body() const {
    return cholesky ? cholesky->make_body() : lu->make_body();
  }
};

Workload make_workload(const std::string& name, double scale,
                       sparse::Index block, int procs) {
  Workload w;
  w.name = name;
  if (name == "cholesky") {
    auto workload = num::bcsstk24_like(scale);
    w.cholesky = std::make_shared<num::CholeskyApp>(
        num::CholeskyApp::build(std::move(workload.matrix), block, procs));
    w.graph = &w.cholesky->mutable_graph();
  } else if (name == "lu") {
    auto workload = num::goodwin_like(scale);
    w.lu = std::make_shared<num::LuApp>(
        num::LuApp::build(std::move(workload.matrix), block, procs));
    w.graph = &w.lu->mutable_graph();
  } else {
    RAPID_FAIL(cat("unknown workload '", name, "' (expected cholesky|lu)"));
  }
  return w;
}

struct CheckedRun {
  std::string label;
  verify::AuditReport report;
};

JsonValue finding_json(const verify::Finding& f) {
  JsonValue j = JsonValue::object();
  j["rule"] = f.rule;
  j["severity"] = f.severity == verify::Severity::kError     ? "error"
                  : f.severity == verify::Severity::kWarning ? "warning"
                                                             : "info";
  if (f.task != graph::kInvalidTask) j["task"] = f.task;
  if (f.object != graph::kInvalidData) j["object"] = f.object;
  if (f.proc != graph::kInvalidProc) j["proc"] = f.proc;
  if (f.position >= 0) j["position"] = f.position;
  j["message"] = f.message;
  if (!f.hint.empty()) j["hint"] = f.hint;
  return j;
}

void print_report(const CheckedRun& run) {
  std::printf("%-42s %s\n", run.label.c_str(),
              run.report.summary().c_str());
  if (run.report.errors() > 0 || run.report.warnings() > 0) {
    std::printf("%s", run.report.to_string().c_str());
  }
}

void write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  RAPID_CHECK(f != nullptr, cat("cannot open ", path, " for writing"));
  const std::size_t written =
      std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  RAPID_CHECK(written == content.size(), cat("short write to ", path));
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.define("workload", "all", "cholesky|lu|all");
  flags.define("executor", "both", "threaded|sim|both");
  flags.define("transport", "inproc",
               "one-sided transport for the threaded executor: inproc|shm "
               "(shm forks one worker process per paper-processor)");
  flags.define("scale", "0.4", "workload scale in (0,1]");
  flags.define("block", "10", "block size for the matrix partition");
  flags.define("procs", "4", "number of processors");
  flags.define("frac", "0.6",
               "active-memory capacity as a fraction of TOT (escalated in "
               "0.1 steps until the run executes)");
  flags.define("events", "262144", "trace ring capacity per processor");
  flags.define("faults", "none",
               "recovery fault sweep: none|addr|put|slow|park|corrupt|dup|"
               "all (threaded executor, recovery on)");
  flags.define("seeds", "8", "seeds per fault preset");
  flags.define("slab", "true",
               "run with the slab-backed arena fast path (the conformance "
               "replay matches the flag)");
  flags.define("litmus", "true",
               "model-check the Doorbell/mailbox/publication primitives");
  flags.define("litmus-only", "false", "skip the trace runs entirely");
  flags.define("strict", "false", "exit non-zero on warnings too");
  flags.define("json", "", "write the findings as JSON to this path");
  try {
    flags.parse(argc, argv);
  } catch (const rapid::Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return kExitInfraError;
  }
  if (flags.help_requested()) return kExitOk;

  const int procs = static_cast<int>(flags.get_int("procs"));
  const double scale = flags.get_double("scale");
  const auto block = static_cast<sparse::Index>(flags.get_int("block"));
  const bool strict = flags.get_bool("strict");
  rt::TransportKind transport = rt::TransportKind::kInProc;
  try {
    transport = rt::transport_from_string(flags.get("transport"));
  } catch (const rapid::Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return kExitInfraError;
  }
  const bool shm = transport == rt::TransportKind::kShm;
  const auto params = machine::MachineParams::cray_t3d(procs);

  std::vector<std::string> workloads;
  if (flags.get("workload") == "all") {
    workloads = {"cholesky", "lu"};
  } else {
    workloads = {flags.get("workload")};
  }
  std::vector<std::string> executors;
  if (flags.get("executor") == "both") {
    executors = {"threaded", "sim"};
  } else {
    executors = {flags.get("executor")};
  }
  std::vector<std::string> fault_presets;
  if (flags.get("faults") == "all") {
    fault_presets = {"addr", "put", "slow", "park", "corrupt", "dup"};
  } else if (flags.get("faults") != "none") {
    fault_presets = {flags.get("faults")};
  }

  obs::TraceConfig tcfg;
  tcfg.events_per_proc = static_cast<std::int32_t>(flags.get_int("events"));

  std::vector<CheckedRun> runs;
  std::int64_t total_errors = 0;
  std::int64_t total_warnings = 0;

  try {
    if (!flags.get_bool("litmus-only")) {
      for (const std::string& name : workloads) {
        const Workload w = make_workload(name, scale, block, procs);
        const auto assignment =
            sched::owner_compute_tasks(*w.graph, procs);
        const auto schedule =
            sched::schedule_rcp(*w.graph, assignment, procs, params);
        const rt::RunPlan plan = rt::build_run_plan(*w.graph, schedule);
        const auto liveness = sched::analyze_liveness(*w.graph, schedule);
        const std::int64_t tot = liveness.tot_mem();
        const std::int64_t min = liveness.min_mem();

        for (const std::string& executor : executors) {
          const bool threaded = executor == "threaded";
          RAPID_CHECK(threaded || executor == "sim",
                      cat("unknown executor '", executor, "'"));
          // First-fit fragmentation and alignment put the practical floor
          // above MIN_MEM; escalate until the run executes (same policy as
          // rapid_trace / bench_executor).
          std::unique_ptr<obs::Trace> trace;
          rt::RunReport report;
          std::int64_t capacity = 0;
          for (double frac = flags.get_double("frac");; frac += 0.1) {
            capacity = std::max(
                min + min / 8,
                static_cast<std::int64_t>(frac *
                                          static_cast<double>(tot)));
            trace = std::make_unique<obs::Trace>(procs, tcfg);
            rt::RunConfig config;
            config.params = params;
            config.capacity_per_proc = capacity;
            config.slab_arena = flags.get_bool("slab");
            if (threaded) {
              rt::ThreadedOptions options;
              options.trace = trace.get();
              options.transport = transport;
              rt::ThreadedExecutor exec(plan, config, w.make_init(),
                                        w.make_body(), options);
              report = exec.run();
            } else {
              report = rt::simulate(plan, config, trace.get());
            }
            if (report.executable) break;
            RAPID_CHECK(frac < 1.5, cat("run never became executable: ",
                                        report.failure));
          }

          verify::ConformanceOptions copt;
          copt.capacity_per_proc = capacity;
          copt.alignment = threaded ? 8 : 1;
          copt.slab_arena = flags.get_bool("slab");
          copt.report = &report;
          CheckedRun run;
          run.label = cat(name, "/", executor,
                          threaded && shm ? "+shm" : "", " clean");
          run.report = verify::check_conformance(plan, *trace, copt);
          total_errors += run.report.errors();
          total_warnings += run.report.warnings();
          print_report(run);
          runs.push_back(std::move(run));

          // Fault sweep: threaded only (the fault plane and the recovery
          // layer live in the threaded executor).
          if (!threaded) continue;
          for (const std::string& preset : fault_presets) {
            for (std::uint64_t seed = 1;
                 seed <= static_cast<std::uint64_t>(flags.get_int("seeds"));
                 ++seed) {
              trace = std::make_unique<obs::Trace>(procs, tcfg);
              rt::RunConfig config;
              config.params = params;
              config.capacity_per_proc = capacity;
              config.slab_arena = flags.get_bool("slab");
              rt::ThreadedOptions options;
              options.trace = trace.get();
              options.transport = transport;
              options.retry = RetryPolicy::standard();
              options.faults = rt::FaultPlan::preset(preset, seed);
              rt::ThreadedExecutor exec(plan, config, w.make_init(),
                                        w.make_body(), options);
              report = exec.run();
              RAPID_CHECK(report.executable,
                          cat(name, " ", preset, " seed ", seed,
                              " failed: ", report.failure));
              copt.report = &report;
              CheckedRun frun;
              frun.label = cat(name, "/threaded", shm ? "+shm " : " ",
                               preset, " seed ", seed);
              frun.report = verify::check_conformance(plan, *trace, copt);
              total_errors += frun.report.errors();
              total_warnings += frun.report.warnings();
              if (frun.report.errors() > 0 ||
                  frun.report.warnings() > 0) {
                print_report(frun);
              }
              runs.push_back(std::move(frun));
            }
            std::printf("%-42s checked x%lld seeds\n",
                        cat(name, "/threaded ", preset, " sweep").c_str(),
                        static_cast<long long>(flags.get_int("seeds")));
          }
        }
      }
    }
  } catch (const rapid::Error& e) {
    std::fprintf(stderr, "rapid_check: %s\n", e.what());
    return kExitInfraError;
  }

  // Litmus suite: the strong variants must verify clean, the weakened
  // variants must produce their counterexample.
  std::vector<verify::LitmusResult> litmus;
  bool litmus_ok = true;
  if (flags.get_bool("litmus") || flags.get_bool("litmus-only")) {
    litmus = verify::run_all_litmus();
    for (const verify::LitmusResult& r : litmus) {
      const bool ok = r.as_expected();
      litmus_ok = litmus_ok && ok;
      std::printf("litmus %-24s %s (%lld states%s)\n", r.name.c_str(),
                  ok ? (r.expect_clean ? "VERIFIED"
                                       : "counterexample found")
                     : "UNEXPECTED",
                  static_cast<long long>(r.states_explored),
                  r.expect_clean || r.violations.empty()
                      ? ""
                      : cat(", ", r.violations.size(), " violation(s)")
                            .c_str());
      if (!ok) {
        for (const std::string& v : r.violations) {
          std::printf("  %s\n", v.c_str());
        }
        if (r.violations.empty()) {
          std::printf("  expected a counterexample, found none — the "
                      "weakened ordering was not exercised\n");
        }
      }
    }
  }

  if (!flags.get("json").empty()) {
    JsonValue j = JsonValue::object();
    j["schema"] = 1;
    j["strict"] = strict;
    JsonValue& jruns = (j["runs"] = JsonValue::array());
    for (const CheckedRun& run : runs) {
      JsonValue jr = JsonValue::object();
      jr["label"] = run.label;
      jr["errors"] = static_cast<std::int64_t>(run.report.errors());
      jr["warnings"] = static_cast<std::int64_t>(run.report.warnings());
      JsonValue& jf = (jr["findings"] = JsonValue::array());
      for (const verify::Finding& f : run.report.findings) {
        jf.push_back(finding_json(f));
      }
      jruns.push_back(std::move(jr));
    }
    JsonValue& jl = (j["litmus"] = JsonValue::array());
    for (const verify::LitmusResult& r : litmus) {
      JsonValue jr = JsonValue::object();
      jr["name"] = r.name;
      jr["expect_clean"] = r.expect_clean;
      jr["states"] = r.states_explored;
      jr["as_expected"] = r.as_expected();
      JsonValue& jv = (jr["violations"] = JsonValue::array());
      for (const std::string& v : r.violations) jv.push_back(v);
      jl.push_back(std::move(jr));
    }
    write_file(flags.get("json"), j.dump());
    std::printf("wrote %s\n", flags.get("json").c_str());
  }

  std::printf("rapid_check: %lld error(s), %lld warning(s) across %zu "
              "run(s); litmus %s\n",
              static_cast<long long>(total_errors),
              static_cast<long long>(total_warnings), runs.size(),
              litmus.empty() ? "skipped" : litmus_ok ? "ok" : "FAILED");
  if (total_errors > 0 || !litmus_ok) return kExitFindings;
  if (strict && total_warnings > 0) return kExitFindings;
  return kExitOk;
}
