#include "rapid/verify/auditor.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <tuple>
#include <unordered_map>

#include "rapid/rt/map_engine.hpp"
#include "rapid/sched/liveness.hpp"
#include "rapid/support/str.hpp"

namespace rapid::verify {

const char* severity_name(Severity severity) {
  switch (severity) {
    case Severity::kInfo:
      return "INFO";
    case Severity::kWarning:
      return "WARNING";
    case Severity::kError:
      return "ERROR";
  }
  return "?";
}

int AuditReport::errors() const {
  return static_cast<int>(
      std::count_if(findings.begin(), findings.end(), [](const Finding& f) {
        return f.severity == Severity::kError;
      }));
}

int AuditReport::warnings() const {
  return static_cast<int>(
      std::count_if(findings.begin(), findings.end(), [](const Finding& f) {
        return f.severity == Severity::kWarning;
      }));
}

const Finding* AuditReport::find(const std::string& rule) const {
  for (const Finding& f : findings) {
    if (f.rule == rule) return &f;
  }
  return nullptr;
}

std::string AuditReport::summary() const {
  const int e = errors();
  const int w = warnings();
  if (e == 0 && w == 0) return "plan audit: clean";
  return cat("plan audit: ", e, e == 1 ? " error, " : " errors, ", w,
             w == 1 ? " warning" : " warnings");
}

std::string AuditReport::to_string() const {
  std::string out = summary();
  out += "\n";
  for (const Finding& f : findings) {
    out += cat("[", severity_name(f.severity), "] ", f.rule);
    if (f.proc != graph::kInvalidProc) out += cat(" proc ", f.proc);
    if (f.position >= 0) out += cat(" pos ", f.position);
    if (f.task != graph::kInvalidTask) out += cat(" task ", f.task);
    if (f.object != graph::kInvalidData) out += cat(" object ", f.object);
    out += cat(": ", f.message, "\n");
    if (!f.hint.empty()) out += cat("  hint: ", f.hint, "\n");
  }
  return out;
}

namespace {

using rt::RunPlan;
using sched::Schedule;

/// Reachability closure over the transformed graph: one bitset row per
/// task, filled in reverse topological order. reaches(a, b) answers
/// "is there a dependence path from a to b" in O(1).
class Reachability {
 public:
  Reachability(const graph::TaskGraph& graph,
               const std::vector<TaskId>& topo_order)
      : n_(graph.num_tasks()),
        words_(static_cast<std::size_t>(n_ + 63) / 64),
        bits_(static_cast<std::size_t>(n_) * words_, 0) {
    for (auto it = topo_order.rbegin(); it != topo_order.rend(); ++it) {
      const TaskId t = *it;
      std::uint64_t* row = bits_.data() + words_ * static_cast<std::size_t>(t);
      for (const std::int32_t ei : graph.out_edges(t)) {
        const TaskId succ = graph.edges()[ei].dst;
        const std::uint64_t* succ_row =
            bits_.data() + words_ * static_cast<std::size_t>(succ);
        for (std::size_t w = 0; w < words_; ++w) row[w] |= succ_row[w];
        row[static_cast<std::size_t>(succ) / 64] |=
            std::uint64_t{1} << (static_cast<std::size_t>(succ) % 64);
      }
    }
  }

  bool reaches(TaskId a, TaskId b) const {
    const std::uint64_t* row = bits_.data() + words_ * static_cast<std::size_t>(a);
    return (row[static_cast<std::size_t>(b) / 64] >>
            (static_cast<std::size_t>(b) % 64)) &
           1;
  }

 private:
  TaskId n_;
  std::size_t words_;
  std::vector<std::uint64_t> bits_;
};

/// Independent re-derivation of the write-epoch structure from the access
/// sets alone (same semantics as the plan builder's grouping, reimplemented
/// here so the auditor does not trust the component it audits): a writer
/// joins the current epoch iff it shares a non-negative commute group and
/// no pure reader of the object sits between it and the previous member in
/// program order.
std::vector<std::vector<TaskId>> derive_epochs(const graph::TaskGraph& graph,
                                               DataId d) {
  std::vector<TaskId> pure_readers;
  for (TaskId r : graph.readers(d)) {
    const auto& writes = graph.task(r).writes;
    if (!std::binary_search(writes.begin(), writes.end(), d)) {
      pure_readers.push_back(r);
    }
  }
  auto reader_between = [&pure_readers](TaskId a, TaskId b) {
    auto it = std::upper_bound(pure_readers.begin(), pure_readers.end(), a);
    return it != pure_readers.end() && *it < b;
  };
  std::vector<std::vector<TaskId>> epochs;
  std::int32_t current_group = -2;
  for (TaskId w : graph.writers(d)) {
    const std::int32_t g = graph.task(w).commute_group;
    if (!epochs.empty() && g >= 0 && g == current_group &&
        !reader_between(epochs.back().back(), w)) {
      epochs.back().push_back(w);
    } else {
      epochs.push_back({w});
      current_group = g >= 0 ? g : -2;
    }
  }
  return epochs;
}

/// One MAP observed by the symbolic capacity replay, with the owners its
/// address packages go to; input of the MBX-CROSS analysis.
struct MapEvent {
  ProcId proc = graph::kInvalidProc;
  std::int32_t pos = 0;
  std::vector<ProcId> package_dests;
  /// Volatiles this MAP allocated, and the position its allocated prefix
  /// reaches — inputs of the REC-CROSS analysis, which must know which
  /// remote reads the crossed MAP gates.
  std::vector<DataId> allocated;
  std::int32_t alloc_upto = 0;
};

class Auditor {
 public:
  Auditor(const graph::TaskGraph& graph, const Schedule& schedule,
          const RunPlan& plan, const AuditOptions& options)
      : graph_(graph), schedule_(schedule), plan_(plan), options_(options) {}

  AuditReport run() {
    check_shapes();
    check_schedule();
    if (index_ok_) {
      check_epochs_and_versions();
      check_messages();
      check_liveness();
      // The capacity replay drives the real MAP engine with the plan's
      // lifetime table; replaying against a table already known to be
      // broken would crash or produce nonsense findings.
      std::vector<MapEvent> maps;
      if (!has_live_errors()) {
        maps = check_capacity();
      } else if (options_.capacity_per_proc > 0) {
        add({.rule = "CAP-SKIPPED",
             .severity = Severity::kInfo,
             .message = "capacity replay skipped: the lifetime table has "
                        "LIVE-* errors, so MAP behaviour is undefined",
             .hint = "fix the lifetime findings first, then re-audit"});
      }
      check_dependence_completeness();
      check_mailbox_crossings(maps);
    }
    flush_truncation_notes();
    return std::move(report_);
  }

 private:
  void add(Finding finding) {
    const auto count = ++rule_counts_[finding.rule];
    if (count <= options_.max_findings_per_rule) {
      report_.findings.push_back(std::move(finding));
    }
  }

  void flush_truncation_notes() {
    for (const auto& [rule, count] : rule_counts_) {
      if (count > options_.max_findings_per_rule) {
        Finding f;
        f.rule = "AUDIT-TRUNCATED";
        f.severity = Severity::kInfo;
        f.message = cat(rule, ": ", count, " findings, only the first ",
                        options_.max_findings_per_rule, " shown");
        report_.findings.push_back(std::move(f));
      }
    }
  }

  bool has_live_errors() const {
    for (const Finding& f : report_.findings) {
      if (f.severity == Severity::kError && f.rule.rfind("LIVE-", 0) == 0) {
        return true;
      }
    }
    return false;
  }

  const std::string& task_name(TaskId t) const { return graph_.task(t).name; }
  const std::string& data_name(DataId d) const { return graph_.data(d).name; }

  // -- structural prerequisites (throw: auditing is impossible without) ---

  void check_shapes() {
    RAPID_CHECK(schedule_.num_procs > 0, "schedule has no processors");
    RAPID_CHECK(plan_.num_procs == schedule_.num_procs,
                "plan/schedule processor count mismatch");
    RAPID_CHECK(static_cast<TaskId>(plan_.tasks.size()) == graph_.num_tasks(),
                "plan task count != graph task count");
    RAPID_CHECK(static_cast<DataId>(plan_.objects.size()) == graph_.num_data(),
                "plan object count != graph object count");
    RAPID_CHECK(static_cast<int>(plan_.procs.size()) == plan_.num_procs,
                "plan processor table size mismatch");
  }

  // -- SCHED-*: the schedule itself -------------------------------------

  void check_schedule() {
    // Placement: every task exactly once, consistent with the index.
    std::vector<int> seen(static_cast<std::size_t>(graph_.num_tasks()), 0);
    for (ProcId p = 0; p < schedule_.num_procs; ++p) {
      for (std::size_t pos = 0; pos < schedule_.order[p].size(); ++pos) {
        const TaskId t = schedule_.order[p][pos];
        if (t < 0 || t >= graph_.num_tasks()) {
          add({.rule = "SCHED-PLACE",
               .proc = p,
               .position = static_cast<std::int32_t>(pos),
               .message = cat("unknown task id ", t, " in the order"),
               .hint = "rebuild the schedule from the graph"});
          index_ok_ = false;
          continue;
        }
        ++seen[static_cast<std::size_t>(t)];
      }
    }
    for (TaskId t = 0; t < graph_.num_tasks(); ++t) {
      if (seen[static_cast<std::size_t>(t)] != 1) {
        add({.rule = "SCHED-PLACE",
             .task = t,
             .message = cat("task '", task_name(t), "' scheduled ",
                            seen[static_cast<std::size_t>(t)],
                            " times (must be exactly once)"),
             .hint = "every task must appear exactly once across the "
                     "processor orders"});
        index_ok_ = false;
      }
    }
    if (static_cast<TaskId>(schedule_.proc_of_task.size()) !=
            graph_.num_tasks() ||
        static_cast<TaskId>(schedule_.pos_of_task.size()) !=
            graph_.num_tasks()) {
      add({.rule = "SCHED-PLACE",
           .message = "schedule index not built (call rebuild_index)",
           .hint = "Schedule::rebuild_index(num_tasks) before planning"});
      index_ok_ = false;
    }
    if (!index_ok_) return;

    // Same-processor dependences must go forward in the order (Theorem 1
    // assumes the per-processor order is a linear extension locally).
    for (const graph::Edge& e : graph_.edges()) {
      if (e.redundant) continue;
      const ProcId p = schedule_.proc_of_task[e.src];
      if (p != schedule_.proc_of_task[e.dst]) continue;
      if (schedule_.pos_of_task[e.src] >= schedule_.pos_of_task[e.dst]) {
        add({.rule = "SCHED-ORDER",
             .task = e.dst,
             .object = e.object,
             .proc = p,
             .position = schedule_.pos_of_task[e.dst],
             .message = cat(graph::dep_kind_name(e.kind), " dependence '",
                            task_name(e.src), "' -> '", task_name(e.dst),
                            "' runs backwards in processor ", p, "'s order"),
             .hint = "the ordering stage must emit a linear extension of "
                     "the transformed graph"});
      }
    }

    // Owner-compute: writers on the owner; plan permanents match owners.
    for (DataId d = 0; d < graph_.num_data(); ++d) {
      const ProcId owner = graph_.data(d).owner;
      if (owner < 0 || owner >= schedule_.num_procs) {
        add({.rule = "SCHED-OWNER",
             .object = d,
             .message = cat("object '", data_name(d), "' has no valid owner"),
             .hint = "run the mapping stage before scheduling"});
        continue;
      }
      for (TaskId w : graph_.writers(d)) {
        if (schedule_.proc_of_task[w] != owner) {
          add({.rule = "SCHED-OWNER",
               .task = w,
               .object = d,
               .proc = schedule_.proc_of_task[w],
               .message = cat("task '", task_name(w), "' writes '",
                              data_name(d), "' but runs on processor ",
                              schedule_.proc_of_task[w], ", not owner ",
                              owner),
               .hint = "owner-compute clustering must place all writers of "
                       "an object on its owner"});
        }
      }
    }
    for (ProcId p = 0; p < plan_.num_procs; ++p) {
      for (DataId d : plan_.procs[p].permanents) {
        if (graph_.data(d).owner != p) {
          add({.rule = "SCHED-OWNER",
               .object = d,
               .proc = p,
               .message = cat("plan lists '", data_name(d),
                              "' permanent on processor ", p,
                              " but its owner is ", graph_.data(d).owner),
               .hint = "rebuild the run plan after changing owners"});
        }
      }
    }
  }

  // -- VER-*: epoch structure and version monotonicity --------------------

  void check_epochs_and_versions() {
    for (DataId d = 0; d < graph_.num_data(); ++d) {
      derived_epochs_.push_back(derive_epochs(graph_, d));
      const auto& expect = derived_epochs_.back();
      const auto& got = plan_.objects[d].epochs;
      if (got != expect) {
        add({.rule = "VER-EPOCH",
             .object = d,
             .message = cat("plan epochs of '", data_name(d),
                            "' disagree with the access history (", got.size(),
                            " epochs in plan, ", expect.size(), " derived)"),
             .hint = "the plan's epoch grouping must partition the writers "
                     "in program order, split at interleaved readers"});
      }
    }
    // Required versions must be in range and monotone non-decreasing along
    // each processor's order: a task needing an *older* version than an
    // earlier task on the same processor contradicts the anti-ordering that
    // makes suspended sends safe (PROTOCOL.md, "why no stale data").
    for (ProcId p = 0; p < schedule_.num_procs; ++p) {
      std::unordered_map<DataId, std::int32_t> last_required;
      for (std::size_t pos = 0; pos < schedule_.order[p].size(); ++pos) {
        const TaskId t = schedule_.order[p][pos];
        for (const rt::RemoteRead& rr : plan_.tasks[t].remote_reads) {
          const std::int32_t num_versions =
              plan_.objects[rr.object].num_versions();
          if (rr.version < 0 || rr.version > num_versions) {
            add({.rule = "VER-RANGE",
                 .task = t,
                 .object = rr.object,
                 .proc = p,
                 .position = static_cast<std::int32_t>(pos),
                 .message = cat("task '", task_name(t), "' requires version ",
                                rr.version, " of '", data_name(rr.object),
                                "', which has versions 0..", num_versions),
                 .hint = "remote-read versions come from "
                         "version_of_writer over true in-edges"});
            continue;
          }
          auto [it, inserted] = last_required.try_emplace(rr.object,
                                                          rr.version);
          if (!inserted) {
            if (rr.version < it->second) {
              add({.rule = "VER-MONO",
                   .task = t,
                   .object = rr.object,
                   .proc = p,
                   .position = static_cast<std::int32_t>(pos),
                   .message = cat("task '", task_name(t), "' requires version ",
                                  rr.version, " of '", data_name(rr.object),
                                  "' after an earlier task on processor ", p,
                                  " already required version ", it->second),
                   .hint = "versions must be non-decreasing along each "
                           "processor's order; the schedule breaks the "
                           "reader/writer anti-ordering"});
            }
            it->second = std::max(it->second, rr.version);
          }
        }
      }
    }
  }

  // -- MSG-*: send/receive matching ---------------------------------------

  void check_messages() {
    std::set<std::tuple<DataId, std::int32_t, ProcId>> needed;
    for (TaskId t = 0; t < graph_.num_tasks(); ++t) {
      for (const rt::RemoteRead& rr : plan_.tasks[t].remote_reads) {
        if (rr.version < 0 ||
            rr.version > plan_.objects[rr.object].num_versions()) {
          continue;  // already reported by VER-RANGE
        }
        needed.emplace(rr.object, rr.version, schedule_.proc_of_task[t]);
      }
    }
    std::set<std::tuple<DataId, std::int32_t, ProcId>> sent;
    for (DataId d = 0; d < graph_.num_data(); ++d) {
      const auto& by_version = plan_.objects[d].sends_by_version;
      for (std::size_t v = 0; v < by_version.size(); ++v) {
        for (ProcId dest : by_version[v]) {
          sent.emplace(d, static_cast<std::int32_t>(v), dest);
        }
      }
    }
    for (const auto& [d, v, p] : needed) {
      if (!sent.count({d, v, p})) {
        add({.rule = "MSG-RECV",
             .object = d,
             .proc = p,
             .message = cat("processor ", p, " waits for version ", v, " of '",
                            data_name(d),
                            "' but no ContentSend delivers it — the reader "
                            "would block in REC forever"),
             .hint = "every RemoteRead needs a matching entry in "
                     "sends_by_version"});
      }
    }
    for (const auto& [d, v, p] : sent) {
      if (p == graph_.data(d).owner) {
        add({.rule = "MSG-SEND",
             .object = d,
             .proc = p,
             .message = cat("owner ", p, " sends version ", v, " of '",
                            data_name(d), "' to itself"),
             .hint = "owners read their permanents directly; no message is "
                     "needed"});
      } else if (!needed.count({d, v, p})) {
        add({.rule = "MSG-SEND",
             .object = d,
             .proc = p,
             .message = cat("ContentSend of '", data_name(d), "' version ", v,
                            " to processor ", p,
                            " has no matching RemoteRead — the destination "
                            "never allocates a buffer, so the send would "
                            "suspend forever"),
             .hint = "drop the send or add the reader that needs it"});
      }
    }
    // Initial sends: each owner must push exactly the version-0 fan-out.
    std::set<std::tuple<DataId, ProcId>> initial_expected;
    for (DataId d = 0; d < graph_.num_data(); ++d) {
      if (plan_.objects[d].sends_by_version.empty()) continue;
      for (ProcId dest : plan_.objects[d].sends_by_version[0]) {
        initial_expected.emplace(d, dest);
      }
    }
    std::set<std::tuple<DataId, ProcId>> initial_planned;
    for (ProcId p = 0; p < plan_.num_procs; ++p) {
      for (const rt::ContentSend& cs : plan_.procs[p].initial_sends) {
        if (graph_.data(cs.object).owner != p || cs.version != 0) {
          add({.rule = "MSG-INIT",
               .object = cs.object,
               .proc = p,
               .message = cat("initial send of '", data_name(cs.object),
                              "' version ", cs.version, " issued by processor ",
                              p, " (owner is ", graph_.data(cs.object).owner,
                              ", initial version must be 0)"),
               .hint = "initial sends are version-0 pushes by the owner"});
        }
        initial_planned.emplace(cs.object, cs.dest);
      }
    }
    for (const auto& [d, dest] : initial_expected) {
      if (!initial_planned.count({d, dest})) {
        add({.rule = "MSG-INIT",
             .object = d,
             .proc = dest,
             .message = cat("processor ", dest, " reads the initial content "
                            "of '", data_name(d),
                            "' but the owner plans no version-0 send"),
             .hint = "ProcPlan::initial_sends must cover sends_by_version[0]"});
      }
    }
  }

  // -- LIVE-*: volatile lifetime windows ----------------------------------

  void check_liveness() {
    const sched::LivenessTable recomputed =
        sched::analyze_liveness(graph_, schedule_);
    for (ProcId p = 0; p < plan_.num_procs; ++p) {
      // Plan windows vs the recomputed dead points.
      std::map<DataId, sched::VolatileLifetime> expect;
      for (const auto& v : recomputed.procs[p].volatiles) {
        expect.emplace(v.object, v);
      }
      std::map<DataId, sched::VolatileLifetime> got;
      for (const auto& v : plan_.procs[p].volatiles) got.emplace(v.object, v);
      for (const auto& [d, e] : expect) {
        const auto it = got.find(d);
        if (it == got.end()) {
          add({.rule = "LIVE-WINDOW",
               .object = d,
               .proc = p,
               .message = cat("volatile '", data_name(d),
                              "' is accessed on processor ", p,
                              " but has no lifetime entry in the plan"),
               .hint = "rebuild the plan's liveness table"});
          continue;
        }
        const auto& g = it->second;
        if (g.first_pos != e.first_pos || g.last_pos != e.last_pos ||
            g.size_bytes != e.size_bytes) {
          add({.rule = "LIVE-WINDOW",
               .object = d,
               .proc = p,
               .position = g.first_pos,
               .message = cat("lifetime of volatile '", data_name(d),
                              "' on processor ", p, " is [", g.first_pos, ", ",
                              g.last_pos, "] (", g.size_bytes,
                              " bytes) in the plan but [", e.first_pos, ", ",
                              e.last_pos, "] (", e.size_bytes,
                              " bytes) by the dead-point analysis"),
               .hint = "a shifted window frees live data (use-after-free) or "
                       "holds dead data (capacity loss); recompute liveness"});
        }
      }
      for (const auto& [d, g] : got) {
        if (!expect.count(d)) {
          add({.rule = "LIVE-WINDOW",
               .object = d,
               .proc = p,
               .message = cat("plan lists volatile '", data_name(d),
                              "' on processor ", p,
                              " which never accesses it"),
               .hint = "stale lifetime entry; rebuild the plan"});
        }
      }
      // Direct window check: every volatile access must fall inside its
      // window — outside it the MAP engine has not allocated the buffer yet
      // (use-before-alloc) or has already recycled it (use-after-free).
      const auto n = static_cast<std::int32_t>(schedule_.order[p].size());
      for (std::int32_t pos = 0; pos < n; ++pos) {
        const TaskId t = schedule_.order[p][pos];
        for (DataId d : plan_.tasks[t].volatile_accesses) {
          const auto it = got.find(d);
          if (it == got.end()) {
            add({.rule = "LIVE-MISSING",
                 .task = t,
                 .object = d,
                 .proc = p,
                 .position = pos,
                 .message = cat("task '", task_name(t),
                                "' accesses volatile '", data_name(d),
                                "' which has no lifetime on processor ", p),
                 .hint = "every volatile access needs a lifetime window"});
            continue;
          }
          if (pos < it->second.first_pos) {
            add({.rule = "LIVE-BEFORE",
                 .task = t,
                 .object = d,
                 .proc = p,
                 .position = pos,
                 .message = cat("task '", task_name(t), "' uses volatile '",
                                data_name(d), "' at position ", pos,
                                " before its window opens at ",
                                it->second.first_pos, " (use-before-alloc)"),
                 .hint = "the MAP engine only allocates inside the window; "
                         "widen first_pos to the first access"});
          } else if (pos > it->second.last_pos) {
            add({.rule = "LIVE-AFTER",
                 .task = t,
                 .object = d,
                 .proc = p,
                 .position = pos,
                 .message = cat("task '", task_name(t), "' uses volatile '",
                                data_name(d), "' at position ", pos,
                                " after its dead point ", it->second.last_pos,
                                " (use-after-free)"),
                 .hint = "the MAP engine recycles the buffer after last_pos; "
                         "widen last_pos to the last access"});
          }
        }
      }
    }
  }

  // -- CAP-*: symbolic MAP replay (Def. 6 feasibility) --------------------

  std::vector<MapEvent> check_capacity() {
    std::vector<MapEvent> events;
    if (options_.capacity_per_proc <= 0) return events;
    const std::int64_t capacity = options_.capacity_per_proc;
    for (ProcId p = 0; p < plan_.num_procs; ++p) {
      std::unique_ptr<rt::ProcMemory> memory;
      try {
        memory = std::make_unique<rt::ProcMemory>(plan_, p, capacity,
                                                  /*alignment=*/1,
                                                  options_.alloc_policy,
                                                  options_.slab_arena);
      } catch (const rt::NonExecutableError&) {
        add({.rule = "CAP-PERM",
             .proc = p,
             .message = cat("permanent objects need ",
                            plan_.procs[p].permanent_bytes,
                            " bytes, capacity is ", capacity, " (short by ",
                            plan_.procs[p].permanent_bytes - capacity,
                            " bytes)"),
             .hint = "permanent space counts for the whole run (Def. 5); "
                     "raise the capacity or spread ownership"});
        continue;
      }
      if (!options_.active_memory) {
        try {
          memory->preallocate_all();
        } catch (const rt::NonExecutableError&) {
          std::int64_t vol_total = 0;
          for (const auto& v : plan_.procs[p].volatiles) {
            vol_total += v.size_bytes;
          }
          add({.rule = "CAP-TOT",
               .proc = p,
               .message = cat("baseline preallocation needs ",
                              plan_.procs[p].permanent_bytes + vol_total,
                              " bytes, capacity is ", capacity),
               .hint = "the no-recycling footprint TOT exceeds the capacity; "
                       "enable active memory management"});
        }
        continue;
      }
      const auto n = static_cast<std::int32_t>(plan_.procs[p].order.size());
      for (std::int32_t pos = 0; pos < n; ++pos) {
        if (!memory->needs_map(pos)) continue;
        try {
          const rt::MapResult map = memory->perform_map(pos);
          if (!map.packages.empty()) {
            MapEvent event;
            event.proc = p;
            event.pos = pos;
            event.allocated = map.allocated;
            event.alloc_upto = map.alloc_upto;
            for (const auto& [owner, pkg] : map.packages) {
              (void)pkg;
              event.package_dests.push_back(owner);
            }
            events.push_back(std::move(event));
          }
        } catch (const rt::NonExecutableError&) {
          // perform_map already freed every dead volatile and rolled back
          // the failing task's partial allocations, so the arena now shows
          // exactly the live bytes Def. 6 charges at this position.
          const TaskId t = plan_.procs[p].order[pos];
          std::int64_t needed = 0;
          DataId worst = graph::kInvalidData;
          for (DataId d : plan_.tasks[t].volatile_accesses) {
            if (!memory->is_allocated(d)) {
              needed += graph_.data(d).size_bytes;
              if (worst == graph::kInvalidData ||
                  graph_.data(d).size_bytes > graph_.data(worst).size_bytes) {
                worst = d;
              }
            }
          }
          const std::int64_t free_bytes =
              capacity - memory->arena().in_use();
          const std::int64_t shortfall = needed - free_bytes;
          const std::int64_t largest =
              memory->arena().stats().largest_free_block;
          add({.rule = "CAP-MAP",
               .task = t,
               .object = worst,
               .proc = p,
               .position = pos,
               .message = cat(
                   "MAP before task '", task_name(t), "' cannot allocate its ",
                   needed, " volatile bytes: ", free_bytes,
                   " bytes free after recycling",
                   shortfall > 0
                       ? cat(", short by ", shortfall, " bytes")
                       : cat(" but fragmented (largest free block ", largest,
                             " bytes)"),
                   " — the schedule is non-executable under Def. 6 at "
                   "capacity ",
                   capacity),
               .hint = shortfall > 0
                           ? cat("raise capacity_per_proc by at least ",
                                 shortfall,
                                 " bytes, or use a memory-aware ordering "
                                 "(MPO/DTS) to lower MEM_REQ")
                           : "peak bytes fit but placement fragments the "
                             "arena; try AllocPolicy::kBestFit or a small "
                             "capacity margin"});
          break;  // this processor cannot get past `pos`
        }
      }
    }
    return events;
  }

  // -- DEP-*: dependence completeness of the transformed graph -----------

  void check_dependence_completeness() {
    if (graph_.num_tasks() > options_.max_reachability_tasks) {
      add({.rule = "DEP-SKIPPED",
           .severity = Severity::kInfo,
           .message = cat("graph has ", graph_.num_tasks(), " tasks (cap ",
                          options_.max_reachability_tasks,
                          "); DEP-RAW/WAR/WAW and MBX-CROSS were skipped"),
           .hint = "raise AuditOptions::max_reachability_tasks to audit "
                   "dependence completeness on this graph"});
      return;
    }
    std::vector<TaskId> topo;
    try {
      topo = graph_.topological_order();
    } catch (const Error& e) {
      add({.rule = "DEP-CYCLE",
           .message = cat("transformed dependence graph is cyclic: ",
                          e.what()),
           .hint = "the inspector must emit a DAG; check commute-group "
                   "registration"});
      return;
    }
    reach_ = std::make_unique<Reachability>(graph_, topo);

    // Dependence completeness, object by object. Path coverage is
    // transitive, so covering (a) consecutive epochs and (b) each pure
    // reader against its neighbouring epochs covers every RAW/WAR/WAW pair.
    for (DataId d = 0; d < graph_.num_data(); ++d) {
      const auto& epochs = derived_epochs_[static_cast<std::size_t>(d)];
      for (std::size_t v = 0; v + 1 < epochs.size(); ++v) {
        for (TaskId a : epochs[v]) {
          for (TaskId b : epochs[v + 1]) {
            if (!reach_->reaches(a, b)) {
              add({.rule = "DEP-WAW",
                   .task = b,
                   .object = d,
                   .message = cat("writers '", task_name(a), "' (epoch ",
                                  v + 1, ") and '", task_name(b), "' (epoch ",
                                  v + 2, ") of '", data_name(d),
                                  "' are unordered — versions ", v + 1,
                                  " and ", v + 2, " could be produced in "
                                  "either order"),
                   .hint = "the inspector must emit an output/true edge (or "
                           "path) between consecutive epochs"});
            }
          }
        }
      }
      for (TaskId r : graph_.readers(d)) {
        const auto& writes = graph_.task(r).writes;
        if (std::binary_search(writes.begin(), writes.end(), d)) continue;
        // Epochs never straddle a pure reader (an interleaved reader splits
        // them), so "the epoch before r" is well defined.
        std::size_t before = 0;
        while (before < epochs.size() && epochs[before].back() < r) ++before;
        if (before > 0) {
          for (TaskId w : epochs[before - 1]) {
            if (!reach_->reaches(w, r)) {
              add({.rule = "DEP-RAW",
                   .task = r,
                   .object = d,
                   .message = cat("reader '", task_name(r),
                                  "' is not ordered after writer '",
                                  task_name(w), "' of '", data_name(d),
                                  "' — it could read version ", before - 1,
                                  " instead of ", before),
                   .hint = "a true dependence edge (or subsuming path) from "
                           "every program-order-earlier writer is required"});
            }
          }
        }
        if (before < epochs.size()) {
          for (TaskId w : epochs[before]) {
            if (!reach_->reaches(r, w)) {
              add({.rule = "DEP-WAR",
                   .task = w,
                   .object = d,
                   .message = cat("writer '", task_name(w), "' of '",
                                  data_name(d),
                                  "' is not ordered after reader '",
                                  task_name(r), "' — the writer could "
                                  "overwrite the value (or overtake the "
                                  "suspended message) the reader still "
                                  "needs"),
                   .hint = "a kept anti edge (or subsuming true path) from "
                           "the reader into the next epoch is required"});
            }
          }
        }
      }
    }
  }

  // -- MBX-CROSS: crossed single-slot address-package waits ---------------

  void check_mailbox_crossings(const std::vector<MapEvent>& events) {
    if (options_.mailbox_slots != 1 || !reach_ || events.size() > 5000) {
      return;
    }
    // Two MAPs' package waits "cross" when each sends into the other's
    // processor and no dependence forces one MAP to finish before the other
    // starts. Theorem 1 tolerates the cross because every blocking state
    // services RA — so this is a WARNING spotlighting where the protocol's
    // liveness argument is actually load-bearing, not an error.
    auto ordered = [&](const MapEvent& first, const MapEvent& second) {
      // `first` completes before the task at first.pos runs; `second`
      // starts after the task at second.pos - 1 completes.
      if (second.pos == 0) return false;
      return reach_->reaches(schedule_.order[first.proc][first.pos],
                             schedule_.order[second.proc][second.pos - 1]);
    };
    for (std::size_t i = 0; i < events.size(); ++i) {
      for (std::size_t j = i + 1; j < events.size(); ++j) {
        const MapEvent& a = events[i];
        const MapEvent& b = events[j];
        if (a.proc == b.proc) continue;
        const bool a_to_b = std::count(a.package_dests.begin(),
                                       a.package_dests.end(), b.proc) > 0;
        const bool b_to_a = std::count(b.package_dests.begin(),
                                       b.package_dests.end(), a.proc) > 0;
        if (!a_to_b || !b_to_a) continue;
        if (ordered(a, b) || ordered(b, a)) continue;
        add({.rule = "MBX-CROSS",
             .severity = Severity::kWarning,
             .proc = a.proc,
             .position = a.pos,
             .message = cat("MAP at (proc ", a.proc, ", pos ", a.pos,
                            ") and MAP at (proc ", b.proc, ", pos ", b.pos,
                            ") send address packages to each other and no "
                            "dependence orders them — with mailbox_slots=1 "
                            "both can block on a full slot at once"),
             .hint = "safe because every blocking state services RA "
                     "(Theorem 1); raise RunConfig::mailbox_slots to remove "
                     "the wait entirely"});
        check_recovery_crossing(a, b);
        check_recovery_crossing(b, a);
      }
    }
  }

  // -- REC-CROSS: crossed mailbox waits the re-request layer cannot heal --

  /// The re-request recovery heals content and flag waits (a waiter NACKs
  /// the owner), but there is no re-request for a mailbox-slot wait: a MAP
  /// blocked on a full slot is only dissolved by the peer draining its
  /// mailbox (RA in every blocking state). When one side of a crossed MAP
  /// pair gates a remote read *from the crossing peer* behind its blocked
  /// MAP, a lost or stalled drain leaves the content wait unreachable —
  /// the buffer is never allocated, so the waiter never enters the wait the
  /// recovery layer could act on. Warn so the user knows this crossing sits
  /// outside the self-healing layer's coverage.
  void check_recovery_crossing(const MapEvent& blocked, const MapEvent& peer) {
    const auto& order = schedule_.order[blocked.proc];
    const auto upto = std::min(blocked.alloc_upto,
                               static_cast<std::int32_t>(order.size()));
    for (std::int32_t k = blocked.pos; k < upto; ++k) {
      const TaskId t = order[k];
      for (const rt::RemoteRead& rr : plan_.tasks[t].remote_reads) {
        if (graph_.data(rr.object).owner != peer.proc) continue;
        if (std::find(blocked.allocated.begin(), blocked.allocated.end(),
                      rr.object) == blocked.allocated.end()) {
          continue;
        }
        add({.rule = "REC-CROSS",
             .severity = Severity::kWarning,
             .task = t,
             .object = rr.object,
             .proc = blocked.proc,
             .position = blocked.pos,
             .message = cat(
                 "MAP at (proc ", blocked.proc, ", pos ", blocked.pos,
                 ") allocates the buffer for remote read of '",
                 data_name(rr.object), "' (task '", task_name(t),
                 "') from p", peer.proc,
                 ", but is itself in a crossed single-slot mailbox wait "
                 "with p", peer.proc,
                 " — a mailbox-slot wait has no re-request, so the "
                 "recovery layer cannot heal a stall here"),
             .hint = "liveness rests on RA service in the blocked MAP "
                     "alone; raise RunConfig::mailbox_slots (or reorder to "
                     "break the crossing) if recoverability is required"});
        return;  // one finding per crossed direction is enough
      }
    }
  }

  const graph::TaskGraph& graph_;
  const Schedule& schedule_;
  const RunPlan& plan_;
  const AuditOptions& options_;

  AuditReport report_;
  std::map<std::string, std::int32_t> rule_counts_;
  bool index_ok_ = true;
  std::vector<std::vector<std::vector<TaskId>>> derived_epochs_;  // per object
  std::unique_ptr<Reachability> reach_;
};

}  // namespace

AuditReport audit_plan(const graph::TaskGraph& graph,
                       const sched::Schedule& schedule,
                       const rt::RunPlan& plan, const AuditOptions& options) {
  RAPID_CHECK(graph.finalized(), "graph must be finalized before auditing");
  return Auditor(graph, schedule, plan, options).run();
}

void audit_or_throw(const rt::RunPlan& plan, const rt::RunConfig& config) {
  RAPID_CHECK(plan.graph != nullptr, "plan has no graph");
  AuditOptions options;
  options.capacity_per_proc = config.capacity_per_proc;
  options.active_memory = config.active_memory;
  options.mailbox_slots = config.mailbox_slots;
  options.alloc_policy = config.alloc_policy;
  options.slab_arena = config.slab_arena;
  const AuditReport report =
      audit_plan(*plan.graph, plan.schedule, plan, options);
  if (report.clean()) return;
  bool only_capacity = true;
  for (const Finding& f : report.findings) {
    if (f.severity == Severity::kError && f.rule.rfind("CAP-", 0) != 0) {
      only_capacity = false;
      break;
    }
  }
  // Capacity findings keep the executors' NonExecutableError semantics
  // (reported as executable=false, the paper's "∞" entries); protocol-level
  // findings are hard errors.
  if (only_capacity) throw rt::NonExecutableError(report.to_string());
  throw AuditError(report.to_string());
}

}  // namespace rapid::verify
