// Execution-conformance checker: closes the loop between the static plan
// auditor (what MAY execute, verify/auditor.hpp) and the obs trace plane
// (what DID execute, obs/trace.hpp). Given a run's trace and the plan it
// was launched from, replays the trace through the vector-clock
// happens-before engine (verify/hb.hpp) and reports structured findings
// with the auditor's rule-id discipline:
//
//   HB-RACE    a task read of object version v is not happens-after its
//              publication, or not happens-before the MAP free of its
//              region (use-after-free across volatile heap reuse)
//   CONF-STATE a processor's traced REC/EXE/SND/MAP/END sequence diverges
//              from its scheduled positions (Fig. 3(b))
//   CONF-MSG   traced puts/installs do not match the plan's send set 1:1
//              modulo idempotent sequence-gated resends; or the recovery
//              counters do not reconcile with the traced NACK/resend events
//   CONF-CAP   traced per-processor alloc/free byte deltas diverge from the
//              auditor's symbolic CAP replay (the same ProcMemory engine)
//   CONF-TRUNCATED (info) a trace ring overflowed: findings that rely on
//              the complete history are downgraded to warnings, because an
//              "absent" event may simply have been overwritten
//
// Both executors share the trace vocabulary, so one checker covers the
// simulator (modeled time) and the threaded runtime (real concurrency).
#pragma once

#include <cstdint>

#include "rapid/mem/arena.hpp"
#include "rapid/rt/plan.hpp"
#include "rapid/rt/report.hpp"
#include "rapid/verify/auditor.hpp"
#include "rapid/verify/hb.hpp"

namespace rapid::verify {

struct ConformanceOptions {
  /// Capacity the checked run executed under; drives the symbolic CAP
  /// replay (CONF-CAP) and the exact expected MAP positions for
  /// CONF-STATE. <= 0 skips CONF-CAP and derives MAP positions from the
  /// trace itself (structural checking only).
  std::int64_t capacity_per_proc = 0;
  /// Must match the run: MAP placement depends on them byte-for-byte.
  bool active_memory = true;
  mem::AllocPolicy alloc_policy = mem::AllocPolicy::kFirstFit;
  /// Whether the run used the slab-backed arena fast path (RunConfig::
  /// slab_arena). Placement can differ from the plain coalescing arena, so
  /// the CAP replay must be constructed with the same flag.
  bool slab_arena = false;
  /// Arena alignment of the checked executor: 1 for the simulator, 8 for
  /// the threaded runtime (see rt::ProcMemory).
  std::int64_t alignment = 1;
  /// When set, the run's counters are reconciled against the traced
  /// events: kPutPublish+kResend vs content_messages, kResend vs
  /// recovery.resends, kNack vs recovery.nacks_sent, kFlagSend vs
  /// flag_messages, kAddrPkgSend vs addr_packages. Skipped when any ring
  /// overflowed (the traced counts are then lower bounds).
  const rt::RunReport* report = nullptr;
  /// Findings reported per rule before the rest are summarized away
  /// (AUDIT-TRUNCATED info notes, same discipline as the auditor).
  std::int32_t max_findings_per_rule = 25;
};

/// Checks a finished run's trace against its plan. Never throws on
/// violations — they become findings; throws rapid::Error only when the
/// inputs are malformed (trace sized for fewer processors than the plan).
AuditReport check_conformance(const rt::RunPlan& plan, const TraceView& view,
                              const ConformanceOptions& options = {});

/// Convenience overload snapshotting the trace first (post-run only).
AuditReport check_conformance(const rt::RunPlan& plan,
                              const obs::Trace& trace,
                              const ConformanceOptions& options = {});

}  // namespace rapid::verify
