// Bounded model checker for the runtime's lock-free primitives. The
// threaded executor's ordering argument (docs/RUNTIME.md) rests on three
// tiny state machines: the Doorbell signal/wait handshake (support/
// backoff.hpp), the single-slot address-package mailbox with its lock-free
// pending flag, and the content put's crc → version → put_seq release
// chain. This checker validates those arguments mechanically instead of by
// prose: each primitive is encoded as a litmus program over a small shared
// memory, and a DFS enumerates EVERY interleaving under an operational
// weak-memory model, flagging lost wakeups (deadlock with a parked thread)
// and torn publications (a final state violating the program's predicate).
//
// The memory model is a per-thread pending-store set, deliberately weaker
// than TSO where the C++ model is weaker:
//   - a relaxed store becomes a pending store that can flush to shared
//     memory at ANY later point (store→store and store→load reordering);
//   - a release store can flush only after every program-earlier pending
//     store of its thread has flushed (the release fence half);
//   - a seq_cst store or RMW executes only with an empty buffer and writes
//     memory directly (the full-barrier behavior the runtime relies on);
//   - loads forward from the thread's own latest pending store, else read
//     memory (acquire and relaxed loads coincide operationally — all the
//     weakenings under test are on the store side);
//   - mutex lock/unlock and condvar wait/notify are modeled with unlock
//     (and the wait's implicit unlock) flushing the buffer; the weakened
//     behaviors under test all live OUTSIDE critical sections.
// Spurious condvar wakeups and the Doorbell's wait_for timeout are not
// modeled: the timeout is the engineering fallback for exactly the lost
// wakeup this checker proves impossible in the strong variants.
//
// Each primitive has a strong variant (the shipped orderings — must verify
// CLEAN) and weakened variants (one ordering dropped — the checker must
// FIND the counterexample, proving the check has teeth and the ordering is
// load-bearing). tests/litmus_test.cpp pins both directions.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace rapid::verify {

enum class MemOrder : std::uint8_t {
  kRelaxed,
  kRelease,  // stores only
  kAcquire,  // loads only (== relaxed operationally; kept for fidelity)
  kSeqCst,
};

enum class LitmusOp : std::uint8_t {
  kLoad,       // regs[reg] = shared[var] (own pending store forwards)
  kStore,      // shared[var] = value (pending unless seq_cst)
  kRmwAdd,     // regs[reg] = shared[var]; shared[var] += value; seq_cst only
  kLock,       // acquire mutex `var`
  kUnlock,     // release mutex `var` (flushes the store buffer first)
  kCvWait,     // park on condvar `var`, atomically releasing mutex `value`
  kNotifyAll,  // wake every thread parked on condvar `var`
  kJumpIfEq,   // if regs[reg] == value: pc = target
  kJumpIfNe,   // if regs[reg] != value: pc = target
};

struct LitmusInstr {
  LitmusOp op = LitmusOp::kLoad;
  std::int32_t var = 0;    // shared variable / mutex / condvar index
  std::int32_t reg = 0;    // destination (load/rmw) or source (store) reg
  std::int32_t value = 0;  // immediate; for kCvWait the mutex index
  /// When true, a store writes regs[reg] + value instead of the immediate
  /// (the "broken increment" load;store pair of the weakened variants).
  bool value_from_reg = false;
  MemOrder order = MemOrder::kSeqCst;
  std::int32_t target = 0;  // jump destination pc
};

struct LitmusThread {
  std::string name;
  std::vector<LitmusInstr> code;
};

struct LitmusProgram {
  std::string name;
  std::string description;
  std::vector<std::string> var_names;  // shared variables, all initially 0
  std::int32_t num_mutexes = 0;
  std::int32_t num_condvars = 0;
  std::vector<LitmusThread> threads;
  /// Evaluated on every terminal state (all threads done, buffers empty);
  /// returning false is a violation. Null = only deadlock-freedom checked.
  std::function<bool(const std::vector<std::int32_t>& mem)> final_ok;
  std::string property;  // human description of what final_ok asserts
  /// Whether the shipped orderings are under test (true → the checker must
  /// report zero violations) or a deliberately weakened variant (false →
  /// the checker must find the counterexample).
  bool expect_clean = true;
};

struct LitmusResult {
  std::string name;
  bool expect_clean = true;
  std::int64_t states_explored = 0;
  /// One entry per distinct violation class found (bounded), each with the
  /// full interleaving that reaches it.
  std::vector<std::string> violations;

  bool clean() const { return violations.empty(); }
  /// The result agrees with the program's expectation: strong variants
  /// verify clean, weakened variants produce their counterexample.
  bool as_expected() const { return clean() == expect_clean; }
};

/// Exhaustively enumerates every interleaving (with flush transitions) of
/// the program from the all-zero state. Deterministic; state count is
/// bounded by a visited set over full machine states.
LitmusResult run_litmus(const LitmusProgram& program);

/// The Doorbell signal/wait handshake (support/backoff.hpp): one ringer
/// (count++; if sleepers != 0 notify) against one waiter (sleepers++;
/// recheck count under the lock; park). `weaken` picks the variant:
///   0  shipped orderings — both increments seq_cst RMWs (expect clean)
///   1  ringer's count++ weakened to a relaxed load;store (expect a lost
///      wakeup: the store→load reorder lets the ringer miss the sleeper)
///   2  waiter's sleepers++ weakened the same way (symmetric Dekker loss)
LitmusProgram doorbell_handshake(int weaken);

/// The single-slot mailbox handoff (threaded_executor service_ra_cq /
/// send_address_package): two senders push under the mutex and fetch_add
/// the lock-free pending flag (release); the receiver drains only when a
/// lock-free pending read is nonzero and resets the flag inside the
/// critical section. weaken=1 moves the reset after the unlock — the
/// checker must find the lost-package state (mailbox nonempty, flag zero).
LitmusProgram mailbox_handoff(int weaken);

/// The content put's publication chain (threaded_executor transmit):
/// payload crc (relaxed) → version (release) → put_seq (release) against a
/// reader gating on an acquire load of put_seq. weaken=1 demotes the
/// put_seq store to relaxed — the checker must find the torn publication
/// (seq visible before payload/version).
LitmusProgram put_publication(int weaken);

/// All variants of all three primitives, strong and weakened.
std::vector<LitmusProgram> all_litmus_programs();

/// Runs every program and returns the results in order. The conformance
/// CLI (rapid_check --litmus) and tests/litmus_test.cpp both drive this.
std::vector<LitmusResult> run_all_litmus();

}  // namespace rapid::verify
