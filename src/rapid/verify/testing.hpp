// GTest glue for the plan auditor and the conformance checker. Header-only
// and gtest-dependent, so it lives outside the rapid_verify library proper
// — include it from test targets only.
//
//   EXPECT_PLAN_CLEAN(graph, schedule, plan);            // plan-level rules
//   EXPECT_PLAN_CLEAN_AT(graph, schedule, plan, bytes);  // + Def. 6 replay
//
// The TraceView mutators below seed protocol violations into a recorded
// trace for the conformance checker's negative-path tests: each one edits
// the snapshot the way a specific runtime bug would have manifested, so
// the tests can assert the checker reports the exact HB-*/CONF-* rule.
#pragma once

#include <gtest/gtest.h>

#include <utility>

#include "rapid/obs/trace.hpp"
#include "rapid/verify/auditor.hpp"
#include "rapid/verify/hb.hpp"

namespace rapid::verify::testing {

inline ::testing::AssertionResult plan_clean(const graph::TaskGraph& graph,
                                             const sched::Schedule& schedule,
                                             const rt::RunPlan& plan,
                                             const AuditOptions& options) {
  const AuditReport report = audit_plan(graph, schedule, plan, options);
  if (report.clean()) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure() << report.to_string();
}

inline AuditOptions at_capacity(std::int64_t capacity_per_proc) {
  AuditOptions options;
  options.capacity_per_proc = capacity_per_proc;
  return options;
}

/// Where a TraceView mutator struck: the ring it edited and the
/// (object, version, dest) identity of the affected put, so the test can
/// assert the checker's finding points at exactly this site.
struct MutationSite {
  std::int32_t proc = -1;
  std::int32_t object = -1;
  std::int32_t version = -1;
  std::int32_t dest = -1;

  bool found() const { return proc >= 0; }
};

/// Deletes the first kPutPublish event — the trace a runtime would leave
/// if a put's release store of put_seq were suppressed: the payload memcpy
/// (kPut) happened, but nothing published it. The checker must report the
/// reader's consume as HB-RACE (no publication happens-before the read)
/// and the missing publication as CONF-MSG.
inline MutationSite suppress_publication(TraceView& view) {
  for (std::size_t r = 0; r < view.rings.size(); ++r) {
    auto& ring = view.rings[r];
    for (std::size_t i = 0; i < ring.size(); ++i) {
      if (ring[i].kind == obs::EventKind::kPutPublish) {
        const MutationSite site{static_cast<std::int32_t>(r), ring[i].a,
                                ring[i].b, ring[i].c};
        ring.erase(ring.begin() + static_cast<std::ptrdiff_t>(i));
        return site;
      }
    }
  }
  return {};
}

/// Moves a reader-side kMapFree to just before the last kConsume of the
/// same object on that ring — the trace of a MAP freeing a volatile region
/// while a consumer of its content was still to come (a liveness last_pos
/// mis-computation). The checker must report HB-RACE (use-after-free).
inline MutationSite reorder_free_before_last_consume(TraceView& view) {
  for (std::size_t r = 0; r < view.rings.size(); ++r) {
    auto& ring = view.rings[r];
    for (std::size_t i = 0; i < ring.size(); ++i) {
      if (ring[i].kind != obs::EventKind::kMapFree) continue;
      for (std::size_t j = i; j-- > 0;) {
        if (ring[j].kind == obs::EventKind::kConsume &&
            ring[j].a == ring[i].a) {
          const MutationSite site{static_cast<std::int32_t>(r), ring[j].a,
                                  ring[j].b, static_cast<std::int32_t>(r)};
          const obs::TraceEvent freed = ring[i];
          ring.erase(ring.begin() + static_cast<std::ptrdiff_t>(i));
          ring.insert(ring.begin() + static_cast<std::ptrdiff_t>(j), freed);
          return site;
        }
      }
    }
  }
  return {};
}

/// Appends a copy of an existing kPutPublish with the next put sequence —
/// the trace of an owner putting the same content again without any NACK
/// gating it (a forged/unsolicited retransmit). The checker must report it
/// as CONF-MSG: a put outside the plan's send set.
inline MutationSite forge_extra_put(TraceView& view) {
  for (std::size_t r = 0; r < view.rings.size(); ++r) {
    auto& ring = view.rings[r];
    for (std::size_t i = 0; i < ring.size(); ++i) {
      if (ring[i].kind == obs::EventKind::kPutPublish) {
        obs::TraceEvent forged = ring[i];
        forged.d = static_cast<std::uint16_t>(forged.d + 1);
        const MutationSite site{static_cast<std::int32_t>(r), forged.a,
                                forged.b, forged.c};
        ring.push_back(forged);
        return site;
      }
    }
  }
  return {};
}

}  // namespace rapid::verify::testing

/// Asserts the plan passes every static audit rule (capacity replay
/// skipped). The failure message is the full audit report.
#define EXPECT_PLAN_CLEAN(graph, schedule, plan)                         \
  EXPECT_TRUE(::rapid::verify::testing::plan_clean(                      \
      (graph), (schedule), (plan), ::rapid::verify::AuditOptions{}))

/// Same, plus the symbolic MAP replay at `capacity` bytes per processor.
#define EXPECT_PLAN_CLEAN_AT(graph, schedule, plan, capacity)            \
  EXPECT_TRUE(::rapid::verify::testing::plan_clean(                      \
      (graph), (schedule), (plan),                                       \
      ::rapid::verify::testing::at_capacity(capacity)))
