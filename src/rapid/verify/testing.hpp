// GTest glue for the plan auditor. Header-only and gtest-dependent, so it
// lives outside the rapid_verify library proper — include it from test
// targets only.
//
//   EXPECT_PLAN_CLEAN(graph, schedule, plan);            // plan-level rules
//   EXPECT_PLAN_CLEAN_AT(graph, schedule, plan, bytes);  // + Def. 6 replay
#pragma once

#include <gtest/gtest.h>

#include "rapid/verify/auditor.hpp"

namespace rapid::verify::testing {

inline ::testing::AssertionResult plan_clean(const graph::TaskGraph& graph,
                                             const sched::Schedule& schedule,
                                             const rt::RunPlan& plan,
                                             const AuditOptions& options) {
  const AuditReport report = audit_plan(graph, schedule, plan, options);
  if (report.clean()) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure() << report.to_string();
}

inline AuditOptions at_capacity(std::int64_t capacity_per_proc) {
  AuditOptions options;
  options.capacity_per_proc = capacity_per_proc;
  return options;
}

}  // namespace rapid::verify::testing

/// Asserts the plan passes every static audit rule (capacity replay
/// skipped). The failure message is the full audit report.
#define EXPECT_PLAN_CLEAN(graph, schedule, plan)                         \
  EXPECT_TRUE(::rapid::verify::testing::plan_clean(                      \
      (graph), (schedule), (plan), ::rapid::verify::AuditOptions{}))

/// Same, plus the symbolic MAP replay at `capacity` bytes per processor.
#define EXPECT_PLAN_CLEAN_AT(graph, schedule, plan, capacity)            \
  EXPECT_TRUE(::rapid::verify::testing::plan_clean(                      \
      (graph), (schedule), (plan),                                       \
      ::rapid::verify::testing::at_capacity(capacity)))
