// Static plan auditor: checks the preconditions of the paper's Theorem 1
// (deadlock freedom + consistency of the RMA protocol) *before* an executor
// launches, and the run-time realizability of Def. 6 (capacity feasibility)
// by replaying the MAP procedure symbolically. The executors trust their
// inputs; this is the component that earns that trust — it re-derives every
// invariant independently from the graph's access sets and the schedule
// instead of believing the plan builder.
//
// Each violation is a structured Finding carrying a stable rule id, a
// severity, the offending task/object/processor/position, and a fix hint.
// docs/VERIFY.md documents every rule and the Theorem 1 / Def. 6
// precondition it discharges.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rapid/rt/plan.hpp"
#include "rapid/rt/report.hpp"

namespace rapid::verify {

using graph::DataId;
using graph::ProcId;
using graph::TaskId;

enum class Severity : std::uint8_t { kInfo, kWarning, kError };

const char* severity_name(Severity severity);

/// Stable rule identifiers (the `rule` field of a Finding):
///
///   SCHED-PLACE    every task scheduled exactly once on a valid processor
///   SCHED-ORDER    same-processor dependence edges go forward in the order
///   SCHED-OWNER    owner-compute: writers run on the object's owner
///   DEP-CYCLE      the transformed dependence graph is acyclic
///   DEP-RAW        every (writer, later reader) pair is covered by a path
///   DEP-WAR        every (reader, later writer) pair is covered by a path
///   DEP-WAW        every (epoch v, epoch v+1) writer pair is path-covered
///   DEP-SKIPPED    info: graph too large for the reachability closure
///   VER-EPOCH      plan epochs partition the writers in program order
///   VER-RANGE      every RemoteRead version is in [0, num_versions]
///   VER-MONO       required versions are monotone per (object, processor)
///   MSG-RECV       every RemoteRead has a matching ContentSend
///   MSG-SEND       every ContentSend has a matching RemoteRead
///   MSG-INIT       owners' initial sends match version-0 destinations
///   LIVE-MISSING   a volatile access has no lifetime entry
///   LIVE-BEFORE    a volatile access precedes its lifetime window
///   LIVE-AFTER     a volatile access follows its dead point
///   LIVE-WINDOW    a lifetime disagrees with the recomputed liveness table
///   CAP-PERM       permanent objects alone exceed the capacity
///   CAP-TOT        baseline mode: preallocated volatiles do not fit
///   CAP-MAP        a MAP position is non-executable under Def. 6
///   CAP-SKIPPED    (info) replay skipped because LIVE-* errors exist
///   MBX-CROSS      two MAPs' address-package waits could cross (slots = 1)
///   REC-CROSS      a crossed mailbox wait gates a remote read from the
///                  crossing peer — the re-request recovery layer cannot
///                  heal a stall there (mailbox-slot waits have no NACK)
struct Finding {
  std::string rule;
  Severity severity = Severity::kError;
  TaskId task = graph::kInvalidTask;
  DataId object = graph::kInvalidData;
  ProcId proc = graph::kInvalidProc;
  std::int32_t position = -1;  // schedule position, where meaningful
  std::string message;         // what is wrong
  std::string hint;            // how to fix it
};

struct AuditOptions {
  /// Per-processor capacity for the symbolic MAP replay (CAP-* rules).
  /// <= 0 skips the capacity checks (the plan-level rules still run).
  std::int64_t capacity_per_proc = 0;
  /// false audits the original-RAPID baseline (preallocate everything).
  bool active_memory = true;
  /// Address-package slots; MBX-CROSS only fires when this is 1.
  std::int32_t mailbox_slots = 1;
  /// Placement policy for the replay — must match the executor's, since
  /// fragmentation (not just peak bytes) decides Def. 6 feasibility.
  mem::AllocPolicy alloc_policy = mem::AllocPolicy::kFirstFit;
  /// Slab-backed arena fast path (RunConfig::slab_arena) — same matching
  /// requirement as alloc_policy: slab caching changes placement.
  bool slab_arena = false;
  /// DEP-* and MBX-CROSS need an O(V·E/64) reachability closure over the
  /// transformed graph; graphs with more tasks than this skip those rules
  /// and report DEP-SKIPPED (info) instead.
  std::int32_t max_reachability_tasks = 20000;
  /// Findings reported per rule before the rest are summarized away.
  std::int32_t max_findings_per_rule = 25;
};

struct AuditReport {
  std::vector<Finding> findings;

  int errors() const;
  int warnings() const;
  bool clean() const { return errors() == 0; }

  /// First finding with the given rule id, or nullptr.
  const Finding* find(const std::string& rule) const;
  bool has(const std::string& rule) const { return find(rule) != nullptr; }

  /// One-line verdict, e.g. "plan audit: 2 errors, 1 warning".
  std::string summary() const;
  /// Full human-readable report, one finding per paragraph.
  std::string to_string() const;
};

/// Audits graph + schedule + plan against the options. Never throws on
/// violations — they become findings; throws rapid::Error only on
/// malformed inputs that make auditing itself impossible (e.g. plan/graph
/// size mismatch).
AuditReport audit_plan(const graph::TaskGraph& graph,
                       const sched::Schedule& schedule,
                       const rt::RunPlan& plan,
                       const AuditOptions& options = {});

/// Thrown by audit_or_throw when a plan fails a protocol-level rule.
class AuditError : public Error {
 public:
  using Error::Error;
};

/// Executor entry point (RunConfig::audit): audits the plan under the
/// config's capacity/mode and throws on ERROR findings — NonExecutableError
/// if only capacity rules (CAP-*) failed, so the executors' "report
/// executable=false" path is preserved, AuditError otherwise.
void audit_or_throw(const rt::RunPlan& plan, const rt::RunConfig& config);

}  // namespace rapid::verify
